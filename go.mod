module dpsim

go 1.24
