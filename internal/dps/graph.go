package dps

import (
	"errors"
	"fmt"
)

// Op is one operation node of a flow graph.
type Op struct {
	id   int
	name string
	kind Kind
	coll *Collection

	leaf     LeafFunc
	split    SplitFunc
	newState NewStateFunc

	outs []*Edge // outgoing edges in PostTo index order

	graph *Graph
}

// ID returns the operation's index within its graph.
func (o *Op) ID() int { return o.id }

// Name returns the operation name.
func (o *Op) Name() string { return o.name }

// Kind returns the operation kind.
func (o *Op) Kind() Kind { return o.kind }

// Collection returns the thread collection the operation executes on.
func (o *Op) Collection() *Collection { return o.coll }

// Outs returns the number of outgoing edges.
func (o *Op) Outs() int { return len(o.outs) }

// Out returns the i-th outgoing edge.
func (o *Op) Out(i int) *Edge { return o.outs[i] }

func (o *Op) String() string { return fmt.Sprintf("%s(%s)", o.name, o.kind) }

// CallLeaf invokes the leaf handler (engine use).
func (o *Op) CallLeaf(ctx Ctx, in DataObject) { o.leaf(ctx, in) }

// CallSplit invokes the split handler (engine use).
func (o *Op) CallSplit(ctx Ctx, in DataObject) { o.split(ctx, in) }

// NewState creates merge/stream per-instance state (engine use). first is
// the object that opened the instance, or nil for an instance that closed
// without receiving any object.
func (o *Op) NewState(first DataObject) MergeState { return o.newState(first) }

// IsSink reports whether the operation aggregates pair instances (merge or
// stream input side).
func (o *Op) IsSink() bool { return o.kind == KindMerge || o.kind == KindStream }

// IsSource reports whether posts from the operation open pair instances
// (split or stream output side).
func (o *Op) IsSource() bool { return o.kind == KindSplit || o.kind == KindStream }

// Edge is a directed flow-graph edge with its routing function.
type Edge struct {
	id    int
	from  *Op
	to    *Op
	route RouteFunc
	pair  *Pair // set when this edge's posts open instances of a pair
}

// From returns the source operation.
func (e *Edge) From() *Op { return e.from }

// To returns the destination operation.
func (e *Edge) To() *Op { return e.to }

// Route returns the routing function (nil for edges into a pair sink,
// where the instance's aggregation thread decides).
func (e *Edge) Route() RouteFunc { return e.route }

// Pair returns the split–merge pair whose instances are opened by posts on
// this edge, or nil.
func (e *Edge) Pair() *Pair { return e.pair }

// Pair couples a source operation (split, or the output side of a stream)
// with the sink operation (merge, or the input side of a stream) that
// aggregates the objects it posts. Every post on one of the pair's source
// edges belongs to the pair instance opened by the triggering input.
type Pair struct {
	id     int
	source *Op
	sink   *Op
	// routeInstance fixes the aggregation thread of each instance.
	routeInstance InstanceRouteFunc
	// window limits the number of unacknowledged objects in circulation
	// inside one instance (0 = unlimited): the DPS flow control.
	window int
}

// ID returns the pair's index within its graph.
func (p *Pair) ID() int { return p.id }

// Source returns the posting operation.
func (p *Pair) Source() *Op { return p.source }

// Sink returns the aggregating operation.
func (p *Pair) Sink() *Op { return p.sink }

// Window returns the flow-control window (0 = unlimited).
func (p *Pair) Window() int { return p.window }

// SetWindow sets the flow-control window (0 disables flow control).
func (p *Pair) SetWindow(w int) {
	if w < 0 {
		panic("dps: negative flow-control window")
	}
	p.window = w
}

// RouteInstance evaluates the pair's instance routing.
func (p *Pair) RouteInstance(first DataObject, width int) int {
	if p.routeInstance == nil {
		return 0
	}
	return p.routeInstance(first, width)
}

func (p *Pair) String() string {
	return fmt.Sprintf("pair(%s→%s)", p.source.name, p.sink.name)
}

// Graph is a DPS flow graph: operations, edges and split–merge pairs. It
// is constructed at runtime by the application (paper §2: "the flow graph
// is constructed at run time").
type Graph struct {
	name  string
	ops   []*Op
	edges []*Edge
	pairs []*Pair
}

// NewGraph creates an empty flow graph.
func NewGraph(name string) *Graph { return &Graph{name: name} }

// Name returns the graph name.
func (g *Graph) Name() string { return g.name }

// Ops returns all operations in creation order.
func (g *Graph) Ops() []*Op { return g.ops }

// Pairs returns all declared split–merge pairs.
func (g *Graph) Pairs() []*Pair { return g.pairs }

// Edges returns all edges in creation order.
func (g *Graph) Edges() []*Edge { return g.edges }

func (g *Graph) addOp(name string, kind Kind, coll *Collection) *Op {
	if coll == nil {
		panic(fmt.Sprintf("dps: operation %q needs a collection", name))
	}
	op := &Op{id: len(g.ops), name: name, kind: kind, coll: coll, graph: g}
	g.ops = append(g.ops, op)
	return op
}

// Leaf adds a leaf operation executing fn.
func (g *Graph) Leaf(name string, coll *Collection, fn LeafFunc) *Op {
	if fn == nil {
		panic("dps: nil leaf handler")
	}
	op := g.addOp(name, KindLeaf, coll)
	op.leaf = fn
	return op
}

// Split adds a split operation executing fn.
func (g *Graph) Split(name string, coll *Collection, fn SplitFunc) *Op {
	if fn == nil {
		panic("dps: nil split handler")
	}
	op := g.addOp(name, KindSplit, coll)
	op.split = fn
	return op
}

// Merge adds a merge operation; newState creates the per-instance state.
func (g *Graph) Merge(name string, coll *Collection, newState NewStateFunc) *Op {
	if newState == nil {
		panic("dps: nil merge state factory")
	}
	op := g.addOp(name, KindMerge, coll)
	op.newState = newState
	return op
}

// Stream adds a stream operation (fused merge+split); newState creates the
// per-instance state, whose Absorb may post.
func (g *Graph) Stream(name string, coll *Collection, newState NewStateFunc) *Op {
	if newState == nil {
		panic("dps: nil stream state factory")
	}
	op := g.addOp(name, KindStream, coll)
	op.newState = newState
	return op
}

// Connect adds an edge from -> to with the given routing function. Edges
// whose destination is a merge or stream must pass route == nil: objects
// of an instance converge on the thread fixed by the pair's instance
// routing. Returns the edge index within from's outgoing edges (the value
// to pass to Ctx.PostTo).
func (g *Graph) Connect(from, to *Op, route RouteFunc) int {
	if from == nil || to == nil {
		panic("dps: Connect with nil op")
	}
	if from.graph != g || to.graph != g {
		panic("dps: Connect across graphs")
	}
	if to.IsSink() && route != nil {
		panic(fmt.Sprintf("dps: edge %s→%s into a %s must not have a routing function; the pair's instance routing decides", from.name, to.name, to.kind))
	}
	if !to.IsSink() && route == nil {
		panic(fmt.Sprintf("dps: edge %s→%s needs a routing function", from.name, to.name))
	}
	e := &Edge{id: len(g.edges), from: from, to: to, route: route}
	g.edges = append(g.edges, e)
	from.outs = append(from.outs, e)
	return len(from.outs) - 1
}

// PairOps declares that objects posted by source (on the edges given by
// edgeIdx, indices into source's outgoing edges) are aggregated by sink.
// routeInstance fixes the aggregation thread per instance. Every source
// edge that transitively leads to the sink must be listed; the engine
// verifies at runtime that objects arriving at a sink carry the matching
// pair frame.
func (g *Graph) PairOps(source, sink *Op, routeInstance InstanceRouteFunc, edgeIdx ...int) *Pair {
	if !source.IsSource() {
		panic(fmt.Sprintf("dps: %s cannot open pair instances", source))
	}
	if !sink.IsSink() {
		panic(fmt.Sprintf("dps: %s cannot aggregate pair instances", sink))
	}
	if routeInstance == nil {
		routeInstance = FirstThread
	}
	p := &Pair{id: len(g.pairs), source: source, sink: sink, routeInstance: routeInstance}
	g.pairs = append(g.pairs, p)
	if len(edgeIdx) == 0 {
		// Default: all outgoing edges of the source belong to this pair.
		for _, e := range source.outs {
			if e.pair != nil {
				panic(fmt.Sprintf("dps: edge %s→%s already belongs to %s", e.from.name, e.to.name, e.pair))
			}
			e.pair = p
		}
	} else {
		for _, i := range edgeIdx {
			if i < 0 || i >= len(source.outs) {
				panic(fmt.Sprintf("dps: %s has no out edge %d", source, i))
			}
			e := source.outs[i]
			if e.pair != nil {
				panic(fmt.Sprintf("dps: edge %s→%s already belongs to %s", e.from.name, e.to.name, e.pair))
			}
			e.pair = p
		}
	}
	return p
}

// Validate checks the structural integrity of the graph: acyclicity,
// pair consistency, and the reachability of every pair's sink from its
// source edges through leaf chains.
func (g *Graph) Validate() error {
	var errs []error
	// Every source edge must belong to a pair (posts must be accountable).
	for _, e := range g.edges {
		if e.from.IsSource() && e.pair == nil {
			errs = append(errs, fmt.Errorf("edge %s→%s: posts from a %s must belong to a declared pair", e.from.name, e.to.name, e.from.kind))
		}
		if e.from.kind == KindLeaf && e.pair != nil {
			errs = append(errs, fmt.Errorf("edge %s→%s: leaf posts cannot open pair instances", e.from.name, e.to.name))
		}
	}
	// Merge outputs must not be pair edges (they carry the parent frame).
	for _, op := range g.ops {
		if op.kind == KindMerge {
			for _, e := range op.outs {
				if e.pair != nil {
					errs = append(errs, fmt.Errorf("merge %s: outgoing edge to %s cannot open a pair (merge results belong to the parent instance)", op.name, e.to.name))
				}
			}
		}
		if op.kind == KindLeaf && len(op.outs) != 1 {
			errs = append(errs, fmt.Errorf("leaf %s must have exactly one outgoing edge, has %d", op.name, len(op.outs)))
		}
	}
	// Each pair's source edges must reach the sink: directly, through leaf
	// chains (which preserve the instance frame), or through nested
	// split–merge pairs (the frame is buried by the nested split and
	// resurfaces at the nested merge's output).
	for _, p := range g.pairs {
		for _, e := range p.source.outs {
			if e.pair != p {
				continue
			}
			if !g.tokenReaches(e.to, p.sink, make(map[int]bool)) {
				errs = append(errs, fmt.Errorf("%s: edge to %s does not reach sink %s", p, e.to.name, p.sink.name))
			}
		}
	}
	// Acyclicity over edges.
	if err := g.checkAcyclic(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// tokenReaches reports whether an object whose top instance frame belongs
// to a pair with the given sink can reach that sink starting at op:
//   - leaves forward the frame unchanged;
//   - a split buries the frame, which resurfaces at the outputs of the
//     merges paired with that split (recursively through streams);
//   - any other sink operation would be a frame mismatch (dead end).
func (g *Graph) tokenReaches(op, sink *Op, seen map[int]bool) bool {
	if op == sink {
		return true
	}
	if seen[op.id] {
		return false
	}
	seen[op.id] = true
	switch op.kind {
	case KindLeaf:
		for _, e := range op.outs {
			if g.tokenReaches(e.to, sink, seen) {
				return true
			}
		}
	case KindSplit:
		for _, next := range g.continuations(op) {
			if g.tokenReaches(next, sink, seen) {
				return true
			}
		}
	}
	return false
}

// continuations returns the operations at which the parent token of an
// object entering source op resurfaces: the output targets of the merges
// paired with it, recursing through paired streams.
func (g *Graph) continuations(source *Op) []*Op {
	var out []*Op
	for _, p := range g.pairs {
		if p.source != source {
			continue
		}
		switch p.sink.kind {
		case KindMerge:
			for _, e := range p.sink.outs {
				out = append(out, e.to)
			}
		case KindStream:
			out = append(out, g.continuations(p.sink)...)
		}
	}
	return out
}

func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.ops))
	var visit func(op *Op) error
	visit = func(op *Op) error {
		color[op.id] = gray
		for _, e := range op.outs {
			switch color[e.to.id] {
			case gray:
				return fmt.Errorf("flow graph cycle through %s→%s", op.name, e.to.name)
			case white:
				if err := visit(e.to); err != nil {
					return err
				}
			}
		}
		color[op.id] = black
		return nil
	}
	for _, op := range g.ops {
		if color[op.id] == white {
			if err := visit(op); err != nil {
				return err
			}
		}
	}
	return nil
}
