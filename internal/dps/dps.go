// Package dps models the Dynamic Parallel Schedules framework (paper §2):
// parallel applications described as directed acyclic flow graphs of
// split, merge, stream and leaf operations exchanging strongly typed data
// objects, executed by DPS threads grouped into collections that are
// deployed — and re-deployed — onto compute nodes at runtime.
//
// This package holds the *model*: graph structure, operation handlers,
// routing functions, thread collections and validation. Execution lives in
// internal/core (simulated platforms) and internal/parallel (real
// concurrent runtime over TCP); both directly execute the handlers and the
// routing functions registered here, which is what the paper calls direct
// execution of the application and DPS runtime code.
//
// # Instances and pairing
//
// Every data object entering a split operation starts a new instance of
// the corresponding split–merge pair: the objects posted by the split
// (and their 1:1 descendants through leaf operations) carry an instance
// frame that the paired merge pops when aggregating. A stream operation is
// a merge fused with a split: it absorbs the objects of an upstream
// instance and may immediately post objects that open instances of its
// own downstream pairs. Flow control (paper §2) limits the number of data
// objects in circulation inside one pair instance through a credit window.
package dps

import (
	"fmt"

	"dpsim/internal/eventq"
	"dpsim/internal/serial"
)

// DataObject is the unit of information moving along flow-graph edges.
// Objects describe their wire representation through MarshalDPS, which the
// runtime uses both for real transport and for size counting (the paper's
// modified serializer that avoids memory copies).
type DataObject interface {
	serial.Marshaler
}

// SizeOf returns the wire size of a data object in bytes.
func SizeOf(obj DataObject) int64 { return serial.SizeOf(obj) }

// Kind enumerates the fundamental DPS operation types.
type Kind int

const (
	// KindLeaf transforms exactly one input object into one output object.
	KindLeaf Kind = iota
	// KindSplit divides one input object into any number of sub-objects,
	// opening a new instance of its split–merge pair.
	KindSplit
	// KindMerge aggregates all objects of one pair instance into a single
	// result object.
	KindMerge
	// KindStream is a merge fused with a split: it may post new objects
	// for each group of absorbed inputs instead of waiting for all of
	// them (paper §2, "refining the synchronization granularity").
	KindStream
)

func (k Kind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindSplit:
		return "split"
	case KindMerge:
		return "merge"
	case KindStream:
		return "stream"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ExecMode tells operation code how computations are carried out.
type ExecMode int

const (
	// ModeModel: computations are charged from the duration model and the
	// kernel function is only executed when the engine is configured to
	// run computations (small correctness runs). This is the partial
	// direct execution (PDEXEC) regime of paper §4.
	ModeModel ExecMode = iota
	// ModeDirect: kernels actually run; their wall-clock time, scaled by
	// the host-to-target CPU factor, becomes the atomic step duration.
	ModeDirect
	// ModeDirectMemo: like ModeDirect for the first n instances of each
	// computation key, after which the averaged measurement is reused
	// (paper §4: "measure the running times of the first n instances of
	// an operation, and reuse the averaged measure").
	ModeDirectMemo
)

func (m ExecMode) String() string {
	switch m {
	case ModeModel:
		return "model"
	case ModeDirect:
		return "direct"
	case ModeDirectMemo:
		return "direct-memo"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Store is the per-DPS-thread local state visible to the operations that
// execute on that thread (the paper's thread state, e.g. locally stored
// column blocks).
type Store map[string]any

// Ctx is the interface through which operation handlers interact with the
// runtime. It is implemented by the simulation engine and by the real
// parallel runtime; handlers must not retain it beyond the invocation.
type Ctx interface {
	// Post sends obj along the operation's single outgoing edge. It is a
	// convenience for PostTo(0, obj).
	Post(obj DataObject)
	// PostTo sends obj along the i-th outgoing edge of the operation.
	// Posting terminates the current atomic step: time charged so far is
	// accounted and the transfer is initiated when the step completes.
	PostTo(edge int, obj DataObject)
	// Compute performs (or models) a computation. key identifies the
	// computation class for calibration tables; work is the analytic
	// duration estimate at reference node power; f executes the real
	// kernel and may be nil when there is nothing to run. Whether f runs
	// and how the duration is obtained depend on the execution mode.
	Compute(key string, work eventq.Duration, f func())
	// Thread returns the index of the executing DPS thread within the
	// operation's collection.
	Thread() int
	// Width returns the current width of the operation's collection.
	Width() int
	// Node returns the compute node currently hosting the thread.
	Node() int
	// Now returns the current virtual time.
	Now() eventq.Time
	// Mode reports how computations are executed.
	Mode() ExecMode
	// NoAlloc reports whether the application should avoid allocating
	// data payloads (paper §7, PDEXEC NOALLOC).
	NoAlloc() bool
	// Store returns the executing thread's local state.
	Store() Store
	// RunComputations reports whether kernel closures passed to Compute
	// are executed in ModeModel (true for small correctness runs).
	RunComputations() bool
	// Phase records a named phase boundary at the current virtual time
	// (e.g. the start of an LU iteration); the metrics package slices
	// per-phase efficiency from these marks.
	Phase(name string)
}

// LeafFunc processes one input object and must post exactly one output
// object (DPS leaf semantics; the 1:1 discipline is what lets the paired
// merge count arrivals).
type LeafFunc func(ctx Ctx, in DataObject)

// SplitFunc divides the input object, posting any number of sub-objects.
type SplitFunc func(ctx Ctx, in DataObject)

// MergeState is the per-instance state of a merge or stream operation.
// Absorb is called once per arriving object; Finish is called after the
// last object of the instance has been absorbed. Stream states may Post
// from Absorb; merge states usually post their aggregate from Finish.
type MergeState interface {
	Absorb(ctx Ctx, in DataObject)
	Finish(ctx Ctx)
}

// NewStateFunc creates the state for a newly opened merge/stream instance.
// first is the object whose arrival opened the instance.
type NewStateFunc func(first DataObject) MergeState

// Routing selects the destination thread for a posted data object.
type Routing struct {
	// Obj is the object being routed.
	Obj DataObject
	// Width is the current width of the destination collection.
	Width int
	// SrcThread is the collection-local index of the posting thread.
	SrcThread int
	// Seq is the zero-based sequence number of this post within the
	// current pair instance, enabling round-robin distributions.
	Seq int
}

// RouteFunc maps a posted object to a destination thread index in
// [0, Width). The routing functions are evaluated at runtime, directly
// executing application code (paper §2).
type RouteFunc func(r Routing) int

// RoundRobin distributes objects cyclically over the destination
// collection, the "evenly distributed on all threads" routing of the LU
// multiplication requests (paper §5).
func RoundRobin(r Routing) int { return r.Seq % r.Width }

// InstanceRouteFunc fixes the thread (within the sink operation's
// collection) on which a pair instance aggregates. first is the first
// object posted into the instance; width is the sink collection's current
// width. All objects of an instance converge to this thread.
type InstanceRouteFunc func(first DataObject, width int) int

// FirstThread routes every instance to thread 0 of the sink collection.
func FirstThread(DataObject, int) int { return 0 }
