package dps

import (
	"strings"
	"testing"
)

func buildDotGraph() *Graph {
	coll := NewCollection("workers", 4, 4)
	master := NewCollection("master", 1, 4)
	g := NewGraph("demo")
	split := g.Split("distribute", master, func(Ctx, DataObject) {})
	leaf := g.Leaf("compute", coll, func(Ctx, DataObject) {})
	stream := g.Stream("relay", master, newNullState)
	leaf2 := g.Leaf("post", coll, func(Ctx, DataObject) {})
	merge := g.Merge("collect", master, newNullState)
	g.Connect(split, leaf, RoundRobin)
	g.Connect(leaf, stream, nil)
	e := g.Connect(stream, leaf2, RoundRobin)
	g.Connect(leaf2, merge, nil)
	g.PairOps(split, stream, nil)
	p := g.PairOps(stream, merge, nil, e)
	p.SetWindow(4)
	return g
}

func TestDotOutput(t *testing.T) {
	g := buildDotGraph()
	dot := g.Dot()
	for _, want := range []string{
		`digraph "demo"`,
		"invtriangle", // split
		"triangle",    // merge
		"diamond",     // stream
		`"distribute"`,
		"window 4",
		"subgraph cluster_",
		"workers (width 4)",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
	// Every edge appears.
	if strings.Count(dot, "->") != 4 {
		t.Fatalf("dot has %d edges, want 4:\n%s", strings.Count(dot, "->"), dot)
	}
}

func TestGraphSummary(t *testing.T) {
	g := buildDotGraph()
	sum := g.Summary()
	for _, want := range []string{"5 ops", "4 edges", "2 pairs", "distribute", "stream"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}
