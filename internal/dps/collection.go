package dps

import "fmt"

// Collection is a named group of DPS threads onto which operations are
// mapped. The deployment of threads onto compute nodes happens at runtime
// and may change while the application executes: that is the dynamic node
// allocation the paper simulates. Width may shrink or grow at safe points
// (instance boundaries) and every thread's placement may be changed.
//
// Collections are shared mutable state between the application and the
// engine; the single-threaded engines read them at routing time, so a
// resize performed inside an operation handler takes effect for all
// subsequently routed objects.
type Collection struct {
	name     string
	width    int
	maxWidth int
	place    []int // thread index -> node

	// history of (virtual-time, width, nodes) records appended by the
	// engine on every change, for dynamic-efficiency accounting.
	onChange func()
}

// NewCollection creates a collection of width threads placed round-robin
// over nodes. maxWidth bounds later growth; it defaults to width.
func NewCollection(name string, width, nodes int) *Collection {
	if width <= 0 || nodes <= 0 {
		panic(fmt.Sprintf("dps: collection %q needs positive width (%d) and nodes (%d)", name, width, nodes))
	}
	c := &Collection{name: name, width: width, maxWidth: width}
	c.place = make([]int, width)
	for i := range c.place {
		c.place[i] = i % nodes
	}
	return c
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Width returns the number of active threads.
func (c *Collection) Width() int { return c.width }

// MaxWidth returns the largest width the collection ever had.
func (c *Collection) MaxWidth() int { return c.maxWidth }

// Node returns the node hosting thread i.
func (c *Collection) Node(i int) int {
	if i < 0 || i >= len(c.place) {
		panic(fmt.Sprintf("dps: collection %q has no thread %d (width %d)", c.name, i, c.width))
	}
	return c.place[i]
}

// Place reassigns thread i to node (thread migration). Only safe at
// instance boundaries; the engines validate that no state is in flight for
// the affected threads when the application follows the safe-point
// discipline.
func (c *Collection) Place(i, node int) {
	if i < 0 || i >= len(c.place) {
		panic(fmt.Sprintf("dps: placing thread %d outside collection %q (width %d)", i, c.name, c.width))
	}
	if node < 0 {
		panic("dps: negative node")
	}
	if c.place[i] == node {
		return
	}
	c.place[i] = node
	c.changed()
}

// PlaceAll assigns every thread i to nodes[i%len(nodes)].
func (c *Collection) PlaceAll(nodes []int) {
	if len(nodes) == 0 {
		panic("dps: PlaceAll with no nodes")
	}
	for i := 0; i < c.width; i++ {
		c.place[i] = nodes[i%len(nodes)]
	}
	c.changed()
}

// Resize changes the number of active threads. Growing beyond the current
// placement extends it round-robin over the nodes used so far; shrinking
// deactivates the trailing threads (the paper's thread removal). The
// engine reports an error if a data object is later routed to a
// deactivated thread.
func (c *Collection) Resize(width int) {
	if width <= 0 {
		panic(fmt.Sprintf("dps: resize of %q to %d", c.name, width))
	}
	oldLen := len(c.place)
	for len(c.place) < width {
		c.place = append(c.place, c.place[len(c.place)%oldLen])
	}
	c.width = width
	if width > c.maxWidth {
		c.maxWidth = width
	}
	c.changed()
}

// Nodes returns the distinct nodes hosting the currently active threads,
// in ascending order. Its length is the number of allocated compute nodes,
// the p of the dynamic-efficiency metric.
func (c *Collection) Nodes() []int {
	seen := make(map[int]bool)
	var out []int
	for i := 0; i < c.width; i++ {
		if !seen[c.place[i]] {
			seen[c.place[i]] = true
			out = append(out, c.place[i])
		}
	}
	// insertion sort: the list is tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SetOnChange registers the engine callback fired after every placement or
// width change (used to record allocation history).
func (c *Collection) SetOnChange(fn func()) { c.onChange = fn }

func (c *Collection) changed() {
	if c.onChange != nil {
		c.onChange()
	}
}
