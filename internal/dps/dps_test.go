package dps

import (
	"strings"
	"testing"
	"testing/quick"

	"dpsim/internal/serial"
)

type obj struct{ n int }

func (o *obj) MarshalDPS(w serial.Writer) { w.I64(int64(o.n)) }

type nullState struct{}

func (nullState) Absorb(Ctx, DataObject) {}
func (nullState) Finish(Ctx)             {}

func newNullState(DataObject) MergeState { return nullState{} }

func TestSizeOf(t *testing.T) {
	if got := SizeOf(&obj{}); got != 8 {
		t.Fatalf("SizeOf = %d, want 8", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindLeaf: "leaf", KindSplit: "split", KindMerge: "merge", KindStream: "stream",
	} {
		if k.String() != want {
			t.Fatalf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ModeModel.String() != "model" || ModeDirect.String() != "direct" || ModeDirectMemo.String() != "direct-memo" {
		t.Fatal("mode strings wrong")
	}
}

// --- Collection ---

func TestCollectionRoundRobinPlacement(t *testing.T) {
	c := NewCollection("w", 8, 4)
	for i := 0; i < 8; i++ {
		if c.Node(i) != i%4 {
			t.Fatalf("thread %d on node %d, want %d", i, c.Node(i), i%4)
		}
	}
	if len(c.Nodes()) != 4 {
		t.Fatalf("Nodes = %v", c.Nodes())
	}
}

func TestCollectionFewerThreadsThanNodes(t *testing.T) {
	c := NewCollection("w", 2, 8)
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestCollectionResizeShrink(t *testing.T) {
	c := NewCollection("w", 8, 8)
	c.Resize(4)
	if c.Width() != 4 {
		t.Fatalf("Width = %d", c.Width())
	}
	if got := len(c.Nodes()); got != 4 {
		t.Fatalf("allocated nodes after shrink = %d", got)
	}
	if c.MaxWidth() != 8 {
		t.Fatalf("MaxWidth = %d", c.MaxWidth())
	}
}

func TestCollectionResizeGrow(t *testing.T) {
	c := NewCollection("w", 2, 2)
	c.Resize(6)
	if c.Width() != 6 {
		t.Fatalf("Width = %d", c.Width())
	}
	// Growth extends placement cyclically over the prior placement.
	for i := 0; i < 6; i++ {
		if c.Node(i) != i%2 {
			t.Fatalf("thread %d on node %d, want %d", i, c.Node(i), i%2)
		}
	}
}

func TestCollectionPlaceMigration(t *testing.T) {
	c := NewCollection("w", 4, 4)
	c.Place(3, 0)
	if c.Node(3) != 0 {
		t.Fatal("Place did not move thread")
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("allocated nodes = %d, want 3", got)
	}
}

func TestCollectionPlaceAll(t *testing.T) {
	c := NewCollection("w", 8, 8)
	c.PlaceAll([]int{0, 1, 2, 3})
	for i := 0; i < 8; i++ {
		if c.Node(i) != i%4 {
			t.Fatalf("thread %d on node %d", i, c.Node(i))
		}
	}
}

func TestCollectionOnChange(t *testing.T) {
	c := NewCollection("w", 4, 4)
	calls := 0
	c.SetOnChange(func() { calls++ })
	c.Resize(2)
	c.Place(0, 1)
	c.Place(0, 1) // no-op: same node
	c.PlaceAll([]int{0})
	if calls != 3 {
		t.Fatalf("onChange fired %d times, want 3", calls)
	}
}

func TestCollectionNodesSorted(t *testing.T) {
	prop := func(widthRaw, nodesRaw uint8) bool {
		width := int(widthRaw%16) + 1
		nodes := int(nodesRaw%8) + 1
		c := NewCollection("w", width, nodes)
		ns := c.Nodes()
		for i := 1; i < len(ns); i++ {
			if ns[i] <= ns[i-1] {
				return false
			}
		}
		want := width
		if nodes < want {
			want = nodes
		}
		return len(ns) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionPanics(t *testing.T) {
	mustPanic(t, "zero width", func() { NewCollection("w", 0, 1) })
	c := NewCollection("w", 2, 2)
	mustPanic(t, "bad node index", func() { c.Node(5) })
	mustPanic(t, "bad place index", func() { c.Place(9, 0) })
	mustPanic(t, "negative node", func() { c.Place(0, -1) })
	mustPanic(t, "zero resize", func() { c.Resize(0) })
	mustPanic(t, "empty PlaceAll", func() { c.PlaceAll(nil) })
}

// --- Graph construction and validation ---

func buildValidGraph(t *testing.T) (*Graph, *Collection) {
	t.Helper()
	coll := NewCollection("c", 4, 4)
	g := NewGraph("g")
	split := g.Split("split", coll, func(Ctx, DataObject) {})
	leaf := g.Leaf("work", coll, func(Ctx, DataObject) {})
	merge := g.Merge("merge", coll, newNullState)
	g.Connect(split, leaf, RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	return g, coll
}

func TestValidGraph(t *testing.T) {
	g, _ := buildValidGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	if len(g.Ops()) != 3 || len(g.Edges()) != 2 || len(g.Pairs()) != 1 {
		t.Fatal("graph counts wrong")
	}
}

func TestPairDefaults(t *testing.T) {
	g, _ := buildValidGraph(t)
	p := g.Pairs()[0]
	if p.Window() != 0 {
		t.Fatal("default window not 0")
	}
	p.SetWindow(5)
	if p.Window() != 5 {
		t.Fatal("SetWindow failed")
	}
	if p.RouteInstance(&obj{}, 4) != 0 {
		t.Fatal("default instance routing not thread 0")
	}
	if p.Source().Name() != "split" || p.Sink().Name() != "merge" {
		t.Fatal("pair endpoints wrong")
	}
}

func TestEdgeIntoMergeMustBeNilRouted(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	merge := g.Merge("m", coll, newNullState)
	mustPanic(t, "routed edge into merge", func() {
		g.Connect(split, merge, RoundRobin)
	})
}

func TestEdgeIntoLeafNeedsRouting(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	leaf := g.Leaf("l", coll, func(Ctx, DataObject) {})
	mustPanic(t, "nil-routed edge into leaf", func() {
		g.Connect(split, leaf, nil)
	})
}

func TestUnpairedSplitEdgeRejected(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	leaf := g.Leaf("l", coll, func(Ctx, DataObject) {})
	merge := g.Merge("m", coll, newNullState)
	g.Connect(split, leaf, RoundRobin)
	g.Connect(leaf, merge, nil)
	// no PairOps call
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "declared pair") {
		t.Fatalf("unpaired split accepted: %v", err)
	}
}

func TestLeafWithTwoOutEdgesRejected(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	leaf := g.Leaf("l", coll, func(Ctx, DataObject) {})
	m1 := g.Merge("m1", coll, newNullState)
	m2 := g.Merge("m2", coll, newNullState)
	g.Connect(split, leaf, RoundRobin)
	g.Connect(leaf, m1, nil)
	g.Connect(leaf, m2, nil)
	g.PairOps(split, m1, nil)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "exactly one outgoing edge") {
		t.Fatalf("two-output leaf accepted: %v", err)
	}
}

func TestPairSinkUnreachableRejected(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	leaf := g.Leaf("l", coll, func(Ctx, DataObject) {})
	m1 := g.Merge("m1", coll, newNullState)
	m2 := g.Merge("m2", coll, newNullState)
	g.Connect(split, leaf, RoundRobin)
	g.Connect(leaf, m1, nil)
	_ = m2
	g.PairOps(split, m2, nil) // wrong sink: leaf path goes to m1
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "does not reach sink") {
		t.Fatalf("unreachable pair sink accepted: %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	l1 := g.Leaf("l1", coll, func(Ctx, DataObject) {})
	l2 := g.Leaf("l2", coll, func(Ctx, DataObject) {})
	g.Connect(l1, l2, RoundRobin)
	g.Connect(l2, l1, RoundRobin)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle accepted: %v", err)
	}
}

func TestMergeOutEdgeCannotOpenPair(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	merge := g.Merge("m", coll, newNullState)
	m2 := g.Merge("m2", coll, newNullState)
	g.Connect(merge, m2, nil)
	mustPanic(t, "merge as pair source", func() {
		g.PairOps(merge, m2, nil)
	})
}

func TestStreamCanSourceMultiplePairs(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	stream := g.Stream("st", coll, newNullState)
	l1 := g.Leaf("l1", coll, func(Ctx, DataObject) {})
	l2 := g.Leaf("l2", coll, func(Ctx, DataObject) {})
	m1 := g.Merge("m1", coll, newNullState)
	m2 := g.Merge("m2", coll, newNullState)
	g.Connect(split, stream, nil)
	e1 := g.Connect(stream, l1, RoundRobin)
	e2 := g.Connect(stream, l2, RoundRobin)
	g.Connect(l1, m1, nil)
	g.Connect(l2, m2, nil)
	g.PairOps(split, stream, nil)
	g.PairOps(stream, m1, nil, e1)
	g.PairOps(stream, m2, nil, e2)
	if err := g.Validate(); err != nil {
		t.Fatalf("stream with two output pairs rejected: %v", err)
	}
}

func TestEdgeCannotJoinTwoPairs(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g := NewGraph("g")
	split := g.Split("s", coll, func(Ctx, DataObject) {})
	merge := g.Merge("m", coll, newNullState)
	g.Connect(split, merge, nil)
	g.PairOps(split, merge, nil)
	mustPanic(t, "double pair", func() { g.PairOps(split, merge, nil) })
}

func TestConnectAcrossGraphsPanics(t *testing.T) {
	coll := NewCollection("c", 2, 2)
	g1 := NewGraph("g1")
	g2 := NewGraph("g2")
	s := g1.Split("s", coll, func(Ctx, DataObject) {})
	l := g2.Leaf("l", coll, func(Ctx, DataObject) {})
	mustPanic(t, "cross-graph connect", func() { g1.Connect(s, l, RoundRobin) })
}

func TestRoundRobinRouting(t *testing.T) {
	for seq := 0; seq < 10; seq++ {
		got := RoundRobin(Routing{Width: 4, Seq: seq})
		if got != seq%4 {
			t.Fatalf("RoundRobin(seq=%d) = %d", seq, got)
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
