package dps

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the flow graph in Graphviz dot syntax — the textual
// equivalent of the paper's flow-graph figures (Figs. 1, 5, 7). Operation
// shapes follow the paper's conventions: splits and merges as triangles
// (here: invtriangle/triangle), streams as diamonds, leaves as boxes.
// Pair edges are annotated with their flow-control window.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")

	// Group operations by collection for visual clustering.
	byColl := make(map[*Collection][]*Op)
	var colls []*Collection
	for _, op := range g.ops {
		if _, ok := byColl[op.coll]; !ok {
			colls = append(colls, op.coll)
		}
		byColl[op.coll] = append(byColl[op.coll], op)
	}
	sort.Slice(colls, func(i, j int) bool { return colls[i].name < colls[j].name })
	for ci, coll := range colls {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"%s (width %d)\";\n", ci, coll.name, coll.Width())
		for _, op := range byColl[coll] {
			shape := "box"
			switch op.kind {
			case KindSplit:
				shape = "invtriangle"
			case KindMerge:
				shape = "triangle"
			case KindStream:
				shape = "diamond"
			}
			fmt.Fprintf(&b, "    op%d [label=%q shape=%s];\n", op.id, op.name, shape)
		}
		b.WriteString("  }\n")
	}
	for _, e := range g.edges {
		attrs := []string{}
		if e.pair != nil {
			label := fmt.Sprintf("pair %d", e.pair.id)
			if w := e.pair.Window(); w > 0 {
				label += fmt.Sprintf(" (window %d)", w)
			}
			attrs = append(attrs, fmt.Sprintf("label=%q", label))
		}
		attr := ""
		if len(attrs) > 0 {
			attr = " [" + strings.Join(attrs, " ") + "]"
		}
		fmt.Fprintf(&b, "  op%d -> op%d%s;\n", e.from.id, e.to.id, attr)
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line-per-op textual description of the graph.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s: %d ops, %d edges, %d pairs\n", g.name, len(g.ops), len(g.edges), len(g.pairs))
	for _, op := range g.ops {
		var outs []string
		for _, e := range op.outs {
			outs = append(outs, e.to.name)
		}
		fmt.Fprintf(&b, "  %-24s %-7s on %-10s -> %s\n", op.name, op.kind, op.coll.name, strings.Join(outs, ", "))
	}
	return b.String()
}
