package experiments

import (
	"strconv"
	"strings"
	"testing"

	"dpsim/internal/lu"
	"dpsim/internal/metrics"
)

// quick returns the fast test setup: one seed, half-scale problems.
func quick() Setup { return Setup{Quick: true, Seeds: 1} }

func TestMeasureAndPredictAgree(t *testing.T) {
	cfg := lu.Config{N: 1296, R: 162, Nodes: 4, Pipelined: true}
	run, err := MeasureAndPredict("t", cfg, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Measured) != 1 {
		t.Fatalf("measured runs = %d", len(run.Measured))
	}
	m, p := run.MeasuredMean(), run.Predicted
	if m <= 0 || p <= 0 {
		t.Fatalf("times: measured %v predicted %v", m, p)
	}
	diff := (p - m) / m
	if diff < -0.25 || diff > 0.25 {
		t.Fatalf("prediction error %.1f%% implausibly large (measured %.1fs predicted %.1fs)",
			diff*100, m, p)
	}
	if len(run.MeasuredIters) != 8 || len(run.PredictedIters) != 8 {
		t.Fatalf("iterations: %d measured, %d predicted",
			len(run.MeasuredIters), len(run.PredictedIters))
	}
}

func TestMeasureRepetitionsDiffer(t *testing.T) {
	cfg := lu.Config{N: 648, R: 162, Nodes: 4}
	run, err := MeasureAndPredict("t", cfg, Setup{Quick: true, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Measured) != 3 {
		t.Fatalf("measured = %v", run.Measured)
	}
	if run.Measured[0] == run.Measured[1] && run.Measured[1] == run.Measured[2] {
		t.Fatal("noise seeds produced identical measured times")
	}
	// But the spread should be small (a few percent).
	lo, hi := run.Measured[0], run.Measured[0]
	for _, m := range run.Measured {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if (hi-lo)/lo > 0.15 {
		t.Fatalf("measured spread too wide: %v", run.Measured)
	}
}

func TestSamplesFromRun(t *testing.T) {
	run := &LURun{Label: "x", Measured: []float64{10, 11}, Predicted: 10.5}
	samples := run.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Err() <= 0 || samples[1].Err() >= 0 {
		t.Fatalf("sample errors: %v, %v; want over- then under-prediction",
			samples[0].Err(), samples[1].Err())
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "long-header"}}
	tb.Add("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	out := tb.Render()
	for _, want := range []string{"== T ==", "long-header", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig9Quick(t *testing.T) {
	tb, samples, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("fig9 rows = %d, want 5 variants", len(tb.Rows))
	}
	if len(samples) == 0 {
		t.Fatal("no error samples")
	}
	out := tb.Render()
	for _, v := range []string{"PM", "P+FC", "P+PM+FC"} {
		if !strings.Contains(out, v) {
			t.Fatalf("fig9 missing variant %s:\n%s", v, out)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	tb, samples, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("fig11 rows = %d, want 8 iterations", len(tb.Rows))
	}
	if len(samples) != 3 {
		t.Fatalf("fig11 samples = %d, want 3 configs × 1 seed", len(samples))
	}
	// Efficiency of the 8-thread config at iteration 1 must be below the
	// 4-thread config (more nodes, lower efficiency; paper: 60.2% vs
	// 37.6%).
	hdr := tb.Header
	if hdr[2] != "4 threads (meas)" {
		t.Fatalf("unexpected header layout: %v", hdr)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("bad pct cell %q", cell)
		}
		return v
	}
	eff4 := parse(tb.Rows[0][2])
	eff8 := parse(tb.Rows[0][4])
	if eff8 >= eff4 {
		t.Fatalf("iteration 1: 8-thread efficiency %.1f >= 4-thread %.1f", eff8, eff4)
	}
}

func TestFig12Quick(t *testing.T) {
	tb, samples, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("fig12 rows = %d", len(tb.Rows))
	}
	if len(samples) != 5 {
		t.Fatalf("fig12 samples = %d", len(samples))
	}
}

func TestFig13Summary(t *testing.T) {
	samples := []metrics.ErrorSample{
		{Measured: 100, Predicted: 102},
		{Measured: 100, Predicted: 98},
		{Measured: 100, Predicted: 109},
	}
	tb, hist := Fig13(samples)
	if len(tb.Rows) != 1 {
		t.Fatal("fig13 rows")
	}
	if !strings.Contains(hist, "#") {
		t.Fatalf("histogram empty:\n%s", hist)
	}
}

func TestAblationsQuick(t *testing.T) {
	tb, err := Ablations(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("ablations rows = %d, want 7", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"baseline", "10x bandwidth", "max-min"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	tb, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("table1 rows = %d", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"Direct execution", "PDEXEC (sim)", "NOALLOC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestHostFlopsPositive(t *testing.T) {
	f := HostFlopsPerSec()
	if f < 1e6 {
		t.Fatalf("host flops = %v", f)
	}
}

func TestWindowSweepQuick(t *testing.T) {
	tb, err := WindowSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("window sweep rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "unbounded" {
		t.Fatalf("first row = %v", tb.Rows[0])
	}
}
