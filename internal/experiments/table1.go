package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dpsim/internal/core"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/linalg"
	"dpsim/internal/lu"
	"dpsim/internal/rng"
)

// HostFlopsPerSec benchmarks this host's dense-multiply throughput; the
// ratio to the modeled UltraSparc II speed becomes the direct-execution
// CPU scale factor (host wall seconds → target virtual seconds).
func HostFlopsPerSec() float64 {
	const n = 144
	src := rng.New(1)
	a := linalg.Random(n, n, src)
	b := linalg.Random(n, n, src)
	c := linalg.NewMat(n, n)
	// Warm up, then time at least 50 ms.
	linalg.Gemm(1, a, b, 0, c)
	reps := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond {
		linalg.Gemm(1, a, b, 0, c)
		reps++
	}
	elapsed := time.Since(start).Seconds()
	return float64(reps) * linalg.GemmFlops(n, n, n) / elapsed
}

// runCost captures the host-side cost of running one simulation.
type runCost struct {
	wall      float64 // host seconds
	allocMB   float64 // bytes allocated during the run
	predicted float64 // predicted (virtual) application running time
}

// measureSimulation runs fn between memory snapshots.
func measureSimulation(fn func() (eventq.Time, error)) (runCost, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	elapsed, err := fn()
	wall := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	return runCost{
		wall:      wall,
		allocMB:   float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20),
		predicted: elapsed.Seconds(),
	}, err
}

// Table1 regenerates the paper's Table 1: the host-side running time and
// memory consumption of the three simulation settings — direct execution,
// partial direct execution (PDEXEC) and PDEXEC without allocations
// (NOALLOC) — together with the predicted application running time of
// each, plus the testbed reference times.
//
// The paper ran this on two physical hosts; here the direct-execution row
// depends on this host's speed (reported via the measured CPU scale)
// while the PDEXEC rows are host-independent, which is the portability
// claim of §7. An extra row predicts from purely analytic durations to
// show the prediction is insensitive to the duration source.
func Table1(s Setup) (*Table, error) {
	s.fill()
	n := s.N()
	var r int
	if s.Quick {
		r = 72 // 864/72 = 12 blocks, the structure of the paper's r=216
	} else {
		r = 216
	}
	if s.Quick {
		n = 864
	}
	cfg := lu.Config{N: n, R: r, Nodes: 8}
	hostFlops := HostFlopsPerSec()
	scale := hostFlops / cfg.Costs.FlopsPerSec
	if cfg.Costs.FlopsPerSec == 0 {
		scale = hostFlops / lu.DefaultCostModel().FlopsPerSec
	}

	t := &Table{
		Title:  fmt.Sprintf("Table 1 — simulation cost, LU %dx%d r=%d on 8 nodes", n, n, r),
		Header: []string{"setting", "sim wall[s]", "alloc[MB]", "predicted[s]"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host ≈ %.0f MFLOP/s → direct-execution CPU scale %.1fx to the 63 MFLOP/s target", hostFlops/1e6, scale))

	// Reference: the "real application" on the virtual cluster.
	ref, err := MeasureAndPredict("table1-ref", cfg, Setup{Quick: s.Quick, Seeds: 1, BaseSeed: s.BaseSeed})
	if err != nil {
		return nil, err
	}
	t.Add("Real application (8 nodes, testbed)", "-", "-", f1(ref.MeasuredMean()))
	t.Add("Real application (1 node, serial model)", "-", "-",
		f1(lu.TotalSerialWork(lu.DefaultCostModel(), n, r).Seconds()))

	// Direct execution: kernels actually run on this host; wall time is
	// measured and scaled. Records the duration table for PDEXEC.
	var table map[string]eventq.Duration
	direct, err := measureSimulation(func() (eventq.Time, error) {
		app, err := lu.Build(cfg)
		if err != nil {
			return 0, err
		}
		eng, err := core.New(core.Config{
			Graph:    app.Graph,
			Platform: core.NewSimPlatform(8, simNetParams(), simCPUParams()),
			Mode:     dps.ModeDirectMemo,
			MemoN:    3,
			// CPUScale converts host wall seconds to target seconds: the
			// host is `scale` times faster than the modeled UltraSparc.
			CPUScale:        scale,
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
		})
		if err != nil {
			return 0, err
		}
		app.Prepare(eng, 1)
		app.Start(eng)
		res, err := eng.Run()
		if err != nil {
			return 0, err
		}
		table = eng.DurationTable()
		return res.Elapsed, nil
	})
	if err != nil {
		return nil, err
	}
	t.Add("Direct execution (sim)", f2(direct.wall), f1(direct.allocMB), f1(direct.predicted))

	// PDEXEC: kernel calls replaced by the benchmarked durations; the
	// matrix is still allocated (the paper's middle row).
	pdexec, err := measureSimulation(func() (eventq.Time, error) {
		app, err := lu.Build(cfg)
		if err != nil {
			return 0, err
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(8, simNetParams(), simCPUParams()),
			Durations:       core.TableSource{Table: table},
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
		})
		if err != nil {
			return 0, err
		}
		app.Prepare(eng, 1) // allocates the full matrix, as PDEXEC did
		app.Start(eng)
		res, err := eng.Run()
		return res.Elapsed, err
	})
	if err != nil {
		return nil, err
	}
	t.Add("PDEXEC (sim)", f2(pdexec.wall), f1(pdexec.allocMB), f1(pdexec.predicted))

	// PDEXEC NOALLOC: no matrix, no payloads; sizes from the counting
	// serializer.
	noalloc, err := measureSimulation(func() (eventq.Time, error) {
		app, err := lu.Build(cfg)
		if err != nil {
			return 0, err
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(8, simNetParams(), simCPUParams()),
			Durations:       core.TableSource{Table: table},
			NoAlloc:         true,
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
		})
		if err != nil {
			return 0, err
		}
		app.Start(eng)
		res, err := eng.Run()
		return res.Elapsed, err
	})
	if err != nil {
		return nil, err
	}
	t.Add("PDEXEC NOALLOC (sim)", f2(noalloc.wall), f1(noalloc.allocMB), f1(noalloc.predicted))

	// Portability check: predicting from purely analytic durations (a
	// different duration source, standing in for a different host).
	analytic, err := measureSimulation(func() (eventq.Time, error) {
		app, err := lu.Build(cfg)
		if err != nil {
			return 0, err
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(8, simNetParams(), simCPUParams()),
			NoAlloc:         true,
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
		})
		if err != nil {
			return 0, err
		}
		app.Start(eng)
		res, err := eng.Run()
		return res.Elapsed, err
	})
	if err != nil {
		return nil, err
	}
	t.Add("PDEXEC NOALLOC (analytic durations)", f2(analytic.wall), f1(analytic.allocMB), f1(analytic.predicted))
	return t, nil
}
