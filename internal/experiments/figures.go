package experiments

import (
	"fmt"

	"dpsim/internal/lu"
	"dpsim/internal/metrics"
)

// variant describes one flow-graph modification combination.
type variant struct {
	label string
	pm    bool
	p     bool
	fc    bool
}

// paperVariants are the bars of Figs. 8 and 9.
var paperVariants = []variant{
	{label: "PM", pm: true},
	{label: "P", p: true},
	{label: "P+PM", p: true, pm: true},
	{label: "P+FC", p: true, fc: true},
	{label: "P+PM+FC", p: true, pm: true, fc: true},
}

// apply returns cfg with the variant's modifications.
func (v variant) apply(cfg lu.Config) lu.Config {
	cfg.Pipelined = v.p
	cfg.ParallelMult = v.pm
	if v.fc {
		threads := cfg.Threads
		if threads == 0 {
			threads = cfg.N / cfg.R
		}
		cfg.Window = 2 * threads
	}
	return cfg
}

// improvementTable runs ref plus each config and tabulates the relative
// performance improvement (paper metric: reference time over variant
// time), measured and predicted.
func improvementTable(title string, ref lu.Config, rows []struct {
	label string
	cfg   lu.Config
}, s Setup) (*Table, []metrics.ErrorSample, error) {
	refRun, err := MeasureAndPredict("ref", ref, s)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  title,
		Header: []string{"variant", "measured[s]", "predicted[s]", "improv(meas)", "improv(pred)", "pred.err"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("reference: basic graph r=%d, measured %.1fs, predicted %.1fs",
		ref.R, refRun.MeasuredMean(), refRun.Predicted))
	samples := refRun.Samples()
	for _, row := range rows {
		run, err := MeasureAndPredict(row.label, row.cfg, s)
		if err != nil {
			return nil, nil, err
		}
		m := run.MeasuredMean()
		imp := refRun.MeasuredMean() / m
		impPred := refRun.Predicted / run.Predicted
		errPct := (run.Predicted - m) / m
		t.Add(row.label, f1(m), f1(run.Predicted), f2(imp), f2(impPred), pct(errPct))
		samples = append(samples, run.Samples()...)
	}
	return t, samples, nil
}

// Fig8 regenerates Fig. 8: impact of the modifications at 4 nodes with the
// coarse reference decomposition, against simply refining the granularity.
func Fig8(s Setup) (*Table, []metrics.ErrorSample, error) {
	s.fill()
	n := s.N()
	var refR int
	var granularities []int
	if s.Quick {
		refR = 324
		granularities = []int{162, 108, 81, 54}
	} else {
		refR = 648
		granularities = []int{324, 216, 162, 108}
	}
	ref := lu.Config{N: n, R: refR, Nodes: 4}
	var rows []struct {
		label string
		cfg   lu.Config
	}
	for _, v := range paperVariants {
		rows = append(rows, struct {
			label string
			cfg   lu.Config
		}{v.label, v.apply(ref)})
	}
	for _, r := range granularities {
		rows = append(rows, struct {
			label string
			cfg   lu.Config
		}{fmt.Sprintf("r=%d", r), lu.Config{N: n, R: r, Nodes: 4}})
	}
	return improvementTable("Fig. 8 — impact of modifications on running time (4 nodes)", ref, rows, s)
}

// Fig9 regenerates Fig. 9: the same modifications against the well-tuned
// reference (two column blocks per node), where PM hurts.
func Fig9(s Setup) (*Table, []metrics.ErrorSample, error) {
	s.fill()
	ref := lu.Config{N: s.N(), R: s.scale(324), Nodes: 4}
	var rows []struct {
		label string
		cfg   lu.Config
	}
	for _, v := range paperVariants {
		rows = append(rows, struct {
			label string
			cfg   lu.Config
		}{v.label, v.apply(ref)})
	}
	return improvementTable("Fig. 9 — impact of modifications (4 nodes, fine granularity)", ref, rows, s)
}

// Fig10 regenerates Fig. 10: decomposition granularity × pipelining
// strategy at 8 nodes.
func Fig10(s Setup) (*Table, []metrics.ErrorSample, error) {
	s.fill()
	n := s.N()
	var rs []int
	if s.Quick {
		rs = []int{54, 81, 108, 162, 216}
	} else {
		rs = []int{81, 108, 162, 216, 324}
	}
	refR := rs[len(rs)-1]
	ref := lu.Config{N: n, R: refR, Nodes: 8}
	refRun, err := MeasureAndPredict("ref", ref, s)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Fig. 10 — impact of decomposition granularity (8 nodes)",
		Header: []string{"r", "strategy", "measured[s]", "predicted[s]", "improv(meas)", "improv(pred)", "pred.err"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("reference: basic graph r=%d, measured %.1fs", refR, refRun.MeasuredMean()))
	samples := refRun.Samples()
	strategies := []variant{
		{label: "Basic"},
		{label: "P", p: true},
		{label: "P+FC", p: true, fc: true},
	}
	for _, r := range rs {
		for _, v := range strategies {
			cfg := v.apply(lu.Config{N: n, R: r, Nodes: 8})
			run, err := MeasureAndPredict(fmt.Sprintf("r=%d/%s", r, v.label), cfg, s)
			if err != nil {
				return nil, nil, err
			}
			m := run.MeasuredMean()
			t.Add(fmt.Sprintf("%d", r), v.label, f1(m), f1(run.Predicted),
				f2(refRun.MeasuredMean()/m), f2(refRun.Predicted/run.Predicted),
				pct((run.Predicted-m)/m))
			samples = append(samples, run.Samples()...)
		}
	}
	return t, samples, nil
}

// removalConfigs returns the five allocation strategies of Fig. 12 (the
// first three are also Fig. 11's curves). Worker threads store one column
// block each on 4 nodes; multiplication threads live one per node, so
// removing them deallocates nodes.
func removalConfigs(s Setup) []struct {
	label string
	cfg   lu.Config
} {
	n := s.N()
	r := s.scale(324)
	base := lu.Config{
		N: n, R: r,
		Nodes:   4,
		Threads: n / r, // 8 column blocks on 4 storage nodes
	}
	with := func(multThreads, multNodes int, rm ...lu.Removal) lu.Config {
		c := base
		c.MultThreads = multThreads
		c.MultNodes = multNodes
		c.Removals = rm
		return c
	}
	return []struct {
		label string
		cfg   lu.Config
	}{
		{"4 threads", with(4, 4)},
		{"8 threads", with(8, 8)},
		{"8 threads, kill 4 after it. 1", with(8, 8, lu.Removal{AfterIter: 1, MultThreads: 4})},
		{"8 threads, kill 4 after it. 4", with(8, 8, lu.Removal{AfterIter: 4, MultThreads: 4})},
		{"8 thr, kill 2 after it.2 + 2 after it.3", with(8, 8,
			lu.Removal{AfterIter: 2, MultThreads: 6},
			lu.Removal{AfterIter: 3, MultThreads: 4})},
	}
}

// Fig11 regenerates Fig. 11: dynamic efficiency per iteration for the
// static 8-node and 4-node allocations and the kill-4-after-iteration-1
// strategy, measured and predicted.
func Fig11(s Setup) (*Table, []metrics.ErrorSample, error) {
	s.fill()
	cfgs := removalConfigs(s)[:3]
	t := &Table{
		Title: "Fig. 11 — dynamic efficiency of LU iterations",
	}
	t.Header = []string{"iteration", "serial[s]"}
	for _, c := range cfgs {
		t.Header = append(t.Header, c.label+" (meas)", c.label+" (sim)")
	}
	var samples []metrics.ErrorSample
	var runs []*LURun
	for _, c := range cfgs {
		run, err := MeasureAndPredict(c.label, c.cfg, s)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, run)
		samples = append(samples, run.Samples()...)
	}
	blocks := cfgs[0].cfg.N / cfgs[0].cfg.R
	for k := 0; k < blocks; k++ {
		row := []string{
			fmt.Sprintf("%d", k+1),
			f1(lu.SerialWork(runs[0].Cfg.Costs, cfgs[0].cfg.N, cfgs[0].cfg.R, k).Seconds()),
		}
		for _, run := range runs {
			row = append(row, effAt(run.MeasuredIters, k), effAt(run.PredictedIters, k))
		}
		t.Add(row...)
	}
	return t, samples, nil
}

func effAt(iters []metrics.IterationStat, k int) string {
	for _, it := range iters {
		if it.Index == k {
			return pct(it.Efficiency)
		}
	}
	return "-"
}

// Fig12 regenerates Fig. 12: total running time of the dynamic
// thread-removal strategies, measured and predicted.
func Fig12(s Setup) (*Table, []metrics.ErrorSample, error) {
	s.fill()
	t := &Table{
		Title:  "Fig. 12 — running times of dynamic thread removal strategies",
		Header: []string{"strategy", "measured[s]", "predicted[s]", "pred.err", "mean efficiency"},
	}
	var samples []metrics.ErrorSample
	for _, c := range removalConfigs(s) {
		run, err := MeasureAndPredict(c.label, c.cfg, s)
		if err != nil {
			return nil, nil, err
		}
		m := run.MeasuredMean()
		t.Add(c.label, f1(m), f1(run.Predicted), pct((run.Predicted-m)/m),
			pct(metrics.MeanEfficiency(run.MeasuredIters)))
		samples = append(samples, run.Samples()...)
	}
	return t, samples, nil
}

// Fig13 summarizes all measured/predicted pairs as the prediction-error
// histogram and accuracy bands of Fig. 13.
func Fig13(samples []metrics.ErrorSample) (*Table, string) {
	st := metrics.Stats(samples)
	t := &Table{
		Title:  "Fig. 13 — prediction error summary",
		Header: []string{"samples", "mean |err|", "max |err|", "within ±4%", "within ±6%", "within ±12%"},
	}
	t.Add(fmt.Sprintf("%d", st.N), pct(st.MeanAbs), pct(st.Max),
		pct(st.Within4Pct), pct(st.Within6Pct), pct(st.Within12Pct))
	hist := metrics.BuildHistogram(samples)
	return t, hist.Render()
}
