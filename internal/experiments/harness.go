// Package experiments regenerates every table and figure of the paper's
// evaluation (§7–8): Table 1 (simulation cost and portability), Figs. 8–10
// (flow-graph variants and decomposition granularity), Fig. 11 (dynamic
// efficiency), Fig. 12 (thread-removal strategies) and Fig. 13 (prediction
// error histogram), plus the model ablations §4 motivates.
//
// Protocol: each configuration runs on the virtual cluster testbed
// (internal/testbed) with several noise seeds — the "Measurement" series —
// and once on the simulator platform (internal/core.SimPlatform) with
// PDEXEC durations calibrated from the first measured run — the
// "Prediction" series. This mirrors the paper, where the simulator
// predicts a real cluster from benchmarked operation times and a small set
// of platform parameters.
package experiments

import (
	"fmt"
	"strings"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/lu"
	"dpsim/internal/metrics"
	"dpsim/internal/netmodel"
	"dpsim/internal/testbed"
)

// Setup selects problem scale and repetition count.
type Setup struct {
	// Quick halves the matrix and block sizes (same block counts, same
	// graph shapes) so the whole suite runs in seconds. Used by tests and
	// benchmarks; the cmd/paperrepro tool defaults to full scale.
	Quick bool
	// Seeds is the number of measured repetitions per configuration
	// (default 3).
	Seeds int
	// BaseSeed decorrelates repetition sets.
	BaseSeed uint64
}

func (s *Setup) fill() {
	if s.Seeds <= 0 {
		s.Seeds = 3
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 0x5eed
	}
}

// scale maps the paper's matrix/block sizes to the setup's scale.
func (s Setup) scale(v int) int {
	if s.Quick {
		return v / 2
	}
	return v
}

// N returns the matrix size (paper: 2592).
func (s Setup) N() int { return s.scale(2592) }

// engine overheads shared by both platforms (the simulator directly
// executes the same DPS runtime, so it knows these costs exactly).
const (
	perStepOverhead = 25 * eventq.Microsecond
	localLatency    = 20 * eventq.Microsecond
	controlBytes    = 64
)

// simNetParams returns the simulator's measured platform parameters for
// the Fast Ethernet testbed: l from small-message ping-pong, b the link
// bandwidth.
func simNetParams() netmodel.Params {
	return netmodel.Params{
		Latency:    150 * eventq.Microsecond,
		Bandwidth:  12.5e6,
		Contention: true,
	}
}

// simCPUParams returns the simulator's communication-overhead
// characterization (measured once per platform, application-independent).
func simCPUParams() cpumodel.Params {
	p := cpumodel.Defaults()
	p.RecvOverhead = 0.08
	p.SendOverhead = 0.035
	return p
}

// LURun is the outcome of measuring and predicting one LU configuration.
type LURun struct {
	Label     string
	Cfg       lu.Config
	Measured  []float64 // testbed elapsed seconds, one per seed
	Predicted float64   // simulator elapsed seconds
	// Per-iteration statistics of the first measured run and of the
	// prediction (dynamic efficiency, Fig. 11).
	MeasuredIters  []metrics.IterationStat
	PredictedIters []metrics.IterationStat
}

// MeasuredMean returns the mean measured time.
func (r *LURun) MeasuredMean() float64 { return metrics.Mean(r.Measured) }

// Samples converts the run into prediction-error samples (one per seed).
func (r *LURun) Samples() []metrics.ErrorSample {
	out := make([]metrics.ErrorSample, 0, len(r.Measured))
	for i, m := range r.Measured {
		out = append(out, metrics.ErrorSample{
			Label:     fmt.Sprintf("%s/seed%d", r.Label, i),
			Measured:  m,
			Predicted: r.Predicted,
		})
	}
	return out
}

// nodesFor returns the platform size needed by a config.
func nodesFor(cfg lu.Config) int {
	n := cfg.Nodes
	if cfg.MultNodes > n {
		n = cfg.MultNodes
	}
	return n
}

// MeasureAndPredict runs one configuration on the testbed (Setup.Seeds
// times) and once on the simulator with durations calibrated from the
// first measured run.
func MeasureAndPredict(label string, cfg lu.Config, s Setup) (*LURun, error) {
	s.fill()
	run := &LURun{Label: label, Cfg: cfg}
	var table map[string]eventq.Duration

	for i := 0; i < s.Seeds; i++ {
		app, err := lu.Build(cfg)
		if err != nil {
			return nil, err
		}
		run.Cfg = app.Cfg // filled defaults (cost model, thread counts)
		cl := testbed.New(testbed.FastEthernetCluster(nodesFor(cfg), s.BaseSeed+uint64(i)*7919))
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        cl,
			Durations:       cl.DurationSource(),
			NoAlloc:         true,
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
			RecordDurations: i == 0,
		})
		if err != nil {
			return nil, err
		}
		app.Start(eng)
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("%s (measured, seed %d): %w", label, i, err)
		}
		run.Measured = append(run.Measured, res.Elapsed.Seconds())
		if i == 0 {
			table = eng.DurationTable()
			filled := app.Cfg
			run.MeasuredIters = metrics.Iterations(eng.Phases(), eng.Allocations(), res.Elapsed,
				func(k int) eventq.Duration { return lu.SerialWork(filled.Costs, filled.N, filled.R, k) })
		}
	}

	app, err := lu.Build(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        core.NewSimPlatform(nodesFor(cfg), simNetParams(), simCPUParams()),
		Durations:       core.TableSource{Table: table},
		NoAlloc:         true,
		PerStepOverhead: perStepOverhead,
		LocalLatency:    localLatency,
		ControlBytes:    controlBytes,
	})
	if err != nil {
		return nil, err
	}
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("%s (predicted): %w", label, err)
	}
	run.Predicted = res.Elapsed.Seconds()
	filled := app.Cfg
	run.PredictedIters = metrics.Iterations(eng.Phases(), eng.Allocations(), res.Elapsed,
		func(k int) eventq.Duration { return lu.SerialWork(filled.Costs, filled.N, filled.R, k) })
	return run, nil
}

// --- text tables ---

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
