package experiments

import (
	"fmt"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/lu"
	"dpsim/internal/netmodel"
)

// Ablations exercises the model knobs the paper's §4 singles out: network
// contention, communication CPU overhead, processor sharing, and the
// what-if studies a parametric model enables (faster network, lower
// latency). All runs are predictions with analytic durations on the same
// application configuration, so the deltas isolate each model term.
func Ablations(s Setup) (*Table, error) {
	s.fill()
	cfg := lu.Config{N: s.N(), R: s.scale(324), Nodes: 8, Pipelined: true}

	type knob struct {
		label string
		net   func(*netmodel.Params)
		cpu   func(*cpumodel.Params)
	}
	knobs := []knob{
		{label: "full model (baseline)"},
		{label: "no network contention", net: func(p *netmodel.Params) { p.Contention = false }},
		{label: "max-min fairness (vs equal share)", net: func(p *netmodel.Params) { p.MaxMin = true }},
		{label: "no comm CPU overhead", cpu: func(p *cpumodel.Params) { p.CommOverhead = false }},
		{label: "no processor sharing", cpu: func(p *cpumodel.Params) { p.Sharing = false }},
		{label: "10x bandwidth (what-if)", net: func(p *netmodel.Params) { p.Bandwidth *= 10 }},
		{label: "10x lower latency (what-if)", net: func(p *netmodel.Params) { p.Latency /= 10 }},
	}

	t := &Table{
		Title:  fmt.Sprintf("Model ablations — LU %dx%d r=%d, pipelined, 8 nodes (predictions)", cfg.N, cfg.N, cfg.R),
		Header: []string{"model", "predicted[s]", "vs baseline"},
	}
	var base float64
	for i, k := range knobs {
		np := simNetParams()
		cp := simCPUParams()
		if k.net != nil {
			k.net(&np)
		}
		if k.cpu != nil {
			k.cpu(&cp)
		}
		app, err := lu.Build(cfg)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(8, np, cp),
			NoAlloc:         true,
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
		})
		if err != nil {
			return nil, err
		}
		app.Start(eng)
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.label, err)
		}
		sec := res.Elapsed.Seconds()
		if i == 0 {
			base = sec
			t.Add(k.label, f1(sec), "-")
			continue
		}
		t.Add(k.label, f1(sec), pct(sec/base-1))
	}
	return t, nil
}

// WindowSweep predicts the pipelined LU's running time over a range of
// flow-control windows: the tuning study behind the paper's FC variant
// (§6: limiting the requests in circulation improves interleaving, but a
// window that is too tight starves the multiplication threads).
func WindowSweep(s Setup) (*Table, error) {
	s.fill()
	base := lu.Config{N: s.N(), R: s.scale(324), Nodes: 8, Pipelined: true}
	t := &Table{
		Title:  fmt.Sprintf("Flow-control window sweep — LU %dx%d r=%d, pipelined, 8 nodes", base.N, base.N, base.R),
		Header: []string{"window", "predicted[s]", "vs unbounded"},
	}
	var unbounded float64
	for _, w := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		cfg := base
		cfg.Window = w
		app, err := lu.Build(cfg)
		if err != nil {
			return nil, err
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(8, simNetParams(), simCPUParams()),
			NoAlloc:         true,
			PerStepOverhead: perStepOverhead,
			LocalLatency:    localLatency,
			ControlBytes:    controlBytes,
		})
		if err != nil {
			return nil, err
		}
		app.Start(eng)
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", w, err)
		}
		sec := res.Elapsed.Seconds()
		label := fmt.Sprintf("%d", w)
		if w == 0 {
			label = "unbounded"
			unbounded = sec
			t.Add(label, f1(sec), "-")
			continue
		}
		t.Add(label, f1(sec), pct(sec/unbounded-1))
	}
	return t, nil
}
