// Package docs holds the repository's documentation-drift checks: a
// relative-link checker over every markdown file (TestMarkdownLinks),
// run by CI's docs job alongside the schema-drift tests in
// internal/scenario (docs/scenario.md) and internal/sweep
// (docs/output.md). The package itself exports nothing.
package docs
