package docs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax and are checked the same way.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks every *.md file of the repository and checks
// that each relative link target exists — a moved or renamed file fails
// CI instead of leaving dead references in README/ARCHITECTURE/docs.
func TestMarkdownLinks(t *testing.T) {
	root := filepath.Join("..", "..")
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// Skip VCS internals and test corpora; .github workflows hold
			// no markdown we publish.
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("only %d markdown files found under %s", len(mdFiles), root)
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external links and intra-document anchors
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, md)
				t.Errorf("%s: broken relative link %q (%v)", rel, m[1], err)
			}
		}
	}
}
