package trace

import (
	"fmt"
	"sort"

	"dpsim/internal/core"
	"dpsim/internal/obs"
)

// AppendChromeTrace renders the recorded timing diagram into tr using
// the shared Chrome trace-event exporter (internal/obs): one process
// per simulated node, and per DPS thread one "compute" track for steps
// plus one "transfer" track for communication, so the LU diagram loads
// directly in Perfetto or chrome://tracing. Phase marks become
// process-scoped instants on node 0's process.
func (r *Recorder) AppendChromeTrace(tr *obs.Trace) {
	type laneID struct {
		node, thread int
		transfer     bool
	}
	lanes := make(map[laneID]bool)
	nodes := make(map[int]bool)
	for _, s := range r.Spans() {
		transfer := s.Kind == core.TraceTransferStart
		pid := s.Node + 1
		// Interleave each thread's compute and transfer tracks so they
		// sort adjacently in the viewer.
		tid := 2 * s.Thread
		cat := "step"
		if transfer {
			tid++
			cat = "transfer"
		}
		var args map[string]any
		if s.Detail != "" {
			args = map[string]any{"detail": s.Detail}
		}
		tr.Complete(pid, tid, s.Op, cat, s.Start.Seconds(), s.End.Seconds(), args)
		lanes[laneID{node: s.Node, thread: s.Thread, transfer: transfer}] = true
		nodes[s.Node] = true
	}
	ids := make([]laneID, 0, len(lanes))
	for l := range lanes {
		ids = append(ids, l)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.thread != b.thread {
			return a.thread < b.thread
		}
		return !a.transfer && b.transfer
	})
	for _, l := range ids {
		kind := "compute"
		tid := 2 * l.thread
		if l.transfer {
			kind = "transfer"
			tid++
		}
		tr.NameThread(l.node+1, tid, fmt.Sprintf("thread %d %s", l.thread, kind))
	}
	nodeIDs := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		tr.NameProcess(n+1, fmt.Sprintf("node %d", n))
	}
	for _, p := range r.Phases() {
		tr.ProcessInstant(1, p.Name, "phase", p.Time.Seconds(), nil)
	}
}
