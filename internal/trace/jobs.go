package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JobRecord is one job of a cluster workload trace: the portable,
// simulator-independent description the scenario subsystem replays. The
// record deliberately mirrors cluster.Job without importing it, keeping
// the dependency direction trace → (nothing).
type JobRecord struct {
	ID       int
	Arrival  float64 // seconds since trace start
	MaxNodes int     // 0 means "no cap" (clamped to the cluster size)
	Phases   []PhaseRecord
}

// PhaseRecord is one phase of a traced job.
type PhaseRecord struct {
	Work float64 // serial seconds
	Comm float64 // communication factor: eff(p) = 1/(1+Comm·(p-1))
}

const jobsHeader = "id,arrival_s,max_nodes,phases"

// WriteJobs renders job records as CSV with the header
// "id,arrival_s,max_nodes,phases"; the phases column packs work:comm
// pairs separated by semicolons (e.g. "30:0.05;20:0.08").
func WriteJobs(w io.Writer, jobs []JobRecord) error {
	if _, err := fmt.Fprintln(w, jobsHeader); err != nil {
		return err
	}
	for _, j := range jobs {
		parts := make([]string, len(j.Phases))
		for i, ph := range j.Phases {
			parts[i] = fmt.Sprintf("%g:%g", ph.Work, ph.Comm)
		}
		if _, err := fmt.Fprintf(w, "%d,%g,%d,%s\n",
			j.ID, j.Arrival, j.MaxNodes, strings.Join(parts, ";")); err != nil {
			return err
		}
	}
	return nil
}

// ReadJobs parses a workload trace written by WriteJobs (or by hand).
// Records must be sorted by arrival; ReadJobs verifies monotonicity so a
// corrupted trace fails loudly instead of tripping the simulator's
// causality check mid-run.
func ReadJobs(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: jobs csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty jobs csv")
	}
	if got := strings.Join(rows[0], ","); got != jobsHeader {
		return nil, fmt.Errorf("trace: jobs csv header %q, want %q", got, jobsHeader)
	}
	var out []JobRecord
	prev := 0.0
	for n, row := range rows[1:] {
		line := n + 2
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id %q", line, row[0])
		}
		arrival, err := strconv.ParseFloat(row[1], 64)
		if err != nil || arrival < 0 {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", line, row[1])
		}
		if arrival < prev {
			return nil, fmt.Errorf("trace: line %d: arrival %g before previous %g", line, arrival, prev)
		}
		prev = arrival
		maxNodes, err := strconv.Atoi(row[2])
		if err != nil || maxNodes < 0 {
			return nil, fmt.Errorf("trace: line %d: bad max_nodes %q", line, row[2])
		}
		phases, err := parsePhases(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		out = append(out, JobRecord{ID: id, Arrival: arrival, MaxNodes: maxNodes, Phases: phases})
	}
	return out, nil
}

func parsePhases(s string) ([]PhaseRecord, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty phases column")
	}
	parts := strings.Split(s, ";")
	out := make([]PhaseRecord, len(parts))
	for i, p := range parts {
		wc := strings.Split(p, ":")
		if len(wc) != 2 {
			return nil, fmt.Errorf("bad phase %q (want work:comm)", p)
		}
		work, err := strconv.ParseFloat(wc[0], 64)
		if err != nil || work <= 0 {
			return nil, fmt.Errorf("bad phase work %q", wc[0])
		}
		comm, err := strconv.ParseFloat(wc[1], 64)
		if err != nil || comm < 0 {
			return nil, fmt.Errorf("bad phase comm %q", wc[1])
		}
		out[i] = PhaseRecord{Work: work, Comm: comm}
	}
	return out, nil
}
