// Package trace is the recording and replay layer of the simulators.
//
// For the DPS flow-graph simulator it records the atomic steps and data
// transfers of a run and renders them as ASCII Gantt timelines — the
// timing diagrams of the paper's Figs. 2, 4 and 6.
//
// For the cluster testbed it defines the CSV interchange formats the
// scenario layer replays:
//
//   - job traces (ReadJobs/WriteJobs): one record per job —
//     id, arrival_s, max_nodes, and the phase profile as
//     semicolon-separated work:comm pairs — the format of a scenario's
//     {"process": "trace"} arrival block;
//   - capacity traces (ReadCapacity/WriteCapacity): a t_s,capacity
//     timeline replayed by the availability subsystem's
//     {"process": "trace"} block.
//
// Both readers validate as they parse (sorted times, finite values,
// well-formed phases) and are fuzzed (FuzzReadCapacity) — a malformed
// trace fails loudly at load, never silently mid-simulation.
package trace
