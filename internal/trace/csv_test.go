package trace

import (
	"strings"
	"testing"

	"dpsim/internal/core"
)

func TestCSVExport(t *testing.T) {
	r := NewRecorder()
	r.Hook(core.TraceEvent{Kind: core.TraceStepStart, Time: 10, Node: 0, Op: "a", Thread: 0, Detail: "x,y"})
	r.Hook(core.TraceEvent{Kind: core.TraceStepEnd, Time: 30, Node: 0, Op: "a", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceTransferStart, Time: 5, Node: 1, Op: "b", Thread: 2, Detail: "1000B"})
	r.Hook(core.TraceEvent{Kind: core.TraceTransferEnd, Time: 15, Node: 1, Op: "b", Thread: 2})

	var sb strings.Builder
	if err := r.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "kind,node,op,thread,start_ns,end_ns,detail" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, "transfer,1,b,2,5,15") {
		t.Fatalf("transfer row missing:\n%s", out)
	}
	// Commas in details must be escaped to keep the record parseable.
	if !strings.Contains(out, "x;y") {
		t.Fatalf("detail comma not escaped:\n%s", out)
	}
}
