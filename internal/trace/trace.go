package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dpsim/internal/core"
	"dpsim/internal/eventq"
)

// Span is one completed activity on a node's timeline.
type Span struct {
	Node   int
	Op     string
	Thread int
	Kind   core.TraceKind // TraceStepStart or TraceTransferStart
	Start  eventq.Time
	End    eventq.Time
	Detail string
}

// Recorder collects trace events from a core engine. Pass Recorder.Hook
// as Config.Trace.
type Recorder struct {
	spans []Span
	// open steps/transfers keyed by (node, op, thread); the engine is
	// single-threaded and balances start/end events per key FIFO.
	open   map[string][]pending
	phases []core.PhaseMark
}

type pending struct {
	start  eventq.Time
	detail string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[string][]pending)}
}

func key(kind core.TraceKind, node int, op string, thread int) string {
	base := "s"
	if kind == core.TraceTransferStart || kind == core.TraceTransferEnd {
		base = "t"
	}
	return fmt.Sprintf("%s/%d/%s/%d", base, node, op, thread)
}

// Hook consumes engine trace events.
func (r *Recorder) Hook(ev core.TraceEvent) {
	switch ev.Kind {
	case core.TraceStepStart, core.TraceTransferStart:
		k := key(ev.Kind, ev.Node, ev.Op, ev.Thread)
		r.open[k] = append(r.open[k], pending{start: ev.Time, detail: ev.Detail})
	case core.TraceStepEnd, core.TraceTransferEnd:
		startKind := core.TraceStepStart
		if ev.Kind == core.TraceTransferEnd {
			startKind = core.TraceTransferStart
		}
		k := key(startKind, ev.Node, ev.Op, ev.Thread)
		q := r.open[k]
		if len(q) == 0 {
			// Transfer ends are recorded at the destination while starts
			// are recorded at the source; accept unmatched ends as
			// zero-length markers rather than dropping them.
			r.spans = append(r.spans, Span{
				Node: ev.Node, Op: ev.Op, Thread: ev.Thread, Kind: startKind,
				Start: ev.Time, End: ev.Time, Detail: ev.Detail,
			})
			return
		}
		p := q[0]
		r.open[k] = q[1:]
		r.spans = append(r.spans, Span{
			Node: ev.Node, Op: ev.Op, Thread: ev.Thread, Kind: startKind,
			Start: p.start, End: ev.Time, Detail: p.detail,
		})
	case core.TracePhase:
		r.phases = append(r.phases, core.PhaseMark{Time: ev.Time, Name: ev.Detail})
	}
}

// Spans returns the completed spans sorted by start time.
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.spans...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Phases returns recorded phase marks.
func (r *Recorder) Phases() []core.PhaseMark { return r.phases }

// Gantt renders one line per (node, op) lane over the given width in
// characters. Compute steps draw '█', transfers '░'; '·' is idle.
func (r *Recorder) Gantt(width int) string {
	spans := r.Spans()
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	var end eventq.Time
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 {
		end = 1
	}
	type lane struct {
		label string
		cells []rune
	}
	laneIdx := make(map[string]int)
	var lanes []*lane
	cellOf := func(t eventq.Time) int {
		c := int(float64(t) / float64(end) * float64(width))
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, s := range spans {
		label := fmt.Sprintf("n%d %-12s", s.Node, truncate(s.Op, 12))
		idx, ok := laneIdx[label]
		if !ok {
			idx = len(lanes)
			laneIdx[label] = idx
			cells := make([]rune, width)
			for i := range cells {
				cells[i] = '·'
			}
			lanes = append(lanes, &lane{label: label, cells: cells})
		}
		glyph := '█'
		if s.Kind == core.TraceTransferStart {
			glyph = '░'
		}
		from, to := cellOf(s.Start), cellOf(s.End)
		for c := from; c <= to && c < width; c++ {
			if lanes[idx].cells[c] == '·' || glyph == '█' {
				lanes[idx].cells[c] = glyph
			}
		}
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].label < lanes[j].label })
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %v  (█ compute, ░ transfer)\n", end)
	for _, l := range lanes {
		fmt.Fprintf(&b, "%s |%s|\n", l.label, string(l.cells))
	}
	return b.String()
}

// Summary reports per-op aggregate busy time, for quick profiling.
func (r *Recorder) Summary() string {
	busy := make(map[string]eventq.Duration)
	count := make(map[string]int)
	var names []string
	for _, s := range r.spans {
		if s.Kind != core.TraceStepStart {
			continue
		}
		if _, ok := busy[s.Op]; !ok {
			names = append(names, s.Op)
		}
		busy[s.Op] += eventq.Duration(s.End - s.Start)
		count[s.Op]++
	}
	sort.Slice(names, func(i, j int) bool { return busy[names[i]] > busy[names[j]] })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %8s\n", "operation", "busy", "steps")
	for _, n := range names {
		fmt.Fprintf(&b, "%-20s %10v %8d\n", truncate(n, 20), busy[n], count[n])
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// CSV writes the spans as comma-separated records (kind, node, op, thread,
// start_ns, end_ns, detail) for offline analysis and plotting.
func (r *Recorder) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,node,op,thread,start_ns,end_ns,detail"); err != nil {
		return err
	}
	for _, s := range r.Spans() {
		kind := "step"
		if s.Kind == core.TraceTransferStart {
			kind = "transfer"
		}
		detail := strings.ReplaceAll(s.Detail, ",", ";")
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%d,%d,%d,%s\n",
			kind, s.Node, s.Op, s.Thread, int64(s.Start), int64(s.End), detail); err != nil {
			return err
		}
	}
	return nil
}
