package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCapacity: arbitrary bytes fed to the capacity-trace reader
// must either parse into a sane timeline or return an error — never
// panic. Availability traces are hand-exported from real systems, so
// ragged rows, bad numbers, unsorted times and header corruption are
// all expected inputs.
func FuzzReadCapacity(f *testing.F) {
	f.Add([]byte("t_s,capacity\n0,4\n10,2\n60.5,8\n"))
	f.Add([]byte("t_s,capacity\n"))
	f.Add([]byte("wrong,header\n0,4\n"))
	f.Add([]byte("t_s,capacity\n10,2\n0,4\n")) // unsorted
	f.Add([]byte("t_s,capacity\n0,-3\n"))      // negative capacity
	f.Add([]byte("t_s,capacity\nNaN,1\n"))     // bad float
	f.Add([]byte("t_s,capacity\n0,4,5\n"))     // ragged row
	f.Add([]byte("t_s,capacity\n\"0,4\n"))     // broken quoting
	f.Add([]byte{0xff, 0xfe, 0x00})            // binary garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		points, err := ReadCapacity(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted timelines must honor the documented guarantees.
		prev := 0.0
		for i, p := range points {
			if !(p.T >= prev) { // also catches NaN
				t.Fatalf("point %d: t %g before %g in accepted trace", i, p.T, prev)
			}
			prev = p.T
			if p.Capacity < 0 {
				t.Fatalf("point %d: negative capacity %d in accepted trace", i, p.Capacity)
			}
		}
		if len(points) == 0 {
			t.Fatal("accepted trace with zero points")
		}
	})
}
