package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CapacityPoint is one step of a recorded cluster-capacity timeline: from
// instant T on, Capacity nodes are available. Like JobRecord it mirrors
// the simulator's needs without importing any simulator package, keeping
// the dependency direction trace → (nothing).
type CapacityPoint struct {
	T        float64 // seconds since trace start
	Capacity int     // available nodes from T on
}

const capacityHeader = "t_s,capacity"

// WriteCapacity renders a capacity timeline as CSV with the header
// "t_s,capacity", one row per step.
func WriteCapacity(w io.Writer, points []CapacityPoint) error {
	if _, err := fmt.Fprintln(w, capacityHeader); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%g,%d\n", p.T, p.Capacity); err != nil {
			return err
		}
	}
	return nil
}

// ReadCapacity parses a capacity timeline written by WriteCapacity (or by
// hand: availability traces from real clusters are easy to export in this
// form). Rows must be sorted by time with non-negative capacities; a
// corrupted trace fails loudly here instead of tripping the simulator's
// causality check mid-run.
func ReadCapacity(r io.Reader) ([]CapacityPoint, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: capacity csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty capacity csv")
	}
	if got := strings.Join(rows[0], ","); got != capacityHeader {
		return nil, fmt.Errorf("trace: capacity csv header %q, want %q", got, capacityHeader)
	}
	var out []CapacityPoint
	prev := 0.0
	for n, row := range rows[1:] {
		line := n + 2
		t, err := strconv.ParseFloat(row[0], 64)
		// ParseFloat accepts "NaN" and "Inf", and NaN passes every <
		// comparison below — reject non-finite times explicitly or a
		// corrupt trace sails through into the simulator's event queue.
		if err != nil || t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("trace: line %d: bad t_s %q", line, row[0])
		}
		if t < prev {
			return nil, fmt.Errorf("trace: line %d: t_s %g before previous %g", line, t, prev)
		}
		prev = t
		cap, err := strconv.Atoi(row[1])
		if err != nil || cap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad capacity %q", line, row[1])
		}
		out = append(out, CapacityPoint{T: t, Capacity: cap})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: capacity csv has no rows")
	}
	return out, nil
}
