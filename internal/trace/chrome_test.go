package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"dpsim/internal/core"
	"dpsim/internal/obs"
)

// TestAppendChromeTrace: the DPS timing diagram must come out as valid
// trace-event JSON with node processes, per-thread compute/transfer
// tracks, and phase instants.
func TestAppendChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Hook(core.TraceEvent{Kind: core.TraceStepStart, Time: 10, Node: 0, Op: "lu", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceStepEnd, Time: 30, Node: 0, Op: "lu", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceTransferStart, Time: 30, Node: 1, Op: "col", Thread: 2, Detail: "4KB"})
	r.Hook(core.TraceEvent{Kind: core.TraceTransferEnd, Time: 45, Node: 1, Op: "col", Thread: 2})
	r.Hook(core.TraceEvent{Kind: core.TracePhase, Time: 30, Detail: "iter:0"})

	var tr obs.Trace
	r.AppendChromeTrace(&tr)
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	threads := map[string]bool{}
	var phases, completes int
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			name := args["name"].(string)
			if ev["name"] == "process_name" {
				procs[name] = true
			} else if ev["name"] == "thread_name" {
				threads[name] = true
			}
		case "X":
			completes++
		case "i":
			if ev["name"] == "iter:0" {
				phases++
			}
		}
	}
	for _, want := range []string{"node 0", "node 1"} {
		if !procs[want] {
			t.Errorf("missing process %q (have %v)", want, procs)
		}
	}
	for _, want := range []string{"thread 0 compute", "thread 2 transfer"} {
		if !threads[want] {
			t.Errorf("missing track %q (have %v)", want, threads)
		}
	}
	if completes != 2 {
		t.Errorf("complete events = %d, want 2", completes)
	}
	if phases != 1 {
		t.Errorf("phase instants = %d, want 1", phases)
	}
}
