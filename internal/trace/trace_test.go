package trace

import (
	"strings"
	"testing"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
	"dpsim/internal/serial"
)

func TestPairedSpans(t *testing.T) {
	r := NewRecorder()
	r.Hook(core.TraceEvent{Kind: core.TraceStepStart, Time: 10, Node: 0, Op: "a", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceStepEnd, Time: 30, Node: 0, Op: "a", Thread: 0})
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Start != 10 || spans[0].End != 30 {
		t.Fatalf("span = %+v", spans[0])
	}
}

func TestNestedSameKeySpansFIFO(t *testing.T) {
	r := NewRecorder()
	r.Hook(core.TraceEvent{Kind: core.TraceStepStart, Time: 0, Node: 0, Op: "a", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceStepStart, Time: 5, Node: 0, Op: "a", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceStepEnd, Time: 7, Node: 0, Op: "a", Thread: 0})
	r.Hook(core.TraceEvent{Kind: core.TraceStepEnd, Time: 9, Node: 0, Op: "a", Thread: 0})
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Start != 0 || spans[0].End != 7 {
		t.Fatalf("FIFO pairing broken: %+v", spans)
	}
}

func TestUnmatchedEndBecomesMarker(t *testing.T) {
	r := NewRecorder()
	r.Hook(core.TraceEvent{Kind: core.TraceTransferEnd, Time: 12, Node: 1, Op: "x", Thread: 0})
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Start != spans[0].End {
		t.Fatalf("unmatched end handling: %+v", spans)
	}
}

func TestPhasesRecorded(t *testing.T) {
	r := NewRecorder()
	r.Hook(core.TraceEvent{Kind: core.TracePhase, Time: 4, Detail: "iter:0"})
	if len(r.Phases()) != 1 || r.Phases()[0].Name != "iter:0" {
		t.Fatalf("phases = %+v", r.Phases())
	}
}

func TestGanttEmpty(t *testing.T) {
	r := NewRecorder()
	if !strings.Contains(r.Gantt(40), "empty") {
		t.Fatal("empty gantt not flagged")
	}
}

// --- end to end with a real engine ---

type blob struct{ n int }

func (b *blob) MarshalDPS(w serial.Writer) { w.Skip(b.n) }

type null struct{}

func (null) Absorb(dps.Ctx, dps.DataObject) {}
func (null) Finish(dps.Ctx)                 {}

func TestEndToEndGantt(t *testing.T) {
	master := dps.NewCollection("m", 1, 2)
	workers := dps.NewCollection("w", 2, 2)
	g := dps.NewGraph("g")
	split := g.Split("split", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 4; i++ {
			ctx.Compute("gen", 200*eventq.Microsecond, nil)
			ctx.Post(&blob{n: 100_000})
		}
	})
	leaf := g.Leaf("work", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("crunch", 3*eventq.Millisecond, nil)
		ctx.Post(&blob{n: 1000})
	})
	merge := g.Merge("merge", master, func(dps.DataObject) dps.MergeState { return null{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)

	rec := NewRecorder()
	plat := core.NewSimPlatform(2, netmodel.FastEthernet(), cpumodel.Defaults())
	eng, err := core.New(core.Config{Graph: g, Platform: plat, Trace: rec.Hook})
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(split, 0, &blob{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	spans := r2steps(rec)
	if spans == 0 {
		t.Fatal("no compute spans recorded")
	}
	gantt := rec.Gantt(60)
	if !strings.Contains(gantt, "█") {
		t.Fatalf("gantt has no compute bars:\n%s", gantt)
	}
	if !strings.Contains(gantt, "░") {
		t.Fatalf("gantt has no transfer bars:\n%s", gantt)
	}
	if !strings.Contains(gantt, "work") {
		t.Fatalf("gantt misses op lanes:\n%s", gantt)
	}
	sum := rec.Summary()
	if !strings.Contains(sum, "work") || !strings.Contains(sum, "steps") {
		t.Fatalf("summary malformed:\n%s", sum)
	}
}

func r2steps(r *Recorder) int {
	n := 0
	for _, s := range r.Spans() {
		if s.Kind == core.TraceStepStart {
			n++
		}
	}
	return n
}
