package trace

import (
	"strings"
	"testing"
)

func TestJobsCSVRoundTrip(t *testing.T) {
	jobs := []JobRecord{
		{ID: 0, Arrival: 0, MaxNodes: 8, Phases: []PhaseRecord{{Work: 30, Comm: 0.05}, {Work: 20, Comm: 0.08}}},
		{ID: 1, Arrival: 12.5, MaxNodes: 0, Phases: []PhaseRecord{{Work: 5, Comm: 0}}},
	}
	var sb strings.Builder
	if err := WriteJobs(&sb, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip %d jobs, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], got[i]
		if a.ID != b.ID || a.Arrival != b.Arrival || a.MaxNodes != b.MaxNodes || len(a.Phases) != len(b.Phases) {
			t.Fatalf("job %d: %+v vs %+v", i, a, b)
		}
		for k := range a.Phases {
			if a.Phases[k] != b.Phases[k] {
				t.Fatalf("job %d phase %d: %+v vs %+v", i, k, a.Phases[k], b.Phases[k])
			}
		}
	}
}

func TestReadJobsRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":        "id,arrival\n",
		"empty":             "",
		"bad arrival":       "id,arrival_s,max_nodes,phases\n0,x,4,1:0\n",
		"negative arrival":  "id,arrival_s,max_nodes,phases\n0,-1,4,1:0\n",
		"unsorted arrivals": "id,arrival_s,max_nodes,phases\n0,5,4,1:0\n1,2,4,1:0\n",
		"empty phases":      "id,arrival_s,max_nodes,phases\n0,0,4,\n",
		"bad phase pair":    "id,arrival_s,max_nodes,phases\n0,0,4,1\n",
		"zero work":         "id,arrival_s,max_nodes,phases\n0,0,4,0:0.1\n",
		"negative comm":     "id,arrival_s,max_nodes,phases\n0,0,4,1:-0.1\n",
	}
	for name, in := range cases {
		if _, err := ReadJobs(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
