// Package cpumodel implements the simulator's per-node processing model
// (paper §4).
//
// Each virtual node has one processor of normalized power. Two effects
// determine how fast an atomic step executes:
//
//  1. Communication overhead. Handling transfers costs processing power;
//     receiving costs more than sending ("receiving data objects induces
//     more interrupts and more memory copies than sending"). With nIn
//     active incoming and nOut outgoing transfers, the power left for
//     computation is max(floor, 1 - nIn·recv - nOut·send).
//  2. Processor sharing. "The processing power not used for
//     communications is shared evenly among all running operations":
//     k concurrently running atomic steps each progress at available/k.
//
// Work is expressed as a Duration: the time the step would take alone on
// an idle node of power 1.0. The model is fluid: rates change only when a
// job starts/ends or transfer counts change, and completions are
// rescheduled accordingly.
package cpumodel

import (
	"fmt"
	"sort"

	"dpsim/internal/eventq"
)

// Params configures one node's CPU model.
type Params struct {
	// Power scales the node speed; 1.0 is the reference node. Work of
	// duration d completes in d/Power on an otherwise idle node.
	Power float64
	// RecvOverhead is the fraction of the node's power consumed by each
	// active incoming transfer.
	RecvOverhead float64
	// SendOverhead is the fraction consumed by each active outgoing
	// transfer.
	SendOverhead float64
	// MinAvailable floors the power left for computation so that extreme
	// fan-in cannot stall progress entirely.
	MinAvailable float64
	// Sharing enables even processor sharing between concurrent steps.
	// When false each step runs at the full available power (ablation).
	Sharing bool
	// CommOverhead enables effect 1. When false transfers are free
	// (ablation; the assumption of the simulators the paper improves on).
	CommOverhead bool
}

// Defaults returns the reference parameter set used by the simulator:
// values in the range the paper implies (receive costlier than send),
// characterized once per platform, independent of the application.
func Defaults() Params {
	return Params{
		Power:        1.0,
		RecvOverhead: 0.07,
		SendOverhead: 0.03,
		MinAvailable: 0.05,
		Sharing:      true,
		CommOverhead: true,
	}
}

// Job is one atomic step executing on a CPU.
type Job struct {
	id        uint64
	total     float64 // submitted work in seconds at power 1.0
	remaining float64 // seconds of work at power 1.0
	rate      float64 // work-seconds per second
	last      eventq.Time
	finish    *eventq.Event
	done      func()
}

// CPU models one node's processor. Not safe for concurrent use; only the
// single-threaded event engine calls it.
type CPU struct {
	q      *eventq.Queue
	p      Params
	node   int
	nextID uint64
	jobs   map[uint64]*Job
	nIn    int
	nOut   int

	// accounting
	workDone     float64 // completed work-seconds
	busySince    eventq.Time
	busyIntegral float64 // seconds with >= 1 active job
}

// New returns a CPU for the given node identifier.
func New(q *eventq.Queue, node int, p Params) *CPU {
	if p.Power <= 0 {
		panic("cpumodel: power must be positive")
	}
	if p.MinAvailable <= 0 {
		p.MinAvailable = 0.01
	}
	return &CPU{q: q, p: p, node: node, jobs: make(map[uint64]*Job)}
}

// Node returns the node identifier this CPU belongs to.
func (c *CPU) Node() int { return c.node }

// Params returns the model parameters.
func (c *CPU) Params() Params { return c.p }

// Active returns the number of running atomic steps.
func (c *CPU) Active() int { return len(c.jobs) }

// WorkDone returns total completed work in seconds at power 1.0.
func (c *CPU) WorkDone() float64 { return c.workDone }

// BusyTime returns the total virtual time during which at least one atomic
// step was running.
func (c *CPU) BusyTime() float64 {
	t := c.busyIntegral
	if len(c.jobs) > 0 {
		t += (c.q.Now() - c.busySince).Seconds()
	}
	return t
}

// Available returns the fraction of node power currently usable for
// computation, after communication overhead.
func (c *CPU) Available() float64 {
	if !c.p.CommOverhead {
		return 1
	}
	avail := 1 - float64(c.nIn)*c.p.RecvOverhead - float64(c.nOut)*c.p.SendOverhead
	if avail < c.p.MinAvailable {
		avail = c.p.MinAvailable
	}
	return avail
}

// SetTransfers updates the number of active incoming/outgoing transfers
// (driven by the network model's Listener callback).
func (c *CPU) SetTransfers(in, out int) {
	if in == c.nIn && out == c.nOut {
		return
	}
	c.nIn, c.nOut = in, out
	c.reflow()
}

// Submit starts an atomic step requiring work (time at power 1.0 on an
// idle node) and calls done when it completes. Zero work completes on the
// next event round without occupying the processor.
func (c *CPU) Submit(work eventq.Duration, done func()) *Job {
	if work <= 0 {
		j := &Job{id: c.nextID, done: done}
		c.nextID++
		c.q.After(0, func() {
			if j.done != nil {
				j.done()
			}
		})
		return j
	}
	j := &Job{
		id:        c.nextID,
		total:     work.Seconds(),
		remaining: work.Seconds(),
		last:      c.q.Now(),
		done:      done,
	}
	c.nextID++
	if len(c.jobs) == 0 {
		c.busySince = c.q.Now()
	}
	c.jobs[j.id] = j
	c.reflow()
	return j
}

// rateOf computes a job's current execution rate in work-seconds/second.
func (c *CPU) rateOf() float64 {
	avail := c.Available() * c.p.Power
	if !c.p.Sharing || len(c.jobs) <= 1 {
		return avail
	}
	return avail / float64(len(c.jobs))
}

// reflow settles all jobs and reschedules their completions under the new
// rate. Jobs are visited in ID order so that map iteration order never
// influences the event sequence (determinism).
func (c *CPU) reflow() {
	now := c.q.Now()
	rate := c.rateOf()
	ids := make([]uint64, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		j := c.jobs[id]
		dt := (now - j.last).Seconds()
		if dt > 0 && j.rate > 0 {
			j.remaining -= j.rate * dt
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		j.last = now
		j.rate = rate
		if j.finish != nil {
			c.q.Cancel(j.finish)
			j.finish = nil
		}
		jj := j
		eta := eventq.DurationOf(j.remaining / rate)
		j.finish = c.q.After(eta, func() { c.complete(jj) })
	}
}

func (c *CPU) complete(j *Job) {
	// A completed job performed exactly the work it was submitted with.
	c.workDone += j.total
	delete(c.jobs, j.id)
	if len(c.jobs) == 0 {
		c.busyIntegral += (c.q.Now() - c.busySince).Seconds()
	}
	done := j.done
	j.done = nil
	c.reflow()
	if done != nil {
		done()
	}
}

func (c *CPU) String() string {
	return fmt.Sprintf("cpu{node=%d, jobs=%d, in=%d, out=%d, avail=%.2f}",
		c.node, len(c.jobs), c.nIn, c.nOut, c.Available())
}
