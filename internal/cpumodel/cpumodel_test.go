package cpumodel

import (
	"math"
	"testing"
	"testing/quick"

	"dpsim/internal/eventq"
)

func idleParams() Params {
	return Params{Power: 1, MinAvailable: 0.05, Sharing: true, CommOverhead: true}
}

func TestSingleJobRunsAtFullPower(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	var doneAt eventq.Time
	c.Submit(2*eventq.Second, func() { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(2*eventq.Second) {
		t.Fatalf("job finished at %v, want 2s", doneAt)
	}
	if c.WorkDone() != 2 {
		t.Fatalf("WorkDone = %v, want 2", c.WorkDone())
	}
}

func TestPowerScalesDuration(t *testing.T) {
	q := eventq.New()
	p := idleParams()
	p.Power = 0.5
	c := New(q, 0, p)
	var doneAt eventq.Time
	c.Submit(eventq.Second, func() { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(2*eventq.Second) {
		t.Fatalf("half-power job finished at %v, want 2s", doneAt)
	}
}

func TestTwoJobsShareProcessor(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	var aDone, bDone eventq.Time
	c.Submit(eventq.Second, func() { aDone = q.Now() })
	c.Submit(eventq.Second, func() { bDone = q.Now() })
	q.Run(0)
	// Both share the CPU: each runs at 1/2 rate and finishes at 2s.
	if aDone != eventq.Time(2*eventq.Second) || bDone != eventq.Time(2*eventq.Second) {
		t.Fatalf("shared jobs finished at %v and %v, want 2s each", aDone, bDone)
	}
}

func TestShorterJobFreesCapacity(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	var aDone, bDone eventq.Time
	c.Submit(2*eventq.Second, func() { aDone = q.Now() })
	c.Submit(eventq.Second, func() { bDone = q.Now() })
	q.Run(0)
	// B (1s work) at half rate finishes at t=2; A then has 1s left at
	// full rate → t=3.
	if bDone != eventq.Time(2*eventq.Second) {
		t.Fatalf("B finished at %v, want 2s", bDone)
	}
	if aDone != eventq.Time(3*eventq.Second) {
		t.Fatalf("A finished at %v, want 3s", aDone)
	}
}

func TestLateArrivalSlowsRunning(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	var aDone eventq.Time
	c.Submit(eventq.Second, func() { aDone = q.Now() })
	q.After(500*eventq.Millisecond, func() {
		c.Submit(eventq.Second, func() {})
	})
	q.Run(0)
	// A does 0.5s of work alone, then shares: remaining 0.5s at half rate
	// takes 1s → finishes at 1.5s.
	if aDone != eventq.Time(1500*eventq.Millisecond) {
		t.Fatalf("A finished at %v, want 1.5s", aDone)
	}
}

func TestSharingDisabledAblation(t *testing.T) {
	q := eventq.New()
	p := idleParams()
	p.Sharing = false
	c := New(q, 0, p)
	var times []eventq.Time
	for i := 0; i < 4; i++ {
		c.Submit(eventq.Second, func() { times = append(times, q.Now()) })
	}
	q.Run(0)
	for _, at := range times {
		if at != eventq.Time(eventq.Second) {
			t.Fatalf("non-shared job finished at %v, want 1s", at)
		}
	}
}

func TestCommOverheadSlowsComputation(t *testing.T) {
	q := eventq.New()
	p := idleParams()
	p.RecvOverhead = 0.25
	c := New(q, 0, p)
	c.SetTransfers(2, 0) // two active receives: available = 0.5
	var doneAt eventq.Time
	c.Submit(eventq.Second, func() { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(2*eventq.Second) {
		t.Fatalf("job under comm load finished at %v, want 2s", doneAt)
	}
}

func TestRecvCostlierThanSend(t *testing.T) {
	p := Defaults()
	if p.RecvOverhead <= p.SendOverhead {
		t.Fatalf("defaults must make receive (%v) costlier than send (%v)",
			p.RecvOverhead, p.SendOverhead)
	}
}

func TestCommOverheadDisabledAblation(t *testing.T) {
	q := eventq.New()
	p := idleParams()
	p.CommOverhead = false
	p.RecvOverhead = 0.5
	c := New(q, 0, p)
	c.SetTransfers(10, 10)
	var doneAt eventq.Time
	c.Submit(eventq.Second, func() { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(eventq.Second) {
		t.Fatalf("job finished at %v with overhead disabled, want 1s", doneAt)
	}
}

func TestMinAvailableFloor(t *testing.T) {
	q := eventq.New()
	p := idleParams()
	p.RecvOverhead = 0.2
	p.MinAvailable = 0.1
	c := New(q, 0, p)
	c.SetTransfers(50, 0) // would be -9.0 without the floor
	if avail := c.Available(); avail != 0.1 {
		t.Fatalf("Available = %v, want floor 0.1", avail)
	}
	var doneAt eventq.Time
	c.Submit(eventq.Second, func() { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(10*eventq.Second) {
		t.Fatalf("floored job finished at %v, want 10s", doneAt)
	}
}

func TestTransferEndSpeedsUp(t *testing.T) {
	q := eventq.New()
	p := idleParams()
	p.RecvOverhead = 0.5
	c := New(q, 0, p)
	c.SetTransfers(1, 0) // available = 0.5
	var doneAt eventq.Time
	c.Submit(eventq.Second, func() { doneAt = q.Now() })
	q.After(eventq.Second, func() { c.SetTransfers(0, 0) })
	q.Run(0)
	// 0.5s of work in the first second, remaining 0.5s at full rate.
	if doneAt != eventq.Time(1500*eventq.Millisecond) {
		t.Fatalf("job finished at %v, want 1.5s", doneAt)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	fired := false
	c.Submit(0, func() { fired = true })
	q.Run(0)
	if !fired || q.Now() != 0 {
		t.Fatalf("zero-work job: fired=%v at %v", fired, q.Now())
	}
	if c.Active() != 0 {
		t.Fatal("zero-work job left active count non-zero")
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	c.Submit(eventq.Second, nil)
	q.After(5*eventq.Second, func() {
		c.Submit(eventq.Second, nil)
	})
	q.Run(0)
	if bt := c.BusyTime(); math.Abs(bt-2) > 1e-9 {
		t.Fatalf("BusyTime = %v, want 2", bt)
	}
}

func TestActiveCount(t *testing.T) {
	q := eventq.New()
	c := New(q, 0, idleParams())
	c.Submit(eventq.Second, nil)
	c.Submit(eventq.Second, nil)
	if c.Active() != 2 {
		t.Fatalf("Active = %d, want 2", c.Active())
	}
	q.Run(0)
	if c.Active() != 0 {
		t.Fatalf("Active after drain = %d", c.Active())
	}
}

// Property: total completed work equals the sum of submitted work, and
// with processor sharing the node never completes faster than the total
// work divided by power.
func TestPropertyWorkConservation(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%12) + 1
		q := eventq.New()
		c := New(q, 0, idleParams())
		var total float64
		rnd := seed
		next := func(mod int) int {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			v := int(rnd>>33) % mod
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < k; i++ {
			ms := next(3000) + 1
			total += float64(ms) / 1000
			c.Submit(eventq.Duration(ms)*eventq.Millisecond, nil)
		}
		q.Run(0)
		elapsed := q.Now().Seconds()
		return math.Abs(c.WorkDone()-total) < 1e-6 &&
			elapsed >= total-1e-6 && // can't beat the work-conservation bound
			math.Abs(elapsed-total) < 1e-3 // PS is work-conserving: all jobs done by sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyJobsDeterministic(t *testing.T) {
	run := func() eventq.Time {
		q := eventq.New()
		c := New(q, 0, idleParams())
		for i := 0; i < 100; i++ {
			d := eventq.Duration(i%7+1) * eventq.Millisecond
			i := i
			q.At(eventq.Time(i)*10, func() { c.Submit(d, nil) })
		}
		q.Run(0)
		return q.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic completion: %v vs %v", a, b)
	}
}

func BenchmarkProcessorSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := eventq.New()
		c := New(q, 0, idleParams())
		for j := 0; j < 200; j++ {
			j := j
			q.At(eventq.Time(j)*eventq.Time(eventq.Millisecond), func() {
				c.Submit(eventq.Duration(j%17+1)*eventq.Millisecond, nil)
			})
		}
		q.Run(0)
	}
}
