package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

type fakeProgress struct{ info ProgressInfo }

func (f fakeProgress) Progress() ProgressInfo { return f.info }

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	reg.Counter("srv_ops_total", "ops").Add(3)
	src := fakeProgress{info: ProgressInfo{
		Active: true, CellsTotal: 4, CellsDone: 1, RunsTotal: 8, RunsDone: 2,
		RunsPerSecond: 10, ETAS: 0.6,
		Workers: []WorkerProgress{{Worker: 0, BusySeconds: 0.5, BusyFraction: 0.9}},
	}}
	srv, err := NewServer("127.0.0.1:0", reg, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ctype := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	validatePromText(t, body)
	for _, want := range []string{"srv_ops_total 3", "go_goroutines", "go_memstats_heap_alloc_bytes"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, ctype = get(t, base+"/metrics?format=json")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics?format=json: %d %q", code, ctype)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("JSON metrics do not parse: %v", err)
	}

	code, body, ctype = get(t, base+"/progress")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/progress: %d %q", code, ctype)
	}
	var info ProgressInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Active || info.RunsDone != 2 || len(info.Workers) != 1 || info.Workers[0].BusyFraction != 0.9 {
		t.Errorf("progress round trip: %+v", info)
	}

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, body, _ = get(t, base+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "heap profile") {
		t.Errorf("/debug/pprof/heap: %d", code)
	}
}

func TestServerNilProgress(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body, _ := get(t, "http://"+srv.Addr()+"/progress")
	var info ProgressInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Active {
		t.Error("nil progress source must report active=false")
	}
}

func TestServerBadAddr(t *testing.T) {
	if _, err := NewServer("256.0.0.1:bad", NewRegistry(), nil); err == nil {
		t.Error("expected listen error")
	}
}
