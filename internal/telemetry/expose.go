package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, ready to serialize.
// Identical snapshots always serialize to identical bytes: families keep
// registration order, label sets keep creation order, and values format
// deterministically.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric name's snapshot.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Type    MetricType       `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one label set's value. Counters and gauges carry
// Value; histograms carry cumulative Buckets plus Sum (seconds) and
// Count.
type MetricSnapshot struct {
	Labels  []Label          `json:"labels,omitempty"`
	Value   float64          `json:"value"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket: Count observations
// at most LE seconds. The final bucket's LE is +Inf.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders Labels as a {key: value} object and +Inf bucket
// bounds as the string "+Inf" (JSON has no infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := any(b.LE)
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(map[string]any{"le": le, "count": b.Count})
}

// Filter returns the sub-snapshot containing only the named families,
// preserving order. Use it to select the deterministic counter subset
// when comparing runs (see sweep.Metrics.DeterministicMetricNames).
func (s Snapshot) Filter(names ...string) Snapshot {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := Snapshot{}
	for _, f := range s.Families {
		if want[f.Name] {
			out.Families = append(out.Families, f)
		}
	}
	return out
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ { // bytewise: label values need not be valid UTF-8
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeLabelValue inverts escapeLabelValue (used by the conformance
// tests; exported logic stays symmetric with the escaper).
func unescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	esc := false
	for i := 0; i < len(v); i++ {
		c := v[i]
		if esc {
			if c == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(c)
			}
			esc = false
			continue
		}
		if c == '\\' {
			esc = true
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value: integral values (every counter)
// print as integers so serialization is byte-deterministic, floats use
// the shortest round-trip form, and infinities use Prometheus spelling.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writeLabels renders {k="v",...}; extra, when non-empty, is appended
// last (the histogram "le" label).
func writeLabels(w *bufio.Writer, labels []Label, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(l.Value))
		w.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraKey)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(extraVal))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE comment per family, then
// one sample line per label set — histograms expand into cumulative
// _bucket{le=...} series ending at le="+Inf", plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.Help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.Type))
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			if f.Type == TypeHistogram {
				for _, b := range m.Buckets {
					bw.WriteString(f.Name)
					bw.WriteString("_bucket")
					writeLabels(bw, m.Labels, "le", formatValue(b.LE))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(b.Count, 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.Name)
				bw.WriteString("_sum")
				writeLabels(bw, m.Labels, "", "")
				bw.WriteByte(' ')
				bw.WriteString(formatValue(m.Sum))
				bw.WriteByte('\n')
				bw.WriteString(f.Name)
				bw.WriteString("_count")
				writeLabels(bw, m.Labels, "", "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(m.Count, 10))
				bw.WriteByte('\n')
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, m.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(m.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot as indented JSON — same content as the
// Prometheus text format, shaped for scripts.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MarshalJSON renders a Label pair as {"key": ..., "value": ...} with
// stable lowercase keys.
func (l Label) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Key   string `json:"key"`
		Value string `json:"value"`
	}{l.Key, l.Value})
}
