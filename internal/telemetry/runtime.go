package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache rate-limits runtime.ReadMemStats: the call stops the
// world briefly, so concurrent or rapid scrapes share one reading per
// 100ms instead of paying it per gauge per scrape.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	live runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&c.live)
		c.at = now
	}
	return c.live
}

// RegisterRuntimeMetrics registers the Go runtime's health gauges on the
// registry: goroutine count, heap size and occupancy, GC cycle count and
// cumulative pause time. Values are sampled at scrape time (GaugeFunc) —
// nothing runs between scrapes, so attaching them costs nothing on any
// hot path.
func RegisterRuntimeMetrics(r *Registry) {
	var cache memStatsCache
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(cache.read().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.",
		func() float64 { return float64(cache.read().HeapSys) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(cache.read().HeapObjects) })
	r.GaugeFunc("go_memstats_total_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(cache.read().TotalAlloc) })
	r.GaugeFunc("go_memstats_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(cache.read().NumGC) })
	r.GaugeFunc("go_memstats_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(cache.read().PauseTotalNs) / 1e9 })
	r.GaugeFunc("go_memstats_next_gc_bytes", "Heap size at which the next GC cycle triggers.",
		func() float64 { return float64(cache.read().NextGC) })
}
