// Package telemetry is the simulator process's runtime metrics
// substrate: where internal/obs observes the *simulated* system in
// virtual time, telemetry measures the *simulator itself* in wall-clock
// time — sweep throughput, worker utilization, Go heap and GC pressure —
// and serves it over HTTP while a run is in flight.
//
// The package has three layers:
//
//   - Registry: a lock-free metrics registry. Counter, Gauge and
//     Histogram handles are registered once at setup and then updated
//     with single atomic operations — the hot path never takes a lock
//     and never allocates, and scrapes never block writers (Snapshot
//     copies atomically-loaded values under a read lock that update
//     paths do not touch). Histograms reuse internal/obs's log-spaced
//     power-of-two microsecond bucketing, so wall-clock and
//     simulated-time latency distributions bucket identically.
//
//   - Exposition: Snapshot renders as Prometheus text exposition format
//     (HELP/TYPE comments, escaped labels, cumulative histogram buckets)
//     or as JSON, deterministically — identical snapshots serialize to
//     identical bytes.
//
//   - Server: an opt-in HTTP endpoint serving /metrics (text or
//     ?format=json), /progress (live sweep progress: done/total,
//     throughput, per-worker busy fractions, ETA), /healthz, and
//     net/http/pprof under /debug/pprof/ for live profiling.
//
// internal/sweep instruments its worker pool on top of this package
// (sweep.Metrics), and cmd/dpssweep / cmd/clustersim expose it via
// -telemetry-addr. The registry is generic: the upcoming dpsserve
// service and sharded sweep engine register their own families the same
// way. See docs/telemetry.md for the endpoint and metric reference.
package telemetry
