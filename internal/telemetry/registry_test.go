package telemetry

import (
	"io"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	h := r.Histogram("test_latency_seconds", "latency")
	h.Observe(3 * time.Microsecond)
	h.Observe(-time.Second) // clamps to 0
	s := h.snapshot()
	if s.Count != 2 {
		t.Errorf("histogram count = %d, want 2", s.Count)
	}
	if s.Sum != 3e-6 {
		t.Errorf("histogram sum = %g, want 3e-06", s.Sum)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.Count != 2 {
		t.Errorf("+Inf bucket = %d, want cumulative 2", last.Count)
	}
	// Cumulative buckets never decrease.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket %d count %d < previous %d", i, s.Buckets[i].Count, s.Buckets[i-1].Count)
		}
	}
}

func TestRegisterDedupAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", L("worker", "0"))
	b := r.Counter("dup_total", "h", L("worker", "0"))
	if a != b {
		t.Error("same (name, labels) must return the same handle")
	}
	if r.Counter("dup_total", "h", L("worker", "1")) == a {
		t.Error("distinct label set must create a distinct metric")
	}
	for name, fn := range map[string]func(){
		"bad metric name": func() { r.Counter("bad name", "h") },
		"bad label name":  func() { r.Counter("ok_total", "h", L("bad-key", "v")) },
		"type mismatch":   func() { r.Gauge("dup_total", "h") },
		"dup label key":   func() { r.Counter("ok2_total", "h", L("a", "1"), L("a", "2")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("order_total", "h", L("zeta", "1"), L("alpha", "2"))
	snap := r.Snapshot()
	m := snap.Families[0].Metrics[0]
	if m.Labels[0].Key != "alpha" || m.Labels[1].Key != "zeta" {
		t.Errorf("labels not sorted by key: %+v", m.Labels)
	}
	// Same set in the other order resolves to the same handle.
	c1 := r.Counter("order_total", "h", L("alpha", "2"), L("zeta", "1"))
	c1.Inc()
	if got := r.Counter("order_total", "h", L("zeta", "1"), L("alpha", "2")).Value(); got != 1 {
		t.Errorf("label order changed identity: %d", got)
	}
}

// TestMetricOpsZeroAlloc pins the telemetry hot-path contract: updating
// a registered handle performs zero heap allocations, so nil-gated
// instrumentation in the sweep worker loop adds no allocation pressure.
func TestMetricOpsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_ops_total", "h")
	g := r.Gauge("alloc_depth", "h")
	h := r.Histogram("alloc_latency_seconds", "h")
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(1.5) },
		"Gauge.Add":         func() { g.Add(0.5) },
		"Histogram.Observe": func() { h.Observe(42 * time.Microsecond) },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", name, allocs)
		}
	}
}

// TestRegistryRaceStress hammers every metric kind from many goroutines
// while others scrape concurrently — the race detector (CI's -race job)
// certifies the lock-free update paths against Snapshot and both
// serializers.
func TestRegistryRaceStress(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	const writers, scrapers, iters = 8, 4, 2000
	counters := make([]*Counter, writers)
	for i := range counters {
		counters[i] = r.Counter("stress_ops_total", "h", L("worker", string(rune('0'+i))))
	}
	shared := r.Counter("stress_shared_total", "h")
	g := r.Gauge("stress_depth", "h")
	h := r.Histogram("stress_latency_seconds", "h")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				counters[w].Inc()
				shared.Add(2)
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := r.Snapshot()
				if err := snap.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
				}
				if err := snap.WriteJSON(io.Discard); err != nil {
					t.Error(err)
				}
				// Registration concurrent with scrapes must also be safe.
				r.Counter("stress_late_total", "h", L("scrape", string(rune('0'+i%10))))
			}
		}()
	}
	wg.Wait()
	if got, want := shared.Value(), int64(2*writers*iters); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	for w, c := range counters {
		if c.Value() != iters {
			t.Errorf("worker %d counter = %d, want %d", w, c.Value(), iters)
		}
	}
	if got, want := g.Value(), float64(writers*iters); got != want {
		t.Errorf("gauge = %g, want %g", got, want)
	}
}
