package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ProgressInfo is the /progress endpoint's payload: a live view of a
// sweep (or any long-running campaign) in wall-clock terms. Active is
// false until the producer begins its run.
type ProgressInfo struct {
	Active       bool `json:"active"`
	CellsTotal   int  `json:"cells_total"`
	CellsDone    int  `json:"cells_done"`
	Replications int  `json:"replications"`
	RunsTotal    int  `json:"runs_total"`
	RunsDone     int  `json:"runs_done"`
	RunsErrored  int  `json:"runs_errored"`
	// FoldFrontier counts runs folded into aggregates in index order;
	// FoldLag counts completed runs parked ahead of the frontier waiting
	// for an earlier index to finish.
	FoldFrontier int `json:"fold_frontier"`
	FoldLag      int `json:"fold_lag"`
	// Throughput and ETA, from wall-clock elapsed time.
	ElapsedS       float64 `json:"elapsed_s"`
	RunsPerSecond  float64 `json:"runs_per_second"`
	CellsPerSecond float64 `json:"cells_per_second"`
	ETAS           float64 `json:"eta_s"`
	// Workers reports each pool worker's cumulative busy time and its
	// busy fraction of the elapsed wall clock.
	Workers []WorkerProgress `json:"workers,omitempty"`
}

// WorkerProgress is one worker's utilization.
type WorkerProgress struct {
	Worker       int     `json:"worker"`
	BusySeconds  float64 `json:"busy_s"`
	BusyFraction float64 `json:"busy_fraction"`
}

// ProgressSource supplies /progress; sweep.Metrics implements it.
// Progress must be safe to call concurrently with the producing run.
type ProgressSource interface {
	Progress() ProgressInfo
}

// Endpoints lists the paths a Server serves — the authoritative list
// docs/telemetry.md is pinned against.
func Endpoints() []string {
	return []string{"/metrics", "/progress", "/healthz", "/debug/pprof/"}
}

// Server serves a registry over HTTP: /metrics (Prometheus text, or
// ?format=json), /progress (ProgressInfo JSON), /healthz, and
// net/http/pprof under /debug/pprof/. It binds eagerly — NewServer
// returns with the listener open, so Addr is immediately scrapeable —
// and serves in a background goroutine until Close.
type Server struct {
	reg      *Registry
	progress ProgressSource
	ln       net.Listener
	srv      *http.Server
}

// NewServer listens on addr (e.g. "127.0.0.1:9100", or ":0" for an
// ephemeral port) and starts serving reg. progress may be nil — then
// /progress reports {"active": false}.
func NewServer(addr string, reg *Registry, progress ProgressSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, progress: progress, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	var info ProgressInfo
	if s.progress != nil {
		info = s.progress.Progress()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(info)
}
