package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	sampleNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	labelKeyRE   = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromLabels parses one `{k="v",...}` block (escapes included) and
// returns the label map and the remainder of the line.
func parsePromLabels(t *testing.T, s string) (map[string]string, string) {
	t.Helper()
	labels := map[string]string{}
	if !strings.HasPrefix(s, "{") {
		return labels, s
	}
	s = s[1:]
	for {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			t.Fatalf("label block without '=': %q", s)
		}
		key := s[:eq]
		if !labelKeyRE.MatchString(key) {
			t.Fatalf("invalid label key %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			t.Fatalf("label value not quoted: %q", s)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				t.Fatal("unterminated label value")
			}
			c := s[0]
			if c == '\\' {
				if len(s) < 2 {
					t.Fatal("dangling escape")
				}
				switch s[1] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[1])
				default:
					t.Fatalf("invalid escape \\%c", s[1])
				}
				s = s[2:]
				continue
			}
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\n' {
				t.Fatal("raw newline inside label value")
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels[key] = val.String()
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:]
		}
		t.Fatalf("malformed label block near %q", s)
	}
}

// validatePromText is the Prometheus text exposition conformance check:
// every sample line parses, every family's HELP and TYPE comments
// precede its samples, histogram buckets are cumulative and end at
// le="+Inf" with _count equal to the +Inf bucket.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}
	helped := map[string]bool{}
	sampled := map[string]bool{}
	type histState struct {
		prev    float64
		prevLE  float64
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	hists := map[string]*histState{} // per (family + label identity)
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d %q: %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			fail("empty line")
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			if sampled[name] {
				fail("HELP after samples of %s", name)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				fail("malformed TYPE")
			}
			name, typ := parts[0], parts[1]
			if _, dup := types[name]; dup {
				fail("duplicate TYPE for %s", name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				fail("unknown type %q", typ)
			}
			if sampled[name] {
				fail("TYPE after samples of %s", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unknown comment")
		}
		name := sampleNameRE.FindString(line)
		if name == "" {
			fail("no metric name")
		}
		labels, rest := parsePromLabels(t, line[len(name):])
		if !strings.HasPrefix(rest, " ") {
			fail("no space before value")
		}
		valStr := strings.TrimPrefix(rest, " ")
		var val float64
		switch valStr {
		case "+Inf", "-Inf":
			val = 0
		default:
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				fail("bad value %q: %v", valStr, err)
			}
			val = v
		}
		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			fail("sample before TYPE of %s", family)
		}
		if !helped[family] {
			fail("sample before HELP of %s", family)
		}
		sampled[family] = true
		if typ == "histogram" {
			if suffix == "" {
				fail("bare sample of histogram family %s", family)
			}
			id := family
			for k, v := range labels {
				if k != "le" {
					id += "|" + k + "=" + v
				}
			}
			st := hists[id]
			if st == nil {
				st = &histState{}
				hists[id] = st
			}
			switch suffix {
			case "_bucket":
				le, lok := labels["le"]
				if !lok {
					fail("histogram bucket without le label")
				}
				if st.infSeen {
					fail("bucket after le=\"+Inf\"")
				}
				var bound float64
				if le == "+Inf" {
					st.infSeen = true
					st.inf = val
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						fail("bad le %q", le)
					}
					bound = b
					if bound <= st.prevLE {
						fail("le bounds not increasing")
					}
					st.prevLE = bound
				}
				if val < st.prev {
					fail("bucket counts not cumulative")
				}
				st.prev = val
			case "_count":
				st.count = val
				st.hasCnt = true
			}
		}
		if typ == "counter" && val < 0 {
			fail("negative counter")
		}
	}
	for id, st := range hists {
		if !st.infSeen {
			t.Errorf("histogram %s: no le=\"+Inf\" bucket", id)
		}
		if !st.hasCnt {
			t.Errorf("histogram %s: no _count sample", id)
		} else if st.count != st.inf {
			t.Errorf("histogram %s: _count %g != +Inf bucket %g", id, st.count, st.inf)
		}
	}
}

// exerciseRegistry builds a registry covering every metric kind plus
// label values that need escaping.
func exerciseRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("expo_runs_total", "Runs completed.", L("status", "ok"))
	c.Add(7)
	r.Counter("expo_runs_total", "Runs completed.", L("status", `tricky"quote`)).Inc()
	r.Counter("expo_runs_total", "Runs completed.", L("status", "back\\slash\nnewline")).Inc()
	g := r.Gauge("expo_depth", "Queue depth,\nmultiline help \\ escaped.")
	g.Set(3.25)
	h := r.Histogram("expo_latency_seconds", "Latency.", L("op", "fold"))
	for i := 0; i < 5; i++ {
		h.Observe(time.Duration(1<<uint(i)) * time.Microsecond)
	}
	r.GaugeFunc("expo_rate", "Derived rate.", func() float64 { return 12.5 })
	return r
}

// TestPrometheusConformance renders every metric kind — awkward label
// values included — and runs the full text-format validator over it.
func TestPrometheusConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := exerciseRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	validatePromText(t, text)
	for _, want := range []string{
		`expo_runs_total{status="ok"} 7`,
		`expo_runs_total{status="tricky\"quote"} 1`,
		`expo_runs_total{status="back\\slash\nnewline"} 1`,
		"# TYPE expo_latency_seconds histogram",
		`expo_latency_seconds_bucket{op="fold",le="+Inf"} 5`,
		"expo_latency_seconds_count{op=\"fold\"} 5",
		`# HELP expo_depth Queue depth,\nmultiline help \\ escaped.`,
		"expo_rate 12.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestRuntimeMetricsExpose: the Go runtime gauges render as valid
// exposition with plausible values.
func TestRuntimeMetricsExpose(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	validatePromText(t, buf.String())
	snap := r.Snapshot()
	byName := map[string]float64{}
	for _, f := range snap.Families {
		byName[f.Name] = f.Metrics[0].Value
	}
	if byName["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %g", byName["go_goroutines"])
	}
	if byName["go_memstats_heap_alloc_bytes"] <= 0 {
		t.Errorf("heap_alloc = %g", byName["go_memstats_heap_alloc_bytes"])
	}
}

// TestSnapshotDeterministicBytes: the same state always serializes to
// the same bytes — the property the cross-worker determinism test and
// cacheable scrapes rely on.
func TestSnapshotDeterministicBytes(t *testing.T) {
	r := exerciseRegistry()
	var a, b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical state serialized differently")
	}
}

func TestJSONExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := exerciseRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []struct {
			Name    string `json:"name"`
			Type    string `json:"type"`
			Metrics []struct {
				Labels []struct {
					Key   string `json:"key"`
					Value string `json:"value"`
				} `json:"labels"`
				Value   float64 `json:"value"`
				Buckets []struct {
					LE    any    `json:"le"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"metrics"`
		} `json:"families"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON exposition does not parse: %v\n%s", err, buf.String())
	}
	var hist bool
	for _, f := range doc.Families {
		if f.Type != "histogram" {
			continue
		}
		hist = true
		bs := f.Metrics[0].Buckets
		if len(bs) == 0 {
			t.Fatal("histogram without buckets")
		}
		if le, ok := bs[len(bs)-1].LE.(string); !ok || le != "+Inf" {
			t.Errorf("last bucket le = %v, want \"+Inf\"", bs[len(bs)-1].LE)
		}
	}
	if !hist {
		t.Error("no histogram family in JSON exposition")
	}
}

func TestSnapshotFilter(t *testing.T) {
	snap := exerciseRegistry().Snapshot()
	got := snap.Filter("expo_depth", "expo_rate")
	if len(got.Families) != 2 || got.Families[0].Name != "expo_depth" || got.Families[1].Name != "expo_rate" {
		t.Errorf("Filter kept %+v", got.Families)
	}
}

// FuzzPromLabelEscape: escaping any label value yields a string with no
// raw newlines or unescaped quotes, and unescaping inverts it exactly.
func FuzzPromLabelEscape(f *testing.F) {
	for _, seed := range []string{"", "plain", `back\slash`, `"quoted"`, "new\nline", `mix\"ed` + "\n\\", "日本語\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeLabelValue(s)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped value contains raw newline: %q", esc)
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] != '"' {
				continue
			}
			backslashes := 0
			for j := i - 1; j >= 0 && esc[j] == '\\'; j-- {
				backslashes++
			}
			if backslashes%2 == 0 {
				t.Fatalf("unescaped quote at %d in %q", i, esc)
			}
		}
		if got := unescapeLabelValue(esc); got != s {
			t.Fatalf("round trip %q -> %q -> %q", s, esc, got)
		}
	})
}
