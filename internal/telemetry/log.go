package telemetry

import (
	"io"
	"log/slog"
)

// NewLogger returns the CLIs' structured logger: with jsonFormat, a
// log/slog JSON handler writing machine-parseable records to w (one JSON
// object per line, for log shippers); without it, a discard logger — the
// CLIs' human-readable output stays exactly as it was, and structured
// logging is strictly opt-in via their -log-json flag.
func NewLogger(w io.Writer, jsonFormat bool) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.DiscardHandler)
}
