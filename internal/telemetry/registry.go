package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpsim/internal/obs"
)

// MetricType is a family's Prometheus type.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one metric label pair. Families sort their label sets by key
// at registration, so exposition order is canonical regardless of the
// order handles were requested in.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histBuckets mirrors internal/obs's bucket count; the two schemes must
// agree so wall-clock and simulated-time histograms bucket identically
// (checked at package init).
const histBuckets = 22

func init() {
	if histBuckets != obs.LatencyBucketCount() {
		panic("telemetry: histogram bucketing out of sync with internal/obs")
	}
}

// metricEntry is one label set's live value inside a family.
type metricEntry interface {
	labelSet() []Label
	snapshot() MetricSnapshot
}

// family is one registered metric name: type, help, and a label-set
// indexed list of live metrics.
type family struct {
	name    string
	help    string
	typ     MetricType
	metrics []metricEntry
	index   map[string]int // canonical label key → metrics index
}

// Registry is a set of metric families. Handle registration takes the
// registry lock; the handles themselves update via single atomic
// operations with no lock and no allocation, so instrumented hot paths
// stay lock-free and scrapes (Snapshot) never block writers.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// canonLabels validates and canonicalizes a label set: keys must match
// the Prometheus label grammar and the set is sorted by key.
func canonLabels(name string, labels []Label) ([]Label, string) {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	key := ""
	for i, l := range out {
		if !labelRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, l.Key))
		}
		if i > 0 && out[i-1].Key == l.Key {
			panic(fmt.Sprintf("telemetry: metric %q: duplicate label name %q", name, l.Key))
		}
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return out, key
}

// register returns the metric for (name, labels), creating the family
// and/or label set on first use via mk. Re-registering an existing
// (name, labels) pair returns the existing handle; changing a family's
// type is a programming error and panics.
func (r *Registry) register(name, help string, typ MetricType, labels []Label, mk func(ls []Label) metricEntry) metricEntry {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls, key := canonLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, index: make(map[string]int)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	if i, ok := f.index[key]; ok {
		return f.metrics[i]
	}
	m := mk(ls)
	f.index[key] = len(f.metrics)
	f.metrics = append(f.metrics, m)
	return m
}

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and allocation-free.
type Counter struct {
	v      atomic.Int64
	labels []Label
}

func (c *Counter) labelSet() []Label { return c.labels }
func (c *Counter) snapshot() MetricSnapshot {
	return MetricSnapshot{Labels: c.labels, Value: float64(c.v.Load())}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or looks up) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, TypeCounter, labels, func(ls []Label) metricEntry {
		return &Counter{labels: ls}
	}).(*Counter)
}

// Gauge is a float metric that can go up and down. All methods are safe
// for concurrent use and allocation-free.
type Gauge struct {
	bits   atomic.Uint64
	labels []Label
}

func (g *Gauge) labelSet() []Label { return g.labels }
func (g *Gauge) snapshot() MetricSnapshot {
	return MetricSnapshot{Labels: g.labels, Value: g.Value()}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (compare-and-swap loop; contended adds retry).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or looks up) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, TypeGauge, labels, func(ls []Label) metricEntry {
		return &Gauge{labels: ls}
	}).(*Gauge)
}

// funcGauge evaluates fn at snapshot time — for derived values (rates,
// fractions) and runtime stats that are only worth computing on scrape.
type funcGauge struct {
	fn     func() float64
	labels []Label
}

func (g *funcGauge) labelSet() []Label { return g.labels }
func (g *funcGauge) snapshot() MetricSnapshot {
	return MetricSnapshot{Labels: g.labels, Value: g.fn()}
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, TypeGauge, labels, func(ls []Label) metricEntry {
		return &funcGauge{fn: fn, labels: ls}
	})
}

// Histogram is a duration histogram over internal/obs's log-spaced
// bucketing: power-of-two microsecond buckets, the last absorbing the
// overflow. Observe is a handful of atomic operations — safe for
// concurrent use, allocation-free, lock-free.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
	labels  []Label
}

func (h *Histogram) labelSet() []Label { return h.labels }
func (h *Histogram) snapshot() MetricSnapshot {
	s := MetricSnapshot{Labels: h.labels, Buckets: make([]BucketSnapshot, histBuckets)}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := math.Inf(1)
		if us := obs.LatencyBucketBoundUS(i); us != 0 {
			le = float64(us) / 1e6
		}
		s.Buckets[i] = BucketSnapshot{LE: le, Count: cum}
	}
	s.Count = h.count.Load()
	s.Sum = float64(h.sumNS.Load()) / 1e9
	return s
}

// Observe folds one duration (negatives clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[obs.LatencyBucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Histogram registers (or looks up) a duration histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, TypeHistogram, labels, func(ls []Label) metricEntry {
		return &Histogram{labels: ls}
	}).(*Histogram)
}

// Snapshot copies every family's current values: families in
// registration order, label sets in creation order, histogram buckets
// cumulative. Writers are never blocked — values are atomic loads under
// a read lock that update paths do not take.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{Families: make([]FamilySnapshot, 0, len(r.families))}
	for _, f := range r.families {
		fs := FamilySnapshot{
			Name:    f.name,
			Help:    f.help,
			Type:    f.typ,
			Metrics: make([]MetricSnapshot, 0, len(f.metrics)),
		}
		for _, m := range f.metrics {
			fs.Metrics = append(fs.Metrics, m.snapshot())
		}
		out.Families = append(out.Families, fs)
	}
	return out
}
