// Package eventq implements the discrete-event core shared by the DPS
// simulator and the virtual cluster testbed: a virtual clock and a
// 4-ary min-heap of timestamped events with deterministic tie-breaking.
// (The ordering key is a strict total order, so pop order — and thus
// every simulation outcome — is independent of the heap's arity and
// internal arrangement; the wide layout just halves the sift depth.)
//
// Virtual time is an int64 count of nanoseconds. Fluid models (network
// bandwidth sharing, processor sharing) compute rates in float64 and
// round the resulting completion instants to nanoseconds; one nanosecond
// of quantization is far below every effect the models represent.
//
// Two-level tie-breaking makes event order a pure function of the
// schedule, never of heap internals: events at equal instants order by
// tier (AtTier; the cluster uses capacity < arrival < phase), and
// within a tier by FIFO insertion order. This is what lets the cluster
// simulator's open drive (Inject) execute the identical event sequence
// as its closed drive even at exact time ties.
//
// Fired or cancelled events can be recycled (ReuseAfter, ReuseAtTier):
// the caller passes the dead event back and the queue re-arms the same
// object, so a hot loop that continually reschedules one logical event
// — the cluster's per-job phase completion — allocates nothing in
// steady state. A still-pending event is cheaper yet to move:
// RescheduleAfter repositions the existing heap entry with a single
// sift, equivalent to (but half the heap traffic of) cancel-and-reuse.
package eventq
