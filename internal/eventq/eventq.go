package eventq

import (
	"fmt"
	"math"
)

// Time is an absolute instant of virtual time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants so call sites read
// naturally without importing the wall-clock time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel Time larger than any reachable instant.
const Forever Time = math.MaxInt64

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds converts an instant to floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the instant d after t, saturating at Forever.
func (t Time) Add(d Duration) Time {
	if t == Forever {
		return Forever
	}
	s := t + Time(d)
	if d > 0 && s < t {
		return Forever
	}
	return s
}

// DurationOf converts floating-point seconds to a Duration, rounding to
// the nearest nanosecond and clamping negatives to zero.
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	if seconds >= float64(math.MaxInt64)/float64(Second) {
		return Duration(math.MaxInt64)
	}
	return Duration(math.Round(seconds * float64(Second)))
}

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", d.Seconds())
	}
}

func (t Time) String() string {
	if t == Forever {
		return "∞"
	}
	return Duration(t).String()
}

// Event is a callback scheduled at an instant. Events scheduled for the
// same instant fire by ascending tier, then in scheduling order (FIFO),
// which makes simulations deterministic regardless of heap internals.
type Event struct {
	when   Time
	tier   int8
	seq    uint64
	index  int // heap index; -1 when not queued
	fn     func()
	canned bool
}

// Time reports the instant the event is scheduled for.
func (e *Event) Time() Time { return e.when }

// Scheduled reports whether the event is still pending in a queue.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 && !e.canned }

// Queue is a virtual clock plus a pending-event heap. The zero value is
// ready to use at time 0.
type Queue struct {
	now    Time
	heap   []*Event
	nextSq uint64
	fired  uint64
}

// New returns an empty queue at virtual time 0.
func New() *Queue { return &Queue{} }

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Fired returns the cumulative number of events executed.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules fn at the absolute instant when, in the default tier 0.
// Scheduling in the past (before Now) panics: it would mean a model
// produced a causality violation and continuing would silently corrupt
// the timeline.
func (q *Queue) At(when Time, fn func()) *Event {
	return q.AtTier(when, 0, fn)
}

// AtTier schedules fn at the absolute instant when in the given tier.
// Same-instant events fire by ascending tier, FIFO within a tier, no
// matter when each was scheduled — so a model can give a class of events
// (e.g. externally injected arrivals) a stable position relative to
// events that are already queued for that instant.
func (q *Queue) AtTier(when Time, tier int8, fn func()) *Event {
	if when < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", when, q.now))
	}
	e := &Event{when: when, tier: tier, seq: q.nextSq, fn: fn}
	q.nextSq++
	q.push(e)
	return e
}

// After schedules fn d from now.
func (q *Queue) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// ReuseAtTier schedules fn like AtTier, but recycles the caller-owned
// Event e instead of allocating when e has already fired or been
// cancelled. A nil e (or one still pending — recycling it would corrupt
// the heap) allocates a fresh Event. The returned event is the one
// actually queued; callers that hold exactly one pending event per
// entity (a job's next phase completion, a flow's next drain) can loop
// `e = q.ReuseAtTier(e, ...)` forever with zero steady-state
// allocations. Never pass an event owned by another holder: recycling is
// only safe because the owner knows no one else will Cancel it.
func (q *Queue) ReuseAtTier(e *Event, when Time, tier int8, fn func()) *Event {
	if when < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", when, q.now))
	}
	if e == nil || e.Scheduled() {
		e = &Event{}
	}
	*e = Event{when: when, tier: tier, seq: q.nextSq, index: -1, fn: fn}
	q.nextSq++
	q.push(e)
	return e
}

// ReuseAfter is After with ReuseAtTier's recycling (default tier 0).
func (q *Queue) ReuseAfter(e *Event, d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.ReuseAtTier(e, q.now.Add(d), 0, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op; Cancel reports whether the event
// was actually removed.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.canned || e.index < 0 {
		return false
	}
	e.canned = true
	q.remove(e)
	return true
}

// NextTime reports the instant of the earliest pending event without
// firing it, and false when the queue is empty. Cancelled events are
// removed eagerly, so the head of the heap is always live.
func (q *Queue) NextTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.peek().when, true
}

// Step fires the earliest pending event, advancing the clock to its
// instant. It reports false when no events remain.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		e := q.pop()
		if e.canned {
			continue
		}
		q.now = e.when
		q.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or limit events have fired
// (limit <= 0 means no limit). It returns the number fired. A limit guards
// tests against accidental event storms / livelock.
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for q.Step() {
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// RunUntil fires events with instants <= deadline, leaving later events
// pending, and advances the clock to min(deadline, time of last event).
func (q *Queue) RunUntil(deadline Time) {
	for len(q.heap) > 0 {
		if q.peek().when > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// --- heap internals (specialized to avoid interface boxing) ---

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.tier != b.tier {
		return a.tier < b.tier
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) push(e *Event) {
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

func (q *Queue) peek() *Event { return q.heap[0] }

func (q *Queue) pop() *Event {
	e := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	e.index = -1
	return e
}

func (q *Queue) remove(e *Event) {
	i := e.index
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		if !q.up(i) {
			q.down(i)
		}
	}
	e.index = -1
}

func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
