package eventq

import (
	"fmt"
	"math"
)

// Time is an absolute instant of virtual time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants so call sites read
// naturally without importing the wall-clock time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel Time larger than any reachable instant.
const Forever Time = math.MaxInt64

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds converts an instant to floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the instant d after t, saturating at Forever.
func (t Time) Add(d Duration) Time {
	if t == Forever {
		return Forever
	}
	s := t + Time(d)
	if d > 0 && s < t {
		return Forever
	}
	return s
}

// DurationOf converts floating-point seconds to a Duration, rounding to
// the nearest nanosecond and clamping negatives to zero.
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	if seconds >= float64(math.MaxInt64)/float64(Second) {
		return Duration(math.MaxInt64)
	}
	return Duration(math.Round(seconds * float64(Second)))
}

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", d.Seconds())
	}
}

func (t Time) String() string {
	if t == Forever {
		return "∞"
	}
	return Duration(t).String()
}

// Event is a callback scheduled at an instant. Events scheduled for the
// same instant fire by ascending tier, then in scheduling order (FIFO),
// which makes simulations deterministic regardless of heap internals.
type Event struct {
	when   Time
	tier   int8
	seq    uint64
	index  int // heap index; -1 when not queued
	fn     func()
	canned bool
}

// Time reports the instant the event is scheduled for.
func (e *Event) Time() Time { return e.when }

// Scheduled reports whether the event is still pending in a queue.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 && !e.canned }

// Queue is a virtual clock plus a pending-event heap. The zero value is
// ready to use at time 0.
type Queue struct {
	now    Time
	heap   []*Event
	nextSq uint64
	fired  uint64
}

// New returns an empty queue at virtual time 0.
func New() *Queue { return &Queue{} }

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Fired returns the cumulative number of events executed.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules fn at the absolute instant when, in the default tier 0.
// Scheduling in the past (before Now) panics: it would mean a model
// produced a causality violation and continuing would silently corrupt
// the timeline.
func (q *Queue) At(when Time, fn func()) *Event {
	return q.AtTier(when, 0, fn)
}

// AtTier schedules fn at the absolute instant when in the given tier.
// Same-instant events fire by ascending tier, FIFO within a tier, no
// matter when each was scheduled — so a model can give a class of events
// (e.g. externally injected arrivals) a stable position relative to
// events that are already queued for that instant.
func (q *Queue) AtTier(when Time, tier int8, fn func()) *Event {
	if when < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", when, q.now))
	}
	e := &Event{when: when, tier: tier, seq: q.nextSq, fn: fn}
	q.nextSq++
	q.push(e)
	return e
}

// After schedules fn d from now.
func (q *Queue) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// ReuseAtTier schedules fn like AtTier, but recycles the caller-owned
// Event e instead of allocating when e has already fired or been
// cancelled. A nil e (or one still pending — recycling it would corrupt
// the heap) allocates a fresh Event. The returned event is the one
// actually queued; callers that hold exactly one pending event per
// entity (a job's next phase completion, a flow's next drain) can loop
// `e = q.ReuseAtTier(e, ...)` forever with zero steady-state
// allocations. Never pass an event owned by another holder: recycling is
// only safe because the owner knows no one else will Cancel it.
func (q *Queue) ReuseAtTier(e *Event, when Time, tier int8, fn func()) *Event {
	if when < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", when, q.now))
	}
	if e == nil || e.Scheduled() {
		e = &Event{}
	}
	*e = Event{when: when, tier: tier, seq: q.nextSq, index: -1, fn: fn}
	q.nextSq++
	q.push(e)
	return e
}

// ReuseAfter is After with ReuseAtTier's recycling (default tier 0).
func (q *Queue) ReuseAfter(e *Event, d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.ReuseAtTier(e, q.now.Add(d), 0, fn)
}

// RescheduleAfter moves e to the instant d from now (tier 0). It is
// exactly equivalent to Cancel(e) followed by ReuseAfter(e, d, fn) — the
// event takes a fresh sequence number, so its same-instant FIFO position
// is that of a newly scheduled event — but when e is still pending it
// repositions the existing heap entry with a single sift instead of a
// removal plus a push. This is the hot-path API for the one-pending-
// event-per-entity pattern (a job's next phase completion): every
// scheduling event moves the entity's deadline, and half the heap
// traffic of the cancel-and-repush idiom is pure overhead.
func (q *Queue) RescheduleAfter(e *Event, d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	if e == nil || !e.Scheduled() {
		return q.ReuseAtTier(e, q.now.Add(d), 0, fn)
	}
	e.when, e.tier, e.fn = q.now.Add(d), 0, fn
	e.seq = q.nextSq
	q.nextSq++
	if !q.up(e.index) {
		q.down(e.index)
	}
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op; Cancel reports whether the event
// was actually removed.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.canned || e.index < 0 {
		return false
	}
	e.canned = true
	q.remove(e)
	return true
}

// NextTime reports the instant of the earliest pending event without
// firing it, and false when the queue is empty. Cancelled events are
// removed eagerly, so the head of the heap is always live.
func (q *Queue) NextTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.peek().when, true
}

// Step fires the earliest pending event, advancing the clock to its
// instant. It reports false when no events remain.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		e := q.pop()
		if e.canned {
			continue
		}
		q.now = e.when
		q.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or limit events have fired
// (limit <= 0 means no limit). It returns the number fired. A limit guards
// tests against accidental event storms / livelock.
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for q.Step() {
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// RunUntil fires events with instants <= deadline, leaving later events
// pending, and advances the clock to min(deadline, time of last event).
func (q *Queue) RunUntil(deadline Time) {
	for len(q.heap) > 0 {
		if q.peek().when > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// --- heap internals ---
//
// The pending set is a 4-ary array heap with hole-based sifting,
// specialized to *Event to avoid interface boxing. The wider fan-out
// halves the tree depth of the binary layout (fewer cache lines touched
// per sift on pop-heavy loads), and sifting a hole writes each displaced
// entry once instead of three-way swapping. The ordering key
// (when, tier, seq) is a strict total order — no two pending events
// compare equal — so pop order is independent of the heap's internal
// arrangement and the arity is free to change without affecting any
// simulation outcome.

// dary is the heap fan-out.
const dary = 4

// lessEv is the event ordering: instant, then tier, then FIFO seq.
func lessEv(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.tier != b.tier {
		return a.tier < b.tier
	}
	return a.seq < b.seq
}

func (q *Queue) push(e *Event) {
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

func (q *Queue) peek() *Event { return q.heap[0] }

func (q *Queue) pop() *Event {
	e := q.heap[0]
	last := len(q.heap) - 1
	tail := q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.heap[0] = tail
		tail.index = 0
		q.down(0)
	}
	e.index = -1
	return e
}

func (q *Queue) remove(e *Event) {
	i := e.index
	last := len(q.heap) - 1
	tail := q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		q.heap[i] = tail
		tail.index = i
		if !q.up(i) {
			q.down(i)
		}
	}
	e.index = -1
}

// up sifts the entry at i toward the root, reporting whether it moved.
// The entry is held in a register while its ancestors shift down into
// the hole, then written once at its final slot.
func (q *Queue) up(i int) bool {
	e := q.heap[i]
	start := i
	for i > 0 {
		p := (i - 1) / dary
		pe := q.heap[p]
		if !lessEv(e, pe) {
			break
		}
		q.heap[i] = pe
		pe.index = i
		i = p
	}
	if i == start {
		return false
	}
	q.heap[i] = e
	e.index = i
	return true
}

// down sifts the entry at i toward the leaves: at each level the least
// of up to dary children shifts up into the hole.
func (q *Queue) down(i int) {
	e := q.heap[i]
	n := len(q.heap)
	start := i
	for {
		c := dary*i + 1
		if c >= n {
			break
		}
		end := c + dary
		if end > n {
			end = n
		}
		m, me := c, q.heap[c]
		for j := c + 1; j < end; j++ {
			if je := q.heap[j]; lessEv(je, me) {
				m, me = j, je
			}
		}
		if !lessEv(me, e) {
			break
		}
		q.heap[i] = me
		me.index = i
		i = m
	}
	if i != start {
		q.heap[i] = e
		e.index = i
	}
}
