package eventq

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"dpsim/internal/rng"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if q.Now() != 0 {
		t.Fatalf("empty queue time = %v, want 0", q.Now())
	}
}

func TestOrdering(t *testing.T) {
	q := New()
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired order %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Fatalf("final time %v, want 30", q.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		q.At(100, func() { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

// TestTierOrdering: same-instant events fire by ascending tier before
// FIFO, regardless of scheduling order — a lower-tier event scheduled
// LAST still beats higher-tier events already queued for that instant.
func TestTierOrdering(t *testing.T) {
	q := New()
	var got []string
	q.At(10, func() { got = append(got, "t0-a") })
	q.AtTier(10, 1, func() { got = append(got, "t1") })
	q.AtTier(10, -1, func() { got = append(got, "t-1-a") })
	q.At(10, func() { got = append(got, "t0-b") })
	q.AtTier(10, -2, func() { got = append(got, "t-2") })
	q.AtTier(10, -1, func() { got = append(got, "t-1-b") })
	q.At(5, func() { got = append(got, "early") })
	q.Run(0)
	want := []string{"early", "t-2", "t-1-a", "t-1-b", "t0-a", "t0-b", "t1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order %v, want %v", got, want)
	}
}

func TestClockAdvances(t *testing.T) {
	q := New()
	var at1, at2 Time
	q.At(5, func() { at1 = q.Now() })
	q.At(9, func() { at2 = q.Now() })
	q.Run(0)
	if at1 != 5 || at2 != 9 {
		t.Fatalf("Now inside events = %v, %v; want 5, 9", at1, at2)
	}
}

func TestAfter(t *testing.T) {
	q := New()
	var fireTime Time
	q.At(7, func() {
		q.After(3, func() { fireTime = q.Now() })
	})
	q.Run(0)
	if fireTime != 10 {
		t.Fatalf("After(3) at time 7 fired at %v, want 10", fireTime)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	q := New()
	fired := false
	q.After(-5, func() { fired = true })
	q.Run(0)
	if !fired || q.Now() != 0 {
		t.Fatalf("After(-5): fired=%v now=%v, want true at 0", fired, q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := New()
	q.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		q.At(5, func() {})
	})
	q.Run(0)
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	e := q.At(10, func() { fired = true })
	if !q.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if q.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	q.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	q := New()
	var got []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, q.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		q.Cancel(events[i])
	}
	q.Run(0)
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("fired %d events, want 13", len(got))
	}
}

func TestCancelNil(t *testing.T) {
	q := New()
	if q.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestScheduled(t *testing.T) {
	q := New()
	e := q.At(5, func() {})
	if !e.Scheduled() {
		t.Fatal("pending event not Scheduled")
	}
	q.Run(0)
	if e.Scheduled() {
		t.Fatal("fired event still Scheduled")
	}
}

func TestRunLimit(t *testing.T) {
	q := New()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		q.After(1, reschedule)
	}
	q.After(1, reschedule)
	n := q.Run(100)
	if n != 100 || count != 100 {
		t.Fatalf("Run(100) fired %d (count %d), want 100", n, count)
	}
}

func TestRunUntil(t *testing.T) {
	q := New()
	var got []Time
	for _, ti := range []Time{5, 10, 15, 20} {
		ti := ti
		q.At(ti, func() { got = append(got, ti) })
	}
	q.RunUntil(12)
	if len(got) != 2 || q.Now() != 12 {
		t.Fatalf("RunUntil(12): fired %v now %v, want [5 10] at 12", got, q.Now())
	}
	q.RunUntil(100)
	if len(got) != 4 || q.Now() != 100 {
		t.Fatalf("RunUntil(100): fired %v now %v", got, q.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	q := New()
	q.RunUntil(500)
	if q.Now() != 500 {
		t.Fatalf("idle RunUntil left clock at %v, want 500", q.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	q := New()
	for i := 0; i < 5; i++ {
		q.At(Time(i), func() {})
	}
	q.Run(0)
	if q.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", q.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	q := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 64 {
			q.After(Duration(depth), recurse)
		}
	}
	q.After(1, recurse)
	q.Run(0)
	if depth != 64 {
		t.Fatalf("nested depth = %d, want 64", depth)
	}
}

// Property: events always fire in non-decreasing time order, and every
// non-cancelled event fires exactly once, for random schedules.
func TestPropertyOrderedCompleteFiring(t *testing.T) {
	prop := func(seed uint64, sizeRaw uint16) bool {
		size := int(sizeRaw%300) + 1
		r := rng.New(seed)
		q := New()
		firedAt := make([]Time, 0, size)
		expected := 0
		var events []*Event
		for i := 0; i < size; i++ {
			when := Time(r.Intn(1000))
			events = append(events, q.At(when, func() {
				firedAt = append(firedAt, q.Now())
			}))
		}
		cancelled := make(map[int]bool)
		for i := 0; i < size/4; i++ {
			cancelled[r.Intn(size)] = true
		}
		for idx := range cancelled {
			q.Cancel(events[idx])
		}
		expected = size - len(cancelled)
		q.Run(0)
		if len(firedAt) != expected {
			return false
		}
		return sort.SliceIsSorted(firedAt, func(i, j int) bool { return firedAt[i] < firedAt[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationOf(t *testing.T) {
	cases := []struct {
		sec  float64
		want Duration
	}{
		{0, 0},
		{-1, 0},
		{1, Second},
		{0.5, 500 * Millisecond},
		{1e-9, Nanosecond},
		{1e-6, Microsecond},
	}
	for _, c := range cases {
		if got := DurationOf(c.sec); got != c.want {
			t.Errorf("DurationOf(%v) = %v, want %v", c.sec, got, c.want)
		}
	}
}

func TestDurationOfRoundTrip(t *testing.T) {
	prop := func(msRaw uint32) bool {
		sec := float64(msRaw) / 1000.0
		d := DurationOf(sec)
		back := d.Seconds()
		diff := back - sec
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if Forever.Add(Second) != Forever {
		t.Fatal("Forever.Add changed Forever")
	}
	almost := Time(int64(Forever) - 5)
	if almost.Add(100) != Forever {
		t.Fatal("overflowing Add did not saturate")
	}
}

func TestStrings(t *testing.T) {
	if s := (500 * Millisecond).String(); s == "" {
		t.Fatal("empty duration string")
	}
	if s := Forever.String(); s != "∞" {
		t.Fatalf("Forever.String() = %q", s)
	}
	if s := (2 * Second).String(); s != "2s" {
		t.Fatalf("(2s).String() = %q", s)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	q := New()
	for i := 0; i < b.N; i++ {
		q.After(Duration(i%100), func() {})
		q.Step()
	}
}

func BenchmarkHeap1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := New()
		r := rng.New(uint64(i))
		for j := 0; j < 1000; j++ {
			q.At(Time(r.Intn(10000)), func() {})
		}
		q.Run(0)
	}
}

func TestNextTime(t *testing.T) {
	q := New()
	if _, ok := q.NextTime(); ok {
		t.Fatal("empty queue reported a next time")
	}
	e := q.At(50, func() {})
	q.At(30, func() {})
	if at, ok := q.NextTime(); !ok || at != 30 {
		t.Fatalf("next = %v, %v", at, ok)
	}
	// Peeking must not advance the clock or fire anything.
	if q.Now() != 0 || q.Fired() != 0 {
		t.Fatal("NextTime advanced the queue")
	}
	q.Step()
	if at, ok := q.NextTime(); !ok || at != 50 {
		t.Fatalf("after step: next = %v, %v", at, ok)
	}
	q.Cancel(e)
	if _, ok := q.NextTime(); ok {
		t.Fatal("cancelled event still visible")
	}
}

// TestReuseRecyclesFiredAndCancelled: ReuseAtTier must recycle an event
// the owner knows is out of the heap, refuse to recycle a pending one,
// and preserve the FIFO tie-break (a recycled event takes a fresh seq).
func TestReuseRecyclesFiredAndCancelled(t *testing.T) {
	q := New()
	var order []int
	e := q.At(10, func() { order = append(order, 0) })
	q.Step()
	if e.Scheduled() {
		t.Fatal("fired event still scheduled")
	}
	// Recycling a fired event must reuse the same object.
	e2 := q.ReuseAtTier(e, 20, 0, func() { order = append(order, 1) })
	if e2 != e {
		t.Fatal("fired event not recycled")
	}
	// Recycling a still-pending event must allocate a fresh one.
	e3 := q.ReuseAtTier(e2, 30, 0, func() { order = append(order, 2) })
	if e3 == e2 {
		t.Fatal("pending event recycled out from under the heap")
	}
	// A cancelled event is recyclable too, and the recycled event must
	// order FIFO after an event scheduled for the same instant earlier.
	q.Cancel(e3)
	q.At(20, func() { order = append(order, 3) })
	e4 := q.ReuseAtTier(e3, 20, 0, func() { order = append(order, 4) })
	if e4 != e3 {
		t.Fatal("cancelled event not recycled")
	}
	q.Run(0)
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("firing order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", order, want)
		}
	}
}

// TestReuseAfterZeroAlloc: the steady-state reschedule loop — fire, then
// recycle the same event — must not allocate.
func TestReuseAfterZeroAlloc(t *testing.T) {
	q := New()
	var e *Event
	fn := func() {}
	e = q.After(1, fn)
	q.Step()
	// Warm up: the first reuse after a cap change may grow the heap.
	e = q.ReuseAfter(e, 1, fn)
	q.Step()
	allocs := testing.AllocsPerRun(200, func() {
		e = q.ReuseAfter(e, 1, fn)
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("reuse loop allocates %v per event, want 0", allocs)
	}
}

// TestReuseAtTierPastPanics mirrors AtTier's causality guard.
func TestReuseAtTierPastPanics(t *testing.T) {
	q := New()
	q.At(10, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on scheduling in the past")
		}
	}()
	q.ReuseAtTier(nil, 5, 0, func() {})
}

// TestRescheduleAfterMovesInPlace: rescheduling a pending event must
// reuse the same object, land it at the new instant, and give it a fresh
// FIFO position — exactly as if it had been cancelled and re-armed.
func TestRescheduleAfterMovesInPlace(t *testing.T) {
	q := New()
	var order []int
	e := q.After(30, func() { order = append(order, 0) })
	q.At(20, func() { order = append(order, 1) })
	// Move the pending event from t=30 to t=20: it must fire after the
	// event already scheduled there (fresh seq ⇒ FIFO behind it).
	if e2 := q.RescheduleAfter(e, 20, e.fn); e2 != e {
		t.Fatal("pending event not moved in place")
	}
	if e.Time() != 20 {
		t.Fatalf("rescheduled instant = %v, want 20ns", e.Time())
	}
	q.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("firing order = %v, want [1 0]", order)
	}
	// A fired event falls back to the recycle path.
	e3 := q.RescheduleAfter(e, 5, func() { order = append(order, 2) })
	if e3 != e {
		t.Fatal("fired event not recycled")
	}
	q.Run(0)
	if len(order) != 3 || order[2] != 2 {
		t.Fatalf("firing order = %v, want [1 0 2]", order)
	}
}

// TestPropertyRescheduleEquivalence: for random schedules and random
// reschedules, RescheduleAfter must produce the identical firing
// sequence to Cancel followed by ReuseAfter on a mirror queue.
func TestPropertyRescheduleEquivalence(t *testing.T) {
	prop := func(seed uint64, sizeRaw uint16) bool {
		size := int(sizeRaw%100) + 2
		r := rng.New(seed)
		qa, qb := New(), New()
		var fa, fb []int
		ea := make([]*Event, size)
		eb := make([]*Event, size)
		for i := 0; i < size; i++ {
			i := i
			when := Time(r.Intn(500))
			ea[i] = qa.At(when, func() { fa = append(fa, i) })
			eb[i] = qb.At(when, func() { fb = append(fb, i) })
		}
		for k := 0; k < size/2; k++ {
			i := r.Intn(size)
			d := Duration(r.Intn(500))
			qa.RescheduleAfter(ea[i], d, ea[i].fn)
			qb.Cancel(eb[i])
			eb[i] = qb.ReuseAfter(eb[i], d, eb[i].fn)
		}
		qa.Run(0)
		qb.Run(0)
		if len(fa) != len(fb) {
			return false
		}
		for i := range fa {
			if fa[i] != fb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRescheduleAfterZeroAlloc: moving a pending event allocates nothing.
func TestRescheduleAfterZeroAlloc(t *testing.T) {
	q := New()
	fn := func() {}
	q.At(1000000, fn) // keep the queue non-empty so e stays pending
	e := q.After(1, fn)
	allocs := testing.AllocsPerRun(200, func() {
		e = q.RescheduleAfter(e, 2, fn)
	})
	if allocs != 0 {
		t.Fatalf("reschedule allocates %v per move, want 0", allocs)
	}
}
