package cluster

import (
	"testing"

	"dpsim/internal/sched"
)

// steadyJobs builds a workload whose steady state is long and uneventful:
// every job is present from t=0 and carries many equal phases, so after
// the arrivals drain, each event is a phase completion that leaves the
// active set unchanged — the pure scheduler-invocation hot path.
func steadyJobs(jobs, phases, nodes int) []*Job {
	out := make([]*Job, jobs)
	for i := range out {
		out[i] = &Job{
			ID:       i,
			Arrival:  0,
			Phases:   SyntheticProfile(phases, float64(100+7*i), 0.02+0.01*float64(i%5)),
			MaxNodes: 1 + (i % nodes),
		}
	}
	return out
}

// steadySim builds a warmed-up simulation mid-flight: arrivals processed,
// scratch buffers sized, every remaining event a phase completion.
func steadySim(tb testing.TB, policyName string) *Sim {
	tb.Helper()
	policy, err := sched.New(policyName, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := NewSim(32, policy, steadyJobs(24, 400, 32))
	if err != nil {
		tb.Fatal(err)
	}
	// Warm up past every arrival plus a few phase boundaries so the heap
	// and the scratch buffers have reached their steady capacity.
	for i := 0; i < 64; i++ {
		if !sim.ProcessNextEvent() {
			tb.Fatal("workload drained during warm-up")
		}
	}
	return sim
}

// TestProcessNextEventZeroAllocSteadyState is the allocation regression
// gate of the zero-allocation core: once warmed up, processing a
// steady-state event — settle progress, invoke the scheduler, recycle
// the phase-completion events — must not allocate at all, for every
// registered policy. A failure here means a scratch buffer, sort, map or
// closure crept back into the hot path.
func TestProcessNextEventZeroAllocSteadyState(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sim := steadySim(t, name)
			allocs := testing.AllocsPerRun(200, func() {
				if !sim.ProcessNextEvent() {
					t.Fatal("workload drained mid-measurement")
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocations per steady-state event, want 0", name, allocs)
			}
		})
	}
}

// BenchmarkSchedulerInvoke measures the per-event cost of the
// scheduler-invocation hot path for every registered policy: one op is
// one steady-state event (settle + policy Allocate + event recycling)
// over 24 active jobs on 32 nodes. allocs/op is the headline number —
// the zero-allocation contract holds when it reports 0.
func BenchmarkSchedulerInvoke(b *testing.B) {
	for _, name := range sched.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			sim := steadySim(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sim.ProcessNextEvent() {
					b.StopTimer()
					sim = steadySim(b, name)
					b.StartTimer()
				}
			}
		})
	}
}
