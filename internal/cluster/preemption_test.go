package cluster

import (
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/sched"
)

// probeSnap records the scheduler-visible state of one invocation: the
// preemption pass has already run, so the Alloc values show exactly what
// the eviction logic left standing.
type probeSnap struct {
	now    float64
	nodes  int
	allocs []int // indexed like the (ID-sorted) active list
}

// preemptProbe wraps a policy and snapshots every state it is handed.
type preemptProbe struct {
	inner sched.Scheduler
	snaps []probeSnap
}

func (p *preemptProbe) Name() string { return p.inner.Name() }

func (p *preemptProbe) Allocate(st sched.State, out []int) {
	snap := probeSnap{now: st.Now, nodes: st.Nodes, allocs: make([]int, len(st.Active))}
	for i := range st.Active {
		snap.allocs[i] = st.Active[i].Alloc
	}
	p.snaps = append(p.snaps, snap)
	p.inner.Allocate(st, out)
}

// TestPreemptionEvictsHighestIDFirst pins the preemption pass's
// tie-break: when a capacity drop forces evictions among jobs with EQUAL
// arrival times, whole jobs are evicted highest-ID-first, and no
// scheduler invocation ever sees more nodes allocated than the usable
// pool offers.
func TestPreemptionEvictsHighestIDFirst(t *testing.T) {
	// Three rigid jobs, identical arrivals, 4 nodes each on a 12-node
	// pool: all running from t=0. Abrupt drops to 8 and then 5 force one
	// eviction each; the arrival tie must break toward the highest ID.
	jobs := []*Job{
		{ID: 0, Arrival: 0, Phases: SyntheticProfile(1, 400, 0), MaxNodes: 4},
		{ID: 1, Arrival: 0, Phases: SyntheticProfile(1, 400, 0), MaxNodes: 4},
		{ID: 2, Arrival: 0, Phases: SyntheticProfile(1, 400, 0), MaxNodes: 4},
	}
	probe := &preemptProbe{inner: &sched.Rigid{}}
	sim, err := NewSim(12, probe, jobs)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.SetCapacityChanges([]availability.Change{
		{At: 1, Capacity: 8},
		{At: 2, Capacity: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	var at1, at2 *probeSnap
	for i := range probe.snaps {
		s := &probe.snaps[i]
		total := 0
		for _, a := range s.allocs {
			total += a
		}
		if total > s.nodes {
			t.Fatalf("t=%g: scheduler saw %d nodes allocated of %d usable", s.now, total, s.nodes)
		}
		switch s.now {
		case 1:
			at1 = s
		case 2:
			at2 = s
		}
	}
	// Drop to 8: exactly one eviction needed; it must be job 2, the
	// highest ID among the equal-arrival victims — jobs 0 and 1 keep
	// their nodes.
	if at1 == nil || len(at1.allocs) != 3 {
		t.Fatalf("no 3-job snapshot at the t=1 capacity drop: %+v", probe.snaps)
	}
	if at1.allocs[0] != 4 || at1.allocs[1] != 4 || at1.allocs[2] != 0 {
		t.Fatalf("t=1 evictions = %v, want [4 4 0] (highest ID first)", at1.allocs)
	}
	// Drop to 5: among the survivors (jobs 0 and 1) the higher ID goes.
	if at2 == nil || len(at2.allocs) != 3 {
		t.Fatalf("no 3-job snapshot at the t=2 capacity drop: %+v", probe.snaps)
	}
	if at2.allocs[0] != 4 || at2.allocs[1] != 0 || at2.allocs[2] != 0 {
		t.Fatalf("t=2 evictions = %v, want [4 0 0] (highest ID first)", at2.allocs)
	}
}
