package cluster

import (
	"math"
	"reflect"
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/eventq"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// avSim builds a Sim over simple perfectly-parallel jobs with a capacity
// timeline and cost model installed.
func avSim(t *testing.T, nodes int, sched Scheduler, jobs []*Job, ch []availability.Change, cost ReconfigCost) *Sim {
	t.Helper()
	sim, err := NewSim(nodes, sched, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetCapacityChanges(ch); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetReconfigCost(cost); err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestCapacitySlowdown: halving the pool for a stretch must slow a
// saturating job down by exactly the lost node-seconds (perfectly
// parallel job, equipartition). 8 nodes, 160 work-seconds: 20s flat out.
// Capacity 4 during [5, 15) removes 4×10 = 40 node-seconds → finish 25s.
func TestCapacitySlowdown(t *testing.T) {
	job := singleJob(160, 1, 8)
	sim := avSim(t, 8, sched.Equipartition{}, []*Job{job},
		[]availability.Change{{At: 5, Capacity: 4}, {At: 15, Capacity: 8}}, ReconfigCost{})
	r := sim.Run()
	if math.Abs(r.Makespan-25) > 1e-9 {
		t.Fatalf("makespan %g, want 25", r.Makespan)
	}
	if r.CapacityEvents != 2 {
		t.Fatalf("capacity events %d, want 2", r.CapacityEvents)
	}
	// Availability-weighted utilization is perfect: every offered
	// node-second did useful work (8×25 − 4×10 = 160 node-seconds).
	if math.Abs(r.AvailWeightedUtilization-1) > 1e-9 {
		t.Fatalf("avail-weighted utilization %g, want 1", r.AvailWeightedUtilization)
	}
	if r.Utilization >= r.AvailWeightedUtilization {
		t.Fatalf("raw utilization %g should undercut availability-weighted %g", r.Utilization, r.AvailWeightedUtilization)
	}
}

// TestCapacityDropPreemptsRigid: a rigid job holding the full pool must
// be evicted when capacity drops below its allocation, wait out the
// outage, and be re-admitted when capacity returns.
func TestCapacityDropPreemptsRigid(t *testing.T) {
	job := singleJob(80, 1, 8) // 10s on 8 nodes
	sim := avSim(t, 8, &sched.Rigid{}, []*Job{job},
		[]availability.Change{{At: 4, Capacity: 4}, {At: 16, Capacity: 8}}, ReconfigCost{})
	r := sim.Run()
	// 4s of progress (32 work-seconds), evicted during [4, 16) (rigid
	// demands all 8), then 48/8 = 6s more: finish at 22.
	if math.Abs(r.Makespan-22) > 1e-9 {
		t.Fatalf("makespan %g, want 22", r.Makespan)
	}
	if len(r.PerJob) != 1 {
		t.Fatalf("job did not finish: %+v", r)
	}
}

// TestAbruptDropLosesWork: with a lost-work cost, an abrupt reclaim rolls
// back progress; the same drop announced in advance loses nothing.
func TestAbruptDropLosesWork(t *testing.T) {
	mk := func(notice float64) Result {
		job := singleJob(160, 1, 8)
		sim := avSim(t, 8, sched.Equipartition{}, []*Job{job},
			[]availability.Change{{At: 5, Capacity: 4, NoticeS: notice}, {At: 15, Capacity: 8}},
			ReconfigCost{LostWorkS: 3})
		return sim.Run()
	}
	abrupt := mk(0)
	if abrupt.LostWorkS != 12 { // 4 reclaimed nodes × 3 work-seconds
		t.Fatalf("abrupt lost work %g, want 12", abrupt.LostWorkS)
	}
	// The rollback re-adds 12 work-seconds, done at 4..8 nodes.
	if abrupt.Makespan <= 25 {
		t.Fatalf("abrupt makespan %g, want > 25", abrupt.Makespan)
	}
	graceful := mk(2)
	if graceful.LostWorkS != 0 {
		t.Fatalf("graceful lost work %g, want 0", graceful.LostWorkS)
	}
	// Draining early (at t=3) costs node-seconds but loses no work:
	// 160 − 3×8 = 136 left, capacity 4 over [3, 15) does 48, rest on 8:
	// finish 15 + 88/8 = 26.
	if math.Abs(graceful.Makespan-26) > 1e-9 {
		t.Fatalf("graceful makespan %g, want 26", graceful.Makespan)
	}
	if graceful.Makespan >= abrupt.Makespan {
		t.Fatalf("notice should beat rollback: graceful %g vs abrupt %g", graceful.Makespan, abrupt.Makespan)
	}
}

// TestLostWorkCappedAtPhaseProgress: the rollback can never exceed the
// progress made in the current phase.
func TestLostWorkCappedAtPhaseProgress(t *testing.T) {
	job := singleJob(160, 1, 8)
	sim := avSim(t, 8, sched.Equipartition{}, []*Job{job},
		[]availability.Change{{At: 1, Capacity: 4}, {At: 15, Capacity: 8}},
		ReconfigCost{LostWorkS: 100}) // 4 nodes × 100 ≫ the 8 done
	r := sim.Run()
	if r.LostWorkS != 8 { // only 1s × 8 nodes of progress existed
		t.Fatalf("lost work %g, want 8 (capped at phase progress)", r.LostWorkS)
	}
}

// TestRedistributionPause: resizing a running job pauses it; the pause
// shows up in both the accounting and the makespan.
func TestRedistributionPause(t *testing.T) {
	job := singleJob(160, 1, 8)
	free := avSim(t, 8, sched.Equipartition{}, []*Job{singleJob(160, 1, 8)},
		[]availability.Change{{At: 5, Capacity: 4}, {At: 15, Capacity: 8}}, ReconfigCost{})
	base := free.Run()

	paid := avSim(t, 8, sched.Equipartition{}, []*Job{job},
		[]availability.Change{{At: 5, Capacity: 4}, {At: 15, Capacity: 8}},
		ReconfigCost{RedistributionSPerNode: 0.5})
	r := paid.Run()
	if r.RedistributionS != 4 { // two resizes of 4 nodes × 0.5s
		t.Fatalf("redistribution %g, want 4", r.RedistributionS)
	}
	if r.LostWorkS != 0 {
		t.Fatalf("redistribution should lose no work, got %g", r.LostWorkS)
	}
	// Pause at 4 nodes costs 2×4, at 8 nodes 2×8 node-seconds → 24 extra
	// work-seconds of delay ÷ 8 nodes... exact: 25 + 2 + 2×(4/8) wait,
	// just require the pause lengthened the run by at least 2s.
	if r.Makespan < base.Makespan+2 {
		t.Fatalf("makespan %g vs cost-free %g: pause not charged", r.Makespan, base.Makespan)
	}
}

// TestWaitAndFirstStart: a rigid pool admits the second job only when the
// first releases it; Wait/FirstStart must measure exactly that delay.
func TestWaitAndFirstStart(t *testing.T) {
	a := singleJob(80, 1, 8) // runs [0, 10) on all 8 nodes
	b := singleJob(40, 1, 8) // arrives at 2, admitted at 10, runs 5s
	b.ID, b.Arrival = 1, 2
	sim, err := NewSim(8, &sched.Rigid{}, []*Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	r := sim.Run()
	if len(r.PerJob) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(r.PerJob))
	}
	if w := r.PerJob[0].Wait; w != 0 {
		t.Fatalf("job 0 wait %g, want 0", w)
	}
	if fs := r.PerJob[1].FirstStart; math.Abs(fs-10) > 1e-9 {
		t.Fatalf("job 1 first start %g, want 10", fs)
	}
	if w := r.PerJob[1].Wait; math.Abs(w-8) > 1e-9 {
		t.Fatalf("job 1 wait %g, want 8", w)
	}
	if math.Abs(r.MeanWait-4) > 1e-9 {
		t.Fatalf("mean wait %g, want 4", r.MeanWait)
	}
}

// TestCapacityZeroStalls: a total outage stalls every job; work resumes
// when the pool returns and all jobs still finish.
func TestCapacityZeroStalls(t *testing.T) {
	job := singleJob(80, 1, 8) // 10s flat out
	sim := avSim(t, 8, &sched.EfficiencyGreedy{}, []*Job{job},
		[]availability.Change{{At: 5, Capacity: 0}, {At: 20, Capacity: 8}}, ReconfigCost{})
	r := sim.Run()
	if math.Abs(r.Makespan-25) > 1e-9 { // 5s + 15s outage + 5s
		t.Fatalf("makespan %g, want 25", r.Makespan)
	}
}

// TestCapacityEventsDoNotStretchMakespan: changes after the last job
// event are processed but must not move the makespan or the utilization
// integral.
func TestCapacityEventsDoNotStretchMakespan(t *testing.T) {
	job := singleJob(80, 1, 8)
	sim := avSim(t, 8, sched.Equipartition{}, []*Job{job},
		[]availability.Change{{At: 500, Capacity: 4}, {At: 600, Capacity: 8}}, ReconfigCost{})
	r := sim.Run()
	if math.Abs(r.Makespan-10) > 1e-9 {
		t.Fatalf("makespan %g, want 10: post-workload capacity events leaked in", r.Makespan)
	}
	if r.AvailWeightedUtilization != r.Utilization {
		t.Fatalf("avail-weighted %g != %g though no change preceded the makespan",
			r.AvailWeightedUtilization, r.Utilization)
	}
}

// TestSetAfterStartRejected: the configuration surface is sealed once the
// event loop runs.
func TestSetAfterStartRejected(t *testing.T) {
	sim, err := NewSim(4, sched.Equipartition{}, []*Job{singleJob(4, 1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	sim.ProcessNextEvent()
	if err := sim.SetCapacityChanges([]availability.Change{{At: 1, Capacity: 2}}); err == nil {
		t.Fatal("SetCapacityChanges accepted after start")
	}
	if err := sim.SetReconfigCost(ReconfigCost{LostWorkS: 1}); err == nil {
		t.Fatal("SetReconfigCost accepted after start")
	}
}

// TestSetCapacityChangesValidation: out-of-order or out-of-range
// timelines are rejected up front.
func TestSetCapacityChangesValidation(t *testing.T) {
	sim, err := NewSim(4, sched.Equipartition{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]availability.Change{
		{{At: 5, Capacity: 2}, {At: 3, Capacity: 4}},
		{{At: 1, Capacity: 9}},
		{{At: 1, Capacity: -1}},
		{{At: -1, Capacity: 2}},
		{{At: 1, Capacity: 2, NoticeS: -3}},
	}
	for i, ch := range bad {
		if err := sim.SetCapacityChanges(ch); err == nil {
			t.Fatalf("timeline %d accepted: %+v", i, ch)
		}
	}
}

// TestStrandedJobUtilization: a job stranded by a permanent capacity
// loss must not count its unexecuted work toward utilization (which
// could exceed 100%), and must be surfaced as unfinished.
func TestStrandedJobUtilization(t *testing.T) {
	a := singleJob(2, 1, 1)    // runs [0, 2] on 1 node
	b := singleJob(1000, 1, 8) // admitted at t=2, stranded at t=2.5
	b.ID = 1
	sim := avSim(t, 8, &sched.Rigid{}, []*Job{a, b},
		[]availability.Change{{At: 2.5, Capacity: 1}}, ReconfigCost{})
	r := sim.Run()
	if r.Unfinished != 1 || len(r.PerJob) != 1 {
		t.Fatalf("unfinished %d, finished %d; want 1 and 1", r.Unfinished, len(r.PerJob))
	}
	if math.Abs(r.Makespan-2) > 1e-9 {
		t.Fatalf("makespan %g, want 2 (a's finish)", r.Makespan)
	}
	// Executed work: a's 2 + b's 0.5s × 8 nodes = 6 over 8×2 node-seconds.
	if math.Abs(r.Utilization-0.375) > 1e-9 {
		t.Fatalf("utilization %g, want 0.375 (stranded work must not count)", r.Utilization)
	}
}

// TestNoticeSurvivesInterveningEvents: a reclaim notice must keep the
// doomed nodes off the scheduler's pool even when other capacity events
// (here a drop and a restore) land inside the notice window.
func TestNoticeSurvivesInterveningEvents(t *testing.T) {
	job := singleJob(1600, 1, 8)
	sim := avSim(t, 8, sched.Equipartition{}, []*Job{job},
		[]availability.Change{
			{At: 100, Capacity: 6},
			{At: 110, Capacity: 8},
			{At: 120, Capacity: 2, NoticeS: 30},
		},
		ReconfigCost{LostWorkS: 5})
	r := sim.Run()
	if r.LostWorkS != 0 {
		t.Fatalf("lost work %g on a noticed drop", r.LostWorkS)
	}
	// Announced at t=90: the job drains to 2 nodes there and stays ≤ 2
	// through the window (720 done by 90, 880 left at rate 2 → 530). If
	// an intervening event re-raised the pool, the run would finish
	// earlier on un-drained doomed nodes.
	if math.Abs(r.Makespan-530) > 1e-9 {
		t.Fatalf("makespan %g, want 530: notice window was voided", r.Makespan)
	}
}

// TestRedistributionChargesExtensionOnly: overlapping redistribution
// pauses coalesce, so the accounting must charge the extension a resize
// actually adds, not its nominal pause.
func TestRedistributionChargesExtensionOnly(t *testing.T) {
	a := singleJob(160, 1, 8)
	b := singleJob(20, 1, 4)
	b.ID, b.Arrival = 1, 6
	sim := avSim(t, 8, sched.Equipartition{}, []*Job{a, b},
		[]availability.Change{{At: 5, Capacity: 4}},
		ReconfigCost{RedistributionSPerNode: 0.5})
	r := sim.Run()
	// t=5: a 8→4 pauses until 7 (charge 2). t=6: a 4→2 wants until 7 —
	// fully inside the live pause, charge 0. t=16: a 2→4 pauses 1s
	// (charge 1). Nominal-sum accounting would report 4.
	if r.RedistributionS != 3 {
		t.Fatalf("redistribution %g, want 3 (extension-only charging)", r.RedistributionS)
	}
}

// TestLostWorkBoundedByCapacityDelta: only the nodes an abrupt event
// actually reclaims are charged, even when the forced reallocation
// shrinks a job by more (its other nodes migrate, they aren't lost).
func TestLostWorkBoundedByCapacityDelta(t *testing.T) {
	a := singleJob(800, 1, 8)
	b := singleJob(400, 1, 4)
	b.ID, b.Arrival = 1, 1
	// Rigid on 12 nodes: a holds 8, b holds 4. Abrupt drop to 11 evicts b
	// entirely (shrink 4) but only 1 node left the pool.
	sim := avSim(t, 12, &sched.Rigid{}, []*Job{a, b},
		[]availability.Change{{At: 5, Capacity: 11}}, ReconfigCost{LostWorkS: 3})
	r := sim.Run()
	if r.LostWorkS != 3 { // 1 reclaimed node × 3, NOT 4 × 3
		t.Fatalf("lost work %g, want 3 (bounded by the 1-node capacity delta)", r.LostWorkS)
	}
}

// TestIdleCapacityTimelineSuspends: capacity events beyond the workload
// are cancelled instead of churning the event loop for the rest of the
// availability horizon.
func TestIdleCapacityTimelineSuspends(t *testing.T) {
	job := singleJob(80, 1, 8) // finishes at 10
	sim := avSim(t, 8, sched.Equipartition{}, []*Job{job},
		[]availability.Change{{At: 500, Capacity: 4}, {At: 600, Capacity: 8}}, ReconfigCost{})
	r := sim.Run()
	if r.CapacityEvents != 0 {
		t.Fatalf("%d capacity events fired after the workload ended", r.CapacityEvents)
	}
	if fired := sim.q.Fired(); fired > 4 {
		t.Fatalf("%d events fired for a 1-job run: suspension did not kick in", fired)
	}
}

// TestInjectAfterSuspensionCatchesUp: a job injected after the timeline
// suspended must observe the capacity the elapsed changes left behind.
func TestInjectAfterSuspensionCatchesUp(t *testing.T) {
	run := func(arrival, want float64) {
		t.Helper()
		a := singleJob(80, 1, 8) // finishes at 10; timeline suspends
		sim := avSim(t, 8, sched.Equipartition{}, []*Job{a},
			[]availability.Change{{At: 500, Capacity: 4}, {At: 600, Capacity: 8}}, ReconfigCost{})
		for sim.ProcessNextEvent() {
		}
		b := singleJob(40, 1, 8)
		b.ID, b.Arrival = 1, arrival
		if err := sim.Inject(b); err != nil {
			t.Fatal(err)
		}
		for sim.ProcessNextEvent() {
		}
		r := sim.Result()
		if len(r.PerJob) != 2 {
			t.Fatalf("arrival %g: finished %d jobs, want 2", arrival, len(r.PerJob))
		}
		if got := r.PerJob[1].Finish; math.Abs(got-want) > 1e-9 {
			t.Fatalf("arrival %g: job finished at %g, want %g", arrival, got, want)
		}
	}
	// Injected at 550: capacity 4 (the 500-change elapsed while idle) →
	// 40 work at rate 4 finishes at 560. At 650: capacity back to 8 → 655.
	run(550, 560)
	run(650, 655)
}

// TestInjectExactTieMatchesClosedRun: an arrival injected at exactly a
// job's completion instant must reproduce the closed run bit-for-bit,
// including reallocation counts and reconfiguration charges (the arrival
// tier guarantees the same event order in both drives).
func TestInjectExactTieMatchesClosedRun(t *testing.T) {
	mkJobs := func() []*Job {
		a := singleJob(40, 1, 8) // completes at exactly t=5 on 8 nodes
		b := singleJob(40, 1, 8)
		b.ID, b.Arrival = 1, 5 // collides with a's completion
		return []*Job{a, b}
	}
	cost := ReconfigCost{RedistributionSPerNode: 0.5}

	cs, err := NewSim(8, sched.Equipartition{}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.SetReconfigCost(cost); err != nil {
		t.Fatal(err)
	}
	want := cs.Run()

	os, err := NewSim(8, sched.Equipartition{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.SetReconfigCost(cost); err != nil {
		t.Fatal(err)
	}
	jobs := mkJobs()
	i := 0
	for {
		et, evOK := os.PeekNextEventTime()
		if i < len(jobs) {
			at := eventq.Time(eventq.DurationOf(jobs[i].Arrival))
			if !evOK || at <= et {
				if err := os.Inject(jobs[i]); err != nil {
					t.Fatal(err)
				}
				i++
				continue
			}
		}
		if !evOK {
			break
		}
		os.ProcessNextEvent()
	}
	got := os.Result()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("open run diverges from closed at an exact tie:\n%+v\nvs\n%+v", got, want)
	}
	if got.Reallocations != want.Reallocations {
		t.Fatalf("reallocations %d vs %d", got.Reallocations, want.Reallocations)
	}
}

// TestGeneratedTimelineRuns: an availability.Spec-generated stochastic
// timeline drives a full workload deterministically end to end.
func TestGeneratedTimelineRuns(t *testing.T) {
	run := func() Result {
		spec := availability.Spec{Process: "failures", MTTFS: 120, MTTRS: 40, HorizonS: 2000}
		ch, err := spec.Generate(12, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		sim := avSim(t, 12, &sched.EfficiencyGreedy{}, PoissonWorkload(10, 12, 8, 5), ch,
			ReconfigCost{RedistributionSPerNode: 0.2, LostWorkS: 1})
		return sim.Run()
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.MeanResponse != b.MeanResponse ||
		a.LostWorkS != b.LostWorkS || a.Reallocations != b.Reallocations {
		t.Fatalf("stochastic availability broke determinism:\n%+v\nvs\n%+v", a, b)
	}
	if a.CapacityEvents == 0 {
		t.Fatal("no capacity events applied")
	}
	if len(a.PerJob) != 10 {
		t.Fatalf("finished %d of 10 jobs", len(a.PerJob))
	}
}
