package cluster

import (
	"testing"

	"dpsim/internal/sched"
)

// The golden values below were produced by the simulator BEFORE the
// availability subsystem existed (PR 1 state), printed with %.17g so every
// float64 bit is pinned. A Sim with no capacity changes and a zero
// ReconfigCost must reproduce them exactly: the new subsystem must be
// invisible when unused — and the extraction of the policies into
// internal/sched (PR 3) must be bit-invisible too, which is why the
// schedulers are resolved through the registry here.
var goldenRuns = []struct {
	scheduler                   string
	makespan, meanResp, maxResp float64
	utilization, meanEff        float64
	finishes                    []float64
}{
	{"rigid-fcfs", 188.79864889800001, 50.302701839178511, 128.68778925072078, 0.47411728074094051, 0.6547992560099184, []float64{5.1582971710000001, 5.8037251679999997, 6.8064023679999996, 22.138590053000001, 68.875706206000004, 29.977500760000002, 37.717998141999999, 123.180014402, 74.885165516000001, 177.07006413600001, 188.79864889800001, 138.16172400400001, 181.95735566600001, 184.362860563}},
	{"moldable", 219.48881460699999, 51.466400222035652, 139.01620978975984, 0.40782352478124217, 0.66724798174837296, []float64{5.3471376880000001, 5.9925656849999998, 6.9952428849999997, 22.138590053000001, 68.875706206000004, 29.977500760000002, 37.717998141999999, 123.180014402, 74.885165516000001, 115.598558861, 183.49974620099999, 178.87511734899999, 188.61367205799999, 219.48881460699999}},
	{"equipartition", 184.362860563, 31.546729586321366, 103.89025574575983, 0.48552458857349573, 0.77129574401071321, []float64{5.6423418280000002, 1.9647843110000001, 3.0503002870000002, 22.138590053000001, 76.452668633000002, 29.977500760000002, 37.640857163, 123.180014402, 61.979224346000002, 128.25552246199999, 70.091091926999994, 147.831820884, 89.742863893999996, 184.362860563}},
	{"efficiency-greedy", 184.362860563, 30.99599202624994, 103.89025574575983, 0.48552458857349573, 0.76235806068711121, []float64{5.4970332050000001, 2.0030721470000001, 3.0507770399999998, 22.138590053000001, 77.760782934999995, 29.978454265, 37.640857163, 123.31800429, 61.779370450999998, 128.04143105700001, 69.634945509999994, 139.75948730900001, 89.634449684000003, 184.362860563}},

	// The four policies below were introduced together with the sched
	// extraction (PR 3); their goldens pin the implementations at
	// introduction so any later behavioral drift is a deliberate,
	// reviewed change.
	{"easy-backfill", 252.07520738599999, 56.299134994749934, 178.22005725024479, 0.35510315731294234, 0.65479925600991962, []float64{5.1582971710000001, 5.8037251679999997, 6.8064023679999996, 22.138590053000001, 68.875706206000004, 29.977500760000002, 37.717998141999999, 123.180014402, 74.885165516000001, 162.08835453399999, 188.79864889800001, 252.07520738599999, 166.97564606399999, 184.362860563}},
	{"sjf-moldable", 224.60274046399999, 47.712156667107074, 144.13013564675981, 0.39853788888845149, 0.66724798174837308, []float64{5.3471376880000001, 5.9925656849999998, 6.9952428849999997, 22.138590053000001, 68.875706206000004, 29.977500760000002, 37.717998141999999, 123.180014402, 74.885165516000001, 115.598558861, 188.61367205799999, 183.98904320599999, 120.712484718, 224.60274046399999}},
	{"fair-share", 184.362860563, 31.011178189392798, 103.89025574575983, 0.48552458857349573, 0.76330227648494242, []float64{5.5147324040000001, 1.9647843110000001, 3.0503002870000002, 22.138590053000001, 75.714543567000007, 29.977500760000002, 37.640857163, 123.180014402, 61.979224346000002, 121.971897068, 70.091091926999994, 147.48346121099999, 89.742863893999996, 184.362860563}},
	{"malleable-hysteresis", 184.362860563, 35.660842745892793, 103.89025574575983, 0.48552458857349573, 0.80836857757749481, []float64{6.5626010389999996, 1.9647843110000001, 3.0503002870000002, 22.138590053000001, 80.504837269999996, 29.977500760000002, 37.640857163, 137.89908384, 61.979224346000002, 148.27256914899999, 73.044471247000004, 161.76086678199999, 90.749478937000006, 184.362860563}},
}

// TestGoldenBackwardCompat: zero availability events and zero
// reconfiguration cost must produce byte-identical results to the
// pre-availability simulator.
func TestGoldenBackwardCompat(t *testing.T) {
	for _, want := range goldenRuns {
		policy, ok := sched.ByName(want.scheduler)
		if !ok {
			t.Fatalf("golden scheduler %s not registered", want.scheduler)
		}
		wl := PoissonWorkload(14, 12, 6, 3)
		sim, err := NewSim(12, policy, wl)
		if err != nil {
			t.Fatal(err)
		}
		// Explicit zero-valued configuration must be as invisible as none.
		if err := sim.SetReconfigCost(ReconfigCost{}); err != nil {
			t.Fatal(err)
		}
		if err := sim.SetCapacityChanges(nil); err != nil {
			t.Fatal(err)
		}
		r := sim.Run()
		if r.Makespan != want.makespan {
			t.Errorf("%s: makespan %.17g, golden %.17g", want.scheduler, r.Makespan, want.makespan)
		}
		if r.MeanResponse != want.meanResp {
			t.Errorf("%s: mean response %.17g, golden %.17g", want.scheduler, r.MeanResponse, want.meanResp)
		}
		if r.MaxResponse != want.maxResp {
			t.Errorf("%s: max response %.17g, golden %.17g", want.scheduler, r.MaxResponse, want.maxResp)
		}
		if r.Utilization != want.utilization {
			t.Errorf("%s: utilization %.17g, golden %.17g", want.scheduler, r.Utilization, want.utilization)
		}
		if r.MeanAllocEfficiency != want.meanEff {
			t.Errorf("%s: mean efficiency %.17g, golden %.17g", want.scheduler, r.MeanAllocEfficiency, want.meanEff)
		}
		if len(r.PerJob) != len(want.finishes) {
			t.Fatalf("%s: %d finished jobs, golden %d", want.scheduler, len(r.PerJob), len(want.finishes))
		}
		for j, out := range r.PerJob {
			if out.Finish != want.finishes[j] {
				t.Errorf("%s: job %d finish %.17g, golden %.17g", want.scheduler, j, out.Finish, want.finishes[j])
			}
		}
		// The new metrics must collapse to their fixed-pool identities.
		if r.CapacityEvents != 0 || r.LostWorkS != 0 || r.RedistributionS != 0 {
			t.Errorf("%s: spurious availability accounting: %+v", want.scheduler, r)
		}
		if r.AvailWeightedUtilization != r.Utilization {
			t.Errorf("%s: availability-weighted utilization %.17g != utilization %.17g with a fixed pool",
				want.scheduler, r.AvailWeightedUtilization, r.Utilization)
		}
	}
}
