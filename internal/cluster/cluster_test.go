package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"dpsim/internal/lu"
	"dpsim/internal/sched"
)

func TestPhaseEfficiency(t *testing.T) {
	ph := Phase{Work: 10, Comm: 0.1}
	if ph.Efficiency(1) != 1 {
		t.Fatalf("eff(1) = %v", ph.Efficiency(1))
	}
	if e := ph.Efficiency(2); math.Abs(e-1/1.1) > 1e-12 {
		t.Fatalf("eff(2) = %v", e)
	}
	if ph.Efficiency(0) != 0 {
		t.Fatal("eff(0) != 0")
	}
	// Rate grows sublinearly but monotonically.
	prev := 0.0
	for p := 1; p <= 16; p++ {
		r := ph.Rate(p)
		if r <= prev {
			t.Fatalf("rate not increasing at p=%d", p)
		}
		prev = r
	}
}

func TestLUProfileShape(t *testing.T) {
	phases := LUProfile(2592, 324, lu.DefaultCostModel())
	if len(phases) != 8 {
		t.Fatalf("phases = %d", len(phases))
	}
	for k := 1; k < len(phases); k++ {
		if phases[k].Work >= phases[k-1].Work {
			t.Fatalf("work not decreasing at phase %d", k)
		}
		if phases[k].Comm < phases[k-1].Comm {
			t.Fatalf("comm factor not growing at phase %d", k)
		}
	}
}

func singleJob(work float64, phases, maxNodes int) *Job {
	return &Job{ID: 0, Phases: SyntheticProfile(phases, work, 0), MaxNodes: maxNodes}
}

func TestSingleJobPerfectSpeedup(t *testing.T) {
	job := singleJob(40, 4, 4)
	sim, err := NewSim(4, sched.Equipartition{}, []*Job{job})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	// 40s serial / 4 perfectly parallel nodes = 10s.
	if math.Abs(res.Makespan-10) > 1e-6 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
	if math.Abs(res.MeanResponse-10) > 1e-6 {
		t.Fatalf("response = %v", res.MeanResponse)
	}
	if math.Abs(res.Utilization-1) > 1e-6 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
}

func TestRigidQueuesJobs(t *testing.T) {
	// Two jobs each requesting all 4 nodes: the second waits.
	j1 := singleJob(40, 2, 4)
	j2 := singleJob(40, 2, 4)
	j2.ID = 1
	sim, err := NewSim(4, &sched.Rigid{}, []*Job{j1, j2})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if math.Abs(res.Makespan-20) > 1e-6 {
		t.Fatalf("rigid makespan = %v, want 20", res.Makespan)
	}
	if math.Abs(res.PerJob[1].Finish-20) > 1e-6 {
		t.Fatalf("second job finished at %v", res.PerJob[1].Finish)
	}
}

func TestEquipartitionSharesNodes(t *testing.T) {
	j1 := singleJob(20, 2, 4)
	j2 := singleJob(20, 2, 4)
	j2.ID = 1
	sim, err := NewSim(4, sched.Equipartition{}, []*Job{j1, j2})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	// Both get 2 nodes: each needs 10s, concurrently → makespan 10.
	if math.Abs(res.Makespan-10) > 1e-6 {
		t.Fatalf("equipartition makespan = %v, want 10", res.Makespan)
	}
}

func TestEfficiencyGreedyPrefersEfficientJob(t *testing.T) {
	// Job A parallelizes perfectly; job B saturates quickly.
	a := &Job{ID: 0, Phases: []Phase{{Work: 30, Comm: 0}}, MaxNodes: 8}
	b := &Job{ID: 1, Phases: []Phase{{Work: 30, Comm: 0.8}}, MaxNodes: 8}
	sim, err := NewSim(8, &sched.EfficiencyGreedy{}, []*Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	eq, err := NewSim(8, sched.Equipartition{}, []*Job{{ID: 0, Phases: []Phase{{Work: 30, Comm: 0}}, MaxNodes: 8}, {ID: 1, Phases: []Phase{{Work: 30, Comm: 0.8}}, MaxNodes: 8}})
	if err != nil {
		t.Fatal(err)
	}
	eqRes := eq.Run()
	if res.MeanResponse >= eqRes.MeanResponse {
		t.Fatalf("efficiency-greedy (%v) not better than equipartition (%v)",
			res.MeanResponse, eqRes.MeanResponse)
	}
}

func TestDynamicReallocationOnDeparture(t *testing.T) {
	// A short job departs; the survivor should absorb its nodes and
	// finish sooner than with a static split.
	long := singleJob(40, 4, 4)
	short := singleJob(8, 2, 4)
	short.ID = 1
	sim, err := NewSim(4, sched.Equipartition{}, []*Job{long, short})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	// Static halves: long would take 20s. With reallocation after the
	// short job's 4s, it must beat that.
	if res.PerJob[0].Finish >= 20 {
		t.Fatalf("malleable long job finished at %v, want < 20", res.PerJob[0].Finish)
	}
}

func TestCompareOrdersSchedulers(t *testing.T) {
	jobs := PoissonWorkload(12, 16, 20, 99)
	results, err := Compare(16, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sched.Names()) {
		t.Fatalf("results = %d, want %d schedulers", len(results), len(sched.Names()))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Scheduler] = r
		if len(r.PerJob) != 12 {
			t.Fatalf("%s finished %d of 12 jobs", r.Scheduler, len(r.PerJob))
		}
	}
	rigid := byName["rigid-fcfs"]
	greedy := byName["efficiency-greedy"]
	// The efficiency-aware malleable scheduler must beat rigid FCFS on
	// mean response time (the paper's motivation: dynamic allocation
	// increases the cluster's service rate).
	if greedy.MeanResponse >= rigid.MeanResponse {
		t.Fatalf("greedy response %v >= rigid %v", greedy.MeanResponse, rigid.MeanResponse)
	}
	if greedy.MeanAllocEfficiency <= 0 || greedy.MeanAllocEfficiency > 1 {
		t.Fatalf("alloc efficiency = %v", greedy.MeanAllocEfficiency)
	}
}

func TestAllJobsFinishProperty(t *testing.T) {
	prop := func(seed uint64, jobsRaw, nodesRaw uint8) bool {
		jobs := int(jobsRaw%10) + 1
		nodes := int(nodesRaw%12) + 2
		wl := PoissonWorkload(jobs, nodes, 5, seed)
		results, err := Compare(nodes, wl)
		if err != nil {
			return false
		}
		for _, r := range results {
			if len(r.PerJob) != jobs {
				return false
			}
			for _, j := range r.PerJob {
				if j.Finish < j.Arrival {
					return false
				}
			}
			if r.Utilization <= 0 || r.Utilization > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(0, &sched.Rigid{}, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewSim(4, nil, nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewSim(4, &sched.Rigid{}, []*Job{{ID: 0}}); err == nil {
		t.Fatal("phaseless job accepted")
	}
}

func BenchmarkClusterServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wl := PoissonWorkload(40, 32, 10, uint64(i))
		if _, err := Compare(32, wl); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMoldableHoldsAllocation(t *testing.T) {
	job := &Job{ID: 0, Phases: SyntheticProfile(3, 30, 0.2), MaxNodes: 8}
	sim, err := NewSim(8, &sched.Moldable{}, []*Job{job})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if len(res.PerJob) != 1 || res.PerJob[0].Finish <= 0 {
		t.Fatalf("moldable run: %+v", res)
	}
}

func TestCompareIncludesMoldable(t *testing.T) {
	wl := PoissonWorkload(8, 12, 15, 5)
	results, err := Compare(12, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sched.Names()) {
		t.Fatalf("results = %d, want %d schedulers", len(results), len(sched.Names()))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Scheduler] = true
	}
	if !names["moldable"] {
		t.Fatalf("moldable missing: %v", names)
	}
}

func TestFitProfileRoundTrip(t *testing.T) {
	// A profile fitted from iteration stats must reproduce the observed
	// efficiency at the observed allocation.
	iters := []IterLike{
		{SerialSeconds: 60, Nodes: 8, Efficiency: 0.40},
		{SerialSeconds: 30, Nodes: 8, Efficiency: 0.30},
		{SerialSeconds: 10, Nodes: 8, Efficiency: 0.15},
	}
	phases := FitProfile(iters)
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	for i, ph := range phases {
		if got := ph.Efficiency(iters[i].Nodes); math.Abs(got-iters[i].Efficiency) > 1e-9 {
			t.Fatalf("phase %d: fitted eff(%d) = %v, want %v", i, iters[i].Nodes, got, iters[i].Efficiency)
		}
		if ph.Work != iters[i].SerialSeconds {
			t.Fatalf("phase %d work %v", i, ph.Work)
		}
	}
	// Efficiency at 1 node is always 1 under the fitted model.
	if phases[0].Efficiency(1) != 1 {
		t.Fatal("eff(1) != 1")
	}
}

func TestFitProfileDegenerate(t *testing.T) {
	phases := FitProfile([]IterLike{{SerialSeconds: 5, Nodes: 1, Efficiency: 1}})
	if phases[0].Comm != 0 {
		t.Fatalf("single-node fit comm = %v, want 0", phases[0].Comm)
	}
}
