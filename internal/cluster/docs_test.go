package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPerformanceDoc: docs/performance.md must stay in sync with the
// hot-path machinery it documents — the coalescing contract tests, the
// benchmark surface, the committed benchjson trajectory and the CI
// gates. The doc fails CI when any of these drift.
func TestPerformanceDoc(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "performance.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)

	// The contract is only as good as the tests pinning it: the doc must
	// name them (the test names are coupled to this package's test files,
	// the benchmark names to bench_test.go — renaming either without
	// updating the doc is exactly the drift this catches).
	for _, needle := range []string{
		// coalescing contract pins
		"TestCoalescingGolden",
		"TestSchedulerInvokePerDirtyInstant",
		"TestReallocationsCoalescedSemantics",
		"TestProcessNextEventZeroAllocBurstSteadyState",
		// benchmark surface
		"BenchmarkClusterStep/{fixed,volatile,burst}",
		"BenchmarkClusterStepScale/active-{100,1k,10k}",
		"BenchmarkSchedulerInvokeScale/active-{100,1k,10k}",
		"BenchmarkSchedulerInvoke/<policy>",
		"BenchmarkSweepGrid",
		"events/sec",
		// eventq hot-path APIs
		"RescheduleAfter",
		"ProcessNextEvent",
		// profiling + CI gating workflow
		"-cpuprofile",
		"-time-tolerance",
		"benchjson -trend",
		"benchjson -baseline",
		"SchedulerInvoke",
		"Result.Reallocations",
	} {
		if !strings.Contains(doc, needle) {
			t.Errorf("docs/performance.md does not mention %q", needle)
		}
	}

	// Every committed benchmark baseline must appear in the trajectory
	// section — a future BENCH_PRn.json that is committed but not
	// documented (or gated) is drift.
	baselines, err := filepath.Glob(filepath.Join("..", "..", "BENCH_PR*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(baselines) < 4 {
		t.Fatalf("expected at least 4 committed baselines, found %v", baselines)
	}
	for _, path := range baselines {
		name := filepath.Base(path)
		if !strings.Contains(doc, name) {
			t.Errorf("committed baseline %s is not mentioned in docs/performance.md", name)
		}
	}
}
