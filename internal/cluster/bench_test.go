package cluster

import (
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// BenchmarkClusterStep measures the event-loop hot path: one op is a full
// 60-job open-workload run stepped event by event, on a fixed pool and on
// a volatile one with reconfiguration costs, so regressions in either the
// classic path or the availability machinery show up in the trajectory.
func BenchmarkClusterStep(b *testing.B) {
	spec := availability.Spec{Process: "failures", MTTFS: 300, MTTRS: 80, HorizonS: 3000}
	changes, err := spec.Generate(16, rng.New(9))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, volatile bool) {
		events := 0
		for i := 0; i < b.N; i++ {
			sim, err := NewSim(16, &sched.EfficiencyGreedy{}, PoissonWorkload(60, 16, 4, 7))
			if err != nil {
				b.Fatal(err)
			}
			if volatile {
				if err := sim.SetCapacityChanges(changes); err != nil {
					b.Fatal(err)
				}
				if err := sim.SetReconfigCost(ReconfigCost{RedistributionSPerNode: 0.2, LostWorkS: 1}); err != nil {
					b.Fatal(err)
				}
			}
			for sim.ProcessNextEvent() {
				events++
			}
		}
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
	b.Run("fixed", func(b *testing.B) { run(b, false) })
	b.Run("volatile", func(b *testing.B) { run(b, true) })
}
