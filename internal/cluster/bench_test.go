package cluster

import (
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// batchBenchWorkload is the equal-instant burst shape (batch trace
// replay, bursty-MMPP): waves of identical jobs all arriving at exactly
// the same instant. Identical jobs under equipartition stay in lockstep,
// so every phase boundary is a simultaneous-completion burst too — the
// workload the per-instant scheduler coalescing exists for.
func batchBenchWorkload(waves, perWave int, intervalS float64) []*Job {
	out := make([]*Job, 0, waves*perWave)
	for w := 0; w < waves; w++ {
		for i := 0; i < perWave; i++ {
			out = append(out, &Job{
				ID:       w*perWave + i,
				Arrival:  float64(w) * intervalS,
				Phases:   SyntheticProfile(6, 120, 0.05),
				MaxNodes: 4,
			})
		}
	}
	return out
}

// BenchmarkClusterStep measures the event-loop hot path: one op is a full
// open-workload run stepped event by event — on a fixed pool, on a
// volatile one with reconfiguration costs, and on an equal-instant burst
// workload — so regressions in the classic path, the availability
// machinery and the coalescing path all show up in the trajectory.
func BenchmarkClusterStep(b *testing.B) {
	spec := availability.Spec{Process: "failures", MTTFS: 300, MTTRS: 80, HorizonS: 3000}
	changes, err := spec.Generate(16, rng.New(9))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, volatile bool) {
		events := 0
		for i := 0; i < b.N; i++ {
			sim, err := NewSim(16, &sched.EfficiencyGreedy{}, PoissonWorkload(60, 16, 4, 7))
			if err != nil {
				b.Fatal(err)
			}
			if volatile {
				if err := sim.SetCapacityChanges(changes); err != nil {
					b.Fatal(err)
				}
				if err := sim.SetReconfigCost(ReconfigCost{RedistributionSPerNode: 0.2, LostWorkS: 1}); err != nil {
					b.Fatal(err)
				}
			}
			for sim.ProcessNextEvent() {
				events++
			}
		}
		reportEventRates(b, events)
	}
	b.Run("fixed", func(b *testing.B) { run(b, false) })
	b.Run("volatile", func(b *testing.B) { run(b, true) })
	b.Run("burst", func(b *testing.B) {
		events := 0
		for i := 0; i < b.N; i++ {
			sim, err := NewSim(16, sched.Equipartition{}, batchBenchWorkload(8, 32, 50))
			if err != nil {
				b.Fatal(err)
			}
			for sim.ProcessNextEvent() {
				events++
			}
		}
		reportEventRates(b, events)
	})
}

// reportEventRates attaches the throughput metrics of a stepped
// benchmark: events per op (workload size sanity) and events per second
// (the number the million-cell sweep target is stated in).
func reportEventRates(b *testing.B, events int) {
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// scaleSim builds a warmed-up simulation holding n active jobs — the
// equal-instant arrival batch at t=0 is coalesced into one admission, so
// even the 10k warm-up is cheap — with enough phases left to sustain a
// long measurement.
func scaleSim(tb testing.TB, policy Scheduler, n int) *Sim {
	tb.Helper()
	jobs := make([]*Job, n)
	for i := range jobs {
		jobs[i] = &Job{
			ID:       i,
			Arrival:  0,
			Phases:   SyntheticProfile(400, float64(100+7*i), 0.02+0.01*float64(i%5)),
			MaxNodes: 1 + i%32,
		}
	}
	sim, err := NewSim(32, policy, jobs)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n+32; i++ {
		if !sim.ProcessNextEvent() {
			tb.Fatal("workload drained during warm-up")
		}
	}
	return sim
}

// benchScales are the active-set sizes of the scaling benchmarks: the
// per-event cost is O(active), so superlinear growth across these rungs
// exposes accidental O(active²) work that the 24- and 60-job fixtures
// would hide.
var benchScales = []struct {
	name string
	n    int
}{{"active-100", 100}, {"active-1k", 1000}, {"active-10k", 10000}}

// BenchmarkClusterStepScale measures the per-event cost of the stepped
// drive at growing active-set sizes; one op is one steady-state event.
func BenchmarkClusterStepScale(b *testing.B) {
	for _, sc := range benchScales {
		b.Run(sc.name, func(b *testing.B) {
			sim := scaleSim(b, &sched.EfficiencyGreedy{}, sc.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sim.ProcessNextEvent() {
					b.StopTimer()
					sim = scaleSim(b, &sched.EfficiencyGreedy{}, sc.n)
					b.StartTimer()
				}
			}
			reportEventRates(b, b.N)
		})
	}
}

// BenchmarkSchedulerInvokeScale is the scaling companion of
// BenchmarkSchedulerInvoke: the same steady-state invocation cost, but
// over 100/1k/10k active jobs under equipartition — the O(active)
// settle/snapshot/apply loops dominate here, not the policy.
func BenchmarkSchedulerInvokeScale(b *testing.B) {
	for _, sc := range benchScales {
		b.Run(sc.name, func(b *testing.B) {
			sim := scaleSim(b, sched.Equipartition{}, sc.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sim.ProcessNextEvent() {
					b.StopTimer()
					sim = scaleSim(b, sched.Equipartition{}, sc.n)
					b.StartTimer()
				}
			}
			reportEventRates(b, b.N)
		})
	}
}
