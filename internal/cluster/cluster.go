// Package cluster implements the paper's stated future work (§9): the
// simulation of "a cluster server running concurrently multiple, possibly
// different applications whose allocations of compute nodes vary
// dynamically over time".
//
// Applications are modeled by their phase profiles — per-phase serial work
// and a communication factor that determines dynamic efficiency as a
// function of the allocation — exactly the information the DPS simulator
// produces for a real application (paper Fig. 11). Phase time on p nodes
// is work/(p·eff(p)), with eff(p) = 1/(1 + comm·(p-1)).
//
// Scheduling policies live in internal/sched: the simulator invokes a
// sched.Scheduler at every arrival, phase boundary, departure and
// capacity change, handing it a snapshot of the usable pool and the
// active jobs and applying the returned per-job allocations. Any policy
// registered there (rigid FCFS, EASY backfilling, equipartition,
// fair-share, efficiency-greedy, hysteresis-throttled malleability, ...)
// plugs into this simulator unchanged.
package cluster

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"dpsim/internal/appmodel"
	"dpsim/internal/availability"
	"dpsim/internal/eventq"
	"dpsim/internal/lu"
	"dpsim/internal/obs"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// Phase, Job and Scheduler are defined by the scheduling subsystem; the
// aliases keep the cluster API self-contained for callers that never
// touch a policy directly.
type (
	// Phase is one stage of an application with roughly constant
	// parallel behavior (an LU iteration, a solver sweep, ...).
	Phase = sched.Phase
	// Job is one application submitted to the cluster.
	Job = sched.Job
	// Scheduler decides allocations; see sched.Scheduler for the
	// contract and sched.Register for adding policies.
	Scheduler = sched.Scheduler
)

// LUProfile derives a job profile from the LU application's per-iteration
// serial work (paper Fig. 11's baseline), with a communication factor that
// grows as iterations shrink — matching the measured efficiency decay.
// (Allocation bounds are a property of the Job, not the profile: set
// Job.MaxNodes on the job carrying these phases.)
func LUProfile(n, r int, costs lu.CostModel) []Phase {
	blocks := n / r
	phases := make([]Phase, blocks)
	for k := 0; k < blocks; k++ {
		work := lu.SerialWork(costs, n, r, k).Seconds()
		rem := float64(blocks - k)
		// Later iterations have less work per communication: comm factor
		// rises inversely with the remaining block count.
		comm := 0.08 + 0.25/math.Max(rem, 1)
		phases[k] = Phase{Work: work, Comm: comm}
	}
	return phases
}

// SyntheticProfile builds a uniform job for workload generators.
func SyntheticProfile(phases int, totalWork, comm float64) []Phase {
	out := make([]Phase, phases)
	for i := range out {
		out[i] = Phase{Work: totalWork / float64(phases), Comm: comm}
	}
	return out
}

// jobState is the simulator's bookkeeping for one active (running or
// waiting) job; the scheduler sees read-only sched.JobState snapshots of
// it, never the live struct.
type jobState struct {
	Job       *Job
	PhaseIdx  int
	Remaining float64 // work-seconds left in the current phase
	Alloc     int
	started   float64
	finished  float64
	rate      float64
	last      eventq.Time
	// ev is the job's phase-completion event. Once fired or cancelled it
	// is recycled through eventq.ReuseAfter, so rescheduling the phase
	// completion at every scheduling event costs no allocation; phaseFn
	// is the matching callback, bound once at arrival for the same
	// reason.
	ev      *eventq.Event
	phaseFn func()
	// pausedUntil blocks progress while the job redistributes its data
	// after an allocation change (the reconfiguration-cost model).
	pausedUntil eventq.Time
	// firstStart is the instant the job first held nodes; -1 until then.
	firstStart float64
}

// Phase returns the job's current phase.
func (js *jobState) Phase() Phase { return js.Job.Phases[js.PhaseIdx] }

// --- the cluster simulation ---

// ReconfigCost prices dynamic reconfiguration under time-varying capacity
// (and scheduler-driven resizing in general). The zero value makes every
// reconfiguration free, reproducing the cost-free simulator exactly.
type ReconfigCost struct {
	// RedistributionSPerNode pauses a running job for this many seconds
	// per node of allocation delta before it resumes at the new rate —
	// the data-redistribution time of growing or shrinking a malleable
	// application. Charged whenever a job running on p > 0 nodes is
	// resized to a different q > 0.
	RedistributionSPerNode float64
	// LostWorkS is the work-seconds of in-phase progress a job loses per
	// node reclaimed from it by an abrupt (no-notice) capacity drop — the
	// rollback to the last consistent state. The charge is capped at the
	// progress made in the current phase (earlier phases stay committed),
	// and the total nodes charged per event at the number actually
	// reclaimed (in job-ID order): allocation that merely migrates to
	// another job during the drop's rebalance is a redistribution, not a
	// loss.
	LostWorkS float64
}

// Event tiers: at equal instants capacity changes precede arrivals, and
// arrivals precede phase completions — in both the closed (NewSim jobs)
// and the open (Inject) drive, which is what makes the two paths execute
// identical event sequences even at exact ties.
const (
	tierCapacity int8 = -2
	tierArrival  int8 = -1
)

// Result summarizes one simulated workload.
type Result struct {
	Scheduler    string
	Makespan     float64
	MeanResponse float64
	MaxResponse  float64
	// MeanWait is the mean time finished jobs spent between arrival and
	// first node allocation.
	MeanWait float64
	// Utilization is total useful serial work divided by nodes×makespan
	// (nodes = the full pool, counting unavailable capacity as waste).
	Utilization float64
	// AvailWeightedUtilization divides the same work by the integral of
	// the *available* capacity over [0, makespan]: utilization relative
	// to what the volatile pool actually offered. Equal to Utilization
	// when capacity never changes.
	AvailWeightedUtilization float64
	// MeanAllocEfficiency is the work-weighted dynamic efficiency.
	MeanAllocEfficiency float64
	// Unfinished counts jobs that arrived (or were scheduled) but did
	// not complete — e.g. stranded by a permanent capacity loss their
	// scheduler cannot work around.
	Unfinished int
	// Reallocations counts per-job allocation changes applied over the
	// run: admissions, resizes and preemptions. Changes are counted once
	// per coalesced scheduler invocation — the net delta across all
	// events of an instant — so a job admitted and resized within one
	// equal-instant burst counts once, not per event.
	Reallocations int
	// CapacityEvents counts the capacity changes applied to the pool.
	CapacityEvents int
	// LostWorkS totals the work-seconds rolled back by abrupt capacity
	// drops under the reconfiguration-cost model.
	LostWorkS float64
	// RedistributionS totals the per-job pause time charged for data
	// redistribution on allocation deltas.
	RedistributionS float64
	PerJob          []JobOutcome
}

// JobOutcome is one job's fate.
type JobOutcome struct {
	ID       int
	Arrival  float64
	Finish   float64
	Response float64
	// FirstStart is the instant the job first held nodes; Wait is
	// FirstStart-Arrival, the queueing delay before any progress.
	FirstStart float64
	Wait       float64
}

// Sim runs a workload on a malleable cluster under a scheduler.
//
// A Sim can be driven two ways: Run() executes the closed workload passed
// to NewSim to completion, while the step primitives — PeekNextEventTime,
// ProcessNextEvent and Inject — decompose the same event loop so an outer
// driver (an open arrival process, a co-simulation sharing the clock) can
// interleave job injections with event processing. Both paths execute the
// identical event sequence for the same inputs.
type Sim struct {
	nodes int
	sched Scheduler
	q     *eventq.Queue
	jobs  []*Job

	started bool
	// actives holds the active jobs as a slice kept sorted by job ID —
	// the scheduler-visible order — maintained incrementally on arrival
	// and departure so reallocate never rebuilds or re-sorts it; point
	// lookups binary-search it (findActive).
	actives  []*jobState
	finished []*jobState
	effNum   float64
	effDen   float64

	// Scratch buffers owned by the scheduler-invocation hot path and
	// reused across events: the value-typed snapshot arena handed to the
	// policy, the allocation out-buffer it fills, the pre-event
	// allocation snapshot, and the preemption victim list. After warm-up
	// a steady-state scheduling event allocates nothing.
	views    []sched.JobState
	allocBuf []int
	oldAlloc []int
	victims  []*jobState

	// Time-varying capacity (empty changes = the classic fixed pool).
	changes  []availability.Change
	cost     ReconfigCost
	capNow   int // capacity currently in effect
	schedCap int // capacity offered to the scheduler (≤ capNow during a notice window)
	// abruptNodes is the not-yet-charged node count of the abrupt drop
	// being applied: the lost-work budget of the current reallocation.
	abruptNodes int
	// pendingDrains holds the announced targets of notice windows still
	// open (keyed by change index), so an intervening capacity event
	// cannot silently void an outstanding reclaim notice.
	pendingDrains map[int]int
	capHist       []capStep
	// Idle suspension: once no job is active and no arrival is pending,
	// the remaining capacity events are cancelled (they can no longer
	// affect an outcome); Inject resumes the timeline with a catch-up.
	pendingArrivals int
	capEvs          []*eventq.Event
	capStopped      bool
	nextChange      int
	// lastJobEvent is the instant of the last arrival or phase completion:
	// the makespan of the workload, independent of capacity events that
	// may outlive the jobs.
	lastJobEvent eventq.Time

	// dirty marks that job or capacity events have fired at the current
	// instant without a scheduler invocation yet: ProcessNextEvent defers
	// the reallocation until the last same-instant event has been
	// processed, so a burst of k simultaneous events costs one coalesced
	// invocation instead of k (see docs/performance.md). The queue can
	// never drain while dirty — the flush runs inline before control
	// returns whenever the next pending event sits at a later instant.
	dirty bool

	reallocs  int
	capEvents int
	lostWork  float64
	redistS   float64

	// Observability (internal/obs). probe is invoked through nil checks
	// at every state transition, so the disabled path costs one
	// not-taken branch per hook site and allocates nothing — the
	// zero-allocation steady-state contract is asserted with probe nil
	// AND with the built-in recorder attached (bounded amortized).
	probe obs.Probe
	// sampleDT > 0 schedules fixed-interval sampler events at t = k·dt
	// on the capacity tier; they read gauges and mutate nothing, so
	// Results and goldens stay bit-identical with sampling on.
	sampleDT      eventq.Duration
	sampleK       int64
	sampleEv      *eventq.Event
	sampleFn      func()
	sampleStopped bool
}

// capStep is one applied capacity change, recorded for the
// availability-weighted utilization integral.
type capStep struct {
	at  eventq.Time
	cap int
}

// NewSim creates a simulation of the given cluster size.
func NewSim(nodes int, sched Scheduler, jobs []*Job) (*Sim, error) {
	if nodes <= 0 {
		return nil, errors.New("cluster: need nodes")
	}
	if sched == nil {
		return nil, errors.New("cluster: need a scheduler")
	}
	for _, j := range jobs {
		if len(j.Phases) == 0 {
			return nil, fmt.Errorf("cluster: job %d has no phases", j.ID)
		}
		if j.MaxNodes <= 0 {
			j.MaxNodes = nodes
		}
		if j.MaxNodes > nodes {
			j.MaxNodes = nodes
		}
	}
	return &Sim{
		nodes: nodes, sched: sched, q: eventq.New(), jobs: jobs,
		actives:  make([]*jobState, 0, len(jobs)),
		finished: make([]*jobState, 0, len(jobs)),
		capNow:   nodes, schedCap: nodes,
	}, nil
}

// SetReconfigCost installs the reconfiguration-cost model. It must be
// called before the first event is processed.
func (s *Sim) SetReconfigCost(c ReconfigCost) error {
	if s.started {
		return errors.New("cluster: SetReconfigCost after the simulation started")
	}
	if c.RedistributionSPerNode < 0 || c.LostWorkS < 0 {
		return errors.New("cluster: negative reconfiguration costs")
	}
	s.cost = c
	return nil
}

// SetCapacityChanges installs the pool's capacity timeline (for example
// from availability.Spec.Generate). Changes must be sorted by At with
// capacities in [0, nodes]; drops with NoticeS > 0 are announced that far
// in advance so the scheduler can drain the doomed nodes gracefully. It
// must be called before the first event is processed.
func (s *Sim) SetCapacityChanges(changes []availability.Change) error {
	if s.started {
		return errors.New("cluster: SetCapacityChanges after the simulation started")
	}
	prev := 0.0
	for i, c := range changes {
		if c.At < 0 || c.At < prev {
			return fmt.Errorf("cluster: capacity change %d at %g out of order", i, c.At)
		}
		prev = c.At
		if c.Capacity < 0 || c.Capacity > s.nodes {
			return fmt.Errorf("cluster: capacity change %d to %d outside [0, %d]", i, c.Capacity, s.nodes)
		}
		if c.NoticeS < 0 {
			return fmt.Errorf("cluster: capacity change %d has negative notice", i)
		}
	}
	s.changes = changes
	return nil
}

// SetProbe attaches an observability probe (see internal/obs): typed
// callbacks fire at every state transition — job arrive/first-start/
// phase-done/finish, scheduler invocation, capacity notice/change,
// preemption, reconfiguration charges. A nil probe (the default) makes
// every hook site a single not-taken branch; probes never receive
// mutable simulator state, so attaching one cannot change a Result. It
// must be called before the first event is processed.
func (s *Sim) SetProbe(p obs.Probe) error {
	if s.started {
		return errors.New("cluster: SetProbe after the simulation started")
	}
	s.probe = p
	return nil
}

// SetSampleInterval enables fixed-interval time-series sampling: every
// dt seconds of virtual time the attached probe's TimeSample hook
// receives the cluster's gauges (queue depth, running jobs, allocated
// vs. available nodes, instantaneous utilization). Samples ride the
// event queue on the capacity tier and stop when the workload drains
// (Inject resumes them on the same t = k·dt grid), so sampling never
// stretches a run or perturbs its outcome. It must be called before the
// first event is processed and has no effect without a probe.
func (s *Sim) SetSampleInterval(dtSeconds float64) error {
	if s.started {
		return errors.New("cluster: SetSampleInterval after the simulation started")
	}
	if dtSeconds <= 0 {
		return errors.New("cluster: sample interval must be > 0")
	}
	s.sampleDT = eventq.DurationOf(dtSeconds)
	return nil
}

// start schedules the arrivals of the jobs passed to NewSim, exactly
// once. It is invoked lazily by every driving entry point so that closed
// runs (Run) and stepped runs observe the same initial event sequence.
func (s *Sim) start() {
	if s.started {
		return
	}
	s.started = true
	s.pendingDrains = make(map[int]int)
	s.scheduleChanges(0)
	for _, j := range s.jobs {
		j := j
		s.pendingArrivals++
		s.q.AtTier(eventq.Time(eventq.DurationOf(j.Arrival)), tierArrival, func() { s.arrive(j) })
	}
	if s.probe != nil && s.sampleDT > 0 {
		// Bind the sampler callback once; every reschedule recycles the
		// event object, so steady-state sampling allocates nothing.
		s.sampleFn = s.fireSample
		s.sampleEv = s.q.AtTier(0, tierCapacity, s.sampleFn)
	}
}

// fireSample reads the cluster's gauges into the probe's TimeSample
// hook and reschedules itself on the t = k·dt grid while work remains.
// It mutates no simulation state, so runs with sampling enabled stay
// bit-identical to probe-free runs.
func (s *Sim) fireSample() {
	now := s.q.Now()
	var waiting, running, allocated int
	for _, js := range s.actives {
		if js.Alloc > 0 {
			running++
			allocated += js.Alloc
		} else {
			waiting++
		}
	}
	util := 0.0
	if s.capNow > 0 {
		util = float64(allocated) / float64(s.capNow)
	}
	s.probe.TimeSample(obs.Sample{
		T: now.Seconds(), Waiting: waiting, Running: running,
		Allocated: allocated, Available: s.capNow, Utilization: util,
	})
	if len(s.actives) == 0 && s.pendingArrivals == 0 {
		// Nothing left to observe: let the event loop drain. Inject
		// resumes the grid.
		s.sampleStopped = true
		return
	}
	s.sampleK++
	s.sampleEv = s.q.ReuseAtTier(s.sampleEv, eventq.Time(s.sampleK*int64(s.sampleDT)), tierCapacity, s.sampleFn)
}

// resumeSampling re-enters the t = k·dt sample grid at the first point
// not before now — instants that elapsed while the cluster was idle are
// skipped, keeping sample times deterministic for a given event history.
func (s *Sim) resumeSampling() {
	s.sampleStopped = false
	dt := int64(s.sampleDT)
	now := int64(s.q.Now())
	k := now / dt
	if k*dt < now {
		k++
	}
	if k <= s.sampleK {
		k = s.sampleK + 1
	}
	s.sampleK = k
	s.sampleEv = s.q.ReuseAtTier(s.sampleEv, eventq.Time(k*dt), tierCapacity, s.sampleFn)
}

// scheduleChanges queues the apply (and announce) events of
// s.changes[from:]. Notice windows opening before the current instant are
// clamped to it.
func (s *Sim) scheduleChanges(from int) {
	now := s.q.Now()
	prev := s.capNow
	for i := from; i < len(s.changes); i++ {
		c := s.changes[i]
		at := eventq.Time(eventq.DurationOf(c.At))
		graceful := c.Capacity < prev && c.NoticeS > 0
		if graceful {
			annAt := at - eventq.Time(eventq.DurationOf(c.NoticeS))
			if annAt < now {
				annAt = now
			}
			idx, target := i, c.Capacity
			s.capEvs = append(s.capEvs, s.q.AtTier(annAt, tierCapacity, func() { s.announceCapacity(idx, target) }))
		}
		idx, cap, g := i, c.Capacity, graceful
		s.capEvs = append(s.capEvs, s.q.AtTier(at, tierCapacity, func() { s.applyCapacity(idx, cap, g) }))
		prev = c.Capacity
	}
}

// maybeSuspendCapacity cancels the not-yet-applied capacity events once
// the workload is exhausted: with nothing to serve they cannot affect any
// outcome, and a long availability horizon (a day of failure events, say)
// would otherwise keep churning the event loop long after the last job.
func (s *Sim) maybeSuspendCapacity() {
	if s.capStopped || len(s.actives) > 0 || s.pendingArrivals > 0 {
		return
	}
	for _, e := range s.capEvs {
		s.q.Cancel(e)
	}
	s.capEvs = s.capEvs[:0]
	for k := range s.pendingDrains {
		delete(s.pendingDrains, k)
	}
	s.capStopped = true
}

// resumeCapacity fast-forwards a suspended timeline to the current
// instant — changes that elapsed while the cluster was idle are applied
// silently (there was nothing to reallocate) — and re-schedules the rest.
func (s *Sim) resumeCapacity() {
	s.capStopped = false
	now := s.q.Now()
	for s.nextChange < len(s.changes) {
		c := s.changes[s.nextChange]
		at := eventq.Time(eventq.DurationOf(c.At))
		if at > now {
			break
		}
		s.capEvents++
		s.capHist = append(s.capHist, capStep{at: at, cap: c.Capacity})
		s.capNow = c.Capacity
		s.nextChange++
	}
	s.schedCap = s.capNow
	s.scheduleChanges(s.nextChange)
}

// announceCapacity opens a reclaim-notice window: the scheduler's usable
// capacity shrinks to the announced target ahead of the actual drop, so
// jobs migrate off the doomed nodes and lose no work when it lands.
func (s *Sim) announceCapacity(idx, target int) {
	if s.probe != nil {
		s.probe.CapacityNotice(s.q.Now().Seconds(), target)
	}
	s.pendingDrains[idx] = target
	if next := s.effectiveSchedCap(); next < s.schedCap {
		s.schedCap = next
		s.markDirty()
	}
}

// applyCapacity puts a capacity change into effect. Abrupt drops (no
// notice) preempt whatever still runs beyond the new capacity and charge
// the lost-work cost; graceful drops land on an already-drained pool.
func (s *Sim) applyCapacity(idx, cap int, graceful bool) {
	if s.probe != nil {
		s.probe.CapacityChange(s.q.Now().Seconds(), cap)
	}
	s.capEvents++
	s.capHist = append(s.capHist, capStep{at: s.q.Now(), cap: cap})
	delete(s.pendingDrains, idx)
	s.nextChange = idx + 1
	if cap < s.capNow && !graceful {
		// Same-instant abrupt drops pool their lost-work budgets: the
		// coalesced reallocation charges against the total node count
		// reclaimed at the instant, and the budget expires in the flush.
		s.abruptNodes += s.capNow - cap
	}
	s.capNow = cap
	s.schedCap = s.effectiveSchedCap()
	s.markDirty()
}

// effectiveSchedCap is the capacity the scheduler may use right now: the
// actual pool, further limited by any reclaim notice still outstanding —
// a capacity rise (or an unrelated change) inside a notice window must
// not hand back nodes that are already doomed.
func (s *Sim) effectiveSchedCap() int {
	cap := s.capNow
	for _, target := range s.pendingDrains {
		if target < cap {
			cap = target
		}
	}
	return cap
}

// PeekNextEventTime reports the virtual instant of the next pending
// simulation event, and false when the simulation has no pending work.
// Drivers use it to decide whether an external arrival precedes the next
// internal event (the shared-clock decomposition).
func (s *Sim) PeekNextEventTime() (eventq.Time, bool) {
	s.start()
	return s.q.NextTime()
}

// ProcessNextEvent fires the earliest pending event, advancing the clock.
// It reports false when no events remain.
//
// Scheduler invocations are coalesced per instant: job and capacity
// events mark the simulation dirty, and the single reallocation fires
// after the last same-instant event — within the same ProcessNextEvent
// call — so stepped drivers still observe fully-settled state between
// calls whenever the next event sits at a later instant.
func (s *Sim) ProcessNextEvent() bool {
	s.start()
	if !s.q.Step() {
		return false
	}
	if s.dirty {
		s.maybeFlush()
	}
	return true
}

// markDirty defers the scheduler invocation for the current instant.
func (s *Sim) markDirty() { s.dirty = true }

// maybeFlush runs the coalesced reallocation unless another event is
// pending at the current instant (its effects belong in the same
// invocation). Called with s.dirty set.
func (s *Sim) maybeFlush() {
	if t, ok := s.q.NextTime(); ok && t == s.q.Now() {
		return
	}
	s.flushRealloc()
}

// flushRealloc performs the deferred reallocation for the instant: one
// scheduler invocation covering every job/capacity event that fired at
// it, then the post-instant bookkeeping (the abrupt-drop lost-work
// budget expires, an exhausted workload suspends the capacity timeline).
func (s *Sim) flushRealloc() {
	s.dirty = false
	s.reallocate()
	s.abruptNodes = 0
	s.maybeSuspendCapacity()
}

// Now returns the current virtual time of the simulation clock.
func (s *Sim) Now() eventq.Time { return s.q.Now() }

// LoadInfo is a read-only snapshot of the cluster's instantaneous load
// gauges — the same quantities the time-series sampler reads — for
// outer drivers that place work across clusters (internal/federation's
// routing policies).
type LoadInfo struct {
	// Nodes is the configured pool size (the NewSim argument).
	Nodes int
	// Capacity is the usable capacity currently in effect (≤ Nodes under
	// a volatile availability timeline).
	Capacity int
	// Waiting counts active jobs holding no nodes; Running counts jobs
	// holding at least one.
	Waiting int
	Running int
	// Allocated is the total nodes currently granted to jobs.
	Allocated int
}

// LoadInfo reads the cluster's current load gauges. It mutates nothing
// and allocates nothing, so routing layers may call it per arrival
// without perturbing the simulation or its steady-state allocation
// contract.
func (s *Sim) LoadInfo() LoadInfo {
	li := LoadInfo{Nodes: s.nodes, Capacity: s.capNow}
	for _, js := range s.actives {
		if js.Alloc > 0 {
			li.Running++
			li.Allocated += js.Alloc
		} else {
			li.Waiting++
		}
	}
	return li
}

// Inject adds a job while the simulation is running (an open arrival).
// The job's Arrival must not precede the current clock; its MaxNodes is
// normalized exactly as NewSim does for the initial workload.
func (s *Sim) Inject(j *Job) error {
	s.start()
	if j == nil || len(j.Phases) == 0 {
		return fmt.Errorf("cluster: injected job has no phases")
	}
	if j.MaxNodes <= 0 || j.MaxNodes > s.nodes {
		j.MaxNodes = s.nodes
	}
	at := eventq.Time(eventq.DurationOf(j.Arrival))
	if at < s.q.Now() {
		return fmt.Errorf("cluster: job %d arrives at %v, before now %v", j.ID, at, s.q.Now())
	}
	if s.capStopped {
		s.resumeCapacity()
	}
	if s.sampleStopped {
		s.resumeSampling()
	}
	s.jobs = append(s.jobs, j)
	s.pendingArrivals++
	s.q.AtTier(at, tierArrival, func() { s.arrive(j) })
	return nil
}

// Run executes the workload and returns the outcome summary. It is the
// closed-loop composition of the step primitives.
func (s *Sim) Run() Result {
	for s.ProcessNextEvent() {
	}
	return s.Result()
}

// Result summarizes the simulation so far: call it after Run, or after the
// stepped event loop drains, to collect the outcome. The makespan is the
// instant of the last job event (arrival or completion): capacity events
// outliving the workload do not stretch it.
func (s *Sim) Result() Result {
	res := Result{
		Scheduler: s.sched.Name(), Makespan: s.lastJobEvent.Seconds(),
		Reallocations: s.reallocs, CapacityEvents: s.capEvents,
		LostWorkS: s.lostWork, RedistributionS: s.redistS,
	}
	var sum, waitSum float64
	for _, js := range s.finished {
		resp := js.finished - js.Job.Arrival
		wait := js.firstStart - js.Job.Arrival
		if wait < 0 {
			wait = 0 // nanosecond arrival rounding can undercut the float instant
		}
		res.PerJob = append(res.PerJob, JobOutcome{
			ID: js.Job.ID, Arrival: js.Job.Arrival, Finish: js.finished, Response: resp,
			FirstStart: js.firstStart, Wait: wait,
		})
		sum += resp
		waitSum += wait
		if resp > res.MaxResponse {
			res.MaxResponse = resp
		}
	}
	slices.SortFunc(res.PerJob, func(a, b JobOutcome) int { return cmp.Compare(a.ID, b.ID) })
	if len(s.finished) > 0 {
		res.MeanResponse = sum / float64(len(s.finished))
		res.MeanWait = waitSum / float64(len(s.finished))
	}
	// Useful work is what was actually completed: the full profile of
	// finished jobs plus the settled progress of still-active ones.
	// Stranded or pending jobs must not inflate utilization. (With every
	// job finished this sums TotalWork over s.jobs in order, exactly the
	// fixed-pool computation.) The accumulation iterates s.jobs — its
	// order fixes the float sum's last bits — while membership comes from
	// a merged walk over the two ID-sorted views that already exist: the
	// just-sorted PerJob outcomes (the finished set) and the active list.
	// No lookup map, no per-job binary search; the cursors fall back to a
	// point search only if the workload's job IDs are out of order.
	res.Unfinished = len(s.jobs) - len(s.finished)
	var work float64
	fi, ai := 0, 0
	prevID := math.MinInt
	for _, j := range s.jobs {
		var js *jobState
		finished := false
		if j.ID < prevID { // out-of-order IDs: cursors are past this one
			_, finished = slices.BinarySearchFunc(res.PerJob, j.ID,
				func(o JobOutcome, id int) int { return cmp.Compare(o.ID, id) })
			if !finished {
				js = s.findActive(j.ID)
			}
		} else {
			prevID = j.ID
			for fi < len(res.PerJob) && res.PerJob[fi].ID < j.ID {
				fi++
			}
			finished = fi < len(res.PerJob) && res.PerJob[fi].ID == j.ID
			if !finished {
				for ai < len(s.actives) && s.actives[ai].Job.ID < j.ID {
					ai++
				}
				if ai < len(s.actives) && s.actives[ai].Job.ID == j.ID {
					js = s.actives[ai]
				}
			}
		}
		switch {
		case finished:
			work += j.TotalWork()
		case js != nil:
			completed := j.TotalWork() - js.Remaining
			for k := js.PhaseIdx + 1; k < len(j.Phases); k++ {
				completed -= j.Phases[k].Work
			}
			if completed > 0 {
				work += completed
			}
		}
	}
	if res.Makespan > 0 {
		res.Utilization = work / (float64(s.nodes) * res.Makespan)
		if avail := s.capacityIntegral(s.lastJobEvent); avail > 0 {
			res.AvailWeightedUtilization = work / avail
		}
	}
	if s.effDen > 0 {
		res.MeanAllocEfficiency = s.effNum / s.effDen
	}
	return res
}

// capacityIntegral is ∫₀ᵉⁿᵈ capacity(t) dt in node-seconds, from the
// applied capacity history. With no capacity events it reduces to the
// fixed pool's nodes×makespan, bit-identically.
func (s *Sim) capacityIntegral(end eventq.Time) float64 {
	if len(s.capHist) == 0 {
		return float64(s.nodes) * end.Seconds()
	}
	var integral float64
	level := s.nodes
	prev := eventq.Time(0)
	for _, st := range s.capHist {
		if st.at >= end {
			break
		}
		integral += float64(level) * (st.at - prev).Seconds()
		level = st.cap
		prev = st.at
	}
	if end > prev {
		integral += float64(level) * (end - prev).Seconds()
	}
	return integral
}

func (s *Sim) arrive(j *Job) {
	s.pendingArrivals--
	if s.probe != nil {
		s.probe.JobArrive(s.q.Now().Seconds(), j.ID)
	}
	js := &jobState{Job: j, Remaining: j.Phases[0].Work, started: s.q.Now().Seconds(), last: s.q.Now(), firstStart: -1}
	// Bind the phase-completion callback once: every later reschedule
	// reuses it (and the recycled event object) allocation-free.
	js.phaseFn = func() { s.phaseDone(js) }
	s.insertActive(js)
	s.lastJobEvent = s.q.Now()
	s.markDirty()
}

// searchActive locates id in the ID-sorted active list.
func (s *Sim) searchActive(id int) (int, bool) {
	return slices.BinarySearchFunc(s.actives, id,
		func(a *jobState, id int) int { return cmp.Compare(a.Job.ID, id) })
}

// findActive returns the active job with the given ID, nil if none.
func (s *Sim) findActive(id int) *jobState {
	if i, found := s.searchActive(id); found {
		return s.actives[i]
	}
	return nil
}

// insertActive places js into the ID-sorted active list, replacing any
// existing entry with the same (pathological, duplicate) job ID.
func (s *Sim) insertActive(js *jobState) {
	i, found := s.searchActive(js.Job.ID)
	if found {
		s.actives[i] = js
		return
	}
	s.actives = append(s.actives, nil)
	copy(s.actives[i+1:], s.actives[i:])
	s.actives[i] = js
}

// removeActive drops the job with the given ID from the sorted list.
func (s *Sim) removeActive(id int) {
	i, found := s.searchActive(id)
	if !found {
		return
	}
	copy(s.actives[i:], s.actives[i+1:])
	last := len(s.actives) - 1
	s.actives[last] = nil
	s.actives = s.actives[:last]
}

// grow returns buf resized to n, reusing its backing array when the
// capacity suffices — the scratch-buffer idiom of the hot path.
// Contents are unspecified; callers that need zeros must clear.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// reallocate settles progress, asks the scheduler, and reschedules phase
// completions. It is the simulator's hot path — invoked at every
// arrival, phase boundary, departure and capacity event — and runs
// entirely on reused state: the ID-sorted active list is maintained
// incrementally, the policy writes into a recycled buffer, and the phase
// events are recycled objects with callbacks bound at arrival. In steady
// state (no arrival, no completion) it performs zero heap allocations.
func (s *Sim) reallocate() {
	now := s.q.Now()
	// Settle in ID order: the efficiency counters are float accumulators,
	// and any other walk order would make their last bits depend on
	// iteration order, breaking bit-reproducibility across runs. The
	// sorted active list IS that order.
	// The same pass snapshots pre-event allocations: reconfiguration
	// costs are charged on the net per-job delta across the preemption
	// pass and the scheduler.
	n := len(s.actives)
	s.oldAlloc = grow(s.oldAlloc, n)
	total := 0
	for i, js := range s.actives {
		// Skip the settle arithmetic for jobs already settled at this
		// instant (a same-instant arrival, or a phase boundary that
		// credited its slice): dt is exactly zero.
		if js.last != now {
			dt := (now - progressStart(js, now)).Seconds()
			if dt > 0 && js.rate > 0 {
				done := js.rate * dt
				if done > js.Remaining {
					done = js.Remaining
				}
				js.Remaining -= done
				// Efficiency accounting: work done at current allocation.
				// The Model branch sits at the call site so the comm
				// formula inlines — this loop runs for every active job at
				// every scheduling event.
				if js.Alloc > 0 {
					s.effNum += done
					if m := js.Job.Model; m == nil {
						s.effDen += done / js.Phase().Efficiency(js.Alloc)
					} else {
						s.effDen += done / m.Efficiency(js.Phase().Work, js.Alloc)
					}
				}
			}
			js.last = now
		}
		s.oldAlloc[i] = js.Alloc
		total += js.Alloc
	}
	// Preemption pass: a capacity drop can leave more nodes allocated than
	// remain usable. Evict whole jobs — latest arrival first, ties broken
	// toward the highest ID — until the allocation fits; schedulers that
	// preserve running allocations (rigid, moldable) then see the evicted
	// jobs as waiting and re-admit them FCFS when space returns.
	if total > s.schedCap {
		s.victims = s.victims[:0]
		for _, js := range s.actives {
			if js.Alloc > 0 {
				s.victims = append(s.victims, js)
			}
		}
		slices.SortStableFunc(s.victims, func(a, b *jobState) int {
			switch {
			case a.Job.Arrival > b.Job.Arrival:
				return -1
			case a.Job.Arrival < b.Job.Arrival:
				return 1
			}
			return cmp.Compare(b.Job.ID, a.Job.ID)
		})
		for _, v := range s.victims {
			if total <= s.schedCap {
				break
			}
			total -= v.Alloc
			v.Alloc = 0
			if s.probe != nil {
				s.probe.Preempt(now.Seconds(), v.Job.ID)
			}
		}
	}
	// The scheduler sees value snapshots in a reused arena, not the live
	// bookkeeping: a policy can never corrupt simulator state, the views
	// pin exactly the fields the allocation contract names, and no
	// per-event boxing occurs. The policy fills allocBuf (zeroed here)
	// indexed like the views.
	s.views = grow(s.views, n)
	s.allocBuf = grow(s.allocBuf, n)
	for i, js := range s.actives {
		s.views[i] = sched.JobState{Job: js.Job, PhaseIdx: js.PhaseIdx, Remaining: js.Remaining, Alloc: js.Alloc}
		s.allocBuf[i] = 0
	}
	st := sched.State{Nodes: s.schedCap, Now: now.Seconds(), Active: s.views}
	// Wall-clock instrumentation of the policy call sits entirely behind
	// the probe check: the probe-nil path never reads the system clock.
	var wallNS int64
	if s.probe != nil {
		t0 := time.Now()
		s.sched.Allocate(st, s.allocBuf)
		wallNS = int64(time.Since(t0))
	} else {
		s.sched.Allocate(st, s.allocBuf)
	}
	total = 0
	for _, a := range s.allocBuf {
		total += a
	}
	if total > s.schedCap {
		panic(fmt.Sprintf("cluster: scheduler %s over-allocated %d of %d nodes", s.sched.Name(), total, s.schedCap))
	}
	reallocsBefore := s.reallocs
	for i, js := range s.actives {
		newA := s.allocBuf[i]
		if newA != s.oldAlloc[i] {
			s.reallocs++
			// Performance models may price their own reconfiguration
			// (checkpoint distance, migration pause); those charges ride
			// the same two cost paths as the cluster-wide model. The
			// assertion allocates nothing, and a zero-cost hook leaves the
			// charges bit-identical to the hook-free path.
			var hook appmodel.Reconfigurer
			if m := js.Job.Model; m != nil {
				hook, _ = m.(appmodel.Reconfigurer)
			}
			if s.abruptNodes > 0 && newA < s.oldAlloc[i] {
				perNode := s.cost.LostWorkS
				if hook != nil {
					perNode += hook.CheckpointLossS()
				}
				if perNode > 0 {
					// Rollback: in-phase progress on the reclaimed nodes is
					// gone; completed phases stay committed. Only the nodes
					// the event actually reclaimed are charged — shrink that
					// migrates allocation to another job is redistribution,
					// not loss.
					n := s.oldAlloc[i] - newA
					if n > s.abruptNodes {
						n = s.abruptNodes
					}
					s.abruptNodes -= n
					lost := perNode * float64(n)
					if done := js.Phase().Work - js.Remaining; lost > done {
						lost = done
					}
					if lost > 0 {
						js.Remaining += lost
						s.lostWork += lost
						if s.probe != nil {
							s.probe.ReconfigCharge(now.Seconds(), js.Job.ID, obs.ChargeLostWork, lost)
						}
					}
				}
			}
			if s.oldAlloc[i] > 0 && newA > 0 {
				delta := newA - s.oldAlloc[i]
				if delta < 0 {
					delta = -delta
				}
				pause := s.cost.RedistributionSPerNode * float64(delta)
				if hook != nil {
					pause += hook.MigrationS(s.oldAlloc[i], newA)
				}
				// Overlapping pauses coalesce (one redistribution at a
				// time); charge only the actual extension so the
				// accounting matches the dynamics.
				if pause > 0 {
					if until := now.Add(eventq.DurationOf(pause)); until > js.pausedUntil {
						from := js.pausedUntil
						if from < now {
							from = now
						}
						ext := eventq.Duration(until - from).Seconds()
						s.redistS += ext
						js.pausedUntil = until
						if s.probe != nil {
							s.probe.ReconfigCharge(now.Seconds(), js.Job.ID, obs.ChargeRedistribution, ext)
						}
					}
				}
			}
		}
		js.Alloc = newA
		if newA > 0 && js.firstStart < 0 {
			js.firstStart = now.Seconds()
			if s.probe != nil {
				s.probe.JobFirstStart(js.firstStart, js.Job.ID)
			}
		}
		if m := js.Job.Model; m == nil {
			js.rate = js.Phase().Rate(js.Alloc)
		} else {
			js.rate = m.Rate(js.Phase().Work, js.Alloc)
		}
		if js.rate > 0 {
			eta := eventq.DurationOf(js.Remaining / js.rate)
			if js.pausedUntil > now {
				eta += eventq.Duration(js.pausedUntil - now)
			}
			// The pending completion is moved in place (or the fired/
			// cancelled event object recycled); phaseFn was bound at
			// arrival. Zero allocations per reschedule.
			js.ev = s.q.RescheduleAfter(js.ev, eta, js.phaseFn)
		} else if js.ev != nil && js.ev.Scheduled() {
			s.q.Cancel(js.ev)
		}
	}
	if s.probe != nil {
		s.probe.SchedulerInvoke(now.Seconds(), obs.SchedulerInvocation{
			WallNS: wallNS, Changed: s.reallocs - reallocsBefore,
			Active: n, Allocated: total,
		})
	}
}

// progressStart is the instant from which a job has been progressing at
// its current rate: its last settlement, deferred past any redistribution
// pause still in force (never beyond now).
func progressStart(js *jobState, now eventq.Time) eventq.Time {
	from := js.last
	if js.pausedUntil > from {
		if js.pausedUntil < now {
			from = js.pausedUntil
		} else {
			from = now
		}
	}
	return from
}

func (s *Sim) phaseDone(js *jobState) {
	js.Remaining = 0
	// Credit the completed slice.
	now := s.q.Now()
	dt := (now - progressStart(js, now)).Seconds()
	if dt > 0 && js.rate > 0 && js.Alloc > 0 {
		done := js.rate * dt
		s.effNum += done
		if m := js.Job.Model; m == nil {
			s.effDen += done / js.Phase().Efficiency(js.Alloc)
		} else {
			s.effDen += done / m.Efficiency(js.Phase().Work, js.Alloc)
		}
	}
	js.last = now
	s.lastJobEvent = now
	if s.probe != nil {
		s.probe.PhaseDone(now.Seconds(), js.Job.ID, js.PhaseIdx, len(js.Job.Phases))
	}
	js.PhaseIdx++
	if js.PhaseIdx >= len(js.Job.Phases) {
		js.finished = now.Seconds()
		if s.probe != nil {
			s.probe.JobFinish(now.Seconds(), js.Job.ID)
		}
		s.removeActive(js.Job.ID)
		s.finished = append(s.finished, js)
	} else {
		js.Remaining = js.Job.Phases[js.PhaseIdx].Work
	}
	s.markDirty()
}

// PoissonWorkload generates a reproducible stream of LU-profile jobs with
// exponential inter-arrival times.
func PoissonWorkload(jobs, nodes int, meanInterarrival float64, seed uint64) []*Job {
	src := rng.New(seed)
	costs := lu.DefaultCostModel()
	sizes := []struct{ n, r int }{
		{1296, 162}, {1296, 108}, {648, 81}, {2592, 324},
	}
	var out []*Job
	t := 0.0
	for i := 0; i < jobs; i++ {
		t += src.Exp(meanInterarrival)
		sz := sizes[src.Intn(len(sizes))]
		maxN := 2 + src.Intn(nodes)
		out = append(out, &Job{
			ID:       i,
			Arrival:  t,
			Phases:   LUProfile(sz.n, sz.r, costs),
			MaxNodes: maxN,
		})
	}
	return out
}

// FitProfile converts per-iteration statistics produced by a simulated
// run (metrics.Iterations) into a job profile for the cluster scheduler:
// the per-phase serial work is taken verbatim and the communication
// factor is implied by the observed dynamic efficiency at the run's
// allocation, eff = 1/(1+c·(p-1)). This makes the §9 scenario literal:
// the scheduler's knowledge comes from the simulator's predictions.
func FitProfile(iters []IterLike) []Phase {
	out := make([]Phase, 0, len(iters))
	for _, it := range iters {
		comm := 0.0
		if it.Nodes > 1 && it.Efficiency > 0 && it.Efficiency <= 1 {
			comm = (1/it.Efficiency - 1) / float64(it.Nodes-1)
		}
		if comm < 0 {
			comm = 0
		}
		out = append(out, Phase{Work: it.SerialSeconds, Comm: comm})
	}
	return out
}

// IterLike is the subset of metrics.IterationStat the fit needs (declared
// here to keep the dependency direction metrics→cluster-free).
type IterLike struct {
	SerialSeconds float64
	Nodes         int
	Efficiency    float64
}

// Compare runs the same workload under every registered scheduling
// policy (default parameters), in sched.Names() order.
func Compare(nodes int, jobs []*Job) ([]Result, error) {
	var out []Result
	for _, name := range sched.Names() {
		policy, err := sched.New(name, nil)
		if err != nil {
			return nil, err
		}
		// Deep-copy jobs, phases included: the sim normalizes MaxNodes,
		// and a shared Phases backing array would let one run's state
		// alias another's — runs must be fully independent.
		cp := make([]*Job, len(jobs))
		for i, j := range jobs {
			jc := *j
			jc.Phases = append([]Phase(nil), j.Phases...)
			cp[i] = &jc
		}
		sim, err := NewSim(nodes, policy, cp)
		if err != nil {
			return nil, err
		}
		out = append(out, sim.Run())
	}
	return out, nil
}

// InvariantRunner adapts the cluster simulator to sched.CheckInvariants:
// it runs the policy over the given workload and capacity timeline with
// a non-zero reconfiguration cost (so the lost-work and redistribution
// paths are exercised too) and fingerprints the full Result.
func InvariantRunner(policy sched.Scheduler, nodes int, jobs []*sched.Job, changes []sched.CapacityChange) (out sched.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: simulation panicked: %v", r)
		}
	}()
	sim, err := NewSim(nodes, policy, jobs)
	if err != nil {
		return sched.Outcome{}, err
	}
	av := make([]availability.Change, len(changes))
	for i, c := range changes {
		av[i] = availability.Change{At: c.At, Capacity: c.Capacity, NoticeS: c.NoticeS}
	}
	if err := sim.SetCapacityChanges(av); err != nil {
		return sched.Outcome{}, err
	}
	if err := sim.SetReconfigCost(ReconfigCost{RedistributionSPerNode: 0.2, LostWorkS: 2}); err != nil {
		return sched.Outcome{}, err
	}
	res := sim.Run()
	return sched.Outcome{
		Fingerprint: fmt.Sprintf("%+v", res),
		Jobs:        len(jobs),
		Finished:    len(res.PerJob),
		Unfinished:  res.Unfinished,
	}, nil
}
