// Package cluster implements the paper's stated future work (§9): the
// simulation of "a cluster server running concurrently multiple, possibly
// different applications whose allocations of compute nodes vary
// dynamically over time".
//
// Applications are modeled by their phase profiles — per-phase serial work
// and a communication factor that determines dynamic efficiency as a
// function of the allocation — exactly the information the DPS simulator
// produces for a real application (paper Fig. 11). Phase time on p nodes
// is work/(p·eff(p)), with eff(p) = 1/(1 + comm·(p-1)).
//
// Schedulers reallocate nodes at every arrival, phase boundary and
// departure:
//
//   - Rigid: FCFS with a fixed per-job allocation held to completion (the
//     conventional space-sharing baseline).
//   - Equipartition: active jobs share the nodes evenly (classic malleable
//     scheduling, Cirne/Berman-style moldability taken to runtime).
//   - EfficiencyGreedy: nodes are assigned one by one to the job with the
//     highest marginal throughput gain given its current phase's dynamic
//     efficiency — the policy the paper's simulator enables.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dpsim/internal/eventq"
	"dpsim/internal/lu"
	"dpsim/internal/rng"
)

// Phase is one stage of an application with roughly constant parallel
// behavior (an LU iteration, a solver sweep, ...).
type Phase struct {
	// Work is the phase's serial execution time in seconds.
	Work float64
	// Comm is the communication/imbalance factor: efficiency on p nodes
	// is 1/(1+Comm·(p-1)). Zero means perfectly parallel.
	Comm float64
}

// Efficiency returns the dynamic efficiency of the phase on p nodes.
func (ph Phase) Efficiency(p int) float64 {
	if p <= 0 {
		return 0
	}
	return 1 / (1 + ph.Comm*float64(p-1))
}

// Rate returns the phase's progress in work-seconds per second on p nodes.
func (ph Phase) Rate(p int) float64 {
	return float64(p) * ph.Efficiency(p)
}

// Job is one application submitted to the cluster.
type Job struct {
	ID      int
	Arrival float64 // seconds
	Phases  []Phase
	// MaxNodes caps the allocation (rigid jobs always request MaxNodes).
	MaxNodes int
}

// TotalWork returns the job's serial running time.
func (j *Job) TotalWork() float64 {
	var w float64
	for _, ph := range j.Phases {
		w += ph.Work
	}
	return w
}

// LUProfile derives a job profile from the LU application's per-iteration
// serial work (paper Fig. 11's baseline), with a communication factor that
// grows as iterations shrink — matching the measured efficiency decay.
func LUProfile(n, r int, costs lu.CostModel, maxNodes int) []Phase {
	blocks := n / r
	phases := make([]Phase, blocks)
	for k := 0; k < blocks; k++ {
		work := lu.SerialWork(costs, n, r, k).Seconds()
		rem := float64(blocks - k)
		// Later iterations have less work per communication: comm factor
		// rises inversely with the remaining block count.
		comm := 0.08 + 0.25/math.Max(rem, 1)
		phases[k] = Phase{Work: work, Comm: comm}
	}
	_ = maxNodes
	return phases
}

// SyntheticProfile builds a uniform job for workload generators.
func SyntheticProfile(phases int, totalWork, comm float64) []Phase {
	out := make([]Phase, phases)
	for i := range out {
		out[i] = Phase{Work: totalWork / float64(phases), Comm: comm}
	}
	return out
}

// State is the scheduler-visible cluster state.
type State struct {
	Nodes  int
	Active []*JobState
}

// JobState is one running (or paused) job.
type JobState struct {
	Job       *Job
	PhaseIdx  int
	Remaining float64 // work-seconds left in the current phase
	Alloc     int
	started   float64
	finished  float64
	rate      float64
	last      eventq.Time
	ev        *eventq.Event
}

// Phase returns the job's current phase.
func (js *JobState) Phase() Phase { return js.Job.Phases[js.PhaseIdx] }

// Scheduler decides allocations. Allocate must return a per-job node
// count whose sum does not exceed state.Nodes; jobs not in the map get 0.
type Scheduler interface {
	Name() string
	Allocate(st State) map[int]int
}

// --- schedulers ---

// Rigid allocates each job its MaxNodes, FCFS, holding until completion.
type Rigid struct{}

// Name implements Scheduler.
func (Rigid) Name() string { return "rigid-fcfs" }

// Allocate implements Scheduler. Running jobs keep their nodes; waiting
// jobs are admitted FCFS into whatever remains (a running job admitted by
// backfilling must never be evicted by an older waiter).
func (Rigid) Allocate(st State) map[int]int {
	out := make(map[int]int)
	free := st.Nodes
	for _, js := range st.Active {
		if js.Alloc > 0 {
			out[js.Job.ID] = js.Alloc
			free -= js.Alloc
		}
	}
	// FCFS by arrival (stable by ID) over the waiting jobs.
	waiting := make([]*JobState, 0, len(st.Active))
	for _, js := range st.Active {
		if js.Alloc == 0 {
			waiting = append(waiting, js)
		}
	}
	sort.SliceStable(waiting, func(i, j int) bool {
		if waiting[i].Job.Arrival != waiting[j].Job.Arrival {
			return waiting[i].Job.Arrival < waiting[j].Job.Arrival
		}
		return waiting[i].Job.ID < waiting[j].Job.ID
	})
	for _, js := range waiting {
		if want := js.Job.MaxNodes; want <= free {
			out[js.Job.ID] = want
			free -= want
		}
	}
	return out
}

// Equipartition divides the nodes evenly among active jobs.
type Equipartition struct{}

// Name implements Scheduler.
func (Equipartition) Name() string { return "equipartition" }

// Allocate implements Scheduler.
func (Equipartition) Allocate(st State) map[int]int {
	out := make(map[int]int)
	if len(st.Active) == 0 {
		return out
	}
	jobs := append([]*JobState(nil), st.Active...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job.ID < jobs[j].Job.ID })
	share := st.Nodes / len(jobs)
	extra := st.Nodes % len(jobs)
	for i, js := range jobs {
		a := share
		if i < extra {
			a++
		}
		if a > js.Job.MaxNodes {
			a = js.Job.MaxNodes
		}
		out[js.Job.ID] = a
	}
	return out
}

// Moldable chooses each job's allocation once, at start, to maximize its
// own efficiency×speedup trade-off (the moldable-job model of Cirne &
// Berman, the paper's ref [5]); the allocation never changes afterwards.
// It captures what is possible *without* runtime reallocation.
type Moldable struct {
	// MinEfficiency is the lowest acceptable first-phase efficiency when
	// picking the start allocation (default 0.5).
	MinEfficiency float64
}

// Name implements Scheduler.
func (Moldable) Name() string { return "moldable" }

// Allocate implements Scheduler.
func (m Moldable) Allocate(st State) map[int]int {
	minEff := m.MinEfficiency
	if minEff <= 0 {
		minEff = 0.5
	}
	out := make(map[int]int)
	free := st.Nodes
	for _, js := range st.Active {
		if js.Alloc > 0 {
			out[js.Job.ID] = js.Alloc
			free -= js.Alloc
		}
	}
	waiting := make([]*JobState, 0, len(st.Active))
	for _, js := range st.Active {
		if js.Alloc == 0 {
			waiting = append(waiting, js)
		}
	}
	sort.SliceStable(waiting, func(i, j int) bool {
		if waiting[i].Job.Arrival != waiting[j].Job.Arrival {
			return waiting[i].Job.Arrival < waiting[j].Job.Arrival
		}
		return waiting[i].Job.ID < waiting[j].Job.ID
	})
	for _, js := range waiting {
		// Largest allocation whose first-phase efficiency stays above the
		// threshold, molded to what is currently free.
		ph := js.Job.Phases[0]
		want := 1
		for p := 2; p <= js.Job.MaxNodes; p++ {
			if ph.Efficiency(p) >= minEff {
				want = p
			}
		}
		if want <= free {
			out[js.Job.ID] = want
			free -= want
		}
	}
	return out
}

// EfficiencyGreedy assigns nodes one at a time to the job with the largest
// marginal rate gain under its current phase's efficiency curve — the
// dynamic-efficiency-aware policy.
type EfficiencyGreedy struct{}

// Name implements Scheduler.
func (EfficiencyGreedy) Name() string { return "efficiency-greedy" }

// Allocate implements Scheduler.
func (EfficiencyGreedy) Allocate(st State) map[int]int {
	out := make(map[int]int)
	if len(st.Active) == 0 {
		return out
	}
	jobs := append([]*JobState(nil), st.Active...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job.ID < jobs[j].Job.ID })
	alloc := make([]int, len(jobs))
	for n := 0; n < st.Nodes; n++ {
		best, bestGain := -1, 0.0
		for i, js := range jobs {
			if alloc[i] >= js.Job.MaxNodes {
				continue
			}
			ph := js.Phase()
			gain := ph.Rate(alloc[i]+1) - ph.Rate(alloc[i])
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
	}
	for i, js := range jobs {
		out[js.Job.ID] = alloc[i]
	}
	return out
}

// --- the cluster simulation ---

// Result summarizes one simulated workload.
type Result struct {
	Scheduler    string
	Makespan     float64
	MeanResponse float64
	MaxResponse  float64
	// Utilization is total useful serial work divided by nodes×makespan.
	Utilization float64
	// MeanAllocEfficiency is the work-weighted dynamic efficiency.
	MeanAllocEfficiency float64
	PerJob              []JobOutcome
}

// JobOutcome is one job's fate.
type JobOutcome struct {
	ID       int
	Arrival  float64
	Finish   float64
	Response float64
}

// Sim runs a workload on a malleable cluster under a scheduler.
//
// A Sim can be driven two ways: Run() executes the closed workload passed
// to NewSim to completion, while the step primitives — PeekNextEventTime,
// ProcessNextEvent and Inject — decompose the same event loop so an outer
// driver (an open arrival process, a co-simulation sharing the clock) can
// interleave job injections with event processing. Both paths execute the
// identical event sequence for the same inputs.
type Sim struct {
	nodes int
	sched Scheduler
	q     *eventq.Queue
	jobs  []*Job

	started  bool
	active   map[int]*JobState
	finished []*JobState
	effNum   float64
	effDen   float64
}

// NewSim creates a simulation of the given cluster size.
func NewSim(nodes int, sched Scheduler, jobs []*Job) (*Sim, error) {
	if nodes <= 0 {
		return nil, errors.New("cluster: need nodes")
	}
	if sched == nil {
		return nil, errors.New("cluster: need a scheduler")
	}
	for _, j := range jobs {
		if len(j.Phases) == 0 {
			return nil, fmt.Errorf("cluster: job %d has no phases", j.ID)
		}
		if j.MaxNodes <= 0 {
			j.MaxNodes = nodes
		}
		if j.MaxNodes > nodes {
			j.MaxNodes = nodes
		}
	}
	return &Sim{nodes: nodes, sched: sched, q: eventq.New(), jobs: jobs, active: make(map[int]*JobState)}, nil
}

// start schedules the arrivals of the jobs passed to NewSim, exactly
// once. It is invoked lazily by every driving entry point so that closed
// runs (Run) and stepped runs observe the same initial event sequence.
func (s *Sim) start() {
	if s.started {
		return
	}
	s.started = true
	for _, j := range s.jobs {
		j := j
		s.q.At(eventq.Time(eventq.DurationOf(j.Arrival)), func() { s.arrive(j) })
	}
}

// PeekNextEventTime reports the virtual instant of the next pending
// simulation event, and false when the simulation has no pending work.
// Drivers use it to decide whether an external arrival precedes the next
// internal event (the shared-clock decomposition).
func (s *Sim) PeekNextEventTime() (eventq.Time, bool) {
	s.start()
	return s.q.NextTime()
}

// ProcessNextEvent fires the earliest pending event, advancing the clock.
// It reports false when no events remain.
func (s *Sim) ProcessNextEvent() bool {
	s.start()
	return s.q.Step()
}

// Now returns the current virtual time of the simulation clock.
func (s *Sim) Now() eventq.Time { return s.q.Now() }

// Inject adds a job while the simulation is running (an open arrival).
// The job's Arrival must not precede the current clock; its MaxNodes is
// normalized exactly as NewSim does for the initial workload.
func (s *Sim) Inject(j *Job) error {
	s.start()
	if j == nil || len(j.Phases) == 0 {
		return fmt.Errorf("cluster: injected job has no phases")
	}
	if j.MaxNodes <= 0 || j.MaxNodes > s.nodes {
		j.MaxNodes = s.nodes
	}
	at := eventq.Time(eventq.DurationOf(j.Arrival))
	if at < s.q.Now() {
		return fmt.Errorf("cluster: job %d arrives at %v, before now %v", j.ID, at, s.q.Now())
	}
	s.jobs = append(s.jobs, j)
	s.q.At(at, func() { s.arrive(j) })
	return nil
}

// Run executes the workload and returns the outcome summary. It is the
// closed-loop composition of the step primitives.
func (s *Sim) Run() Result {
	for s.ProcessNextEvent() {
	}
	return s.Result()
}

// Result summarizes the simulation so far: call it after Run, or after the
// stepped event loop drains, to collect the outcome.
func (s *Sim) Result() Result {
	res := Result{Scheduler: s.sched.Name(), Makespan: s.q.Now().Seconds()}
	var sum float64
	for _, js := range s.finished {
		resp := js.finished - js.Job.Arrival
		res.PerJob = append(res.PerJob, JobOutcome{
			ID: js.Job.ID, Arrival: js.Job.Arrival, Finish: js.finished, Response: resp,
		})
		sum += resp
		if resp > res.MaxResponse {
			res.MaxResponse = resp
		}
	}
	sort.Slice(res.PerJob, func(i, j int) bool { return res.PerJob[i].ID < res.PerJob[j].ID })
	if len(s.finished) > 0 {
		res.MeanResponse = sum / float64(len(s.finished))
	}
	var work float64
	for _, j := range s.jobs {
		work += j.TotalWork()
	}
	if res.Makespan > 0 {
		res.Utilization = work / (float64(s.nodes) * res.Makespan)
	}
	if s.effDen > 0 {
		res.MeanAllocEfficiency = s.effNum / s.effDen
	}
	return res
}

func (s *Sim) arrive(j *Job) {
	js := &JobState{Job: j, Remaining: j.Phases[0].Work, started: s.q.Now().Seconds(), last: s.q.Now()}
	s.active[j.ID] = js
	s.reallocate()
}

// reallocate settles progress, asks the scheduler, and reschedules phase
// completions.
func (s *Sim) reallocate() {
	now := s.q.Now()
	ids := make([]int, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Settle in ID order: the efficiency counters are float accumulators,
	// and a map-order walk would make their last bits depend on iteration
	// order, breaking bit-reproducibility across runs.
	for _, id := range ids {
		js := s.active[id]
		dt := (now - js.last).Seconds()
		if dt > 0 && js.rate > 0 {
			done := js.rate * dt
			if done > js.Remaining {
				done = js.Remaining
			}
			js.Remaining -= done
			// Efficiency accounting: work done at current allocation.
			if js.Alloc > 0 {
				s.effNum += done
				s.effDen += done / js.Phase().Efficiency(js.Alloc)
			}
		}
		js.last = now
	}
	st := State{Nodes: s.nodes, Active: s.activeList()}
	alloc := s.sched.Allocate(st)
	total := 0
	for _, a := range alloc {
		total += a
	}
	if total > s.nodes {
		panic(fmt.Sprintf("cluster: scheduler %s over-allocated %d of %d nodes", s.sched.Name(), total, s.nodes))
	}
	for _, id := range ids {
		js := s.active[id]
		js.Alloc = alloc[id]
		js.rate = js.Phase().Rate(js.Alloc)
		if js.ev != nil {
			s.q.Cancel(js.ev)
			js.ev = nil
		}
		if js.rate > 0 {
			eta := eventq.DurationOf(js.Remaining / js.rate)
			jj := js
			js.ev = s.q.After(eta, func() { s.phaseDone(jj) })
		}
	}
}

func (s *Sim) phaseDone(js *JobState) {
	js.Remaining = 0
	// Credit the completed slice.
	now := s.q.Now()
	dt := (now - js.last).Seconds()
	if dt > 0 && js.rate > 0 && js.Alloc > 0 {
		done := js.rate * dt
		s.effNum += done
		s.effDen += done / js.Phase().Efficiency(js.Alloc)
	}
	js.last = now
	js.PhaseIdx++
	if js.PhaseIdx >= len(js.Job.Phases) {
		js.finished = now.Seconds()
		delete(s.active, js.Job.ID)
		s.finished = append(s.finished, js)
	} else {
		js.Remaining = js.Job.Phases[js.PhaseIdx].Work
	}
	s.reallocate()
}

func (s *Sim) activeList() []*JobState {
	out := make([]*JobState, 0, len(s.active))
	ids := make([]int, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, s.active[id])
	}
	return out
}

// PoissonWorkload generates a reproducible stream of LU-profile jobs with
// exponential inter-arrival times.
func PoissonWorkload(jobs, nodes int, meanInterarrival float64, seed uint64) []*Job {
	src := rng.New(seed)
	costs := lu.DefaultCostModel()
	sizes := []struct{ n, r int }{
		{1296, 162}, {1296, 108}, {648, 81}, {2592, 324},
	}
	var out []*Job
	t := 0.0
	for i := 0; i < jobs; i++ {
		t += src.Exp(meanInterarrival)
		sz := sizes[src.Intn(len(sizes))]
		maxN := 2 + src.Intn(nodes)
		out = append(out, &Job{
			ID:       i,
			Arrival:  t,
			Phases:   LUProfile(sz.n, sz.r, costs, maxN),
			MaxNodes: maxN,
		})
	}
	return out
}

// FitProfile converts per-iteration statistics produced by a simulated
// run (metrics.Iterations) into a job profile for the cluster scheduler:
// the per-phase serial work is taken verbatim and the communication
// factor is implied by the observed dynamic efficiency at the run's
// allocation, eff = 1/(1+c·(p-1)). This makes the §9 scenario literal:
// the scheduler's knowledge comes from the simulator's predictions.
func FitProfile(iters []IterLike) []Phase {
	out := make([]Phase, 0, len(iters))
	for _, it := range iters {
		comm := 0.0
		if it.Nodes > 1 && it.Efficiency > 0 && it.Efficiency <= 1 {
			comm = (1/it.Efficiency - 1) / float64(it.Nodes-1)
		}
		if comm < 0 {
			comm = 0
		}
		out = append(out, Phase{Work: it.SerialSeconds, Comm: comm})
	}
	return out
}

// IterLike is the subset of metrics.IterationStat the fit needs (declared
// here to keep the dependency direction metrics→cluster-free).
type IterLike struct {
	SerialSeconds float64
	Nodes         int
	Efficiency    float64
}

// Schedulers returns one instance of every built-in scheduler, in the
// canonical comparison order.
func Schedulers() []Scheduler {
	return []Scheduler{Rigid{}, Moldable{}, Equipartition{}, EfficiencyGreedy{}}
}

// SchedulerByName resolves a scheduler from its Name() string (the form
// used in scenario files and CLI flags).
func SchedulerByName(name string) (Scheduler, bool) {
	for _, s := range Schedulers() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// Compare runs the same workload under every scheduler.
func Compare(nodes int, jobs []*Job) ([]Result, error) {
	var out []Result
	for _, sched := range Schedulers() {
		// Deep-copy jobs: the sim mutates MaxNodes normalization only,
		// but fresh copies keep runs independent.
		cp := make([]*Job, len(jobs))
		for i, j := range jobs {
			jc := *j
			cp[i] = &jc
		}
		sim, err := NewSim(nodes, sched, cp)
		if err != nil {
			return nil, err
		}
		out = append(out, sim.Run())
	}
	return out, nil
}
