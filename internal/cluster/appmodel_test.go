package cluster

import (
	"fmt"
	"testing"

	"dpsim/internal/appmodel"
	"dpsim/internal/availability"
	"dpsim/internal/lu"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// TestLUPhaseMatchesLUProfile: the registered "lu" model must reproduce
// LUProfile's per-iteration communication factor bit-for-bit — the
// equality that makes the scenario layer's registry rewiring golden-safe.
func TestLUPhaseMatchesLUProfile(t *testing.T) {
	for _, sz := range []struct{ n, r int }{{1296, 162}, {1296, 108}, {648, 81}, {2592, 324}} {
		phases := LUProfile(sz.n, sz.r, lu.DefaultCostModel())
		for k, ph := range phases {
			if m := appmodel.LUPhase(len(phases), k); m.C != ph.Comm {
				t.Fatalf("n=%d r=%d k=%d: LUPhase C = %g, LUProfile Comm = %g",
					sz.n, sz.r, k, m.C, ph.Comm)
			}
		}
	}
}

// commJobs builds a uniform-comm workload; when attach is set, each job
// carries the registered comm-factor model equivalent to its phases'
// Comm field instead of relying on the Comm formula.
func commJobs(attach bool) []*Job {
	src := rng.New(3)
	out := make([]*Job, 24)
	for i := range out {
		comm := 0.01 + 0.02*float64(i%5)
		j := &Job{
			ID:       i,
			Arrival:  float64(i) * src.Exp(5),
			Phases:   SyntheticProfile(4+i%3, 150+7*float64(i), comm),
			MaxNodes: 2 + i%16,
		}
		if attach {
			j.Model = appmodel.Comm("synthetic", comm)
		}
		out[i] = j
	}
	return out
}

// TestModelAttachedBitIdentical: running a workload with registry-backed
// comm-factor models attached must produce bit-identical Results to the
// classic Comm-formula path, for every registered policy, on a fixed and
// on a volatile pool with reconfiguration costs. This pins the cluster
// layer of the appmodel rewiring: the CommFactor arithmetic is
// expression-for-expression the Phase formula.
func TestModelAttachedBitIdentical(t *testing.T) {
	spec := availability.Spec{Process: "failures", MTTFS: 400, MTTRS: 100, HorizonS: 4000}
	for _, name := range sched.Names() {
		for _, volatile := range []bool{false, true} {
			run := func(jobs []*Job) Result {
				policy, err := sched.New(name, nil)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := NewSim(16, policy, jobs)
				if err != nil {
					t.Fatal(err)
				}
				if volatile {
					changes, err := spec.Generate(16, rng.New(11))
					if err != nil {
						t.Fatal(err)
					}
					if err := sim.SetCapacityChanges(changes); err != nil {
						t.Fatal(err)
					}
					if err := sim.SetReconfigCost(ReconfigCost{RedistributionSPerNode: 0.3, LostWorkS: 2}); err != nil {
						t.Fatal(err)
					}
				}
				return sim.Run()
			}
			classic := run(commJobs(false))
			modeled := run(commJobs(true))
			if got, want := fmt.Sprintf("%+v", modeled), fmt.Sprintf("%+v", classic); got != want {
				t.Errorf("%s volatile=%v: model-attached run diverged\n got %s\nwant %s",
					name, volatile, got, want)
			}
		}
	}
}

// TestModelReconfigHooksCharged: a model's migrate_s/ckpt_s parameters
// must flow through the cluster's two reconfiguration-cost paths. Two
// equal jobs share 8 nodes (4+4); an abrupt drop to 4 shrinks both to
// 2, reclaiming 2 nodes from each:
//
//   - lost work = (LostWorkS + ckpt_s) × 2 nodes per job = (1+2)·2·2 = 12
//   - redistribution = migrate_s per resize of a running job; exactly
//     two resizes happen — both jobs shrink 4→2 at the drop — so
//     2·1.5 = 3 (the cluster-wide per-node rate is zero, so the pause
//     is pure model). The jobs arrive together and finish together, so
//     equal-instant coalescing admits both in one invocation (no 8→4
//     transient for job 0) and sees both release at once (no 2→4
//     regrow for a "survivor") — same-instant churn is not charged.
func TestModelReconfigHooksCharged(t *testing.T) {
	model, err := appmodel.New("synthetic", appmodel.Params{"comm": 0, "migrate_s": 1.5, "ckpt_s": 2})
	if err != nil {
		t.Fatal(err)
	}
	mkJobs := func(attach bool) []*Job {
		var jobs []*Job
		for i := 0; i < 2; i++ {
			j := &Job{ID: i, Phases: []Phase{{Work: 1000}}, MaxNodes: 8}
			if attach {
				j.Model = model
			}
			jobs = append(jobs, j)
		}
		return jobs
	}
	run := func(attach bool) Result {
		sim, err := NewSim(8, sched.Equipartition{}, mkJobs(attach))
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.SetCapacityChanges([]availability.Change{{At: 50, Capacity: 4}}); err != nil {
			t.Fatal(err)
		}
		if err := sim.SetReconfigCost(ReconfigCost{LostWorkS: 1}); err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	base := run(false)
	if base.LostWorkS != 4 || base.RedistributionS != 0 {
		t.Fatalf("baseline charges: lost=%g redist=%g, want 4, 0", base.LostWorkS, base.RedistributionS)
	}
	hooked := run(true)
	if hooked.LostWorkS != 12 {
		t.Errorf("hooked lost work = %g, want 12", hooked.LostWorkS)
	}
	if hooked.RedistributionS != 3 {
		t.Errorf("hooked redistribution = %g, want 3", hooked.RedistributionS)
	}
}

// TestProcessNextEventZeroAllocModelPhases: the zero-allocation
// steady-state contract must survive registry-backed models on the hot
// path — every phase evaluation now goes through an AppModel interface
// call, and none of the built-in models may allocate.
func TestProcessNextEventZeroAllocModelPhases(t *testing.T) {
	models := make([]appmodel.AppModel, 0, len(appmodel.Names()))
	for _, name := range appmodel.Names() {
		m, err := appmodel.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	for _, policy := range sched.Names() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			jobs := steadyJobs(24, 400, 32)
			for i, j := range jobs {
				j.Model = models[i%len(models)]
			}
			p, err := sched.New(policy, nil)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := NewSim(32, p, jobs)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				if !sim.ProcessNextEvent() {
					t.Fatal("workload drained during warm-up")
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if !sim.ProcessNextEvent() {
					t.Fatal("workload drained mid-measurement")
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocations per steady-state event with models, want 0", policy, allocs)
			}
		})
	}
}
