package cluster

import (
	"math"
	"reflect"
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/obs"
	"dpsim/internal/sched"
)

// steadyProbeSim is steadySim with the built-in recorder attached and the
// fixed-interval sampler running — the probe-enabled twin of the
// zero-allocation matrix.
func steadyProbeSim(tb testing.TB, policyName string) (*Sim, *obs.Recorder) {
	tb.Helper()
	policy, err := sched.New(policyName, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := NewSim(32, policy, steadyJobs(24, 400, 32))
	if err != nil {
		tb.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{Label: policyName})
	if err := sim.SetProbe(rec); err != nil {
		tb.Fatal(err)
	}
	if err := sim.SetSampleInterval(0.5); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if !sim.ProcessNextEvent() {
			tb.Fatal("workload drained during warm-up")
		}
	}
	return sim, rec
}

// TestProcessNextEventBoundedAllocWithProbe is the probe-attached
// counterpart of TestProcessNextEventZeroAllocSteadyState: with the
// built-in recorder and sampler running, a steady-state event may only
// allocate through the recorder's ring growth, which amortizes to well
// under one allocation per event. A failure means a hook site started
// allocating per call.
func TestProcessNextEventBoundedAllocWithProbe(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sim, _ := steadyProbeSim(t, name)
			allocs := testing.AllocsPerRun(200, func() {
				if !sim.ProcessNextEvent() {
					t.Fatal("workload drained mid-measurement")
				}
			})
			if allocs > 1 {
				t.Errorf("%s: %v amortized allocations per probed event, want <= 1", name, allocs)
			}
		})
	}
}

// obsWorkload is a small workload with capacity volatility and
// reconfiguration costs: it exercises every probe hook (notice, abrupt
// drop, preemption, lost work, redistribution).
func obsWorkload(tb testing.TB, policyName string, probe obs.Probe, sampleDT float64) Result {
	tb.Helper()
	policy, err := sched.New(policyName, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := NewSim(16, policy, steadyJobs(8, 40, 16))
	if err != nil {
		tb.Fatal(err)
	}
	if err := sim.SetCapacityChanges([]availability.Change{
		{At: 30, Capacity: 6},
		{At: 60, Capacity: 16, NoticeS: 0},
		{At: 90, Capacity: 4, NoticeS: 10},
		{At: 120, Capacity: 16},
	}); err != nil {
		tb.Fatal(err)
	}
	if err := sim.SetReconfigCost(ReconfigCost{RedistributionSPerNode: 0.1, LostWorkS: 1}); err != nil {
		tb.Fatal(err)
	}
	if probe != nil {
		if err := sim.SetProbe(probe); err != nil {
			tb.Fatal(err)
		}
		if sampleDT > 0 {
			if err := sim.SetSampleInterval(sampleDT); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return sim.Run()
}

// TestProbeDoesNotChangeResult pins the observer-effect-free contract:
// attaching the recorder and the sampler must leave the Result deeply
// identical to the probe-free run — same instants, same float bits.
func TestProbeDoesNotChangeResult(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			bare := obsWorkload(t, name, nil, 0)
			rec := obs.NewRecorder(obs.Config{Label: name})
			probed := obsWorkload(t, name, rec, 0.25)
			if !reflect.DeepEqual(bare, probed) {
				t.Errorf("attaching a probe changed the Result:\nbare:   %+v\nprobed: %+v", bare, probed)
			}
		})
	}
}

// TestRecorderMatchesResult cross-checks the recorder's independent
// accounting against the simulator's own Result counters.
func TestRecorderMatchesResult(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{Label: "equipartition"})
	res := obsWorkload(t, "equipartition", rec, 0.5)
	sum := rec.Summarize()
	if sum.Arrived != 8 {
		t.Errorf("arrived = %d, want 8", sum.Arrived)
	}
	if sum.Finished != 8-res.Unfinished {
		t.Errorf("finished = %d, Result says %d", sum.Finished, 8-res.Unfinished)
	}
	if math.Abs(sum.LostWorkS-res.LostWorkS) > 1e-9 {
		t.Errorf("lost work %g, Result says %g", sum.LostWorkS, res.LostWorkS)
	}
	if math.Abs(sum.RedistributionS-res.RedistributionS) > 1e-9 {
		t.Errorf("redistribution %g, Result says %g", sum.RedistributionS, res.RedistributionS)
	}
	if sum.CapacitySteps < res.CapacityEvents {
		t.Errorf("capacity steps %d < applied events %d", sum.CapacitySteps, res.CapacityEvents)
	}
	if sum.SchedulerLatency.Invocations == 0 {
		t.Error("no scheduler invocations recorded")
	}
	if sum.Samples == 0 {
		t.Error("no time-series samples recorded")
	}
	if len(rec.Spans()) == 0 {
		t.Error("no spans recorded")
	}
}

// TestSampleGrid pins the sampler to the t = k·dt grid: every sample
// instant must be an exact multiple of the interval, strictly
// increasing, starting at 0.
func TestSampleGrid(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{})
	obsWorkload(t, "equipartition", rec, 0.5)
	samples := rec.Samples()
	if len(samples) < 10 {
		t.Fatalf("only %d samples", len(samples))
	}
	if samples[0].T != 0 {
		t.Errorf("first sample at %g, want 0", samples[0].T)
	}
	prev := -1.0
	for i, s := range samples {
		if k := math.Round(s.T / 0.5); math.Abs(s.T-k*0.5) > 1e-9 {
			t.Errorf("sample %d at %g off the 0.5s grid", i, s.T)
		}
		if s.T <= prev {
			t.Errorf("sample %d at %g not after %g", i, s.T, prev)
		}
		prev = s.T
		if s.Available > 0 {
			want := float64(s.Allocated) / float64(s.Available)
			if math.Abs(s.Utilization-want) > 1e-9 {
				t.Errorf("sample %d utilization %g, want %g", i, s.Utilization, want)
			}
		}
	}
}

// TestSamplerResumesAfterIdle: when the workload drains the sampler
// stops, and a later Inject resumes it on the same grid — no samples
// during the idle gap, grid-aligned samples after.
func TestSamplerResumesAfterIdle(t *testing.T) {
	policy, err := sched.New("equipartition", nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(8, policy, []*Job{
		{ID: 0, Arrival: 0, Phases: SyntheticProfile(2, 10, 0.05)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{})
	if err := sim.SetProbe(rec); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetSampleInterval(1); err != nil {
		t.Fatal(err)
	}
	for sim.ProcessNextEvent() {
	}
	drained := len(rec.Samples())
	if drained == 0 {
		t.Fatal("no samples before the idle gap")
	}
	end := sim.Now().Seconds()
	if err := sim.Inject(&Job{ID: 1, Arrival: end + 10.25, Phases: SyntheticProfile(2, 10, 0.05)}); err != nil {
		t.Fatal(err)
	}
	for sim.ProcessNextEvent() {
	}
	samples := rec.Samples()
	if len(samples) <= drained {
		t.Fatal("sampler did not resume after Inject")
	}
	for _, s := range samples[drained:] {
		if k := math.Round(s.T); math.Abs(s.T-k) > 1e-9 {
			t.Errorf("resumed sample at %g off the 1s grid", s.T)
		}
		if s.T <= end {
			t.Errorf("sample at %g inside the idle gap ending %g", s.T, end)
		}
	}
}

// TestProbeSetupErrors: the observability setters must refuse to run
// mid-flight, and reject a non-positive interval.
func TestProbeSetupErrors(t *testing.T) {
	policy, err := sched.New("equipartition", nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(4, policy, steadyJobs(2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetSampleInterval(0); err == nil {
		t.Error("zero sample interval accepted")
	}
	sim.ProcessNextEvent()
	if err := sim.SetProbe(obs.NewRecorder(obs.Config{})); err == nil {
		t.Error("SetProbe accepted after start")
	}
	if err := sim.SetSampleInterval(1); err == nil {
		t.Error("SetSampleInterval accepted after start")
	}
}

// BenchmarkSchedulerInvokeProbed is BenchmarkSchedulerInvoke with the
// recorder and sampler attached: the allocs/op delta against the bare
// benchmark is the whole cost of observability.
func BenchmarkSchedulerInvokeProbed(b *testing.B) {
	for _, name := range sched.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			sim, _ := steadyProbeSim(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sim.ProcessNextEvent() {
					b.StopTimer()
					sim, _ = steadyProbeSim(b, name)
					b.StartTimer()
				}
			}
		})
	}
}
