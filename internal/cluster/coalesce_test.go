package cluster

import (
	"fmt"
	"strings"
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/obs"
	"dpsim/internal/sched"
)

// fingerprintResult renders every outcome field of a Result with full
// float64 precision — except Reallocations, whose semantics are defined
// per scheduler invocation and therefore changed (deliberately) when
// equal-instant invocations were coalesced (see docs/performance.md).
// Everything else must be byte-identical to the pre-coalescing engine.
func fingerprintResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mk=%.17g mr=%.17g xr=%.17g mw=%.17g u=%.17g au=%.17g eff=%.17g unf=%d cap=%d lost=%.17g red=%.17g",
		r.Makespan, r.MeanResponse, r.MaxResponse, r.MeanWait,
		r.Utilization, r.AvailWeightedUtilization, r.MeanAllocEfficiency,
		r.Unfinished, r.CapacityEvents, r.LostWorkS, r.RedistributionS)
	for _, j := range r.PerJob {
		fmt.Fprintf(&b, " [%d a=%.17g f=%.17g w=%.17g]", j.ID, j.Arrival, j.Finish, j.Wait)
	}
	return b.String()
}

// burstWorkload is a mid-run equal-instant arrival burst: a handful of
// staggered background jobs plus eight jobs all arriving at exactly
// t=20 — the bursty-MMPP / batch-trace-replay shape that coalescing
// collapses to a single scheduler invocation.
func burstWorkload() []*Job {
	jobs := PoissonWorkload(6, 16, 10, 5)
	for i := 0; i < 8; i++ {
		jobs = append(jobs, &Job{
			ID:       100 + i,
			Arrival:  20,
			Phases:   SyntheticProfile(3+i%3, float64(60+17*i), 0.02+0.01*float64(i%4)),
			MaxNodes: 2 + i%7,
		})
	}
	return jobs
}

// exactWorkload is four identical jobs arriving at t=0 whose phases use
// exact binary arithmetic (comm 0, power-of-two work, MaxNodes 2): under
// an even split every phase completes at exactly the same nanosecond, so
// the run exercises simultaneous phase completions at every boundary.
func exactWorkload() []*Job {
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i] = &Job{
			ID:       i,
			Arrival:  0,
			Phases:   SyntheticProfile(4, 64, 0),
			MaxNodes: 2,
		}
	}
	return jobs
}

// capacityBurstChanges drops capacity abruptly at exactly t=20 — the
// same instant as burstWorkload\'s arrival burst — then restores it.
func capacityBurstChanges() []availability.Change {
	return []availability.Change{
		{At: 20, Capacity: 9},
		{At: 60, Capacity: 16},
	}
}

func runBurstCase(t *testing.T, policy string, jobs []*Job, changes []availability.Change) Result {
	t.Helper()
	p, err := sched.New(policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(16, p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if changes != nil {
		if err := sim.SetCapacityChanges(changes); err != nil {
			t.Fatal(err)
		}
	}
	return sim.Run()
}

type burstKey struct{ scenario, policy string }

// coalesceGoldens pins the burst scenarios bit-for-bit to the
// PRE-coalescing engine (captured at PR 8 HEAD with %.17g): collapsing
// the k same-instant scheduler invocations into one must not move a
// single float bit of any Result field other than Reallocations.
var coalesceGoldens = map[burstKey]string{
	{"burst-arrivals", "easy-backfill"}:                  `mk=208.896598923 mr=60.024334349589942 xr=145.624523813 mw=31.246869499375659 u=0.47309210366047216 au=0.47309210366047216 eff=0.62248995717435962 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=134.6150068 w=47.390306363308333] [3 a=57.565653544377085 f=168.88178153199999 w=77.049353255622918] [4 a=78.300295773235945 f=173.73721545999999 w=90.581485758764046] [5 a=106.26504499614416 f=208.896598923 w=67.472170463855832] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=46.640000000000001 w=0] [104 a=20 f=69.786666667999995 w=26.32] [105 a=20 f=71.649523813000002 w=27.206666667999997] [106 a=20 f=95.706666667999997 w=49.786666667999995] [107 a=20 f=165.624523813 w=51.649523813000002]`,
	{"burst-arrivals", "efficiency-greedy"}:              `mk=147.55697845899999 mr=46.645833761732796 xr=109.50243956700001 mw=7.2600084674182388e-11 u=0.66975708274929224 au=0.66975708274929224 eff=0.76596088911908866 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=122.178661929 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=125.05618019000001 w=0] [4 a=78.300295773235945 f=87.568534932000006 w=0] [5 a=106.26504499614416 f=147.55697845899999 w=0] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=59.655000000000001 w=0] [102 a=20 f=67.151323963999999 w=0] [103 a=20 f=75.677828966999996 w=0] [104 a=20 f=63.261802883999998 w=0] [105 a=20 f=78.692444795 w=0] [106 a=20 f=85.464446428000002 w=0] [107 a=20 f=129.50243956700001 w=0]`,
	{"burst-arrivals", "equipartition"}:                  `mk=148.64496299800001 mr=49.650373051661369 xr=96.052168421999994 mw=7.2600084674182388e-11 u=0.66485489611464132 au=0.66485489611464132 eff=0.78607052301674696 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.225839615 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=120.592867107 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=125.764286633 w=0] [4 a=78.300295773235945 f=89.662802665000001 w=0] [5 a=106.26504499614416 f=148.64496299800001 w=0] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=59.655000000000001 w=0] [102 a=20 f=68.879999999999995 w=0] [103 a=20 f=78.275000000000006 w=0] [104 a=20 f=85.268081799000001 w=0] [105 a=20 f=91.714078461 w=0] [106 a=20 f=99.098150562000001 w=0] [107 a=20 f=116.05216842199999 w=0]`,
	{"burst-arrivals", "fair-share"}:                     `mk=147.45832310399999 mr=49.100522653089932 xr=96.052168421999994 mw=7.2600084674182388e-11 u=0.67020517629444809 au=0.67020517629444809 eff=0.77314096204748683 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=118.01038866499999 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=122.05729291599999 w=0] [4 a=78.300295773235945 f=89.662802665000001 w=0] [5 a=106.26504499614416 f=147.45832310399999 w=0] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=59.655000000000001 w=0] [102 a=20 f=68.879999999999995 w=0] [103 a=20 f=78.275000000000006 w=0] [104 a=20 f=85.268081799000001 w=0] [105 a=20 f=91.714078461 w=0] [106 a=20 f=99.098150562000001 w=0] [107 a=20 f=116.05216842199999 w=0]`,
	{"burst-arrivals", "malleable-hysteresis"}:           `mk=173.38043591499999 mr=57.802397046304236 xr=153.38043591499999 mw=7.2600084674182388e-11 u=0.5700027855533264 au=0.5700027855533264 eff=0.85147358758231428 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=128.72268785 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=134.367988107 w=0] [4 a=78.300295773235945 f=91.233907372999994 w=0] [5 a=106.26504499614416 f=168.987552483 w=0] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=59.655000000000001 w=0] [102 a=20 f=68.879999999999995 w=0] [103 a=20 f=78.275000000000006 w=0] [104 a=20 f=85.280000000000001 w=0] [105 a=20 f=94.674999999999997 w=0] [106 a=20 f=114.499956371 w=0] [107 a=20 f=173.38043591499999 w=0]`,
	{"burst-arrivals", "moldable"}:                       `mk=227.958471108 mr=60.771394383661381 xr=124.8239902906229 mw=31.007809411447088 u=0.43353217343337297 au=0.43353217343337297 eff=0.68346718945727081 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=141.67625049 w=52.646496840308338] [3 a=57.565653544377085 f=182.38964383499999 w=84.110596945622916] [4 a=78.300295773235945 f=187.24507776300001 w=104.08934806176404] [5 a=106.26504499614416 f=227.958471108 w=80.980032766855857] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=46.640000000000001 w=0] [104 a=20 f=70.106666668000003 w=26.640000000000001] [105 a=20 f=75.042857144999999 w=30.600000000000001] [106 a=20 f=100.962857145 w=55.042857144999999] [107 a=20 f=113.97499999999999 w=0]`,
	{"burst-arrivals", "rigid-fcfs"}:                     `mk=214.15278939999999 mr=58.477531628447082 xr=116.57231846462292 mw=29.700066778232802 u=0.46148047713451823 au=0.46148047713451823 eff=0.62248995717435973 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=139.87119727699999 w=52.646496840308338] [3 a=57.565653544377085 f=174.13797200900001 w=82.305543732622908] [4 a=78.300295773235945 f=178.99340593700001 w=95.837676235764064] [5 a=106.26504499614416 f=214.15278939999999 w=72.72836094085585] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=46.640000000000001 w=0] [104 a=20 f=70.106666668000003 w=26.640000000000001] [105 a=20 f=75.042857144999999 w=30.600000000000001] [106 a=20 f=100.962857145 w=55.042857144999999] [107 a=20 f=113.97499999999999 w=0]`,
	{"burst-arrivals", "sjf-moldable"}:                   `mk=227.958471108 mr=55.648828752661366 xr=129.67942421862293 mw=25.885243780447087 u=0.43353217343337297 au=0.43353217343337297 eff=0.68346718945727081 unf=0 cap=0 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=146.531684418 w=57.501930768308334] [3 a=57.565653544377085 f=187.24507776300001 w=88.966030873622913] [4 a=78.300295773235945 f=105.818291073 w=22.662561371764056] [5 a=106.26504499614416 f=227.958471108 w=80.980032766855857] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=46.640000000000001 w=0] [104 a=20 f=70.106666668000003 w=26.640000000000001] [105 a=20 f=75.042857144999999 w=30.600000000000001] [106 a=20 f=100.962857145 w=55.042857144999999] [107 a=20 f=113.97499999999999 w=0]`,
	{"simultaneous-completions", "easy-backfill"}:        `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "efficiency-greedy"}:    `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "equipartition"}:        `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "fair-share"}:           `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "malleable-hysteresis"}: `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "moldable"}:             `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "rigid-fcfs"}:           `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"simultaneous-completions", "sjf-moldable"}:         `mk=32 mr=32 xr=32 mw=0 u=0.5 au=0.5 eff=1 unf=0 cap=0 lost=0 red=0 [0 a=0 f=32 w=0] [1 a=0 f=32 w=0] [2 a=0 f=32 w=0] [3 a=0 f=32 w=0]`,
	{"capacity-burst", "easy-backfill"}:                  `mk=237.39945606800001 mr=73.218007819589928 xr=139.81898513262291 mw=44.440542969375656 u=0.41629131367382821 au=0.44942053609009108 eff=0.62248995717435962 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=163.11786394500001 w=75.893163508308334] [3 a=57.565653544377085 f=197.384638677 w=105.55221040062293] [4 a=78.300295773235945 f=202.24007260499999 w=119.08434290376405] [5 a=106.26504499614416 f=237.39945606800001 w=95.975027608855839] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=73.846666667999997 w=27.206666667999997] [104 a=20 f=83.466666668000002 w=40] [105 a=20 f=98.289523813000002 w=53.846666667999997] [106 a=20 f=124.209523813 w=78.289523813000002] [107 a=20 f=140.29499999999999 w=26.32]`,
	{"capacity-burst", "efficiency-greedy"}:              `mk=155.07022200399999 mr=60.941335105089941 xr=122.02612500000001 mw=7.2600084674182388e-11 u=0.6373069578081263 au=0.71837734934473296 eff=0.81796472609617299 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=142.10268935600001 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=145.047107955 w=0] [4 a=78.300295773235945 f=98.958034201999993 w=0] [5 a=106.26504499614416 f=155.07022200399999 w=0] [100 a=20 f=52.794085197000001 w=0] [101 a=20 f=79.055000000000007 w=0] [102 a=20 f=88.079999999999998 w=0] [103 a=20 f=94.945327341999999 w=0] [104 a=20 f=88.720121274999997 w=0] [105 a=20 f=100.473236128 w=0] [106 a=20 f=105.230712463 w=0] [107 a=20 f=142.02612500000001 w=0]`,
	{"capacity-burst", "equipartition"}:                  `mk=159.54192291800001 mr=63.365414920161371 xr=126.31299999999999 mw=7.2600084674182388e-11 u=0.61944427912401689 au=0.69576171176626811 eff=0.83215887310341297 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.225839615 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=133.12697051699999 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=139.80398052000001 w=0] [4 a=78.300295773235945 f=91.233907372999994 w=0] [5 a=106.26504499614416 f=159.54192291800001 w=0] [100 a=20 f=52.794085197000001 w=0] [101 a=20 f=79.055000000000007 w=0] [102 a=20 f=88.079999999999998 w=0] [103 a=20 f=97.275000000000006 w=0] [104 a=20 f=102.695782532 w=0] [105 a=20 f=109.052342035 w=0] [106 a=20 f=127.24599371399999 w=0] [107 a=20 f=146.31299999999999 w=0]`,
	{"capacity-burst", "fair-share"}:                     `mk=156.35502094500001 mr=62.788873247304231 xr=126.31299999999999 mw=7.2600084674182388e-11 u=0.63207008533972087 au=0.71173034118186596 eff=0.81376301580830135 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=132.47374452099999 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=135.79431859600001 w=0] [4 a=78.300295773235945 f=91.233907372999994 w=0] [5 a=106.26504499614416 f=156.35502094500001 w=0] [100 a=20 f=52.794085197000001 w=0] [101 a=20 f=79.055000000000007 w=0] [102 a=20 f=88.079999999999998 w=0] [103 a=20 f=97.275000000000006 w=0] [104 a=20 f=102.695782532 w=0] [105 a=20 f=109.052342035 w=0] [106 a=20 f=127.24599371399999 w=0] [107 a=20 f=146.31299999999999 w=0]`,
	{"capacity-burst", "malleable-hysteresis"}:           `mk=199 mr=89.653563442447094 xr=179 mw=7.2600084674182388e-11 u=0.49661975593969848 au=0.54450320348209358 eff=0.91486877485266405 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=174.05644702500001 w=3.0834002018309548e-10] [3 a=57.565653544377085 f=176.721775057 w=0] [4 a=78.300295773235945 f=91.233907372999994 w=0] [5 a=106.26504499614416 f=192.57670965899999 w=0] [100 a=20 f=52.794085197000001 w=0] [101 a=20 f=97 w=0] [102 a=20 f=114 w=0] [103 a=20 f=131 w=0] [104 a=20 f=148 w=0] [105 a=20 f=154.00666666699999 w=0] [106 a=20 f=164.08426666700001 w=0] [107 a=20 f=199 w=0]`,
	{"capacity-burst", "moldable"}:                       `mk=251.20513777599999 mr=75.511870574804234 xr=148.07065695862292 mw=45.748285602589945 u=0.39341285893652572 au=0.42287188194691422 eff=0.6834671894572707 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=164.92291715799999 w=75.893163508308334] [3 a=57.565653544377085 f=205.636310503 w=107.35726361362291] [4 a=78.300295773235945 f=210.491744431 w=127.33601472976406] [5 a=106.26504499614416 f=251.20513777599999 w=104.22669943485585] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=73.846666667999997 w=27.206666667999997] [104 a=20 f=83.466666668000002 w=40] [105 a=20 f=98.289523813000002 w=53.846666667999997] [106 a=20 f=124.209523813 w=78.289523813000002] [107 a=20 f=140.29499999999999 w=26.32]`,
	{"capacity-burst", "rigid-fcfs"}:                     `mk=237.39945606800001 mr=73.218007819589928 xr=139.81898513262291 mw=44.440542969375656 u=0.41629131367382821 au=0.44942053609009108 eff=0.62248995717435962 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=163.11786394500001 w=75.893163508308334] [3 a=57.565653544377085 f=197.384638677 w=105.55221040062293] [4 a=78.300295773235945 f=202.24007260499999 w=119.08434290376405] [5 a=106.26504499614416 f=237.39945606800001 w=95.975027608855839] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=73.846666667999997 w=27.206666667999997] [104 a=20 f=83.466666668000002 w=40] [105 a=20 f=98.289523813000002 w=53.846666667999997] [106 a=20 f=124.209523813 w=78.289523813000002] [107 a=20 f=140.29499999999999 w=26.32]`,
	{"capacity-burst", "sjf-moldable"}:                   `mk=251.20513777599999 mr=68.88469308151852 xr=152.92609088662292 mw=39.121108109304224 u=0.39341285893652572 au=0.42287188194691422 eff=0.68346718945727036 unf=0 cap=2 lost=0 red=0 [0 a=4.8901202307461373 f=10.004046088000001 w=2.5386270863236859e-10] [1 a=5.9363882055458017 f=11.945847516000001 w=4.5419845662308944e-10] [2 a=48.316360304691663 f=169.77835108599999 w=80.74859743630833] [3 a=57.565653544377085 f=210.491744431 w=112.2126975416229] [4 a=78.300295773235945 f=103.144957741 w=19.989228039764058] [5 a=106.26504499614416 f=251.20513777599999 w=104.22669943485585] [100 a=20 f=50.600000000000001 w=0] [101 a=20 f=47.206666667999997 w=0] [102 a=20 f=46.32 w=0] [103 a=20 f=73.846666667999997 w=27.206666667999997] [104 a=20 f=83.466666668000002 w=40] [105 a=20 f=98.289523813000002 w=53.846666667999997] [106 a=20 f=129.064957741 w=83.144957740999999] [107 a=20 f=140.29499999999999 w=26.32]`,
}

// TestCoalescingGolden: equal-instant bursts — k same-instant arrivals,
// simultaneous phase completions, a capacity drop colliding with an
// arrival burst — must produce byte-identical Results to the
// pre-coalescing engine, for every registered policy.
func TestCoalescingGolden(t *testing.T) {
	for _, tc := range []struct {
		name    string
		jobs    func() []*Job
		changes []availability.Change
	}{
		{"burst-arrivals", burstWorkload, nil},
		{"simultaneous-completions", exactWorkload, nil},
		{"capacity-burst", burstWorkload, capacityBurstChanges()},
	} {
		for _, policy := range sched.Names() {
			want, ok := coalesceGoldens[burstKey{tc.name, policy}]
			if !ok {
				t.Errorf("%s/%s: no golden pinned — capture one with fingerprintResult", tc.name, policy)
				continue
			}
			got := fingerprintResult(runBurstCase(t, policy, tc.jobs(), tc.changes))
			if got != want {
				t.Errorf("%s/%s: result drifted from the pre-coalescing engine\ngot:  %s\nwant: %s",
					tc.name, policy, got, want)
			}
		}
	}
}

// invokeCountProbe counts scheduler invocations per instant.
type invokeCountProbe struct {
	byInstant map[float64]int
	order     []float64
}

func (p *invokeCountProbe) JobArrive(t float64, jobID int)                                        {}
func (p *invokeCountProbe) JobFirstStart(t float64, jobID int)                                    {}
func (p *invokeCountProbe) PhaseDone(t float64, jobID, phase, phases int)                         {}
func (p *invokeCountProbe) JobFinish(t float64, jobID int)                                        {}
func (p *invokeCountProbe) CapacityNotice(t float64, target int)                                  {}
func (p *invokeCountProbe) CapacityChange(t float64, capacity int)                                {}
func (p *invokeCountProbe) Preempt(t float64, jobID int)                                          {}
func (p *invokeCountProbe) ReconfigCharge(t float64, jobID int, k obs.ChargeKind, amount float64) {}
func (p *invokeCountProbe) TimeSample(s obs.Sample)                                               {}

func (p *invokeCountProbe) SchedulerInvoke(t float64, inv obs.SchedulerInvocation) {
	if p.byInstant == nil {
		p.byInstant = map[float64]int{}
	}
	if p.byInstant[t] == 0 {
		p.order = append(p.order, t)
	}
	p.byInstant[t]++
}

// TestSchedulerInvokePerDirtyInstant pins the coalescing contract: every
// instant with at least one job or capacity event triggers EXACTLY one
// scheduler invocation — a burst of eight same-instant arrivals costs
// one policy call, not eight.
func TestSchedulerInvokePerDirtyInstant(t *testing.T) {
	for _, policy := range sched.Names() {
		probe := &invokeCountProbe{}
		p, err := sched.New(policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(16, p, burstWorkload())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.SetProbe(probe); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		for _, at := range probe.order {
			if n := probe.byInstant[at]; n != 1 {
				t.Errorf("%s: %d scheduler invocations at t=%g, want exactly 1", policy, n, at)
			}
		}
		if probe.byInstant[20] != 1 {
			t.Errorf("%s: burst instant t=20 saw %d invocations, want 1", policy, probe.byInstant[20])
		}
	}
}

// TestReallocationsCoalescedSemantics pins Result.Reallocations under
// coalescing: per-job allocation deltas are counted once per coalesced
// invocation, so two identical jobs arriving together on four nodes under
// equipartition cost exactly two reallocations (0→2 each) — not the three
// of the per-event engine (0→4, 4→2, 0→2).
func TestReallocationsCoalescedSemantics(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Arrival: 0, Phases: SyntheticProfile(1, 8, 0), MaxNodes: 4},
		{ID: 1, Arrival: 0, Phases: SyntheticProfile(1, 8, 0), MaxNodes: 4},
	}
	sim, err := NewSim(4, sched.Equipartition{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Reallocations != 2 {
		t.Errorf("Reallocations = %d, want 2 (one coalesced invocation admitting both jobs)", res.Reallocations)
	}
	if res.Unfinished != 0 {
		t.Errorf("unfinished = %d, want 0", res.Unfinished)
	}
}

// burstSteadySim builds a warmed-up simulation whose every instant is a
// full burst: 16 identical exact-arithmetic jobs complete a phase at the
// same nanosecond, forever — the coalesced hot path under maximum
// same-instant pressure.
func burstSteadySim(tb testing.TB, policyName string) *Sim {
	tb.Helper()
	policy, err := sched.New(policyName, nil)
	if err != nil {
		tb.Fatal(err)
	}
	jobs := make([]*Job, 16)
	for i := range jobs {
		jobs[i] = &Job{
			ID:       i,
			Arrival:  0,
			Phases:   SyntheticProfile(512, 4096, 0),
			MaxNodes: 2,
		}
	}
	sim, err := NewSim(32, policy, jobs)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if !sim.ProcessNextEvent() {
			tb.Fatal("workload drained during warm-up")
		}
	}
	return sim
}

// TestProcessNextEventZeroAllocBurstSteadyState extends the
// zero-allocation gate to the coalesced burst path: steady-state
// simultaneous phase completions — mark-dirty, deferred flush, single
// scheduler invocation — must not allocate either, for every policy.
func TestProcessNextEventZeroAllocBurstSteadyState(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sim := burstSteadySim(t, name)
			allocs := testing.AllocsPerRun(200, func() {
				if !sim.ProcessNextEvent() {
					t.Fatal("workload drained mid-measurement")
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocations per steady-state burst event, want 0", name, allocs)
			}
		})
	}
}
