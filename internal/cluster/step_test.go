package cluster

import (
	"math"
	"reflect"
	"testing"

	"dpsim/internal/eventq"
	"dpsim/internal/sched"
)

// TestPoissonWorkloadDeterminism: the same seed must yield a bit-identical
// workload; a different seed must not.
func TestPoissonWorkloadDeterminism(t *testing.T) {
	a := PoissonWorkload(30, 16, 8, 42)
	b := PoissonWorkload(30, 16, 8, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].MaxNodes != b[i].MaxNodes {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !reflect.DeepEqual(a[i].Phases, b[i].Phases) {
			t.Fatalf("job %d phases differ", i)
		}
	}
	c := PoissonWorkload(30, 16, 8, 43)
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival sequences")
	}
}

// stepRun drives a Sim through the step primitives only and returns the
// summary — the open-loop path with nothing injected.
func stepRun(s *Sim) Result {
	for {
		if _, ok := s.PeekNextEventTime(); !ok {
			break
		}
		s.ProcessNextEvent()
	}
	return s.Result()
}

// TestStepPrimitivesReproduceRun: the stepped event loop must produce the
// exact Result that the monolithic Run produces for the same workload.
func TestStepPrimitivesReproduceRun(t *testing.T) {
	for _, name := range sched.Names() {
		// Fresh policy instances per sim: policies may hold per-run state.
		p1, err := sched.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := sched.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		wl1 := PoissonWorkload(25, 12, 6, 7)
		wl2 := PoissonWorkload(25, 12, 6, 7)
		s1, err := NewSim(12, p1, wl1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSim(12, p2, wl2)
		if err != nil {
			t.Fatal(err)
		}
		r1 := s1.Run()
		r2 := stepRun(s2)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s: stepped result differs from Run:\n%+v\nvs\n%+v", name, r1, r2)
		}
	}
}

// TestInjectMatchesClosedRun: feeding the same jobs through Inject as the
// simulation progresses must reproduce the closed run bit-for-bit.
func TestInjectMatchesClosedRun(t *testing.T) {
	closedJobs := PoissonWorkload(20, 8, 5, 11)
	openJobs := PoissonWorkload(20, 8, 5, 11)

	cs, err := NewSim(8, &sched.EfficiencyGreedy{}, closedJobs)
	if err != nil {
		t.Fatal(err)
	}
	want := cs.Run()

	os, err := NewSim(8, &sched.EfficiencyGreedy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		et, evOK := os.PeekNextEventTime()
		if i < len(openJobs) {
			at := eventq.Time(eventq.DurationOf(openJobs[i].Arrival))
			if !evOK || at <= et {
				if err := os.Inject(openJobs[i]); err != nil {
					t.Fatal(err)
				}
				i++
				continue
			}
		}
		if !evOK {
			break
		}
		os.ProcessNextEvent()
	}
	got := os.Result()
	if len(got.PerJob) != len(want.PerJob) {
		t.Fatalf("open run finished %d jobs, closed %d", len(got.PerJob), len(want.PerJob))
	}
	for i := range want.PerJob {
		if math.Abs(got.PerJob[i].Finish-want.PerJob[i].Finish) > 1e-9 {
			t.Fatalf("job %d finish %v (open) vs %v (closed)", i, got.PerJob[i].Finish, want.PerJob[i].Finish)
		}
	}
	if math.Abs(got.Makespan-want.Makespan) > 1e-9 {
		t.Fatalf("makespan %v vs %v", got.Makespan, want.Makespan)
	}
}

// TestInjectTieBreak: an arrival injected at exactly the instant of a
// pending internal event must behave as if it had been scheduled up
// front — the driver protocol injects on at <= next-event-time, so the
// arrival fires before the coinciding phase completion, exactly like a
// closed run where same-instant events fire in scheduling order (arrivals
// are scheduled first).
func TestInjectTieBreak(t *testing.T) {
	// Job 0: two 40-work-second phases on 8 nodes under equipartition →
	// its phase boundary fires at exactly t=5, and job 1 arrives at
	// exactly t=5 to collide with it.
	mkJobs := func() []*Job {
		a := singleJob(80, 2, 8) // two phases: boundary event at t=5
		b := singleJob(40, 1, 8)
		b.ID, b.Arrival = 1, 5 // collides with a's phase boundary
		return []*Job{a, b}
	}

	closed, err := NewSim(8, sched.Equipartition{}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	want := closed.Run()

	open, err := NewSim(8, sched.Equipartition{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs := mkJobs()
	i := 0
	injectedAtTie := false
	for {
		et, evOK := open.PeekNextEventTime()
		if i < len(jobs) {
			at := eventq.Time(eventq.DurationOf(jobs[i].Arrival))
			if !evOK || at <= et {
				if evOK && at == et {
					injectedAtTie = true
				}
				if err := open.Inject(jobs[i]); err != nil {
					t.Fatal(err)
				}
				i++
				continue
			}
		}
		if !evOK {
			break
		}
		open.ProcessNextEvent()
	}
	if !injectedAtTie {
		t.Fatal("test did not exercise the tie: arrival never coincided with a pending event")
	}
	got := open.Result()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie-broken open run differs from closed run:\n%+v\nvs\n%+v", got, want)
	}
}

// TestInjectRejectsPastArrival: injecting behind the clock is an error,
// not a silent causality violation.
func TestInjectRejectsPastArrival(t *testing.T) {
	j1 := singleJob(10, 2, 4)
	sim, err := NewSim(4, sched.Equipartition{}, []*Job{j1})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the run so the clock sits at the makespan.
	sim.Run()
	late := singleJob(10, 2, 4)
	late.ID = 1
	late.Arrival = 0.5
	if err := sim.Inject(late); err == nil {
		t.Fatal("past-arrival injection accepted")
	}
}

// TestInjectValidation mirrors NewSim's checks for open arrivals.
func TestInjectValidation(t *testing.T) {
	sim, err := NewSim(4, &sched.Rigid{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(&Job{ID: 0}); err == nil {
		t.Fatal("phaseless job accepted")
	}
	big := singleJob(4, 1, 99)
	if err := sim.Inject(big); err != nil {
		t.Fatal(err)
	}
	if big.MaxNodes != 4 {
		t.Fatalf("MaxNodes not clamped: %d", big.MaxNodes)
	}
}
