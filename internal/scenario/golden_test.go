package scenario

import "testing"

// Golden values produced by the scenario layer BEFORE the availability
// subsystem existed (PR 1 state), %.17g. A scenario with no availability
// block and no reconfig block must reproduce them bit-for-bit through
// RunCell — the whole declarative path, not just the simulator core.
var goldenCells = []struct {
	scheduler                      string
	makespan, meanResp             float64
	utilization, meanEff, slowdown float64
}{
	{"rigid-fcfs", 282.99615706600002, 76.115414918386094, 0.58125731054403462, 0.73313404224908729, 62.872780381944168},
	{"moldable", 285.36779609600001, 77.375887942163857, 0.57642658842675942, 0.73956272677890744, 64.245563099193717},
	{"equipartition", 252.60591229600001, 69.772806487774972, 0.65118659993091987, 0.9007664729149254, 46.859591713070238},
	{"efficiency-greedy", 249.90429024100001, 62.876720903330515, 0.65822633533761199, 0.86746014198780474, 41.32079512033517},
}

func TestGoldenScenarioBackwardCompat(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "golden",
		"nodes": [16],
		"seed": 99,
		"jobs": 18,
		"mix": [
			{"kind": "lu", "weight": 1},
			{"kind": "synthetic", "phases": 5, "work_s": 180, "comm": 0.04, "cv": 0.3, "weight": 2}
		],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 8}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	for i, sched := range spec.Schedulers {
		want := goldenCells[i]
		if sched != want.scheduler {
			t.Fatalf("scheduler order changed: %s vs golden %s", sched, want.scheduler)
		}
		run, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, Scheduler: sched, ArrivalIdx: 0, Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		r := run.Result
		var sd float64
		for _, s := range run.Slowdowns {
			sd += s
		}
		if r.Makespan != want.makespan {
			t.Errorf("%s: makespan %.17g, golden %.17g", sched, r.Makespan, want.makespan)
		}
		if r.MeanResponse != want.meanResp {
			t.Errorf("%s: mean response %.17g, golden %.17g", sched, r.MeanResponse, want.meanResp)
		}
		if r.Utilization != want.utilization {
			t.Errorf("%s: utilization %.17g, golden %.17g", sched, r.Utilization, want.utilization)
		}
		if r.MeanAllocEfficiency != want.meanEff {
			t.Errorf("%s: mean efficiency %.17g, golden %.17g", sched, r.MeanAllocEfficiency, want.meanEff)
		}
		if sd != want.slowdown {
			t.Errorf("%s: slowdown sum %.17g, golden %.17g", sched, sd, want.slowdown)
		}
	}
}
