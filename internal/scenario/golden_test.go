package scenario

import "testing"

// Golden values produced by the scenario layer BEFORE the availability
// subsystem existed (PR 1 state), %.17g. A scenario with no availability
// block and no reconfig block must reproduce them bit-for-bit through
// RunCell — the whole declarative path, not just the simulator core —
// and the extraction of the policies into internal/sched (PR 3) must be
// bit-invisible too, which is why every scheduler is resolved by name
// through the registry here.
var goldenCells = []struct {
	scheduler                      string
	makespan, meanResp             float64
	utilization, meanEff, slowdown float64
}{
	{"rigid-fcfs", 282.99615706600002, 76.115414918386094, 0.58125731054403462, 0.73313404224908729, 62.872780381944168},
	{"moldable", 285.36779609600001, 77.375887942163857, 0.57642658842675942, 0.73956272677890744, 64.245563099193717},
	{"equipartition", 252.60591229600001, 69.772806487774972, 0.65118659993091987, 0.9007664729149254, 46.859591713070238},
	{"efficiency-greedy", 249.90429024100001, 62.876720903330515, 0.65822633533761199, 0.86746014198780474, 41.32079512033517},

	// The four policies below shipped with the sched extraction (PR 3);
	// their goldens pin the implementations at introduction.
	{"easy-backfill", 328.32044223999998, 84.774951596830519, 0.5010153617855958, 0.73313404224908763, 53.589689830105023},
	{"sjf-moldable", 313.53699291599997, 85.307720673719416, 0.52463852389676402, 0.73956272677890744, 71.399594236921828},
	{"fair-share", 249.90429024100001, 62.791820086830526, 0.65822633533761199, 0.86450787791252592, 40.553466956245387},
	{"malleable-hysteresis", 324.79856625100001, 81.823073533163864, 0.50644800267794876, 0.89137308450724162, 53.18770764183401},
}

const goldenSpec = `{
	"name": "golden",
	"nodes": [16],
	"seed": 99,
	"jobs": 18,
	"mix": [
		{"kind": "lu", "weight": 1},
		{"kind": "synthetic", "phases": 5, "work_s": 180, "comm": 0.04, "cv": 0.3, "weight": 2}
	],
	"arrivals": {"process": "poisson", "mean_interarrival_s": 8}
}`

func TestGoldenScenarioBackwardCompat(t *testing.T) {
	spec, err := Parse([]byte(goldenSpec))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range goldenCells {
		run, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, Scheduler: want.scheduler, ArrivalIdx: 0, Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		r := run.Result
		var sd float64
		for _, s := range run.Slowdowns {
			sd += s
		}
		if r.Makespan != want.makespan {
			t.Errorf("%s: makespan %.17g, golden %.17g", want.scheduler, r.Makespan, want.makespan)
		}
		if r.MeanResponse != want.meanResp {
			t.Errorf("%s: mean response %.17g, golden %.17g", want.scheduler, r.MeanResponse, want.meanResp)
		}
		if r.Utilization != want.utilization {
			t.Errorf("%s: utilization %.17g, golden %.17g", want.scheduler, r.Utilization, want.utilization)
		}
		if r.MeanAllocEfficiency != want.meanEff {
			t.Errorf("%s: mean efficiency %.17g, golden %.17g", want.scheduler, r.MeanAllocEfficiency, want.meanEff)
		}
		if sd != want.slowdown {
			t.Errorf("%s: slowdown sum %.17g, golden %.17g", want.scheduler, sd, want.slowdown)
		}
	}
}
