package scenario

import (
	"path/filepath"
	"sort"
	"testing"
)

// TestExampleScenarios loads every shipped scenario file and runs one
// cheap cell of each — the examples must stay executable as the schema
// evolves, and the volatile-capacity family must actually produce
// capacity events.
func TestExampleScenarios(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) < 8 {
		t.Fatalf("only %d example scenarios found", len(paths))
	}
	volatile := map[string]bool{"failures": false, "spot": false, "captrace": false, "volatile": false}
	for _, path := range paths {
		spec, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		availIdx := -1
		if len(spec.Availability) > 0 {
			availIdx = len(spec.Availability) - 1 // the most dynamic axis entry
		}
		params := CellParams{
			Nodes: spec.Nodes[0], Load: spec.Loads[0],
			ArrivalIdx: 0, AvailIdx: availIdx, Seed: spec.Seed,
		}
		if spec.Federation == nil {
			// Federated scenarios have no scheduler axis — RunCell routes
			// them through the federation orchestrator instead.
			params.Scheduler = spec.Schedulers[0].Label()
		}
		run, err := spec.RunCell(params)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(run.Result.PerJob) == 0 {
			t.Fatalf("%s: no jobs finished", path)
		}
		if _, ok := volatile[spec.Name]; ok {
			volatile[spec.Name] = run.Result.CapacityEvents > 0
		}
	}
	for name, sawEvents := range volatile {
		if !sawEvents {
			t.Errorf("volatile-capacity scenario %q missing or produced no capacity events", name)
		}
	}
}
