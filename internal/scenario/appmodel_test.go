package scenario

import (
	"fmt"
	"strings"
	"testing"
)

const appmodelSpecJSON = `{
	"name": "appmodel-axis",
	"nodes": [16],
	"seed": 42,
	"jobs": 12,
	"mix": [
		{"kind": "lu", "weight": 1},
		{"kind": "synthetic", "phases": 4, "work_s": 150, "comm": 0.05, "cv": 0.2, "weight": 1},
		{"kind": "stencil", "grid_n": 648, "iterations": 6, "weight": 1}
	],
	"arrivals": {"process": "poisson", "mean_interarrival_s": 8},
	"schedulers": ["equipartition"],
	"appmodels": ["mix", "amdahl(f=0.1)", {"name": "downey", "params": {"A": 12, "sigma": 0.5}}]
}`

// TestAppModelAxisParses: the appmodels block accepts bare names, spec
// strings and {"name","params"} objects, and labels round-trip as specs.
func TestAppModelAxisParses(t *testing.T) {
	spec, err := Parse([]byte(appmodelSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.AppModels) != 3 {
		t.Fatalf("appmodels = %d", len(spec.AppModels))
	}
	want := []string{"mix", "amdahl(f=0.1)", "downey(A=12,sigma=0.5)"}
	for i, w := range want {
		if got := spec.AppModels[i].Label(); got != w {
			t.Errorf("appmodels[%d].Label() = %q, want %q", i, got, w)
		}
	}
	if !spec.AppModels[0].IsMix() {
		t.Error("first entry not recognized as the mix sentinel")
	}
}

// TestAppModelOverrideChangesOutcome: an axis override must actually
// change the simulated timing (same seed, same workload, different
// speedup response), while the same cell twice stays bit-identical.
func TestAppModelOverrideChangesOutcome(t *testing.T) {
	spec, err := Parse([]byte(appmodelSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	runIdx := func(idx int) string {
		run, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, AppModelIdx: idx, Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", run.Result)
	}
	if runIdx(1) != runIdx(1) {
		t.Error("same appmodel cell not deterministic")
	}
	if runIdx(0) == runIdx(1) || runIdx(1) == runIdx(2) {
		t.Error("distinct appmodels produced identical results")
	}
}

// TestMixSentinelBitIdentical: selecting the "mix" axis entry, forcing
// the native baseline with AppModelIdx -1, and running a spec with no
// appmodels block at all must all produce bit-identical results — the
// axis's zero point is exactly the historical simulator.
func TestMixSentinelBitIdentical(t *testing.T) {
	withAxis, err := Parse([]byte(appmodelSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	noAxis, err := Parse([]byte(strings.Replace(appmodelSpecJSON,
		`"appmodels": ["mix", "amdahl(f=0.1)", {"name": "downey", "params": {"A": 12, "sigma": 0.5}}]`,
		`"appmodels": []`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(s *Spec, p CellParams) string {
		p.Nodes, p.Load, p.Seed = 16, 1, s.Seed
		r, err := s.RunCell(p)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", r.Result)
	}
	base := run(noAxis, CellParams{})
	if got := run(withAxis, CellParams{AppModelIdx: 0}); got != base {
		t.Error("mix axis entry diverged from the axis-free baseline")
	}
	if got := run(withAxis, CellParams{AppModelIdx: -1}); got != base {
		t.Error("AppModelIdx -1 diverged from the axis-free baseline")
	}
	if got := run(withAxis, CellParams{AppModel: "mix"}); got != base {
		t.Error("explicit \"mix\" spec diverged from the axis-free baseline")
	}
}

// TestAppModelSpecStringSelectsModel: CellParams.AppModel spec strings
// resolve like scheduler spec strings, and the same model via index or
// string is bit-identical.
func TestAppModelSpecStringSelectsModel(t *testing.T) {
	spec, err := Parse([]byte(appmodelSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	byIdx, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, AppModelIdx: 1, Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	bySpec, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, AppModel: "amdahl(f=0.1)", Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", byIdx.Result) != fmt.Sprintf("%+v", bySpec.Result) {
		t.Error("index and spec-string selection diverged")
	}
	if _, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, AppModel: "amdahl(nope=1)", Seed: 1}); err == nil {
		t.Error("bad model spec accepted")
	}
	if _, err := spec.RunCell(CellParams{Nodes: 16, Load: 1, AppModelIdx: 7, Seed: 1}); err == nil {
		t.Error("out-of-range appmodel index accepted")
	}
}

// TestAppModelValidation: unknown names and parameterized sentinels must
// fail at Validate with the block's index in the message.
func TestAppModelValidation(t *testing.T) {
	bad := strings.Replace(appmodelSpecJSON, `"amdahl(f=0.1)"`, `"warp-drive"`, 1)
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "appmodels[1]") {
		t.Errorf("unknown model error = %v", err)
	}
	bad = strings.Replace(appmodelSpecJSON, `"appmodels": ["mix"`,
		`"appmodels": [{"name": "mix", "params": {"f": 1}}`, 1)
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Errorf("parameterized mix error = %v", err)
	}
}

// TestParseAppModelList: the CLI list splitter is paren-aware and
// rejects empty entries.
func TestParseAppModelList(t *testing.T) {
	list, err := ParseAppModelList("mix,amdahl(f=0.1),downey(A=8,sigma=2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[2].Label() != "downey(A=8,sigma=2)" {
		t.Fatalf("list = %+v", list)
	}
	for _, arg := range []string{"", "a,,b", "amdahl(f=0.1"} {
		if _, err := ParseAppModelList(arg); err == nil {
			t.Errorf("ParseAppModelList(%q) accepted", arg)
		}
	}
	spec, err := Parse([]byte(appmodelSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.ApplyAppModelOverride("roofline(sat=4),fixed"); err != nil {
		t.Fatal(err)
	}
	if len(spec.AppModels) != 2 || spec.AppModels[0].Label() != "roofline(sat=4)" {
		t.Fatalf("override = %+v", spec.AppModels)
	}
	if err := spec.ApplyAppModelOverride("not-a-model"); err == nil {
		t.Error("override with unknown model accepted")
	}
}
