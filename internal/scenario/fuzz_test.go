package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzParse: arbitrary bytes fed to the scenario decoder must either
// parse into a validated Spec or return an error — never panic. The
// decoder is the trust boundary for user-supplied scenario files, so
// malformed numbers, truncated JSON, wrong-typed fields, and hostile
// scheduler/availability blocks all land here.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"name":"min","nodes":[4],"seed":1,"jobs":2,` +
		`"mix":[{"kind":"synthetic","phases":1,"work_s":1}],` +
		`"arrivals":{"process":"closed"}}`))
	f.Add([]byte(`{"nodes":[8],"seed":3,"jobs":4,` +
		`"schedulers":["equipartition",{"name":"malleable-hysteresis","params":{"epoch_s":45,"min_delta":2}}],` +
		`"mix":[{"kind":"lu","job_weight":2}],` +
		`"arrivals":{"process":"poisson","mean_interarrival_s":5}}`))
	f.Add([]byte(`{"nodes":[0]}`))
	f.Add([]byte(`{"nodes":[4],"jobs":1,"mix":[{"kind":"lu","n":100,"r":33}],"arrivals":{"process":"closed"}}`))
	f.Add([]byte(`{"nodes":[4],"arrivals":{"process":"diurnal","mean_interarrival_s":1e308,"period_s":-1}}`))
	f.Add([]byte(`[`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		// A spec that validated must support the cheap derived
		// operations without panicking either.
		for i := range spec.Schedulers {
			if spec.Schedulers[i].Label() == "" {
				t.Fatalf("validated scheduler %d has empty label", i)
			}
			if _, err := spec.Schedulers[i].New(); err != nil {
				t.Fatalf("validated scheduler %d does not construct: %v", i, err)
			}
		}
		for i := range spec.Arrivals {
			_ = spec.Arrivals[i].Label()
		}
	})
}

// FuzzObserve hammers the scenario's "observe" block: the fuzz input is
// spliced in as the block's JSON value inside an otherwise-valid
// scenario. Decoding must never panic, a spec that validates must carry
// a usable observe config, and a block that decodes but fails
// validation must produce an error naming the offending observe.* key.
func FuzzObserve(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"sample_dt_s":0.5,"trace":true,"timeseries":true}`),
		[]byte(`{"sample_dt_s":-1}`),
		[]byte(`{"timeseries":true}`),
		[]byte(`{"max_samples":-3,"max_spans":-1,"max_events":-9}`),
		[]byte(`{"sample_dt_s":1e308,"max_samples":2147483647}`),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte(`[`),
		[]byte(`"trace"`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, block []byte) {
		data := []byte(`{"name":"fz","nodes":[4],"seed":1,"jobs":2,` +
			`"mix":[{"kind":"synthetic","phases":1,"work_s":1}],` +
			`"arrivals":{"process":"closed"},` +
			`"observe":` + string(block) + `}`)
		spec, err := Parse(data)
		if err != nil {
			// A block that decodes on its own but fails validation must
			// be reported against its JSON key, not a generic message.
			var o ObserveSpec
			if json.Unmarshal(block, &o) == nil && o.validate() != nil &&
				!strings.Contains(err.Error(), "observe.") {
				t.Fatalf("invalid observe block rejected without naming a key: %v", err)
			}
			return
		}
		if spec.Observe != nil {
			if err := spec.Observe.validate(); err != nil {
				t.Fatalf("validated spec carries invalid observe block: %v", err)
			}
			if cfg := spec.Observe.RecorderConfig("fz"); cfg.Label != "fz" {
				t.Fatalf("recorder config lost its label: %+v", cfg)
			}
		}
	})
}
