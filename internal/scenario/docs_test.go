package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// docJSONBlocks extracts the fenced ```json code blocks of a markdown
// file (```jsonc blocks are illustrative fragments and skipped).
func docJSONBlocks(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```json" {
			continue
		}
		var b strings.Builder
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			b.WriteString(lines[i])
			b.WriteByte('\n')
		}
		blocks = append(blocks, b.String())
	}
	return blocks
}

// TestScenarioDocExamplesParse: every ```json block in docs/scenario.md
// must be a complete scenario that parses and validates — documentation
// examples may not drift from the schema.
func TestScenarioDocExamplesParse(t *testing.T) {
	doc := filepath.Join("..", "..", "docs", "scenario.md")
	blocks := docJSONBlocks(t, doc)
	if len(blocks) < 5 {
		t.Fatalf("only %d json examples found in %s", len(blocks), doc)
	}
	for i, block := range blocks {
		if _, err := Parse([]byte(block)); err != nil {
			t.Errorf("docs/scenario.md example %d does not validate: %v\n%s", i, err, block)
		}
	}
}

// TestFederationDocExamplesParse: every ```json block in
// docs/federation.md must be a complete federated scenario that parses,
// validates and actually declares a federation block. Lives here (not in
// internal/federation) because scenario imports federation.
func TestFederationDocExamplesParse(t *testing.T) {
	doc := filepath.Join("..", "..", "docs", "federation.md")
	blocks := docJSONBlocks(t, doc)
	if len(blocks) == 0 {
		t.Fatalf("no json examples found in %s", doc)
	}
	for i, block := range blocks {
		spec, err := Parse([]byte(block))
		if err != nil {
			t.Errorf("docs/federation.md example %d does not validate: %v\n%s", i, err, block)
			continue
		}
		if spec.Federation == nil {
			t.Errorf("docs/federation.md example %d has no federation block", i)
		}
	}
}

// jsonKeys collects every object key of a decoded JSON value,
// recursively.
func jsonKeys(v any, into map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			into[k] = true
			jsonKeys(sub, into)
		}
	case []any:
		for _, sub := range x {
			jsonKeys(sub, into)
		}
	}
}

// TestScenarioDocCoversExampleKeys: every key appearing in any shipped
// example scenario must be mentioned in docs/scenario.md (backticked or
// inside a JSON example) — adding a schema field to an example without
// documenting it fails CI.
func TestScenarioDocCoversExampleKeys(t *testing.T) {
	docData, err := os.ReadFile(filepath.Join("..", "..", "docs", "scenario.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docData)
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scenarios found")
	}
	missing := make(map[string][]string)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		keys := make(map[string]bool)
		jsonKeys(v, keys)
		for key := range keys {
			if !strings.Contains(doc, "`"+key+"`") && !strings.Contains(doc, fmt.Sprintf("%q", key)) {
				missing[key] = append(missing[key], filepath.Base(path))
			}
		}
	}
	var keys []string
	for k := range missing {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Errorf("key %q (used by %v) is not documented in docs/scenario.md", k, missing[k])
	}
}
