package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"dpsim/internal/appmodel"
	"dpsim/internal/cluster"
	"dpsim/internal/rng"
	"dpsim/internal/trace"
)

// arrivalClock yields the absolute instants of an arrival process, one per
// call, consuming randomness only from the passed stream. Exhausted clocks
// return +Inf.
type arrivalClock interface {
	next(r *rng.Source) float64
}

// closedClock releases jobs at explicit instants, or all at t=0 when no
// instants are given (the classic closed batch; the stream's job count
// bounds it).
type closedClock struct {
	times []float64
	i     int
	batch bool
}

func (c *closedClock) next(r *rng.Source) float64 {
	if c.batch {
		return 0
	}
	if c.i >= len(c.times) {
		return math.Inf(1)
	}
	t := c.times[c.i]
	c.i++
	return t
}

// poissonClock is a homogeneous Poisson process: i.i.d. exponential
// inter-arrival times.
type poissonClock struct {
	t, mean float64
}

func (c *poissonClock) next(r *rng.Source) float64 {
	c.t += r.Exp(c.mean)
	return c.t
}

// mmppClock is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at the current regime's rate, and the regime flips after an
// exponential dwell. Both the exponential inter-arrival and dwell laws are
// memoryless, so resampling the time-to-switch at every step is exact.
type mmppClock struct {
	t          float64
	burst      bool
	burstMean  float64 // inter-arrival mean while bursting
	calmMean   float64
	burstDwell float64 // mean regime sojourn times
	calmDwell  float64
}

func (c *mmppClock) next(r *rng.Source) float64 {
	for {
		mean, dwell := c.calmMean, c.calmDwell
		if c.burst {
			mean, dwell = c.burstMean, c.burstDwell
		}
		arrival := r.Exp(mean)
		toSwitch := r.Exp(dwell)
		if arrival <= toSwitch {
			c.t += arrival
			return c.t
		}
		c.t += toSwitch
		c.burst = !c.burst
	}
}

// diurnalClock is a nonhomogeneous Poisson process with the sinusoidal
// rate curve rate(t) = base·(1 + amp·sin(2πt/period)), sampled by Lewis &
// Shedler thinning against the peak rate.
type diurnalClock struct {
	t      float64
	base   float64 // arrivals per second at the mean
	amp    float64
	period float64
}

func (c *diurnalClock) next(r *rng.Source) float64 {
	peak := c.base * (1 + c.amp)
	for {
		c.t += r.Exp(1 / peak)
		rate := c.base * (1 + c.amp*math.Sin(2*math.Pi*c.t/c.period))
		if r.Float64()*peak <= rate {
			return c.t
		}
	}
}

// JobStream yields the jobs of one simulation run in arrival order. It is
// either generated (arrival clock + job-mix sampler) or replayed from a
// trace; both are fully determined by the seed passed to Stream.
type JobStream struct {
	spec    *Spec
	nodes   int
	count   int     // remaining jobs; <0 means unbounded
	horizon float64 // 0 = none

	// generated mode
	clock      arrivalClock
	arrivalRng *rng.Source
	bodyRng    *rng.Source

	// replay mode
	replay []trace.JobRecord
	scale  float64 // time compression: arrival · 1/load
	i      int

	// model, when non-nil, overrides every streamed job's phase
	// performance models (the sweep grid's appmodel axis). Cost-free
	// comm-factor models are lowered onto Phase.Comm instead (lowerOK),
	// keeping the simulator's inlined fast path: the curves are
	// bit-identical by construction.
	model     appmodel.AppModel
	lowerComm float64
	lowerOK   bool

	nextID int
}

// SetAppModel installs a performance-model override: every job the
// stream yields — generated and replayed alike — has each phase's
// performance response replaced by m, keeping the work profile. A nil m
// restores the mix's native models. Overriding consumes no randomness,
// so the job stream is otherwise bit-identical.
func (st *JobStream) SetAppModel(m appmodel.AppModel) {
	st.model = m
	st.lowerComm, st.lowerOK = 0, false
	if cf, ok := m.(appmodel.CommFactor); ok && cf.Costs == (appmodel.Costs{}) {
		st.lowerComm, st.lowerOK = cf.C, true
	}
}

// Stream builds the deterministic job stream of one grid cell: the
// arrival process at index arrivalIdx, scaled to the given load, sized
// for a cluster of nodes, seeded with seed. Two streams built with equal
// arguments yield bit-identical jobs.
func (s *Spec) Stream(arrivalIdx, nodes int, load float64, seed uint64) (*JobStream, error) {
	if arrivalIdx < 0 || arrivalIdx >= len(s.Arrivals) {
		return nil, fmt.Errorf("scenario: arrival index %d out of range", arrivalIdx)
	}
	if load <= 0 {
		return nil, fmt.Errorf("scenario: load must be positive, got %g", load)
	}
	a := s.Arrivals[arrivalIdx]
	base := rng.New(seed)
	st := &JobStream{
		spec:       s,
		nodes:      nodes,
		count:      -1,
		horizon:    s.HorizonS,
		arrivalRng: base.Fork(),
		bodyRng:    base.Fork(),
	}
	if s.Jobs > 0 {
		st.count = s.Jobs
	}
	switch a.Process {
	case "closed":
		if len(a.Times) > 0 {
			st.clock = &closedClock{times: a.Times}
			if st.count < 0 || st.count > len(a.Times) {
				st.count = len(a.Times)
			}
		} else {
			st.clock = &closedClock{batch: true}
		}
	case "poisson":
		st.clock = &poissonClock{mean: a.MeanInterarrivalS / load}
	case "bursty":
		st.clock = &mmppClock{
			burstMean:  a.BurstInterarrivalS / load,
			calmMean:   a.CalmInterarrivalS / load,
			burstDwell: a.BurstDwellS,
			calmDwell:  a.CalmDwellS,
		}
	case "diurnal":
		st.clock = &diurnalClock{base: load / a.MeanInterarrivalS, amp: a.Amplitude, period: a.PeriodS}
	case "trace":
		path := a.Path
		if !filepath.IsAbs(path) && s.dir != "" {
			path = filepath.Join(s.dir, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		defer f.Close()
		records, err := trace.ReadJobs(f)
		if err != nil {
			return nil, err
		}
		st.replay = records
		st.scale = 1 / load
		if st.count < 0 || st.count > len(records) {
			st.count = len(records)
		}
	default:
		return nil, fmt.Errorf("scenario: unknown process %q", a.Process)
	}
	return st, nil
}

// Next returns the stream's next job, or false when the stream is done
// (count exhausted, horizon passed, or trace/times list drained).
func (st *JobStream) Next() (*cluster.Job, bool) {
	if st.count == 0 {
		return nil, false
	}
	var job *cluster.Job
	if st.replay != nil {
		if st.i >= len(st.replay) {
			return nil, false
		}
		rec := st.replay[st.i]
		st.i++
		job = recordToJob(rec, st.scale, st.nodes)
	} else {
		at := st.clock.next(st.arrivalRng)
		if math.IsInf(at, 1) {
			return nil, false
		}
		// Per-job fork: the body sampler may consume a variable number of
		// draws without perturbing any other job's randomness.
		phases, maxNodes, weight := st.spec.sampleBody(st.bodyRng.Fork(), st.nodes)
		job = &cluster.Job{Arrival: at, Phases: phases, MaxNodes: maxNodes, Weight: weight}
	}
	if st.horizon > 0 && job.Arrival > st.horizon {
		st.count = 0
		return nil, false
	}
	switch {
	case st.lowerOK:
		for i := range job.Phases {
			job.Phases[i].Comm = st.lowerComm
		}
	case st.model != nil:
		job.Model = st.model
	}
	job.ID = st.nextID
	st.nextID++
	if st.count > 0 {
		st.count--
	}
	return job, true
}

func recordToJob(rec trace.JobRecord, scale float64, nodes int) *cluster.Job {
	phases := make([]cluster.Phase, len(rec.Phases))
	for i, ph := range rec.Phases {
		phases[i] = cluster.Phase{Work: ph.Work, Comm: ph.Comm}
	}
	maxNodes := rec.MaxNodes
	if maxNodes <= 0 || maxNodes > nodes {
		maxNodes = nodes
	}
	return &cluster.Job{Arrival: rec.Arrival * scale, Phases: phases, MaxNodes: maxNodes}
}

// Jobs drains the stream into a slice (closed-workload use).
func (st *JobStream) Jobs() []*cluster.Job {
	var out []*cluster.Job
	for {
		j, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, j)
	}
}
