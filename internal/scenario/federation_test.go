package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dpsim/internal/availability"
)

func synthMix() []MixSpec {
	return []MixSpec{{Kind: "synthetic", Phases: 3, WorkS: 20, Comm: 0.1}}
}

func poissonArrivals() ArrivalList {
	return ArrivalList{{Process: "poisson", MeanInterarrivalS: 4}}
}

// federationGoldenSpecs builds a plain single-cluster spec and the
// equivalent 1-cluster federation, optionally with the same volatile
// availability process on both sides.
func federationGoldenSpecs(t *testing.T, volatile bool) (*Spec, *Spec) {
	t.Helper()
	av := availability.Spec{Process: "failures", MTTFS: 120, MTTRS: 40, HorizonS: 2000}
	plain := &Spec{
		Name: "plain", Nodes: []int{12}, Seed: 7, Jobs: 16,
		Mix:        synthMix(),
		Arrivals:   poissonArrivals(),
		Schedulers: SchedulerList{{Name: "equipartition"}},
		Reconfig:   &ReconfigSpec{RedistributionSPerNode: 0.2, LostWorkS: 2},
	}
	fed := &Spec{
		Name: "fed", Seed: 7, Jobs: 16,
		Mix:      synthMix(),
		Arrivals: poissonArrivals(),
		Reconfig: &ReconfigSpec{RedistributionSPerNode: 0.2, LostWorkS: 2},
		Federation: &FederationSpec{
			Clusters: []FederationClusterSpec{
				{Nodes: 12, Scheduler: &SchedulerSpec{Name: "equipartition"}},
			},
		},
	}
	if volatile {
		plain.Availability = AvailabilityList{av}
		avCopy := av
		fed.Federation.Clusters[0].Availability = &avCopy
	}
	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	return plain, fed
}

// TestFederatedScenarioGolden is the scenario-layer zero-drift pin: a
// 1-cluster federation under the default always-admit + round-robin
// produces a CellRun whose Result and Slowdowns are byte-identical to
// the plain single-cluster path, with and without a volatile capacity
// timeline (both sides draw it from the cell seed's third fork).
func TestFederatedScenarioGolden(t *testing.T) {
	for _, volatile := range []bool{false, true} {
		label := "fixed"
		if volatile {
			label = "volatile"
		}
		t.Run(label, func(t *testing.T) {
			plain, fed := federationGoldenSpecs(t, volatile)
			availIdx := -1
			if volatile {
				availIdx = 0
			}
			pRun, err := plain.RunCell(CellParams{
				Nodes: 12, Load: 1, SchedulerIdx: 0, AvailIdx: availIdx, AppModelIdx: -1, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			fRun, err := fed.RunCell(CellParams{
				Nodes: 12, Load: 1, AvailIdx: availIdx, AppModelIdx: -1, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("%+v|%v", pRun.Result, pRun.Slowdowns)
			got := fmt.Sprintf("%+v|%v", fRun.Result, fRun.Slowdowns)
			if got != want {
				t.Errorf("federated cell diverged from plain cell:\n got %s\nwant %s", got, want)
			}
			if fRun.Rejected != 0 {
				t.Errorf("always-admit rejected %d jobs", fRun.Rejected)
			}
			if len(fRun.Routed) != 1 || fRun.Routed[0] != len(fRun.Result.PerJob)+fRun.Result.Unfinished {
				t.Errorf("routed %v inconsistent with result accounting", fRun.Routed)
			}
			if len(fRun.ClusterResults) != 1 {
				t.Fatalf("expected 1 member result, got %d", len(fRun.ClusterResults))
			}
		})
	}
}

// TestFederatedHeterogeneous drives a 2-cluster federation with
// per-member models and availability, checking dispatch accounting and
// determinism of the whole cell.
func TestFederatedHeterogeneous(t *testing.T) {
	spec := &Spec{
		Name: "hetero", Seed: 11, Jobs: 24,
		Mix:      synthMix(),
		Arrivals: poissonArrivals(),
		Federation: &FederationSpec{
			Clusters: []FederationClusterSpec{
				{Name: "small", Nodes: 8, Scheduler: &SchedulerSpec{Name: "equipartition"},
					AppModel: &AppModelSpec{Name: "amdahl", Params: map[string]float64{"f": 0.1}}},
				{Name: "big", Nodes: 16, Scheduler: &SchedulerSpec{Name: "rigid-fcfs"},
					Availability: &availability.Spec{Process: "failures", MTTFS: 200, MTTRS: 50, HorizonS: 2000}},
			},
			Admissions: AdmissionList{{Name: "token-bucket", Params: map[string]float64{"rate": 0.1, "burst": 2}}},
			Routings:   RoutingList{{Name: "least-loaded"}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Nodes; len(got) != 1 || got[0] != 24 {
		t.Fatalf("validate filled nodes %v, want [24]", got)
	}
	run1, err := spec.RunCell(CellParams{Nodes: 24, Load: 1, AvailIdx: -1, AppModelIdx: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := spec.RunCell(CellParams{Nodes: 24, Load: 1, AvailIdx: -1, AppModelIdx: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", run1) != fmt.Sprintf("%+v", run2) {
		t.Error("same-seed federated cells diverged")
	}
	routedSum := 0
	for _, r := range run1.Routed {
		routedSum += r
	}
	if routedSum+run1.Rejected != 24 {
		t.Errorf("routed %v + rejected %d != 24 offered", run1.Routed, run1.Rejected)
	}
	if run1.Rejected == 0 {
		t.Error("token-bucket at rate 0.1 rejected nothing — the policy axis is not biting")
	}
	for i, r := range run1.ClusterResults {
		if len(r.PerJob)+r.Unfinished != run1.Routed[i] {
			t.Errorf("member %d: %d finished + %d unfinished != %d routed",
				i, len(r.PerJob), r.Unfinished, run1.Routed[i])
		}
	}
}

// TestFederationValidate exercises the federation block's validation
// rules; every rejection must name the offending key under federation.*.
func TestFederationValidate(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name: "v", Seed: 1, Jobs: 4,
			Mix:      synthMix(),
			Arrivals: poissonArrivals(),
			Federation: &FederationSpec{
				Clusters: []FederationClusterSpec{
					{Nodes: 4, Scheduler: &SchedulerSpec{Name: "equipartition"}},
					{Nodes: 8, Scheduler: &SchedulerSpec{Name: "rigid-fcfs"}},
				},
			},
		}
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Federation.Clusters[0].Name != "c0" || ok.Federation.Clusters[1].Name != "c1" {
		t.Errorf("default member names = %q, %q", ok.Federation.Clusters[0].Name, ok.Federation.Clusters[1].Name)
	}
	if len(ok.Federation.Admissions) != 1 || ok.Federation.Admissions[0].Name != "always" {
		t.Errorf("default admissions = %+v", ok.Federation.Admissions)
	}
	if len(ok.Federation.Routings) != 1 || ok.Federation.Routings[0].Name != "round-robin" {
		t.Errorf("default routings = %+v", ok.Federation.Routings)
	}
	// Re-validation must be idempotent (the CLIs re-validate on axis
	// overrides).
	if err := ok.Validate(); err != nil {
		t.Fatalf("re-validation: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Spec)
		frag string
	}{
		{"no clusters", func(s *Spec) { s.Federation.Clusters = nil }, "federation.clusters"},
		{"zero nodes", func(s *Spec) { s.Federation.Clusters[0].Nodes = 0 }, "federation.clusters[0].nodes"},
		{"no scheduler", func(s *Spec) { s.Federation.Clusters[1].Scheduler = nil }, "federation.clusters[1].scheduler"},
		{"bad scheduler", func(s *Spec) { s.Federation.Clusters[0].Scheduler.Name = "nope" }, "federation.clusters[0].scheduler"},
		{"bad appmodel", func(s *Spec) { s.Federation.Clusters[0].AppModel = &AppModelSpec{Name: "nope"} }, "federation.clusters[0].appmodel"},
		{"dup names", func(s *Spec) {
			s.Federation.Clusters[0].Name = "x"
			s.Federation.Clusters[1].Name = "x"
		}, "not unique"},
		{"spec schedulers", func(s *Spec) { s.Schedulers = SchedulerList{{Name: "equipartition"}} }, "schedulers axis must be absent"},
		{"spec appmodels", func(s *Spec) { s.AppModels = AppModelList{{Name: "amdahl"}} }, "appmodels axis must be absent"},
		{"spec availability", func(s *Spec) {
			s.Availability = AvailabilityList{{Process: "failures", MTTFS: 100, MTTRS: 10, HorizonS: 100}}
		}, "availability axis must be absent"},
		{"wrong nodes", func(s *Spec) { s.Nodes = []int{7} }, "fleet total 12"},
		{"bad admission", func(s *Spec) { s.Federation.Admissions = AdmissionList{{Name: "nope"}} }, "federation.admissions[0]"},
		{"bad routing", func(s *Spec) { s.Federation.Routings = RoutingList{{Name: "nope"}} }, "federation.routings[0]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base()
			c.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("err = %v, want containing %q", err, c.frag)
			}
		})
	}
}

// TestFederationOverrides covers the CLI axis overrides and their
// non-federated rejection.
func TestFederationOverrides(t *testing.T) {
	spec := &Spec{
		Name: "ov", Seed: 1, Jobs: 4,
		Mix:      synthMix(),
		Arrivals: poissonArrivals(),
		Federation: &FederationSpec{
			Clusters: []FederationClusterSpec{{Nodes: 4, Scheduler: &SchedulerSpec{Name: "equipartition"}}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := spec.ApplyAdmissionOverride("always,token-bucket(rate=2,burst=3)"); err != nil {
		t.Fatal(err)
	}
	if len(spec.Federation.Admissions) != 2 || spec.Federation.Admissions[1].Label() != "token-bucket(burst=3,rate=2)" {
		t.Errorf("admission override = %+v", spec.Federation.Admissions)
	}
	if err := spec.ApplyRoutingOverride("weighted(free=2,queue=1),least-loaded"); err != nil {
		t.Fatal(err)
	}
	if len(spec.Federation.Routings) != 2 || spec.Federation.Routings[0].Label() != "weighted(free=2,queue=1)" {
		t.Errorf("routing override = %+v", spec.Federation.Routings)
	}
	if err := spec.ApplyAdmissionOverride("nope"); err == nil {
		t.Error("unknown admission accepted")
	}

	plain := &Spec{
		Name: "p", Nodes: []int{4}, Seed: 1, Jobs: 4,
		Mix:      synthMix(),
		Arrivals: poissonArrivals(),
	}
	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := plain.ApplyAdmissionOverride("always"); err == nil ||
		!strings.Contains(err.Error(), "federation block") {
		t.Errorf("non-federated -admissions: %v", err)
	}
	if err := plain.ApplyRoutingOverride("round-robin"); err == nil ||
		!strings.Contains(err.Error(), "federation block") {
		t.Errorf("non-federated -routings: %v", err)
	}
}

// TestCanonicalFederation pins the canonical blobs' independence: the
// topology blob ignores the policy axes, and the policy blobs are the
// round-trippable registry labels.
func TestCanonicalFederation(t *testing.T) {
	_, fed := federationGoldenSpecs(t, false)
	blob := string(fed.CanonicalFederation())
	for _, frag := range []string{`"name":"c0"`, `"nodes":12`, `"scheduler":"equipartition"`, `"appmodel":"mix"`} {
		if !strings.Contains(blob, frag) {
			t.Errorf("CanonicalFederation() = %s, missing %s", blob, frag)
		}
	}
	if err := fed.ApplyAdmissionOverride("token-bucket(rate=2)"); err != nil {
		t.Fatal(err)
	}
	if got := string(fed.CanonicalFederation()); got != blob {
		t.Errorf("topology blob changed with the admission axis:\n %s\n %s", got, blob)
	}
	if got := string(fed.CanonicalAdmission(0)); got != "token-bucket(rate=2)" {
		t.Errorf("CanonicalAdmission = %q", got)
	}
	if got := string(fed.CanonicalRouting(0)); got != "round-robin" {
		t.Errorf("CanonicalRouting = %q", got)
	}
}

// FuzzFederation hammers the scenario's "federation" block: the fuzz
// input is spliced in as the block's JSON value inside an otherwise
// valid scenario. Decoding must never panic, a spec that validates must
// carry resolved policy axes whose labels round-trip, and a block that
// decodes but fails validation must produce an error naming a
// federation.* key (or the axis-conflict rules).
func FuzzFederation(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"clusters":[{"nodes":4,"scheduler":"equipartition"}]}`),
		[]byte(`{"clusters":[{"name":"a","nodes":4,"scheduler":"equipartition"},` +
			`{"name":"b","nodes":8,"scheduler":{"name":"malleable-hysteresis","params":{"epoch_s":45}},` +
			`"appmodel":"amdahl(f=0.1)","availability":{"process":"failures","mttf_s":200,"mttr_s":50,"horizon_s":2000}}],` +
			`"admissions":["always","token-bucket(rate=0.5,burst=4)"],"routings":["least-loaded","weighted(free=2,queue=1)"]}`),
		[]byte(`{"clusters":[{"nodes":0,"scheduler":"equipartition"}]}`),
		[]byte(`{"clusters":[{"nodes":4}]}`),
		[]byte(`{"clusters":[],"admissions":"always"}`),
		[]byte(`{"clusters":[{"nodes":4,"scheduler":"nope"}]}`),
		[]byte(`{"clusters":[{"nodes":4,"scheduler":"equipartition"}],"admissions":[{"name":"quota","params":{"tenants":2}}]}`),
		[]byte(`{"clusters":[{"nodes":4,"scheduler":"equipartition"}],"routings":["weighted(free=NaN)"]}`),
		[]byte(`null`),
		[]byte(`[`),
		[]byte(`"clusters"`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, block []byte) {
		data := []byte(`{"name":"fz","seed":1,"jobs":4,` +
			`"mix":[{"kind":"synthetic","phases":1,"work_s":1}],` +
			`"arrivals":{"process":"poisson","mean_interarrival_s":5},` +
			`"federation":` + string(block) + `}`)
		spec, err := Parse(data)
		if err != nil {
			// A non-null block that decodes on its own but fails
			// validation must be reported against the federation schema,
			// not a generic message.
			var fs *FederationSpec
			if json.Unmarshal(block, &fs) == nil && fs != nil && !strings.Contains(err.Error(), "federation") {
				t.Fatalf("invalid federation block rejected without naming federation: %v", err)
			}
			return
		}
		if spec.Federation == nil {
			return // "federation": null — a plain scenario
		}
		fed := spec.Federation
		if len(fed.Admissions) == 0 || len(fed.Routings) == 0 {
			t.Fatalf("validated federation has empty policy axes: %+v", fed)
		}
		for i := range fed.Admissions {
			label := fed.Admissions[i].Label()
			if _, err := ParseAdmissionList(label); err != nil {
				t.Fatalf("admission label %q does not round-trip: %v", label, err)
			}
		}
		for i := range fed.Routings {
			label := fed.Routings[i].Label()
			if _, err := ParseRoutingList(label); err != nil {
				t.Fatalf("routing label %q does not round-trip: %v", label, err)
			}
		}
		if len(spec.Nodes) != 1 || spec.Nodes[0] != fed.TotalNodes() {
			t.Fatalf("validated federation nodes %v != fleet total %d", spec.Nodes, fed.TotalNodes())
		}
		_ = spec.CanonicalFederation()
	})
}
