package scenario

// Canonical serialization of the resolved experiment parameters, the
// foundation of content-hash cell identity (internal/sweep): every blob
// is a deterministic byte string — JSON with declaration-ordered struct
// fields, or a registry spec label with sorted parameters — so two specs
// that resolve to the same experiment serialize identically regardless
// of how they were written, loaded or edited.
//
// The blobs deliberately cover only what determines a replication's
// simulated result: the master seed, job budget, horizon, mix,
// reconfiguration costs, and the per-axis process specs. Display-only
// fields (the scenario name, observe block) and file *contents* behind
// trace paths are excluded — a trace replay's identity is its path
// string, not the bytes behind it.

import "encoding/json"

// canonicalWorkload is the cell-independent part of a replication's
// identity: everything outside the grid axes that shapes the simulated
// job stream and its pricing.
type canonicalWorkload struct {
	Seed     uint64        `json:"seed"`
	Jobs     int           `json:"jobs"`
	HorizonS float64       `json:"horizon_s"`
	Mix      []MixSpec     `json:"mix"`
	Reconfig *ReconfigSpec `json:"reconfig"`
}

// mustJSON marshals a plain data struct; the inputs are maps-free value
// types, so failure is impossible.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic("scenario: canonical marshal: " + err.Error())
	}
	return data
}

// CanonicalWorkload serializes the cell-independent workload parameters
// (master seed, job budget, horizon, mix, reconfiguration costs).
// Validate must have run, so mix defaults are already filled.
func (s *Spec) CanonicalWorkload() []byte {
	return mustJSON(canonicalWorkload{
		Seed: s.Seed, Jobs: s.Jobs, HorizonS: s.HorizonS,
		Mix: s.Mix, Reconfig: s.Reconfig,
	})
}

// CanonicalArrival serializes one arrival-process spec.
func (s *Spec) CanonicalArrival(i int) []byte {
	return mustJSON(s.Arrivals[i])
}

// canonicalNone is the fixed-pool sentinel blob for AvailIdx -1.
var canonicalNone = []byte(`"none"`)

// CanonicalAvailability serializes one availability-process spec;
// i < 0 is the fixed-pool baseline. The loader-injected trace directory
// is excluded (json:"-"), so moving a scenario file does not change cell
// identity as long as the relative trace path is unchanged.
func (s *Spec) CanonicalAvailability(i int) []byte {
	if i < 0 || len(s.Availability) == 0 {
		return canonicalNone
	}
	return mustJSON(s.Availability[i])
}

// CanonicalScheduler serializes one scheduler spec: the registry label
// with sorted parameters, which round-trips through sched.ParseSpec to
// the identical policy.
func (s *Spec) CanonicalScheduler(i int) []byte {
	return []byte(s.Schedulers[i].Label())
}

// CanonicalAppModel serializes one application performance-model spec;
// i < 0 is the native "mix" baseline. Like CanonicalScheduler, the blob
// is the sorted-parameter registry label.
func (s *Spec) CanonicalAppModel(i int) []byte {
	if i < 0 || len(s.AppModels) == 0 {
		return []byte(MixModel)
	}
	return []byte(s.AppModels[i].Label())
}
