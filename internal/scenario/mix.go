package scenario

import (
	"dpsim/internal/cluster"
	"dpsim/internal/lu"
	"dpsim/internal/rng"
)

// luSizes are the paper's standard LU configurations, drawn from when an
// "lu" mix entry does not pin n and r (mirrors cluster.PoissonWorkload).
var luSizes = []struct{ n, r int }{
	{1296, 162}, {1296, 108}, {648, 81}, {2592, 324},
}

// sampleBody draws one job body (phases + node cap + fair-share weight)
// from the weighted mix using only the passed per-job stream.
func (s *Spec) sampleBody(r *rng.Source, nodes int) ([]cluster.Phase, int, float64) {
	var total float64
	for _, m := range s.Mix {
		total += m.Weight
	}
	pick := r.Float64() * total
	m := s.Mix[len(s.Mix)-1]
	for _, cand := range s.Mix {
		pick -= cand.Weight
		if pick < 0 {
			m = cand
			break
		}
	}
	maxNodes := m.MaxNodes
	if maxNodes <= 0 {
		if nodes <= 2 {
			maxNodes = nodes
		} else {
			maxNodes = 2 + r.Intn(nodes-1) // uniform over [2, nodes]
		}
	}
	if maxNodes > nodes {
		maxNodes = nodes
	}
	return m.phases(r), maxNodes, m.JobWeight
}

func (m MixSpec) phases(r *rng.Source) []cluster.Phase {
	switch m.Kind {
	case "lu":
		n, rr := m.N, m.R
		if n == 0 {
			sz := luSizes[r.Intn(len(luSizes))]
			n, rr = sz.n, sz.r
		}
		return cluster.LUProfile(n, rr, lu.DefaultCostModel())
	case "synthetic":
		work := m.WorkS * r.LogNormal(m.CV)
		return cluster.SyntheticProfile(m.Phases, work, m.Comm)
	case "stencil":
		return stencilProfile(m.GridN, m.Iterations, m.FlopsPerSec)
	}
	panic("scenario: unvalidated mix kind " + m.Kind)
}

// stencilProfile derives a cluster job profile from the Jacobi
// heat-diffusion solver of internal/stencil: each iteration's serial work
// is the 5-flops-per-cell sweep over the n×n grid, and the communication
// factor is the ratio of one band's halo exchange (two n-row messages over
// the paper's Fast Ethernet, 100 µs + 8n/12.5e6 s each) to its share of
// the compute — the per-node overhead that eff(p) = 1/(1+c(p-1)) charges
// once per extra node.
func stencilProfile(n, iterations int, flops float64) []cluster.Phase {
	if flops <= 0 {
		flops = 63e6 // the paper's UltraSparc II calibration
	}
	work := 5 * float64(n) * float64(n) / flops
	halo := 2 * (100e-6 + 8*float64(n)/12.5e6)
	comm := halo / work
	out := make([]cluster.Phase, iterations)
	for i := range out {
		out[i] = cluster.Phase{Work: work, Comm: comm}
	}
	return out
}
