package scenario

import (
	"dpsim/internal/appmodel"
	"dpsim/internal/cluster"
	"dpsim/internal/lu"
	"dpsim/internal/rng"
)

// luSizes are the paper's standard LU configurations, drawn from when an
// "lu" mix entry does not pin n and r (mirrors cluster.PoissonWorkload).
var luSizes = []struct{ n, r int }{
	{1296, 162}, {1296, 108}, {648, 81}, {2592, 324},
}

// sampleBody draws one job body (phases + node cap + fair-share weight)
// from the weighted mix using only the passed per-job stream.
func (s *Spec) sampleBody(r *rng.Source, nodes int) ([]cluster.Phase, int, float64) {
	var total float64
	for _, m := range s.Mix {
		total += m.Weight
	}
	pick := r.Float64() * total
	m := s.Mix[len(s.Mix)-1]
	for _, cand := range s.Mix {
		pick -= cand.Weight
		if pick < 0 {
			m = cand
			break
		}
	}
	maxNodes := m.MaxNodes
	if maxNodes <= 0 {
		if nodes <= 2 {
			maxNodes = nodes
		} else {
			maxNodes = 2 + r.Intn(nodes-1) // uniform over [2, nodes]
		}
	}
	if maxNodes > nodes {
		maxNodes = nodes
	}
	return m.phases(r), maxNodes, m.JobWeight
}

// phases expands one mix component into a job profile. The historical
// lu/synthetic/stencil shapes are registered comm-factor models
// (appmodel.CommFactor) whose curves are the Phase.Comm formula
// bit-for-bit, so the generator lowers them onto the Comm field and
// leaves Model nil — the simulator's inlined fast path. Validation
// constructs each component's registry model (registry-range-checking
// its parameters), and the equality of the lowered values with the
// registered models is pinned by tests at the appmodel and cluster
// layers.
func (m MixSpec) phases(r *rng.Source) []cluster.Phase {
	switch m.Kind {
	case "lu":
		n, rr := m.N, m.R
		if n == 0 {
			sz := luSizes[r.Intn(len(luSizes))]
			n, rr = sz.n, sz.r
		}
		// Per-iteration comm factors equal appmodel.LUPhase(blocks, k).C
		// (pinned by TestLUPhaseMatchesLUProfile).
		return cluster.LUProfile(n, rr, lu.DefaultCostModel())
	case "synthetic":
		work := m.WorkS * r.LogNormal(m.CV)
		return cluster.SyntheticProfile(m.Phases, work, m.Comm)
	case "stencil":
		return m.stencilPhases()
	}
	panic("scenario: unvalidated mix kind " + m.Kind)
}

// stencilPhases derives a cluster job profile from the Jacobi
// heat-diffusion solver of internal/stencil: each iteration's serial work
// is the 5-flops-per-cell sweep over the n×n grid, and the communication
// factor (appmodel.StencilComm, the registered "stencil" model's curve)
// is the ratio of one band's halo exchange to its share of the compute —
// the per-node overhead that eff(p) = 1/(1+c(p-1)) charges once per
// extra node.
func (m MixSpec) stencilPhases() []cluster.Phase {
	work := appmodel.StencilWork(m.GridN, m.FlopsPerSec)
	comm := appmodel.StencilComm(m.GridN, m.FlopsPerSec)
	out := make([]cluster.Phase, m.Iterations)
	for i := range out {
		out[i] = cluster.Phase{Work: work, Comm: comm}
	}
	return out
}
