package scenario

import (
	"encoding/json"
	"fmt"

	"dpsim/internal/appmodel"
	"dpsim/internal/availability"
	"dpsim/internal/cluster"
	"dpsim/internal/eventq"
	"dpsim/internal/federation"
	"dpsim/internal/rng"
)

// FederationSpec is the scenario's "federation" block: it turns the run
// into a multi-cluster experiment where one shared arrival stream is
// dispatched across heterogeneous member clusters through admission and
// routing policies (internal/federation).
//
// A federated spec fixes the cluster topology per cell — the member
// clusters replace the spec-level nodes/schedulers/appmodels/
// availability axes, which must be absent — while admissions × routings
// become the policy axes of the grid. The spec-level loads and arrivals
// axes apply unchanged: the stream is generated for the fleet's total
// node count, then dispatched job by job.
type FederationSpec struct {
	// Clusters lists the member clusters (at least one).
	Clusters []FederationClusterSpec `json:"clusters"`
	// Admissions lists the admission-policy axis (federation registry
	// specs; default ["always"]). The JSON value may be a single entry
	// or an array.
	Admissions AdmissionList `json:"admissions,omitempty"`
	// Routings lists the routing-policy axis (default ["round-robin"]).
	Routings RoutingList `json:"routings,omitempty"`
}

// FederationClusterSpec configures one member cluster.
type FederationClusterSpec struct {
	// Name labels the member in telemetry, traces and exports; default
	// "c<index>". Names must be unique within the federation.
	Name string `json:"name,omitempty"`
	// Nodes is the member's pool size (> 0, required).
	Nodes int `json:"nodes"`
	// Scheduler is the member's scheduling policy (required — members
	// are heterogeneous, so there is no sensible shared default).
	Scheduler *SchedulerSpec `json:"scheduler"`
	// AppModel optionally overrides the performance model of every job
	// routed to this member; absent keeps the mix's native models.
	AppModel *AppModelSpec `json:"appmodel,omitempty"`
	// Availability optionally gives the member its own capacity
	// timeline; absent means the member's pool never changes.
	Availability *availability.Spec `json:"availability,omitempty"`
}

// AdmissionSpec selects one admission policy of the federation grid: a
// registered policy name (federation.AdmissionNames(), case-insensitive)
// plus optional parameters. In scenario JSON an entry may be a bare
// string (a name or a full "name(key=value,...)" spec) or a {"name":
// ..., "params": {...}} object.
type AdmissionSpec struct {
	Name   string            `json:"name"`
	Params federation.Params `json:"params,omitempty"`
}

// UnmarshalJSON implements json.Unmarshaler: a bare string is a policy
// name or spec string.
func (ap *AdmissionSpec) UnmarshalJSON(data []byte) error {
	var spec string
	if err := json.Unmarshal(data, &spec); err == nil {
		name, params, err := federation.ParseSpec(spec)
		if err != nil {
			return err
		}
		*ap = AdmissionSpec{Name: name, Params: params}
		return nil
	}
	type plain AdmissionSpec
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*ap = AdmissionSpec(p)
	return nil
}

// Label names the policy for reports and CSV columns, parameters
// included ("token-bucket(burst=3,rate=0.5)"); it round-trips through
// federation.ParseSpec to the identical policy.
func (ap AdmissionSpec) Label() string { return federation.FormatSpec(ap.Name, ap.Params) }

// New constructs a fresh policy instance (admission policies are
// stateful, so every simulation must construct its own).
func (ap AdmissionSpec) New() (federation.Admission, error) {
	return federation.NewAdmission(ap.Name, ap.Params)
}

func (ap *AdmissionSpec) validate() error {
	a, err := ap.New()
	if err != nil {
		return err
	}
	ap.Name = a.Name()
	return nil
}

// AdmissionList unmarshals from a single entry or an array of entries,
// like SchedulerList.
type AdmissionList []AdmissionSpec

// UnmarshalJSON implements json.Unmarshaler.
func (l *AdmissionList) UnmarshalJSON(data []byte) error {
	var many []AdmissionSpec
	if err := json.Unmarshal(data, &many); err == nil {
		*l = many
		return nil
	}
	var one AdmissionSpec
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	*l = AdmissionList{one}
	return nil
}

// RoutingSpec selects one routing policy of the federation grid, with
// AdmissionSpec's JSON forms (valid names: federation.RouterNames()).
type RoutingSpec struct {
	Name   string            `json:"name"`
	Params federation.Params `json:"params,omitempty"`
}

// UnmarshalJSON implements json.Unmarshaler: a bare string is a policy
// name or spec string.
func (rp *RoutingSpec) UnmarshalJSON(data []byte) error {
	var spec string
	if err := json.Unmarshal(data, &spec); err == nil {
		name, params, err := federation.ParseSpec(spec)
		if err != nil {
			return err
		}
		*rp = RoutingSpec{Name: name, Params: params}
		return nil
	}
	type plain RoutingSpec
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*rp = RoutingSpec(p)
	return nil
}

// Label names the policy for reports and CSV columns; it round-trips
// through federation.ParseSpec to the identical policy.
func (rp RoutingSpec) Label() string { return federation.FormatSpec(rp.Name, rp.Params) }

// New constructs a fresh router instance.
func (rp RoutingSpec) New() (federation.Router, error) {
	return federation.NewRouter(rp.Name, rp.Params)
}

func (rp *RoutingSpec) validate() error {
	r, err := rp.New()
	if err != nil {
		return err
	}
	rp.Name = r.Name()
	return nil
}

// RoutingList unmarshals from a single entry or an array of entries.
type RoutingList []RoutingSpec

// UnmarshalJSON implements json.Unmarshaler.
func (l *RoutingList) UnmarshalJSON(data []byte) error {
	var many []RoutingSpec
	if err := json.Unmarshal(data, &many); err == nil {
		*l = many
		return nil
	}
	var one RoutingSpec
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	*l = RoutingList{one}
	return nil
}

// TotalNodes sums the member pool sizes.
func (f *FederationSpec) TotalNodes() int {
	total := 0
	for _, c := range f.Clusters {
		total += c.Nodes
	}
	return total
}

// validate checks the federation block, fills defaults (member names,
// the always/round-robin policy axes) and canonicalizes policy names.
// Error messages name the offending JSON key under "federation.".
func (f *FederationSpec) validate(s *Spec) error {
	if len(f.Clusters) == 0 {
		return fmt.Errorf("federation.clusters must list at least one cluster")
	}
	names := make(map[string]bool, len(f.Clusters))
	for i := range f.Clusters {
		c := &f.Clusters[i]
		if c.Name == "" {
			c.Name = fmt.Sprintf("c%d", i)
		}
		if names[c.Name] {
			return fmt.Errorf("federation.clusters[%d].name %q is not unique", i, c.Name)
		}
		names[c.Name] = true
		if c.Nodes <= 0 {
			return fmt.Errorf("federation.clusters[%d].nodes must be > 0, got %d", i, c.Nodes)
		}
		if c.Scheduler == nil {
			return fmt.Errorf("federation.clusters[%d].scheduler is required", i)
		}
		if err := c.Scheduler.validate(); err != nil {
			return fmt.Errorf("federation.clusters[%d].scheduler: %w", i, err)
		}
		if c.AppModel != nil {
			if err := c.AppModel.validate(); err != nil {
				return fmt.Errorf("federation.clusters[%d].appmodel: %w", i, err)
			}
		}
		if c.Availability != nil {
			if err := c.Availability.Validate(); err != nil {
				return fmt.Errorf("federation.clusters[%d].availability: %w", i, err)
			}
		}
	}
	// The member clusters fix the topology: the spec-level axes they
	// replace must not also be present, or the grid would be ambiguous.
	if len(s.Schedulers) > 0 {
		return fmt.Errorf("federation.clusters carry the schedulers; the spec-level schedulers axis must be absent")
	}
	if len(s.AppModels) > 0 {
		return fmt.Errorf("federation.clusters carry the appmodels; the spec-level appmodels axis must be absent")
	}
	if len(s.Availability) > 0 {
		return fmt.Errorf("federation.clusters carry the availability; the spec-level availability axis must be absent")
	}
	total := f.TotalNodes()
	switch {
	case len(s.Nodes) == 0:
		s.Nodes = []int{total}
	case len(s.Nodes) != 1 || s.Nodes[0] != total:
		return fmt.Errorf("federation fixes nodes to the fleet total %d; drop the spec-level nodes axis or set it to [%d]", total, total)
	}
	if len(f.Admissions) == 0 {
		f.Admissions = AdmissionList{{Name: "always"}}
	}
	for i := range f.Admissions {
		if err := f.Admissions[i].validate(); err != nil {
			return fmt.Errorf("federation.admissions[%d]: %w", i, err)
		}
	}
	if len(f.Routings) == 0 {
		f.Routings = RoutingList{{Name: "round-robin"}}
	}
	for i := range f.Routings {
		if err := f.Routings[i].validate(); err != nil {
			return fmt.Errorf("federation.routings[%d]: %w", i, err)
		}
	}
	return nil
}

// canonicalCluster is the canonical form of one member cluster: policy
// specs collapse to their sorted-parameter labels.
type canonicalCluster struct {
	Name         string             `json:"name"`
	Nodes        int                `json:"nodes"`
	Scheduler    string             `json:"scheduler"`
	AppModel     string             `json:"appmodel"`
	Availability *availability.Spec `json:"availability"`
}

// CanonicalFederation serializes the resolved member-cluster topology —
// the cell-shared part of a federated cell's identity. The admission and
// routing axes are separate hash sections (CanonicalAdmission /
// CanonicalRouting), so editing one policy list never re-seeds cells of
// the other.
func (s *Spec) CanonicalFederation() []byte {
	f := s.Federation
	clusters := make([]canonicalCluster, len(f.Clusters))
	for i, c := range f.Clusters {
		cc := canonicalCluster{
			Name: c.Name, Nodes: c.Nodes,
			Scheduler:    c.Scheduler.Label(),
			AppModel:     MixModel,
			Availability: c.Availability,
		}
		if c.AppModel != nil {
			cc.AppModel = c.AppModel.Label()
		}
		clusters[i] = cc
	}
	return mustJSON(clusters)
}

// CanonicalAdmission serializes one admission-policy spec: the registry
// label with sorted parameters.
func (s *Spec) CanonicalAdmission(i int) []byte {
	return []byte(s.Federation.Admissions[i].Label())
}

// CanonicalRouting serializes one routing-policy spec.
func (s *Spec) CanonicalRouting(i int) []byte {
	return []byte(s.Federation.Routings[i].Label())
}

// ParseAdmissionList splits a comma-separated CLI admission list into
// specs (paren-aware, like ParseSchedulerList). Entries are not yet
// validated; Spec.Validate resolves them.
func ParseAdmissionList(arg string) (AdmissionList, error) {
	toks, err := splitSpecs(arg, "admission")
	if err != nil {
		return nil, err
	}
	var list AdmissionList
	for _, tok := range toks {
		name, params, err := federation.ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		list = append(list, AdmissionSpec{Name: name, Params: params})
	}
	return list, nil
}

// ApplyAdmissionOverride replaces a federated spec's admission axis with
// a CLI-provided comma-separated list and re-validates the spec — the
// shared implementation of both CLIs' -admissions flags.
func (s *Spec) ApplyAdmissionOverride(arg string) error {
	if s.Federation == nil {
		return fmt.Errorf("scenario: -admissions requires a federation block")
	}
	list, err := ParseAdmissionList(arg)
	if err != nil {
		return err
	}
	s.Federation.Admissions = list
	return s.Validate()
}

// ParseRoutingList splits a comma-separated CLI routing list into specs.
func ParseRoutingList(arg string) (RoutingList, error) {
	toks, err := splitSpecs(arg, "routing")
	if err != nil {
		return nil, err
	}
	var list RoutingList
	for _, tok := range toks {
		name, params, err := federation.ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		list = append(list, RoutingSpec{Name: name, Params: params})
	}
	return list, nil
}

// ApplyRoutingOverride replaces a federated spec's routing axis with a
// CLI-provided comma-separated list and re-validates the spec.
func (s *Spec) ApplyRoutingOverride(arg string) error {
	if s.Federation == nil {
		return fmt.Errorf("scenario: -routings requires a federation block")
	}
	list, err := ParseRoutingList(arg)
	if err != nil {
		return err
	}
	s.Federation.Routings = list
	return s.Validate()
}

// applyModel replicates JobStream.SetAppModel's per-job override for the
// federated path, where the model is chosen per member after routing:
// cost-free comm-factor models are lowered onto Phase.Comm (the
// simulator's inlined fast path, bit-identical to the stream-level
// override), anything else rides along as Job.Model.
func applyModel(j *cluster.Job, m appmodel.AppModel) {
	if m == nil {
		return
	}
	if cf, ok := m.(appmodel.CommFactor); ok && cf.Costs == (appmodel.Costs{}) {
		for i := range j.Phases {
			j.Phases[i].Comm = cf.C
		}
		return
	}
	j.Model = m
}

// runFederatedCell is RunCell for federated specs: the same open-system
// drive loop, with each arrival dispatched through the admission and
// routing policies instead of injected directly.
func (s *Spec) runFederatedCell(p CellParams) (*CellRun, error) {
	f := s.Federation
	var admSpec AdmissionSpec
	switch {
	case p.Admission != "":
		name, params, err := federation.ParseSpec(p.Admission)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		admSpec = AdmissionSpec{Name: name, Params: params}
	case p.AdmissionIdx >= 0 && p.AdmissionIdx < len(f.Admissions):
		admSpec = f.Admissions[p.AdmissionIdx]
	default:
		return nil, fmt.Errorf("scenario: admission index %d out of range", p.AdmissionIdx)
	}
	admit, err := admSpec.New()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var rtSpec RoutingSpec
	switch {
	case p.Routing != "":
		name, params, err := federation.ParseSpec(p.Routing)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		rtSpec = RoutingSpec{Name: name, Params: params}
	case p.RoutingIdx >= 0 && p.RoutingIdx < len(f.Routings):
		rtSpec = f.Routings[p.RoutingIdx]
	default:
		return nil, fmt.Errorf("scenario: routing index %d out of range", p.RoutingIdx)
	}
	router, err := rtSpec.New()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	stream, err := s.Stream(p.ArrivalIdx, p.Nodes, p.Load, p.Seed)
	if err != nil {
		return nil, err
	}
	// The job stream consumes the first two forks of the cell seed; each
	// member's capacity timeline takes one further fork in member order.
	// Members without availability still consume theirs, so one member's
	// timeline never depends on another member's configuration — and
	// member 0's fork is exactly the plain path's availability fork,
	// which is what makes the 1-cluster golden hold under volatility.
	base := rng.New(p.Seed)
	base.Fork()
	base.Fork()
	members := make([]federation.Member, len(f.Clusters))
	models := make([]appmodel.AppModel, len(f.Clusters))
	dt := p.SampleDTS
	if dt == 0 && s.Observe != nil {
		dt = s.Observe.SampleDTS
	}
	for i := range f.Clusters {
		c := &f.Clusters[i]
		avRng := base.Fork()
		policy, err := c.Scheduler.New()
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sim, err := cluster.NewSim(c.Nodes, policy, nil)
		if err != nil {
			return nil, err
		}
		if c.Availability != nil {
			av := *c.Availability
			av.Dir = s.dir
			changes, err := av.Generate(c.Nodes, avRng)
			if err != nil {
				return nil, err
			}
			if err := sim.SetCapacityChanges(changes); err != nil {
				return nil, err
			}
		}
		if s.Reconfig != nil {
			err := sim.SetReconfigCost(cluster.ReconfigCost{
				RedistributionSPerNode: s.Reconfig.RedistributionSPerNode,
				LostWorkS:              s.Reconfig.LostWorkS,
			})
			if err != nil {
				return nil, err
			}
		}
		probe := p.Probe
		if i < len(p.MemberProbes) && p.MemberProbes[i] != nil {
			probe = p.MemberProbes[i]
		}
		if probe != nil {
			if err := sim.SetProbe(probe); err != nil {
				return nil, err
			}
			if dt > 0 {
				if err := sim.SetSampleInterval(dt); err != nil {
					return nil, err
				}
			}
		}
		if c.AppModel != nil {
			m, err := c.AppModel.New()
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			models[i] = m
		}
		members[i] = federation.Member{Name: c.Name, Sim: sim}
	}
	fed, err := federation.NewSim(members, admit, router)
	if err != nil {
		return nil, err
	}
	ideal := make(map[int]float64)
	pending, ok := stream.Next()
	for {
		et, evOK := fed.PeekNextEventTime()
		if ok {
			at := eventq.Time(eventq.DurationOf(pending.Arrival))
			if !evOK || at <= et {
				idx, admitted, err := fed.Offer(pending)
				if err != nil {
					return nil, err
				}
				if admitted {
					applyModel(pending, models[idx])
					ideal[pending.ID] = idealRuntime(pending)
					if err := fed.InjectInto(idx, pending); err != nil {
						return nil, err
					}
				}
				pending, ok = stream.Next()
				continue
			}
		}
		if !evOK {
			break
		}
		fed.ProcessNextEvent()
	}
	res := fed.Merged()
	run := &CellRun{
		Result:         res,
		Slowdowns:      make([]float64, 0, len(res.PerJob)),
		Rejected:       fed.Rejected(),
		Routed:         fed.Routed(),
		ClusterResults: fed.Results(),
	}
	for _, j := range res.PerJob {
		if best := ideal[j.ID]; best > 0 {
			run.Slowdowns = append(run.Slowdowns, j.Response/best)
		}
	}
	return run, nil
}
