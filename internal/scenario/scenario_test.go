package scenario

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpsim/internal/appmodel"
	"dpsim/internal/cluster"
	"dpsim/internal/sched"
	"dpsim/internal/trace"
)

func baseSpec() *Spec {
	return &Spec{
		Name:       "test",
		Nodes:      []int{8},
		Schedulers: SchedulerList{{Name: "equipartition"}},
		Seed:       1,
		Jobs:       12,
		Mix: []MixSpec{
			{Kind: "synthetic", Phases: 3, WorkS: 30, Comm: 0.05},
		},
		Arrivals: ArrivalList{{Process: "poisson", MeanInterarrivalS: 5}},
	}
}

func TestParseSingleArrivalObject(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "one",
		"nodes": [16],
		"seed": 3,
		"jobs": 4,
		"mix": [{"kind": "synthetic", "phases": 2, "work_s": 10}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Arrivals) != 1 || spec.Arrivals[0].Process != "poisson" {
		t.Fatalf("arrivals = %+v", spec.Arrivals)
	}
	// Defaults fill in.
	if !reflect.DeepEqual(spec.Loads, []float64{1}) {
		t.Fatalf("loads = %v", spec.Loads)
	}
	if len(spec.Schedulers) != len(sched.Names()) {
		t.Fatalf("schedulers = %v", spec.Schedulers)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Spec){
		"no nodes":          func(s *Spec) { s.Nodes = nil },
		"bad node":          func(s *Spec) { s.Nodes = []int{0} },
		"bad load":          func(s *Spec) { s.Loads = []float64{-1} },
		"bad scheduler":     func(s *Spec) { s.Schedulers = SchedulerList{{Name: "nope"}} },
		"no arrivals":       func(s *Spec) { s.Arrivals = nil },
		"bad process":       func(s *Spec) { s.Arrivals[0].Process = "weird" },
		"poisson no mean":   func(s *Spec) { s.Arrivals[0].MeanInterarrivalS = 0 },
		"open unbounded":    func(s *Spec) { s.Jobs = 0 },
		"no mix":            func(s *Spec) { s.Mix = nil },
		"bad mix kind":      func(s *Spec) { s.Mix[0].Kind = "weird" },
		"synthetic no work": func(s *Spec) { s.Mix[0].WorkS = 0 },
		"lu r not dividing": func(s *Spec) { s.Mix[0] = MixSpec{Kind: "lu", N: 100, R: 33} },
		"diurnal amplitude": func(s *Spec) {
			s.Arrivals = ArrivalList{{Process: "diurnal", MeanInterarrivalS: 5, PeriodS: 100, Amplitude: 1.5}}
		},
		"bursty no dwell": func(s *Spec) {
			s.Arrivals = ArrivalList{{Process: "bursty", BurstInterarrivalS: 1, CalmInterarrivalS: 10}}
		},
		"trace no path": func(s *Spec) { s.Arrivals = ArrivalList{{Process: "trace"}} },
	}
	for name, mutate := range cases {
		s := baseSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// streamJobs materializes a stream for comparison.
func streamJobs(t *testing.T, s *Spec, arrivalIdx int, seed uint64) []*cluster.Job {
	t.Helper()
	st, err := s.Stream(arrivalIdx, s.Nodes[0], 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return st.Jobs()
}

func TestStreamDeterminism(t *testing.T) {
	spec := baseSpec()
	spec.Mix = []MixSpec{
		{Kind: "lu", Weight: 1},
		{Kind: "synthetic", Phases: 4, WorkS: 20, Comm: 0.1, CV: 0.5, Weight: 2},
		{Kind: "stencil", GridN: 648, Iterations: 6, Weight: 1},
	}
	for _, proc := range []ArrivalSpec{
		{Process: "closed"},
		{Process: "poisson", MeanInterarrivalS: 5},
		{Process: "bursty", BurstInterarrivalS: 1, CalmInterarrivalS: 20, BurstDwellS: 10, CalmDwellS: 50},
		{Process: "diurnal", MeanInterarrivalS: 5, PeriodS: 200, Amplitude: 0.8},
	} {
		spec.Arrivals = ArrivalList{proc}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", proc.Process, err)
		}
		a := streamJobs(t, spec, 0, 99)
		b := streamJobs(t, spec, 0, 99)
		if len(a) != spec.Jobs {
			t.Fatalf("%s: generated %d jobs, want %d", proc.Process, len(a), spec.Jobs)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different streams", proc.Process)
		}
		c := streamJobs(t, spec, 0, 100)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical streams", proc.Process)
		}
		for i, j := range a {
			if i > 0 && j.Arrival < a[i-1].Arrival {
				t.Fatalf("%s: arrivals not sorted at %d", proc.Process, i)
			}
			if j.MaxNodes < 1 || j.MaxNodes > spec.Nodes[0] {
				t.Fatalf("%s: job %d MaxNodes %d", proc.Process, i, j.MaxNodes)
			}
			if len(j.Phases) == 0 {
				t.Fatalf("%s: job %d has no phases", proc.Process, i)
			}
		}
	}
}

func TestClosedExplicitTimes(t *testing.T) {
	spec := baseSpec()
	spec.Jobs = 0
	spec.Arrivals = ArrivalList{{Process: "closed", Times: []float64{0, 1.5, 4}}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs := streamJobs(t, spec, 0, 7)
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, want := range []float64{0, 1.5, 4} {
		if jobs[i].Arrival != want {
			t.Fatalf("job %d arrival %v, want %v", i, jobs[i].Arrival, want)
		}
	}
}

func TestLoadScalesArrivalRate(t *testing.T) {
	spec := baseSpec()
	spec.Jobs = 200
	st1, err := spec.Stream(0, 8, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := spec.Stream(0, 8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := st1.Jobs(), st2.Jobs()
	// Double load halves the mean inter-arrival: the same seed's last
	// arrival lands at half the virtual time.
	r := j1[len(j1)-1].Arrival / j2[len(j2)-1].Arrival
	if math.Abs(r-2) > 1e-9 {
		t.Fatalf("load scaling ratio = %v, want 2", r)
	}
}

func TestHorizonCutsGeneration(t *testing.T) {
	spec := baseSpec()
	spec.Jobs = 10000
	spec.HorizonS = 50
	jobs := streamJobs(t, spec, 0, 5)
	if len(jobs) == 0 || len(jobs) >= 10000 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.Arrival > 50 {
			t.Fatalf("arrival %v past horizon", j.Arrival)
		}
	}
}

func TestTraceReplayStream(t *testing.T) {
	dir := t.TempDir()
	records := []trace.JobRecord{
		{ID: 0, Arrival: 0, MaxNodes: 4, Phases: []trace.PhaseRecord{{Work: 10, Comm: 0.1}}},
		{ID: 1, Arrival: 8, MaxNodes: 0, Phases: []trace.PhaseRecord{{Work: 6, Comm: 0}, {Work: 4, Comm: 0.2}}},
		{ID: 2, Arrival: 20, MaxNodes: 99, Phases: []trace.PhaseRecord{{Work: 3, Comm: 0.05}}},
	}
	f, err := os.Create(filepath.Join(dir, "jobs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJobs(f, records); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec := &Spec{
		Nodes:    []int{8},
		Seed:     1,
		Arrivals: ArrivalList{{Process: "trace", Path: "jobs.csv"}},
	}
	spec.dir = dir
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs := streamJobs(t, spec, 0, 42)
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[1].Arrival != 8 || len(jobs[1].Phases) != 2 {
		t.Fatalf("job 1 = %+v", jobs[1])
	}
	// MaxNodes 0 and out-of-range clamp to the cluster size.
	if jobs[1].MaxNodes != 8 || jobs[2].MaxNodes != 8 {
		t.Fatalf("clamping: %d, %d", jobs[1].MaxNodes, jobs[2].MaxNodes)
	}
	// Load 2 compresses the trace's time axis.
	st, err := spec.Stream(0, 8, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	fast := st.Jobs()
	if fast[2].Arrival != 10 {
		t.Fatalf("scaled arrival = %v, want 10", fast[2].Arrival)
	}
}

func TestRunCellProducesSaneResults(t *testing.T) {
	spec := baseSpec()
	run, err := spec.RunCell(CellParams{
		Nodes: 8, Load: 1, Scheduler: "equipartition", ArrivalIdx: 0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Result.PerJob) != spec.Jobs {
		t.Fatalf("finished %d of %d jobs", len(run.Result.PerJob), spec.Jobs)
	}
	if run.Result.Makespan <= 0 || run.Result.Utilization <= 0 || run.Result.Utilization > 1+1e-9 {
		t.Fatalf("result = %+v", run.Result)
	}
	if len(run.Slowdowns) != spec.Jobs {
		t.Fatalf("slowdowns = %d", len(run.Slowdowns))
	}
	for i, s := range run.Slowdowns {
		if s < 1-1e-9 {
			t.Fatalf("slowdown[%d] = %v < 1", i, s)
		}
	}
	// Same cell, same seed: identical outcome.
	again, err := spec.RunCell(CellParams{
		Nodes: 8, Load: 1, Scheduler: "equipartition", ArrivalIdx: 0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, again) {
		t.Fatal("RunCell not deterministic")
	}
}

func TestRunCellMatchesClosedSim(t *testing.T) {
	// A closed batch driven through RunCell must match feeding the same
	// jobs to cluster.NewSim + Run directly.
	spec := baseSpec()
	spec.Jobs = 6
	spec.Arrivals = ArrivalList{{Process: "closed"}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	run, err := spec.RunCell(CellParams{Nodes: 8, Load: 1, Scheduler: "equipartition", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	jobs := streamJobs(t, spec, 0, 3)
	sim, err := cluster.NewSim(8, sched.Equipartition{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run()
	if math.Abs(run.Result.Makespan-want.Makespan) > 1e-9 {
		t.Fatalf("makespan %v vs %v", run.Result.Makespan, want.Makespan)
	}
	if math.Abs(run.Result.MeanResponse-want.MeanResponse) > 1e-9 {
		t.Fatalf("mean response %v vs %v", run.Result.MeanResponse, want.MeanResponse)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	body := `{
		"name": "file",
		"nodes": [4, 8],
		"loads": [0.5, 1.0],
		"schedulers": ["rigid-fcfs", "efficiency-greedy"],
		"seed": 9,
		"jobs": 5,
		"mix": [{"kind": "stencil", "grid_n": 324, "iterations": 4}],
		"arrivals": [
			{"process": "closed"},
			{"process": "bursty", "burst_interarrival_s": 1, "calm_interarrival_s": 30,
			 "burst_dwell_s": 5, "calm_dwell_s": 60}
		]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "file" || len(spec.Arrivals) != 2 || spec.dir != dir {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestArrivalLabels(t *testing.T) {
	if got := (ArrivalSpec{Process: "poisson"}).Label(); got != "poisson" {
		t.Fatalf("label = %q", got)
	}
	if got := (ArrivalSpec{Process: "trace", Path: "a/b/jobs.csv"}).Label(); got != "trace:jobs.csv" {
		t.Fatalf("label = %q", got)
	}
}

func TestStencilProfileShape(t *testing.T) {
	phases := MixSpec{Kind: "stencil", GridN: 648, Iterations: 5}.stencilPhases()
	if len(phases) != 5 {
		t.Fatalf("phases = %d", len(phases))
	}
	for _, ph := range phases {
		if ph.Work <= 0 || ph.Comm <= 0 {
			t.Fatalf("phase = %+v", ph)
		}
	}
	// Native mixes lower their comm-factor model onto Phase.Comm (the
	// inlined fast path); the value must match the registered "stencil"
	// model's curve.
	if want := appmodel.StencilComm(648, 0); phases[0].Comm != want {
		t.Fatalf("stencil comm = %g, want registered model's %g", phases[0].Comm, want)
	}
	// Bigger grids amortize the halo: comm factor must shrink.
	big := MixSpec{Kind: "stencil", GridN: 2592, Iterations: 1}.stencilPhases()
	if big[0].Comm >= phases[0].Comm {
		t.Fatalf("comm not shrinking with grid: %v vs %v", big[0].Comm, phases[0].Comm)
	}
}

func TestParseErrorsMentionContext(t *testing.T) {
	_, err := Parse([]byte(`{"nodes":[4],"seed":1,"jobs":2,"mix":[{"kind":"synthetic","phases":1,"work_s":1}],"arrivals":[{"process":"weird"}]}`))
	if err == nil || !strings.Contains(err.Error(), "arrivals[0]") {
		t.Fatalf("err = %v", err)
	}
}
