package scenario

import (
	"reflect"
	"strings"
	"testing"

	"dpsim/internal/obs"
)

const observeScenario = `{
  "name": "observe-test",
  "nodes": [8],
  "seed": 7,
  "jobs": 6,
  "schedulers": ["equipartition", "rigid-fcfs"],
  "mix": [{"kind": "synthetic", "phases": 3, "work_s": 40, "comm": 0.05}],
  "arrivals": {"process": "poisson", "mean_interarrival_s": 10},
  "availability": {"process": "spot", "reclaim_mean_s": 60, "reclaim_nodes": 2, "restore_mean_s": 30, "horizon_s": 600},
  "reconfig": {"redistribution_s_per_node": 0.05, "lost_work_s": 1},
  "observe": {"sample_dt_s": 2, "trace": true, "timeseries": true}
}`

// TestObserveBlockParses: the observe block round-trips through Parse
// with its knobs intact.
func TestObserveBlockParses(t *testing.T) {
	spec, err := Parse([]byte(observeScenario))
	if err != nil {
		t.Fatal(err)
	}
	o := spec.Observe
	if o == nil {
		t.Fatal("observe block dropped")
	}
	if o.SampleDTS != 2 || !o.Trace || !o.Timeseries {
		t.Errorf("observe = %+v", o)
	}
	cfg := o.RecorderConfig("equipartition")
	if cfg.Label != "equipartition" {
		t.Errorf("config label = %q", cfg.Label)
	}
}

// TestObserveValidationNamesKeys: every invalid observe field must be
// rejected with an error naming its JSON key.
func TestObserveValidationNamesKeys(t *testing.T) {
	cases := []struct{ block, key string }{
		{`{"sample_dt_s": -1}`, "observe.sample_dt_s"},
		{`{"timeseries": true}`, "observe.sample_dt_s"},
		{`{"max_samples": -1}`, "observe.max_samples"},
		{`{"max_spans": -1}`, "observe.max_spans"},
		{`{"max_events": -1}`, "observe.max_events"},
	}
	for _, c := range cases {
		data := `{"nodes":[4],"seed":1,"jobs":1,` +
			`"mix":[{"kind":"synthetic","phases":1,"work_s":1}],` +
			`"arrivals":{"process":"closed"},"observe":` + c.block + `}`
		_, err := Parse([]byte(data))
		if err == nil {
			t.Errorf("block %s accepted", c.block)
			continue
		}
		if !strings.Contains(err.Error(), c.key) {
			t.Errorf("block %s rejected without naming %s: %v", c.block, c.key, err)
		}
	}
}

// TestRunCellProbeIdentity pins the observer-effect-free contract at the
// scenario layer: running a cell with the recorder and sampler attached
// must produce a CellRun deeply identical to the unobserved run, while
// the recorder actually captures the run.
func TestRunCellProbeIdentity(t *testing.T) {
	spec, err := Parse([]byte(observeScenario))
	if err != nil {
		t.Fatal(err)
	}
	for idx := range spec.Schedulers {
		p := CellParams{Nodes: 8, Load: 1, SchedulerIdx: idx, Seed: 99}
		bare, err := spec.RunCell(p)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder(spec.Observe.RecorderConfig(spec.Schedulers[idx].Label()))
		p.Probe = rec
		probed, err := spec.RunCell(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("%s: probe changed the CellRun:\nbare:   %+v\nprobed: %+v",
				spec.Schedulers[idx].Label(), bare.Result, probed.Result)
		}
		sum := rec.Summarize()
		if sum.Arrived == 0 || sum.Samples == 0 || len(rec.Spans()) == 0 {
			t.Errorf("%s: recorder captured nothing: %+v", spec.Schedulers[idx].Label(), sum)
		}
	}
}

// TestRunCellSampleOverride: CellParams.SampleDTS overrides the spec's
// interval; the finer grid yields strictly more samples.
func TestRunCellSampleOverride(t *testing.T) {
	spec, err := Parse([]byte(observeScenario))
	if err != nil {
		t.Fatal(err)
	}
	coarse := obs.NewRecorder(obs.Config{})
	if _, err := spec.RunCell(CellParams{Nodes: 8, Load: 1, Seed: 5, Probe: coarse}); err != nil {
		t.Fatal(err)
	}
	fine := obs.NewRecorder(obs.Config{})
	if _, err := spec.RunCell(CellParams{Nodes: 8, Load: 1, Seed: 5, Probe: fine, SampleDTS: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(fine.Samples()) <= len(coarse.Samples()) {
		t.Errorf("fine grid %d samples, coarse %d", len(fine.Samples()), len(coarse.Samples()))
	}
}
