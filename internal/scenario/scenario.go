// Package scenario is the declarative workload layer over the malleable
// cluster simulator (internal/cluster): JSON scenario files describe the
// cluster sizes, scheduler policies, job mixes and arrival processes of an
// experiment, and the package expands them into fully deterministic job
// streams driven through the cluster simulator's step primitives.
//
// A scenario file names the dimensions of an experiment grid — nodes ×
// load × arrival process × availability process × scheduler — which
// internal/sweep expands and runs in parallel. Every random choice flows
// through forked internal/rng streams keyed on (seed, cell, replication,
// job), so results are bit-reproducible regardless of execution order or
// worker count.
//
// Supported arrival processes: closed job lists (all at t=0 or explicit
// instants), open Poisson, bursty MMPP-2 (a two-state Markov-modulated
// Poisson process), diurnal (a nonhomogeneous Poisson process with a
// sinusoidal rate curve, sampled by thinning), and trace replay from the
// job CSVs of internal/trace.
//
// Supported job mixes: LU-profile jobs (per-iteration work from the
// paper's LU cost model), synthetic uniform-phase jobs with optional
// log-normal work noise, and stencil-derived jobs (Jacobi heat-diffusion
// compute/halo cost ratios from internal/stencil's model).
//
// Scenarios may additionally declare node-availability processes
// (internal/availability: maintenance windows, failures, spot
// preemption, churn, capacity-trace replay) as another grid axis, plus a
// reconfiguration-cost model priced by the cluster simulator.
//
// A scenario may also declare an application performance-model axis
// ("appmodels", internal/appmodel): each entry overrides every job's
// speedup response — Amdahl, Downey A–σ, comm-bound, roofline, fixed —
// while "mix" keeps the components' native models. The job mixes
// themselves are registry-backed: their comm factors are the registered
// lu/synthetic/stencil models' curves, lowered onto the phases' Comm
// field (the simulator's inlined fast path), bit-identically.
//
// See docs/scenario.md for the complete JSON schema reference.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dpsim/internal/appmodel"
	"dpsim/internal/availability"
	"dpsim/internal/obs"
	"dpsim/internal/sched"
)

// Spec is a declarative scenario: the experiment grid and its workload.
type Spec struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Nodes lists the cluster sizes of the grid (at least one).
	Nodes []int `json:"nodes"`
	// Loads lists offered-load multipliers applied to the arrival rate
	// (default {1}). Load 2 halves mean inter-arrival times; for trace
	// replay it compresses the trace's time axis by the same factor.
	Loads []float64 `json:"loads,omitempty"`
	// Schedulers lists the scheduling policies of the grid. Each entry is
	// either a bare policy name ("equipartition") or an object with
	// construction parameters ({"name": "malleable-hysteresis",
	// "params": {"epoch_s": 45, "min_delta": 2}}); valid names are
	// sched.Names(). Empty means every registered policy with default
	// parameters.
	Schedulers SchedulerList `json:"schedulers,omitempty"`
	// Seed is the master seed; every cell and replication derives its own
	// independent stream from it.
	Seed uint64 `json:"seed"`
	// Jobs bounds the number of generated jobs per run (ignored for
	// closed lists with explicit times and for trace replay, which carry
	// their own counts unless Jobs further truncates them).
	Jobs int `json:"jobs,omitempty"`
	// HorizonS optionally stops generating arrivals past this virtual
	// instant (0 = no horizon). Jobs already admitted still run to
	// completion.
	HorizonS float64 `json:"horizon_s,omitempty"`
	// Mix is the job-body distribution sampled for generated arrivals.
	// Required unless every arrival process is a trace replay.
	Mix []MixSpec `json:"mix,omitempty"`
	// Arrivals lists the arrival processes of the grid. The JSON value
	// may be a single object or an array.
	Arrivals ArrivalList `json:"arrivals"`
	// Availability lists node-availability processes forming another grid
	// axis (availability.Spec schema: maintenance windows, failures, spot
	// preemption, churn, capacity-trace replay; "none" is the fixed-pool
	// baseline). Empty means the pool never changes. The JSON value may
	// be a single object or an array.
	Availability AvailabilityList `json:"availability,omitempty"`
	// AppModels lists application performance models forming another
	// grid axis (internal/appmodel registry). Each entry is a bare model
	// name or spec string ("amdahl(f=0.1)") or a {"name", "params"}
	// object; the sentinel "mix" is the native baseline where every mix
	// component keeps its own registered model. Empty means native
	// models only (no extra axis). The JSON value may be a single entry
	// or an array.
	AppModels AppModelList `json:"appmodels,omitempty"`
	// Reconfig prices dynamic reconfiguration (applies to every cell);
	// nil means reconfiguration is free, the classic simulator.
	Reconfig *ReconfigSpec `json:"reconfig,omitempty"`
	// Observe configures the observability layer (internal/obs) for runs
	// of this scenario: the time-series sample interval and which exports
	// the CLIs should produce. nil leaves observation off — the simulator
	// runs with no probe attached (the zero-cost path).
	Observe *ObserveSpec `json:"observe,omitempty"`
	// Federation turns the scenario into a multi-cluster experiment: the
	// block's member clusters replace the spec-level nodes, schedulers,
	// appmodels and availability axes (which must then be absent), and
	// its admission × routing policy lists become grid axes instead. nil
	// is the classic single-cluster scenario.
	Federation *FederationSpec `json:"federation,omitempty"`

	// dir is the directory of the scenario file, for resolving relative
	// trace paths; empty for in-memory specs.
	dir string
}

// SchedulerSpec selects one scheduling policy of the grid: a registered
// policy name (sched.Names(), case-insensitive) plus optional
// construction parameters. In scenario JSON an entry may be a bare
// string or a {"name": ..., "params": {...}} object.
type SchedulerSpec struct {
	Name   string       `json:"name"`
	Params sched.Params `json:"params,omitempty"`
}

// UnmarshalJSON implements json.Unmarshaler: a bare string is a policy
// name with default parameters.
func (sp *SchedulerSpec) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		*sp = SchedulerSpec{Name: name}
		return nil
	}
	type plain SchedulerSpec
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*sp = SchedulerSpec(p)
	return nil
}

// Label names the policy for reports and CSV columns, parameters
// included: "malleable-hysteresis(epoch_s=45,min_delta=2)". The label is
// itself a valid scheduler spec (sched.ParseSpec round-trips it), so an
// exported grid row fully identifies its policy.
func (sp SchedulerSpec) Label() string { return sched.FormatSpec(sp.Name, sp.Params) }

// New constructs a fresh policy instance (policies may hold per-run
// state, so every simulation must construct its own).
func (sp SchedulerSpec) New() (sched.Scheduler, error) { return sched.New(sp.Name, sp.Params) }

// validate resolves the policy once, failing fast on unknown names or
// parameters, and canonicalizes the name for stable labels.
func (sp *SchedulerSpec) validate() error {
	s, err := sp.New()
	if err != nil {
		return err
	}
	sp.Name = s.Name()
	return nil
}

// SchedulerList unmarshals from a single entry or an array of entries,
// like ArrivalList.
type SchedulerList []SchedulerSpec

// splitSpecs splits a comma-separated CLI spec list into tokens. Commas
// inside a parameter list — "a(x=1,y=2),b" — belong to the spec, so
// splitting tracks parenthesis depth. Empty tokens are an error (what is
// the name of the item before ",,"?).
func splitSpecs(arg, what string) ([]string, error) {
	var toks []string
	depth, start := 0, 0
	flush := func(tok string) error {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return fmt.Errorf("scenario: empty %s spec in %q", what, arg)
		}
		toks = append(toks, tok)
		return nil
	}
	for i := 0; i < len(arg); i++ {
		switch arg[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(arg[start:i]); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(arg[start:]); err != nil {
		return nil, err
	}
	return toks, nil
}

// ParseSchedulerList splits a comma-separated CLI scheduler list into
// specs. Entries are not yet validated; Spec.Validate resolves them.
func ParseSchedulerList(arg string) (SchedulerList, error) {
	toks, err := splitSpecs(arg, "scheduler")
	if err != nil {
		return nil, err
	}
	var list SchedulerList
	for _, tok := range toks {
		name, params, err := sched.ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		list = append(list, SchedulerSpec{Name: name, Params: params})
	}
	return list, nil
}

// ApplySchedulerOverride replaces the spec's scheduler axis with a
// CLI-provided comma-separated list and re-validates the spec — the
// shared implementation of both CLIs' -schedulers flags.
func (s *Spec) ApplySchedulerOverride(arg string) error {
	list, err := ParseSchedulerList(arg)
	if err != nil {
		return err
	}
	s.Schedulers = list
	return s.Validate()
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *SchedulerList) UnmarshalJSON(data []byte) error {
	var many []SchedulerSpec
	if err := json.Unmarshal(data, &many); err == nil {
		*l = many
		return nil
	}
	var one SchedulerSpec
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	*l = SchedulerList{one}
	return nil
}

// AppModelSpec selects one application performance model of the grid: a
// registered model name (appmodel.Names(), case-insensitive) plus
// optional construction parameters, or the sentinel "mix" — the native
// baseline where every mix component keeps its own registered model. In
// scenario JSON an entry may be a bare string (a name or a full
// "name(key=value,...)" spec) or a {"name": ..., "params": {...}}
// object.
type AppModelSpec struct {
	Name   string          `json:"name"`
	Params appmodel.Params `json:"params,omitempty"`
}

// MixModel is the sentinel AppModelSpec name selecting each mix
// component's native model (no override).
const MixModel = "mix"

// UnmarshalJSON implements json.Unmarshaler: a bare string is a model
// name or spec string.
func (ap *AppModelSpec) UnmarshalJSON(data []byte) error {
	var spec string
	if err := json.Unmarshal(data, &spec); err == nil {
		name, params, err := appmodel.ParseSpec(spec)
		if err != nil {
			return err
		}
		*ap = AppModelSpec{Name: name, Params: params}
		return nil
	}
	type plain AppModelSpec
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*ap = AppModelSpec(p)
	return nil
}

// Label names the model for reports and CSV columns, parameters
// included: "amdahl(f=0.1)". The label is itself a valid model spec
// (appmodel.ParseSpec round-trips it), so an exported grid row fully
// identifies its performance model.
func (ap AppModelSpec) Label() string { return appmodel.FormatSpec(ap.Name, ap.Params) }

// IsMix reports whether the spec is the native-model sentinel.
func (ap AppModelSpec) IsMix() bool { return strings.EqualFold(ap.Name, MixModel) }

// New constructs the model instance, or nil for the "mix" sentinel
// (models are immutable, so one instance serves a whole run).
func (ap AppModelSpec) New() (appmodel.AppModel, error) {
	if ap.IsMix() {
		return nil, nil
	}
	return appmodel.New(ap.Name, ap.Params)
}

// validate resolves the model once, failing fast on unknown names or
// parameters, and canonicalizes the name for stable labels.
func (ap *AppModelSpec) validate() error {
	if ap.IsMix() {
		if len(ap.Params) > 0 {
			return fmt.Errorf("appmodel sentinel %q takes no parameters", MixModel)
		}
		ap.Name = MixModel
		return nil
	}
	m, err := ap.New()
	if err != nil {
		return err
	}
	ap.Name = m.Name()
	return nil
}

// AppModelList unmarshals from a single entry or an array of entries,
// like SchedulerList.
type AppModelList []AppModelSpec

// UnmarshalJSON implements json.Unmarshaler.
func (l *AppModelList) UnmarshalJSON(data []byte) error {
	var many []AppModelSpec
	if err := json.Unmarshal(data, &many); err == nil {
		*l = many
		return nil
	}
	var one AppModelSpec
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	*l = AppModelList{one}
	return nil
}

// ParseAppModelList splits a comma-separated CLI appmodel list into
// specs (paren-aware, like ParseSchedulerList). Entries are not yet
// validated; Spec.Validate resolves them.
func ParseAppModelList(arg string) (AppModelList, error) {
	toks, err := splitSpecs(arg, "appmodel")
	if err != nil {
		return nil, err
	}
	var list AppModelList
	for _, tok := range toks {
		name, params, err := appmodel.ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		list = append(list, AppModelSpec{Name: name, Params: params})
	}
	return list, nil
}

// ApplyAppModelOverride replaces the spec's appmodel axis with a
// CLI-provided comma-separated list and re-validates the spec — the
// shared implementation of both CLIs' -appmodels flags.
func (s *Spec) ApplyAppModelOverride(arg string) error {
	list, err := ParseAppModelList(arg)
	if err != nil {
		return err
	}
	s.AppModels = list
	return s.Validate()
}

// ObserveSpec is the scenario's "observe" block: it opts runs into the
// observability layer and sets its knobs. Samples ride the simulator's
// event queue but mutate nothing, so enabling observation never changes
// a Result or a golden output.
type ObserveSpec struct {
	// SampleDTS is the fixed time-series sample interval in virtual
	// seconds. Required (> 0) when Timeseries is set; 0 disables
	// sampling.
	SampleDTS float64 `json:"sample_dt_s,omitempty"`
	// Trace requests the Chrome trace-event export (Perfetto /
	// chrome://tracing) from CLIs honoring this block.
	Trace bool `json:"trace,omitempty"`
	// Timeseries requests the time-series CSV export.
	Timeseries bool `json:"timeseries,omitempty"`
	// MaxSamples, MaxSpans and MaxEvents bound the recorder's ring
	// buffers (0 = the internal/obs defaults).
	MaxSamples int `json:"max_samples,omitempty"`
	// MaxSpans bounds the retained per-job spans.
	MaxSpans int `json:"max_spans,omitempty"`
	// MaxEvents bounds the capacity/preemption/charge event logs.
	MaxEvents int `json:"max_events,omitempty"`
}

// validate checks the observe block; error messages name the offending
// JSON key so scenario authors can fix the file directly.
func (o *ObserveSpec) validate() error {
	if o.SampleDTS < 0 {
		return fmt.Errorf("observe.sample_dt_s must be >= 0, got %g", o.SampleDTS)
	}
	if o.Timeseries && o.SampleDTS == 0 {
		return fmt.Errorf("observe.timeseries requires observe.sample_dt_s > 0")
	}
	if o.MaxSamples < 0 {
		return fmt.Errorf("observe.max_samples must be >= 0, got %d", o.MaxSamples)
	}
	if o.MaxSpans < 0 {
		return fmt.Errorf("observe.max_spans must be >= 0, got %d", o.MaxSpans)
	}
	if o.MaxEvents < 0 {
		return fmt.Errorf("observe.max_events must be >= 0, got %d", o.MaxEvents)
	}
	return nil
}

// RecorderConfig translates the block into the recorder bounds, naming
// the run with the given label.
func (o *ObserveSpec) RecorderConfig(label string) obs.Config {
	return obs.Config{
		Label:      label,
		MaxSamples: o.MaxSamples,
		MaxSpans:   o.MaxSpans,
		MaxEvents:  o.MaxEvents,
	}
}

// ReconfigSpec is the JSON form of cluster.ReconfigCost.
type ReconfigSpec struct {
	// RedistributionSPerNode pauses a resized job this many seconds per
	// node of allocation delta (data redistribution).
	RedistributionSPerNode float64 `json:"redistribution_s_per_node,omitempty"`
	// LostWorkS is the in-phase progress (work-seconds) lost per node
	// reclaimed by an abrupt capacity drop.
	LostWorkS float64 `json:"lost_work_s,omitempty"`
}

// AvailabilityList unmarshals from either a single JSON object or an
// array of objects, like ArrivalList.
type AvailabilityList []availability.Spec

// UnmarshalJSON implements json.Unmarshaler.
func (l *AvailabilityList) UnmarshalJSON(data []byte) error {
	var many []availability.Spec
	if err := json.Unmarshal(data, &many); err == nil {
		*l = many
		return nil
	}
	var one availability.Spec
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	*l = AvailabilityList{one}
	return nil
}

// MixSpec is one weighted component of the job mix.
type MixSpec struct {
	// Kind selects the generator: "lu", "synthetic" or "stencil".
	Kind string `json:"kind"`
	// Weight is the sampling weight (default 1).
	Weight float64 `json:"weight,omitempty"`
	// MaxNodes caps the job's allocation; 0 draws uniformly from
	// [2, nodes] (or the full cluster when it has ≤ 2 nodes).
	MaxNodes int `json:"max_nodes,omitempty"`
	// JobWeight is the fair-share weight carried by jobs drawn from this
	// mix component (default 1): proportional-share policies grant a
	// weight-2 job twice the share of a weight-1 job. Policies that are
	// not share-based ignore it.
	JobWeight float64 `json:"job_weight,omitempty"`

	// lu: matrix size N and block size R (R must divide N). Zero N picks
	// randomly from the paper's standard sizes.
	N int `json:"n,omitempty"`
	R int `json:"r,omitempty"`

	// synthetic: Phases uniform phases totalling WorkS serial seconds
	// with communication factor Comm; CV adds log-normal noise with that
	// coefficient of variation to the total work.
	Phases int     `json:"phases,omitempty"`
	WorkS  float64 `json:"work_s,omitempty"`
	Comm   float64 `json:"comm,omitempty"`
	CV     float64 `json:"cv,omitempty"`

	// stencil: GridN×GridN Jacobi grid for Iterations sweeps on nodes of
	// FlopsPerSec (default 63e6, the paper's UltraSparc II).
	GridN       int     `json:"grid_n,omitempty"`
	Iterations  int     `json:"iterations,omitempty"`
	FlopsPerSec float64 `json:"flops_per_sec,omitempty"`
}

// ArrivalSpec describes one arrival process.
type ArrivalSpec struct {
	// Process is "closed", "poisson", "bursty", "diurnal" or "trace".
	Process string `json:"process"`
	// MeanInterarrivalS is the mean inter-arrival time at load 1
	// (poisson; diurnal's time-averaged mean).
	MeanInterarrivalS float64 `json:"mean_interarrival_s,omitempty"`

	// bursty (MMPP-2): mean inter-arrival inside bursts and between
	// them, and the exponential mean dwell time in each regime.
	BurstInterarrivalS float64 `json:"burst_interarrival_s,omitempty"`
	CalmInterarrivalS  float64 `json:"calm_interarrival_s,omitempty"`
	BurstDwellS        float64 `json:"burst_dwell_s,omitempty"`
	CalmDwellS         float64 `json:"calm_dwell_s,omitempty"`

	// diurnal: rate(t) = base·(1 + Amplitude·sin(2πt/PeriodS)), with
	// base = load/MeanInterarrivalS. Amplitude must lie in [0, 1).
	PeriodS   float64 `json:"period_s,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`

	// trace: path to a job CSV (trace.ReadJobs format), relative to the
	// scenario file.
	Path string `json:"path,omitempty"`

	// closed: optional explicit arrival instants; empty means all jobs
	// arrive at t=0.
	Times []float64 `json:"times,omitempty"`
}

// Label names the process for reports and CSV columns.
func (a ArrivalSpec) Label() string {
	if a.Process == "trace" && a.Path != "" {
		return "trace:" + filepath.Base(a.Path)
	}
	return a.Process
}

// ArrivalList unmarshals from either a single JSON object or an array of
// objects, so simple scenarios stay terse.
type ArrivalList []ArrivalSpec

// UnmarshalJSON implements json.Unmarshaler.
func (l *ArrivalList) UnmarshalJSON(data []byte) error {
	var many []ArrivalSpec
	if err := json.Unmarshal(data, &many); err == nil {
		*l = many
		return nil
	}
	var one ArrivalSpec
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	*l = ArrivalList{one}
	return nil
}

// Load reads and validates a scenario file. Relative trace paths are
// resolved against the file's directory.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	spec, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	spec.dir = filepath.Dir(path)
	return spec, nil
}

// Parse decodes and validates a scenario from JSON bytes.
func Parse(data []byte) (*Spec, error) {
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the spec and fills defaults (Loads, Schedulers, Weight).
func (s *Spec) Validate() error {
	if s.Federation != nil {
		// Validated first: the federation block forbids the spec-level
		// axes it replaces and derives the nodes entry from the fleet.
		if err := s.Federation.validate(s); err != nil {
			return err
		}
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("no cluster sizes (nodes)")
	}
	for _, n := range s.Nodes {
		if n <= 0 {
			return fmt.Errorf("invalid cluster size %d", n)
		}
	}
	if len(s.Loads) == 0 {
		s.Loads = []float64{1}
	}
	for _, l := range s.Loads {
		if l <= 0 {
			return fmt.Errorf("invalid load %g", l)
		}
	}
	if len(s.Schedulers) == 0 && s.Federation == nil {
		for _, name := range sched.Names() {
			s.Schedulers = append(s.Schedulers, SchedulerSpec{Name: name})
		}
	}
	for i := range s.Schedulers {
		if err := s.Schedulers[i].validate(); err != nil {
			return fmt.Errorf("schedulers[%d]: %w", i, err)
		}
	}
	if len(s.Arrivals) == 0 {
		return fmt.Errorf("no arrival process")
	}
	needsMix := false
	for i := range s.Arrivals {
		if err := s.Arrivals[i].validate(s); err != nil {
			return fmt.Errorf("arrivals[%d]: %w", i, err)
		}
		if s.Arrivals[i].Process != "trace" {
			needsMix = true
		}
	}
	if needsMix && len(s.Mix) == 0 {
		return fmt.Errorf("job mix required for generated arrivals")
	}
	for i := range s.Mix {
		if err := s.Mix[i].validate(); err != nil {
			return fmt.Errorf("mix[%d]: %w", i, err)
		}
	}
	for i := range s.Availability {
		if err := s.Availability[i].Validate(); err != nil {
			return fmt.Errorf("availability[%d]: %w", i, err)
		}
	}
	for i := range s.AppModels {
		if err := s.AppModels[i].validate(); err != nil {
			return fmt.Errorf("appmodels[%d]: %w", i, err)
		}
	}
	if s.Reconfig != nil && (s.Reconfig.RedistributionSPerNode < 0 || s.Reconfig.LostWorkS < 0) {
		return fmt.Errorf("reconfig costs must be >= 0")
	}
	if s.Observe != nil {
		if err := s.Observe.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (a *ArrivalSpec) validate(s *Spec) error {
	switch a.Process {
	case "closed":
		if len(a.Times) == 0 && s.Jobs <= 0 {
			return fmt.Errorf("closed process needs jobs > 0 or explicit times")
		}
		for i := 1; i < len(a.Times); i++ {
			if a.Times[i] < a.Times[i-1] {
				return fmt.Errorf("times not sorted at index %d", i)
			}
		}
		if len(a.Times) > 0 && a.Times[0] < 0 {
			return fmt.Errorf("negative arrival time")
		}
	case "poisson":
		if a.MeanInterarrivalS <= 0 {
			return fmt.Errorf("poisson needs mean_interarrival_s > 0")
		}
		if s.Jobs <= 0 && s.HorizonS <= 0 {
			return fmt.Errorf("open process needs jobs > 0 or horizon_s > 0")
		}
	case "bursty":
		if a.BurstInterarrivalS <= 0 || a.CalmInterarrivalS <= 0 {
			return fmt.Errorf("bursty needs burst_interarrival_s and calm_interarrival_s > 0")
		}
		if a.BurstDwellS <= 0 || a.CalmDwellS <= 0 {
			return fmt.Errorf("bursty needs burst_dwell_s and calm_dwell_s > 0")
		}
		if s.Jobs <= 0 && s.HorizonS <= 0 {
			return fmt.Errorf("open process needs jobs > 0 or horizon_s > 0")
		}
	case "diurnal":
		if a.MeanInterarrivalS <= 0 {
			return fmt.Errorf("diurnal needs mean_interarrival_s > 0")
		}
		if a.PeriodS <= 0 {
			return fmt.Errorf("diurnal needs period_s > 0")
		}
		if a.Amplitude < 0 || a.Amplitude >= 1 {
			return fmt.Errorf("diurnal amplitude %g outside [0, 1)", a.Amplitude)
		}
		if s.Jobs <= 0 && s.HorizonS <= 0 {
			return fmt.Errorf("open process needs jobs > 0 or horizon_s > 0")
		}
	case "trace":
		if a.Path == "" {
			return fmt.Errorf("trace needs a path")
		}
	default:
		return fmt.Errorf("unknown process %q", a.Process)
	}
	return nil
}

func (m *MixSpec) validate() error {
	if m.Weight < 0 {
		return fmt.Errorf("negative weight")
	}
	if m.Weight == 0 {
		m.Weight = 1
	}
	if m.MaxNodes < 0 {
		return fmt.Errorf("negative max_nodes")
	}
	if m.JobWeight < 0 {
		return fmt.Errorf("negative job_weight")
	}
	if m.JobWeight == 0 {
		m.JobWeight = 1
	}
	switch m.Kind {
	case "lu":
		if (m.N == 0) != (m.R == 0) {
			return fmt.Errorf("lu needs both n and r (or neither)")
		}
		if m.N > 0 && (m.R <= 0 || m.N%m.R != 0) {
			return fmt.Errorf("lu block size r=%d must divide n=%d", m.R, m.N)
		}
	case "synthetic":
		if m.Phases <= 0 || m.WorkS <= 0 {
			return fmt.Errorf("synthetic needs phases > 0 and work_s > 0")
		}
		if m.Comm < 0 || m.CV < 0 {
			return fmt.Errorf("synthetic comm and cv must be >= 0")
		}
		// The component's curve is the registered "synthetic" model;
		// construct it so registry range checks apply (the generator
		// lowers the curve onto Phase.Comm, the inlined fast path).
		if _, err := appmodel.New("synthetic", appmodel.Params{"comm": m.Comm}); err != nil {
			return err
		}
	case "stencil":
		if m.GridN <= 0 || m.Iterations <= 0 {
			return fmt.Errorf("stencil needs grid_n > 0 and iterations > 0")
		}
		if m.FlopsPerSec < 0 {
			return fmt.Errorf("stencil flops_per_sec must be >= 0")
		}
		if _, err := appmodel.New("stencil",
			appmodel.Params{"grid_n": float64(m.GridN), "flops": m.FlopsPerSec}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mix kind %q", m.Kind)
	}
	return nil
}
