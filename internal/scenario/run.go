package scenario

import (
	"fmt"

	"dpsim/internal/appmodel"
	"dpsim/internal/cluster"
	"dpsim/internal/eventq"
	"dpsim/internal/obs"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// CellParams identifies one point of the experiment grid plus the seed of
// one replication.
type CellParams struct {
	Nodes int
	Load  float64
	// Scheduler selects the policy as a spec string — a bare name or
	// "name(key=value,...)", e.g. a SchedulerSpec.Label(). When empty,
	// SchedulerIdx indexes Spec.Schedulers instead — like ArrivalIdx,
	// its zero value selects the first axis entry.
	Scheduler    string
	SchedulerIdx int
	ArrivalIdx   int
	// AvailIdx indexes Spec.Availability; any value is the fixed pool
	// when the spec lists no availability processes, and -1 forces it.
	AvailIdx int
	// AppModel selects the application performance model as a spec
	// string — "mix" (the native per-component models), a registered
	// model name, or "name(key=value,...)". When empty, AppModelIdx
	// indexes Spec.AppModels instead: any value is the native baseline
	// when the spec lists no appmodels, and -1 forces it.
	AppModel    string
	AppModelIdx int
	// Admission and Routing select the federation policy axes, ignored
	// for non-federated specs. Like Scheduler, the spec strings take
	// precedence; when empty, AdmissionIdx / RoutingIdx index the
	// federation block's lists (zero value = first entry).
	Admission    string
	AdmissionIdx int
	Routing      string
	RoutingIdx   int
	Seed         uint64
	// Probe attaches an observability probe to the run (nil = the
	// zero-cost unobserved path). Attaching one never changes the
	// CellRun: probes receive copies of plain values only.
	Probe obs.Probe
	// MemberProbes optionally attaches one probe per federated member
	// cluster (index-aligned with the federation block's clusters); a
	// nil entry falls back to Probe. Ignored for non-federated specs.
	MemberProbes []obs.Probe
	// SampleDTS overrides the time-series sample interval in virtual
	// seconds; 0 falls back to the spec's observe.sample_dt_s. Sampling
	// requires a Probe.
	SampleDTS float64
}

// CellRun is the outcome of one simulated replication.
type CellRun struct {
	Result cluster.Result
	// Slowdowns is the per-finished-job bounded slowdown: response time
	// divided by the job's best-case runtime on its own MaxNodes
	// allocation (≥ 1 up to scheduler effects).
	Slowdowns []float64
	// Rejected counts arrivals refused by the admission policy; Routed
	// is the per-member delivered-job count and ClusterResults the
	// per-member results, index-aligned with the federation block's
	// clusters. All zero/nil for non-federated specs.
	Rejected       int
	Routed         []int
	ClusterResults []cluster.Result
}

// RunCell expands one grid cell into a job stream and drives it through
// the cluster simulator's step primitives, injecting each arrival as the
// shared clock reaches it — the open-system event loop. For federated
// specs the same loop dispatches each arrival through the federation's
// admission and routing policies instead (runFederatedCell).
func (s *Spec) RunCell(p CellParams) (*CellRun, error) {
	if s.Federation != nil {
		return s.runFederatedCell(p)
	}
	var schedSpec SchedulerSpec
	switch {
	case p.Scheduler != "":
		name, params, err := sched.ParseSpec(p.Scheduler)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		schedSpec = SchedulerSpec{Name: name, Params: params}
	case p.SchedulerIdx >= 0 && p.SchedulerIdx < len(s.Schedulers):
		schedSpec = s.Schedulers[p.SchedulerIdx]
	default:
		return nil, fmt.Errorf("scenario: scheduler index %d out of range", p.SchedulerIdx)
	}
	policy, err := schedSpec.New()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var amSpec AppModelSpec
	switch {
	case p.AppModel != "":
		name, params, err := appmodel.ParseSpec(p.AppModel)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		amSpec = AppModelSpec{Name: name, Params: params}
	case len(s.AppModels) == 0 || p.AppModelIdx < 0:
		amSpec = AppModelSpec{Name: MixModel}
	case p.AppModelIdx < len(s.AppModels):
		amSpec = s.AppModels[p.AppModelIdx]
	default:
		return nil, fmt.Errorf("scenario: appmodel index %d out of range", p.AppModelIdx)
	}
	model, err := amSpec.New()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	stream, err := s.Stream(p.ArrivalIdx, p.Nodes, p.Load, p.Seed)
	if err != nil {
		return nil, err
	}
	stream.SetAppModel(model)
	sim, err := cluster.NewSim(p.Nodes, policy, nil)
	if err != nil {
		return nil, err
	}
	if len(s.Availability) > 0 && p.AvailIdx >= 0 {
		if p.AvailIdx >= len(s.Availability) {
			return nil, fmt.Errorf("scenario: availability index %d out of range", p.AvailIdx)
		}
		av := s.Availability[p.AvailIdx]
		av.Dir = s.dir
		// The job stream consumes the first two forks of the cell seed
		// (arrival instants, job bodies); the capacity timeline takes the
		// third, so turning availability on never perturbs the workload
		// itself.
		base := rng.New(p.Seed)
		base.Fork()
		base.Fork()
		changes, err := av.Generate(p.Nodes, base.Fork())
		if err != nil {
			return nil, err
		}
		if err := sim.SetCapacityChanges(changes); err != nil {
			return nil, err
		}
	}
	if s.Reconfig != nil {
		err := sim.SetReconfigCost(cluster.ReconfigCost{
			RedistributionSPerNode: s.Reconfig.RedistributionSPerNode,
			LostWorkS:              s.Reconfig.LostWorkS,
		})
		if err != nil {
			return nil, err
		}
	}
	if p.Probe != nil {
		if err := sim.SetProbe(p.Probe); err != nil {
			return nil, err
		}
		dt := p.SampleDTS
		if dt == 0 && s.Observe != nil {
			dt = s.Observe.SampleDTS
		}
		if dt > 0 {
			if err := sim.SetSampleInterval(dt); err != nil {
				return nil, err
			}
		}
	}
	ideal := make(map[int]float64)
	pending, ok := stream.Next()
	for {
		et, evOK := sim.PeekNextEventTime()
		if ok {
			at := eventq.Time(eventq.DurationOf(pending.Arrival))
			if !evOK || at <= et {
				ideal[pending.ID] = idealRuntime(pending)
				if err := sim.Inject(pending); err != nil {
					return nil, err
				}
				pending, ok = stream.Next()
				continue
			}
		}
		if !evOK {
			break
		}
		sim.ProcessNextEvent()
	}
	res := sim.Result()
	run := &CellRun{Result: res, Slowdowns: make([]float64, 0, len(res.PerJob))}
	for _, j := range res.PerJob {
		if best := ideal[j.ID]; best > 0 {
			run.Slowdowns = append(run.Slowdowns, j.Response/best)
		}
	}
	return run, nil
}

// idealRuntime is the job's runtime with MaxNodes held exclusively for
// every phase — the denominator of the bounded-slowdown metric — under
// the job's performance model when it carries one.
func idealRuntime(j *cluster.Job) float64 {
	var t float64
	for _, ph := range j.Phases {
		rate := ph.Rate(j.MaxNodes)
		if j.Model != nil {
			rate = j.Model.Rate(ph.Work, j.MaxNodes)
		}
		if rate > 0 {
			t += ph.Work / rate
		}
	}
	return t
}
