package scenario

import (
	"strings"
	"testing"
)

// availSpec is a minimal two-axis availability scenario used across the
// tests below.
const availSpec = `{
	"name": "avail",
	"nodes": [8],
	"seed": 17,
	"jobs": 6,
	"mix": [{"kind": "synthetic", "phases": 3, "work_s": 60, "comm": 0.05}],
	"arrivals": {"process": "poisson", "mean_interarrival_s": 6},
	"availability": [
		{"process": "none"},
		{"process": "failures", "mttf_s": 25, "mttr_s": 15, "horizon_s": 1500}
	],
	"reconfig": {"redistribution_s_per_node": 0.1, "lost_work_s": 1}
}`

func TestParseAvailability(t *testing.T) {
	spec, err := Parse([]byte(availSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Availability) != 2 {
		t.Fatalf("availability entries = %d, want 2", len(spec.Availability))
	}
	if spec.Availability[0].Label() != "none" || spec.Availability[1].Label() != "failures" {
		t.Fatalf("labels = %q, %q", spec.Availability[0].Label(), spec.Availability[1].Label())
	}
	if spec.Reconfig == nil || spec.Reconfig.LostWorkS != 1 {
		t.Fatalf("reconfig = %+v", spec.Reconfig)
	}
	// Defaults filled by validation.
	if spec.Availability[1].MinCapacity != 1 {
		t.Fatalf("min capacity default = %d", spec.Availability[1].MinCapacity)
	}
}

// TestParseAvailabilitySingleObject: like arrivals, a single object is
// accepted in place of an array.
func TestParseAvailabilitySingleObject(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "one",
		"nodes": [4],
		"seed": 1,
		"jobs": 2,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "closed"},
		"availability": {"process": "spot", "reclaim_mean_s": 100}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Availability) != 1 || spec.Availability[0].Process != "spot" {
		t.Fatalf("availability = %+v", spec.Availability)
	}
}

func TestParseAvailabilityRejectsBadSpecs(t *testing.T) {
	bad := []string{
		`"availability": {"process": "volcano"}`,
		`"availability": {"process": "failures", "mttf_s": 10}`,
		`"availability": {"process": "maintenance", "period_s": 5, "duration_s": 9, "nodes_down": 1}`,
		`"availability": {"process": "trace"}`,
		`"reconfig": {"lost_work_s": -1}`,
	}
	for _, frag := range bad {
		body := `{
			"name": "bad", "nodes": [4], "seed": 1, "jobs": 2,
			"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
			"arrivals": {"process": "closed"},
			` + frag + `}`
		if _, err := Parse([]byte(body)); err == nil {
			t.Fatalf("accepted %s", frag)
		}
	}
}

// TestUnknownSchedulerErrorListsNames: the satellite contract — a typo'd
// scheduler name gets the valid list back.
func TestUnknownSchedulerErrorListsNames(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "x", "nodes": [4], "seed": 1, "jobs": 2,
		"schedulers": ["equipartitionn"],
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "closed"}
	}`))
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	for _, name := range []string{"rigid-fcfs", "moldable", "equipartition", "efficiency-greedy"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

// TestSchedulerNamesCaseInsensitiveInSpec: mixed-case scheduler names in
// scenario files resolve.
func TestSchedulerNamesCaseInsensitiveInSpec(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "x", "nodes": [4], "seed": 1, "jobs": 2,
		"schedulers": ["Equipartition", "RIGID-FCFS"],
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "closed"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.RunCell(CellParams{Nodes: 4, Load: 1, Scheduler: "Equipartition", ArrivalIdx: 0, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCellAvailabilityAxis: the failures axis must perturb the
// results while the "none" axis reproduces the fixed pool, and the
// workload itself must not depend on which axis runs.
func TestRunCellAvailabilityAxis(t *testing.T) {
	spec, err := Parse([]byte(availSpec))
	if err != nil {
		t.Fatal(err)
	}
	run := func(availIdx int) *CellRun {
		r, err := spec.RunCell(CellParams{Nodes: 8, Load: 1, Scheduler: "equipartition", ArrivalIdx: 0, AvailIdx: availIdx, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	none, fail := run(0), run(1)
	if none.Result.CapacityEvents != 0 {
		t.Fatalf("none axis applied %d capacity events", none.Result.CapacityEvents)
	}
	if fail.Result.CapacityEvents == 0 {
		t.Fatal("failures axis applied no capacity events")
	}
	if none.Result.Makespan == fail.Result.Makespan {
		t.Fatal("failures did not perturb the makespan")
	}
	// Same seed ⇒ same job stream on both axes: arrivals must agree.
	if len(none.Result.PerJob) == 0 || len(fail.Result.PerJob) == 0 {
		t.Fatal("no finished jobs")
	}
	for i := range none.Result.PerJob {
		if i < len(fail.Result.PerJob) && none.Result.PerJob[i].Arrival != fail.Result.PerJob[i].Arrival {
			t.Fatalf("job %d arrival differs across availability axes: %g vs %g",
				i, none.Result.PerJob[i].Arrival, fail.Result.PerJob[i].Arrival)
		}
	}
	// Determinism: replays are bit-identical.
	again := run(1)
	if again.Result.Makespan != fail.Result.Makespan || again.Result.LostWorkS != fail.Result.LostWorkS {
		t.Fatal("availability replay not deterministic")
	}
}
