package scenario

import (
	"strings"
	"testing"

	"dpsim/internal/sched"
)

// TestSchedulerBlockParsing: the schedulers axis accepts bare names,
// parameterized objects and single entries, case-insensitively, and
// canonicalizes names for stable labels.
func TestSchedulerBlockParsing(t *testing.T) {
	spec, err := Parse([]byte(`{
		"nodes": [8], "seed": 1, "jobs": 2,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 1}],
		"arrivals": {"process": "closed"},
		"schedulers": [
			"EQUIPARTITION",
			{"name": "malleable-hysteresis", "params": {"epoch_s": 45, "min_delta": 2}},
			{"name": "moldable", "params": {"min_efficiency": 0.7}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Schedulers) != 3 {
		t.Fatalf("schedulers = %+v", spec.Schedulers)
	}
	if spec.Schedulers[0].Name != "equipartition" {
		t.Fatalf("name not canonicalized: %q", spec.Schedulers[0].Name)
	}
	if got := spec.Schedulers[1].Label(); got != "malleable-hysteresis(epoch_s=45,min_delta=2)" {
		t.Fatalf("label = %q", got)
	}
	// The label must resolve back to the identical policy spec.
	name, params, err := sched.ParseSpec(spec.Schedulers[1].Label())
	if err != nil || name != "malleable-hysteresis" || params["epoch_s"] != 45 || params["min_delta"] != 2 {
		t.Fatalf("label did not round-trip: %q %v %v", name, params, err)
	}

	// A single bare string works like a single arrival object.
	one, err := Parse([]byte(`{
		"nodes": [4], "seed": 1, "jobs": 1,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 1}],
		"arrivals": {"process": "closed"},
		"schedulers": "fair-share"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Schedulers) != 1 || one.Schedulers[0].Name != "fair-share" {
		t.Fatalf("single scheduler = %+v", one.Schedulers)
	}
}

func TestSchedulerBlockRejections(t *testing.T) {
	base := `{"nodes": [4], "seed": 1, "jobs": 1,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 1}],
		"arrivals": {"process": "closed"}, "schedulers": %s}`
	for name, block := range map[string]string{
		"unknown name":    `["no-such-policy"]`,
		"unknown param":   `[{"name": "equipartition", "params": {"bogus": 1}}]`,
		"bad param value": `[{"name": "malleable-hysteresis", "params": {"min_delta": 0}}]`,
		"empty name":      `[{"params": {"x": 1}}]`,
	} {
		if _, err := Parse([]byte(strings.Replace(base, "%s", block, 1))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestJobWeightPlumbed: mix job_weight flows onto every generated job,
// defaulting to 1.
func TestJobWeightPlumbed(t *testing.T) {
	spec := baseSpec()
	spec.Mix = []MixSpec{{Kind: "synthetic", Phases: 2, WorkS: 10, JobWeight: 3}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, j := range streamJobs(t, spec, 0, 4) {
		if j.Weight != 3 {
			t.Fatalf("job weight = %v, want 3", j.Weight)
		}
	}
	spec = baseSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, j := range streamJobs(t, spec, 0, 4) {
		if j.Weight != 1 {
			t.Fatalf("default job weight = %v, want 1", j.Weight)
		}
	}
}

func TestParseSchedulerListSplitting(t *testing.T) {
	list, err := ParseSchedulerList("rigid-fcfs, malleable-hysteresis(epoch_s=45,min_delta=2) ,fair-share")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list = %+v", list)
	}
	if list[1].Name != "malleable-hysteresis" || list[1].Params["min_delta"] != 2 {
		t.Fatalf("parameterized entry = %+v", list[1])
	}
	for _, bad := range []string{"", "a,,b", "a(x=1", "a(x=y)"} {
		if _, err := ParseSchedulerList(bad); err == nil {
			t.Errorf("ParseSchedulerList(%q) accepted", bad)
		}
	}
}

// TestRunCellWithParameterizedScheduler: a label-form scheduler spec
// drives RunCell, and different parameters change the outcome while
// identical ones reproduce it.
func TestRunCellWithParameterizedScheduler(t *testing.T) {
	spec := baseSpec()
	spec.Jobs = 10
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cell := func(scheduler string) *CellRun {
		run, err := spec.RunCell(CellParams{Nodes: 8, Load: 1, Scheduler: scheduler, ArrivalIdx: 0, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	throttled := cell("malleable-hysteresis(epoch_s=60,min_delta=4)")
	free := cell("malleable-hysteresis(epoch_s=0,min_delta=1)")
	if throttled.Result.Reallocations >= free.Result.Reallocations {
		t.Fatalf("hysteresis did not bound churn: %d vs %d reallocations",
			throttled.Result.Reallocations, free.Result.Reallocations)
	}
	again := cell("malleable-hysteresis(epoch_s=60,min_delta=4)")
	if again.Result.Reallocations != throttled.Result.Reallocations {
		t.Fatal("parameterized cell not deterministic")
	}
}
