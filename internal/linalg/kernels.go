package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when partial pivoting cannot find a usable pivot.
var ErrSingular = errors.New("linalg: matrix is numerically singular")

// Gemm computes C = alpha*A*B + beta*C. Shapes must conform:
// A is m×k, B is k×n, C is m×n. The kernel uses ikj ordering so the inner
// loop streams rows of B and C.
func Gemm(alpha float64, a, b *Mat, beta float64, c *Mat) {
	if a.C != b.R || a.R != c.R || b.C != c.C {
		panic(fmt.Sprintf("linalg: gemm shape mismatch %dx%d * %dx%d -> %dx%d",
			a.R, a.C, b.R, b.C, c.R, c.C))
	}
	m, k, n := a.R, a.C, b.C
	for i := 0; i < m; i++ {
		ci := c.A[i*c.Stride : i*c.Stride+n]
		if beta != 1 {
			if beta == 0 {
				for j := range ci {
					ci[j] = 0
				}
			} else {
				for j := range ci {
					ci[j] *= beta
				}
			}
		}
		ai := a.A[i*a.Stride : i*a.Stride+k]
		for p := 0; p < k; p++ {
			v := alpha * ai[p]
			if v == 0 {
				continue
			}
			bp := b.A[p*b.Stride : p*b.Stride+n]
			for j := 0; j < n; j++ {
				ci[j] += v * bp[j]
			}
		}
	}
}

// MulSub computes C -= A*B, the update used in LU step 3 (B - L21·T12).
func MulSub(a, b, c *Mat) { Gemm(-1, a, b, 1, c) }

// Mul returns A*B in a new matrix.
func Mul(a, b *Mat) *Mat {
	c := NewMat(a.R, b.C)
	Gemm(1, a, b, 0, c)
	return c
}

// PanelLU factors the m×r panel A in place with partial pivoting
// (paper step 1): A = P^T · [L11; L21] · U11 where U11 is r×r upper
// triangular, L11 is r×r unit lower triangular, L21 is (m-r)×r. On return
// A holds L (unit diagonal implicit) below the diagonal and U on and above
// it; piv[j] records the row swapped with row j.
func PanelLU(a *Mat) ([]int, error) {
	m, r := a.R, a.C
	if r > m {
		panic(fmt.Sprintf("linalg: panel wider (%d) than tall (%d)", r, m))
	}
	piv := make([]int, r)
	for j := 0; j < r; j++ {
		// Pivot: largest magnitude at or below the diagonal in column j.
		p := j
		maxv := math.Abs(a.At(j, j))
		for i := j + 1; i < m; i++ {
			if v := math.Abs(a.At(i, j)); v > maxv {
				maxv, p = v, i
			}
		}
		piv[j] = p
		if maxv == 0 {
			return piv, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, j)
		}
		a.SwapRows(j, p)
		// Scale multipliers and update the trailing panel.
		d := a.At(j, j)
		for i := j + 1; i < m; i++ {
			l := a.At(i, j) / d
			a.Set(i, j, l)
			ri := a.A[i*a.Stride : i*a.Stride+r]
			rj := a.A[j*a.Stride : j*a.Stride+r]
			for t := j + 1; t < r; t++ {
				ri[t] -= l * rj[t]
			}
		}
	}
	return piv, nil
}

// TrsmLowerUnit solves L·X = B in place (B := L⁻¹·B) where L is n×n unit
// lower triangular (strictly-lower entries of l are used; diagonal is
// implicit 1). This is the trsm of paper step 2 computing T12.
func TrsmLowerUnit(l, b *Mat) {
	if l.R != l.C || l.R != b.R {
		panic(fmt.Sprintf("linalg: trsm shape mismatch L %dx%d, B %dx%d", l.R, l.C, b.R, b.C))
	}
	n, cols := l.R, b.C
	for i := 1; i < n; i++ {
		bi := b.A[i*b.Stride : i*b.Stride+cols]
		li := l.A[i*l.Stride : i*l.Stride+i]
		for k := 0; k < i; k++ {
			v := li[k]
			if v == 0 {
				continue
			}
			bk := b.A[k*b.Stride : k*b.Stride+cols]
			for j := 0; j < cols; j++ {
				bi[j] -= v * bk[j]
			}
		}
	}
}

// LU factors the square matrix A in place using unblocked Gaussian
// elimination with partial pivoting (reference implementation). Equivalent
// to PanelLU on a square panel.
func LU(a *Mat) ([]int, error) {
	if a.R != a.C {
		panic("linalg: LU requires a square matrix")
	}
	return PanelLU(a)
}

// BlockedLU factors A in place with block size r, following exactly the
// three recursive steps of the paper (§5):
//
//	step 1: PanelLU of the current m×r panel [A11; A21];
//	step 2: trsm computing T12 = L11⁻¹·A12, after row flipping;
//	step 3: trailing update A' = B − L21·T12, recurse on A'.
//
// It is the serial reference against which the parallel DPS application is
// validated: every flow-graph variant must produce this factorization.
func BlockedLU(a *Mat, r int) ([]int, error) {
	n := a.R
	if a.R != a.C {
		panic("linalg: BlockedLU requires a square matrix")
	}
	if r <= 0 || n%r != 0 {
		return nil, fmt.Errorf("linalg: block size %d must divide n=%d", r, n)
	}
	piv := make([]int, n)
	for k := 0; k < n; k += r {
		m := n - k
		rr := r
		if rr > m {
			rr = m
		}
		panel := a.View(k, k, m, rr)
		p, err := PanelLU(panel)
		if err != nil {
			return nil, fmt.Errorf("block at %d: %w", k, err)
		}
		for j, pj := range p {
			piv[k+j] = k + pj
			// Row flipping on the columns left of the panel (paper op (g))
			// and right of the panel (part of step 2).
			if pj != j {
				if k > 0 {
					left := a.View(k, 0, m, k)
					left.SwapRows(j, pj)
				}
				if k+rr < n {
					right := a.View(k, k+rr, m, n-k-rr)
					right.SwapRows(j, pj)
				}
			}
		}
		if k+rr < n {
			l11 := a.View(k, k, rr, rr)
			a12 := a.View(k, k+rr, rr, n-k-rr)
			TrsmLowerUnit(l11, a12) // step 2: T12
			l21 := a.View(k+rr, k, m-rr, rr)
			b := a.View(k+rr, k+rr, m-rr, n-k-rr)
			MulSub(l21, a12, b) // step 3: B - L21·T12
		}
	}
	return piv, nil
}

// SolveLU solves A·x = b given A's packed LU factors and pivot vector
// (as produced by LU/BlockedLU): apply the row exchanges to b, then
// forward-substitute with unit-lower L and back-substitute with U. It is
// the end-to-end consumer of the distributed factorization.
func SolveLU(lu *Mat, piv []int, b []float64) ([]float64, error) {
	n := lu.R
	if lu.R != lu.C || len(b) != n {
		return nil, fmt.Errorf("linalg: solve shape mismatch %dx%d vs %d", lu.R, lu.C, len(b))
	}
	x := append([]float64(nil), b...)
	for j, p := range piv {
		if p != j {
			x[j], x[p] = x[p], x[j]
		}
	}
	// Forward substitution: L·y = P·b, L unit lower.
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.A[i*lu.Stride : i*lu.Stride+i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// Back substitution: U·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.A[i*lu.Stride : i*lu.Stride+n]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		d := row[i]
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// ReconstructLU multiplies the packed LU factors back together and undoes
// the pivoting, returning P^T·L·U which must equal the original matrix.
// Used by correctness tests.
func ReconstructLU(lu *Mat, piv []int) *Mat {
	n := lu.R
	l := NewMat(n, n)
	u := NewMat(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, lu.At(i, j))
		}
		for j := i; j < n; j++ {
			u.Set(i, j, lu.At(i, j))
		}
	}
	prod := Mul(l, u)
	// Undo row exchanges in reverse order: A = P^T (L U).
	for j := len(piv) - 1; j >= 0; j-- {
		if piv[j] != j {
			prod.SwapRows(j, piv[j])
		}
	}
	return prod
}

// --- Exact operation counts (drive the testbed and PDEXEC cost models) ---

// GemmFlops returns the floating-point operations of an m×k by k×n
// multiply-accumulate: one multiply and one add per element triple.
func GemmFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// TrsmFlops returns the operations of a unit-lower n×n solve applied to
// n×cols: for each row i, 2·i·cols ops.
func TrsmFlops(n, cols int) float64 {
	return float64(n) * float64(n-1) * float64(cols)
}

// PanelLUFlops returns the operations of PanelLU on an m×r panel:
// per column j, one division per sub-diagonal row plus a rank-1 update of
// the trailing (m-j-1)×(r-j-1) block (2 ops per element), plus the pivot
// search comparisons (counted as 1 op per scanned row).
func PanelLUFlops(m, r int) float64 {
	var f float64
	for j := 0; j < r; j++ {
		rows := float64(m - j - 1)
		f += rows                      // pivot search
		f += rows                      // multiplier scaling
		f += 2 * rows * float64(r-j-1) // trailing update
	}
	return f
}

// RowFlipBytes returns the bytes touched when applying r pivots to an
// m×cols block (two rows read+written per swap, 8 bytes per element).
func RowFlipBytes(r, cols int) float64 {
	return float64(r) * 4 * 8 * float64(cols)
}
