// Package linalg provides the dense linear-algebra kernels used by the
// paper's test application (§5): blocked LU factorization with partial
// pivoting, triangular solves (the BLAS trsm operation), matrix
// multiplication, and row flipping. It also exposes exact floating-point
// operation counts for every kernel; the virtual cluster testbed and the
// partial-direct-execution cost model both derive durations from these
// counts.
//
// Matrices are dense, row-major float64 with an explicit stride, so
// sub-blocks are zero-copy views — exactly how the application carves
// column blocks and r×r tiles out of the full matrix.
package linalg

import (
	"fmt"

	"dpsim/internal/rng"
)

// Mat is a dense row-major matrix view. Element (i, j) lives at
// A[i*Stride+j]. Views created by View share storage with their parent.
type Mat struct {
	R, C   int
	Stride int
	A      []float64
}

// NewMat allocates a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Mat{R: r, C: c, Stride: c, A: make([]float64, r*c)}
}

// NewMatFrom builds an r×c matrix from row-major data (copied).
func NewMatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	m := NewMat(r, c)
	copy(m.A, data)
	return m
}

// Random returns an r×c matrix with entries uniform in [-1, 1), using the
// deterministic source. Diagonal dominance can be added by the caller when
// a well-conditioned matrix is required.
func Random(r, c int, src *rng.Source) *Mat {
	m := NewMat(r, c)
	for i := range m.A {
		m.A[i] = src.Uniform(-1, 1)
	}
	return m
}

// RandomSPDish returns an n×n matrix that is comfortably non-singular for
// LU with partial pivoting: random entries plus n on the diagonal.
func RandomSPDish(n int, src *rng.Source) *Mat {
	m := Random(n, n, src)
	for i := 0; i < n; i++ {
		m.A[i*m.Stride+i] += float64(n)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.Stride+j] = v }

// View returns the rxc sub-matrix starting at (i0, j0), sharing storage.
func (m *Mat) View(i0, j0, r, c int) *Mat {
	if i0 < 0 || j0 < 0 || i0+r > m.R || j0+c > m.C {
		panic(fmt.Sprintf("linalg: view (%d,%d,%d,%d) out of %dx%d", i0, j0, r, c, m.R, m.C))
	}
	return &Mat{R: r, C: c, Stride: m.Stride, A: m.A[i0*m.Stride+j0:]}
}

// Clone returns a compact deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	for i := 0; i < m.R; i++ {
		copy(out.A[i*out.Stride:i*out.Stride+m.C], m.A[i*m.Stride:i*m.Stride+m.C])
	}
	return out
}

// CopyFrom copies src (same shape) into m.
func (m *Mat) CopyFrom(src *Mat) {
	if m.R != src.R || m.C != src.C {
		panic(fmt.Sprintf("linalg: copy shape mismatch %dx%d <- %dx%d", m.R, m.C, src.R, src.C))
	}
	for i := 0; i < m.R; i++ {
		copy(m.A[i*m.Stride:i*m.Stride+m.C], src.A[i*src.Stride:i*src.Stride+src.C])
	}
}

// Equalish reports whether m and b agree element-wise within tol.
func (m *Mat) Equalish(b *Mat, tol float64) bool {
	if m.R != b.R || m.C != b.C {
		return false
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			d := m.At(i, j) - b.At(i, j)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func (m *Mat) MaxAbsDiff(b *Mat) float64 {
	var worst float64
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			d := m.At(i, j) - b.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// SwapRows exchanges rows i and k in place.
func (m *Mat) SwapRows(i, k int) {
	if i == k {
		return
	}
	ri := m.A[i*m.Stride : i*m.Stride+m.C]
	rk := m.A[k*m.Stride : k*m.Stride+m.C]
	for j := 0; j < m.C; j++ {
		ri[j], rk[j] = rk[j], ri[j]
	}
}

// ApplyPivots applies the row exchanges recorded by LU factorization:
// piv[j] is the row swapped with row j at elimination step j (LAPACK ipiv
// convention, 0-based). This is the paper's "row flipping" applied to a
// column block.
func (m *Mat) ApplyPivots(piv []int) {
	for j, p := range piv {
		if p != j {
			m.SwapRows(j, p)
		}
	}
}
