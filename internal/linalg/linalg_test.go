package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dpsim/internal/rng"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(3, 4)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At failed")
	}
	v := m.View(1, 1, 2, 3)
	if v.At(0, 1) != 5 {
		t.Fatal("view does not share storage")
	}
	v.Set(0, 1, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("view write did not propagate")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestCloneOfView(t *testing.T) {
	m := NewMatFrom(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	v := m.View(1, 1, 2, 2).Clone()
	want := NewMatFrom(2, 2, []float64{5, 6, 8, 9})
	if !v.Equalish(want, 0) {
		t.Fatalf("view clone = %+v", v)
	}
	if v.Stride != 2 {
		t.Fatalf("clone stride = %d, want compact 2", v.Stride)
	}
}

func TestViewBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view did not panic")
		}
	}()
	NewMat(2, 2).View(1, 1, 2, 2)
}

func TestSwapRows(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	m.SwapRows(0, 1)
	want := NewMatFrom(2, 2, []float64{3, 4, 1, 2})
	if !m.Equalish(want, 0) {
		t.Fatalf("SwapRows got %+v", m)
	}
	m.SwapRows(1, 1) // no-op
	if !m.Equalish(want, 0) {
		t.Fatal("self swap changed matrix")
	}
}

func TestGemmSmall(t *testing.T) {
	a := NewMatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := NewMatFrom(2, 2, []float64{58, 64, 139, 154})
	if !c.Equalish(want, 1e-12) {
		t.Fatalf("Mul got %+v", c)
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	a := NewMatFrom(1, 1, []float64{2})
	b := NewMatFrom(1, 1, []float64{3})
	c := NewMatFrom(1, 1, []float64{10})
	Gemm(2, a, b, 0.5, c) // 2*6 + 5 = 17
	if c.At(0, 0) != 17 {
		t.Fatalf("Gemm alpha/beta got %v", c.At(0, 0))
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 10; trial++ {
		m, k, n := src.Intn(12)+1, src.Intn(12)+1, src.Intn(12)+1
		a, b := Random(m, k, src), Random(k, n, src)
		got := Mul(a, b)
		want := NewMat(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				want.Set(i, j, s)
			}
		}
		if !got.Equalish(want, 1e-10) {
			t.Fatalf("trial %d: gemm mismatch, max diff %g", trial, got.MaxAbsDiff(want))
		}
	}
}

func TestMulSub(t *testing.T) {
	a := NewMatFrom(1, 1, []float64{2})
	b := NewMatFrom(1, 1, []float64{3})
	c := NewMatFrom(1, 1, []float64{10})
	MulSub(a, b, c)
	if c.At(0, 0) != 4 {
		t.Fatalf("MulSub got %v, want 4", c.At(0, 0))
	}
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Gemm(1, NewMat(2, 3), NewMat(2, 3), 0, NewMat(2, 3))
}

func TestTrsmSolvesSystem(t *testing.T) {
	src := rng.New(7)
	n, cols := 8, 5
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < i; j++ {
			l.Set(i, j, src.Uniform(-1, 1))
		}
	}
	x := Random(n, cols, src)
	b := Mul(l, x)
	TrsmLowerUnit(l, b) // b := L⁻¹·(L·x) = x
	if !b.Equalish(x, 1e-9) {
		t.Fatalf("trsm failed, max diff %g", b.MaxAbsDiff(x))
	}
}

func TestLUIdentity(t *testing.T) {
	n := 5
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	piv, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range piv {
		if p != j {
			t.Fatalf("identity LU pivoted: piv[%d]=%d", j, p)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMat(3, 3) // all zeros
	_, err := LU(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUKnown2x2(t *testing.T) {
	// A = [[0, 1], [2, 3]]: requires a pivot swap.
	a := NewMatFrom(2, 2, []float64{0, 1, 2, 3})
	orig := a.Clone()
	piv, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	if piv[0] != 1 {
		t.Fatalf("expected pivot swap at col 0, got piv=%v", piv)
	}
	back := ReconstructLU(a, piv)
	if !back.Equalish(orig, 1e-12) {
		t.Fatalf("reconstruction mismatch: %+v", back)
	}
}

// Property: P·A = L·U for random well-conditioned matrices (unblocked).
func TestPropertyLUReconstruction(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%24) + 1
		src := rng.New(seed)
		a := RandomSPDish(n, src)
		orig := a.Clone()
		piv, err := LU(a)
		if err != nil {
			return false
		}
		back := ReconstructLU(a, piv)
		return back.Equalish(orig, 1e-8*float64(n))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: blocked LU produces exactly the same packed factors and pivots
// as unblocked LU for any divisor block size.
func TestPropertyBlockedMatchesUnblocked(t *testing.T) {
	prop := func(seed uint64, nBlocksRaw, rRaw uint8) bool {
		r := int(rRaw%6) + 1
		nBlocks := int(nBlocksRaw%5) + 1
		n := r * nBlocks
		src := rng.New(seed)
		a := RandomSPDish(n, src)
		ref := a.Clone()
		blk := a.Clone()
		pivRef, err1 := LU(ref)
		pivBlk, err2 := BlockedLU(blk, r)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range pivRef {
			if pivRef[i] != pivBlk[i] {
				return false
			}
		}
		return blk.Equalish(ref, 1e-9*float64(n))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedLUReconstruction(t *testing.T) {
	src := rng.New(55)
	for _, cfg := range []struct{ n, r int }{{8, 2}, {12, 3}, {16, 4}, {18, 6}, {24, 24}} {
		a := RandomSPDish(cfg.n, src)
		orig := a.Clone()
		piv, err := BlockedLU(a, cfg.r)
		if err != nil {
			t.Fatalf("n=%d r=%d: %v", cfg.n, cfg.r, err)
		}
		back := ReconstructLU(a, piv)
		if !back.Equalish(orig, 1e-8*float64(cfg.n)) {
			t.Fatalf("n=%d r=%d reconstruction off by %g", cfg.n, cfg.r, back.MaxAbsDiff(orig))
		}
	}
}

func TestBlockedLUBadBlockSize(t *testing.T) {
	a := RandomSPDish(10, rng.New(1))
	if _, err := BlockedLU(a, 3); err == nil {
		t.Fatal("non-divisor block size accepted")
	}
	if _, err := BlockedLU(a, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestApplyPivots(t *testing.T) {
	m := NewMatFrom(3, 1, []float64{1, 2, 3})
	// Step 0 swaps rows 0,2; step 1 swaps nothing; step 2 nothing.
	m.ApplyPivots([]int{2, 1, 2})
	want := NewMatFrom(3, 1, []float64{3, 2, 1})
	if !m.Equalish(want, 0) {
		t.Fatalf("ApplyPivots got %+v", m)
	}
}

func TestFlopCounts(t *testing.T) {
	if got := GemmFlops(2, 3, 4); got != 48 {
		t.Fatalf("GemmFlops = %v, want 48", got)
	}
	if got := TrsmFlops(3, 2); got != 12 {
		t.Fatalf("TrsmFlops = %v, want 12", got)
	}
	// Square panel of size n should cost about 2n³/3 for large n.
	n := 300
	got := PanelLUFlops(n, n)
	want := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("PanelLUFlops(%d,%d) = %g, want ≈ %g", n, n, got, want)
	}
	if RowFlipBytes(2, 10) != 640 {
		t.Fatalf("RowFlipBytes = %v", RowFlipBytes(2, 10))
	}
}

func TestTotalLUFlopsMatchSum(t *testing.T) {
	// The sum of per-block kernel flops must approximate 2n³/3: this is
	// what lets the testbed calibrate node speed from the serial time.
	n, r := 216, 27
	var total float64
	for k := 0; k < n; k += r {
		m := n - k
		total += PanelLUFlops(m, r)
		if k+r < n {
			total += TrsmFlops(r, n-k-r)
			total += GemmFlops(m-r, r, n-k-r)
		}
	}
	want := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
	if math.Abs(total-want)/want > 0.05 {
		t.Fatalf("sum of block flops %g deviates from 2n³/3 = %g", total, want)
	}
}

func BenchmarkGemm64(b *testing.B) {
	src := rng.New(1)
	x := Random(64, 64, src)
	y := Random(64, 64, src)
	c := NewMat(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(1, x, y, 0, c)
	}
}

func BenchmarkBlockedLU216(b *testing.B) {
	src := rng.New(2)
	orig := RandomSPDish(216, src)
	for i := 0; i < b.N; i++ {
		a := orig.Clone()
		if _, err := BlockedLU(a, 27); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveLUKnownSystem(t *testing.T) {
	// A = [[2,1],[1,3]], b = [5,10] → x = [1,3].
	a := NewMatFrom(2, 2, []float64{2, 1, 1, 3})
	piv, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveLU(a, piv, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveLUProperty(t *testing.T) {
	// Property: for random well-conditioned A and x, factoring A and
	// solving A·x' = A·x recovers x.
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		src := rng.New(seed)
		a := RandomSPDish(n, src)
		x := make([]float64, n)
		for i := range x {
			x[i] = src.Uniform(-2, 2)
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * x[j]
			}
		}
		piv, err := BlockedLU(a, divisorOf(n))
		if err != nil {
			return false
		}
		got, err := SolveLU(a, piv, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// divisorOf returns a divisor of n to use as block size.
func divisorOf(n int) int {
	for _, d := range []int{4, 3, 2} {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

func TestSolveLUErrors(t *testing.T) {
	a := NewMat(2, 3)
	if _, err := SolveLU(a, nil, []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	sq := NewMat(2, 2) // zero diagonal
	if _, err := SolveLU(sq, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("singular U accepted")
	}
}
