// Package netmodel implements the simulator's network model (paper §4).
//
// The communication network has a star topology: every node owns a
// full-duplex link to a central full-crossbar switch that is never a
// bottleneck. The optimistic transfer time of a data object of size s is
//
//	t = l + s/b
//
// where l is the network latency and b the link bandwidth. Under
// contention, all concurrent outgoing (respectively incoming) transfers of
// a node receive an equal share of the port bandwidth, so an individual
// transfer progresses at
//
//	rate = min( b / activeOut(src), b / activeIn(dst) )
//
// re-evaluated every time a transfer starts or completes (a fluid model).
// Local deliveries (src == dst) do not traverse the network: they complete
// after the latency only and consume no port bandwidth.
//
// The model also publishes per-node active-transfer counts through a
// Listener so the CPU model can account for the processing power consumed
// by communications (paper: "the simulator handles all communications, it
// knows at every time point how many concurrent transfers are carried out
// by each processing node").
package netmodel

import (
	"fmt"
	"sort"

	"dpsim/internal/eventq"
)

// Params configures the network model.
type Params struct {
	// Latency is the per-message startup latency l.
	Latency eventq.Duration
	// Bandwidth is the per-port bandwidth b in bytes/second (full duplex:
	// the in and out ports of a node each have this capacity).
	Bandwidth float64
	// Contention enables the equal-share model. When false every transfer
	// gets the full port bandwidth (the "no contention" assumption the
	// paper criticizes in MPI-SIM/COMPASS; kept as an ablation knob).
	Contention bool
	// MaxMin replaces the paper's simple equal-share rule with
	// work-conserving max-min fairness (progressive filling): bandwidth
	// unused by transfers bottlenecked elsewhere is redistributed. Kept
	// as a sensitivity knob to quantify how much the sharing discipline
	// itself affects predictions.
	MaxMin bool
}

// FastEthernet returns the parameters of the paper's testbed interconnect:
// 100 Mbit/s full duplex, ~100 µs small-message latency.
func FastEthernet() Params {
	return Params{
		Latency:    100 * eventq.Microsecond,
		Bandwidth:  12.5e6, // 100 Mbit/s in bytes/s
		Contention: true,
	}
}

// Listener observes changes of per-node active transfer counts.
type Listener interface {
	// PortsChanged is invoked whenever the number of active incoming or
	// outgoing transfers of node changes.
	PortsChanged(node, activeIn, activeOut int)
}

// Transfer is one in-flight data-object transfer.
type Transfer struct {
	ID       uint64
	Src, Dst int
	Size     int64 // bytes
	Payload  any   // opaque reference carried to the completion callback

	start     eventq.Time
	remaining float64 // bytes
	rate      float64 // bytes/s; 0 while in the latency phase
	last      eventq.Time
	finish    *eventq.Event
	done      func(*Transfer)
	flowing   bool
}

// Start reports when the transfer was submitted.
func (t *Transfer) Start() eventq.Time { return t.start }

// Network is the fluid network model. It is not safe for concurrent use;
// the single-threaded event engine is the only caller.
type Network struct {
	q        *eventq.Queue
	p        Params
	listener Listener

	nextID    uint64
	activeIn  map[int]int
	activeOut map[int]int
	flows     map[uint64]*Transfer

	// Stats
	totalTransfers uint64
	totalBytes     int64
	nodeBytesIn    map[int]int64
	nodeBytesOut   map[int]int64
}

// New returns a network model driven by the given event queue.
func New(q *eventq.Queue, p Params) *Network {
	if p.Bandwidth <= 0 {
		panic("netmodel: bandwidth must be positive")
	}
	return &Network{
		q:            q,
		p:            p,
		activeIn:     make(map[int]int),
		activeOut:    make(map[int]int),
		flows:        make(map[uint64]*Transfer),
		nodeBytesIn:  make(map[int]int64),
		nodeBytesOut: make(map[int]int64),
	}
}

// SetListener registers the observer of port activity (typically the CPU
// model). Passing nil removes it.
func (n *Network) SetListener(l Listener) { n.listener = l }

// Params returns the model parameters.
func (n *Network) Params() Params { return n.p }

// ActiveIn returns the number of incoming transfers currently flowing into
// node.
func (n *Network) ActiveIn(node int) int { return n.activeIn[node] }

// ActiveOut returns the number of outgoing transfers currently flowing out
// of node.
func (n *Network) ActiveOut(node int) int { return n.activeOut[node] }

// InFlight returns the number of transfers in latency or flowing phase.
func (n *Network) InFlight() int { return len(n.flows) }

// TotalBytes returns the cumulative payload bytes of completed transfers.
func (n *Network) TotalBytes() int64 { return n.totalBytes }

// TotalTransfers returns the cumulative number of completed transfers.
func (n *Network) TotalTransfers() uint64 { return n.totalTransfers }

// BytesIn returns cumulative bytes received by node.
func (n *Network) BytesIn(node int) int64 { return n.nodeBytesIn[node] }

// BytesOut returns cumulative bytes sent by node.
func (n *Network) BytesOut(node int) int64 { return n.nodeBytesOut[node] }

// OptimisticTime returns l + s/b: the no-contention transfer duration.
func (n *Network) OptimisticTime(size int64) eventq.Duration {
	return n.p.Latency + eventq.DurationOf(float64(size)/n.p.Bandwidth)
}

// Send submits a transfer of size bytes from src to dst and returns it.
// done runs (on the event queue) when the last byte arrives. A zero or
// negative size is treated as a pure-latency control message.
func (n *Network) Send(src, dst int, size int64, payload any, done func(*Transfer)) *Transfer {
	if size < 0 {
		size = 0
	}
	t := &Transfer{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Size:      size,
		Payload:   payload,
		start:     n.q.Now(),
		remaining: float64(size),
		done:      done,
	}
	n.nextID++
	n.flows[t.ID] = t
	// Latency phase: no port bandwidth is consumed until l has elapsed
	// (models connection/protocol startup).
	n.q.After(n.p.Latency, func() { n.beginFlow(t) })
	return t
}

func (n *Network) beginFlow(t *Transfer) {
	if t.Src == t.Dst || t.remaining <= 0 {
		// Local or empty: completes immediately after latency.
		n.complete(t)
		return
	}
	t.flowing = true
	t.last = n.q.Now()
	n.activeOut[t.Src]++
	n.activeIn[t.Dst]++
	n.notify(t.Src)
	if t.Dst != t.Src {
		n.notify(t.Dst)
	}
	n.reflow()
}

// complete finalizes a transfer and invokes its callback.
func (n *Network) complete(t *Transfer) {
	delete(n.flows, t.ID)
	n.totalTransfers++
	n.totalBytes += t.Size
	n.nodeBytesOut[t.Src] += t.Size
	n.nodeBytesIn[t.Dst] += t.Size
	wasFlowing := t.flowing
	if wasFlowing {
		t.flowing = false
		n.activeOut[t.Src]--
		n.activeIn[t.Dst]--
		n.notify(t.Src)
		n.notify(t.Dst)
	}
	done := t.done
	t.done = nil
	if wasFlowing {
		n.reflow()
	}
	if done != nil {
		done(t)
	}
}

func (n *Network) notify(node int) {
	if n.listener != nil {
		n.listener.PortsChanged(node, n.activeIn[node], n.activeOut[node])
	}
}

// rateOf computes the current fluid rate of a flowing transfer.
func (n *Network) rateOf(t *Transfer) float64 {
	if !n.p.Contention {
		return n.p.Bandwidth
	}
	out := n.activeOut[t.Src]
	in := n.activeIn[t.Dst]
	if out < 1 {
		out = 1
	}
	if in < 1 {
		in = 1
	}
	shareOut := n.p.Bandwidth / float64(out)
	shareIn := n.p.Bandwidth / float64(in)
	if shareOut < shareIn {
		return shareOut
	}
	return shareIn
}

// reflow settles progress of all flowing transfers at the current instant,
// recomputes their rates and reschedules their completion events.
// Transfers are visited in ID order so that rescheduling is deterministic:
// map iteration order must never influence the event sequence.
func (n *Network) reflow() {
	now := n.q.Now()
	ids := make([]uint64, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var maxmin map[uint64]float64
	if n.p.MaxMin && n.p.Contention {
		maxmin = n.maxMinRates(ids)
	}
	for _, id := range ids {
		t := n.flows[id]
		if !t.flowing {
			continue
		}
		// Settle bytes moved since the last rate change.
		dt := (now - t.last).Seconds()
		if dt > 0 && t.rate > 0 {
			t.remaining -= t.rate * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
		t.last = now
		if maxmin != nil {
			t.rate = maxmin[id]
		} else {
			t.rate = n.rateOf(t)
		}
		if t.finish != nil {
			n.q.Cancel(t.finish)
			t.finish = nil
		}
		eta := eventq.DurationOf(t.remaining / t.rate)
		tt := t
		t.finish = n.q.After(eta, func() {
			tt.remaining = 0
			n.complete(tt)
		})
	}
}

// maxMinRates computes work-conserving max-min fair rates by progressive
// filling: repeatedly saturate the most constrained port and freeze its
// flows at the fair share, redistributing the slack.
func (n *Network) maxMinRates(ids []uint64) map[uint64]float64 {
	type port struct {
		capacity float64
		flows    []uint64
	}
	ports := make(map[[2]int]*port) // [dir(0=out,1=in), node]
	rates := make(map[uint64]float64)
	var active []uint64
	for _, id := range ids {
		t := n.flows[id]
		if !t.flowing {
			continue
		}
		active = append(active, id)
		for _, key := range [][2]int{{0, t.Src}, {1, t.Dst}} {
			p := ports[key]
			if p == nil {
				p = &port{capacity: n.p.Bandwidth}
				ports[key] = p
			}
			p.flows = append(p.flows, id)
		}
	}
	frozen := make(map[uint64]bool)
	for len(frozen) < len(active) {
		// Find the port with the smallest fair share among its unfrozen
		// flows (deterministic: scan ports in sorted key order).
		var bestKey [2]int
		bestShare := -1.0
		keys := make([][2]int, 0, len(ports))
		for k := range ports {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			p := ports[k]
			unfrozen := 0
			for _, id := range p.flows {
				if !frozen[id] {
					unfrozen++
				}
			}
			if unfrozen == 0 {
				continue
			}
			share := p.capacity / float64(unfrozen)
			if bestShare < 0 || share < bestShare {
				bestShare = share
				bestKey = k
			}
		}
		if bestShare < 0 {
			break
		}
		// Freeze that port's unfrozen flows at the share and charge the
		// other port they use.
		for _, id := range ports[bestKey].flows {
			if frozen[id] {
				continue
			}
			frozen[id] = true
			rates[id] = bestShare
			t := n.flows[id]
			for _, k := range [][2]int{{0, t.Src}, {1, t.Dst}} {
				if k == bestKey {
					continue
				}
				ports[k].capacity -= bestShare
				if ports[k].capacity < 0 {
					ports[k].capacity = 0
				}
			}
		}
		ports[bestKey].capacity = 0
	}
	return rates
}

// String summarizes current activity, for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("netmodel{inflight=%d, done=%d, bytes=%d}", len(n.flows), n.totalTransfers, n.totalBytes)
}
