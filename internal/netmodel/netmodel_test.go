package netmodel

import (
	"testing"
	"testing/quick"

	"dpsim/internal/eventq"
)

func newNet(p Params) (*eventq.Queue, *Network) {
	q := eventq.New()
	return q, New(q, p)
}

func TestSingleTransferOptimisticTime(t *testing.T) {
	p := Params{Latency: 100 * eventq.Microsecond, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var doneAt eventq.Time
	n.Send(0, 1, 1_000_000, nil, func(*Transfer) { doneAt = q.Now() })
	q.Run(0)
	want := eventq.Time(100*eventq.Microsecond) + eventq.Time(eventq.Second)
	if doneAt != want {
		t.Fatalf("single transfer finished at %v, want %v", doneAt, want)
	}
	if got := n.OptimisticTime(1_000_000); eventq.Time(got) != want {
		t.Fatalf("OptimisticTime = %v, want %v", got, want)
	}
}

func TestZeroSizeIsLatencyOnly(t *testing.T) {
	p := Params{Latency: 50 * eventq.Microsecond, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var doneAt eventq.Time
	n.Send(0, 1, 0, nil, func(*Transfer) { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(50*eventq.Microsecond) {
		t.Fatalf("zero-size transfer at %v, want latency only", doneAt)
	}
}

func TestLocalTransferSkipsBandwidth(t *testing.T) {
	p := Params{Latency: 10 * eventq.Microsecond, Bandwidth: 1e3, Contention: true}
	q, n := newNet(p)
	var doneAt eventq.Time
	n.Send(2, 2, 1<<30, nil, func(*Transfer) { doneAt = q.Now() })
	q.Run(0)
	if doneAt != eventq.Time(10*eventq.Microsecond) {
		t.Fatalf("local transfer took %v, want latency only", doneAt)
	}
	if n.ActiveIn(2) != 0 || n.ActiveOut(2) != 0 {
		t.Fatal("local transfer left port counters non-zero")
	}
}

func TestTwoOutgoingShareBandwidth(t *testing.T) {
	// Two simultaneous 1MB transfers out of node 0 to different
	// destinations share the uplink: each runs at b/2 and takes 2s + l.
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var times []eventq.Time
	for dst := 1; dst <= 2; dst++ {
		n.Send(0, dst, 1_000_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	}
	q.Run(0)
	if len(times) != 2 {
		t.Fatalf("completed %d transfers", len(times))
	}
	for _, at := range times {
		if at != 2*eventq.Time(eventq.Second) {
			t.Fatalf("shared transfer finished at %v, want 2s", at)
		}
	}
}

func TestTwoIncomingShareBandwidth(t *testing.T) {
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var times []eventq.Time
	for src := 1; src <= 2; src++ {
		n.Send(src, 0, 500_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	}
	q.Run(0)
	for _, at := range times {
		if at != eventq.Time(eventq.Second) {
			t.Fatalf("incoming shared transfer finished at %v, want 1s", at)
		}
	}
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	// 0→1 and 2→3 share no port: full bandwidth each (crossbar never a
	// bottleneck).
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var times []eventq.Time
	n.Send(0, 1, 1_000_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	n.Send(2, 3, 1_000_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	q.Run(0)
	for _, at := range times {
		if at != eventq.Time(eventq.Second) {
			t.Fatalf("disjoint transfer finished at %v, want 1s", at)
		}
	}
}

func TestContentionDisabledAblation(t *testing.T) {
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: false}
	q, n := newNet(p)
	var times []eventq.Time
	for dst := 1; dst <= 4; dst++ {
		n.Send(0, dst, 1_000_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	}
	q.Run(0)
	for _, at := range times {
		if at != eventq.Time(eventq.Second) {
			t.Fatalf("no-contention transfer finished at %v, want 1s", at)
		}
	}
}

func TestRateReadjustsWhenFlowEnds(t *testing.T) {
	// Transfer A (2MB) and B (1MB) leave node 0 at t=0 sharing b=1e6.
	// B finishes at t=2s (rate 0.5e6). A then speeds up to full rate and
	// finishes its remaining 1MB at t=3s.
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var aDone, bDone eventq.Time
	n.Send(0, 1, 2_000_000, nil, func(*Transfer) { aDone = q.Now() })
	n.Send(0, 2, 1_000_000, nil, func(*Transfer) { bDone = q.Now() })
	q.Run(0)
	if bDone != 2*eventq.Time(eventq.Second) {
		t.Fatalf("B finished at %v, want 2s", bDone)
	}
	if aDone != 3*eventq.Time(eventq.Second) {
		t.Fatalf("A finished at %v, want 3s", aDone)
	}
}

func TestLateArrivalSlowsExisting(t *testing.T) {
	// A (1MB) starts alone; at t=0.5s (via a scheduled send) B (1MB) joins
	// the same uplink. A has 0.5MB left, now at rate 0.5e6 → finishes at
	// 1.5s. B finishes at 0.5 + 1/0.5 = 2.5s... but when A ends at 1.5s, B
	// has 0.5MB left and speeds to full rate → 2.0s.
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var aDone, bDone eventq.Time
	n.Send(0, 1, 1_000_000, nil, func(*Transfer) { aDone = q.Now() })
	q.After(500*eventq.Millisecond, func() {
		n.Send(0, 2, 1_000_000, nil, func(*Transfer) { bDone = q.Now() })
	})
	q.Run(0)
	if aDone != eventq.Time(1500*eventq.Millisecond) {
		t.Fatalf("A finished at %v, want 1.5s", aDone)
	}
	if bDone != eventq.Time(2*eventq.Second) {
		t.Fatalf("B finished at %v, want 2s", bDone)
	}
}

func TestMinOfInOutShares(t *testing.T) {
	// Node 0 sends to node 1 while node 2 also sends to node 1: each
	// sender is alone on its uplink but they share node 1's downlink.
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	var times []eventq.Time
	n.Send(0, 1, 1_000_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	n.Send(2, 1, 1_000_000, nil, func(*Transfer) { times = append(times, q.Now()) })
	q.Run(0)
	for _, at := range times {
		if at != 2*eventq.Time(eventq.Second) {
			t.Fatalf("downlink-shared transfer finished at %v, want 2s", at)
		}
	}
}

type recordingListener struct {
	events [][3]int
}

func (r *recordingListener) PortsChanged(node, in, out int) {
	r.events = append(r.events, [3]int{node, in, out})
}

func TestListenerNotified(t *testing.T) {
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	l := &recordingListener{}
	n.SetListener(l)
	n.Send(0, 1, 1000, nil, nil)
	q.Run(0)
	if len(l.events) < 2 {
		t.Fatalf("listener saw %d events, want >= 2 (start + end)", len(l.events))
	}
	// Final state: all ports idle.
	if n.ActiveIn(1) != 0 || n.ActiveOut(0) != 0 {
		t.Fatal("ports not idle after completion")
	}
}

func TestStatsAccounting(t *testing.T) {
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	n.Send(0, 1, 1000, nil, nil)
	n.Send(1, 0, 500, nil, nil)
	q.Run(0)
	if n.TotalTransfers() != 2 || n.TotalBytes() != 1500 {
		t.Fatalf("stats: %d transfers %d bytes", n.TotalTransfers(), n.TotalBytes())
	}
	if n.BytesOut(0) != 1000 || n.BytesIn(0) != 500 {
		t.Fatalf("node 0 bytes out=%d in=%d", n.BytesOut(0), n.BytesIn(0))
	}
	if n.InFlight() != 0 {
		t.Fatalf("in flight = %d after drain", n.InFlight())
	}
}

func TestPayloadDelivered(t *testing.T) {
	p := Params{Latency: 0, Bandwidth: 1e6, Contention: true}
	q, n := newNet(p)
	type obj struct{ v int }
	var got *obj
	n.Send(0, 1, 10, &obj{v: 7}, func(tr *Transfer) { got = tr.Payload.(*obj) })
	q.Run(0)
	if got == nil || got.v != 7 {
		t.Fatal("payload not delivered")
	}
}

// Property: total delivered bytes equals the sum of submitted sizes, and
// every completion happens no earlier than the optimistic time.
func TestPropertyConservationAndOptimism(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		p := Params{Latency: 20 * eventq.Microsecond, Bandwidth: 1e6, Contention: true}
		q, n := newNet(p)
		var want int64
		ok := true
		completed := 0
		rnd := seed
		next := func(mod int) int {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			v := int(rnd>>33) % mod
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < k; i++ {
			src := next(4)
			dst := next(4)
			size := int64(next(1_000_000) + 1)
			want += size
			submitted := q.Now()
			opt := n.OptimisticTime(size)
			n.Send(src, dst, size, nil, func(tr *Transfer) {
				completed++
				if q.Now() < submitted.Add(opt) && tr.Src != tr.Dst {
					ok = false
				}
			})
		}
		q.Run(0)
		return ok && completed == k && n.TotalBytes() == want && n.InFlight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkThousandConcurrentTransfers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := Params{Latency: 100 * eventq.Microsecond, Bandwidth: 12.5e6, Contention: true}
		q, n := newNet(p)
		for j := 0; j < 1000; j++ {
			n.Send(j%8, (j+1)%8, int64(1000+j), nil, nil)
		}
		q.Run(0)
	}
}

func TestMaxMinRedistributesSlack(t *testing.T) {
	// Flows: A 0→1, B 0→2, C 3→2. Equal-share: A and B each get b/2 on
	// node 0's uplink; B and C each get b/2 on node 2's downlink; C gets
	// min(b, b/2) = b/2 — node 3's uplink is half idle. Max-min gives C
	// the same b/2 here, but when B finishes, A must get the full b under
	// both. The distinguishing case: B is bottlenecked at 0's uplink
	// (b/2), so max-min gives C the remaining b/2 + slack... with two
	// flows per port the shares coincide; use three flows on one port and
	// one elsewhere to expose redistribution.
	//
	// D,E,F leave node 0 (share b/3 each); F's destination node 1 also
	// receives G from node 2. Equal share: G = min(b, b/2) = b/2. Max-min:
	// F is frozen at b/3 by node 0's uplink, so G gets b - b/3 = 2b/3.
	p := Params{Latency: 0, Bandwidth: 9e5, Contention: true, MaxMin: true}
	q, n := newNet(p)
	var gDone eventq.Time
	n.Send(0, 3, 900_000, nil, nil)                                 // D
	n.Send(0, 4, 900_000, nil, nil)                                 // E
	n.Send(0, 1, 900_000, nil, nil)                                 // F
	n.Send(2, 1, 600_000, nil, func(*Transfer) { gDone = q.Now() }) // G
	q.Run(0)
	// G at 2b/3 = 6e5 B/s finishes its 600KB in ~1s. Under equal share it
	// would run at b/2 = 4.5e5 → ~1.33s.
	if gDone > eventq.Time(1100*eventq.Millisecond) {
		t.Fatalf("max-min did not redistribute slack: G finished at %v, want ≈1s", gDone)
	}
	if gDone < eventq.Time(900*eventq.Millisecond) {
		t.Fatalf("G finished implausibly fast: %v", gDone)
	}
}

func TestMaxMinConservesBytes(t *testing.T) {
	p := Params{Latency: 10 * eventq.Microsecond, Bandwidth: 1e6, Contention: true, MaxMin: true}
	q, n := newNet(p)
	var want int64
	for i := 0; i < 25; i++ {
		size := int64(10_000 * (i + 1))
		want += size
		n.Send(i%5, (i+2)%5, size, nil, nil)
	}
	q.Run(0)
	if n.TotalBytes() != want {
		t.Fatalf("max-min lost bytes: %d != %d", n.TotalBytes(), want)
	}
	if n.InFlight() != 0 {
		t.Fatal("flows left in flight")
	}
}

func TestMaxMinNeverSlowerThanEqualShare(t *testing.T) {
	// Max-min is work-conserving: the drain time of any workload must not
	// exceed the equal-share drain time.
	run := func(maxmin bool) eventq.Time {
		p := Params{Latency: 0, Bandwidth: 1e6, Contention: true, MaxMin: maxmin}
		q, n := newNet(p)
		for i := 0; i < 12; i++ {
			n.Send(i%4, (i+1+i%3)%4, int64(200_000+i*50_000), nil, nil)
		}
		q.Run(0)
		return q.Now()
	}
	if mm, eq := run(true), run(false); mm > eq {
		t.Fatalf("max-min (%v) slower than equal share (%v)", mm, eq)
	}
}
