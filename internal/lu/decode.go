package lu

import (
	"fmt"

	"dpsim/internal/linalg"
	"dpsim/internal/serial"
	"dpsim/internal/transport"
)

// This file provides the receive-side deserialization of the LU data
// objects, used by the real (TCP) runtime. The simulated platforms never
// decode: their network only needs sizes.

func decodeHeader(r *serial.Reader, wantTag uint8) (iter, a, b int, err error) {
	tag := r.U8()
	iter = int(r.U32())
	a = int(r.U32())
	b = int(r.U32())
	if r.Err() != nil {
		return 0, 0, 0, r.Err()
	}
	if tag != wantTag {
		return 0, 0, 0, fmt.Errorf("lu: wire tag %d, want %d", tag, wantTag)
	}
	return iter, a, b, nil
}

func decodeMat(r *serial.Reader) (*linalg.Mat, error) {
	rows := int(r.U32())
	cols := int(r.U32())
	data := r.F64s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("lu: matrix payload %d != %dx%d", len(data), rows, cols)
	}
	return &linalg.Mat{R: rows, C: cols, Stride: cols, A: data}, nil
}

func decodePiv(r *serial.Reader) ([]int, error) {
	n := int(r.U32())
	piv := make([]int, n)
	for i := range piv {
		piv[i] = int(r.I64())
	}
	return piv, r.Err()
}

// UnmarshalDPS implements transport.Decodable.
func (o *Seed) UnmarshalDPS(r *serial.Reader) error {
	if v := r.U32(); v != 0xB10C {
		return fmt.Errorf("lu: bad seed magic %x", v)
	}
	return r.Err()
}

// UnmarshalDPS implements transport.Decodable.
func (o *TrsmReq) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Block, _, err = decodeHeader(r, 1); err != nil {
		return err
	}
	if o.L11, err = decodeMat(r); err != nil {
		return err
	}
	o.R = o.L11.R
	o.Piv, err = decodePiv(r)
	return err
}

// UnmarshalDPS implements transport.Decodable.
func (o *TrsmDone) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Block, _, err = decodeHeader(r, 2); err != nil {
		return err
	}
	if o.T12, err = decodeMat(r); err != nil {
		return err
	}
	o.R = o.T12.R
	return nil
}

// UnmarshalDPS implements transport.Decodable.
func (o *MultReq) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Tile, o.Block, err = decodeHeader(r, 3); err != nil {
		return err
	}
	if o.L21, err = decodeMat(r); err != nil {
		return err
	}
	if o.T12, err = decodeMat(r); err != nil {
		return err
	}
	o.R = o.L21.R
	return nil
}

// UnmarshalDPS implements transport.Decodable.
func (o *MultRes) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Tile, o.Block, err = decodeHeader(r, 4); err != nil {
		return err
	}
	if o.Prod, err = decodeMat(r); err != nil {
		return err
	}
	o.R = o.Prod.R
	return nil
}

// UnmarshalDPS implements transport.Decodable.
func (o *TileDone) UnmarshalDPS(r *serial.Reader) error {
	var err error
	o.Iter, o.Tile, o.Block, err = decodeHeader(r, 5)
	return err
}

// UnmarshalDPS implements transport.Decodable.
func (o *FlipReq) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Block, _, err = decodeHeader(r, 6); err != nil {
		return err
	}
	o.Piv, err = decodePiv(r)
	o.R = len(o.Piv)
	return err
}

// UnmarshalDPS implements transport.Decodable.
func (o *FlipDone) UnmarshalDPS(r *serial.Reader) error {
	var err error
	o.Iter, o.Block, _, err = decodeHeader(r, 7)
	return err
}

// UnmarshalDPS implements transport.Decodable.
func (o *PMReq) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Tile, o.Block, err = decodeHeader(r, 8); err != nil {
		return err
	}
	o.Row = int(r.U32())
	o.Col = int(r.U32())
	if o.ARow, err = decodeMat(r); err != nil {
		return err
	}
	if o.BCol, err = decodeMat(r); err != nil {
		return err
	}
	o.S = o.ARow.R
	o.R = o.ARow.C
	return nil
}

// UnmarshalDPS implements transport.Decodable.
func (o *PMRes) UnmarshalDPS(r *serial.Reader) error {
	var err error
	if o.Iter, o.Tile, o.Block, err = decodeHeader(r, 9); err != nil {
		return err
	}
	o.Row = int(r.U32())
	o.Col = int(r.U32())
	if o.Prod, err = decodeMat(r); err != nil {
		return err
	}
	o.S = o.Prod.R
	return nil
}

// RegisterCodec registers every LU data object with a transport codec so
// the factorization can run on the real TCP runtime.
func RegisterCodec(c *transport.Codec) {
	c.Register(1, func() transport.Decodable { return &Seed{} })
	c.Register(2, func() transport.Decodable { return &TrsmReq{} })
	c.Register(3, func() transport.Decodable { return &TrsmDone{} })
	c.Register(4, func() transport.Decodable { return &MultReq{} })
	c.Register(5, func() transport.Decodable { return &MultRes{} })
	c.Register(6, func() transport.Decodable { return &TileDone{} })
	c.Register(7, func() transport.Decodable { return &FlipDone{} })
	c.Register(8, func() transport.Decodable { return &FlipReq{} })
	c.Register(9, func() transport.Decodable { return &PMReq{} })
	c.Register(10, func() transport.Decodable { return &PMRes{} })
}
