// Package lu implements the paper's test application (§5–6): a parallel
// block LU factorization with partial pivoting expressed as a DPS flow
// graph, in every variant the paper evaluates:
//
//   - the basic flow graph (merge–split barriers between iterations),
//   - the pipelined flow graph P (stream operations (c) and (f)),
//   - flow control FC (a credit window on the multiplication requests),
//   - parallel sub-block multiplication PM (the Fig. 7 sub-graph), and
//   - dynamic removal of multiplication threads at iteration boundaries
//     (the node deallocation experiments of §8).
//
// The same application code runs on the virtual cluster testbed
// ("Measurement"), on the simulator platform ("Prediction"), in direct
// execution (real kernels, wall-clock timing), in PDEXEC (modeled
// durations) and in PDEXEC NOALLOC (no payload allocation), reproducing
// the whole §7–8 methodology.
package lu

import (
	"dpsim/internal/linalg"
	"dpsim/internal/serial"
)

// Seed bootstraps the factorization: its arrival at the init split starts
// iteration 0.
type Seed struct{}

// MarshalDPS implements dps.DataObject.
func (Seed) MarshalDPS(w serial.Writer) { w.U32(0xB10C) }

// header writes the common envelope fields of LU data objects: object tag,
// iteration and block/tile coordinates.
func header(w serial.Writer, tag uint8, iter, a, b int) {
	w.U8(tag)
	w.U32(uint32(iter))
	w.U32(uint32(a))
	w.U32(uint32(b))
}

// matPayload encodes an r×c matrix payload. A nil matrix (NOALLOC mode)
// still declares its logical size so the counting serializer reports the
// true wire footprint.
func matPayload(w serial.Writer, m *linalg.Mat, rows, cols int) {
	w.U32(uint32(rows))
	w.U32(uint32(cols))
	if m == nil {
		w.F64s(nil, rows*cols)
		return
	}
	if m.Stride == m.C {
		w.F64s(m.A[:rows*cols], rows*cols)
		return
	}
	// Non-compact view: serialize row by row (counted identically).
	w.U64(uint64(rows * cols))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			w.F64(m.At(i, j))
		}
	}
}

// pivPayload encodes a pivot vector of logical length n (nil in NOALLOC).
func pivPayload(w serial.Writer, piv []int, n int) {
	w.U32(uint32(n))
	if piv == nil {
		w.Skip(8 * n)
		return
	}
	for _, p := range piv {
		w.I64(int64(p))
	}
}

// TrsmReq is operation (b)'s input: iteration k's L11 block and pivot
// vector, sent to the owner of column block j to solve the triangular
// system and perform row flipping (paper step 2).
type TrsmReq struct {
	Iter  int
	Block int
	R     int
	// L11 is the packed r×r LU block (unit-lower L + upper U11); nil in
	// NOALLOC mode.
	L11 *linalg.Mat
	// Piv holds the panel pivots (panel-local indices); nil in NOALLOC.
	Piv []int
}

// MarshalDPS implements dps.DataObject.
func (o *TrsmReq) MarshalDPS(w serial.Writer) {
	header(w, 1, o.Iter, o.Block, 0)
	matPayload(w, o.L11, o.R, o.R)
	pivPayload(w, o.Piv, o.R)
}

// TrsmDone carries the computed T12 block of column block j back to the
// stream operation (c) that assembles multiplication requests.
type TrsmDone struct {
	Iter  int
	Block int
	R     int
	T12   *linalg.Mat // r×r; nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *TrsmDone) MarshalDPS(w serial.Writer) {
	header(w, 2, o.Iter, o.Block, 0)
	matPayload(w, o.T12, o.R, o.R)
}

// MultReq is operation (d)'s input: "two matrix blocks of size r x r"
// (paper §5) — the tile of L21 and the T12 of the destination block.
type MultReq struct {
	Iter  int
	Tile  int // row-tile index within L21 (0-based below the panel)
	Block int // destination column block
	R     int
	L21   *linalg.Mat // r×r; nil in NOALLOC
	T12   *linalg.Mat // r×r; nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *MultReq) MarshalDPS(w serial.Writer) {
	header(w, 3, o.Iter, o.Tile, o.Block)
	matPayload(w, o.L21, o.R, o.R)
	matPayload(w, o.T12, o.R, o.R)
}

// MultRes is one multiplied r×r tile, routed to the owner of the
// destination block for subtraction (operation (e)).
type MultRes struct {
	Iter  int
	Tile  int
	Block int
	R     int
	Prod  *linalg.Mat // r×r; nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *MultRes) MarshalDPS(w serial.Writer) {
	header(w, 4, o.Iter, o.Tile, o.Block)
	matPayload(w, o.Prod, o.R, o.R)
}

// TileDone notifies the next iteration's stream (f) that one tile of one
// column block finished its update.
type TileDone struct {
	Iter  int
	Tile  int
	Block int
}

// MarshalDPS implements dps.DataObject.
func (o *TileDone) MarshalDPS(w serial.Writer) { header(w, 5, o.Iter, o.Tile, o.Block) }

// FlipReq asks the owner of an earlier column block (j < k) to apply
// iteration k's row exchanges to its stored factors (operation (g)).
type FlipReq struct {
	Iter  int
	Block int
	R     int
	Piv   []int // nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *FlipReq) MarshalDPS(w serial.Writer) {
	header(w, 6, o.Iter, o.Block, 0)
	pivPayload(w, o.Piv, o.R)
}

// FlipDone is the row-exchange completion notification collected by the
// termination merge (operation (h)).
type FlipDone struct {
	Iter  int
	Block int
}

// MarshalDPS implements dps.DataObject.
func (o *FlipDone) MarshalDPS(w serial.Writer) { header(w, 7, o.Iter, o.Block, 0) }

// PMReq is one sub-block multiplication of the parallel multiplication
// flow graph (paper Fig. 7): an s×r row strip of L21 times an r×s column
// strip of T12.
type PMReq struct {
	Iter  int
	Tile  int
	Block int
	Row   int // strip row index
	Col   int // strip column index
	S     int // strip width s
	R     int
	ARow  *linalg.Mat // s×r; nil in NOALLOC
	BCol  *linalg.Mat // r×s; nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *PMReq) MarshalDPS(w serial.Writer) {
	header(w, 8, o.Iter, o.Tile, o.Block)
	w.U32(uint32(o.Row))
	w.U32(uint32(o.Col))
	matPayload(w, o.ARow, o.S, o.R)
	matPayload(w, o.BCol, o.R, o.S)
}

// PMRes is one s×s product strip returned to the assembling merge
// (operation (f) of Fig. 7).
type PMRes struct {
	Iter  int
	Tile  int
	Block int
	Row   int
	Col   int
	S     int
	Prod  *linalg.Mat // s×s; nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *PMRes) MarshalDPS(w serial.Writer) {
	header(w, 9, o.Iter, o.Tile, o.Block)
	w.U32(uint32(o.Row))
	w.U32(uint32(o.Col))
	matPayload(w, o.Prod, o.S, o.S)
}
