package lu

import (
	"fmt"

	"dpsim/internal/core"
	"dpsim/internal/dps"
	"dpsim/internal/linalg"
	"dpsim/internal/rng"
)

// Removal schedules a change of the multiplication-thread allocation:
// after iteration AfterIter (1-based, as the paper labels them), the
// multiplication collection shrinks (or grows) to MultThreads threads.
// Multiplication requests carry both operand tiles, so no data migrates;
// nodes hosting only multiplication threads become free — the paper's
// dynamic node deallocation.
type Removal struct {
	AfterIter   int
	MultThreads int
}

// Config selects the factorization problem and the flow-graph variant.
type Config struct {
	// N is the matrix dimension; R the decomposition block size. R must
	// divide N.
	N, R int
	// Nodes hosts the storage/worker threads (trsm, subtract, panel LU).
	Nodes int
	// Threads is the number of worker threads (default N/R, one column
	// block each); blocks are owned cyclically: owner(j) = j mod Threads.
	Threads int
	// MultThreads sizes the multiplication collection (default Threads).
	MultThreads int
	// MultNodes hosts the multiplication threads (default Nodes). Set
	// larger than Nodes for the paper's removal experiments, where
	// multiplication-only nodes are deallocated mid-run.
	MultNodes int
	// Pipelined selects the paper's pipelined flow graph P: operations
	// (c) and (f) are streams. False gives the basic flow graph, where
	// they behave as merge–split barriers.
	Pipelined bool
	// Window enables DPS flow control (FC) on the multiplication
	// requests with the given credit window (0 disables).
	Window int
	// ParallelMult replaces operation (d) by the Fig. 7 sub-graph (PM):
	// each r×r multiplication is decomposed into sub-block products.
	ParallelMult bool
	// SubBlock is the PM strip width s (default R/2; must divide R).
	SubBlock int
	// Removals schedules multiplication-thread allocation changes.
	Removals []Removal
	// Costs converts operation counts into reference-node durations.
	Costs CostModel
}

func (c *Config) fill() error {
	if c.N <= 0 || c.R <= 0 || c.N%c.R != 0 {
		return fmt.Errorf("lu: block size %d must divide matrix size %d", c.R, c.N)
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("lu: need at least one node")
	}
	if c.Threads == 0 {
		c.Threads = c.N / c.R
	}
	if c.MultThreads == 0 {
		c.MultThreads = c.Threads
	}
	if c.MultNodes == 0 {
		c.MultNodes = c.Nodes
	}
	if c.SubBlock == 0 {
		c.SubBlock = c.R / 2
	}
	if c.ParallelMult && (c.SubBlock <= 0 || c.R%c.SubBlock != 0) {
		return fmt.Errorf("lu: PM strip width %d must divide block size %d", c.SubBlock, c.R)
	}
	if c.Costs.FlopsPerSec == 0 {
		c.Costs = DefaultCostModel()
	}
	for _, rm := range c.Removals {
		if rm.AfterIter < 1 || rm.AfterIter >= c.N/c.R {
			return fmt.Errorf("lu: removal after iteration %d outside 1..%d", rm.AfterIter, c.N/c.R-1)
		}
		if rm.MultThreads < 1 {
			return fmt.Errorf("lu: removal to %d threads", rm.MultThreads)
		}
	}
	return nil
}

// App is a constructed LU factorization flow graph, ready to run on any
// platform.
type App struct {
	Cfg     Config
	Graph   *dps.Graph
	Workers *dps.Collection
	Mults   *dps.Collection
	Init    *dps.Op
	Done    *dps.Op

	blocks int
}

// owner returns the worker thread owning column block j.
func (a *App) owner(j int) int { return j % a.Cfg.Threads }

func blockKey(j int) string { return fmt.Sprintf("block:%d", j) }

// Build constructs the flow graph for the configured variant. The graph
// is unrolled per iteration, mirroring the paper's "gray part repeated for
// every column of blocks" (Fig. 5).
func Build(cfg Config) (*App, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := &App{Cfg: cfg, blocks: cfg.N / cfg.R}
	a.Workers = dps.NewCollection("workers", cfg.Threads, cfg.Nodes)
	a.Mults = dps.NewCollection("mults", cfg.MultThreads, cfg.MultNodes)
	a.Graph = dps.NewGraph(fmt.Sprintf("lu-%dx%d-r%d", cfg.N, cfg.N, cfg.R))
	a.build()
	if err := a.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("lu: graph construction bug: %w", err)
	}
	return a, nil
}

// build wires the unrolled per-iteration operations.
func (a *App) build() {
	g := a.Graph
	B := a.blocks
	cfg := a.Cfg

	a.Done = g.Merge("done", a.Workers, func(dps.DataObject) dps.MergeState {
		return &doneState{}
	})

	// Per-iteration sink ops built in reverse dependency order so each
	// iteration's runner can connect forward.
	nexts := make([]*dps.Op, B-1) // nexts[k] collects iteration k tiles, runs iteration k+1
	colls := make([]*dps.Op, B-1) // colls[k] is operation (c) of iteration k
	trsms := make([]*dps.Op, B-1) // trsms[k] is operation (b)
	subs := make([]*dps.Op, B-1)  // subs[k] is operation (e)
	flips := make([]*dps.Op, B)   // flips[k] is operation (g) of iteration k (k >= 1)

	for k := 0; k < B-1; k++ {
		k := k
		trsms[k] = g.Leaf(fmt.Sprintf("trsm[%d]", k), a.Workers, a.trsmLeaf(k))
		colls[k] = g.Stream(fmt.Sprintf("collect[%d]", k), a.Workers, func(dps.DataObject) dps.MergeState {
			return &collState{a: a, k: k}
		})
		subs[k] = g.Leaf(fmt.Sprintf("sub[%d]", k), a.Workers, a.subLeaf(k))
		nexts[k] = g.Stream(fmt.Sprintf("next[%d]", k), a.Workers, func(dps.DataObject) dps.MergeState {
			return &nextState{a: a, k: k, counts: make(map[int]int)}
		})
	}
	for k := 1; k < B; k++ {
		flips[k] = g.Leaf(fmt.Sprintf("flip[%d]", k), a.Workers, a.flipLeaf())
	}

	// The init split runs iteration 0 on owner(0).
	a.Init = g.Split("init", a.Workers, func(ctx dps.Ctx, in dps.DataObject) {
		st := &iterStart{a: a, k: 0, trsmEdge: 0, flipEdge: -1}
		l11, piv := st.run(ctx)
		for j := 1; j < B; j++ {
			st.postTrsm(ctx, l11, piv, j)
		}
	})

	// Wire each iteration.
	for k := 0; k < B-1; k++ {
		k := k
		runner := a.Init
		if k > 0 {
			runner = nexts[k-1]
		}
		trsmEdge := g.Connect(runner, trsms[k], func(r dps.Routing) int {
			return a.owner(r.Obj.(*TrsmReq).Block)
		})
		_ = trsmEdge
		g.Connect(trsms[k], colls[k], nil)
		g.PairOps(runner, colls[k], func(dps.DataObject, int) int { return a.owner(k) }, trsmEdge)

		// Multiplication path: plain leaf or the PM sub-graph.
		var multEdge int
		if cfg.ParallelMult {
			pmsplit := g.Split(fmt.Sprintf("pmdist[%d]", k), a.Mults, a.pmSplit(k))
			pmmult := g.Leaf(fmt.Sprintf("pmmult[%d]", k), a.Mults, a.pmMultLeaf())
			pmmerge := g.Merge(fmt.Sprintf("pmmerge[%d]", k), a.Mults, func(first dps.DataObject) dps.MergeState {
				return newPMMergeState(a, first)
			})
			multEdge = g.Connect(colls[k], pmsplit, func(r dps.Routing) int {
				return (r.Seq + k) % r.Width
			})
			pmEdge := g.Connect(pmsplit, pmmult, func(r dps.Routing) int {
				return (r.Seq + r.SrcThread) % r.Width
			})
			g.Connect(pmmult, pmmerge, nil)
			g.Connect(pmmerge, subs[k], func(r dps.Routing) int {
				return a.owner(r.Obj.(*MultRes).Block)
			})
			g.PairOps(pmsplit, pmmerge, func(first dps.DataObject, width int) int {
				req := first.(*PMReq)
				return (req.Tile*31 + req.Block) % width
			}, pmEdge)
		} else {
			mult := g.Leaf(fmt.Sprintf("mult[%d]", k), a.Mults, a.multLeaf())
			multEdge = g.Connect(colls[k], mult, func(r dps.Routing) int {
				return (r.Seq + k) % r.Width
			})
			g.Connect(mult, subs[k], func(r dps.Routing) int {
				return a.owner(r.Obj.(*MultRes).Block)
			})
		}
		g.Connect(subs[k], nexts[k], nil)
		pm := g.PairOps(colls[k], nexts[k], func(dps.DataObject, int) int { return a.owner(k + 1) }, multEdge)
		if cfg.Window > 0 {
			pm.SetWindow(cfg.Window)
		}

		// Row flips of iteration k+1 are posted by nexts[k].
		flipEdge := g.Connect(nexts[k], flips[k+1], func(r dps.Routing) int {
			return a.owner(r.Obj.(*FlipReq).Block)
		})
		g.Connect(flips[k+1], a.Done, nil)
		g.PairOps(nexts[k], a.Done, func(dps.DataObject, int) int { return 0 }, flipEdge)
	}
}

// --- iteration start (operations (a) + request distribution) ---

// iterStart runs the panel LU of iteration k and distributes the trsm and
// flip requests. It executes inside the init split (k = 0) or inside the
// next[k-1] stream (k >= 1), always on owner(k).
type iterStart struct {
	a        *App
	k        int
	trsmEdge int // edge index for TrsmReq posts (-1 if none)
	flipEdge int // edge index for FlipReq posts (-1 if none)
}

// run applies scheduled removals, factors the panel and posts row flips.
// It returns the packed L11 and pivots for the trsm posts.
func (s *iterStart) run(ctx dps.Ctx) (*linalg.Mat, []int) {
	a, k := s.a, s.k
	cfg := a.Cfg
	for _, rm := range cfg.Removals {
		if rm.AfterIter == k {
			a.Mults.Resize(rm.MultThreads)
		}
	}
	ctx.Phase(fmt.Sprintf("iter:%d", k))
	n, r := cfg.N, cfg.R
	m := n - k*r
	var l11 *linalg.Mat
	var piv []int
	ctx.Compute(keyLU(m, r), cfg.Costs.PanelLU(m, r), func() {
		blk := ctx.Store()[blockKey(k)].(*linalg.Mat)
		panel := blk.View(k*r, 0, m, r)
		p, err := linalg.PanelLU(panel)
		if err != nil {
			panic(fmt.Sprintf("lu: iteration %d: %v", k, err))
		}
		piv = p
		l11 = panel.View(0, 0, r, r).Clone()
	})
	if l11 == nil && !ctx.NoAlloc() {
		l11 = linalg.NewMat(r, r)
		piv = make([]int, r)
	}
	if s.flipEdge >= 0 {
		for j := 0; j < k; j++ {
			ctx.PostTo(s.flipEdge, &FlipReq{Iter: k, Block: j, R: r, Piv: piv})
		}
	}
	return l11, piv
}

func (s *iterStart) postTrsm(ctx dps.Ctx, l11 *linalg.Mat, piv []int, j int) {
	ctx.PostTo(s.trsmEdge, &TrsmReq{Iter: s.k, Block: j, R: s.a.Cfg.R, L11: l11, Piv: piv})
}

// --- operation (b): triangular solve + row flipping ---

func (a *App) trsmLeaf(k int) dps.LeafFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		req := in.(*TrsmReq)
		n, r := a.Cfg.N, a.Cfg.R
		var t12 *linalg.Mat
		ctx.Compute(keyTrsm(r), a.Cfg.Costs.Trsm(n-k*r, r), func() {
			blk := ctx.Store()[blockKey(req.Block)].(*linalg.Mat)
			trailing := blk.View(k*r, 0, n-k*r, r)
			trailing.ApplyPivots(req.Piv)
			a12 := blk.View(k*r, 0, r, r)
			linalg.TrsmLowerUnit(req.L11, a12)
			t12 = a12.Clone()
		})
		if t12 == nil && !ctx.NoAlloc() {
			t12 = linalg.NewMat(r, r)
		}
		ctx.Post(&TrsmDone{Iter: k, Block: req.Block, R: r, T12: t12})
	}
}

// --- operation (c): collect T12 blocks, stream multiplication requests ---

type collState struct {
	a        *App
	k        int
	buffered []*TrsmDone // basic graph: barrier until Finish
}

func (s *collState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	td := in.(*TrsmDone)
	if !s.a.Cfg.Pipelined {
		s.buffered = append(s.buffered, td)
		return
	}
	s.emit(ctx, td)
}

func (s *collState) Finish(ctx dps.Ctx) {
	for _, td := range s.buffered {
		s.emit(ctx, td)
	}
	s.buffered = nil
}

// emit builds the multiplication requests of one column block: one per
// L21 row tile, each carrying two r×r operands (paper §5).
func (s *collState) emit(ctx dps.Ctx, td *TrsmDone) {
	a, k := s.a, s.k
	r := a.Cfg.R
	tiles := a.blocks - k - 1
	for i := 0; i < tiles; i++ {
		var l21 *linalg.Mat
		ctx.Compute(keyExtract(r), a.Cfg.Costs.Extract(r), func() {
			blk := ctx.Store()[blockKey(k)].(*linalg.Mat)
			l21 = blk.View((k+1+i)*r, 0, r, r).Clone()
		})
		if l21 == nil && !ctx.NoAlloc() {
			l21 = linalg.NewMat(r, r)
		}
		ctx.Post(&MultReq{Iter: k, Tile: i, Block: td.Block, R: r, L21: l21, T12: td.T12})
	}
}

// --- operation (d): tile multiplication ---

func (a *App) multLeaf() dps.LeafFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		req := in.(*MultReq)
		r := a.Cfg.R
		var prod *linalg.Mat
		ctx.Compute(keyGemm(r), a.Cfg.Costs.Gemm(r), func() {
			prod = linalg.Mul(req.L21, req.T12)
		})
		if prod == nil && !ctx.NoAlloc() {
			prod = linalg.NewMat(r, r)
		}
		ctx.Post(&MultRes{Iter: req.Iter, Tile: req.Tile, Block: req.Block, R: r, Prod: prod})
	}
}

// --- operations (d') of Fig. 7: parallel sub-block multiplication ---

func (a *App) pmSplit(k int) dps.SplitFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		req := in.(*MultReq)
		r, sw := a.Cfg.R, a.Cfg.SubBlock
		strips := r / sw
		for row := 0; row < strips; row++ {
			for col := 0; col < strips; col++ {
				var aRow, bCol *linalg.Mat
				ctx.Compute(keyExtract(sw), a.Cfg.Costs.PMAssemble(sw), func() {
					aRow = req.L21.View(row*sw, 0, sw, r).Clone()
					bCol = req.T12.View(0, col*sw, r, sw).Clone()
				})
				if aRow == nil && !ctx.NoAlloc() {
					aRow = linalg.NewMat(sw, r)
					bCol = linalg.NewMat(r, sw)
				}
				ctx.Post(&PMReq{
					Iter: req.Iter, Tile: req.Tile, Block: req.Block,
					Row: row, Col: col, S: sw, R: r, ARow: aRow, BCol: bCol,
				})
			}
		}
	}
}

func (a *App) pmMultLeaf() dps.LeafFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		req := in.(*PMReq)
		var prod *linalg.Mat
		ctx.Compute(keyPM(req.S, req.R), a.Cfg.Costs.PMMult(req.S, req.R), func() {
			prod = linalg.Mul(req.ARow, req.BCol)
		})
		if prod == nil && !ctx.NoAlloc() {
			prod = linalg.NewMat(req.S, req.S)
		}
		ctx.Post(&PMRes{
			Iter: req.Iter, Tile: req.Tile, Block: req.Block,
			Row: req.Row, Col: req.Col, S: req.S, Prod: prod,
		})
	}
}

// pmMergeState assembles the s×s strips into the full r×r product
// (operation (f) of Fig. 7) and forwards it as a plain MultRes.
type pmMergeState struct {
	a    *App
	meta PMRes
	acc  *linalg.Mat
}

func newPMMergeState(a *App, first dps.DataObject) dps.MergeState {
	s := &pmMergeState{a: a}
	if first != nil {
		res := first.(*PMRes)
		s.meta = *res
	}
	return s
}

func (s *pmMergeState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	res := in.(*PMRes)
	r := s.a.Cfg.R
	ctx.Compute(keyPMAsm(res.S), s.a.Cfg.Costs.PMAssemble(res.S), func() {
		if s.acc == nil {
			s.acc = linalg.NewMat(r, r)
		}
		dst := s.acc.View(res.Row*res.S, res.Col*res.S, res.S, res.S)
		dst.CopyFrom(res.Prod)
	})
}

func (s *pmMergeState) Finish(ctx dps.Ctx) {
	prod := s.acc
	if prod == nil && !ctx.NoAlloc() {
		prod = linalg.NewMat(s.a.Cfg.R, s.a.Cfg.R)
	}
	ctx.Post(&MultRes{Iter: s.meta.Iter, Tile: s.meta.Tile, Block: s.meta.Block, R: s.a.Cfg.R, Prod: prod})
}

// --- operation (e): subtraction ---

func (a *App) subLeaf(k int) dps.LeafFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		res := in.(*MultRes)
		r := a.Cfg.R
		ctx.Compute(keySub(r), a.Cfg.Costs.Sub(r), func() {
			blk := ctx.Store()[blockKey(res.Block)].(*linalg.Mat)
			tile := blk.View((k+1+res.Tile)*r, 0, r, r)
			for i := 0; i < r; i++ {
				for j := 0; j < r; j++ {
					tile.Set(i, j, tile.At(i, j)-res.Prod.At(i, j))
				}
			}
		})
		ctx.Post(&TileDone{Iter: k, Tile: res.Tile, Block: res.Block})
	}
}

// --- operation (f): collect tile completions, start the next iteration ---

type nextState struct {
	a      *App
	k      int // iteration whose tiles are being collected
	counts map[int]int
	start  *iterStart
	l11    *linalg.Mat
	piv    []int
	began  bool
	ready  []int // blocks completed before the next panel LU ran
}

func (s *nextState) tilesPerBlock() int { return s.a.blocks - s.k - 1 }

func (s *nextState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	td := in.(*TileDone)
	s.counts[td.Block]++
	if !s.a.Cfg.Pipelined {
		return // barrier: everything happens in Finish
	}
	if s.counts[td.Block] == s.tilesPerBlock() {
		s.blockComplete(ctx, td.Block)
	}
}

// blockComplete implements the paper's (f): "perform next level LU
// factorization as soon as the first column block is complete, and stream
// out triangular system solve requests as other column blocks complete".
func (s *nextState) blockComplete(ctx dps.Ctx, j int) {
	next := s.k + 1
	if j == next {
		s.begin(ctx)
		for _, rj := range s.ready {
			s.start.postTrsm(ctx, s.l11, s.piv, rj)
		}
		s.ready = nil
		return
	}
	if s.began {
		s.start.postTrsm(ctx, s.l11, s.piv, j)
		return
	}
	s.ready = append(s.ready, j)
}

// begin runs the next iteration's panel LU and flips. Out-edge indices on
// a next[k] stream follow construction order: the flip edge (created while
// wiring iteration k) is edge 0; the trsm edge (created while wiring
// iteration k+1, where next[k] is the runner) is edge 1 and absent on the
// last stream.
func (s *nextState) begin(ctx dps.Ctx) {
	next := s.k + 1
	trsmEdge := 1
	if next >= s.a.blocks-1 {
		trsmEdge = -1 // last iteration: no triangular solves remain
	}
	s.start = &iterStart{a: s.a, k: next, trsmEdge: trsmEdge, flipEdge: 0}
	s.l11, s.piv = s.start.run(ctx)
	s.began = true
}

func (s *nextState) Finish(ctx dps.Ctx) {
	if s.a.Cfg.Pipelined {
		return // all work already streamed out
	}
	// Basic graph: barrier semantics. Start the next iteration and post
	// every solve request.
	s.begin(ctx)
	for j := s.k + 2; j < s.a.blocks; j++ {
		s.start.postTrsm(ctx, s.l11, s.piv, j)
	}
}

// --- operation (g): row flipping on earlier blocks ---

// flipLeaf applies iteration pivots to an already-factored column block.
// Row exchanges of different iterations do not commute, and the network
// may reorder requests under contention, so each block applies flips
// strictly in iteration order, stashing early arrivals.
func (a *App) flipLeaf() dps.LeafFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		req := in.(*FlipReq)
		n, r := a.Cfg.N, a.Cfg.R
		ctx.Compute(keyFlip(r), a.Cfg.Costs.Flip(r), func() {
			st := ctx.Store()
			blk := st[blockKey(req.Block)].(*linalg.Mat)
			nextKey := fmt.Sprintf("flipnext:%d", req.Block)
			stashKey := fmt.Sprintf("flipstash:%d", req.Block)
			next, _ := st[nextKey].(int)
			if next == 0 {
				next = req.Block + 1 // first flip comes from iteration j+1
			}
			stash, _ := st[stashKey].(map[int][]int)
			if stash == nil {
				stash = make(map[int][]int)
				st[stashKey] = stash
			}
			stash[req.Iter] = req.Piv
			for {
				piv, ok := stash[next]
				if !ok {
					break
				}
				delete(stash, next)
				trailing := blk.View(next*r, 0, n-next*r, r)
				trailing.ApplyPivots(piv)
				next++
			}
			st[nextKey] = next
		})
		ctx.Post(&FlipDone{Iter: req.Iter, Block: req.Block})
	}
}

// --- operation (h): termination merge ---

type doneState struct{ flips int }

func (s *doneState) Absorb(dps.Ctx, dps.DataObject) { s.flips++ }
func (s *doneState) Finish(dps.Ctx)                 {}

// --- driving helpers ---

// StoreAccessor yields the local store of a DPS thread; both the
// simulation engine and the real parallel runtime provide one.
type StoreAccessor func(coll *dps.Collection, idx int) dps.Store

// PrepareOn seeds the worker thread stores with the column blocks of a
// random well-conditioned matrix and returns the original for reference
// checks. Only needed when computations execute.
func (a *App) PrepareOn(store StoreAccessor, contentSeed uint64) *linalg.Mat {
	src := rng.New(contentSeed)
	orig := linalg.RandomSPDish(a.Cfg.N, src)
	for j := 0; j < a.blocks; j++ {
		st := store(a.Workers, a.owner(j))
		st[blockKey(j)] = orig.View(0, j*a.Cfg.R, a.Cfg.N, a.Cfg.R).Clone()
	}
	return orig.Clone()
}

// Prepare seeds the stores of a simulation engine.
func (a *App) Prepare(eng *core.Engine, contentSeed uint64) *linalg.Mat {
	return a.PrepareOn(eng.Store, contentSeed)
}

// Start injects the bootstrap seed on owner(0).
func (a *App) Start(eng *core.Engine) {
	eng.Inject(a.Init, a.owner(0), &Seed{})
}

// AssembleFrom reconstructs the packed LU factors from the distributed
// column blocks (correctness verification).
func (a *App) AssembleFrom(store StoreAccessor) *linalg.Mat {
	out := linalg.NewMat(a.Cfg.N, a.Cfg.N)
	for j := 0; j < a.blocks; j++ {
		st := store(a.Workers, a.owner(j))
		blk := st[blockKey(j)].(*linalg.Mat)
		out.View(0, j*a.Cfg.R, a.Cfg.N, a.Cfg.R).CopyFrom(blk)
	}
	return out
}

// Assemble reads the factors back from a simulation engine.
func (a *App) Assemble(eng *core.Engine) *linalg.Mat {
	return a.AssembleFrom(eng.Store)
}

// Blocks returns the number of column blocks (and LU iterations).
func (a *App) Blocks() int { return a.blocks }
