package lu

import (
	"testing"
	"testing/quick"

	"dpsim/internal/linalg"
	"dpsim/internal/rng"
	"dpsim/internal/serial"
	"dpsim/internal/transport"
)

// roundTrip encodes obj through the codec and decodes it back.
func roundTrip(t *testing.T, c *transport.Codec, obj transport.Decodable) transport.Decodable {
	t.Helper()
	body, err := c.Encode(obj)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func luCodec() *transport.Codec {
	c := transport.NewCodec()
	RegisterCodec(c)
	return c
}

func randMat(r, cols int, src *rng.Source) *linalg.Mat {
	return linalg.Random(r, cols, src)
}

func TestTrsmReqRoundTrip(t *testing.T) {
	src := rng.New(1)
	c := luCodec()
	in := &TrsmReq{Iter: 3, Block: 7, R: 5, L11: randMat(5, 5, src), Piv: []int{1, 0, 2, 4, 3}}
	out := roundTrip(t, c, in).(*TrsmReq)
	if out.Iter != 3 || out.Block != 7 || out.R != 5 {
		t.Fatalf("header: %+v", out)
	}
	if !out.L11.Equalish(in.L11, 0) {
		t.Fatal("L11 mismatch")
	}
	for i := range in.Piv {
		if out.Piv[i] != in.Piv[i] {
			t.Fatalf("piv mismatch at %d", i)
		}
	}
}

func TestAllObjectsRoundTripProperty(t *testing.T) {
	c := luCodec()
	prop := func(seed uint64, iterRaw, blockRaw uint8, rRaw uint8) bool {
		src := rng.New(seed)
		iter, block := int(iterRaw%16), int(blockRaw%16)
		r := int(rRaw%6)*2 + 2 // even, 2..12
		s := r / 2
		objs := []transport.Decodable{
			&Seed{},
			&TrsmReq{Iter: iter, Block: block, R: r, L11: randMat(r, r, src), Piv: src.Perm(r)},
			&TrsmDone{Iter: iter, Block: block, R: r, T12: randMat(r, r, src)},
			&MultReq{Iter: iter, Tile: 1, Block: block, R: r, L21: randMat(r, r, src), T12: randMat(r, r, src)},
			&MultRes{Iter: iter, Tile: 2, Block: block, R: r, Prod: randMat(r, r, src)},
			&TileDone{Iter: iter, Tile: 3, Block: block},
			&FlipReq{Iter: iter, Block: block, R: r, Piv: src.Perm(r)},
			&FlipDone{Iter: iter, Block: block},
			&PMReq{Iter: iter, Tile: 1, Block: block, Row: 0, Col: 1, S: s, R: r,
				ARow: randMat(s, r, src), BCol: randMat(r, s, src)},
			&PMRes{Iter: iter, Tile: 1, Block: block, Row: 1, Col: 0, S: s, Prod: randMat(s, s, src)},
		}
		for _, in := range objs {
			body, err := c.Encode(in)
			if err != nil {
				return false
			}
			out, err := c.Decode(body)
			if err != nil {
				return false
			}
			// Wire size must be identical when re-encoding the decoded
			// object (a canonical-form check).
			again, err := c.Encode(out)
			if err != nil || len(again) != len(body) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorruptFails(t *testing.T) {
	c := luCodec()
	body, err := c.Encode(&MultReq{R: 4, L21: linalg.NewMat(4, 4), T12: linalg.NewMat(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload.
	if _, err := c.Decode(body[:len(body)/2]); err == nil {
		t.Fatal("truncated MultReq accepted")
	}
	// Wrong tag for the payload shape.
	r := serial.NewReader(body)
	_ = r
	bad := append([]byte(nil), body...)
	bad[0] = 6 // FlipDone tag with MultReq payload: header tag mismatch
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("tag/payload mismatch accepted")
	}
}

func TestBadSeedMagic(t *testing.T) {
	c := luCodec()
	b := serial.NewBuffer(8)
	b.U32(1) // Seed codec tag
	b.U32(0xBAD)
	if _, err := c.Decode(b.BytesOut()); err == nil {
		t.Fatal("bad seed magic accepted")
	}
}

func TestMatrixPayloadShapeMismatch(t *testing.T) {
	// A matrix payload whose data length disagrees with its dimensions
	// must be rejected.
	b := serial.NewBuffer(64)
	b.U32(3) // TrsmDone codec tag
	b.U8(2)  // wire tag
	b.U32(0)
	b.U32(0)
	b.U32(0)
	b.U32(5)                   // rows=5
	b.U32(5)                   // cols=5
	b.F64s([]float64{1, 2}, 0) // but only 2 values
	c := luCodec()
	if _, err := c.Decode(b.BytesOut()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
