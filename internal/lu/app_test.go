package lu

import (
	"fmt"
	"strings"
	"testing"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/linalg"
	"dpsim/internal/netmodel"
	"dpsim/internal/rng"
)

func simPlatform(nodes int) *core.SimPlatform {
	return core.NewSimPlatform(nodes, netmodel.FastEthernet(), cpumodel.Defaults())
}

// runCorrect builds the app, runs it with real kernels on the simulator
// platform, and verifies the distributed factors against the serial
// blocked reference.
func runCorrect(t *testing.T, cfg Config, seed uint64) core.Result {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        simPlatform(maxInt(cfg.Nodes, cfg.MultNodes)),
		RunComputations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := app.Prepare(eng, seed)
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := app.Assemble(eng)

	ref := orig.Clone()
	piv, err := linalg.BlockedLU(ref, cfg.R)
	if err != nil {
		t.Fatal(err)
	}
	_ = piv
	if !got.Equalish(ref, 1e-9*float64(cfg.N)) {
		t.Fatalf("distributed LU differs from reference by %g", got.MaxAbsDiff(ref))
	}
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBasicGraphCorrect(t *testing.T) {
	runCorrect(t, Config{N: 24, R: 6, Nodes: 2}, 1)
}

func TestBasicGraphSingleNode(t *testing.T) {
	runCorrect(t, Config{N: 16, R: 4, Nodes: 1}, 2)
}

func TestPipelinedGraphCorrect(t *testing.T) {
	runCorrect(t, Config{N: 24, R: 6, Nodes: 2, Pipelined: true}, 3)
}

func TestFlowControlCorrect(t *testing.T) {
	runCorrect(t, Config{N: 24, R: 6, Nodes: 2, Pipelined: true, Window: 2}, 4)
}

func TestParallelMultCorrect(t *testing.T) {
	runCorrect(t, Config{N: 24, R: 6, Nodes: 2, ParallelMult: true, SubBlock: 3}, 5)
}

func TestAllVariantsCombinedCorrect(t *testing.T) {
	runCorrect(t, Config{
		N: 24, R: 6, Nodes: 3,
		Pipelined: true, Window: 3, ParallelMult: true, SubBlock: 2,
	}, 6)
}

func TestSingleBlockMatrix(t *testing.T) {
	// B = 1: the init split factors the only block and posts nothing.
	runCorrect(t, Config{N: 8, R: 8, Nodes: 1}, 7)
}

func TestTwoBlocks(t *testing.T) {
	runCorrect(t, Config{N: 12, R: 6, Nodes: 2}, 8)
}

func TestRemovalCorrect(t *testing.T) {
	runCorrect(t, Config{
		N: 32, R: 4, Nodes: 2,
		MultThreads: 4, MultNodes: 4,
		Removals: []Removal{{AfterIter: 2, MultThreads: 2}},
	}, 9)
}

func TestRemovalStagedCorrect(t *testing.T) {
	runCorrect(t, Config{
		N: 32, R: 4, Nodes: 2, Pipelined: true,
		MultThreads: 4, MultNodes: 4,
		Removals: []Removal{{AfterIter: 2, MultThreads: 3}, {AfterIter: 4, MultThreads: 1}},
	}, 10)
}

func TestMoreBlocksThanThreads(t *testing.T) {
	// 8 blocks on 3 threads: cyclic ownership.
	runCorrect(t, Config{N: 32, R: 4, Nodes: 3, Threads: 3}, 11)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 10, R: 3, Nodes: 1},                                                      // R doesn't divide N
		{N: 12, R: 4, Nodes: 0},                                                      // no nodes
		{N: 12, R: 4, Nodes: 1, ParallelMult: true, SubBlock: 3},                     // s doesn't divide r
		{N: 12, R: 4, Nodes: 1, Removals: []Removal{{AfterIter: 9, MultThreads: 1}}}, // removal too late
		{N: 12, R: 4, Nodes: 1, Removals: []Removal{{AfterIter: 1, MultThreads: 0}}}, // zero threads
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	app, err := Build(Config{N: 24, R: 6, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if app.Cfg.Threads != 4 || app.Cfg.MultThreads != 4 || app.Cfg.MultNodes != 4 {
		t.Fatalf("defaults: %+v", app.Cfg)
	}
	if app.Blocks() != 4 {
		t.Fatalf("blocks = %d", app.Blocks())
	}
}

// --- timing-model behaviour (PDEXEC: kernels skipped) ---

// modelTime runs the app in pure model mode and returns the elapsed time.
func modelTime(t *testing.T, cfg Config) eventq.Time {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        simPlatform(maxInt(cfg.Nodes, cfg.MultNodes)),
		NoAlloc:         true,
		PerStepOverhead: 30 * eventq.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed
}

func TestModelMoreNodesFaster(t *testing.T) {
	slow := modelTime(t, Config{N: 648, R: 81, Nodes: 2})
	fast := modelTime(t, Config{N: 648, R: 81, Nodes: 4})
	if fast >= slow {
		t.Fatalf("4 nodes (%v) not faster than 2 nodes (%v)", fast, slow)
	}
}

func TestModelPipeliningHelps(t *testing.T) {
	basic := modelTime(t, Config{N: 648, R: 81, Nodes: 4})
	pipe := modelTime(t, Config{N: 648, R: 81, Nodes: 4, Pipelined: true})
	if pipe >= basic {
		t.Fatalf("pipelined (%v) not faster than basic (%v)", pipe, basic)
	}
}

func TestModelRemovalCostsLittle(t *testing.T) {
	// Removing multiplication threads late in the run should cost only a
	// few percent (paper Fig. 12).
	full := modelTime(t, Config{
		N: 1296, R: 162, Nodes: 4, Threads: 8,
		MultThreads: 8, MultNodes: 8,
	})
	killed := modelTime(t, Config{
		N: 1296, R: 162, Nodes: 4, Threads: 8,
		MultThreads: 8, MultNodes: 8,
		Removals: []Removal{{AfterIter: 1, MultThreads: 4}},
	})
	if killed < full {
		t.Fatalf("removal made the run faster: %v < %v", killed, full)
	}
	slowdown := float64(killed)/float64(full) - 1
	if slowdown > 0.35 {
		t.Fatalf("removing half the mult threads after iter 1 cost %.0f%%, expected a moderate penalty", slowdown*100)
	}
}

func TestModelDeterministic(t *testing.T) {
	cfg := Config{N: 648, R: 81, Nodes: 4, Pipelined: true, Window: 8}
	if modelTime(t, cfg) != modelTime(t, cfg) {
		t.Fatal("model runs are not deterministic")
	}
}

func TestPhaseMarksPerIteration(t *testing.T) {
	app, err := Build(Config{N: 648, R: 81, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{Graph: app.Graph, Platform: simPlatform(4), NoAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	app.Start(eng)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	marks := eng.Phases()
	if len(marks) != 8 {
		t.Fatalf("phase marks = %d, want 8 iterations", len(marks))
	}
	for i, m := range marks {
		if m.Name != fmt.Sprintf("iter:%d", i) {
			t.Fatalf("mark %d = %q", i, m.Name)
		}
		if i > 0 && m.Time <= marks[i-1].Time {
			t.Fatalf("iteration %d started at %v, not after %v", i, m.Time, marks[i-1].Time)
		}
	}
}

func TestAllocationHistoryOnRemoval(t *testing.T) {
	app, err := Build(Config{
		N: 648, R: 81, Nodes: 4, Threads: 8,
		MultThreads: 8, MultNodes: 8,
		Removals: []Removal{{AfterIter: 1, MultThreads: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{Graph: app.Graph, Platform: simPlatform(8), NoAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	app.Start(eng)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := eng.Allocations()
	first, last := allocs[0], allocs[len(allocs)-1]
	if first.Nodes != 8 {
		t.Fatalf("initial allocation %d nodes, want 8", first.Nodes)
	}
	if last.Nodes != 4 {
		t.Fatalf("final allocation %d nodes, want 4", last.Nodes)
	}
}

// --- sizes and serial work ---

func TestObjectSizesScaleWithR(t *testing.T) {
	small := &MultReq{R: 10, L21: linalg.NewMat(10, 10), T12: linalg.NewMat(10, 10)}
	big := &MultReq{R: 100, L21: linalg.NewMat(100, 100), T12: linalg.NewMat(100, 100)}
	ss, bs := sizeOf(small), sizeOf(big)
	if bs <= ss {
		t.Fatalf("sizes: r=10 → %d, r=100 → %d", ss, bs)
	}
	// Payload dominated: 2·r²·8 bytes.
	if bs < 2*100*100*8 {
		t.Fatalf("r=100 MultReq only %d bytes", bs)
	}
}

func TestNoAllocSizesMatchAllocated(t *testing.T) {
	alloc := &TrsmReq{Iter: 1, Block: 2, R: 16, L11: linalg.NewMat(16, 16), Piv: make([]int, 16)}
	noalloc := &TrsmReq{Iter: 1, Block: 2, R: 16}
	if sizeOf(alloc) != sizeOf(noalloc) {
		t.Fatalf("NOALLOC size %d != allocated size %d", sizeOf(noalloc), sizeOf(alloc))
	}
	a2 := &PMRes{S: 8, Prod: linalg.NewMat(8, 8)}
	n2 := &PMRes{S: 8}
	if sizeOf(a2) != sizeOf(n2) {
		t.Fatal("PMRes NOALLOC size mismatch")
	}
}

func sizeOf(obj dps.DataObject) int64 { return dps.SizeOf(obj) }

func TestSerialWorkDecreases(t *testing.T) {
	c := DefaultCostModel()
	prev := SerialWork(c, 2592, 324, 0)
	for k := 1; k < 8; k++ {
		cur := SerialWork(c, 2592, 324, k)
		if cur >= prev {
			t.Fatalf("serial work not decreasing at iteration %d: %v >= %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestTotalSerialWorkCalibration(t *testing.T) {
	// The default cost model must land near the paper's 185.1 s serial
	// run (r=216) within a loose band.
	total := TotalSerialWork(DefaultCostModel(), 2592, 216).Seconds()
	if total < 150 || total > 230 {
		t.Fatalf("serial 2592²/r=216 factorization modeled at %.1fs, want ≈185s", total)
	}
}

func TestViewCloneInMarshalNonCompact(t *testing.T) {
	// matPayload must serialize non-compact views correctly.
	m := linalg.NewMatFrom(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	v := m.View(1, 1, 2, 2)
	obj := &TrsmDone{R: 2, T12: v}
	compact := &TrsmDone{R: 2, T12: v.Clone()}
	if sizeOf(obj) != sizeOf(compact) {
		t.Fatalf("non-compact view size %d != compact %d", sizeOf(obj), sizeOf(compact))
	}
}

func TestDirectExecutionSmall(t *testing.T) {
	// Direct execution: kernels run and wall time is measured.
	cfg := Config{N: 24, R: 6, Nodes: 2}
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:    app.Graph,
		Platform: simPlatform(2),
		Mode:     dps.ModeDirect,
		CPUScale: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := app.Prepare(eng, 20)
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time measured")
	}
	got := app.Assemble(eng)
	ref := orig.Clone()
	if _, err := linalg.BlockedLU(ref, cfg.R); err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(ref, 1e-8*float64(cfg.N)) {
		t.Fatalf("direct-mode LU wrong by %g", got.MaxAbsDiff(ref))
	}
}

func TestRandomizedVariantsProperty(t *testing.T) {
	// Randomized sweep: any variant combination must factor correctly.
	src := rng.New(77)
	for trial := 0; trial < 6; trial++ {
		r := []int{4, 6, 8}[src.Intn(3)]
		blocks := src.Intn(3) + 2
		cfg := Config{
			N:         r * blocks,
			R:         r,
			Nodes:     src.Intn(3) + 1,
			Pipelined: src.Intn(2) == 0,
		}
		if src.Intn(2) == 0 {
			cfg.Window = src.Intn(4) + 1
		}
		if src.Intn(2) == 0 && r%2 == 0 {
			cfg.ParallelMult = true
			cfg.SubBlock = r / 2
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runCorrect(t, cfg, uint64(trial)+100)
		})
	}
}

func TestGraphNamesUnrolled(t *testing.T) {
	app, err := Build(Config{N: 24, R: 6, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, op := range app.Graph.Ops() {
		names = append(names, op.Name())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"init", "trsm[0]", "collect[2]", "next[2]", "flip[3]", "done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing op %q in %s", want, joined)
		}
	}
}

func BenchmarkModelRun648(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := Build(Config{N: 648, R: 81, Nodes: 4, Pipelined: true})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.New(core.Config{Graph: app.Graph, Platform: simPlatform(4), NoAlloc: true})
		if err != nil {
			b.Fatal(err)
		}
		app.Start(eng)
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDistributedFactorsSolveSystem closes the loop: the factors computed
// by the parallel DPS application must solve a linear system.
func TestDistributedFactorsSolveSystem(t *testing.T) {
	cfg := Config{N: 24, R: 6, Nodes: 2, Pipelined: true}
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        simPlatform(2),
		RunComputations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := app.Prepare(eng, 31)
	app.Start(eng)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	factors := app.Assemble(eng)
	refPiv, err := linalg.BlockedLU(orig.Clone(), cfg.R)
	if err != nil {
		t.Fatal(err)
	}
	// Build b = A·ones and solve with the distributed factors.
	n := cfg.N
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += orig.At(i, j)
		}
	}
	x, err := linalg.SolveLU(factors, refPiv, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < 0.9999 || v > 1.0001 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
}
