package lu

import (
	"fmt"

	"dpsim/internal/eventq"
	"dpsim/internal/linalg"
)

// CostModel converts kernel operation counts into durations on the
// reference node. The defaults are calibrated so that the serial 2592²
// factorization takes ≈185 s, the paper's Table 1 serial reference on a
// 440 MHz UltraSparc II.
type CostModel struct {
	// FlopsPerSec is the reference node's floating-point throughput.
	FlopsPerSec float64
	// MemFactor weights pure memory operations (row flips, subtractions)
	// relative to one flop.
	MemFactor float64
}

// DefaultCostModel returns the UltraSparc II calibration.
func DefaultCostModel() CostModel {
	return CostModel{FlopsPerSec: 63e6, MemFactor: 1.0}
}

func (c CostModel) dur(ops float64) eventq.Duration {
	return eventq.DurationOf(ops / c.FlopsPerSec)
}

// PanelLU returns the duration of the m×r panel factorization.
func (c CostModel) PanelLU(m, r int) eventq.Duration {
	return c.dur(linalg.PanelLUFlops(m, r))
}

// Trsm returns the duration of operation (b): row flipping of the block's
// trailing rows plus the r×r unit-lower solve.
func (c CostModel) Trsm(m, r int) eventq.Duration {
	flip := c.MemFactor * linalg.RowFlipBytes(r, r) / 8
	return c.dur(linalg.TrsmFlops(r, r) + flip)
}

// Gemm returns the duration of one r×r×r tile multiplication.
func (c CostModel) Gemm(r int) eventq.Duration {
	return c.dur(linalg.GemmFlops(r, r, r))
}

// Sub returns the duration of subtracting one r×r product tile.
func (c CostModel) Sub(r int) eventq.Duration {
	return c.dur(c.MemFactor * 2 * float64(r) * float64(r))
}

// Flip returns the duration of applying r pivots to an earlier block.
func (c CostModel) Flip(r int) eventq.Duration {
	return c.dur(c.MemFactor * linalg.RowFlipBytes(r, r) / 8)
}

// PMMult returns the duration of one s×r×s sub-block multiplication.
func (c CostModel) PMMult(s, r int) eventq.Duration {
	return c.dur(linalg.GemmFlops(s, r, s))
}

// PMAssemble returns the duration of building the r×r result from its s×s
// strips.
func (c CostModel) PMAssemble(r int) eventq.Duration {
	return c.dur(c.MemFactor * float64(r) * float64(r))
}

// Extract returns the duration of copying an r×r operand tile out of a
// stored column block (the (c) stream building a multiplication request).
func (c CostModel) Extract(r int) eventq.Duration {
	return c.dur(c.MemFactor * float64(r) * float64(r))
}

// Keys used for calibration tables; they identify a kernel and its shape
// so measured durations transfer between runs of the same configuration.
func keyLU(m, r int) string   { return fmt.Sprintf("lu:%dx%d", m, r) }
func keyTrsm(r int) string    { return fmt.Sprintf("trsm:%d", r) }
func keyGemm(r int) string    { return fmt.Sprintf("gemm:%d", r) }
func keySub(r int) string     { return fmt.Sprintf("sub:%d", r) }
func keyFlip(r int) string    { return fmt.Sprintf("flip:%d", r) }
func keyPM(s, r int) string   { return fmt.Sprintf("pmmult:%dx%d", s, r) }
func keyPMAsm(r int) string   { return fmt.Sprintf("pmasm:%d", r) }
func keyExtract(r int) string { return fmt.Sprintf("extract:%d", r) }

// SerialWork returns the single-node compute time of iteration k (paper
// Fig. 11's per-iteration serial baseline): the panel LU plus, for each of
// the remaining blocks, flip+trsm and the tile multiply/subtract work,
// plus the row flips on earlier blocks.
func SerialWork(c CostModel, n, r, k int) eventq.Duration {
	blocks := n / r
	rem := blocks - k - 1 // blocks right of the panel
	m := n - k*r
	w := c.PanelLU(m, r)
	w += eventq.Duration(rem) * c.Trsm(m, r)
	w += eventq.Duration(rem*rem) * (c.Gemm(r) + c.Sub(r))
	w += eventq.Duration(k) * c.Flip(r)
	return w
}

// TotalSerialWork sums SerialWork over all iterations: the serial running
// time of the whole factorization under the cost model.
func TotalSerialWork(c CostModel, n, r int) eventq.Duration {
	var total eventq.Duration
	for k := 0; k < n/r; k++ {
		total += SerialWork(c, n, r, k)
	}
	return total
}
