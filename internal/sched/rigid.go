package sched

import "slices"

func init() {
	Register("rigid-fcfs", func(p Params) (Scheduler, error) {
		if err := p.check("rigid-fcfs"); err != nil {
			return nil, err
		}
		return &Rigid{}, nil
	})
}

// Rigid allocates each job its MaxNodes, FCFS, holding until completion
// (the conventional space-sharing baseline). The struct carries a
// reusable admission-order scratch buffer: construct one instance per
// simulation.
type Rigid struct {
	waiting []int
}

// Name implements Scheduler.
func (*Rigid) Name() string { return "rigid-fcfs" }

// Allocate implements Scheduler. Running jobs keep their nodes; waiting
// jobs are admitted FCFS into whatever remains (a running job admitted by
// backfilling must never be evicted by an older waiter).
func (r *Rigid) Allocate(st State, out []int) {
	free := st.Nodes
	for i := range st.Active {
		if a := st.Active[i].Alloc; a > 0 {
			out[i] = a
			free -= a
		}
	}
	r.waiting = appendWaitingFCFS(st, r.waiting)
	for _, i := range r.waiting {
		if want := st.Active[i].Job.MaxNodes; want <= free {
			out[i] = want
			free -= want
		}
	}
}

// appendWaitingFCFS fills buf (reusing its capacity) with the indices of
// the jobs holding no allocation, ordered by arrival then ID — the
// shared admission order of the FCFS-family policies. (Arrival, ID) is a
// total order over distinct jobs, so the sort is deterministic.
func appendWaitingFCFS(st State, buf []int) []int {
	buf = buf[:0]
	for i := range st.Active {
		if st.Active[i].Alloc == 0 {
			buf = append(buf, i)
		}
	}
	slices.SortFunc(buf, func(a, b int) int {
		ja, jb := st.Active[a].Job, st.Active[b].Job
		switch {
		case ja.Arrival < jb.Arrival:
			return -1
		case ja.Arrival > jb.Arrival:
			return 1
		case ja.ID < jb.ID:
			return -1
		case ja.ID > jb.ID:
			return 1
		}
		return 0
	})
	return buf
}
