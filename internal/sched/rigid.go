package sched

import "sort"

func init() {
	Register("rigid-fcfs", func(p Params) (Scheduler, error) {
		if err := p.check("rigid-fcfs"); err != nil {
			return nil, err
		}
		return Rigid{}, nil
	})
}

// Rigid allocates each job its MaxNodes, FCFS, holding until completion
// (the conventional space-sharing baseline).
type Rigid struct{}

// Name implements Scheduler.
func (Rigid) Name() string { return "rigid-fcfs" }

// Allocate implements Scheduler. Running jobs keep their nodes; waiting
// jobs are admitted FCFS into whatever remains (a running job admitted by
// backfilling must never be evicted by an older waiter).
func (Rigid) Allocate(st State) map[int]int {
	out := make(map[int]int)
	free := st.Nodes
	for _, js := range st.Active {
		if js.Alloc > 0 {
			out[js.Job.ID] = js.Alloc
			free -= js.Alloc
		}
	}
	for _, js := range waitingFCFS(st) {
		if want := js.Job.MaxNodes; want <= free {
			out[js.Job.ID] = want
			free -= want
		}
	}
	return out
}

// waitingFCFS returns the jobs with no allocation, ordered by arrival
// (stable by ID) — the shared admission order of the FCFS-family
// policies.
func waitingFCFS(st State) []*JobState {
	waiting := make([]*JobState, 0, len(st.Active))
	for _, js := range st.Active {
		if js.Alloc == 0 {
			waiting = append(waiting, js)
		}
	}
	sort.SliceStable(waiting, func(i, j int) bool {
		if waiting[i].Job.Arrival != waiting[j].Job.Arrival {
			return waiting[i].Job.Arrival < waiting[j].Job.Arrival
		}
		return waiting[i].Job.ID < waiting[j].Job.ID
	})
	return waiting
}
