package sched

func init() {
	Register("equipartition", func(p Params) (Scheduler, error) {
		if err := p.check("equipartition"); err != nil {
			return nil, err
		}
		return Equipartition{}, nil
	})
}

// Equipartition divides the nodes evenly among active jobs (classic
// malleable scheduling, Cirne/Berman-style moldability taken to runtime).
type Equipartition struct{}

// Name implements Scheduler.
func (Equipartition) Name() string { return "equipartition" }

// Allocate implements Scheduler. Active arrives in ascending job-ID
// order — exactly the order the even split hands out its remainder — so
// the policy needs no working storage at all.
func (Equipartition) Allocate(st State, out []int) {
	if len(st.Active) == 0 {
		return
	}
	share := st.Nodes / len(st.Active)
	extra := st.Nodes % len(st.Active)
	for i := range st.Active {
		a := share
		if i < extra {
			a++
		}
		if m := st.Active[i].Job.MaxNodes; a > m {
			a = m
		}
		out[i] = a
	}
}
