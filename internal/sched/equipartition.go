package sched

import "sort"

func init() {
	Register("equipartition", func(p Params) (Scheduler, error) {
		if err := p.check("equipartition"); err != nil {
			return nil, err
		}
		return Equipartition{}, nil
	})
}

// Equipartition divides the nodes evenly among active jobs (classic
// malleable scheduling, Cirne/Berman-style moldability taken to runtime).
type Equipartition struct{}

// Name implements Scheduler.
func (Equipartition) Name() string { return "equipartition" }

// Allocate implements Scheduler.
func (Equipartition) Allocate(st State) map[int]int {
	out := make(map[int]int)
	if len(st.Active) == 0 {
		return out
	}
	jobs := append([]*JobState(nil), st.Active...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job.ID < jobs[j].Job.ID })
	share := st.Nodes / len(jobs)
	extra := st.Nodes % len(jobs)
	for i, js := range jobs {
		a := share
		if i < extra {
			a++
		}
		if a > js.Job.MaxNodes {
			a = js.Job.MaxNodes
		}
		out[js.Job.ID] = a
	}
	return out
}
