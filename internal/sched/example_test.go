package sched_test

import (
	"fmt"

	"dpsim/internal/sched"
)

// ExampleParseSpec shows how CLI flags and grid labels resolve to
// policies: a spec string is a registered name with optional
// key=value parameters, and FormatSpec renders the canonical label
// that round-trips back to the identical policy.
func ExampleParseSpec() {
	name, params, err := sched.ParseSpec("malleable-hysteresis(epoch_s=45,min_delta=2)")
	if err != nil {
		panic(err)
	}
	policy, err := sched.New(name, params)
	if err != nil {
		panic(err)
	}
	fmt.Println(policy.Name())
	fmt.Println(sched.FormatSpec(name, params))
	// Output:
	// malleable-hysteresis
	// malleable-hysteresis(epoch_s=45,min_delta=2)
}

// ExampleNames lists the registered policies — the valid scheduler
// names for scenario files and CLI flags.
func ExampleNames() {
	for _, name := range sched.Names() {
		fmt.Println(name)
	}
	// Output:
	// easy-backfill
	// efficiency-greedy
	// equipartition
	// fair-share
	// malleable-hysteresis
	// moldable
	// rigid-fcfs
	// sjf-moldable
}
