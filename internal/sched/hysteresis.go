package sched

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

func init() {
	Register("malleable-hysteresis", func(p Params) (Scheduler, error) {
		if err := p.check("malleable-hysteresis", "epoch_s", "min_delta"); err != nil {
			return nil, err
		}
		m := NewMalleableHysteresis(p.Float("epoch_s", 30), p.Float("min_delta", 2))
		if m.EpochS < 0 || m.MinDelta < 1 {
			return nil, fmt.Errorf("sched: malleable-hysteresis: epoch_s must be >= 0 and min_delta >= 1")
		}
		return m, nil
	})
}

// MalleableHysteresis is equipartition with a reallocation throttle: a
// running job's allocation moves toward its equipartition target only
// when the move is at least MinDelta nodes AND the job's last resize is
// at least EpochS seconds old. The throttle bounds reallocation churn —
// and with it the redistribution pauses the reconfiguration-cost model
// charges — at the price of transiently uneven shares. Admissions
// (waiting → running) and capacity pressure are never throttled: a job
// must start as soon as its target says so, and the policy must always
// fit inside the usable pool.
//
// The policy is stateful (per-job resize clocks plus reusable scratch
// buffers): construct a fresh instance per simulation.
type MalleableHysteresis struct {
	// EpochS is the minimum time between two resizes of one job.
	EpochS float64
	// MinDelta is the minimum allocation change worth acting on.
	MinDelta int

	lastResize map[int]float64
	target     []int
	order      []int
}

// NewMalleableHysteresis constructs the policy; minDelta is rounded to
// the nearest node.
func NewMalleableHysteresis(epochS, minDelta float64) *MalleableHysteresis {
	return &MalleableHysteresis{
		EpochS:     epochS,
		MinDelta:   int(math.Round(minDelta)),
		lastResize: make(map[int]float64),
	}
}

// Name implements Scheduler.
func (*MalleableHysteresis) Name() string { return "malleable-hysteresis" }

// Allocate implements Scheduler.
func (m *MalleableHysteresis) Allocate(st State, out []int) {
	if m.lastResize == nil {
		m.lastResize = make(map[int]float64)
	}
	if len(st.Active) == 0 {
		clear(m.lastResize)
		return
	}
	m.target = grow(m.target, len(st.Active))
	for i := range m.target {
		m.target[i] = 0
	}
	Equipartition{}.Allocate(st, m.target)
	// Forget departed jobs so the clock map cannot grow without bound;
	// Active is ID-sorted, so membership is a binary search away.
	for id := range m.lastResize {
		k := sort.Search(len(st.Active), func(i int) bool { return st.Active[i].Job.ID >= id })
		if k == len(st.Active) || st.Active[k].Job.ID != id {
			delete(m.lastResize, id)
		}
	}
	total := 0
	for i := range st.Active {
		js := &st.Active[i]
		id := js.Job.ID
		cur, want := js.Alloc, m.target[i]
		a := cur
		switch {
		case cur == want:
			// nothing to do; the clock only ticks on actual resizes.
		case cur == 0:
			// Admission: never delay a waiting job's first nodes.
			a = want
			m.lastResize[id] = st.Now
		case abs(want-cur) < m.MinDelta:
			// Too small a move to pay a redistribution for.
		case st.Now-m.resizeClock(id) < m.EpochS:
			// Within the epoch: hold.
		default:
			a = want
			m.lastResize[id] = st.Now
		}
		out[i] = a
		total += a
	}
	// Capacity repair: held allocations can exceed a shrunken pool (or
	// crowd out an admission). Pressure overrides hysteresis — shrink the
	// jobs holding most above target, largest overshoot first (ties:
	// lower ID, i.e. lower index), until the allocation fits. Targets
	// always sum within Nodes, so one pass suffices.
	if total > st.Nodes {
		m.order = grow(m.order, len(st.Active))
		for i := range m.order {
			m.order[i] = i
		}
		slices.SortStableFunc(m.order, func(a, b int) int {
			oa := out[a] - m.target[a]
			ob := out[b] - m.target[b]
			switch {
			case oa > ob:
				return -1
			case oa < ob:
				return 1
			}
			return 0
		})
		for _, i := range m.order {
			if total <= st.Nodes {
				break
			}
			give := out[i] - m.target[i]
			if give <= 0 {
				continue
			}
			if excess := total - st.Nodes; give > excess {
				give = excess
			}
			out[i] -= give
			total -= give
			m.lastResize[st.Active[i].Job.ID] = st.Now
		}
	}
}

// resizeClock is the instant of the job's last resize; a job never yet
// resized is free to move immediately.
func (m *MalleableHysteresis) resizeClock(id int) float64 {
	if at, ok := m.lastResize[id]; ok {
		return at
	}
	return math.Inf(-1)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
