package sched

import (
	"fmt"
	"math"
	"sort"
)

func init() {
	Register("malleable-hysteresis", func(p Params) (Scheduler, error) {
		if err := p.check("malleable-hysteresis", "epoch_s", "min_delta"); err != nil {
			return nil, err
		}
		m := NewMalleableHysteresis(p.Float("epoch_s", 30), p.Float("min_delta", 2))
		if m.EpochS < 0 || m.MinDelta < 1 {
			return nil, fmt.Errorf("sched: malleable-hysteresis: epoch_s must be >= 0 and min_delta >= 1")
		}
		return m, nil
	})
}

// MalleableHysteresis is equipartition with a reallocation throttle: a
// running job's allocation moves toward its equipartition target only
// when the move is at least MinDelta nodes AND the job's last resize is
// at least EpochS seconds old. The throttle bounds reallocation churn —
// and with it the redistribution pauses the reconfiguration-cost model
// charges — at the price of transiently uneven shares. Admissions
// (waiting → running) and capacity pressure are never throttled: a job
// must start as soon as its target says so, and the policy must always
// fit inside the usable pool.
//
// The policy is stateful (per-job resize clocks): construct a fresh
// instance per simulation.
type MalleableHysteresis struct {
	// EpochS is the minimum time between two resizes of one job.
	EpochS float64
	// MinDelta is the minimum allocation change worth acting on.
	MinDelta int

	lastResize map[int]float64
}

// NewMalleableHysteresis constructs the policy; minDelta is rounded to
// the nearest node.
func NewMalleableHysteresis(epochS, minDelta float64) *MalleableHysteresis {
	return &MalleableHysteresis{
		EpochS:     epochS,
		MinDelta:   int(math.Round(minDelta)),
		lastResize: make(map[int]float64),
	}
}

// Name implements Scheduler.
func (*MalleableHysteresis) Name() string { return "malleable-hysteresis" }

// Allocate implements Scheduler.
func (m *MalleableHysteresis) Allocate(st State) map[int]int {
	if m.lastResize == nil {
		m.lastResize = make(map[int]float64)
	}
	target := Equipartition{}.Allocate(st)
	out := make(map[int]int)
	if len(st.Active) == 0 {
		m.lastResize = make(map[int]float64)
		return out
	}
	jobs := append([]*JobState(nil), st.Active...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job.ID < jobs[j].Job.ID })
	// Forget departed jobs so the clock map cannot grow without bound.
	present := make(map[int]bool, len(jobs))
	for _, js := range jobs {
		present[js.Job.ID] = true
	}
	for id := range m.lastResize {
		if !present[id] {
			delete(m.lastResize, id)
		}
	}
	total := 0
	for _, js := range jobs {
		id := js.Job.ID
		cur, want := js.Alloc, target[id]
		a := cur
		switch {
		case cur == want:
			// nothing to do; the clock only ticks on actual resizes.
		case cur == 0:
			// Admission: never delay a waiting job's first nodes.
			a = want
			m.lastResize[id] = st.Now
		case abs(want-cur) < m.MinDelta:
			// Too small a move to pay a redistribution for.
		case st.Now-m.resizeClock(id) < m.EpochS:
			// Within the epoch: hold.
		default:
			a = want
			m.lastResize[id] = st.Now
		}
		out[id] = a
		total += a
	}
	// Capacity repair: held allocations can exceed a shrunken pool (or
	// crowd out an admission). Pressure overrides hysteresis — shrink the
	// jobs holding most above target, largest overshoot first (ties:
	// lower ID), until the allocation fits. Targets always sum within
	// Nodes, so one pass suffices.
	if total > st.Nodes {
		order := make([]*JobState, len(jobs))
		copy(order, jobs)
		sort.SliceStable(order, func(i, j int) bool {
			oi := out[order[i].Job.ID] - target[order[i].Job.ID]
			oj := out[order[j].Job.ID] - target[order[j].Job.ID]
			if oi != oj {
				return oi > oj
			}
			return order[i].Job.ID < order[j].Job.ID
		})
		for _, js := range order {
			if total <= st.Nodes {
				break
			}
			id := js.Job.ID
			give := out[id] - target[id]
			if give <= 0 {
				continue
			}
			if excess := total - st.Nodes; give > excess {
				give = excess
			}
			out[id] -= give
			total -= give
			m.lastResize[id] = st.Now
		}
	}
	return out
}

// resizeClock is the instant of the job's last resize; a job never yet
// resized is free to move immediately.
func (m *MalleableHysteresis) resizeClock(id int) float64 {
	if at, ok := m.lastResize[id]; ok {
		return at
	}
	return math.Inf(-1)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
