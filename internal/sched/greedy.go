package sched

func init() {
	Register("efficiency-greedy", func(p Params) (Scheduler, error) {
		if err := p.check("efficiency-greedy"); err != nil {
			return nil, err
		}
		return EfficiencyGreedy{}, nil
	})
}

// EfficiencyGreedy assigns nodes one at a time to the job with the largest
// marginal rate gain under its current phase's efficiency curve — the
// dynamic-efficiency-aware policy the paper's simulator enables.
type EfficiencyGreedy struct{}

// Name implements Scheduler.
func (EfficiencyGreedy) Name() string { return "efficiency-greedy" }

// Allocate implements Scheduler. The out buffer doubles as the working
// allocation array (it arrives zeroed), so the greedy loop needs no
// storage of its own; ties in marginal gain resolve to the lowest index,
// i.e. the lowest job ID, as Active is ID-sorted.
func (EfficiencyGreedy) Allocate(st State, out []int) {
	if len(st.Active) == 0 {
		return
	}
	for n := 0; n < st.Nodes; n++ {
		best, bestGain := -1, 0.0
		for i := range st.Active {
			js := &st.Active[i]
			if out[i] >= js.Job.MaxNodes {
				continue
			}
			ph := js.Phase()
			gain := ph.Rate(out[i]+1) - ph.Rate(out[i])
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 {
			break
		}
		out[best]++
	}
}
