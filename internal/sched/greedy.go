package sched

import "sort"

func init() {
	Register("efficiency-greedy", func(p Params) (Scheduler, error) {
		if err := p.check("efficiency-greedy"); err != nil {
			return nil, err
		}
		return EfficiencyGreedy{}, nil
	})
}

// EfficiencyGreedy assigns nodes one at a time to the job with the largest
// marginal rate gain under its current phase's efficiency curve — the
// dynamic-efficiency-aware policy the paper's simulator enables.
type EfficiencyGreedy struct{}

// Name implements Scheduler.
func (EfficiencyGreedy) Name() string { return "efficiency-greedy" }

// Allocate implements Scheduler.
func (EfficiencyGreedy) Allocate(st State) map[int]int {
	out := make(map[int]int)
	if len(st.Active) == 0 {
		return out
	}
	jobs := append([]*JobState(nil), st.Active...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job.ID < jobs[j].Job.ID })
	alloc := make([]int, len(jobs))
	for n := 0; n < st.Nodes; n++ {
		best, bestGain := -1, 0.0
		for i, js := range jobs {
			if alloc[i] >= js.Job.MaxNodes {
				continue
			}
			ph := js.Phase()
			gain := ph.Rate(alloc[i]+1) - ph.Rate(alloc[i])
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
	}
	for i, js := range jobs {
		out[js.Job.ID] = alloc[i]
	}
	return out
}
