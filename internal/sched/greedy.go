package sched

func init() {
	Register("efficiency-greedy", func(p Params) (Scheduler, error) {
		if err := p.check("efficiency-greedy"); err != nil {
			return nil, err
		}
		return &EfficiencyGreedy{}, nil
	})
}

// EfficiencyGreedy assigns nodes one at a time to the job with the largest
// marginal rate gain under its current phase's efficiency curve — the
// dynamic-efficiency-aware policy the paper's simulator enables.
type EfficiencyGreedy struct {
	// gains caches each job's marginal gain at its current working
	// allocation: a job's gain only changes when it is granted a node,
	// so the selection loop recomputes one entry per grant instead of
	// every entry (bit-identical — cached values are the same floats the
	// recomputation would produce).
	gains []float64
}

// Name implements Scheduler.
func (*EfficiencyGreedy) Name() string { return "efficiency-greedy" }

// marginalGain is the rate gained by job js's (alloc+1)-th node, zero
// once the job's request is filled (a zero gain is never selected, which
// is exactly the historical skip). The model branch sits at the call
// site so the comm formula inlines.
func marginalGain(js *JobState, alloc int) float64 {
	if alloc >= js.Job.MaxNodes {
		return 0
	}
	ph := js.Phase()
	if m := js.Job.Model; m != nil {
		return modelRate(m, ph.Work, alloc+1) - modelRate(m, ph.Work, alloc)
	}
	return ph.Rate(alloc+1) - ph.Rate(alloc)
}

// Allocate implements Scheduler. The out buffer doubles as the working
// allocation array (it arrives zeroed); ties in marginal gain resolve to
// the lowest index, i.e. the lowest job ID, as Active is ID-sorted.
func (g *EfficiencyGreedy) Allocate(st State, out []int) {
	n := len(st.Active)
	if n == 0 {
		return
	}
	g.gains = grow(g.gains, n)
	for i := range st.Active {
		g.gains[i] = marginalGain(&st.Active[i], 0)
	}
	for node := 0; node < st.Nodes; node++ {
		best, bestGain := -1, 0.0
		for i, gain := range g.gains {
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		g.gains[best] = marginalGain(&st.Active[best], out[best])
	}
}
