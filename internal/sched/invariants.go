package sched

import (
	"fmt"
	"strings"

	"dpsim/internal/rng"
)

// CapacityChange is one step of a node-availability timeline, mirrored
// here so the harness can randomize capacity without importing the
// simulator stack (the runner converts it to its own representation).
type CapacityChange struct {
	At       float64 // seconds
	Capacity int     // absolute usable nodes from At on
	NoticeS  float64 // advance reclaim notice; 0 = abrupt
}

// Outcome is the simulation summary CheckInvariants inspects.
type Outcome struct {
	// Fingerprint must render the full result (per-job outcomes
	// included) so that two same-seed runs compare bit-for-bit.
	Fingerprint string
	// Jobs is the number of jobs submitted; Finished and Unfinished must
	// partition it for a terminating simulation.
	Jobs       int
	Finished   int
	Unfinished int
}

// Runner executes one complete simulation of the scheduler over the
// given workload and capacity timeline. internal/cluster provides the
// canonical implementation (cluster.InvariantRunner); the indirection
// keeps sched free of a dependency on the simulator it certifies.
type Runner func(s Scheduler, nodes int, jobs []*Job, changes []CapacityChange) (Outcome, error)

// CheckConfig tunes CheckInvariants.
type CheckConfig struct {
	// Runner drives the simulations (required).
	Runner Runner
	// Factory overrides name resolution; nil resolves New(name, nil).
	// Every call must return a fresh instance (policies may be stateful).
	Factory func() (Scheduler, error)
	// Seed roots the randomized workloads and timelines (default 1).
	Seed uint64
	// Rounds is the number of randomized (workload, timeline) pairs
	// (default 16); each pair runs twice to check determinism.
	Rounds int
	// MaxNodes bounds the random cluster size (default 24).
	MaxNodes int
	// MaxJobs bounds the random workload size (default 16).
	MaxJobs int
}

// CheckInvariants certifies a scheduling policy against the simulator's
// core invariants under randomized workloads and randomized
// node-availability timelines:
//
//  1. the summed allocation never exceeds the capacity offered,
//  2. no job ever receives more than its MaxNodes, a negative count, or
//     an allocation while absent from the state,
//  3. identical seeds produce identical Results, and
//  4. every submitted job either finishes or is counted in Unfinished.
//
// Any registered policy — including future ones — is certified by name;
// the invariant suite runs it for every name in Names().
func CheckInvariants(name string, cfg CheckConfig) error {
	if cfg.Runner == nil {
		return fmt.Errorf("sched: CheckInvariants(%s): no Runner", name)
	}
	newPolicy := cfg.Factory
	if newPolicy == nil {
		newPolicy = func() (Scheduler, error) { return New(name, nil) }
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 16
	}
	maxNodes := cfg.MaxNodes
	if maxNodes < 2 {
		maxNodes = 24
	}
	maxJobs := cfg.MaxJobs
	if maxJobs < 1 {
		maxJobs = 16
	}
	for round := 0; round < rounds; round++ {
		roundSeed := rng.New(seed ^ (uint64(round+1) * 0x9e3779b97f4a7c15)).Uint64()
		var fingerprints [2]string
		for rerun := 0; rerun < 2; rerun++ {
			// Regenerate the identical workload and timeline from the
			// round seed: determinism (invariant 3) is checked on the
			// whole pipeline, not just the policy.
			nodes, jobs, changes := randomCase(roundSeed, maxNodes, maxJobs)
			policy, err := newPolicy()
			if err != nil {
				return fmt.Errorf("sched: CheckInvariants(%s): %w", name, err)
			}
			v := &validator{inner: policy}
			out, err := cfg.Runner(v, nodes, jobs, changes)
			if len(v.violations) > 0 {
				return fmt.Errorf("sched: CheckInvariants(%s): round %d: %s",
					name, round, strings.Join(v.violations, "; "))
			}
			if err != nil {
				return fmt.Errorf("sched: CheckInvariants(%s): round %d: %w", name, round, err)
			}
			if out.Finished+out.Unfinished != out.Jobs {
				return fmt.Errorf("sched: CheckInvariants(%s): round %d: %d finished + %d unfinished != %d jobs",
					name, round, out.Finished, out.Unfinished, out.Jobs)
			}
			fingerprints[rerun] = out.Fingerprint
		}
		if fingerprints[0] != fingerprints[1] {
			return fmt.Errorf("sched: CheckInvariants(%s): round %d: identical seeds diverged:\n  %s\n  %s",
				name, round, fingerprints[0], fingerprints[1])
		}
	}
	return nil
}

// randomCase expands a seed into one randomized test case: a cluster
// size, an open workload with varied phase profiles and weights, and a
// sorted capacity timeline mixing abrupt drops, noticed reclaims, full
// outages and restorations.
func randomCase(seed uint64, maxNodes, maxJobs int) (int, []*Job, []CapacityChange) {
	src := rng.New(seed)
	nodes := 2 + src.Intn(maxNodes-1)
	njobs := 1 + src.Intn(maxJobs)
	jobs := make([]*Job, njobs)
	t := 0.0
	for i := range jobs {
		t += src.Exp(8)
		phases := make([]Phase, 1+src.Intn(4))
		for k := range phases {
			phases[k] = Phase{Work: src.Uniform(0.5, 40), Comm: src.Uniform(0, 0.4)}
		}
		jobs[i] = &Job{
			ID:       i,
			Arrival:  t,
			Phases:   phases,
			MaxNodes: 1 + src.Intn(nodes),
			Weight:   src.Uniform(0.5, 3),
		}
	}
	var changes []CapacityChange
	ct := 0.0
	for i, n := 0, src.Intn(9); i < n; i++ {
		ct += src.Exp(30)
		c := CapacityChange{At: ct, Capacity: src.Intn(nodes + 1)}
		if src.Float64() < 0.4 {
			c.NoticeS = src.Uniform(1, 15)
		}
		changes = append(changes, c)
	}
	return nodes, jobs, changes
}

// validator wraps a policy and records every violation of the
// allocation contract observed across the run. (The buffer contract
// makes "allocated to an absent job" structurally impossible — out is
// indexed like Active — so unlike its map-era ancestor the validator
// only checks ranges and the capacity sum.)
type validator struct {
	inner      Scheduler
	violations []string
}

const maxViolations = 5

func (v *validator) Name() string { return v.inner.Name() }

func (v *validator) Allocate(st State, out []int) {
	v.inner.Allocate(st, out)
	total := 0
	for i, a := range out {
		id := st.Active[i].Job.ID
		switch {
		case a < 0:
			v.record("t=%g: job %d allocated %d nodes", st.Now, id, a)
		case a > st.Active[i].Job.MaxNodes:
			v.record("t=%g: job %d allocated %d > MaxNodes %d", st.Now, id, a, st.Active[i].Job.MaxNodes)
		}
		if a > 0 {
			total += a
		}
	}
	if total > st.Nodes {
		v.record("t=%g: allocated %d of %d usable nodes", st.Now, total, st.Nodes)
	}
}

func (v *validator) record(format string, args ...interface{}) {
	if len(v.violations) < maxViolations {
		v.violations = append(v.violations, fmt.Sprintf(format, args...))
	}
}
