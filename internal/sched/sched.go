// Package sched is the scheduling-policy subsystem of the malleable
// cluster simulator: the Scheduler interface, the scheduler-visible views
// of cluster state, and a self-registering policy registry.
//
// The cluster simulator (internal/cluster) invokes a Scheduler at every
// arrival, phase boundary, departure and capacity change; the policy sees
// a State snapshot — the usable node count, the current virtual instant
// and one JobState view per active job — and returns a per-job allocation.
// Policies never mutate simulator state, so any policy that respects the
// allocation contract (see Scheduler) can be dropped into the simulator,
// the scenario layer and the sweep grid without touching them.
//
// Built-in policies, by rigidity class:
//
//   - rigid-fcfs, easy-backfill — rigid: each job runs at its requested
//     width (MaxNodes) from admission to completion.
//   - moldable, sjf-moldable — moldable: the width is chosen once, at
//     admission, and then held.
//   - equipartition, fair-share, efficiency-greedy,
//     malleable-hysteresis — malleable: allocations are recomputed at
//     every scheduling event.
//
// New policies self-register via Register (typically from an init
// function) and are then resolvable by name everywhere — scenario JSON,
// CLI flags, sweep grids — and certified against the simulator's
// invariants by CheckInvariants for free.
package sched

import (
	"math"

	"dpsim/internal/appmodel"
)

// Phase is one stage of an application with roughly constant parallel
// behavior (an LU iteration, a solver sweep, ...).
type Phase struct {
	// Work is the phase's serial execution time in seconds.
	Work float64
	// Comm is the communication/imbalance factor: efficiency on p nodes
	// is 1/(1+Comm·(p-1)). Zero means perfectly parallel. It is ignored
	// when the owning Job carries a performance Model.
	Comm float64
}

// Efficiency returns the dynamic efficiency of the phase on p nodes
// under the Comm formula. Jobs with an attached performance model
// override this curve: model-aware callers must use JobState.EffAt (or
// branch on Job.Model like the built-in policies do).
func (ph Phase) Efficiency(p int) float64 {
	if p <= 0 {
		return 0
	}
	return 1 / (1 + ph.Comm*float64(p-1))
}

// Rate returns the phase's progress in work-seconds per second on p
// nodes under the Comm formula. See Efficiency for the model caveat.
func (ph Phase) Rate(p int) float64 {
	return float64(p) * ph.Efficiency(p)
}

// modelEfficiency and modelRate evaluate an attached performance model;
// they guard the no-allocation case so models never see p <= 0.
func modelEfficiency(m appmodel.AppModel, work float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return m.Efficiency(work, p)
}

func modelRate(m appmodel.AppModel, work float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return m.Rate(work, p)
}

// Job is one application submitted to the cluster.
type Job struct {
	ID      int
	Arrival float64 // seconds
	Phases  []Phase
	// MaxNodes caps the allocation (rigid jobs always request MaxNodes).
	MaxNodes int
	// Weight biases proportional-share policies (fair-share): a job with
	// Weight 2 is entitled to twice the share of a job with Weight 1.
	// Zero means 1; policies that are not share-based ignore it.
	Weight float64
	// Model, when non-nil, is the job's application performance model
	// (internal/appmodel): every phase's rate and efficiency come from
	// it instead of the phase's Comm formula. The scenario layer sets it
	// for the sweep grid's appmodel axis; nil is the classic
	// communication-factor application. (Per-phase response variation is
	// expressed through Comm — the comm-factor family — so one model per
	// job covers the registered analytical families.)
	Model appmodel.AppModel
}

// TotalWork returns the job's serial running time.
func (j *Job) TotalWork() float64 {
	var w float64
	for _, ph := range j.Phases {
		w += ph.Work
	}
	return w
}

// JobState is the scheduler-visible view of one active job: a
// value-typed snapshot taken at the scheduling event. Alloc is the job's
// current allocation after any capacity preemption (0 = waiting).
type JobState struct {
	Job       *Job
	PhaseIdx  int
	Remaining float64 // work-seconds left in the current phase
	Alloc     int
}

// Phase returns the job's current phase.
func (js JobState) Phase() Phase { return js.Job.Phases[js.PhaseIdx] }

// RemainingWork returns the job's serial work left: the current phase's
// remainder plus every later phase.
func (js JobState) RemainingWork() float64 {
	w := js.Remaining
	for k := js.PhaseIdx + 1; k < len(js.Job.Phases); k++ {
		w += js.Job.Phases[k].Work
	}
	return w
}

// EffAt returns the current phase's dynamic efficiency on p nodes under
// the job's performance model (the phase's Comm formula when the job
// has none). Policies that are not allocation-evaluation hot loops
// should prefer this over Phase.Efficiency — it is model-correct by
// construction.
func (js JobState) EffAt(p int) float64 {
	if m := js.Job.Model; m != nil {
		return modelEfficiency(m, js.Phase().Work, p)
	}
	return js.Phase().Efficiency(p)
}

// RateAt is the model-aware analog of Phase.Rate for the current phase.
func (js JobState) RateAt(p int) float64 {
	if m := js.Job.Model; m != nil {
		return modelRate(m, js.Phase().Work, p)
	}
	return js.Phase().Rate(p)
}

// EstRemaining estimates the job's remaining runtime on p nodes: the
// current phase's remaining work plus every later phase, each at the
// phase's own dynamic-efficiency rate (or the job's performance model).
// This is the runtime estimate backfilling policies use — it comes
// straight from the per-phase work profile the DPS simulator predicts.
func (js JobState) EstRemaining(p int) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	// The model branch sits outside the phase walk so the comm formula
	// inlines: this loop covers every remaining phase, per candidate
	// width, per scheduling event.
	if m := js.Job.Model; m != nil {
		t := js.Remaining / modelRate(m, js.Phase().Work, p)
		for k := js.PhaseIdx + 1; k < len(js.Job.Phases); k++ {
			t += js.Job.Phases[k].Work / modelRate(m, js.Job.Phases[k].Work, p)
		}
		return t
	}
	t := js.Remaining / js.Phase().Rate(p)
	for k := js.PhaseIdx + 1; k < len(js.Job.Phases); k++ {
		t += js.Job.Phases[k].Work / js.Job.Phases[k].Rate(p)
	}
	return t
}

// State is the scheduler-visible cluster state at one scheduling event.
// Active (and the out buffer paired with it) is owned by the caller and
// valid only for the duration of the Allocate call: the simulator reuses
// the backing array between events, so policies must not retain it.
type State struct {
	// Nodes is the capacity usable right now: the current pool, already
	// shrunk by any outstanding reclaim notice.
	Nodes int
	// Now is the current virtual instant in seconds, for policies with
	// time-based throttles (epoch hysteresis).
	Now float64
	// Active lists the active jobs in ascending job-ID order.
	Active []JobState
}

// Scheduler decides allocations. Allocate writes st.Active[i]'s node
// count into out[i]; the caller provides out with len(st.Active),
// zeroed, so a policy that grants a job nothing may simply skip it. On
// return the counts must each lie in [0, MaxNodes] and sum to at most
// st.Nodes.
//
// The buffer-reuse contract is what keeps the simulator's event loop
// allocation-free: the caller owns st.Active and out and recycles both
// across scheduling events, and policies are expected to keep their own
// working storage in reusable scratch buffers (constructed once per
// instance) rather than allocating per call. Policies may keep per-run
// state (hysteresis clocks, scratch buffers) — resolve a fresh instance
// per simulation.
//
// Policies that evaluate phase rates or efficiencies must respect the
// job's performance model: use JobState.RateAt/EffAt/EstRemaining
// (model-aware by construction), or branch on Job.Model like the
// built-in policies do when the evaluation sits in a hot loop.
type Scheduler interface {
	Name() string
	Allocate(st State, out []int)
}

// grow returns buf resized to n, reusing its backing array when the
// capacity suffices — the shared scratch-buffer idiom of the policies.
// Contents are unspecified; callers that need zeros must clear.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
