package sched

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// allPolicies is the full registered set this PR ships; keeping the
// literal here makes an accidental deregistration a test failure.
var allPolicies = []string{
	"easy-backfill", "efficiency-greedy", "equipartition", "fair-share",
	"malleable-hysteresis", "moldable", "rigid-fcfs", "sjf-moldable",
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if !reflect.DeepEqual(names, allPolicies) {
		t.Fatalf("Names() = %v, want %v", names, allPolicies)
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"rigid-fcfs", "RIGID-FCFS", "Equipartition", "EFFICIENCY-greedy", "Moldable", "Easy-Backfill", "FAIR-share", "sjf-MOLDABLE", "Malleable-Hysteresis"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("%q did not resolve", name)
		}
		if !strings.EqualFold(s.Name(), name) {
			t.Fatalf("%q resolved to %q", name, s.Name())
		}
	}
	if _, ok := ByName("no-such"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("no-such", nil); err == nil || !strings.Contains(err.Error(), "rigid-fcfs") {
		t.Fatalf("unknown-name error should list valid names, got %v", err)
	}
	// Unknown parameters must fail construction, not fall back silently.
	for _, name := range Names() {
		if _, err := New(name, Params{"not_a_param": 1}); err == nil {
			t.Errorf("%s accepted an unknown parameter", name)
		}
	}
	// Known parameters construct.
	if _, err := New("moldable", Params{"min_efficiency": 0.7}); err != nil {
		t.Fatal(err)
	}
	if _, err := New("malleable-hysteresis", Params{"epoch_s": 10, "min_delta": 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := New("malleable-hysteresis", Params{"min_delta": 0}); err == nil {
		t.Fatal("min_delta 0 accepted")
	}
	// Out-of-range thresholds must be rejected, not silently remapped to
	// the default: a mislabeled sweep axis is worse than an error.
	for _, name := range []string{"moldable", "sjf-moldable"} {
		for _, bad := range []float64{0, -0.5, 1.5} {
			if _, err := New(name, Params{"min_efficiency": bad}); err == nil {
				t.Errorf("%s accepted min_efficiency=%g", name, bad)
			}
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("rigid-fcfs", func(Params) (Scheduler, error) { return &Rigid{}, nil })
}

func TestParseFormatSpecRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		params Params
	}{
		{"equipartition", nil},
		{"malleable-hysteresis", Params{"epoch_s": 45, "min_delta": 2}},
		{"moldable", Params{"min_efficiency": 0.625}},
		{"x", Params{"a": 1e-9, "b": 123456789.123456}},
	}
	for _, c := range cases {
		spec := FormatSpec(c.name, c.params)
		name, params, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if name != c.name {
			t.Fatalf("%s: name %q", spec, name)
		}
		if len(c.params) == 0 && len(params) != 0 {
			t.Fatalf("%s: params %v", spec, params)
		}
		for k, v := range c.params {
			if params[k] != v {
				t.Fatalf("%s: param %s = %v, want %v (float round-trip broken)", spec, k, params[k], v)
			}
		}
	}
	for _, bad := range []string{"", "  ", "a(b)", "a(b=)", "a(b=1", "(x=1)", "a(=1)", "a(b=NaN)", "a(b=Inf)", "a(b=-Inf)"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
