package sched

import (
	"testing"

	"dpsim/internal/rng"
)

// mkJob builds a uniform-phase job for policy-level tests.
func mkJob(id int, arrival, work float64, phases, maxNodes int, comm float64) *Job {
	phs := make([]Phase, phases)
	for i := range phs {
		phs[i] = Phase{Work: work / float64(phases), Comm: comm}
	}
	return &Job{ID: id, Arrival: arrival, Phases: phs, MaxNodes: maxNodes}
}

// fresh resolves a policy by name, failing the test on error.
func fresh(t *testing.T, name string) Scheduler {
	t.Helper()
	s, err := New(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// allocate adapts the buffer contract for test readability: it runs one
// Allocate pass into a fresh zeroed buffer and returns the result keyed
// by job ID.
func allocate(s Scheduler, st State) map[int]int {
	out := make([]int, len(st.Active))
	s.Allocate(st, out)
	m := make(map[int]int, len(out))
	for i, a := range out {
		m[st.Active[i].Job.ID] = a
	}
	return m
}

// TestAllocationContractOnRandomStates: for random states, every
// registered policy's allocations are non-negative, per-job ≤ MaxNodes,
// and sum ≤ nodes.
func TestAllocationContractOnRandomStates(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		src := rng.New(seed)
		nodes := 2 + src.Intn(14)
		st := State{Nodes: nodes, Now: src.Uniform(0, 100)}
		njobs := 1 + src.Intn(9)
		for i := 0; i < njobs; i++ {
			js := JobState{Job: mkJob(i, src.Uniform(0, 50), src.Uniform(1, 60), 1+src.Intn(4), 1+src.Intn(nodes), src.Uniform(0, 0.5))}
			js.Job.Weight = src.Uniform(0.2, 4)
			js.Remaining = js.Job.Phases[0].Work
			if src.Float64() < 0.5 {
				js.Alloc = 1 + src.Intn(js.Job.MaxNodes)
			}
			st.Active = append(st.Active, js)
		}
		// Random pre-states can over-commit (as after a capacity drop with
		// preserved allocations); policies only guarantee the contract when
		// handed a feasible state, so clamp like the simulator's
		// preemption pass does.
		total := 0
		for i := range st.Active {
			total += st.Active[i].Alloc
		}
		for i := len(st.Active) - 1; i >= 0 && total > st.Nodes; i-- {
			total -= st.Active[i].Alloc
			st.Active[i].Alloc = 0
		}
		for _, name := range Names() {
			out := make([]int, len(st.Active))
			fresh(t, name).Allocate(st, out)
			got := 0
			for i, a := range out {
				js := st.Active[i]
				if a < 0 {
					t.Fatalf("%s: negative allocation %d for job %d (seed %d)", name, a, js.Job.ID, seed)
				}
				if a > js.Job.MaxNodes {
					t.Fatalf("%s: job %d got %d > MaxNodes %d (seed %d)", name, js.Job.ID, a, js.Job.MaxNodes, seed)
				}
				got += a
			}
			if got > st.Nodes {
				t.Fatalf("%s: allocated %d of %d nodes (seed %d)", name, got, st.Nodes, seed)
			}
		}
	}
}

func TestMoldablePicksEfficientAllocation(t *testing.T) {
	// A job that saturates quickly must get a small start allocation.
	st := State{Nodes: 16, Active: []JobState{
		{Job: &Job{ID: 0, Arrival: 0, Phases: []Phase{{Work: 10, Comm: 0.5}}, MaxNodes: 16}},
		{Job: &Job{ID: 1, Arrival: 1, Phases: []Phase{{Work: 10, Comm: 0}}, MaxNodes: 8}},
	}}
	alloc := allocate(&Moldable{}, st)
	// comm=0.5: eff(2)=1/1.5=0.67, eff(3)=0.5, eff(4)=0.4 → picks 3.
	if alloc[0] != 3 {
		t.Fatalf("saturating job got %d nodes, want 3", alloc[0])
	}
	// perfectly parallel job takes its full request
	if alloc[1] != 8 {
		t.Fatalf("parallel job got %d nodes, want 8", alloc[1])
	}
}

// TestEasyBackfillReservation: a long lower-priority job that fits the
// free nodes must NOT backfill when running it would delay the blocked
// queue head's reservation — the difference between EASY and the
// unrestricted backfilling of rigid-fcfs.
func TestEasyBackfillReservation(t *testing.T) {
	running := JobState{Job: mkJob(0, 0, 40, 1, 6, 0), PhaseIdx: 0, Remaining: 40, Alloc: 6}
	// Running on 6 of 10 nodes, perfectly parallel: finishes in 40/6 ≈ 6.7s.
	head := JobState{Job: mkJob(1, 1, 50, 1, 8, 0), Remaining: 50} // needs 8 > 4 free
	long := JobState{Job: mkJob(2, 2, 400, 1, 4, 0), Remaining: 400}
	short := JobState{Job: mkJob(3, 3, 4, 1, 4, 0), Remaining: 4}
	st := State{Nodes: 10, Active: []JobState{running, head, long, short}}

	alloc := allocate(&EasyBackfill{}, st)
	if alloc[1] != 0 {
		t.Fatalf("blocked head got %d nodes", alloc[1])
	}
	// long on 4 nodes runs 100s, far past the ~6.7s shadow, and its 4
	// nodes intrude on the head's reservation (extra = 10-8 = 2 < 4).
	if alloc[2] != 0 {
		t.Fatalf("reservation-violating job backfilled with %d nodes", alloc[2])
	}
	// short on 4 nodes runs 1s < shadow: backfills even though it
	// arrived after long.
	if alloc[3] != 4 {
		t.Fatalf("short candidate got %d nodes, want 4", alloc[3])
	}
	// Rigid's unrestricted backfill admits long — proving EASY's
	// reservation is what held it back.
	rigid := allocate(&Rigid{}, st)
	if rigid[2] != 4 {
		t.Fatalf("rigid admitted %d nodes for the long job, want 4", rigid[2])
	}
}

// TestEasyBackfillSamePassAdmissionHoldsReservation: a job admitted in
// the SAME Allocate pass (snapshot Alloc still 0) must count toward the
// head's reservation with its granted width — otherwise the shadow
// degenerates to +Inf and long jobs backfill unrestricted.
func TestEasyBackfillSamePassAdmissionHoldsReservation(t *testing.T) {
	// 8 nodes, all waiting: A (4 nodes, 40 work) is admitted FCFS and
	// will release its 4 nodes at ~10s; head B (8 nodes) blocks; C (2
	// nodes, 4000 work ⇒ 2000s) would sit on nodes B needs at the
	// shadow, far past it.
	a := JobState{Job: mkJob(0, 0, 40, 1, 4, 0), Remaining: 40}
	b := JobState{Job: mkJob(1, 1, 50, 1, 8, 0), Remaining: 50}
	c := JobState{Job: mkJob(2, 2, 4000, 1, 2, 0), Remaining: 4000}
	st := State{Nodes: 8, Active: []JobState{a, b, c}}
	alloc := allocate(&EasyBackfill{}, st)
	if alloc[0] != 4 {
		t.Fatalf("FCFS admission got %d nodes, want 4", alloc[0])
	}
	if alloc[1] != 0 {
		t.Fatalf("blocked head got %d nodes", alloc[1])
	}
	if alloc[2] != 0 {
		t.Fatalf("long job backfilled %d nodes across the head's reservation", alloc[2])
	}
	// A short job in C's place (finishes before the ~10s shadow) may
	// backfill. The snapshot is value-typed: update the copy in Active.
	c.Job.Phases[0].Work = 4
	st.Active[2].Remaining = 4
	if got := allocate(&EasyBackfill{}, st)[2]; got != 2 {
		t.Fatalf("short candidate got %d nodes, want 2", got)
	}
}

// TestEasyBackfillAdmitsFCFSWhenFree: with room for everyone the policy
// is plain FCFS at full width.
func TestEasyBackfillAdmitsFCFSWhenFree(t *testing.T) {
	st := State{Nodes: 12, Active: []JobState{
		{Job: mkJob(0, 0, 10, 1, 4, 0), Remaining: 10},
		{Job: mkJob(1, 1, 10, 1, 4, 0), Remaining: 10},
		{Job: mkJob(2, 2, 10, 1, 4, 0), Remaining: 10},
	}}
	alloc := allocate(&EasyBackfill{}, st)
	for id := 0; id < 3; id++ {
		if alloc[id] != 4 {
			t.Fatalf("job %d got %d nodes, want 4", id, alloc[id])
		}
	}
}

// TestSJFOrdersByRemainingWork: the short job is admitted ahead of a
// longer job that arrived earlier.
func TestSJFOrdersByRemainingWork(t *testing.T) {
	long := JobState{Job: mkJob(0, 0, 500, 1, 8, 0), Remaining: 500}
	short := JobState{Job: mkJob(1, 5, 5, 1, 8, 0), Remaining: 5}
	st := State{Nodes: 8, Active: []JobState{long, short}}
	alloc := allocate(&SJFMoldable{}, st)
	if alloc[1] == 0 {
		t.Fatal("short job not admitted")
	}
	// Whatever is left goes to the long job only if it fits its width.
	if alloc[0] != 0 && alloc[0]+alloc[1] > 8 {
		t.Fatalf("over-allocated: %v", alloc)
	}
	// Moldable admits FCFS instead: the long job first.
	fcfs := allocate(&Moldable{}, st)
	if fcfs[0] == 0 {
		t.Fatal("moldable skipped the FCFS head")
	}
}

// TestFairShareWeights: a weight-2 job gets twice the nodes of weight-1
// jobs, and surplus from capped jobs flows to the others.
func TestFairShareWeights(t *testing.T) {
	heavy := JobState{Job: mkJob(0, 0, 100, 1, 12, 0), Remaining: 100}
	heavy.Job.Weight = 2
	light1 := JobState{Job: mkJob(1, 0, 100, 1, 12, 0), Remaining: 100}
	light2 := JobState{Job: mkJob(2, 0, 100, 1, 12, 0), Remaining: 100}
	st := State{Nodes: 12, Active: []JobState{heavy, light1, light2}}
	alloc := allocate(&FairShare{}, st)
	if alloc[0] != 6 || alloc[1] != 3 || alloc[2] != 3 {
		t.Fatalf("weighted shares = %v, want 6/3/3", alloc)
	}

	// Cap the heavy job at 4: its surplus must flow to the others.
	heavy.Job.MaxNodes = 4
	alloc = allocate(&FairShare{}, st)
	if alloc[0] != 4 || alloc[0]+alloc[1]+alloc[2] != 12 {
		t.Fatalf("cap redistribution = %v", alloc)
	}

	// Unweighted jobs split evenly, like equipartition.
	heavy.Job.MaxNodes = 12
	heavy.Job.Weight = 0
	alloc = allocate(&FairShare{}, st)
	if alloc[0] != 4 || alloc[1] != 4 || alloc[2] != 4 {
		t.Fatalf("uniform shares = %v, want 4/4/4", alloc)
	}
}

// TestHysteresisThrottlesResizes: small deltas and young resizes hold
// the current allocation; admissions and capacity pressure do not wait.
func TestHysteresisThrottlesResizes(t *testing.T) {
	m := NewMalleableHysteresis(30, 2)
	a := JobState{Job: mkJob(0, 0, 100, 1, 16, 0), Remaining: 100}
	st := State{Nodes: 16, Now: 0, Active: []JobState{a}}
	alloc := allocate(m, st)
	if alloc[0] != 16 {
		t.Fatalf("admission alloc = %d, want 16", alloc[0])
	}
	a.Alloc = 16

	// A second job arrives at t=10: its admission happens immediately,
	// and the incumbent is shrunk (capacity pressure overrides the
	// epoch).
	b := JobState{Job: mkJob(1, 10, 100, 1, 16, 0), Remaining: 100}
	st = State{Nodes: 16, Now: 10, Active: []JobState{a, b}}
	alloc = allocate(m, st)
	if alloc[1] != 8 {
		t.Fatalf("new job got %d nodes, want 8", alloc[1])
	}
	if alloc[0] != 8 {
		t.Fatalf("incumbent kept %d nodes, want 8 under pressure", alloc[0])
	}
	a.Alloc, b.Alloc = alloc[0], alloc[1]

	// b departs at t=20; a's target doubles, but its last resize was at
	// t=10 < epoch 30: hold.
	st = State{Nodes: 16, Now: 20, Active: []JobState{a}}
	alloc = allocate(m, st)
	if alloc[0] != 8 {
		t.Fatalf("resize inside epoch: got %d, want held 8", alloc[0])
	}

	// Past the epoch the held job finally grows.
	st = State{Nodes: 16, Now: 41, Active: []JobState{a}}
	alloc = allocate(m, st)
	if alloc[0] != 16 {
		t.Fatalf("post-epoch resize: got %d, want 16", alloc[0])
	}
	a.Alloc = 16

	// A one-node delta is below min_delta 2: held even past the epoch.
	a.Job.MaxNodes = 15
	a.Alloc = 16 // pretend the cap changed after allocation
	st = State{Nodes: 17, Now: 100, Active: []JobState{a}}
	if got := allocate(m, st)[0]; got != 16 {
		t.Fatalf("sub-delta resize applied: %d", got)
	}
}

// TestHysteresisCapacityRepair: a capacity drop below the held total
// must shrink allocations immediately, epoch or not.
func TestHysteresisCapacityRepair(t *testing.T) {
	m := NewMalleableHysteresis(1000, 2)
	a := JobState{Job: mkJob(0, 0, 100, 1, 8, 0), Remaining: 100, Alloc: 8}
	b := JobState{Job: mkJob(1, 0, 100, 1, 8, 0), Remaining: 100, Alloc: 8}
	m.lastResize[0] = 0
	m.lastResize[1] = 0
	st := State{Nodes: 10, Now: 1, Active: []JobState{a, b}}
	alloc := allocate(m, st)
	if alloc[0]+alloc[1] > 10 {
		t.Fatalf("over-allocation after capacity drop: %v", alloc)
	}
}

func TestEstRemaining(t *testing.T) {
	js := JobState{Job: mkJob(0, 0, 60, 3, 8, 0), Remaining: 10} // phases of 20 each, 10 left in first
	// On 5 perfectly parallel nodes: (10+20+20)/5 = 10s.
	if got := js.EstRemaining(5); got != 10 {
		t.Fatalf("EstRemaining = %v, want 10", got)
	}
	if got := js.EstRemaining(0); !isInf(got) {
		t.Fatalf("EstRemaining(0) = %v, want +Inf", got)
	}
	if w := js.RemainingWork(); w != 50 {
		t.Fatalf("RemainingWork = %v, want 50", w)
	}
}

func isInf(f float64) bool { return f > 1e300 }

// TestPoliciesZeroAllocSteadyState: with warm scratch buffers, no policy
// allocates on a repeat Allocate pass over an unchanged state — the
// per-policy half of the zero-allocation contract (the simulator-side
// half is asserted in internal/cluster).
func TestPoliciesZeroAllocSteadyState(t *testing.T) {
	src := rng.New(7)
	const nodes = 24
	st := State{Nodes: nodes, Now: 50}
	for i := 0; i < 12; i++ {
		js := JobState{Job: mkJob(i, src.Uniform(0, 40), src.Uniform(10, 90), 1+src.Intn(3), 1+src.Intn(nodes), src.Uniform(0, 0.3))}
		js.Remaining = js.Job.Phases[0].Work
		st.Active = append(st.Active, js)
	}
	out := make([]int, len(st.Active))
	for _, name := range Names() {
		policy := fresh(t, name)
		// Warm-up sizes the scratch buffers; give the state a feasible
		// allocation so the steady pass resembles mid-run invocations.
		for i := range out {
			out[i] = 0
		}
		policy.Allocate(st, out)
		for i, a := range out {
			st.Active[i].Alloc = a
		}
		allocs := testing.AllocsPerRun(100, func() {
			for i := range out {
				out[i] = 0
			}
			policy.Allocate(st, out)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocations per steady-state Allocate, want 0", name, allocs)
		}
	}
}
