package sched

import (
	"math"
	"slices"
)

func init() {
	Register("easy-backfill", func(p Params) (Scheduler, error) {
		if err := p.check("easy-backfill"); err != nil {
			return nil, err
		}
		return &EasyBackfill{}, nil
	})
}

// EasyBackfill is FCFS over rigid-width requests with EASY (aggressive)
// backfilling: the queue head gets a reservation at the earliest instant
// enough nodes free up, and later jobs may jump it only if their
// estimated runtime does not delay that reservation. Runtime estimates
// come from the jobs' per-phase work profiles (EstRemaining) — exactly
// the prediction the DPS simulator supplies — so unlike user-supplied
// wall-time estimates they are never wildly pessimistic. The struct
// carries reusable queue and release scratch buffers: construct one
// instance per simulation.
type EasyBackfill struct {
	waiting []int
	rel     []release
}

// Name implements Scheduler.
func (*EasyBackfill) Name() string { return "easy-backfill" }

// Allocate implements Scheduler.
func (e *EasyBackfill) Allocate(st State, out []int) {
	free := st.Nodes
	// rel collects the estimated node hand-backs of every job holding
	// nodes in THIS allocation — the already-running at their snapshot
	// width, plus jobs admitted in this very pass at their granted width
	// (their snapshot Alloc is still 0). Reservations must see the
	// granted widths or same-pass admissions would look like zero-node
	// releases at +Inf and void the shadow.
	e.rel = e.rel[:0]
	for i := range st.Active {
		if a := st.Active[i].Alloc; a > 0 {
			out[i] = a
			free -= a
			e.rel = append(e.rel, release{at: st.Active[i].EstRemaining(a), nodes: a})
		}
	}
	e.waiting = appendWaitingFCFS(st, e.waiting)
	waiting := e.waiting
	// Admit from the front while the head fits: plain FCFS.
	for len(waiting) > 0 {
		i := waiting[0]
		want := st.Active[i].Job.MaxNodes
		if want > free {
			break
		}
		out[i] = want
		free -= want
		e.rel = append(e.rel, release{at: st.Active[i].EstRemaining(want), nodes: want})
		waiting = waiting[1:]
	}
	if len(waiting) <= 1 {
		return
	}
	// The head is blocked: reserve for it. Its shadow time is the
	// earliest instant the estimated releases of the node-holding jobs
	// free enough nodes; extra is what remains beyond the head's request
	// at that instant (nodes a backfilled job may hold across the
	// shadow).
	head := st.Active[waiting[0]]
	shadow, extra := reservation(e.rel, free, head.Job.MaxNodes)
	for _, i := range waiting[1:] {
		js := st.Active[i]
		want := js.Job.MaxNodes
		if want > free {
			continue
		}
		if est := js.EstRemaining(want); est <= shadow || want <= extra {
			out[i] = want
			free -= want
			if want <= extra {
				extra -= want
			}
		}
	}
}

// release is one node-holding job's estimated hand-back.
type release struct {
	at    float64
	nodes int
}

// reservation computes the head job's shadow time — how far from now the
// estimated releases free enough nodes for a request of want on top of
// free — and the node surplus at that instant. It sorts rel in place
// (stably, so equal release instants keep their running-then-admitted
// order). An unreachable request (capacity shrunk below the width)
// yields an infinite shadow: every fitting job may backfill.
func reservation(rel []release, free, want int) (shadow float64, extra int) {
	slices.SortStableFunc(rel, func(a, b release) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		}
		return 0
	})
	avail := free
	for _, r := range rel {
		avail += r.nodes
		if avail >= want {
			return r.at, avail - want
		}
	}
	return math.Inf(1), math.MaxInt32
}
