package sched

import (
	"math"
	"sort"
)

func init() {
	Register("easy-backfill", func(p Params) (Scheduler, error) {
		if err := p.check("easy-backfill"); err != nil {
			return nil, err
		}
		return EasyBackfill{}, nil
	})
}

// EasyBackfill is FCFS over rigid-width requests with EASY (aggressive)
// backfilling: the queue head gets a reservation at the earliest instant
// enough nodes free up, and later jobs may jump it only if their
// estimated runtime does not delay that reservation. Runtime estimates
// come from the jobs' per-phase work profiles (EstRemaining) — exactly
// the prediction the DPS simulator supplies — so unlike user-supplied
// wall-time estimates they are never wildly pessimistic.
type EasyBackfill struct{}

// Name implements Scheduler.
func (EasyBackfill) Name() string { return "easy-backfill" }

// Allocate implements Scheduler.
func (EasyBackfill) Allocate(st State) map[int]int {
	out := make(map[int]int)
	free := st.Nodes
	// grant pairs a job with the width it holds in THIS allocation —
	// js.Alloc for already-running jobs, the admitted width for jobs
	// started in this very pass (whose snapshot Alloc is still 0).
	// Reservations must see the granted widths or same-pass admissions
	// would look like zero-node releases at +Inf and void the shadow.
	type grant struct {
		js    *JobState
		width int
	}
	running := make([]grant, 0, len(st.Active))
	for _, js := range st.Active {
		if js.Alloc > 0 {
			out[js.Job.ID] = js.Alloc
			free -= js.Alloc
			running = append(running, grant{js, js.Alloc})
		}
	}
	waiting := waitingFCFS(st)
	// Admit from the front while the head fits: plain FCFS.
	for len(waiting) > 0 && waiting[0].Job.MaxNodes <= free {
		js := waiting[0]
		out[js.Job.ID] = js.Job.MaxNodes
		free -= js.Job.MaxNodes
		running = append(running, grant{js, js.Job.MaxNodes})
		waiting = waiting[1:]
	}
	if len(waiting) <= 1 {
		return out
	}
	// The head is blocked: reserve for it. Its shadow time is the
	// earliest instant the estimated releases of the running jobs free
	// enough nodes; extra is what remains beyond the head's request at
	// that instant (nodes a backfilled job may hold across the shadow).
	head := waiting[0]
	rel := make([]release, 0, len(running))
	for _, g := range running {
		rel = append(rel, release{at: g.js.EstRemaining(g.width), nodes: g.width})
	}
	shadow, extra := reservation(rel, free, head.Job.MaxNodes)
	for _, js := range waiting[1:] {
		want := js.Job.MaxNodes
		if want > free {
			continue
		}
		if est := js.EstRemaining(want); est <= shadow || want <= extra {
			out[js.Job.ID] = want
			free -= want
			if want <= extra {
				extra -= want
			}
		}
	}
	return out
}

// release is one running job's estimated node hand-back.
type release struct {
	at    float64
	nodes int
}

// reservation computes the head job's shadow time — how far from now the
// estimated releases free enough nodes for a request of want on top of
// free — and the node surplus at that instant. An unreachable request
// (capacity shrunk below the width) yields an infinite shadow: every
// fitting job may backfill.
func reservation(releases []release, free, want int) (shadow float64, extra int) {
	rel := append([]release(nil), releases...)
	sort.SliceStable(rel, func(i, j int) bool { return rel[i].at < rel[j].at })
	avail := free
	for _, r := range rel {
		avail += r.nodes
		if avail >= want {
			return r.at, avail - want
		}
	}
	return math.Inf(1), math.MaxInt32
}
