package sched

import (
	"math"
	"sort"
)

func init() {
	Register("fair-share", func(p Params) (Scheduler, error) {
		if err := p.check("fair-share"); err != nil {
			return nil, err
		}
		return FairShare{}, nil
	})
}

// FairShare is weighted equipartition: each active job is entitled to a
// share of the pool proportional to its Weight (default 1), apportioned
// by the largest-remainder method, capped at MaxNodes, with capped jobs'
// surplus redistributed to the rest. With uniform weights it behaves
// like Equipartition up to rounding order.
type FairShare struct{}

// Name implements Scheduler.
func (FairShare) Name() string { return "fair-share" }

// Allocate implements Scheduler.
func (FairShare) Allocate(st State) map[int]int {
	out := make(map[int]int)
	if len(st.Active) == 0 {
		return out
	}
	jobs := append([]*JobState(nil), st.Active...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Job.ID < jobs[j].Job.ID })
	var totalW float64
	for _, js := range jobs {
		totalW += jobWeight(js.Job)
	}
	// Largest-remainder apportionment of quota = Nodes·w/W, each share
	// capped at the job's MaxNodes.
	alloc := make([]int, len(jobs))
	frac := make([]float64, len(jobs))
	used := 0
	for i, js := range jobs {
		quota := float64(st.Nodes) * jobWeight(js.Job) / totalW
		alloc[i] = int(math.Floor(quota))
		frac[i] = quota - float64(alloc[i])
		if alloc[i] > js.Job.MaxNodes {
			alloc[i] = js.Job.MaxNodes
			frac[i] = 0
		}
		used += alloc[i]
	}
	// Hand the rounding leftover to the largest fractional remainders
	// (ties: lower ID), then cycle any cap surplus over uncapped jobs.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return frac[order[a]] > frac[order[b]] })
	for _, i := range order {
		if used >= st.Nodes {
			break
		}
		if alloc[i] < jobs[i].Job.MaxNodes && frac[i] > 0 {
			alloc[i]++
			used++
		}
	}
	for used < st.Nodes {
		grew := false
		for i, js := range jobs {
			if used >= st.Nodes {
				break
			}
			if alloc[i] < js.Job.MaxNodes {
				alloc[i]++
				used++
				grew = true
			}
		}
		if !grew {
			break // every job at its cap: the surplus idles
		}
	}
	for i, js := range jobs {
		out[js.Job.ID] = alloc[i]
	}
	return out
}

// jobWeight is the job's fair-share weight, defaulting to 1 for jobs
// that never set one (including non-positive values).
func jobWeight(j *Job) float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}
