package sched

import (
	"math"
	"slices"
)

func init() {
	Register("fair-share", func(p Params) (Scheduler, error) {
		if err := p.check("fair-share"); err != nil {
			return nil, err
		}
		return &FairShare{}, nil
	})
}

// FairShare is weighted equipartition: each active job is entitled to a
// share of the pool proportional to its Weight (default 1), apportioned
// by the largest-remainder method, capped at MaxNodes, with capped jobs'
// surplus redistributed to the rest. With uniform weights it behaves
// like Equipartition up to rounding order. The struct carries reusable
// apportionment scratch buffers: construct one instance per simulation.
type FairShare struct {
	frac  []float64
	order []int
}

// Name implements Scheduler.
func (*FairShare) Name() string { return "fair-share" }

// Allocate implements Scheduler. The out buffer doubles as the working
// allocation array; Active is ID-sorted, so index order is the ID order
// the apportionment ties break toward.
func (f *FairShare) Allocate(st State, out []int) {
	if len(st.Active) == 0 {
		return
	}
	var totalW float64
	for i := range st.Active {
		totalW += jobWeight(st.Active[i].Job)
	}
	// Largest-remainder apportionment of quota = Nodes·w/W, each share
	// capped at the job's MaxNodes.
	f.frac = grow(f.frac, len(st.Active))
	used := 0
	for i := range st.Active {
		js := &st.Active[i]
		quota := float64(st.Nodes) * jobWeight(js.Job) / totalW
		out[i] = int(math.Floor(quota))
		f.frac[i] = quota - float64(out[i])
		if out[i] > js.Job.MaxNodes {
			out[i] = js.Job.MaxNodes
			f.frac[i] = 0
		}
		used += out[i]
	}
	// Hand the rounding leftover to the largest fractional remainders
	// (ties: lower ID), then cycle any cap surplus over uncapped jobs.
	f.order = grow(f.order, len(st.Active))
	for i := range f.order {
		f.order[i] = i
	}
	slices.SortStableFunc(f.order, func(a, b int) int {
		switch {
		case f.frac[a] > f.frac[b]:
			return -1
		case f.frac[a] < f.frac[b]:
			return 1
		}
		return 0
	})
	for _, i := range f.order {
		if used >= st.Nodes {
			break
		}
		if out[i] < st.Active[i].Job.MaxNodes && f.frac[i] > 0 {
			out[i]++
			used++
		}
	}
	for used < st.Nodes {
		grew := false
		for i := range st.Active {
			if used >= st.Nodes {
				break
			}
			if out[i] < st.Active[i].Job.MaxNodes {
				out[i]++
				used++
				grew = true
			}
		}
		if !grew {
			break // every job at its cap: the surplus idles
		}
	}
}

// jobWeight is the job's fair-share weight, defaulting to 1 for jobs
// that never set one (including non-positive values).
func jobWeight(j *Job) float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}
