package sched

import "sort"

func init() {
	Register("sjf-moldable", func(p Params) (Scheduler, error) {
		minEff, err := minEfficiencyParam("sjf-moldable", p)
		if err != nil {
			return nil, err
		}
		return SJFMoldable{MinEfficiency: minEff}, nil
	})
}

// SJFMoldable admits waiting jobs shortest-serial-work-first, each at a
// moldable width chosen once at admission (the same efficiency-threshold
// width rule as Moldable) and held to completion. Trading FCFS fairness
// for mean response time: short jobs never queue behind long ones.
type SJFMoldable struct {
	// MinEfficiency is the lowest acceptable first-phase efficiency when
	// picking the start allocation (default 0.5).
	MinEfficiency float64
}

// Name implements Scheduler.
func (SJFMoldable) Name() string { return "sjf-moldable" }

// Allocate implements Scheduler.
func (m SJFMoldable) Allocate(st State) map[int]int {
	minEff := m.MinEfficiency
	if minEff <= 0 {
		minEff = 0.5
	}
	out := make(map[int]int)
	free := st.Nodes
	for _, js := range st.Active {
		if js.Alloc > 0 {
			out[js.Job.ID] = js.Alloc
			free -= js.Alloc
		}
	}
	waiting := make([]*JobState, 0, len(st.Active))
	for _, js := range st.Active {
		if js.Alloc == 0 {
			waiting = append(waiting, js)
		}
	}
	// Shortest remaining serial work first; ties FCFS, then by ID, so
	// the order is total and deterministic.
	sort.SliceStable(waiting, func(i, j int) bool {
		wi, wj := waiting[i].RemainingWork(), waiting[j].RemainingWork()
		if wi != wj {
			return wi < wj
		}
		if waiting[i].Job.Arrival != waiting[j].Job.Arrival {
			return waiting[i].Job.Arrival < waiting[j].Job.Arrival
		}
		return waiting[i].Job.ID < waiting[j].Job.ID
	})
	for _, js := range waiting {
		if want := moldWidth(js, minEff); want <= free {
			out[js.Job.ID] = want
			free -= want
		}
	}
	return out
}
