package sched

import "slices"

func init() {
	Register("sjf-moldable", func(p Params) (Scheduler, error) {
		minEff, err := minEfficiencyParam("sjf-moldable", p)
		if err != nil {
			return nil, err
		}
		return &SJFMoldable{MinEfficiency: minEff}, nil
	})
}

// SJFMoldable admits waiting jobs shortest-serial-work-first, each at a
// moldable width chosen once at admission (the same efficiency-threshold
// width rule as Moldable) and held to completion. Trading FCFS fairness
// for mean response time: short jobs never queue behind long ones. The
// struct carries a reusable admission-order scratch buffer: construct
// one instance per simulation.
type SJFMoldable struct {
	// MinEfficiency is the lowest acceptable first-phase efficiency when
	// picking the start allocation (default 0.5).
	MinEfficiency float64

	waiting []int
}

// Name implements Scheduler.
func (*SJFMoldable) Name() string { return "sjf-moldable" }

// Allocate implements Scheduler.
func (m *SJFMoldable) Allocate(st State, out []int) {
	minEff := m.MinEfficiency
	if minEff <= 0 {
		minEff = 0.5
	}
	free := st.Nodes
	m.waiting = m.waiting[:0]
	for i := range st.Active {
		if a := st.Active[i].Alloc; a > 0 {
			out[i] = a
			free -= a
		} else {
			m.waiting = append(m.waiting, i)
		}
	}
	// Shortest remaining serial work first; ties FCFS, then by ID, so
	// the order is total and deterministic.
	slices.SortFunc(m.waiting, func(a, b int) int {
		ja, jb := st.Active[a], st.Active[b]
		wa, wb := ja.RemainingWork(), jb.RemainingWork()
		switch {
		case wa < wb:
			return -1
		case wa > wb:
			return 1
		case ja.Job.Arrival < jb.Job.Arrival:
			return -1
		case ja.Job.Arrival > jb.Job.Arrival:
			return 1
		case ja.Job.ID < jb.Job.ID:
			return -1
		case ja.Job.ID > jb.Job.ID:
			return 1
		}
		return 0
	})
	for _, i := range m.waiting {
		if want := moldWidth(st.Active[i], minEff); want <= free {
			out[i] = want
			free -= want
		}
	}
}
