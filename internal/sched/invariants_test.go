package sched_test

import (
	"strings"
	"testing"

	"dpsim/internal/cluster"
	"dpsim/internal/sched"
)

// TestCheckInvariantsAllPolicies certifies every registered policy —
// present and future, since the loop is over Names() — against the
// simulator's invariants under randomized workloads and randomized
// availability timelines.
func TestCheckInvariantsAllPolicies(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			err := sched.CheckInvariants(name, sched.CheckConfig{
				Runner: cluster.InvariantRunner,
				Seed:   0xD05, // keep the suite's seed stable across runs
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// overAllocator violates invariant 1 on purpose: it hands every job its
// MaxNodes regardless of capacity.
type overAllocator struct{}

func (overAllocator) Name() string { return "test-over-allocator" }
func (overAllocator) Allocate(st sched.State, out []int) {
	for i := range st.Active {
		out[i] = st.Active[i].Job.MaxNodes
	}
}

// greedyBeyondMax violates invariant 2: one node too many for the first
// job.
type greedyBeyondMax struct{}

func (greedyBeyondMax) Name() string { return "test-beyond-max" }
func (greedyBeyondMax) Allocate(st sched.State, out []int) {
	if len(st.Active) > 0 {
		js := st.Active[0]
		if js.Job.MaxNodes < st.Nodes {
			out[0] = js.Job.MaxNodes + 1
		}
	}
}

// TestCheckInvariantsCatchesViolations: the harness must reject broken
// policies, not just bless working ones.
func TestCheckInvariantsCatchesViolations(t *testing.T) {
	cases := []struct {
		policy sched.Scheduler
		want   string
	}{
		{overAllocator{}, "usable nodes"},
		{greedyBeyondMax{}, "MaxNodes"},
	}
	for _, c := range cases {
		err := sched.CheckInvariants(c.policy.Name(), sched.CheckConfig{
			Runner:  cluster.InvariantRunner,
			Factory: func() (sched.Scheduler, error) { return c.policy, nil },
		})
		if err == nil {
			t.Fatalf("%s passed the invariant suite", c.policy.Name())
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.policy.Name(), err, c.want)
		}
	}
}

// TestCheckInvariantsNeedsRunner: the config must demand its injection
// point.
func TestCheckInvariantsNeedsRunner(t *testing.T) {
	if err := sched.CheckInvariants("equipartition", sched.CheckConfig{}); err == nil {
		t.Fatal("missing Runner accepted")
	}
}
