package sched

import "fmt"

func init() {
	Register("moldable", func(p Params) (Scheduler, error) {
		minEff, err := minEfficiencyParam("moldable", p)
		if err != nil {
			return nil, err
		}
		return &Moldable{MinEfficiency: minEff}, nil
	})
}

// minEfficiencyParam validates the shared min_efficiency parameter: an
// explicit value must be a usable threshold in (0, 1]; absence leaves
// the policy's documented default in force.
func minEfficiencyParam(policy string, p Params) (float64, error) {
	if err := p.check(policy, "min_efficiency"); err != nil {
		return 0, err
	}
	v, ok := p["min_efficiency"]
	if !ok {
		return 0, nil
	}
	if v <= 0 || v > 1 {
		return 0, fmt.Errorf("sched: %s: min_efficiency %g outside (0, 1]", policy, v)
	}
	return v, nil
}

// Moldable chooses each job's allocation once, at start, to maximize its
// own efficiency×speedup trade-off (the moldable-job model of Cirne &
// Berman, the paper's ref [5]); the allocation never changes afterwards.
// It captures what is possible *without* runtime reallocation. The
// struct carries a reusable admission-order scratch buffer: construct
// one instance per simulation.
type Moldable struct {
	// MinEfficiency is the lowest acceptable first-phase efficiency when
	// picking the start allocation (default 0.5).
	MinEfficiency float64

	waiting []int
}

// Name implements Scheduler.
func (*Moldable) Name() string { return "moldable" }

// Allocate implements Scheduler.
func (m *Moldable) Allocate(st State, out []int) {
	minEff := m.MinEfficiency
	if minEff <= 0 {
		minEff = 0.5
	}
	free := st.Nodes
	for i := range st.Active {
		if a := st.Active[i].Alloc; a > 0 {
			out[i] = a
			free -= a
		}
	}
	m.waiting = appendWaitingFCFS(st, m.waiting)
	for _, i := range m.waiting {
		if want := moldWidth(st.Active[i], minEff); want <= free {
			out[i] = want
			free -= want
		}
	}
}

// moldWidth is the largest allocation whose first-phase efficiency stays
// above the threshold, bounded by the job's request. The model branch
// sits outside the width loop so the comm formula inlines.
func moldWidth(js JobState, minEff float64) int {
	ph := js.Job.Phases[0]
	want := 1
	if m := js.Job.Model; m != nil {
		for p := 2; p <= js.Job.MaxNodes; p++ {
			if modelEfficiency(m, ph.Work, p) >= minEff {
				want = p
			}
		}
		return want
	}
	for p := 2; p <= js.Job.MaxNodes; p++ {
		if ph.Efficiency(p) >= minEff {
			want = p
		}
	}
	return want
}
