package stencil

import (
	"math"
	"testing"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
	"dpsim/internal/testbed"
)

func simNet() netmodel.Params {
	return netmodel.Params{Latency: 150 * eventq.Microsecond, Bandwidth: 12.5e6, Contention: true}
}

func simCPU() cpumodel.Params {
	p := cpumodel.Defaults()
	p.RecvOverhead = 0.08
	p.SendOverhead = 0.035
	return p
}

// TestPredictionAccuracyOnStencil repeats the paper's measured-vs-predicted
// protocol on the second application: the simulator calibrated on one
// testbed run must predict the Jacobi solver's runtime within a few
// percent, showing the methodology is not LU-specific.
func TestPredictionAccuracyOnStencil(t *testing.T) {
	cfg := Config{N: 4096, Bands: 16, Nodes: 8, Iterations: 12}

	// Measured: virtual cluster with noise.
	app1, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := testbed.New(testbed.FastEthernetCluster(cfg.Nodes, 4242))
	engM, err := core.New(core.Config{
		Graph:           app1.Graph,
		Platform:        cl,
		Durations:       cl.DurationSource(),
		NoAlloc:         true,
		PerStepOverhead: 25 * eventq.Microsecond,
		LocalLatency:    20 * eventq.Microsecond,
		RecordDurations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	app1.Start(engM)
	resM, err := engM.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Predicted: simulator with the calibrated duration table.
	app2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engP, err := core.New(core.Config{
		Graph:           app2.Graph,
		Platform:        core.NewSimPlatform(cfg.Nodes, simNet(), simCPU()),
		Durations:       core.TableSource{Table: engM.DurationTable()},
		NoAlloc:         true,
		PerStepOverhead: 25 * eventq.Microsecond,
		LocalLatency:    20 * eventq.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	app2.Start(engP)
	resP, err := engP.Run()
	if err != nil {
		t.Fatal(err)
	}

	m, p := resM.Elapsed.Seconds(), resP.Elapsed.Seconds()
	if m <= 0 || p <= 0 {
		t.Fatalf("times: %v / %v", m, p)
	}
	errRel := math.Abs(p-m) / m
	if errRel > 0.12 {
		t.Fatalf("stencil prediction error %.1f%% exceeds the paper's ±12%% band (measured %.2fs predicted %.2fs)",
			100*errRel, m, p)
	}
}
