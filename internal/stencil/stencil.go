// Package stencil implements a second DPS application beside the LU
// factorization: an iterative Jacobi heat-diffusion solver on an n×n grid
// decomposed into horizontal bands. Each iteration exchanges halo rows
// between neighboring bands — the paper's §2 example of "communication
// patterns such as neighborhood exchanges ... specified by using relative
// thread indices" — computes the 5-point stencil update, and reduces the
// global residual.
//
// Flow graph, unrolled per iteration t (all pairs validated by dps):
//
//	controller_t (split, master)
//	   └─► bandCtl_t (split, band j)          one instance per band
//	          └─► haloFetch_t (leaf, band j±1) relative-index routing
//	                 └─► bandGather_t (merge, band j): collects the halo
//	                     rows, runs the Jacobi update, posts the band
//	                     residual
//	                        └─► reduce_t (merge, master): global residual,
//	                            seeds controller_{t+1}
//
// Like the LU application, the same code runs on the simulator platforms
// (timing studies, PDEXEC/NOALLOC) and with real computations (correctness
// against a serial reference).
package stencil

import (
	"fmt"
	"math"

	"dpsim/internal/core"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/rng"
	"dpsim/internal/serial"
)

// Config sizes the solver.
type Config struct {
	// N is the grid dimension (rows = cols). Rows split evenly over Bands.
	N int
	// Bands is the number of horizontal bands (worker threads).
	Bands int
	// Nodes hosts the band threads (round-robin).
	Nodes int
	// Iterations is the number of Jacobi sweeps.
	Iterations int
	// FlopsPerSec calibrates the compute cost model (default 63e6, the
	// UltraSparc node of the LU experiments).
	FlopsPerSec float64
}

func (c *Config) fill() error {
	if c.N <= 0 || c.Bands <= 0 || c.Nodes <= 0 || c.Iterations <= 0 {
		return fmt.Errorf("stencil: N, Bands, Nodes, Iterations must be positive")
	}
	if c.Bands < 2 {
		return fmt.Errorf("stencil: need at least 2 bands for a halo exchange")
	}
	if c.N%c.Bands != 0 {
		return fmt.Errorf("stencil: bands %d must divide n %d", c.Bands, c.N)
	}
	if c.FlopsPerSec == 0 {
		c.FlopsPerSec = 63e6
	}
	return nil
}

// --- data objects ---

// IterSeed starts iteration t.
type IterSeed struct{ Iter int }

// MarshalDPS implements dps.DataObject.
func (o *IterSeed) MarshalDPS(w serial.Writer) { w.U32(uint32(o.Iter)) }

// BandIter triggers band j's halo requests for iteration t.
type BandIter struct{ Iter, Band int }

// MarshalDPS implements dps.DataObject.
func (o *BandIter) MarshalDPS(w serial.Writer) {
	w.U32(uint32(o.Iter))
	w.U32(uint32(o.Band))
}

// HaloRequest asks neighbor band From±1 for the row facing band For.
type HaloRequest struct {
	Iter int
	For  int // requesting band (halo destination)
	From int // band that owns the row
}

// MarshalDPS implements dps.DataObject.
func (o *HaloRequest) MarshalDPS(w serial.Writer) {
	w.U32(uint32(o.Iter))
	w.U32(uint32(o.For))
	w.U32(uint32(o.From))
}

// HaloRow carries one boundary row to the requesting band.
type HaloRow struct {
	Iter int
	For  int
	From int
	N    int
	Row  []float64 // nil in NOALLOC
}

// MarshalDPS implements dps.DataObject.
func (o *HaloRow) MarshalDPS(w serial.Writer) {
	w.U32(uint32(o.Iter))
	w.U32(uint32(o.For))
	w.U32(uint32(o.From))
	w.F64s(o.Row, o.N)
}

// BandResidual reports one band's squared-residual contribution.
type BandResidual struct {
	Iter int
	Band int
	Sum  float64
}

// MarshalDPS implements dps.DataObject.
func (o *BandResidual) MarshalDPS(w serial.Writer) {
	w.U32(uint32(o.Iter))
	w.U32(uint32(o.Band))
	w.F64(o.Sum)
}

// --- application ---

// App is a constructed stencil flow graph.
type App struct {
	Cfg    Config
	Graph  *dps.Graph
	Master *dps.Collection
	Bands  *dps.Collection
	Entry  *dps.Op

	rowsPerBand int
	residuals   []float64 // per-iteration global residual (real mode)
}

func bandKey(j int) string { return fmt.Sprintf("band:%d", j) }

// updateCost returns the modeled duration of one band's Jacobi sweep:
// 5 flops per interior cell.
func (a *App) updateCost() eventq.Duration {
	cells := float64(a.rowsPerBand) * float64(a.Cfg.N)
	return eventq.DurationOf(5 * cells / a.Cfg.FlopsPerSec)
}

// extractCost returns the modeled duration of copying one halo row.
func (a *App) extractCost() eventq.Duration {
	return eventq.DurationOf(2 * float64(a.Cfg.N) / a.Cfg.FlopsPerSec)
}

// SerialWork returns the single-node compute time of one iteration.
func (a *App) SerialWork() eventq.Duration {
	return eventq.Duration(a.Cfg.Bands) * a.updateCost()
}

// Build constructs the unrolled flow graph.
func Build(cfg Config) (*App, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := &App{Cfg: cfg, rowsPerBand: cfg.N / cfg.Bands, residuals: make([]float64, cfg.Iterations)}
	a.Master = dps.NewCollection("master", 1, cfg.Nodes)
	a.Bands = dps.NewCollection("bands", cfg.Bands, cfg.Nodes)
	g := dps.NewGraph(fmt.Sprintf("jacobi-%d-b%d", cfg.N, cfg.Bands))
	a.Graph = g

	controllers := make([]*dps.Op, cfg.Iterations)
	for t := cfg.Iterations - 1; t >= 0; t-- {
		t := t
		bandCtl := g.Split(fmt.Sprintf("bandCtl[%d]", t), a.Bands, a.bandCtl())
		haloFetch := g.Leaf(fmt.Sprintf("haloFetch[%d]", t), a.Bands, a.haloFetch())
		bandGather := g.Merge(fmt.Sprintf("bandGather[%d]", t), a.Bands, func(first dps.DataObject) dps.MergeState {
			return &gatherState{a: a}
		})
		reduce := g.Merge(fmt.Sprintf("reduce[%d]", t), a.Master, func(dps.DataObject) dps.MergeState {
			var next *dps.Op
			if t+1 < cfg.Iterations {
				next = controllers[t+1]
			}
			return &reduceState{a: a, iter: t, hasNext: next != nil}
		})
		controller := g.Split(fmt.Sprintf("controller[%d]", t), a.Master, func(ctx dps.Ctx, in dps.DataObject) {
			seed := in.(*IterSeed)
			ctx.Phase(fmt.Sprintf("iter:%d", seed.Iter))
			for j := 0; j < cfg.Bands; j++ {
				ctx.Post(&BandIter{Iter: seed.Iter, Band: j})
			}
		})
		controllers[t] = controller

		// controller → bandCtl, routed to the band itself.
		ctlEdge := g.Connect(controller, bandCtl, func(r dps.Routing) int {
			return r.Obj.(*BandIter).Band
		})
		// bandCtl → haloFetch: neighborhood exchange, routed by relative
		// thread index (the row owner is From = For ± 1).
		fetchEdge := g.Connect(bandCtl, haloFetch, func(r dps.Routing) int {
			return r.Obj.(*HaloRequest).From
		})
		g.Connect(haloFetch, bandGather, nil)
		g.Connect(bandGather, reduce, nil)
		if t+1 < cfg.Iterations {
			// reduce's Finish seeds the next controller on the master.
			g.Connect(reduce, controllers[t+1], func(dps.Routing) int { return 0 })
		}
		g.PairOps(controller, reduce, dps.FirstThread, ctlEdge)
		// The instance aggregates on the requesting band (the first
		// posted object is the HaloRequest itself).
		g.PairOps(bandCtl, bandGather, func(first dps.DataObject, _ int) int {
			return first.(*HaloRequest).For
		}, fetchEdge)
	}
	a.Entry = controllers[0]
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("stencil: graph construction bug: %w", err)
	}
	return a, nil
}

// bandCtl posts the band's halo requests to its neighbors.
func (a *App) bandCtl() dps.SplitFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		bi := in.(*BandIter)
		// Edge bands have one neighbor, interior bands two; the pair's
		// per-instance accounting adapts to the posted count.
		for _, from := range []int{bi.Band - 1, bi.Band + 1} {
			if from < 0 || from >= a.Cfg.Bands {
				continue
			}
			ctx.Post(&HaloRequest{Iter: bi.Iter, For: bi.Band, From: from})
		}
	}
}

// haloFetch extracts the boundary row facing the requesting band.
func (a *App) haloFetch() dps.LeafFunc {
	return func(ctx dps.Ctx, in dps.DataObject) {
		req := in.(*HaloRequest)
		var row []float64
		ctx.Compute("halo-extract", a.extractCost(), func() {
			grid := ctx.Store()[bandKey(req.From)].(*band)
			if req.From < req.For {
				row = append([]float64(nil), grid.lastRow()...)
			} else {
				row = append([]float64(nil), grid.firstRow()...)
			}
		})
		if row == nil && !ctx.NoAlloc() {
			row = make([]float64, a.Cfg.N)
		}
		ctx.Post(&HaloRow{Iter: req.Iter, For: req.For, From: req.From, N: a.Cfg.N, Row: row})
	}
}

// gatherState collects a band's halo rows and runs the Jacobi update.
type gatherState struct {
	a     *App
	iter  int
	band  int
	upper []float64
	lower []float64
	got   bool
}

func (s *gatherState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	h := in.(*HaloRow)
	s.iter, s.band, s.got = h.Iter, h.For, true
	if h.From < h.For {
		s.upper = h.Row
	} else {
		s.lower = h.Row
	}
}

func (s *gatherState) Finish(ctx dps.Ctx) {
	a := s.a
	var residual float64
	ctx.Compute("jacobi-update", a.updateCost(), func() {
		grid := ctx.Store()[bandKey(s.band)].(*band)
		residual = grid.update(s.upper, s.lower)
	})
	ctx.Post(&BandResidual{Iter: s.iter, Band: s.band, Sum: residual})
}

// reduceState sums band residuals and seeds the next iteration.
type reduceState struct {
	a       *App
	iter    int
	hasNext bool
	sum     float64
}

func (s *reduceState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	s.sum += in.(*BandResidual).Sum
}

func (s *reduceState) Finish(ctx dps.Ctx) {
	s.a.residuals[s.iter] = math.Sqrt(s.sum)
	if s.hasNext {
		ctx.Post(&IterSeed{Iter: s.iter + 1})
	}
}

// --- band state (thread-local grid rows) ---

// band holds one band's rows plus fixed boundary conditions.
type band struct {
	n, rows  int
	cur, nxt []float64
}

func (b *band) at(g []float64, i, j int) float64 { return g[i*b.n+j] }
func (b *band) firstRow() []float64              { return b.cur[:b.n] }
func (b *band) lastRow() []float64               { return b.cur[(b.rows-1)*b.n:] }

// update performs one Jacobi sweep given the neighbor halo rows (nil at
// the physical boundaries) and returns the squared residual contribution.
func (b *band) update(upper, lower []float64) float64 {
	var sum float64
	rowAbove := func(i int) []float64 {
		if i > 0 {
			return b.cur[(i-1)*b.n : i*b.n]
		}
		return upper
	}
	rowBelow := func(i int) []float64 {
		if i < b.rows-1 {
			return b.cur[(i+1)*b.n : (i+2)*b.n]
		}
		return lower
	}
	for i := 0; i < b.rows; i++ {
		above, below := rowAbove(i), rowBelow(i)
		for j := 0; j < b.n; j++ {
			old := b.at(b.cur, i, j)
			if j == 0 || j == b.n-1 || (above == nil) || (below == nil) {
				// Dirichlet boundary: value held fixed.
				b.nxt[i*b.n+j] = old
				continue
			}
			v := 0.25 * (above[j] + below[j] + b.at(b.cur, i, j-1) + b.at(b.cur, i, j+1))
			b.nxt[i*b.n+j] = v
			d := v - old
			sum += d * d
		}
	}
	b.cur, b.nxt = b.nxt, b.cur
	return sum
}

// --- driving helpers ---

// StoreAccessor yields the local store of a DPS thread.
type StoreAccessor func(coll *dps.Collection, idx int) dps.Store

// PrepareOn seeds the band stores with a deterministic initial grid
// (hot left wall, random interior) and returns a full copy for the serial
// reference.
func (a *App) PrepareOn(store StoreAccessor, seed uint64) [][]float64 {
	src := rng.New(seed)
	full := make([][]float64, a.Cfg.N)
	for i := range full {
		full[i] = make([]float64, a.Cfg.N)
		for j := range full[i] {
			switch {
			case j == 0:
				full[i][j] = 100
			case j == a.Cfg.N-1 || i == 0 || i == a.Cfg.N-1:
				full[i][j] = 0
			default:
				full[i][j] = src.Uniform(0, 1)
			}
		}
	}
	for b0 := 0; b0 < a.Cfg.Bands; b0++ {
		bd := &band{
			n:    a.Cfg.N,
			rows: a.rowsPerBand,
			cur:  make([]float64, a.rowsPerBand*a.Cfg.N),
			nxt:  make([]float64, a.rowsPerBand*a.Cfg.N),
		}
		for i := 0; i < a.rowsPerBand; i++ {
			copy(bd.cur[i*a.Cfg.N:(i+1)*a.Cfg.N], full[b0*a.rowsPerBand+i])
		}
		store(a.Bands, b0)[bandKey(b0)] = bd
	}
	out := make([][]float64, len(full))
	for i := range full {
		out[i] = append([]float64(nil), full[i]...)
	}
	return out
}

// Prepare seeds a simulation engine's stores.
func (a *App) Prepare(eng *core.Engine, seed uint64) [][]float64 {
	return a.PrepareOn(eng.Store, seed)
}

// Start injects the first iteration seed.
func (a *App) Start(eng *core.Engine) {
	eng.Inject(a.Entry, 0, &IterSeed{Iter: 0})
}

// AssembleFrom reads the grid back from the band stores.
func (a *App) AssembleFrom(store StoreAccessor) [][]float64 {
	out := make([][]float64, a.Cfg.N)
	for b0 := 0; b0 < a.Cfg.Bands; b0++ {
		bd := store(a.Bands, b0)[bandKey(b0)].(*band)
		for i := 0; i < a.rowsPerBand; i++ {
			out[b0*a.rowsPerBand+i] = append([]float64(nil), bd.cur[i*a.Cfg.N:(i+1)*a.Cfg.N]...)
		}
	}
	return out
}

// Residuals returns the per-iteration global residuals (real mode only).
func (a *App) Residuals() []float64 { return a.residuals }

// SerialReference runs the same Jacobi sweeps single-threaded on a full
// grid copy (the correctness oracle).
func SerialReference(grid [][]float64, iterations int) [][]float64 {
	n := len(grid)
	cur := make([][]float64, n)
	nxt := make([][]float64, n)
	for i := range grid {
		cur[i] = append([]float64(nil), grid[i]...)
		nxt[i] = make([]float64, n)
	}
	for t := 0; t < iterations; t++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == 0 || i == n-1 || j == 0 || j == n-1 {
					nxt[i][j] = cur[i][j]
					continue
				}
				nxt[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
			}
		}
		cur, nxt = nxt, cur
	}
	return cur
}
