package stencil

import (
	"fmt"
	"math"
	"testing"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
)

func platform(nodes int) *core.SimPlatform {
	return core.NewSimPlatform(nodes, netmodel.FastEthernet(), cpumodel.Defaults())
}

// runReal executes the solver with real computations and compares against
// the serial reference.
func runReal(t *testing.T, cfg Config, seed uint64) *App {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        platform(cfg.Nodes),
		RunComputations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	init := app.Prepare(eng, seed)
	app.Start(eng)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	got := app.AssembleFrom(eng.Store)
	want := SerialReference(init, cfg.Iterations)
	var worst float64
	for i := range want {
		for j := range want[i] {
			d := math.Abs(got[i][j] - want[i][j])
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-12 {
		t.Fatalf("distributed Jacobi differs from serial reference by %g", worst)
	}
	return app
}

func TestJacobiMatchesSerial(t *testing.T) {
	runReal(t, Config{N: 24, Bands: 4, Nodes: 2, Iterations: 5}, 1)
}

func TestJacobiTwoBands(t *testing.T) {
	runReal(t, Config{N: 16, Bands: 2, Nodes: 2, Iterations: 3}, 2)
}

func TestJacobiManyBandsFewNodes(t *testing.T) {
	runReal(t, Config{N: 32, Bands: 8, Nodes: 3, Iterations: 4}, 3)
}

func TestJacobiSingleIteration(t *testing.T) {
	runReal(t, Config{N: 12, Bands: 3, Nodes: 1, Iterations: 1}, 4)
}

func TestResidualDecreases(t *testing.T) {
	app := runReal(t, Config{N: 24, Bands: 4, Nodes: 2, Iterations: 8}, 5)
	res := app.Residuals()
	if len(res) != 8 {
		t.Fatalf("residuals = %d", len(res))
	}
	// Jacobi on a diffusion problem: the residual must shrink overall.
	if res[7] >= res[0] {
		t.Fatalf("residual did not decrease: first %g last %g", res[0], res[7])
	}
	for i, r := range res {
		if r < 0 || math.IsNaN(r) {
			t.Fatalf("residual[%d] = %v", i, r)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, Bands: 2, Nodes: 1, Iterations: 1},
		{N: 10, Bands: 3, Nodes: 1, Iterations: 1}, // bands don't divide
		{N: 10, Bands: 1, Nodes: 1, Iterations: 1}, // one band: no exchange
		{N: 10, Bands: 2, Nodes: 0, Iterations: 1},
		{N: 10, Bands: 2, Nodes: 1, Iterations: 0},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// modelTime runs in pure PDEXEC/NOALLOC mode.
func modelTime(t *testing.T, cfg Config) eventq.Time {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        platform(cfg.Nodes),
		NoAlloc:         true,
		PerStepOverhead: 25 * eventq.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed
}

func TestModelScaling(t *testing.T) {
	slow := modelTime(t, Config{N: 4096, Bands: 16, Nodes: 2, Iterations: 10})
	fast := modelTime(t, Config{N: 4096, Bands: 16, Nodes: 8, Iterations: 10})
	if fast >= slow {
		t.Fatalf("8 nodes (%v) not faster than 2 nodes (%v)", fast, slow)
	}
	speedup := float64(slow) / float64(fast)
	if speedup < 1.5 {
		t.Fatalf("speedup %.2f too small for a compute-bound stencil", speedup)
	}
}

func TestModelDeterministic(t *testing.T) {
	cfg := Config{N: 2048, Bands: 8, Nodes: 4, Iterations: 6}
	if modelTime(t, cfg) != modelTime(t, cfg) {
		t.Fatal("stencil model runs not deterministic")
	}
}

func TestPhasesPerIteration(t *testing.T) {
	app, err := Build(Config{N: 1024, Bands: 4, Nodes: 4, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{Graph: app.Graph, Platform: platform(4), NoAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	app.Start(eng)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	marks := eng.Phases()
	if len(marks) != 5 {
		t.Fatalf("phases = %d", len(marks))
	}
	for i, m := range marks {
		if m.Name != fmt.Sprintf("iter:%d", i) {
			t.Fatalf("phase %d = %q", i, m.Name)
		}
	}
}

func TestHaloTrafficScalesWithBands(t *testing.T) {
	run := func(bands int) uint64 {
		app, err := Build(Config{N: 1024, Bands: bands, Nodes: 4, Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.New(core.Config{Graph: app.Graph, Platform: platform(4), NoAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		app.Start(eng)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Posts
	}
	few := run(4)
	many := run(16)
	if many <= few {
		t.Fatalf("more bands (%d posts) should move more halo objects than fewer (%d)", many, few)
	}
}

func TestSerialWorkPositive(t *testing.T) {
	app, err := Build(Config{N: 1024, Bands: 4, Nodes: 2, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if app.SerialWork() <= 0 {
		t.Fatal("serial work not positive")
	}
}

func BenchmarkStencilModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := Build(Config{N: 2048, Bands: 8, Nodes: 4, Iterations: 8})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.New(core.Config{Graph: app.Graph, Platform: platform(4), NoAlloc: true})
		if err != nil {
			b.Fatal(err)
		}
		app.Start(eng)
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
