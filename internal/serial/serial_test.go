package serial

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	b := NewBuffer(64)
	b.U8(0xAB)
	b.U32(0xDEADBEEF)
	b.U64(0x0123456789ABCDEF)
	b.I64(-42)
	b.F64(3.14159)
	b.Bool(true)
	b.Bool(false)
	b.String("hello, DPS")
	b.Bytes([]byte{1, 2, 3})

	r := NewReader(b.BytesOut())
	if v := r.U8(); v != 0xAB {
		t.Fatalf("U8 = %x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %x", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.F64(); v != 3.14159 {
		t.Fatalf("F64 = %v", v)
	}
	if v := r.Bool(); !v {
		t.Fatal("Bool true failed")
	}
	if v := r.Bool(); v {
		t.Fatal("Bool false failed")
	}
	if v := r.String(); v != "hello, DPS" {
		t.Fatalf("String = %q", v)
	}
	bs := r.Bytes()
	if len(bs) != 3 || bs[0] != 1 || bs[2] != 3 {
		t.Fatalf("Bytes = %v", bs)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestRoundTripF64s(t *testing.T) {
	b := NewBuffer(0)
	in := []float64{1.5, -2.25, math.Pi, 0, math.Inf(1)}
	b.F64s(in, 0)
	r := NewReader(b.BytesOut())
	out := r.F64s()
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestF64sNilWithLogicalLen(t *testing.T) {
	// NOALLOC path: nil data with declared logical length encodes zeros.
	b := NewBuffer(0)
	b.F64s(nil, 4)
	r := NewReader(b.BytesOut())
	out := r.F64s()
	if len(out) != 4 {
		t.Fatalf("len = %d, want 4", len(out))
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("nil-backed F64s decoded non-zero %v", v)
		}
	}
}

// counterMatchesBuffer is the core NOALLOC invariant: for any marshal
// sequence, Counter.Size() must equal Buffer.Len().
func TestCounterMatchesBufferProperty(t *testing.T) {
	prop := func(u8 uint8, u32 uint32, u64 uint64, i64 int64, f float64, flag bool, s string, bs []byte, fs []float64, skipRaw uint8) bool {
		skip := int(skipRaw % 32)
		var c Counter
		b := NewBuffer(0)
		for _, w := range []Writer{&c, b} {
			w.U8(u8)
			w.U32(u32)
			w.U64(u64)
			w.I64(i64)
			w.F64(f)
			w.Bool(flag)
			w.String(s)
			w.Bytes(bs)
			w.F64s(fs, 0)
			w.Skip(skip)
		}
		return c.Size() == int64(b.Len())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterNilF64sMatchesBuffer(t *testing.T) {
	prop := func(nRaw uint16) bool {
		n := int(nRaw % 2048)
		var c Counter
		b := NewBuffer(0)
		c.F64s(nil, n)
		b.F64s(nil, n)
		return c.Size() == int64(b.Len()) && c.Size() == int64(8+8*n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

type testObj struct {
	id   uint64
	name string
	data []float64
	rows int
}

func (o *testObj) MarshalDPS(w Writer) {
	w.U64(o.id)
	w.String(o.name)
	w.I64(int64(o.rows))
	w.F64s(o.data, o.rows)
}

func (o *testObj) UnmarshalDPS(r *Reader) error {
	o.id = r.U64()
	o.name = r.String()
	o.rows = int(r.I64())
	o.data = r.F64s()
	return r.Err()
}

func TestMarshalerRoundTrip(t *testing.T) {
	in := &testObj{id: 99, name: "block", data: []float64{1, 2, 3}, rows: 3}
	b := NewBuffer(0)
	in.MarshalDPS(b)
	var out testObj
	if err := out.UnmarshalDPS(NewReader(b.BytesOut())); err != nil {
		t.Fatal(err)
	}
	if out.id != 99 || out.name != "block" || len(out.data) != 3 || out.data[2] != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestSizeOf(t *testing.T) {
	obj := &testObj{id: 1, name: "ab", data: []float64{1, 2}}
	want := int64(8 + (8 + 2) + 8 + (8 + 16))
	if got := SizeOf(obj); got != want {
		t.Fatalf("SizeOf = %d, want %d", got, want)
	}
}

func TestSizeOfNoAllocObject(t *testing.T) {
	// A NOALLOC object declares 1e6 floats without a backing array; its
	// wire size must reflect the logical payload.
	obj := &testObj{id: 1, name: "big", data: nil, rows: 1_000_000}
	want := int64(8 + (8 + 3) + 8 + (8 + 8*1_000_000))
	if got := SizeOf(obj); got != want {
		t.Fatalf("SizeOf = %d, want %d", got, want)
	}
}

func TestSizeOfAllocationFree(t *testing.T) {
	obj := &testObj{id: 1, name: "x", data: nil, rows: 1 << 20}
	allocs := testing.AllocsPerRun(100, func() {
		_ = SizeOf(obj)
	})
	if allocs > 0 {
		t.Fatalf("SizeOf allocated %v times per run, want 0", allocs)
	}
}

func TestShortBufferErrors(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Sticky: further reads keep failing without panicking.
	_ = r.String()
	_ = r.F64s()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatal("error not sticky")
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	b := NewBuffer(0)
	b.U64(1 << 60) // absurd length prefix
	r := NewReader(b.BytesOut())
	if s := r.String(); s != "" || r.Err() == nil {
		t.Fatalf("corrupt string prefix: %q, err %v", s, r.Err())
	}
	r2 := NewReader(b.BytesOut())
	if p := r2.Bytes(); p != nil || r2.Err() == nil {
		t.Fatal("corrupt bytes prefix accepted")
	}
	r3 := NewReader(b.BytesOut())
	if f := r3.F64s(); f != nil || r3.Err() == nil {
		t.Fatal("corrupt f64s prefix accepted")
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(8)
	b.U64(5)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("after Reset len = %d", b.Len())
	}
	b.U8(1)
	if b.Len() != 1 {
		t.Fatalf("after reuse len = %d", b.Len())
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	c.U64(1)
	c.Reset()
	if c.Size() != 0 {
		t.Fatalf("after Reset size = %d", c.Size())
	}
}

func TestSkip(t *testing.T) {
	b := NewBuffer(0)
	b.Skip(5)
	b.U8(7)
	r := NewReader(b.BytesOut())
	r.Skip(5)
	if v := r.U8(); v != 7 {
		t.Fatalf("after Skip got %d", v)
	}
	var c Counter
	c.Skip(5)
	c.Skip(-3) // negative skip must not reduce the count
	if c.Size() != 5 {
		t.Fatalf("counter skip = %d", c.Size())
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	prop := func(s string) bool {
		b := NewBuffer(0)
		b.String(s)
		r := NewReader(b.BytesOut())
		return r.String() == s && r.Err() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSizeOf(b *testing.B) {
	obj := &testObj{id: 1, name: "bench", data: nil, rows: 65536}
	for i := 0; i < b.N; i++ {
		_ = SizeOf(obj)
	}
}

func BenchmarkMarshal64K(b *testing.B) {
	data := make([]float64, 65536)
	obj := &testObj{id: 1, name: "bench", data: data, rows: len(data)}
	buf := NewBuffer(65536*8 + 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		obj.MarshalDPS(buf)
	}
	b.SetBytes(int64(buf.Len()))
}
