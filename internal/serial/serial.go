// Package serial implements the DPS data-object serialization layer.
//
// DPS data objects cross node boundaries as length-prefixed binary
// records. The same Marshal method drives three back ends:
//
//   - Buffer: a real encoder used by the TCP transport of the parallel
//     runtime (internal/parallel).
//   - Counter: the paper's "modified serializer" (§4) that only *counts*
//     bytes using the size description of the contained data structures,
//     performing no memory copies or allocations. This is what makes the
//     NOALLOC simulation mode possible: the simulated network layer only
//     needs sizes, never bytes.
//
// Layout is little-endian, fixed width for numeric types, and
// u64-length-prefixed for variable-size values. There is no reflection;
// objects describe themselves through the Marshaler interface.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Marshaler is implemented by every data object that can cross a node
// boundary. Marshal must write the object's full wire representation to w;
// the same method serves real encoding and size counting.
type Marshaler interface {
	MarshalDPS(w Writer)
}

// Unmarshaler is implemented by data objects that the real (TCP) transport
// must reconstruct on the receiving side. Purely simulated runs never call
// it.
type Unmarshaler interface {
	UnmarshalDPS(r *Reader) error
}

// Writer is the encoding surface shared by Buffer and Counter.
type Writer interface {
	U8(v uint8)
	U32(v uint32)
	U64(v uint64)
	I64(v int64)
	F64(v float64)
	Bool(v bool)
	String(s string)
	Bytes(b []byte)
	// F64s encodes a []float64. If data is nil but logicalLen > 0 the
	// encoder writes logicalLen zeros (Buffer) or just counts them
	// (Counter); this is how NOALLOC data objects declare payload size
	// without owning a backing array.
	F64s(data []float64, logicalLen int)
	// Skip accounts for n raw bytes of opaque payload (zeros on a real
	// encoder).
	Skip(n int)
}

// counterPool avoids one heap allocation per SizeOf call: the Counter
// escapes through the Writer interface, so a stack instance would be
// heap-allocated every time.
var counterPool = sync.Pool{New: func() any { return new(Counter) }}

// SizeOf returns the wire size of m in bytes without allocating or
// copying: it runs Marshal against a Counter.
func SizeOf(m Marshaler) int64 {
	c := counterPool.Get().(*Counter)
	c.Reset()
	m.MarshalDPS(c)
	n := c.Size()
	counterPool.Put(c)
	return n
}

// --- Counter ---

// Counter counts bytes. The zero value is ready to use.
type Counter struct{ n int64 }

// Size returns the number of bytes counted so far.
func (c *Counter) Size() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

func (c *Counter) U8(uint8)        { c.n++ }
func (c *Counter) U32(uint32)      { c.n += 4 }
func (c *Counter) U64(uint64)      { c.n += 8 }
func (c *Counter) I64(int64)       { c.n += 8 }
func (c *Counter) F64(float64)     { c.n += 8 }
func (c *Counter) Bool(bool)       { c.n++ }
func (c *Counter) String(s string) { c.n += 8 + int64(len(s)) }
func (c *Counter) Bytes(b []byte)  { c.n += 8 + int64(len(b)) }
func (c *Counter) F64s(data []float64, logicalLen int) {
	c.n += 8 + 8*int64(effLen(data, logicalLen))
}
func (c *Counter) Skip(n int) {
	if n > 0 {
		c.n += int64(n)
	}
}

// --- Buffer ---

// Buffer is a real encoder accumulating bytes in memory. The zero value is
// an empty buffer ready for use.
type Buffer struct{ buf []byte }

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the buffer.
func (b *Buffer) BytesOut() []byte { return b.buf }

// Len returns the number of encoded bytes.
func (b *Buffer) Len() int { return len(b.buf) }

// Reset truncates the buffer, retaining capacity.
func (b *Buffer) Reset() { b.buf = b.buf[:0] }

func (b *Buffer) U8(v uint8)   { b.buf = append(b.buf, v) }
func (b *Buffer) U32(v uint32) { b.buf = binary.LittleEndian.AppendUint32(b.buf, v) }
func (b *Buffer) U64(v uint64) { b.buf = binary.LittleEndian.AppendUint64(b.buf, v) }
func (b *Buffer) I64(v int64)  { b.U64(uint64(v)) }
func (b *Buffer) F64(v float64) {
	b.U64(math.Float64bits(v))
}
func (b *Buffer) Bool(v bool) {
	if v {
		b.U8(1)
	} else {
		b.U8(0)
	}
}
func (b *Buffer) String(s string) {
	b.U64(uint64(len(s)))
	b.buf = append(b.buf, s...)
}
func (b *Buffer) Bytes(p []byte) {
	b.U64(uint64(len(p)))
	b.buf = append(b.buf, p...)
}
func (b *Buffer) F64s(data []float64, logicalLen int) {
	n := effLen(data, logicalLen)
	b.U64(uint64(n))
	for i := 0; i < n; i++ {
		if i < len(data) {
			b.F64(data[i])
		} else {
			b.F64(0)
		}
	}
}
func (b *Buffer) Skip(n int) {
	for i := 0; i < n; i++ {
		b.buf = append(b.buf, 0)
	}
}

func effLen(data []float64, logicalLen int) int {
	if data != nil {
		return len(data)
	}
	if logicalLen > 0 {
		return logicalLen
	}
	return 0
}

// --- Reader ---

// ErrShortBuffer is returned when a decode runs past the end of input.
var ErrShortBuffer = errors.New("serial: short buffer")

// Reader decodes values written by Buffer. Decoding errors are sticky:
// after the first failure every subsequent read returns zero values and
// Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortBuffer, n, r.off, len(r.buf))
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) String() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.err = fmt.Errorf("%w: string length %d exceeds remaining %d", ErrShortBuffer, n, r.Remaining())
		return ""
	}
	return string(r.take(int(n)))
}

func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.err = fmt.Errorf("%w: bytes length %d exceeds remaining %d", ErrShortBuffer, n, r.Remaining())
		return nil
	}
	p := r.take(int(n))
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

func (r *Reader) F64s() []float64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n*8 > uint64(r.Remaining()) {
		r.err = fmt.Errorf("%w: f64 slice length %d exceeds remaining %d bytes", ErrShortBuffer, n, r.Remaining())
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Skip discards n bytes.
func (r *Reader) Skip(n int) { r.take(n) }
