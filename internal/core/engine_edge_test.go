package core

import (
	"strings"
	"testing"

	"dpsim/internal/dps"
	"dpsim/internal/eventq"
)

// Edge-case coverage for the engine beyond the main test file: empty
// instances, zero-post splits, closure/data races, duration sources,
// control-message costs, and failure injection.

func TestSplitPostingNothing(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("empty")
	finished := false
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		// Posts nothing: the pair never opens an instance.
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState {
		return &countingState{onAbsorb: func() { finished = true }}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if finished {
		t.Fatal("merge absorbed objects from an empty split")
	}
	if res.Instances != 0 {
		t.Fatalf("instances = %d, want 0 (lazy instance creation)", res.Instances)
	}
}

func TestClosureBeatsSlowData(t *testing.T) {
	// The split finishes immediately but the leaf computes for a long
	// time: the closure control message reaches the merge long before the
	// data. Completion must still require both.
	master := dps.NewCollection("m", 1, 2)
	workers := dps.NewCollection("w", 1, 2)
	workers.Place(0, 1)
	g := dps.NewGraph("race")
	var absorbed int
	var finishedAt eventq.Time
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&intObj{v: 1})
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("slow", 5*eventq.Second, nil)
		ctx.Post(in)
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState {
		return &probeState{onAbsorb: func() { absorbed++ }, onFinish: func(at eventq.Time) { finishedAt = at }}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(2)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if absorbed != 1 {
		t.Fatalf("absorbed = %d", absorbed)
	}
	if finishedAt < eventq.Time(5*eventq.Second) {
		t.Fatalf("merge finished at %v, before the slow leaf could deliver", finishedAt)
	}
}

type probeState struct {
	onAbsorb func()
	onFinish func(at eventq.Time)
}

func (s *probeState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	if s.onAbsorb != nil {
		s.onAbsorb()
	}
}
func (s *probeState) Finish(ctx dps.Ctx) {
	if s.onFinish != nil {
		s.onFinish(ctx.Now())
	}
}

func TestStreamPostsFromFinish(t *testing.T) {
	// A stream that buffers everything and posts only in Finish must
	// still open and close its output instances correctly.
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("late")
	sum := 0
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 1; i <= 3; i++ {
			ctx.Post(&intObj{v: i})
		}
	})
	stream := g.Stream("st", master, func(dps.DataObject) dps.MergeState {
		return &bufferAllState{}
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState {
		return &countingState{onAbsorb: func() { sum++ }}
	})
	g.Connect(split, stream, nil)
	e := g.Connect(stream, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, stream, nil)
	g.PairOps(stream, merge, nil, e)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Fatalf("merge absorbed %d, want 3", sum)
	}
}

type bufferAllState struct {
	buf []dps.DataObject
}

func (s *bufferAllState) Absorb(ctx dps.Ctx, in dps.DataObject) { s.buf = append(s.buf, in) }
func (s *bufferAllState) Finish(ctx dps.Ctx) {
	for _, o := range s.buf {
		ctx.Post(o)
	}
}

func TestDirectMemoNilKernelFallsBack(t *testing.T) {
	g := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("modeled", 7*eventq.Millisecond, nil) // no kernel
		ctx.Post(in)
	})
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1), Mode: dps.ModeDirectMemo})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < eventq.Time(7*eventq.Millisecond) {
		t.Fatalf("memo mode with nil kernel charged %v, want >= 7ms analytic", res.Elapsed)
	}
}

func TestTableSourceFallback(t *testing.T) {
	src := TableSource{Table: map[string]eventq.Duration{"known": eventq.Second}}
	if src.StepWork("known", eventq.Millisecond, 0) != eventq.Second {
		t.Fatal("table hit ignored")
	}
	if src.StepWork("unknown", eventq.Millisecond, 0) != eventq.Millisecond {
		t.Fatal("fallback to analytic failed")
	}
}

func TestAnalyticSourceIdentity(t *testing.T) {
	if AnalyticSource().StepWork("x", 5*eventq.Second, 9) != 5*eventq.Second {
		t.Fatal("analytic source modified the estimate")
	}
}

func TestControlBytesCost(t *testing.T) {
	// Larger control messages (closures, acks) make a windowed run with a
	// REMOTE merge slower: the sink lives on node 1 while the split posts
	// from node 0, so every ack and closure crosses the network.
	run := func(ctrlBytes int64) eventq.Time {
		master := dps.NewCollection("m", 1, 2)
		sinkColl := dps.NewCollection("sink", 1, 2)
		sinkColl.Place(0, 1)
		workers := dps.NewCollection("w", 2, 2)
		g := dps.NewGraph("ctrl")
		split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
			for i := 0; i < 20; i++ {
				ctx.Post(&intObj{v: i})
			}
		})
		leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
			ctx.Compute("w", eventq.Millisecond, nil)
			ctx.Post(in)
		})
		merge := g.Merge("mg", sinkColl, func(dps.DataObject) dps.MergeState { return &countingState{} })
		g.Connect(split, leaf, dps.RoundRobin)
		g.Connect(leaf, merge, nil)
		g.PairOps(split, merge, nil).SetWindow(2)
		eng, _ := New(Config{Graph: g, Platform: testPlatform(2), ControlBytes: ctrlBytes})
		eng.Inject(split, 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	small := run(64)
	big := run(1 << 20) // pathological 1MB acks
	if big <= small {
		t.Fatalf("1MB control messages (%v) not slower than 64B (%v)", big, small)
	}
}

func TestLocalLatencyCost(t *testing.T) {
	run := func(lat eventq.Duration) eventq.Time {
		g, _, _ := buildFanOut(1, 1, 10, 0, 0)
		eng, _ := New(Config{Graph: g, Platform: testPlatform(1), LocalLatency: lat})
		eng.Inject(g.Ops()[0], 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	fast := run(0)
	slow := run(10 * eventq.Millisecond)
	if slow <= fast {
		t.Fatalf("local latency had no effect: %v vs %v", slow, fast)
	}
}

func TestPerStepOverheadAccumulates(t *testing.T) {
	run := func(ovh eventq.Duration) eventq.Time {
		g, _, _ := buildFanOut(1, 1, 10, 0, 0)
		eng, _ := New(Config{Graph: g, Platform: testPlatform(1), PerStepOverhead: ovh})
		eng.Inject(g.Ops()[0], 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if run(eventq.Millisecond) <= run(0) {
		t.Fatal("per-step overhead had no effect")
	}
}

func TestRecordDurationsSamples(t *testing.T) {
	g := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("k", 3*eventq.Millisecond, nil)
		ctx.Post(in)
	})
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1), RecordDurations: true})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	samples := eng.DurationSamples()
	if len(samples["k"]) != 1 || samples["k"][0] != 3*eventq.Millisecond {
		t.Fatalf("samples = %v", samples)
	}
}

func TestInjectIntoMergeFails(t *testing.T) {
	g, _, _ := buildFanOut(1, 1, 1, 0, 0)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	var mergeOp *dps.Op
	for _, op := range g.Ops() {
		if op.Kind() == dps.KindMerge {
			mergeOp = op
		}
	}
	eng.Inject(mergeOp, 0, &intObj{})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "inject") {
		t.Fatalf("injection into merge accepted: %v", err)
	}
}

func TestNilPostFails(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("nil")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(nil)
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil post accepted: %v", err)
	}
}

func TestPostOnBadEdgeFails(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("edge")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.PostTo(5, &intObj{})
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "edge") {
		t.Fatalf("bad edge index accepted: %v", err)
	}
}

func TestManyConcurrentInstances(t *testing.T) {
	// Many overlapping split instances: bookkeeping must stay correct.
	master := dps.NewCollection("m", 2, 2)
	workers := dps.NewCollection("w", 4, 2)
	g := dps.NewGraph("many")
	total := 0
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 5; i++ {
			ctx.Post(&intObj{v: in.(*intObj).v})
		}
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("w", eventq.Millisecond, nil)
		ctx.Post(in)
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState {
		return &countingState{onAbsorb: func() { total++ }}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, func(first dps.DataObject, width int) int {
		return first.(*intObj).v % width
	})
	eng, _ := New(Config{Graph: g, Platform: testPlatform(2)})
	for v := 0; v < 20; v++ {
		eng.Inject(split, v%2, &intObj{v: v})
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("absorbed %d, want 100", total)
	}
	if res.Instances != 20 {
		t.Fatalf("instances = %d, want 20", res.Instances)
	}
}

func TestOpStats(t *testing.T) {
	g, _, _ := buildFanOut(2, 2, 6, 2*eventq.Millisecond, 0)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(2)})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	stats := eng.OpStats()
	double := stats["double"]
	// Each leaf invocation contributes two atomic steps: the step ending
	// at its Post and the (empty) completion step.
	if double.Steps != 12 {
		t.Fatalf("double ran %d steps, want 12 (6 invocations x 2 steps)", double.Steps)
	}
	if double.Busy < 12*eventq.Millisecond {
		t.Fatalf("double busy %v, want >= 12ms (6 x 2ms)", double.Busy)
	}
	if stats["distribute"].Steps == 0 || stats["collect"].Steps == 0 {
		t.Fatalf("missing op stats: %v", stats)
	}
}
