package core

import (
	"fmt"

	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
)

// SimPlatform is the paper's simulator platform: the star-topology fluid
// network model (§4) wired to per-node processor-sharing CPU models whose
// available power shrinks with the number of concurrent transfers.
type SimPlatform struct {
	q    *eventq.Queue
	net  *netmodel.Network
	cpus []*cpumodel.CPU
}

// portsToCPU forwards network port activity to the CPU communication
// overhead accounting.
type portsToCPU struct{ cpus []*cpumodel.CPU }

func (p portsToCPU) PortsChanged(node, in, out int) {
	if node >= 0 && node < len(p.cpus) {
		p.cpus[node].SetTransfers(in, out)
	}
}

// NewSimPlatform builds a simulator platform with the given node count and
// model parameters. The same cpumodel parameters apply to every node
// (the paper's homogeneous cluster); heterogeneous power can be modeled by
// wrapping Submit.
func NewSimPlatform(nodes int, np netmodel.Params, cp cpumodel.Params) *SimPlatform {
	if nodes <= 0 {
		panic("core: platform needs at least one node")
	}
	q := eventq.New()
	net := netmodel.New(q, np)
	cpus := make([]*cpumodel.CPU, nodes)
	for i := range cpus {
		cpus[i] = cpumodel.New(q, i, cp)
	}
	net.SetListener(portsToCPU{cpus})
	return &SimPlatform{q: q, net: net, cpus: cpus}
}

// Queue implements Platform.
func (p *SimPlatform) Queue() *eventq.Queue { return p.q }

// Nodes implements Platform.
func (p *SimPlatform) Nodes() int { return len(p.cpus) }

// Send implements Platform.
func (p *SimPlatform) Send(src, dst int, size int64, done func()) {
	p.checkNode(src)
	p.checkNode(dst)
	p.net.Send(src, dst, size, nil, func(*netmodel.Transfer) { done() })
}

// Submit implements Platform.
func (p *SimPlatform) Submit(node int, work eventq.Duration, done func()) {
	p.checkNode(node)
	p.cpus[node].Submit(work, done)
}

// Network exposes the network model (stats inspection).
func (p *SimPlatform) Network() *netmodel.Network { return p.net }

// CPU exposes a node's processor model (stats inspection).
func (p *SimPlatform) CPU(node int) *cpumodel.CPU {
	p.checkNode(node)
	return p.cpus[node]
}

func (p *SimPlatform) checkNode(n int) {
	if n < 0 || n >= len(p.cpus) {
		panic(fmt.Sprintf("core: node %d outside platform of %d nodes", n, len(p.cpus)))
	}
}
