package core

import (
	"strings"
	"testing"

	"dpsim/internal/cpumodel"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
	"dpsim/internal/serial"
)

// --- test data objects ---

type intObj struct {
	v    int
	blob int // extra payload bytes, for transfer-time tests
}

func (o *intObj) MarshalDPS(w serial.Writer) {
	w.I64(int64(o.v))
	w.Skip(o.blob)
}

// --- helpers ---

func testPlatform(nodes int) *SimPlatform {
	np := netmodel.Params{Latency: 100 * eventq.Microsecond, Bandwidth: 12.5e6, Contention: true}
	cp := cpumodel.Defaults()
	return NewSimPlatform(nodes, np, cp)
}

// buildFanOut constructs split -> leaf -> merge over `width` worker
// threads on `nodes` nodes. The split fans the input into `fan` objects;
// each leaf doubles the value; the merge sums results into the thread
// store under "sum".
func buildFanOut(nodes, width, fan int, leafWork, splitWork eventq.Duration) (*dps.Graph, *dps.Collection, *dps.Collection) {
	master := dps.NewCollection("master", 1, nodes)
	workers := dps.NewCollection("workers", width, nodes)
	g := dps.NewGraph("fanout")

	split := g.Split("distribute", master, func(ctx dps.Ctx, in dps.DataObject) {
		n := in.(*intObj).v
		for i := 0; i < fan; i++ {
			ctx.Compute("split-gen", splitWork, nil)
			ctx.Post(&intObj{v: n + i})
		}
	})
	leaf := g.Leaf("double", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("double", leafWork, nil)
		ctx.Post(&intObj{v: in.(*intObj).v * 2})
	})
	merge := g.Merge("collect", master, func(dps.DataObject) dps.MergeState {
		return &sumState{}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	return g, master, workers
}

type sumState struct{ sum int }

func (s *sumState) Absorb(ctx dps.Ctx, in dps.DataObject) { s.sum += in.(*intObj).v }
func (s *sumState) Finish(ctx dps.Ctx) {
	st := ctx.Store()
	st["sum"] = s.sum
}

func TestSplitLeafMerge(t *testing.T) {
	g, master, _ := buildFanOut(4, 4, 8, eventq.Millisecond, 100*eventq.Microsecond)
	plat := testPlatform(4)
	eng, err := New(Config{Graph: g, Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(g.Ops()[0], 0, &intObj{v: 10})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// sum of 2*(10..17) = 2*(8*10 + 28) = 216
	got := eng.Store(master, 0)["sum"]
	if got != 216 {
		t.Fatalf("merge sum = %v, want 216", got)
	}
	if res.Instances != 1 {
		t.Fatalf("instances = %d, want 1", res.Instances)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	// 1 injection + 8 split posts + 8 leaf posts.
	if res.Posts != 16 {
		t.Fatalf("posts = %d, want 16", res.Posts)
	}
	// At least one step per split post + leafs + absorbs + finish.
	if res.Steps < 25 {
		t.Fatalf("steps = %d, want >= 25", res.Steps)
	}
}

func TestParallelismSpeedsUp(t *testing.T) {
	elapsed := func(nodes, width int) eventq.Time {
		g, _, _ := buildFanOut(nodes, width, 16, 10*eventq.Millisecond, 0)
		eng, err := New(Config{Graph: g, Platform: testPlatform(nodes)})
		if err != nil {
			t.Fatal(err)
		}
		eng.Inject(g.Ops()[0], 0, &intObj{v: 1})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	serial := elapsed(1, 1)
	parallel := elapsed(4, 4)
	if parallel >= serial {
		t.Fatalf("4-node run (%v) not faster than 1-node run (%v)", parallel, serial)
	}
	speedup := float64(serial) / float64(parallel)
	if speedup < 2 {
		t.Fatalf("speedup %.2f too low for 16 independent 10ms tasks on 4 nodes", speedup)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (eventq.Time, uint64) {
		g, _, _ := buildFanOut(4, 8, 32, 3*eventq.Millisecond, 50*eventq.Microsecond)
		eng, err := New(Config{Graph: g, Platform: testPlatform(4)})
		if err != nil {
			t.Fatal(err)
		}
		eng.Inject(g.Ops()[0], 0, &intObj{v: 5})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, res.Steps
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v, %d) vs (%v, %d)", e1, s1, e2, s2)
	}
}

func TestTransfersVsLocalDeliveries(t *testing.T) {
	// Single node: every delivery is local.
	g, _, _ := buildFanOut(1, 2, 4, eventq.Millisecond, 0)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(g.Ops()[0], 0, &intObj{v: 0})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 0 {
		t.Fatalf("single-node run produced %d network transfers", res.Transfers)
	}
	if res.LocalDeliveries == 0 {
		t.Fatal("no local deliveries recorded")
	}

	// Two nodes: worker thread 1 lives on node 1 → transfers happen.
	g2, _, _ := buildFanOut(2, 2, 4, eventq.Millisecond, 0)
	eng2, _ := New(Config{Graph: g2, Platform: testPlatform(2)})
	eng2.Inject(g2.Ops()[0], 0, &intObj{v: 0})
	res2, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Transfers == 0 {
		t.Fatal("two-node run produced no transfers")
	}
}

func TestBiggerObjectsTakeLonger(t *testing.T) {
	run := func(blob int) eventq.Time {
		master := dps.NewCollection("m", 1, 2)
		workers := dps.NewCollection("w", 1, 2)
		workers.Place(0, 1) // force remote
		g := dps.NewGraph("g")
		split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
			ctx.Post(&intObj{v: 1, blob: blob})
		})
		leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
			ctx.Post(&intObj{v: 1})
		})
		merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &sumState{} })
		g.Connect(split, leaf, dps.RoundRobin)
		g.Connect(leaf, merge, nil)
		g.PairOps(split, merge, nil)
		eng, _ := New(Config{Graph: g, Platform: testPlatform(2)})
		eng.Inject(split, 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	small := run(1000)
	big := run(10_000_000)
	if big <= small {
		t.Fatalf("10MB object (%v) not slower than 1KB object (%v)", big, small)
	}
	// 10MB at 12.5MB/s ≈ 0.8s of pure transfer.
	if big < eventq.Time(700*eventq.Millisecond) {
		t.Fatalf("big transfer too fast: %v", big)
	}
}

// --- streams and pipelining ---

type relayState struct {
	barrier bool
	buf     []dps.DataObject
	work    eventq.Duration
}

func (s *relayState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	if s.barrier {
		s.buf = append(s.buf, in)
		return
	}
	ctx.Compute("relay", s.work, nil)
	ctx.Post(in)
}

func (s *relayState) Finish(ctx dps.Ctx) {
	for _, o := range s.buf {
		ctx.Compute("relay", s.work, nil)
		ctx.Post(o)
	}
}

// buildPipeline: split -> stage1 leaf -> stream(relay) -> stage2 leaf -> merge.
// With barrier=true the relay behaves like a merge-split pair (the paper's
// basic graph); with false it streams (pipelined graph).
func buildPipeline(barrier bool, fan int, stageWork eventq.Duration) (*dps.Graph, *dps.Op) {
	nodes := 4
	master := dps.NewCollection("m", 1, nodes)
	workers := dps.NewCollection("w", 4, nodes)
	g := dps.NewGraph("pipe")
	split := g.Split("src", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < fan; i++ {
			ctx.Post(&intObj{v: i})
		}
	})
	stage1 := g.Leaf("stage1", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("w1", stageWork, nil)
		ctx.Post(in)
	})
	relay := g.Stream("relay", master, func(dps.DataObject) dps.MergeState {
		return &relayState{barrier: barrier, work: 10 * eventq.Microsecond}
	})
	stage2 := g.Leaf("stage2", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("w2", stageWork, nil)
		ctx.Post(in)
	})
	sink := g.Merge("sink", master, func(dps.DataObject) dps.MergeState { return &sumState{} })

	g.Connect(split, stage1, dps.RoundRobin)
	g.Connect(stage1, relay, nil)
	e := g.Connect(relay, stage2, dps.RoundRobin)
	g.Connect(stage2, sink, nil)
	g.PairOps(split, relay, nil)
	g.PairOps(relay, sink, nil, e)
	return g, split
}

func TestStreamPipelinesFasterThanBarrier(t *testing.T) {
	run := func(barrier bool) eventq.Time {
		g, split := buildPipeline(barrier, 16, 5*eventq.Millisecond)
		eng, err := New(Config{Graph: g, Platform: testPlatform(4)})
		if err != nil {
			t.Fatal(err)
		}
		eng.Inject(split, 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	pipelined := run(false)
	barrier := run(true)
	if pipelined >= barrier {
		t.Fatalf("pipelined (%v) not faster than barrier (%v)", pipelined, barrier)
	}
}

func TestStreamResultsComplete(t *testing.T) {
	g, split := buildPipeline(false, 10, eventq.Millisecond)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(4)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	master := g.Ops()[0].Collection()
	// sum of 0..9 = 45
	if got := eng.Store(master, 0)["sum"]; got != 45 {
		t.Fatalf("stream pipeline sum = %v, want 45", got)
	}
}

// --- nested pairs ---

func TestNestedSplitMerge(t *testing.T) {
	nodes := 2
	master := dps.NewCollection("m", 1, nodes)
	workers := dps.NewCollection("w", 2, nodes)
	g := dps.NewGraph("nested")
	outer := g.Split("outer", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 3; i++ {
			ctx.Post(&intObj{v: 10 * (i + 1)})
		}
	})
	inner := g.Split("inner", workers, func(ctx dps.Ctx, in dps.DataObject) {
		v := in.(*intObj).v
		for i := 0; i < 4; i++ {
			ctx.Post(&intObj{v: v + i})
		}
	})
	leaf := g.Leaf("work", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(in)
	})
	innerMerge := g.Merge("innerMerge", workers, func(dps.DataObject) dps.MergeState {
		return &innerSum{}
	})
	outerMerge := g.Merge("outerMerge", master, func(dps.DataObject) dps.MergeState {
		return &sumState{}
	})
	g.Connect(outer, inner, dps.RoundRobin)
	g.Connect(inner, leaf, dps.RoundRobin)
	g.Connect(leaf, innerMerge, nil)
	g.Connect(innerMerge, outerMerge, nil)
	g.PairOps(outer, outerMerge, nil)
	g.PairOps(inner, innerMerge, nil)
	eng, err := New(Config{Graph: g, Platform: testPlatform(nodes)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(outer, 0, &intObj{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// inner sums: (10..13)=46, (20..23)=86, (30..33)=126 → total 258.
	if got := eng.Store(master, 0)["sum"]; got != 258 {
		t.Fatalf("nested sum = %v, want 258", got)
	}
	if res.Instances != 4 { // 1 outer + 3 inner
		t.Fatalf("instances = %d, want 4", res.Instances)
	}
}

type innerSum struct{ sum int }

func (s *innerSum) Absorb(ctx dps.Ctx, in dps.DataObject) { s.sum += in.(*intObj).v }
func (s *innerSum) Finish(ctx dps.Ctx)                    { ctx.Post(&intObj{v: s.sum}) }

// --- flow control ---

// buildWindowed creates split -> leaf -> merge where the split fans out
// `fan` objects and the pair has the given window. maxQueued observes the
// peak number of posted-but-unabsorbed objects.
func TestFlowControlLimitsInFlight(t *testing.T) {
	var posted, absorbed, peak int
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("fc")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 12; i++ {
			ctx.Post(&intObj{v: i})
			posted++
			if posted-absorbed > peak {
				peak = posted - absorbed
			}
		}
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("work", eventq.Millisecond, nil)
		ctx.Post(in)
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState {
		return &countingState{onAbsorb: func() { absorbed++ }}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	pair := g.PairOps(split, merge, nil)
	pair.SetWindow(3)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if posted != 12 || absorbed != 12 {
		t.Fatalf("posted %d absorbed %d, want 12/12", posted, absorbed)
	}
	// In-flight (posted - absorbed) can exceed the window only by the one
	// post being built; the window keeps it near 3, definitely below 6.
	if peak > 5 {
		t.Fatalf("peak in-flight %d with window 3", peak)
	}
	if res.ControlMsgs == 0 {
		t.Fatal("windowed pair produced no control messages")
	}
}

type countingState struct {
	onAbsorb func()
}

func (s *countingState) Absorb(ctx dps.Ctx, in dps.DataObject) {
	if s.onAbsorb != nil {
		s.onAbsorb()
	}
}
func (s *countingState) Finish(ctx dps.Ctx) {}

func TestWindowedRunsSlowerButCompletes(t *testing.T) {
	run := func(window int) eventq.Time {
		g, _, _ := buildFanOut(2, 2, 20, 2*eventq.Millisecond, 0)
		if window > 0 {
			g.Pairs()[0].SetWindow(window)
		}
		eng, _ := New(Config{Graph: g, Platform: testPlatform(2)})
		eng.Inject(g.Ops()[0], 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		return res.Elapsed
	}
	unbounded := run(0)
	tight := run(1)
	if tight < unbounded {
		t.Fatalf("window=1 (%v) faster than unbounded (%v)", tight, unbounded)
	}
}

// --- error paths ---

func TestLeafMustPostExactlyOne(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("bad")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&intObj{})
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) {
		// posts nothing: violates the 1:1 leaf discipline
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	_, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("zero-post leaf accepted: %v", err)
	}
}

func TestUserPanicSurfaces(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("boom")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		panic("kaboom")
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	_, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("user panic not surfaced: %v", err)
	}
}

func TestRoutingOutOfRangeFails(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	workers := dps.NewCollection("w", 4, 1)
	g := dps.NewGraph("bad-route")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&intObj{})
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, func(r dps.Routing) int { return 99 })
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(split, 0, &intObj{})
	_, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "outside active width") {
		t.Fatalf("bad routing accepted: %v", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	g, _, _ := buildFanOut(1, 1, 1, 0, 0)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("invalid")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) {})
	g.Connect(split, leaf, dps.RoundRobin) // unpaired split edge
	_, err := New(Config{Graph: g, Platform: testPlatform(1)})
	if err == nil {
		t.Fatal("invalid graph accepted by New")
	}
}

// --- modes ---

func TestModelModeRunsComputationsWhenAsked(t *testing.T) {
	executed := 0
	g := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("k", eventq.Millisecond, func() { executed++ })
		ctx.Post(in)
	})
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1), RunComputations: true})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if executed != 1 {
		t.Fatalf("kernel executed %d times, want 1", executed)
	}

	executed = 0
	g2 := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("k", eventq.Millisecond, func() { executed++ })
		ctx.Post(in)
	})
	eng2, _ := New(Config{Graph: g2, Platform: testPlatform(1), RunComputations: false})
	eng2.Inject(g2.Ops()[0], 0, &intObj{})
	if _, err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("kernel executed %d times in PDEXEC, want 0", executed)
	}
}

// microGraph: single split posting one object to a one-thread leaf + merge.
func microGraph(leafFn dps.LeafFunc) *dps.Graph {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("micro")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&intObj{v: in.(*intObj).v})
	})
	leaf := g.Leaf("l", master, leafFn)
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	return g
}

func TestDirectModeMeasuresWallTime(t *testing.T) {
	g := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("spin", 0, func() {
			// Busy work the measurement must capture.
			x := 0.0
			for i := 0; i < 2_000_000; i++ {
				x += float64(i)
			}
			_ = x
		})
		ctx.Post(in)
	})
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1), Mode: dps.ModeDirect})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < eventq.Time(10*eventq.Microsecond) {
		t.Fatalf("direct execution measured only %v for 2M additions", res.Elapsed)
	}
}

func TestDirectModeCPUScale(t *testing.T) {
	run := func(scale float64) eventq.Time {
		g := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
			ctx.Compute("spin", 0, func() {
				x := 0.0
				for i := 0; i < 3_000_000; i++ {
					x += float64(i)
				}
				_ = x
			})
			ctx.Post(in)
		})
		eng, _ := New(Config{Graph: g, Platform: testPlatform(1), Mode: dps.ModeDirect, CPUScale: scale})
		eng.Inject(g.Ops()[0], 0, &intObj{})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	fast := run(1)
	slow := run(100)
	// A 100x scale factor must dominate wall-clock noise on 3M additions.
	if float64(slow) < 5*float64(fast) {
		t.Fatalf("CPUScale=100 (%v) not clearly slower than 1 (%v)", slow, fast)
	}
}

func TestDirectMemoMeasuresFirstN(t *testing.T) {
	executions := 0
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("memo")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 10; i++ {
			ctx.Post(&intObj{v: i})
		}
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("kernel", eventq.Millisecond, func() {
			executions++
			x := 0.0
			for i := 0; i < 100_000; i++ {
				x += float64(i)
			}
			_ = x
		})
		ctx.Post(in)
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1), Mode: dps.ModeDirectMemo, MemoN: 3})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if executions != 3 {
		t.Fatalf("memo mode executed kernel %d times, want 3", executions)
	}
	table := eng.DurationTable()
	if table["kernel"] <= 0 {
		t.Fatal("memo mode recorded no duration table")
	}
}

func TestDurationTableFeedsTableSource(t *testing.T) {
	// Record durations in one run; replay them via TableSource in another.
	mk := func(durations DurationSource, record bool) *Engine {
		g, _, _ := buildFanOut(2, 2, 6, 2*eventq.Millisecond, 0)
		eng, _ := New(Config{
			Graph: g, Platform: testPlatform(2),
			Durations: durations, RecordDurations: record,
		})
		eng.Inject(g.Ops()[0], 0, &intObj{})
		return eng
	}
	rec := mk(SourceFunc(func(_ string, d eventq.Duration, _ int) eventq.Duration { return 2 * d }), true)
	if _, err := rec.Run(); err != nil {
		t.Fatal(err)
	}
	table := rec.DurationTable()
	if table["double"] != 4*eventq.Millisecond {
		t.Fatalf("recorded table = %v, want double=4ms", table)
	}
	replay := mk(TableSource{Table: table}, false)
	res, err := replay.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("replay produced no time")
	}
}

func TestNoAllocExposed(t *testing.T) {
	seen := false
	g := microGraph(func(ctx dps.Ctx, in dps.DataObject) {
		seen = ctx.NoAlloc()
		ctx.Post(in)
	})
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1), NoAlloc: true})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("NoAlloc not visible through Ctx")
	}
}

// --- malleability ---

func TestResizeRedirectsRouting(t *testing.T) {
	master := dps.NewCollection("m", 1, 4)
	workers := dps.NewCollection("w", 4, 4)
	usedThreads := make(map[int]bool)
	g := dps.NewGraph("resize")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 8; i++ {
			if i == 4 {
				workers.Resize(2) // paper: thread removal at a safe point
			}
			ctx.Post(&intObj{v: i})
		}
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
		usedThreads[ctx.Thread()] = true
		ctx.Post(in)
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(4)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Threads 2,3 may be used before the resize; after it, routing must
	// stay within the first two.
	if !usedThreads[0] || !usedThreads[1] {
		t.Fatalf("surviving threads unused: %v", usedThreads)
	}
	allocs := eng.Allocations()
	last := allocs[len(allocs)-1]
	if last.Nodes != 2 {
		t.Fatalf("final allocation %d nodes, want 2 (master on node 0 + workers 0,1)", last.Nodes)
	}
}

func TestPlacementMigration(t *testing.T) {
	master := dps.NewCollection("m", 1, 2)
	workers := dps.NewCollection("w", 2, 2)
	var nodesSeen []int
	g := dps.NewGraph("migrate")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&intObj{v: 0})
		workers.Place(1, 0) // move thread 1 from node 1 to node 0
		ctx.Post(&intObj{v: 1})
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
		nodesSeen = append(nodesSeen, ctx.Node())
		ctx.Post(in)
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &countingState{} })
	g.Connect(split, leaf, func(r dps.Routing) int { return 1 }) // always thread 1
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(2)})
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodesSeen) != 2 {
		t.Fatalf("leaf ran %d times", len(nodesSeen))
	}
	if nodesSeen[1] != 0 {
		t.Fatalf("after migration leaf ran on node %d, want 0", nodesSeen[1])
	}
}

// --- phases, traces, stores ---

func TestPhaseMarks(t *testing.T) {
	g, _, _ := buildFanOut(1, 1, 2, eventq.Millisecond, 0)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.MarkPhase("start")
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng.MarkPhase("end")
	ph := eng.Phases()
	if len(ph) != 2 || ph[0].Name != "start" || ph[1].Name != "end" {
		t.Fatalf("phases = %v", ph)
	}
	if ph[1].Time < ph[0].Time {
		t.Fatal("phase times not monotone")
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	var kinds = make(map[TraceKind]int)
	g, _, _ := buildFanOut(2, 2, 4, eventq.Millisecond, 0)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(2), Trace: func(ev TraceEvent) {
		kinds[ev.Kind]++
	}})
	eng.Inject(g.Ops()[0], 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if kinds[TraceStepStart] == 0 || kinds[TraceStepEnd] == 0 {
		t.Fatalf("missing step events: %v", kinds)
	}
	if kinds[TraceStepStart] != kinds[TraceStepEnd] {
		t.Fatalf("unbalanced step events: %v", kinds)
	}
	if kinds[TraceTransferStart] == 0 || kinds[TraceTransferStart] != kinds[TraceTransferEnd] {
		t.Fatalf("unbalanced transfer events: %v", kinds)
	}
}

func TestStoreSeeding(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("store")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&intObj{v: ctx.Store()["seed"].(int)})
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return &sumState{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	eng, _ := New(Config{Graph: g, Platform: testPlatform(1)})
	eng.Store(master, 0)["seed"] = 123
	eng.Inject(split, 0, &intObj{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Store(master, 0)["sum"]; got != 123 {
		t.Fatalf("sum = %v, want 123", got)
	}
}

func BenchmarkEngineFanOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, _ := buildFanOut(4, 8, 64, eventq.Millisecond, 10*eventq.Microsecond)
		eng, err := New(Config{Graph: g, Platform: testPlatform(4)})
		if err != nil {
			b.Fatal(err)
		}
		eng.Inject(g.Ops()[0], 0, &intObj{})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
