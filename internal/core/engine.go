package core

import (
	"errors"
	"fmt"
	"sort"

	"dpsim/internal/dps"
	"dpsim/internal/eventq"
)

// frame is one level of the instance stack carried by data objects: the
// object belongs to instance inst of the split–merge pair.
type frame struct {
	pair *dps.Pair
	inst *instance
}

// token is the immutable instance stack of a data object.
type token struct {
	frames []frame
}

func (t token) push(f frame) token {
	out := make([]frame, len(t.frames)+1)
	copy(out, t.frames)
	out[len(t.frames)] = f
	return token{frames: out}
}

func (t token) top() (frame, bool) {
	if len(t.frames) == 0 {
		return frame{}, false
	}
	return t.frames[len(t.frames)-1], true
}

func (t token) pop() token {
	return token{frames: t.frames[:len(t.frames)-1]}
}

// instance is one activation of a split–merge pair.
type instance struct {
	id     uint64
	pair   *dps.Pair
	parent token // instance stack of the context that opened it

	sinkThread int // collection-local thread of the aggregating sink
	posted     int
	absorbed   int
	closed     bool // source finished posting
	finished   bool // Finish has been scheduled
	state      dps.MergeState

	// activation of the sink (for streams): output instances opened by
	// the state's posts, closed when the input instance finishes.
	act *activation

	// source-side bookkeeping for flow control
	srcColl   *dps.Collection
	srcThread int
	inflight  int
	waiters   []*parkedPost
}

// activation groups the output pair instances opened by one source
// activation (a split invocation, or the lifetime of one stream input
// instance). Instances are kept in creation order for determinism.
type activation struct {
	parent token
	insts  map[*dps.Pair]*instance
	order  []*instance
}

func newActivation(parent token) *activation {
	return &activation{parent: parent, insts: make(map[*dps.Pair]*instance)}
}

// parkedPost is a post suspended by flow control together with the
// invocation awaiting its completion.
type parkedPost struct {
	env *envelope
	inv *invocation
}

// envelope is a routed data object in flight.
type envelope struct {
	obj   dps.DataObject
	size  int64
	token token
	edge  *dps.Edge
	dstOp *dps.Op
	dst   int // collection-local thread index
	seq   int // post sequence within the pair instance (routing input)
}

// workItem is one unit of thread work.
type workItem struct {
	kind   workKind
	env    *envelope   // for wData
	inst   *instance   // for wFinish
	parked *parkedPost // for wResume
}

type workKind int

const (
	wData workKind = iota
	wFinish
	// wResume continues an invocation that was suspended by flow control
	// after its credit arrived. The suspended operation released its
	// thread (other operations of the same thread keep running, paper
	// Fig. 6 interleaving); the continuation queues like any other work.
	wResume
)

// thread is the engine-side state of one DPS thread (mapped 1:1 onto a
// virtual execution thread).
type thread struct {
	coll  *dps.Collection
	idx   int
	queue []workItem
	busy  bool
	store dps.Store
}

type threadKey struct {
	coll *dps.Collection
	idx  int
}

// engineFailure carries a fatal engine error through panic/recover inside
// Run.
type engineFailure struct{ err error }

// DeadlockError reports a run that stalled with pending work: typically a
// flow-control window that can never be refilled or an application bug.
type DeadlockError struct {
	// Pending describes the stuck entities.
	Pending []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("core: simulation deadlocked with %d pending entities: %v", len(e.Pending), e.Pending)
}

// Engine executes a DPS application on a Platform. Create with New, seed
// input with Inject, then call Run once.
type Engine struct {
	cfg   Config
	q     *eventq.Queue
	plat  Platform
	graph *dps.Graph

	threads map[threadKey]*thread

	mode       dps.ExecMode
	nextInstID uint64

	// live invocations for shutdown and deadlock diagnostics
	live map[*invocation]bool

	// ModeModel per-key instance counters; direct-memo measurement state.
	keyCount map[string]int
	memoSum  map[string]eventq.Duration
	memoCnt  map[string]int

	// recorded duration samples (RecordDurations)
	samples map[string][]eventq.Duration
	keys    []string

	phases []PhaseMark
	allocs []AllocMark

	opSteps map[string]uint64
	opBusy  map[string]eventq.Duration

	stats   Result
	pending int // queued + running work items and parked posts
	failure error
	ran     bool
}

// OpStat aggregates the atomic steps of one operation.
type OpStat struct {
	// Steps is the number of atomic steps executed by the operation.
	Steps uint64
	// Busy is the total charged step duration (before CPU sharing).
	Busy eventq.Duration
}

// New builds an engine for the configured graph and platform.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil {
		return nil, errors.New("core: Config.Graph is required")
	}
	if cfg.Platform == nil {
		return nil, errors.New("core: Config.Platform is required")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid flow graph: %w", err)
	}
	if cfg.CPUScale <= 0 {
		cfg.CPUScale = 1
	}
	if cfg.MemoN <= 0 {
		cfg.MemoN = 3
	}
	if cfg.Durations == nil {
		cfg.Durations = AnalyticSource()
	}
	if cfg.ControlBytes <= 0 {
		cfg.ControlBytes = 64
	}
	e := &Engine{
		cfg:      cfg,
		q:        cfg.Platform.Queue(),
		plat:     cfg.Platform,
		graph:    cfg.Graph,
		threads:  make(map[threadKey]*thread),
		mode:     cfg.Mode,
		live:     make(map[*invocation]bool),
		keyCount: make(map[string]int),
		memoSum:  make(map[string]eventq.Duration),
		memoCnt:  make(map[string]int),
		samples:  make(map[string][]eventq.Duration),
		opSteps:  make(map[string]uint64),
		opBusy:   make(map[string]eventq.Duration),
	}
	// Record allocation history whenever any collection changes.
	seen := make(map[*dps.Collection]bool)
	for _, op := range cfg.Graph.Ops() {
		c := op.Collection()
		if !seen[c] {
			seen[c] = true
			c.SetOnChange(func() { e.recordAlloc() })
		}
	}
	e.recordAlloc()
	return e, nil
}

// Queue exposes the platform event queue (to co-schedule application
// events such as timed reconfigurations).
func (e *Engine) Queue() *eventq.Queue { return e.q }

// Graph returns the executed flow graph.
func (e *Engine) Graph() *dps.Graph { return e.graph }

// Phases returns the recorded phase marks.
func (e *Engine) Phases() []PhaseMark { return e.phases }

// Allocations returns the allocated-node history (one mark per change).
func (e *Engine) Allocations() []AllocMark { return e.allocs }

// recordAlloc appends the current distinct-node count over all collections.
func (e *Engine) recordAlloc() {
	nodes := make(map[int]bool)
	counted := make(map[*dps.Collection]bool)
	for _, op := range e.graph.Ops() {
		c := op.Collection()
		if counted[c] {
			continue
		}
		counted[c] = true
		for _, n := range c.Nodes() {
			nodes[n] = true
		}
	}
	e.allocs = append(e.allocs, AllocMark{Time: e.q.Now(), Nodes: len(nodes)})
}

// MarkPhase records a named phase boundary at the current virtual time.
func (e *Engine) MarkPhase(name string) {
	e.phases = append(e.phases, PhaseMark{Time: e.q.Now(), Name: name})
	e.trace(TraceEvent{Kind: TracePhase, Time: e.q.Now(), Detail: name})
}

// OpStats returns per-operation step counts and charged busy time — a
// quick profile identifying the operations worth optimizing (paper §4).
func (e *Engine) OpStats() map[string]OpStat {
	out := make(map[string]OpStat, len(e.opSteps))
	for name, steps := range e.opSteps {
		out[name] = OpStat{Steps: steps, Busy: e.opBusy[name]}
	}
	return out
}

// DurationTable returns the mean recorded duration per computation key
// (requires RecordDurations or a direct mode). This is the paper's "prior
// measurements" source for partial direct execution.
func (e *Engine) DurationTable() map[string]eventq.Duration {
	out := make(map[string]eventq.Duration, len(e.samples))
	for k, v := range e.samples {
		var sum eventq.Duration
		for _, d := range v {
			sum += d
		}
		out[k] = sum / eventq.Duration(len(v))
	}
	return out
}

// DurationSamples returns all recorded samples per key, in execution
// order.
func (e *Engine) DurationSamples() map[string][]eventq.Duration {
	return e.samples
}

func (e *Engine) recordSample(key string, d eventq.Duration) {
	if _, ok := e.samples[key]; !ok {
		e.keys = append(e.keys, key)
	}
	e.samples[key] = append(e.samples[key], d)
}

func (e *Engine) trace(ev TraceEvent) {
	if e.cfg.Trace != nil {
		e.cfg.Trace(ev)
	}
}

// threadOf returns (creating lazily) the engine thread for (coll, idx).
func (e *Engine) threadOf(coll *dps.Collection, idx int) *thread {
	k := threadKey{coll, idx}
	if th, ok := e.threads[k]; ok {
		return th
	}
	th := &thread{coll: coll, idx: idx, store: make(dps.Store)}
	e.threads[k] = th
	return th
}

// Store returns the local store of a thread (for seeding thread-local
// data, e.g. the initial matrix distribution, and for inspecting results).
func (e *Engine) Store(coll *dps.Collection, idx int) dps.Store {
	return e.threadOf(coll, idx).store
}

// Inject queues obj for delivery to thread t of op's collection before the
// run starts (or during it, from application event callbacks). Only split
// and leaf operations accept injected objects. The delivery happens
// through the event queue, inside Run's failure handling.
func (e *Engine) Inject(op *dps.Op, t int, obj dps.DataObject) {
	if op.IsSink() {
		if e.failure == nil {
			e.failure = fmt.Errorf("core: cannot inject into %s", op)
		}
		return
	}
	env := &envelope{
		obj:   obj,
		size:  dps.SizeOf(obj),
		token: token{},
		dstOp: op,
		dst:   t,
	}
	e.q.After(0, func() { e.deliver(env) })
}

// fail aborts the run with err.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	panic(engineFailure{err})
}

// Run executes events until the simulation drains, returning the run
// summary. A second call returns an error.
func (e *Engine) Run() (Result, error) {
	if e.ran {
		return Result{}, errors.New("core: engine already ran")
	}
	e.ran = true
	err := e.drive()
	e.shutdown()
	e.stats.Elapsed = e.q.Now()
	if err != nil {
		return e.stats, err
	}
	if e.pending > 0 {
		return e.stats, &DeadlockError{Pending: e.pendingDescriptions()}
	}
	return e.stats, nil
}

func (e *Engine) drive() (err error) {
	if e.failure != nil {
		return e.failure
	}
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(engineFailure); ok {
				err = f.err
				return
			}
			panic(r)
		}
	}()
	for e.q.Step() {
	}
	return nil
}

// shutdown unblocks every live invocation goroutine so none leaks.
func (e *Engine) shutdown() {
	invs := make([]*invocation, 0, len(e.live))
	for inv := range e.live {
		invs = append(invs, inv)
	}
	sort.Slice(invs, func(i, j int) bool { return invs[i].id < invs[j].id })
	for _, inv := range invs {
		inv.abort()
	}
}

func (e *Engine) pendingDescriptions() []string {
	var out []string
	for inv := range e.live {
		out = append(out, inv.describe())
	}
	for _, th := range e.threads {
		if len(th.queue) > 0 {
			out = append(out, fmt.Sprintf("%s[%d]: %d queued items", th.coll.Name(), th.idx, len(th.queue)))
		}
	}
	sort.Strings(out)
	return out
}

// enqueue adds a work item to a thread and dispatches if idle.
func (e *Engine) enqueue(th *thread, item workItem) {
	th.queue = append(th.queue, item)
	e.pending++
	e.dispatch(th)
}

func (e *Engine) dispatch(th *thread) {
	if th.busy || len(th.queue) == 0 {
		return
	}
	item := th.queue[0]
	th.queue = th.queue[1:]
	e.pending--
	th.busy = true
	e.startInvocation(th, item)
}

// threadIdle marks the invocation's thread free and runs the next item.
func (e *Engine) threadIdle(th *thread) {
	th.busy = false
	e.dispatch(th)
}

// deliver routes an envelope to its destination thread's queue. Threads
// deactivated by a resize still drain objects that were routed before the
// resize (the DPS thread manager destroys a thread only once its queue is
// empty); newly routed objects are validated against the active width at
// routing time.
func (e *Engine) deliver(env *envelope) {
	coll := env.dstOp.Collection()
	if env.dst < 0 || env.dst >= coll.MaxWidth() {
		e.fail(fmt.Errorf("core: object for %s delivered to thread %d outside placement of %d threads",
			env.dstOp, env.dst, coll.MaxWidth()))
		return
	}
	e.enqueue(e.threadOf(coll, env.dst), workItem{kind: wData, env: env})
}

// send transports an envelope: local deliveries wait LocalLatency; remote
// ones traverse the platform network.
func (e *Engine) send(srcNode int, env *envelope) {
	dstNode := env.dstOp.Collection().Node(env.dst)
	e.stats.Posts++
	if srcNode == dstNode {
		e.stats.LocalDeliveries++
		e.q.After(e.cfg.LocalLatency, func() { e.deliver(env) })
		return
	}
	e.stats.Transfers++
	e.trace(TraceEvent{Kind: TraceTransferStart, Time: e.q.Now(), Node: srcNode,
		Op: env.dstOp.Name(), Thread: env.dst, Detail: fmt.Sprintf("%dB to node %d", env.size, dstNode)})
	e.plat.Send(srcNode, dstNode, env.size, func() {
		e.trace(TraceEvent{Kind: TraceTransferEnd, Time: e.q.Now(), Node: dstNode,
			Op: env.dstOp.Name(), Thread: env.dst, Detail: fmt.Sprintf("%dB from node %d", env.size, srcNode)})
		e.deliver(env)
	})
}

// control sends a zero-payload control message (closure/ack) between
// nodes, invoking fn on arrival.
func (e *Engine) control(srcNode, dstNode int, fn func()) {
	e.stats.ControlMsgs++
	if srcNode == dstNode {
		e.q.After(e.cfg.LocalLatency, fn)
		return
	}
	e.plat.Send(srcNode, dstNode, e.cfg.ControlBytes, fn)
}
