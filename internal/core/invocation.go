package core

import (
	"fmt"
	"runtime/debug"
	"time"

	"dpsim/internal/dps"
	"dpsim/internal/eventq"
)

// invKind classifies operation invocations.
type invKind int

const (
	iSplit invKind = iota
	iLeaf
	iAbsorb
	iFinish
)

func (k invKind) String() string {
	switch k {
	case iSplit:
		return "split"
	case iLeaf:
		return "leaf"
	case iAbsorb:
		return "absorb"
	case iFinish:
		return "finish"
	default:
		return "?"
	}
}

// yieldMsg is what an invocation goroutine hands back to the engine at the
// end of every atomic step.
type yieldMsg struct {
	done     bool            // invocation finished (no further resume expected)
	work     eventq.Duration // duration of the step that just ended
	post     *envelope       // non-nil when the step ended with a post
	panicked any             // user-code panic value
	stack    []byte
}

// abortSignal unwinds invocation goroutines during shutdown.
var abortSignal = new(int)

// invocation is one operation activation: the analogue of a DPS execution
// thread running one operation (paper §3). Exactly one invocation
// goroutine runs at any moment; the engine alternates with it through the
// resume/yield channels, exactly like the simulator thread of Fig. 3.
type invocation struct {
	id   uint64
	eng  *Engine
	th   *thread
	op   *dps.Op
	kind invKind

	env  *envelope   // input (nil for finish)
	inst *instance   // sink instance for absorb/finish
	act  *activation // output activation (split invocations)

	resume  chan struct{}
	yield   chan yieldMsg
	aborted bool

	charged  eventq.Duration // Compute charges in the current step
	wallMark time.Time       // step start (direct execution measurement)
	posts    int             // posts in this invocation (leaf 1:1 check)
}

func (inv *invocation) describe() string {
	return fmt.Sprintf("%s invocation of %s on %s[%d]", inv.kind, inv.op, inv.th.coll.Name(), inv.th.idx)
}

// activationForPosts returns the activation that owns pair instances
// opened by this invocation's posts.
func (inv *invocation) activationForPosts() *activation {
	switch inv.kind {
	case iSplit:
		return inv.act
	case iAbsorb, iFinish:
		return inv.inst.act
	default:
		return nil
	}
}

// stepWork computes and resets the duration of the step ending now.
func (inv *invocation) stepWork() eventq.Duration {
	w := inv.charged
	inv.charged = 0
	if inv.eng.mode == dps.ModeDirect {
		elapsed := time.Since(inv.wallMark)
		w += eventq.Duration(float64(elapsed.Nanoseconds()) * inv.eng.cfg.CPUScale)
	} else {
		w += inv.eng.cfg.PerStepOverhead
	}
	return w
}

// waitResume blocks until the engine hands control back.
func (inv *invocation) waitResume() {
	<-inv.resume
	if inv.aborted {
		panic(abortSignal)
	}
	inv.wallMark = time.Now()
}

// handoff ends the current atomic step: it yields msg to the engine and
// blocks until resumed.
func (inv *invocation) handoff(msg yieldMsg) {
	inv.yield <- msg
	inv.waitResume()
}

// abort unblocks a parked goroutine during shutdown. The non-blocking send
// covers invocations whose goroutine already exited (e.g. a failure raised
// during their end-of-invocation bookkeeping).
func (inv *invocation) abort() {
	inv.aborted = true
	select {
	case inv.resume <- struct{}{}:
	default:
	}
}

// body is the goroutine running the operation handler.
func (inv *invocation) body() {
	defer func() {
		r := recover()
		if r == nil || r == abortSignal {
			return
		}
		if f, ok := r.(engineFailure); ok {
			// Engine-originated failure raised inside a ctx call: forward
			// the error itself.
			inv.yield <- yieldMsg{panicked: f.err}
			return
		}
		inv.yield <- yieldMsg{panicked: r, stack: debug.Stack()}
	}()
	inv.waitResume()
	ctx := &opCtx{inv: inv}
	switch inv.kind {
	case iSplit:
		inv.op.CallSplit(ctx, inv.env.obj)
	case iLeaf:
		inv.op.CallLeaf(ctx, inv.env.obj)
	case iAbsorb:
		inv.inst.state.Absorb(ctx, inv.env.obj)
	case iFinish:
		inv.inst.state.Finish(ctx)
	}
	inv.yield <- yieldMsg{done: true, work: inv.stepWork()}
}

// --- engine-side invocation driving ---

var nextInvID uint64

// startInvocation builds and launches the invocation for a work item.
func (e *Engine) startInvocation(th *thread, item workItem) {
	nextInvID++
	inv := &invocation{
		id:     nextInvID,
		eng:    e,
		th:     th,
		resume: make(chan struct{}),
		yield:  make(chan yieldMsg),
	}
	switch item.kind {
	case wResume:
		// Continue a flow-control-suspended invocation on its thread; the
		// post itself was already launched when the credit arrived.
		e.resumeInv(item.parked.inv)
		return
	case wData:
		env := item.env
		inv.env = env
		inv.op = env.dstOp
		switch env.dstOp.Kind() {
		case dps.KindSplit:
			inv.kind = iSplit
			inv.act = newActivation(env.token)
		case dps.KindLeaf:
			inv.kind = iLeaf
		case dps.KindMerge, dps.KindStream:
			fr, ok := env.token.top()
			if !ok || fr.pair.Sink() != env.dstOp {
				e.fail(fmt.Errorf("core: object delivered to %s carries no matching pair frame", env.dstOp))
			}
			inv.kind = iAbsorb
			inv.inst = fr.inst
			if inv.inst.state == nil {
				inv.inst.state = env.dstOp.NewState(env.obj)
			}
			if env.dstOp.Kind() == dps.KindStream && inv.inst.act == nil {
				inv.inst.act = newActivation(inv.inst.parent)
			}
		}
	case wFinish:
		inv.kind = iFinish
		inv.inst = item.inst
		inv.op = item.inst.pair.Sink()
		if inv.inst.state == nil {
			// The instance closed without receiving any object.
			inv.inst.state = inv.op.NewState(nil)
		}
		if inv.op.Kind() == dps.KindStream && inv.inst.act == nil {
			inv.inst.act = newActivation(inv.inst.parent)
		}
	}
	e.live[inv] = true
	go inv.body()
	e.resumeInv(inv)
}

// resumeInv hands control to the invocation goroutine and processes the
// next yielded step.
func (e *Engine) resumeInv(inv *invocation) {
	inv.resume <- struct{}{}
	msg := <-inv.yield
	e.handleYield(inv, msg)
}

// handleYield accounts an atomic step and schedules its effects.
func (e *Engine) handleYield(inv *invocation, msg yieldMsg) {
	if msg.panicked != nil {
		delete(e.live, inv)
		if err, ok := msg.panicked.(error); ok && len(msg.stack) == 0 {
			e.fail(err)
		}
		e.fail(fmt.Errorf("core: panic in %s: %v\n%s", inv.describe(), msg.panicked, msg.stack))
	}
	e.stats.Steps++
	e.opSteps[inv.op.Name()]++
	e.opBusy[inv.op.Name()] += msg.work
	node := inv.th.coll.Node(inv.th.idx)
	e.trace(TraceEvent{Kind: TraceStepStart, Time: e.q.Now(), Node: node,
		Op: inv.op.Name(), Thread: inv.th.idx, Detail: fmt.Sprintf("%v %s", msg.work, inv.kind)})
	e.plat.Submit(node, msg.work, func() {
		e.trace(TraceEvent{Kind: TraceStepEnd, Time: e.q.Now(), Node: node,
			Op: inv.op.Name(), Thread: inv.th.idx, Detail: inv.kind.String()})
		if msg.post != nil {
			if e.performPost(inv, msg.post) {
				// Parked on flow control: the operation is suspended, so
				// its thread becomes available for other queued work.
				e.threadIdle(inv.th)
				return
			}
		}
		if msg.done {
			e.finishInvocation(inv)
			return
		}
		e.resumeInv(inv)
	})
}

// performPost launches (or parks) a post whose atomic step just completed.
// It reports whether the invocation was parked by flow control.
func (e *Engine) performPost(inv *invocation, env *envelope) bool {
	if env.edge != nil && env.edge.Pair() != nil {
		fr, _ := env.token.top()
		inst := fr.inst
		if w := fr.pair.Window(); w > 0 && inst.inflight >= w {
			inst.waiters = append(inst.waiters, &parkedPost{env: env, inv: inv})
			e.pending++
			return true
		}
		inst.inflight++
	}
	e.send(inv.th.coll.Node(inv.th.idx), env)
	return false
}

// finishInvocation runs the end-of-invocation bookkeeping. The invocation
// leaves the live set first: its goroutine has already exited, so shutdown
// must not try to unblock it even if the bookkeeping below fails.
func (e *Engine) finishInvocation(inv *invocation) {
	delete(e.live, inv)
	switch inv.kind {
	case iSplit:
		e.closeActivation(inv.act, inv.th)
	case iLeaf:
		if inv.posts != 1 {
			e.fail(fmt.Errorf("core: leaf %s posted %d objects; DPS leaves must post exactly one", inv.op, inv.posts))
		}
	case iAbsorb:
		inst := inv.inst
		inst.absorbed++
		e.ackAbsorb(inst, inv.th.coll.Node(inv.th.idx))
		e.checkComplete(inst)
	case iFinish:
		if inv.op.Kind() == dps.KindStream {
			e.closeActivation(inv.inst.act, inv.th)
		}
	}
	e.threadIdle(inv.th)
}

// closeActivation emits closure control messages for every pair instance
// the activation opened: the sink learns the final posted count.
func (e *Engine) closeActivation(act *activation, srcTh *thread) {
	if act == nil {
		return
	}
	srcNode := srcTh.coll.Node(srcTh.idx)
	for _, inst := range act.order {
		inst := inst
		sinkNode := inst.pair.Sink().Collection().Node(inst.sinkThread)
		e.control(srcNode, sinkNode, func() {
			inst.closed = true
			e.checkComplete(inst)
		})
	}
}

// ackAbsorb returns a flow-control credit to the instance's source.
func (e *Engine) ackAbsorb(inst *instance, sinkNode int) {
	if inst.pair.Window() <= 0 {
		return
	}
	srcNode := inst.srcColl.Node(inst.srcThread)
	e.control(sinkNode, srcNode, func() {
		inst.inflight--
		if len(inst.waiters) > 0 && inst.inflight < inst.pair.Window() {
			p := inst.waiters[0]
			inst.waiters = inst.waiters[1:]
			e.pending--
			inst.inflight++
			// The suspended post ships as soon as the credit arrives; the
			// operation's continuation re-queues on its thread.
			e.send(p.inv.th.coll.Node(p.inv.th.idx), p.env)
			e.enqueue(p.inv.th, workItem{kind: wResume, parked: p})
		}
	})
}

// checkComplete schedules the Finish invocation once an instance is closed
// and fully absorbed.
func (e *Engine) checkComplete(inst *instance) {
	if inst.finished || !inst.closed || inst.absorbed != inst.posted {
		return
	}
	inst.finished = true
	sinkTh := e.threadOf(inst.pair.Sink().Collection(), inst.sinkThread)
	e.enqueue(sinkTh, workItem{kind: wFinish, inst: inst})
}

// newInstance opens a pair instance; first is the first posted object.
func (e *Engine) newInstance(pair *dps.Pair, parent token, first dps.DataObject, srcTh *thread) *instance {
	e.nextInstID++
	e.stats.Instances++
	width := pair.Sink().Collection().Width()
	st := pair.RouteInstance(first, width)
	if st < 0 || st >= width {
		e.fail(fmt.Errorf("core: %s routed instance to thread %d outside width %d", pair, st, width))
	}
	return &instance{
		id:         e.nextInstID,
		pair:       pair,
		parent:     parent,
		sinkThread: st,
		srcColl:    srcTh.coll,
		srcThread:  srcTh.idx,
	}
}

// buildEnvelope routes a posted object. Runs on the invocation goroutine
// while the engine is blocked, so engine state access is exclusive.
func (e *Engine) buildEnvelope(inv *invocation, edgeIdx int, obj dps.DataObject) *envelope {
	if obj == nil {
		e.fail(fmt.Errorf("core: %s posted a nil data object", inv.op))
	}
	if edgeIdx < 0 || edgeIdx >= inv.op.Outs() {
		e.fail(fmt.Errorf("core: %s posted on edge %d of %d", inv.op, edgeIdx, inv.op.Outs()))
	}
	edge := inv.op.Out(edgeIdx)
	inv.posts++
	var tok token
	var seq, dst int
	if pair := edge.Pair(); pair != nil {
		act := inv.activationForPosts()
		if act == nil {
			e.fail(fmt.Errorf("core: %s invocation cannot open pair instances", inv.kind))
		}
		inst := act.insts[pair]
		if inst == nil {
			inst = e.newInstance(pair, act.parent, obj, inv.th)
			act.insts[pair] = inst
			act.order = append(act.order, inst)
		}
		seq = inst.posted
		inst.posted++
		tok = act.parent.push(frame{pair: pair, inst: inst})
		if edge.To() == pair.Sink() {
			dst = inst.sinkThread
		} else {
			dst = e.route(inv, edge, obj, seq)
		}
	} else {
		switch inv.kind {
		case iLeaf:
			tok = inv.env.token
			seq = inv.env.seq
		case iFinish, iAbsorb:
			tok = inv.inst.parent
		default:
			tok = token{}
		}
		if edge.To().IsSink() {
			fr, ok := tok.top()
			if !ok || fr.pair.Sink() != edge.To() {
				e.fail(fmt.Errorf("core: %s posted to %s but the object's instance frame belongs elsewhere", inv.op, edge.To()))
			}
			dst = fr.inst.sinkThread
		} else {
			dst = e.route(inv, edge, obj, seq)
		}
	}
	return &envelope{
		obj:   obj,
		size:  dps.SizeOf(obj),
		token: tok,
		edge:  edge,
		dstOp: edge.To(),
		dst:   dst,
		seq:   seq,
	}
}

// route evaluates an edge's routing function and validates the result
// against the destination collection's active width.
func (e *Engine) route(inv *invocation, edge *dps.Edge, obj dps.DataObject, seq int) int {
	width := edge.To().Collection().Width()
	dst := edge.Route()(dps.Routing{Obj: obj, Width: width, SrcThread: inv.th.idx, Seq: seq})
	if dst < 0 || dst >= width {
		e.fail(fmt.Errorf("core: edge %s→%s routed object to thread %d outside active width %d (removed thread still addressed?)",
			edge.From(), edge.To(), dst, width))
	}
	return dst
}

// --- Ctx implementation ---

// opCtx implements dps.Ctx for one invocation.
type opCtx struct {
	inv *invocation
}

func (c *opCtx) Post(obj dps.DataObject) { c.PostTo(0, obj) }

func (c *opCtx) PostTo(edgeIdx int, obj dps.DataObject) {
	inv := c.inv
	env := inv.eng.buildEnvelope(inv, edgeIdx, obj)
	inv.handoff(yieldMsg{work: inv.stepWork(), post: env})
}

func (c *opCtx) Compute(key string, work eventq.Duration, f func()) {
	inv := c.inv
	e := inv.eng
	switch e.mode {
	case dps.ModeModel:
		idx := e.keyCount[key]
		e.keyCount[key]++
		d := e.cfg.Durations.StepWork(key, work, idx)
		if e.cfg.RecordDurations {
			e.recordSample(key, d)
		}
		inv.charged += d
		if e.cfg.RunComputations && f != nil {
			f()
		}
	case dps.ModeDirect:
		if f == nil {
			inv.charged += work
			return
		}
		if e.cfg.RecordDurations {
			t0 := time.Now()
			f()
			d := eventq.Duration(float64(time.Since(t0).Nanoseconds()) * e.cfg.CPUScale)
			e.recordSample(key, d)
			return // wall measurement of the step already covers f
		}
		f()
	case dps.ModeDirectMemo:
		n := e.keyCount[key]
		e.keyCount[key]++
		if n < e.cfg.MemoN && f != nil {
			t0 := time.Now()
			f()
			d := eventq.Duration(float64(time.Since(t0).Nanoseconds()) * e.cfg.CPUScale)
			e.memoSum[key] += d
			e.memoCnt[key]++
			e.recordSample(key, d)
			inv.charged += d
		} else if cnt := e.memoCnt[key]; cnt > 0 {
			inv.charged += e.memoSum[key] / eventq.Duration(cnt)
		} else {
			inv.charged += work
		}
	}
}

func (c *opCtx) Phase(name string)     { c.inv.eng.MarkPhase(name) }
func (c *opCtx) Thread() int           { return c.inv.th.idx }
func (c *opCtx) Width() int            { return c.inv.op.Collection().Width() }
func (c *opCtx) Node() int             { return c.inv.th.coll.Node(c.inv.th.idx) }
func (c *opCtx) Now() eventq.Time      { return c.inv.eng.q.Now() }
func (c *opCtx) Mode() dps.ExecMode    { return c.inv.eng.mode }
func (c *opCtx) NoAlloc() bool         { return c.inv.eng.cfg.NoAlloc }
func (c *opCtx) Store() dps.Store      { return c.inv.th.store }
func (c *opCtx) RunComputations() bool { return c.inv.eng.cfg.RunComputations }
