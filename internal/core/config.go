// Package core is the DPS simulation engine (paper §3–4): it directly
// executes a DPS application — operation handlers, routing functions, flow
// control, dynamic thread allocation — while reconstructing the parallel
// execution on virtual time.
//
// # Execution model
//
// Every operation invocation runs in its own goroutine (the analogue of a
// DPS execution thread); the engine (the simulator thread) resumes exactly
// one of them at a time and regains control whenever an atomic step ends:
// at every Post, at a flow-control suspension, and at invocation end
// (paper Fig. 3/4). The duration of each atomic step is either measured by
// direct execution (scaled wall-clock time), taken from a calibration
// table, or charged from an analytic model — the partial direct execution
// spectrum of §4. Step completions are scheduled on the per-node CPU model
// and posted objects travel through the platform's network model, so the
// reconstructed timeline reflects CPU sharing, communication overhead and
// network contention.
package core

import (
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
)

// Platform supplies the virtual hardware: an event queue (virtual clock),
// a network connecting the nodes, and per-node processors. The paper's
// simulator model (internal/core.SimPlatform) and the high-fidelity
// virtual cluster (internal/testbed) both implement it.
type Platform interface {
	// Queue returns the event queue driving the platform.
	Queue() *eventq.Queue
	// Send moves size bytes from node src to node dst and runs done when
	// the last byte arrives.
	Send(src, dst int, size int64, done func())
	// Submit schedules work (duration at reference power) on node's
	// processor and runs done when it completes.
	Submit(node int, work eventq.Duration, done func())
	// Nodes returns the number of compute nodes.
	Nodes() int
}

// DurationSource supplies modeled atomic-step durations in ModeModel.
// StepWork returns the duration of the idx-th executed instance of the
// computation identified by key, given the analytic estimate supplied by
// the application.
type DurationSource interface {
	StepWork(key string, analytic eventq.Duration, idx int) eventq.Duration
}

// SourceFunc adapts a function to the DurationSource interface.
type SourceFunc func(key string, analytic eventq.Duration, idx int) eventq.Duration

// StepWork implements DurationSource.
func (f SourceFunc) StepWork(key string, analytic eventq.Duration, idx int) eventq.Duration {
	return f(key, analytic, idx)
}

// AnalyticSource returns the application's analytic estimate unchanged:
// the pure parametric model of §4.
func AnalyticSource() DurationSource {
	return SourceFunc(func(_ string, analytic eventq.Duration, _ int) eventq.Duration {
		return analytic
	})
}

// TableSource serves averaged prior measurements (the PDEXEC duration
// table): keys present in the table use the measured mean; others fall
// back to the analytic estimate.
type TableSource struct {
	Table map[string]eventq.Duration
}

// StepWork implements DurationSource.
func (t TableSource) StepWork(key string, analytic eventq.Duration, _ int) eventq.Duration {
	if d, ok := t.Table[key]; ok {
		return d
	}
	return analytic
}

// Config assembles an engine.
type Config struct {
	// Graph is the application flow graph (validated by New).
	Graph *dps.Graph
	// Platform is the virtual hardware.
	Platform Platform
	// Mode selects direct execution, direct-with-memoization or modeled
	// durations. Default ModeModel.
	Mode dps.ExecMode
	// RunComputations makes ModeModel execute kernel closures (for small
	// correctness runs). Ignored in the direct modes, which always run
	// kernels while measuring.
	RunComputations bool
	// NoAlloc tells the application (via Ctx.NoAlloc) to skip payload
	// allocation; sizes then come from the counting serializer.
	NoAlloc bool
	// CPUScale converts measured host seconds into target virtual seconds
	// in the direct modes (host_speed / target_speed). Default 1.
	CPUScale float64
	// MemoN is the number of instances measured per key before
	// ModeDirectMemo switches to the averaged measurement. Default 3.
	MemoN int
	// Durations supplies modeled step durations in ModeModel.
	// Default AnalyticSource().
	Durations DurationSource
	// PerStepOverhead is added to every modeled atomic step: the cost of
	// executing the DPS runtime code itself. Zero is allowed.
	PerStepOverhead eventq.Duration
	// LocalLatency is the delivery delay between threads on the same
	// node (queue handling, no network).
	LocalLatency eventq.Duration
	// ControlBytes is the wire size of closure and acknowledgement
	// control messages. Default 64.
	ControlBytes int64
	// RecordDurations collects per-key duration samples during the run;
	// DurationTable() then yields a PDEXEC calibration table.
	RecordDurations bool
	// Trace receives timeline events (nil disables tracing).
	Trace TraceFn
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceStepStart TraceKind = iota
	TraceStepEnd
	TraceTransferStart
	TraceTransferEnd
	TracePhase
)

func (k TraceKind) String() string {
	switch k {
	case TraceStepStart:
		return "step-start"
	case TraceStepEnd:
		return "step-end"
	case TraceTransferStart:
		return "xfer-start"
	case TraceTransferEnd:
		return "xfer-end"
	case TracePhase:
		return "phase"
	default:
		return "?"
	}
}

// TraceEvent is one timeline record (atomic steps and transfers), enough
// to redraw the paper's Fig. 2/4 timing diagrams.
type TraceEvent struct {
	Kind   TraceKind
	Time   eventq.Time
	Node   int
	Op     string
	Thread int
	Detail string
}

// TraceFn consumes trace events as they happen.
type TraceFn func(ev TraceEvent)

// PhaseMark labels an instant of the run (the application marks iteration
// boundaries with these; the metrics package slices efficiency per phase).
type PhaseMark struct {
	Time eventq.Time
	Name string
}

// AllocMark records a change of the allocated-node count.
type AllocMark struct {
	Time  eventq.Time
	Nodes int
}

// Result summarizes a completed run.
type Result struct {
	// Elapsed is the predicted running time of the application.
	Elapsed eventq.Time
	// Steps is the number of atomic steps executed.
	Steps uint64
	// Posts is the number of data objects posted.
	Posts uint64
	// Transfers is the number of inter-node data transfers.
	Transfers uint64
	// LocalDeliveries counts same-node object deliveries.
	LocalDeliveries uint64
	// ControlMsgs counts closure and acknowledgement messages.
	ControlMsgs uint64
	// Instances is the number of pair instances opened.
	Instances uint64
}
