// Package transport provides the message transports of the real
// (non-simulated) DPS runtime: an in-process channel transport and a TCP
// transport with length-prefixed frames — the communication layer that the
// paper's simulator replaces with its simulated network (§3).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"

	"dpsim/internal/serial"
)

// Message is one framed payload addressed to a node.
type Message struct {
	// From is the sending node.
	From int
	// Kind discriminates runtime message types (data, closure, ack).
	Kind uint8
	// Body is the serialized payload.
	Body []byte
}

// Transport moves messages between numbered nodes.
type Transport interface {
	// Send delivers msg to node dst. It may block briefly (TCP
	// backpressure) but never loses messages.
	Send(dst int, msg Message) error
	// Close releases resources. Pending deliveries may be dropped.
	Close() error
}

// Handler consumes delivered messages on the receiving node.
type Handler func(msg Message)

// --- in-process transport ---

// Local is a channel-based transport for single-process deployments.
// Every node gets a buffered queue drained by one delivery goroutine.
type Local struct {
	handlers []Handler
	queues   []chan Message
	wg       sync.WaitGroup
	closed   chan struct{}
	once     sync.Once
}

// NewLocal creates an in-process transport for n nodes; handler[i]
// receives node i's messages.
func NewLocal(handlers []Handler) *Local {
	l := &Local{handlers: handlers, closed: make(chan struct{})}
	l.queues = make([]chan Message, len(handlers))
	for i := range l.queues {
		i := i
		l.queues[i] = make(chan Message, 1024)
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			for {
				select {
				case m := <-l.queues[i]:
					l.handlers[i](m)
				case <-l.closed:
					return
				}
			}
		}()
	}
	return l
}

// Send implements Transport.
func (l *Local) Send(dst int, msg Message) error {
	if dst < 0 || dst >= len(l.queues) {
		return fmt.Errorf("transport: node %d outside %d", dst, len(l.queues))
	}
	select {
	case l.queues[dst] <- msg:
		return nil
	case <-l.closed:
		return errors.New("transport: closed")
	}
}

// Close implements Transport.
func (l *Local) Close() error {
	l.once.Do(func() { close(l.closed) })
	l.wg.Wait()
	return nil
}

// --- TCP transport ---

// TCP connects n in-process nodes through real loopback sockets with
// 4-byte length-prefixed frames: the wire path of a distributed DPS
// deployment, exercised end to end.
type TCP struct {
	nodes    int
	handlers []Handler
	lns      []net.Listener
	conns    [][]net.Conn // conns[src][dst]
	mu       []sync.Mutex // per-src-dst write lock, flattened
	wg       sync.WaitGroup
	closed   chan struct{}
	once     sync.Once
}

// NewTCP builds a full mesh between n nodes on loopback.
func NewTCP(handlers []Handler) (*TCP, error) {
	n := len(handlers)
	t := &TCP{nodes: n, handlers: handlers, closed: make(chan struct{})}
	t.lns = make([]net.Listener, n)
	t.conns = make([][]net.Conn, n)
	t.mu = make([]sync.Mutex, n*n)
	for i := range t.conns {
		t.conns[i] = make([]net.Conn, n)
	}
	// One listener per node.
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		t.lns[i] = ln
	}
	// Accept loops: each incoming connection announces its source node.
	var acceptWG sync.WaitGroup
	acceptErr := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		expect := n - 1
		if expect == 0 {
			continue
		}
		acceptWG.Add(1)
		go func() {
			defer acceptWG.Done()
			for k := 0; k < expect; k++ {
				conn, err := t.lns[i].Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					acceptErr <- err
					return
				}
				src := int(binary.LittleEndian.Uint32(hdr[:]))
				t.wg.Add(1)
				go t.readLoop(i, src, conn)
			}
		}()
	}
	// Dial the mesh.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			conn, err := net.Dial("tcp", t.lns[dst].Addr().String())
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport: dial %d→%d: %w", src, dst, err)
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(src))
			if _, err := conn.Write(hdr[:]); err != nil {
				t.Close()
				return nil, err
			}
			t.conns[src][dst] = conn
		}
	}
	acceptWG.Wait()
	select {
	case err := <-acceptErr:
		t.Close()
		return nil, err
	default:
	}
	return t, nil
}

// readLoop decodes frames arriving at node `at` from node `src`.
func (t *TCP) readLoop(at, src int, conn net.Conn) {
	defer t.wg.Done()
	for {
		var hdr [5]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:4])
		kind := hdr[4]
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		select {
		case <-t.closed:
			return
		default:
		}
		t.handlers[at](Message{From: src, Kind: kind, Body: body})
	}
}

// Send implements Transport. Local loopback (dst == src is not known at
// this layer) still goes through the socket pair.
func (t *TCP) Send(dst int, msg Message) error {
	if dst < 0 || dst >= t.nodes {
		return fmt.Errorf("transport: node %d outside %d", dst, t.nodes)
	}
	if msg.From == dst {
		// Same node: skip the wire.
		t.handlers[dst](msg)
		return nil
	}
	conn := t.conns[msg.From][dst]
	if conn == nil {
		return fmt.Errorf("transport: no connection %d→%d", msg.From, dst)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(msg.Body)))
	hdr[4] = msg.Kind
	lock := &t.mu[msg.From*t.nodes+dst]
	lock.Lock()
	defer lock.Unlock()
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(msg.Body)
	return err
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.once.Do(func() { close(t.closed) })
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, row := range t.conns {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	t.wg.Wait()
	return nil
}

// --- object codec (TCP payloads) ---

// Codec maps type tags to data-object factories so the TCP transport can
// reconstruct typed objects (the real DPS serialization layer).
type Codec struct {
	mu        sync.RWMutex
	factories map[uint16]func() Decodable
	types     map[reflect.Type]uint16
}

// Decodable is a data object that can be reconstructed from its wire form.
type Decodable interface {
	serial.Marshaler
	UnmarshalDPS(r *serial.Reader) error
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{factories: make(map[uint16]func() Decodable), types: make(map[reflect.Type]uint16)}
}

// Register binds a tag to a factory. Tags must be unique; the factory's
// concrete type is remembered so Encode can frame objects automatically.
func (c *Codec) Register(tag uint16, factory func() Decodable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.factories[tag]; dup {
		panic(fmt.Sprintf("transport: duplicate codec tag %d", tag))
	}
	c.factories[tag] = factory
	c.types[reflect.TypeOf(factory())] = tag
}

// Encode frames obj with its registered tag.
func (c *Codec) Encode(obj serial.Marshaler) ([]byte, error) {
	c.mu.RLock()
	tag, ok := c.types[reflect.TypeOf(obj)]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: type %T not registered with the codec", obj)
	}
	b := serial.NewBuffer(64)
	b.U32(uint32(tag))
	obj.MarshalDPS(b)
	return b.BytesOut(), nil
}

// Decode reconstructs a registered object.
func (c *Codec) Decode(body []byte) (Decodable, error) {
	r := serial.NewReader(body)
	tag := uint16(r.U32())
	c.mu.RLock()
	factory, ok := c.factories[tag]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown codec tag %d", tag)
	}
	obj := factory()
	if err := obj.UnmarshalDPS(r); err != nil {
		return nil, fmt.Errorf("transport: decode tag %d: %w", tag, err)
	}
	return obj, nil
}
