package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dpsim/internal/serial"
)

type echo struct{ V int64 }

func (e *echo) MarshalDPS(w serial.Writer)          { w.I64(e.V) }
func (e *echo) UnmarshalDPS(r *serial.Reader) error { e.V = r.I64(); return r.Err() }

func collect(n int) ([]Handler, []*[]Message, *sync.WaitGroup) {
	var wg sync.WaitGroup
	handlers := make([]Handler, n)
	boxes := make([]*[]Message, n)
	var mu sync.Mutex
	for i := range handlers {
		box := &[]Message{}
		boxes[i] = box
		handlers[i] = func(m Message) {
			mu.Lock()
			*box = append(*box, m)
			mu.Unlock()
			wg.Done()
		}
	}
	return handlers, boxes, &wg
}

func TestLocalDelivery(t *testing.T) {
	handlers, boxes, wg := collect(3)
	tr := NewLocal(handlers)
	defer tr.Close()
	wg.Add(2)
	if err := tr.Send(1, Message{From: 0, Kind: 7, Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(2, Message{From: 0, Kind: 8, Body: []byte("yo")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(*boxes[1]) != 1 || (*boxes[1])[0].Kind != 7 {
		t.Fatalf("node1 got %+v", *boxes[1])
	}
	if string((*boxes[2])[0].Body) != "yo" {
		t.Fatalf("node2 got %+v", *boxes[2])
	}
}

func TestLocalBadDestination(t *testing.T) {
	handlers, _, _ := collect(2)
	tr := NewLocal(handlers)
	defer tr.Close()
	if err := tr.Send(9, Message{}); err == nil {
		t.Fatal("send to missing node accepted")
	}
}

func TestTCPMeshDelivery(t *testing.T) {
	handlers, boxes, wg := collect(3)
	tr, err := NewTCP(handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const per = 20
	wg.Add(3 * 2 * per)
	for src := 0; src < 3; src++ {
		for k := 0; k < per; k++ {
			for dst := 0; dst < 3; dst++ {
				if dst == src {
					continue
				}
				body := []byte(fmt.Sprintf("%d->%d#%d", src, dst, k))
				if err := tr.Send(dst, Message{From: src, Kind: 1, Body: body}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	wg.Wait()
	for i, box := range boxes {
		if len(*box) != 2*per {
			t.Fatalf("node %d received %d messages, want %d", i, len(*box), 2*per)
		}
	}
}

func TestTCPSameNodeShortCircuit(t *testing.T) {
	handlers, boxes, wg := collect(2)
	tr, err := NewTCP(handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	wg.Add(1)
	if err := tr.Send(0, Message{From: 0, Kind: 5, Body: []byte("self")}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(*boxes[0]) != 1 {
		t.Fatal("self-send lost")
	}
}

func TestTCPOrderingPerPair(t *testing.T) {
	var got []int64
	var mu sync.Mutex
	var count atomic.Int64
	done := make(chan struct{})
	handlers := []Handler{
		func(Message) {},
		func(m Message) {
			r := serial.NewReader(m.Body)
			mu.Lock()
			got = append(got, r.I64())
			mu.Unlock()
			if count.Add(1) == 100 {
				close(done)
			}
		},
	}
	tr, err := NewTCP(handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := int64(0); i < 100; i++ {
		b := serial.NewBuffer(8)
		b.I64(i)
		if err := tr.Send(1, Message{From: 0, Kind: 1, Body: b.BytesOut()}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("TCP reordered same-pair messages: got[%d] = %d", i, v)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := NewCodec()
	c.Register(5, func() Decodable { return &echo{} })
	body, err := c.Encode(&echo{V: 42})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := c.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*echo).V != 42 {
		t.Fatalf("decoded %+v", obj)
	}
}

func TestCodecUnknowns(t *testing.T) {
	c := NewCodec()
	if _, err := c.Encode(&echo{}); err == nil {
		t.Fatal("unregistered encode accepted")
	}
	b := serial.NewBuffer(8)
	b.U32(99)
	if _, err := c.Decode(b.BytesOut()); err == nil {
		t.Fatal("unknown tag decode accepted")
	}
}

func TestCodecDuplicateTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate tag did not panic")
		}
	}()
	c := NewCodec()
	c.Register(1, func() Decodable { return &echo{} })
	c.Register(1, func() Decodable { return &echo{} })
}

func TestCodecCorruptPayload(t *testing.T) {
	c := NewCodec()
	c.Register(5, func() Decodable { return &echo{} })
	b := serial.NewBuffer(8)
	b.U32(5) // tag but no payload
	if _, err := c.Decode(b.BytesOut()); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}
