package federation

import (
	"strings"
	"testing"

	"dpsim/internal/cluster"
)

// TestCheckInvariantsAllPairs certifies every registered admission ×
// routing pair — including policies registered after this test was
// written — against the full invariant suite.
func TestCheckInvariantsAllPairs(t *testing.T) {
	for _, a := range AdmissionNames() {
		for _, r := range RouterNames() {
			a, r := a, r
			t.Run(a+"/"+r, func(t *testing.T) {
				t.Parallel()
				if err := CheckInvariants(a, r, CheckConfig{}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// brokenAdmission violates determinism: the factory hands the same
// instance to every construction, and the instance admits only the very
// first job it ever sees — so the second same-seed rerun behaves
// differently from the first.
type brokenAdmission struct {
	calls int
}

func (b *brokenAdmission) Name() string { return "broken-admission" }
func (b *brokenAdmission) Admit(now float64, j *cluster.Job) bool {
	b.calls++
	return b.calls == 1
}

// TestCheckInvariantsBitesAdmission proves the harness catches a
// non-deterministic admission policy: same-seed reruns must be reported
// as diverged.
func TestCheckInvariantsBitesAdmission(t *testing.T) {
	shared := &brokenAdmission{}
	err := CheckInvariants("broken-admission", "round-robin", CheckConfig{
		AdmissionFactory: func() (Admission, error) { return shared, nil },
	})
	if err == nil {
		t.Fatal("CheckInvariants accepted a stateful-across-runs admission policy")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Errorf("err = %v, want a same-seed divergence report", err)
	}
}

// brokenRouter violates the range contract: it always returns an index
// one past the last member.
type brokenRouter struct{}

func (brokenRouter) Name() string { return "broken-router" }
func (brokenRouter) Route(now float64, j *cluster.Job, views []ClusterView) int {
	return len(views)
}

// TestCheckInvariantsBitesRouter proves the harness catches a router
// that routes outside the fleet.
func TestCheckInvariantsBitesRouter(t *testing.T) {
	err := CheckInvariants("always", "broken-router", CheckConfig{
		RouterFactory: func() (Router, error) { return brokenRouter{}, nil },
	})
	if err == nil {
		t.Fatal("CheckInvariants accepted an out-of-range router")
	}
	if !strings.Contains(err.Error(), "router broken-router returned member") {
		t.Errorf("err = %v, want an out-of-range routing fault", err)
	}
}
