package federation

import (
	"fmt"
	"sort"

	"dpsim/internal/cluster"
	"dpsim/internal/eventq"
)

// Member is one cluster in a federation: an independently configured
// cluster.Sim (its own scheduler, pool size, availability timeline,
// reconfiguration model) plus a display name for telemetry and traces.
type Member struct {
	// Name labels the member in views, telemetry and traces. The
	// scenario layer defaults it to "c<index>".
	Name string
	// Sim is the member's simulator. The federation drives it solely
	// through the step primitives and must be its only driver.
	Sim *cluster.Sim
}

// Sim orchestrates N member clusters on one shared virtual clock. It
// always advances the member holding the globally earliest pending
// event (ties broken by member index), so no member's local clock ever
// passes the federation clock, and an outer arrival loop that injects
// at the event-vs-arrival frontier — exactly the scenario.RunCell loop —
// composes with any number of members without reordering events.
//
// Arrivals flow through Offer (admission + routing decision) and
// InjectInto (delivery); Dispatch combines the two. The zero value is
// not usable; construct with NewSim.
type Sim struct {
	members []Member
	admit   Admission
	route   Router

	// views is the scratch slice rebuilt for each routing decision so
	// the steady-state Offer path allocates nothing.
	views  []ClusterView
	routed []int

	offered  int
	admitted int
	rejected int
	now      eventq.Time
}

// NewSim builds a federation over the given members. Members must be
// non-empty with non-nil sims, and both policies must be non-nil; the
// caller keeps ownership of nothing — the federation becomes the sole
// driver of every member sim.
func NewSim(members []Member, admit Admission, route Router) (*Sim, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("federation: NewSim: no members")
	}
	for i, m := range members {
		if m.Sim == nil {
			return nil, fmt.Errorf("federation: NewSim: member %d (%s) has nil Sim", i, m.Name)
		}
	}
	if admit == nil {
		return nil, fmt.Errorf("federation: NewSim: nil admission policy")
	}
	if route == nil {
		return nil, fmt.Errorf("federation: NewSim: nil routing policy")
	}
	f := &Sim{
		members: members,
		admit:   admit,
		route:   route,
		views:   make([]ClusterView, len(members)),
		routed:  make([]int, len(members)),
	}
	return f, nil
}

// Members returns the federation's member count.
func (f *Sim) Members() int { return len(f.members) }

// Member returns the i-th member.
func (f *Sim) Member(i int) Member { return f.members[i] }

// PeekNextEventTime reports the earliest pending event time across all
// members, or ok=false when every member queue is empty.
func (f *Sim) PeekNextEventTime() (eventq.Time, bool) {
	var best eventq.Time
	found := false
	for i := range f.members {
		if t, ok := f.members[i].Sim.PeekNextEventTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// ProcessNextEvent advances the member holding the globally earliest
// pending event (lowest member index on ties) by one event. The shared
// clock advances to that event's time when it is ahead — an injection
// into a previously idle member may legally resume that member's
// suspended capacity timeline behind the frontier, and those replayed
// events never move the clock backwards. It returns false when no
// member has pending events.
func (f *Sim) ProcessNextEvent() bool {
	_, _, ok := f.step()
	return ok
}

// step is ProcessNextEvent exposing which member advanced and to what
// time, for the invariant harness.
func (f *Sim) step() (int, eventq.Time, bool) {
	best := -1
	var bestT eventq.Time
	for i := range f.members {
		if t, ok := f.members[i].Sim.PeekNextEventTime(); ok && (best < 0 || t < bestT) {
			best, bestT = i, t
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	f.members[best].Sim.ProcessNextEvent()
	if bestT > f.now {
		f.now = bestT
	}
	return best, bestT, true
}

// Now reports the shared federation clock: the time of the latest event
// processed (or arrival injected) anywhere in the federation.
func (f *Sim) Now() eventq.Time { return f.now }

// Offer runs the admission and routing policies for an arriving job
// without injecting it. It returns the chosen member index and
// admitted=true, or admitted=false (idx -1) for a rejection. An error
// means the routing policy faulted (returned an out-of-range index);
// the job is still counted as admitted but routed nowhere, so callers
// must treat an error as fatal to the run.
func (f *Sim) Offer(j *cluster.Job) (idx int, admitted bool, err error) {
	if j == nil {
		return -1, false, fmt.Errorf("federation: Offer: nil job")
	}
	f.offered++
	if !f.admit.Admit(j.Arrival, j) {
		f.rejected++
		return -1, false, nil
	}
	f.admitted++
	for i := range f.members {
		li := f.members[i].Sim.LoadInfo()
		f.views[i] = ClusterView{
			Index:     i,
			Name:      f.members[i].Name,
			Nodes:     li.Nodes,
			Capacity:  li.Capacity,
			Waiting:   li.Waiting,
			Running:   li.Running,
			Allocated: li.Allocated,
			Routed:    f.routed[i],
		}
	}
	idx = f.route.Route(j.Arrival, j, f.views)
	if idx < 0 || idx >= len(f.members) {
		return -1, false, fmt.Errorf("federation: router %s returned member %d (valid: 0..%d)",
			f.route.Name(), idx, len(f.members)-1)
	}
	return idx, true, nil
}

// InjectInto delivers an admitted job to the chosen member, advancing
// the shared clock to the job's arrival instant. Injecting behind the
// shared clock is an error: the federation has already processed an
// event later than this arrival, so admitting it would let one member's
// history depend on another member's future.
func (f *Sim) InjectInto(idx int, j *cluster.Job) error {
	if idx < 0 || idx >= len(f.members) {
		return fmt.Errorf("federation: InjectInto: member %d out of range (valid: 0..%d)", idx, len(f.members)-1)
	}
	at := eventq.Time(eventq.DurationOf(j.Arrival))
	if at < f.now {
		return fmt.Errorf("federation: InjectInto: arrival at %v regresses the shared clock (now %v)", at, f.now)
	}
	if err := f.members[idx].Sim.Inject(j); err != nil {
		return err
	}
	f.routed[idx]++
	f.now = at
	return nil
}

// Dispatch is Offer followed by InjectInto for the admitted case: the
// one-call path for drivers that don't need to inspect the routing
// decision before delivery.
func (f *Sim) Dispatch(j *cluster.Job) (idx int, admitted bool, err error) {
	idx, admitted, err = f.Offer(j)
	if err != nil || !admitted {
		return idx, admitted, err
	}
	return idx, true, f.InjectInto(idx, j)
}

// Offered, Admitted and Rejected report the admission counters:
// Offered == Admitted + Rejected always holds.
func (f *Sim) Offered() int  { return f.offered }
func (f *Sim) Admitted() int { return f.admitted }
func (f *Sim) Rejected() int { return f.rejected }

// Routed returns a copy of the per-member delivered-job counts; the
// counts sum to Admitted once every admitted job has been injected.
func (f *Sim) Routed() []int {
	out := make([]int, len(f.routed))
	copy(out, f.routed)
	return out
}

// Results collects each member's cluster.Result in member order.
// Call only after the event loop has drained.
func (f *Sim) Results() []cluster.Result {
	out := make([]cluster.Result, len(f.members))
	for i := range f.members {
		out[i] = f.members[i].Sim.Result()
	}
	return out
}

// Merged folds the member results into one federation-level
// cluster.Result. For a single member it returns that member's Result
// verbatim — the golden guarantee that a 1-cluster federation is
// byte-identical to the plain cluster path. For multiple members,
// per-job outcomes concatenate (re-sorted by job ID), response/wait
// means re-weight by finished-job counts, Makespan is the max, counters
// sum, and the utilization family re-weights by each member's total
// useful work:
//
//   - Utilization = Σ work_i / (Σ nodes_i × max makespan), recovering
//     work_i from member i's own utilization identity;
//   - AvailWeightedUtilization divides the same work sum by the summed
//     available-capacity integrals;
//   - MeanAllocEfficiency is the work-weighted mean of member means.
//
// Scheduler is reported as "federated" since members may disagree.
func (f *Sim) Merged() cluster.Result {
	if len(f.members) == 1 {
		return f.members[0].Sim.Result()
	}
	var out cluster.Result
	out.Scheduler = "federated"
	var respSum, waitSum float64
	var work, nodesSum, capIntegral float64
	var effNum float64
	for i := range f.members {
		r := f.members[i].Sim.Result()
		nodes := f.members[i].Sim.LoadInfo().Nodes
		out.PerJob = append(out.PerJob, r.PerJob...)
		n := float64(len(r.PerJob))
		respSum += r.MeanResponse * n
		waitSum += r.MeanWait * n
		if r.MaxResponse > out.MaxResponse {
			out.MaxResponse = r.MaxResponse
		}
		if r.Makespan > out.Makespan {
			out.Makespan = r.Makespan
		}
		out.Unfinished += r.Unfinished
		out.Reallocations += r.Reallocations
		out.CapacityEvents += r.CapacityEvents
		out.LostWorkS += r.LostWorkS
		out.RedistributionS += r.RedistributionS

		w := r.Utilization * float64(nodes) * r.Makespan
		work += w
		nodesSum += float64(nodes)
		if r.AvailWeightedUtilization > 0 {
			capIntegral += w / r.AvailWeightedUtilization
		} else {
			capIntegral += float64(nodes) * r.Makespan
		}
		effNum += r.MeanAllocEfficiency * w
	}
	sort.Slice(out.PerJob, func(a, b int) bool { return out.PerJob[a].ID < out.PerJob[b].ID })
	if n := float64(len(out.PerJob)); n > 0 {
		out.MeanResponse = respSum / n
		out.MeanWait = waitSum / n
	}
	if nodesSum > 0 && out.Makespan > 0 {
		out.Utilization = work / (nodesSum * out.Makespan)
	}
	if capIntegral > 0 {
		out.AvailWeightedUtilization = work / capIntegral
	}
	if work > 0 {
		out.MeanAllocEfficiency = effNum / work
	}
	return out
}
