package federation

import "dpsim/internal/cluster"

// ClusterView is the read-only per-member snapshot handed to a Router:
// the member's instantaneous load gauges (cluster.Sim.LoadInfo) plus
// federation-level bookkeeping. The orchestrator rebuilds views in a
// reused scratch slice before every routing decision, so routers must
// not retain the slice across calls.
type ClusterView struct {
	// Index is the member's position in the federation (the value Route
	// returns to pick it).
	Index int
	// Name is the member's configured name ("c0", "c1", ... by default).
	Name string
	// Nodes is the member's configured pool size; Capacity is the usable
	// capacity currently in effect (≤ Nodes under volatile availability).
	Nodes    int
	Capacity int
	// Waiting counts active jobs holding no nodes; Running counts jobs
	// holding at least one; Allocated is the total nodes granted.
	Waiting   int
	Running   int
	Allocated int
	// Routed is the number of jobs the federation has sent to this
	// member so far.
	Routed int
}

// Router picks the member cluster that runs an admitted job. Route is
// called once per admitted job with one view per member (views[i].Index
// == i) and must return an index in [0, len(views)); anything else is a
// routing fault the orchestrator reports as an error. Like Admission,
// routers must be deterministic functions of the decision sequence.
type Router interface {
	// Name reports the canonical registry name.
	Name() string
	// Route returns the index of the chosen member. now is the job's
	// arrival time in seconds.
	Route(now float64, j *cluster.Job, views []ClusterView) int
}

func init() {
	RegisterRouter("round-robin", newRoundRobin)
	RegisterRouter("least-loaded", newLeastLoaded)
	RegisterRouter("weighted", newWeighted)
}

// roundRobin cycles through members in index order, ignoring load.
// Under a 1-cluster federation it always returns 0, which is what makes
// it the golden-pin default.
type roundRobin struct {
	next int
}

func newRoundRobin(p Params) (Router, error) {
	if err := p.check("round-robin"); err != nil {
		return nil, err
	}
	return &roundRobin{}, nil
}

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(now float64, j *cluster.Job, views []ClusterView) int {
	idx := r.next % len(views)
	r.next = idx + 1
	return idx
}

// leastLoaded sends the job to the member with the fewest active jobs
// (waiting + running), breaking ties toward the lowest index so the
// choice is deterministic.
type leastLoaded struct{}

func newLeastLoaded(p Params) (Router, error) {
	if err := p.check("least-loaded"); err != nil {
		return nil, err
	}
	return leastLoaded{}, nil
}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Route(now float64, j *cluster.Job, views []ClusterView) int {
	best, bestLoad := 0, -1
	for _, v := range views {
		load := v.Waiting + v.Running
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = v.Index, load
		}
	}
	return best
}

// weighted scores each member as free*(Capacity-Allocated) minus
// queue*(Waiting+Running) and picks the highest score — a tunable blend
// of "has free nodes" and "has a short queue". Ties break toward the
// lowest index.
//
// Parameters: free (weight on unallocated capacity, default 1), queue
// (weight on active-job count, default 1).
type weighted struct {
	free  float64
	queue float64
}

func newWeighted(p Params) (Router, error) {
	if err := p.check("weighted", "free", "queue"); err != nil {
		return nil, err
	}
	return &weighted{free: p.Float("free", 1), queue: p.Float("queue", 1)}, nil
}

func (w *weighted) Name() string { return "weighted" }

func (w *weighted) Route(now float64, j *cluster.Job, views []ClusterView) int {
	best, bestScore := 0, 0.0
	for i, v := range views {
		score := w.free*float64(v.Capacity-v.Allocated) - w.queue*float64(v.Waiting+v.Running)
		if i == 0 || score > bestScore {
			best, bestScore = v.Index, score
		}
	}
	return best
}
