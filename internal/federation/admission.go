package federation

import (
	"fmt"
	"math"

	"dpsim/internal/cluster"
)

// Admission decides whether an arriving job may enter the federation at
// all. Admit is called once per offered job, in arrival order, with the
// job's arrival time in seconds; policies may keep state across calls
// (rate limiters, quotas) but must be deterministic functions of the
// offer sequence — no wall clock, no randomness — so that same-seed
// federated runs stay bit-identical.
type Admission interface {
	// Name reports the canonical registry name.
	Name() string
	// Admit returns true to let the job proceed to routing, false to
	// reject it. now is the job's arrival time in seconds (the offer
	// sequence is non-decreasing in now).
	Admit(now float64, j *cluster.Job) bool
}

func init() {
	RegisterAdmission("always", newAlwaysAdmit)
	RegisterAdmission("token-bucket", newTokenBucket)
	RegisterAdmission("quota", newQuota)
}

// alwaysAdmit is the identity admission policy: every offered job enters
// the federation. It is the default, and the policy under which a
// 1-cluster federation is byte-identical to the plain cluster path.
type alwaysAdmit struct{}

func newAlwaysAdmit(p Params) (Admission, error) {
	if err := p.check("always"); err != nil {
		return nil, err
	}
	return alwaysAdmit{}, nil
}

func (alwaysAdmit) Name() string                           { return "always" }
func (alwaysAdmit) Admit(now float64, j *cluster.Job) bool { return true }

// tokenBucket admits at a sustained rate with bounded burst: a bucket
// holding at most burst tokens refills at rate tokens per simulated
// second, and each admission spends one token. Refill is computed from
// the virtual-time gap between offers, so the policy is a pure function
// of the arrival sequence.
//
// Parameters: rate (tokens/s, default 1, > 0), burst (bucket capacity,
// default 1, ≥ 1).
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   float64
}

func newTokenBucket(p Params) (Admission, error) {
	if err := p.check("token-bucket", "rate", "burst"); err != nil {
		return nil, err
	}
	rate := p.Float("rate", 1)
	burst := p.Float("burst", 1)
	if rate <= 0 {
		return nil, fmt.Errorf("federation: token-bucket: rate must be > 0 (got %g)", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("federation: token-bucket: burst must be >= 1 (got %g)", burst)
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

func (b *tokenBucket) Name() string { return "token-bucket" }

func (b *tokenBucket) Admit(now float64, j *cluster.Job) bool {
	if now > b.last {
		b.tokens = math.Min(b.burst, b.tokens+(now-b.last)*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// quota caps each tenant at a fixed number of jobs per fixed window of
// simulated time. Jobs carry no tenant field, so the tenant is derived
// deterministically as ID mod tenants — a stand-in for a real tenant
// tag that keeps multi-tenant pressure reproducible.
//
// Parameters: tenants (number of tenants, default 4, ≥ 1), jobs (max
// admissions per tenant per window, default 16, ≥ 1), window_s (window
// length in seconds, default 3600, > 0).
type quota struct {
	tenants int
	jobs    int
	windowS float64
	state   []quotaState
}

type quotaState struct {
	win   int
	count int
}

func newQuota(p Params) (Admission, error) {
	if err := p.check("quota", "tenants", "jobs", "window_s"); err != nil {
		return nil, err
	}
	tenants := int(math.Round(p.Float("tenants", 4)))
	jobs := int(math.Round(p.Float("jobs", 16)))
	windowS := p.Float("window_s", 3600)
	if tenants < 1 {
		return nil, fmt.Errorf("federation: quota: tenants must be >= 1 (got %g)", p.Float("tenants", 4))
	}
	if jobs < 1 {
		return nil, fmt.Errorf("federation: quota: jobs must be >= 1 (got %g)", p.Float("jobs", 16))
	}
	if windowS <= 0 {
		return nil, fmt.Errorf("federation: quota: window_s must be > 0 (got %g)", windowS)
	}
	return &quota{tenants: tenants, jobs: jobs, windowS: windowS, state: make([]quotaState, tenants)}, nil
}

func (q *quota) Name() string { return "quota" }

func (q *quota) Admit(now float64, j *cluster.Job) bool {
	t := &q.state[j.ID%q.tenants]
	// Window 0 covers [0, window_s); stored as win+1 so the zero value
	// of quotaState never collides with a real window index.
	w := int(now/q.windowS) + 1
	if w != t.win {
		t.win = w
		t.count = 0
	}
	if t.count < q.jobs {
		t.count++
		return true
	}
	return false
}
