package federation

import (
	"fmt"
	"testing"

	"dpsim/internal/cluster"
	"dpsim/internal/sched"
)

// steadyMembers builds a warmed-up federation mid-flight: every member
// carries a closed workload whose steady state is long and uneventful
// (the cluster-package steadySim recipe), so each federated step is a
// pure member phase-completion plus the orchestrator's argmin scan.
func steadyMembers(tb testing.TB, clusters int, admission, router string) *Sim {
	tb.Helper()
	members := make([]Member, clusters)
	for c := range members {
		jobs := make([]*cluster.Job, 16)
		for i := range jobs {
			jobs[i] = &cluster.Job{
				ID:      i,
				Arrival: 0,
				// Stagger work per member so phase completions interleave
				// across the fleet rather than marching in lockstep.
				Phases:   cluster.SyntheticProfile(400, float64(100+7*i+3*c), 0.02+0.01*float64(i%5)),
				MaxNodes: 1 + (i % 16),
			}
		}
		policy, err := sched.New("equipartition", nil)
		if err != nil {
			tb.Fatal(err)
		}
		sim, err := cluster.NewSim(16, policy, jobs)
		if err != nil {
			tb.Fatal(err)
		}
		members[c] = Member{Name: fmt.Sprintf("c%d", c), Sim: sim}
	}
	a, err := NewAdmission(admission, nil)
	if err != nil {
		tb.Fatal(err)
	}
	r, err := NewRouter(router, nil)
	if err != nil {
		tb.Fatal(err)
	}
	fed, err := NewSim(members, a, r)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 64*clusters; i++ {
		if !fed.ProcessNextEvent() {
			tb.Fatal("workload drained during warm-up")
		}
	}
	return fed
}

// TestFederationStepZeroAllocSteadyState extends the zero-allocation
// contract through the federated tier: once warmed up, a federated step
// — argmin scan plus the member's own steady-state event — must not
// allocate, for every admission×routing pair (the policies are idle
// during stepping, but the pin runs per pair so a stateful policy that
// leaks into the step path is caught).
func TestFederationStepZeroAllocSteadyState(t *testing.T) {
	for _, a := range AdmissionNames() {
		for _, r := range RouterNames() {
			a, r := a, r
			t.Run(a+"/"+r, func(t *testing.T) {
				fed := steadyMembers(t, 2, a, r)
				allocs := testing.AllocsPerRun(200, func() {
					if !fed.ProcessNextEvent() {
						t.Fatal("workload drained mid-measurement")
					}
				})
				if allocs != 0 {
					t.Errorf("%s×%s: %v allocations per federated step, want 0", a, r, allocs)
				}
			})
		}
	}
}

// TestOfferZeroAllocSteadyState pins the dispatch decision itself: the
// admission call, the view rebuild and the routing call reuse the
// orchestrator's scratch, so offering a job allocates nothing for any
// registered pair.
func TestOfferZeroAllocSteadyState(t *testing.T) {
	for _, a := range AdmissionNames() {
		for _, r := range RouterNames() {
			a, r := a, r
			t.Run(a+"/"+r, func(t *testing.T) {
				fed := steadyMembers(t, 2, a, r)
				j := &cluster.Job{ID: 0, Arrival: 0, Phases: []cluster.Phase{{Work: 1}}, MaxNodes: 2}
				allocs := testing.AllocsPerRun(200, func() {
					if _, _, err := fed.Offer(j); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("%s×%s: %v allocations per Offer, want 0", a, r, allocs)
				}
			})
		}
	}
}

// BenchmarkFederationStep measures the orchestrator's stepping overhead:
// one op is one federated steady-state event — the argmin scan over N
// members plus the chosen member's own event. Comparing against
// BenchmarkSchedulerInvoke isolates the federation tax; allocs/op must
// report 0.
func BenchmarkFederationStep(b *testing.B) {
	for _, clusters := range []int{2, 4, 8} {
		clusters := clusters
		b.Run(fmt.Sprintf("clusters=%d", clusters), func(b *testing.B) {
			fed := steadyMembers(b, clusters, "always", "round-robin")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !fed.ProcessNextEvent() {
					b.StopTimer()
					fed = steadyMembers(b, clusters, "always", "round-robin")
					b.StartTimer()
				}
			}
		})
	}
}
