package federation

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFederationDoc pins docs/federation.md to the code it describes:
// every registered policy name, every policy parameter, the public API
// surface, the certifying tests, the CLI flags and the telemetry metric
// names must all be mentioned. Renaming any of them without updating the
// doc fails CI.
func TestFederationDoc(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "federation.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)

	var needles []string
	for _, name := range AdmissionNames() {
		needles = append(needles, "`"+name+"`")
	}
	for _, name := range RouterNames() {
		needles = append(needles, "`"+name+"`")
	}
	needles = append(needles,
		// Policy parameters, as accepted by ParseSpec.
		"`rate`", "`burst`", "`tenants`", "`jobs`", "`window_s`",
		"`free`", "`queue`",
		// Public API surface.
		"ParseSpec", "FormatSpec", "CheckInvariants",
		"Offer", "InjectInto", "Dispatch", "ProcessNextEvent",
		"Merged", "ClusterView", "LoadInfo",
		// Certifying tests and benchmarks.
		"TestCheckInvariantsAllPairs",
		"TestCheckInvariantsBitesAdmission",
		"TestCheckInvariantsBitesRouter",
		"TestSingleClusterGolden",
		"TestFederatedScenarioGolden",
		"TestFederationStepZeroAllocSteadyState",
		"BenchmarkFederationStep",
		"FuzzFederation",
		"TestFederatedSweepWorkerDeterminism",
		"TestFederatedShardMerge",
		// CLI and export surface.
		"`-admissions`", "`-routings`",
		"`admission`", "`routing`", "`mean_rejected_jobs`",
		// Telemetry metric names.
		"dpsim_federation_routed_jobs_total",
		"dpsim_federation_rejected_jobs_total",
	)
	for _, needle := range needles {
		if !strings.Contains(doc, needle) {
			t.Errorf("docs/federation.md does not mention %s", needle)
		}
	}
}
