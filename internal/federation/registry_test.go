package federation

import (
	"reflect"
	"strings"
	"testing"
)

func TestRegisteredNames(t *testing.T) {
	wantA := []string{"always", "quota", "token-bucket"}
	if got := AdmissionNames(); !reflect.DeepEqual(got, wantA) {
		t.Errorf("AdmissionNames() = %v, want %v", got, wantA)
	}
	wantR := []string{"least-loaded", "round-robin", "weighted"}
	if got := RouterNames(); !reflect.DeepEqual(got, wantR) {
		t.Errorf("RouterNames() = %v, want %v", got, wantR)
	}
}

func TestNewCaseInsensitive(t *testing.T) {
	a, err := NewAdmission("ALWAYS", nil)
	if err != nil || a.Name() != "always" {
		t.Errorf("NewAdmission(ALWAYS) = %v, %v", a, err)
	}
	r, err := NewRouter("Round-Robin", nil)
	if err != nil || r.Name() != "round-robin" {
		t.Errorf("NewRouter(Round-Robin) = %v, %v", r, err)
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := NewAdmission("nope", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown admission policy") ||
		!strings.Contains(err.Error(), "always") {
		t.Errorf("unknown admission error = %v", err)
	}
	if _, err := NewRouter("nope", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown router policy") ||
		!strings.Contains(err.Error(), "round-robin") {
		t.Errorf("unknown router error = %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := &registry[int]{kind: "Test"}
	r.register("x", func(Params) (int, error) { return 0, nil })
	mustPanic("duplicate", func() { r.register("X", func(Params) (int, error) { return 0, nil }) })
	mustPanic("empty name", func() { r.register("", func(Params) (int, error) { return 0, nil }) })
	mustPanic("nil factory", func() { r.register("y", nil) })
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec   string
		name   string
		params Params
	}{
		{"always", "always", nil},
		{"  weighted  ", "weighted", nil},
		{"token-bucket()", "token-bucket", Params{}},
		{"token-bucket(rate=0.5,burst=3)", "token-bucket", Params{"rate": 0.5, "burst": 3}},
		{"quota( tenants = 2 , jobs = 8 )", "quota", Params{"tenants": 2, "jobs": 8}},
	}
	for _, c := range cases {
		name, params, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if name != c.name || !reflect.DeepEqual(params, c.params) {
			t.Errorf("ParseSpec(%q) = %q, %v; want %q, %v", c.spec, name, params, c.name, c.params)
		}
	}
	bad := []struct{ spec, frag string }{
		{"", "empty policy spec"},
		{"token-bucket(rate=1", "missing ')'"},
		{"(rate=1)", "has no name"},
		{"quota(tenants)", "not key=value"},
		{"quota(=3)", "bad parameter"},
		{"quota(tenants=zzz)", "bad parameter"},
		{"token-bucket(rate=NaN)", "bad parameter"},
		{"token-bucket(rate=+Inf)", "bad parameter"},
	}
	for _, c := range bad {
		if _, _, err := ParseSpec(c.spec); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseSpec(%q) = %v, want error containing %q", c.spec, err, c.frag)
		}
	}
}

func TestFormatSpecRoundTrip(t *testing.T) {
	specs := []string{
		"always",
		"token-bucket(burst=3,rate=0.5)",
		"quota(jobs=8,tenants=2,window_s=120)",
		"weighted(free=2,queue=0.5)",
	}
	for _, spec := range specs {
		name, params, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := FormatSpec(name, params); got != spec {
			t.Errorf("FormatSpec(ParseSpec(%q)) = %q", spec, got)
		}
	}
}

func TestPolicyParamValidation(t *testing.T) {
	cases := []struct {
		kind string // "a" admission, "r" router
		name string
		p    Params
		frag string
	}{
		{"a", "always", Params{"x": 1}, "unknown parameter"},
		{"a", "token-bucket", Params{"rate": 0}, "rate must be > 0"},
		{"a", "token-bucket", Params{"rate": -1}, "rate must be > 0"},
		{"a", "token-bucket", Params{"burst": 0.5}, "burst must be >= 1"},
		{"a", "token-bucket", Params{"x": 1}, "unknown parameter"},
		{"a", "quota", Params{"tenants": 0}, "tenants must be >= 1"},
		{"a", "quota", Params{"jobs": 0}, "jobs must be >= 1"},
		{"a", "quota", Params{"window_s": 0}, "window_s must be > 0"},
		{"a", "quota", Params{"x": 1}, "unknown parameter"},
		{"r", "round-robin", Params{"x": 1}, "unknown parameter"},
		{"r", "least-loaded", Params{"x": 1}, "unknown parameter"},
		{"r", "weighted", Params{"x": 1}, "unknown parameter"},
	}
	for _, c := range cases {
		var err error
		if c.kind == "a" {
			_, err = NewAdmission(c.name, c.p)
		} else {
			_, err = NewRouter(c.name, c.p)
		}
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s %v: err = %v, want containing %q", c.name, c.p, err, c.frag)
		}
	}
}
