package federation

import (
	"fmt"

	"dpsim/internal/availability"
	"dpsim/internal/cluster"
	"dpsim/internal/eventq"
	"dpsim/internal/rng"
	"dpsim/internal/sched"
)

// CheckConfig tunes CheckInvariants.
type CheckConfig struct {
	// AdmissionFactory overrides name resolution; nil resolves
	// NewAdmission(name, nil). Every call must return a fresh instance —
	// admission policies are stateful.
	AdmissionFactory func() (Admission, error)
	// RouterFactory overrides name resolution; nil resolves
	// NewRouter(name, nil).
	RouterFactory func() (Router, error)
	// Seed roots the randomized federations (default 1).
	Seed uint64
	// Rounds is the number of randomized federation cases (default 12);
	// each runs twice to check determinism.
	Rounds int
	// MaxClusters bounds the random member count (default 4).
	MaxClusters int
	// MaxNodes bounds each member's random pool size (default 16).
	MaxNodes int
	// MaxJobs bounds the random arrival-stream length (default 18).
	MaxJobs int
}

// CheckInvariants certifies an admission×routing policy pair against the
// federation's core invariants under randomized member fleets
// (heterogeneous pool sizes, schedulers and availability timelines) and
// randomized open arrival streams:
//
//  1. every offered arrival is admitted or rejected exactly once, and
//     the harness's own counts agree with the orchestrator's counters;
//  2. every admitted job is routed to exactly one member, in range
//     (Σ routed == admitted);
//  3. per-member job conservation: finished + unfinished == routed, for
//     every member;
//  4. the shared clock never regresses — Now() is monotone, every
//     member's own event sequence is non-decreasing, and each step
//     advances the member holding the globally earliest pending event
//     (injections may legally replay a quiet member's suspended
//     capacity timeline behind the frontier; the clock stays put); and
//  5. identical seeds produce bit-identical results, per-member and
//     federation-wide.
//
// Any registered policy — including future ones — is certified by name;
// the test suite runs every AdmissionNames()×RouterNames() pair.
func CheckInvariants(admission, router string, cfg CheckConfig) error {
	pair := admission + "×" + router
	newAdmit := cfg.AdmissionFactory
	if newAdmit == nil {
		newAdmit = func() (Admission, error) { return NewAdmission(admission, nil) }
	}
	newRoute := cfg.RouterFactory
	if newRoute == nil {
		newRoute = func() (Router, error) { return NewRouter(router, nil) }
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 12
	}
	maxClusters := cfg.MaxClusters
	if maxClusters < 1 {
		maxClusters = 4
	}
	maxNodes := cfg.MaxNodes
	if maxNodes < 2 {
		maxNodes = 16
	}
	maxJobs := cfg.MaxJobs
	if maxJobs < 1 {
		maxJobs = 18
	}
	for round := 0; round < rounds; round++ {
		roundSeed := rng.New(seed ^ (uint64(round+1) * 0x9e3779b97f4a7c15)).Uint64()
		var fingerprints [2]string
		for rerun := 0; rerun < 2; rerun++ {
			// Regenerate the identical fleet and stream from the round
			// seed: determinism (invariant 5) covers the whole pipeline,
			// not just the policies.
			fleet, jobs := randomFederation(roundSeed, maxClusters, maxNodes, maxJobs)
			admit, err := newAdmit()
			if err != nil {
				return fmt.Errorf("federation: CheckInvariants(%s): %w", pair, err)
			}
			route, err := newRoute()
			if err != nil {
				return fmt.Errorf("federation: CheckInvariants(%s): %w", pair, err)
			}
			fp, err := runCase(fleet, jobs, admit, route)
			if err != nil {
				return fmt.Errorf("federation: CheckInvariants(%s): round %d: %w", pair, round, err)
			}
			fingerprints[rerun] = fp
		}
		if fingerprints[0] != fingerprints[1] {
			return fmt.Errorf("federation: CheckInvariants(%s): round %d: identical seeds diverged:\n  %s\n  %s",
				pair, round, fingerprints[0], fingerprints[1])
		}
	}
	return nil
}

// memberCase is one randomized member configuration.
type memberCase struct {
	nodes     int
	scheduler string
	changes   []availability.Change
}

// randomFederation expands a seed into one randomized federation case: a
// heterogeneous fleet (each member with its own pool size, scheduler
// drawn from the full sched registry, and optional volatile-capacity
// timeline) plus an open arrival stream with varied phase profiles.
func randomFederation(seed uint64, maxClusters, maxNodes, maxJobs int) ([]memberCase, []*cluster.Job) {
	src := rng.New(seed)
	schedNames := sched.Names()
	fleet := make([]memberCase, 1+src.Intn(maxClusters))
	for i := range fleet {
		nodes := 2 + src.Intn(maxNodes-1)
		mc := memberCase{nodes: nodes, scheduler: schedNames[src.Intn(len(schedNames))]}
		ct := 0.0
		for j, n := 0, src.Intn(5); j < n; j++ {
			ct += src.Exp(40)
			c := availability.Change{At: ct, Capacity: src.Intn(nodes + 1)}
			if src.Float64() < 0.4 {
				c.NoticeS = src.Uniform(1, 15)
			}
			mc.changes = append(mc.changes, c)
		}
		fleet[i] = mc
	}
	njobs := 1 + src.Intn(maxJobs)
	jobs := make([]*cluster.Job, njobs)
	t := 0.0
	maxFleetNodes := 0
	for _, mc := range fleet {
		if mc.nodes > maxFleetNodes {
			maxFleetNodes = mc.nodes
		}
	}
	for i := range jobs {
		t += src.Exp(6)
		phases := make([]cluster.Phase, 1+src.Intn(4))
		for k := range phases {
			phases[k] = cluster.Phase{Work: src.Uniform(0.5, 30), Comm: src.Uniform(0, 0.4)}
		}
		jobs[i] = &cluster.Job{
			ID:       i,
			Arrival:  t,
			Phases:   phases,
			MaxNodes: 1 + src.Intn(maxFleetNodes),
			Weight:   src.Uniform(0.5, 3),
		}
	}
	return fleet, jobs
}

// runCase builds the federation, drives the arrival stream through the
// shared-clock event loop, and checks every structural invariant it can
// observe from outside, returning a fingerprint of the full outcome.
// Panics anywhere in the stack are converted to errors so a broken
// policy cannot crash the harness.
func runCase(fleet []memberCase, jobs []*cluster.Job, admit Admission, route Router) (fp string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("federation: simulation panicked: %v", r)
		}
	}()
	members := make([]Member, len(fleet))
	for i, mc := range fleet {
		policy, err := sched.New(mc.scheduler, nil)
		if err != nil {
			return "", err
		}
		sim, err := cluster.NewSim(mc.nodes, policy, nil)
		if err != nil {
			return "", err
		}
		if err := sim.SetCapacityChanges(mc.changes); err != nil {
			return "", err
		}
		if err := sim.SetReconfigCost(cluster.ReconfigCost{RedistributionSPerNode: 0.2, LostWorkS: 2}); err != nil {
			return "", err
		}
		members[i] = Member{Name: fmt.Sprintf("c%d", i), Sim: sim}
	}
	fed, err := NewSim(members, admit, route)
	if err != nil {
		return "", err
	}

	// Harness-side shadow counts, kept independently of the
	// orchestrator's counters so the two bookkeepings cross-check.
	var admitted, rejected int
	routed := make([]int, len(members))
	lastPerMember := make([]eventq.Time, len(members))
	next := 0
	for {
		et, evOK := fed.PeekNextEventTime()
		if next < len(jobs) {
			j := jobs[next]
			at := eventq.Time(eventq.DurationOf(j.Arrival))
			if !evOK || at <= et {
				idx, ok, err := fed.Offer(j)
				if err != nil {
					return "", err
				}
				if ok {
					if err := fed.InjectInto(idx, j); err != nil {
						return "", err
					}
					admitted++
					routed[idx]++
				} else {
					rejected++
				}
				next++
				continue
			}
		}
		if !evOK {
			break
		}
		before := fed.Now()
		idx, stepT, ok := fed.step()
		if !ok {
			return "", fmt.Errorf("step reported no events after a successful peek at %v", et)
		}
		// Invariant 4: each step takes the globally earliest pending
		// event, member event sequences are non-decreasing, and the
		// shared clock is monotone.
		if stepT != et {
			return "", fmt.Errorf("step processed t=%v, but the global minimum was %v", stepT, et)
		}
		if stepT < lastPerMember[idx] {
			return "", fmt.Errorf("member %d event time regressed: %v after %v", idx, stepT, lastPerMember[idx])
		}
		lastPerMember[idx] = stepT
		if fed.Now() < before {
			return "", fmt.Errorf("Now() regressed: %v after %v", fed.Now(), before)
		}
	}

	// Invariant 1: exactly-once admission, and both bookkeepings agree.
	if fed.Offered() != len(jobs) {
		return "", fmt.Errorf("offered %d of %d jobs", fed.Offered(), len(jobs))
	}
	if fed.Admitted()+fed.Rejected() != fed.Offered() {
		return "", fmt.Errorf("%d admitted + %d rejected != %d offered",
			fed.Admitted(), fed.Rejected(), fed.Offered())
	}
	if admitted != fed.Admitted() || rejected != fed.Rejected() {
		return "", fmt.Errorf("counter mismatch: harness saw %d/%d admitted/rejected, orchestrator %d/%d",
			admitted, rejected, fed.Admitted(), fed.Rejected())
	}
	// Invariant 2: exactly-once routing.
	fedRouted := fed.Routed()
	total := 0
	for i := range fedRouted {
		if fedRouted[i] != routed[i] {
			return "", fmt.Errorf("member %d: orchestrator routed %d, harness saw %d", i, fedRouted[i], routed[i])
		}
		total += fedRouted[i]
	}
	if total != fed.Admitted() {
		return "", fmt.Errorf("routed %d jobs but admitted %d", total, fed.Admitted())
	}
	// Invariant 3: per-member job conservation.
	results := fed.Results()
	for i, r := range results {
		if len(r.PerJob)+r.Unfinished != routed[i] {
			return "", fmt.Errorf("member %d: %d finished + %d unfinished != %d routed",
				i, len(r.PerJob), r.Unfinished, routed[i])
		}
	}
	return fmt.Sprintf("%+v|%+v|%v|%d", results, fed.Merged(), fedRouted, fed.Rejected()), nil
}
