package federation

import (
	"testing"

	"dpsim/internal/cluster"
)

func job(id int) *cluster.Job {
	return &cluster.Job{ID: id, Phases: []cluster.Phase{{Work: 1}}, MaxNodes: 1}
}

func TestTokenBucket(t *testing.T) {
	a, err := NewAdmission("token-bucket", Params{"rate": 1, "burst": 1})
	if err != nil {
		t.Fatal(err)
	}
	// The bucket starts full: the first offer spends the only token.
	steps := []struct {
		now  float64
		want bool
	}{
		{0, true},    // spends the initial token
		{0, false},   // no refill at the same instant
		{0.5, false}, // refilled to 0.5 — still short
		{1.5, true},  // refilled past 1
		{1.5, false},
	}
	for i, s := range steps {
		if got := a.Admit(s.now, job(i)); got != s.want {
			t.Errorf("step %d (t=%g): Admit = %v, want %v", i, s.now, got, s.want)
		}
	}

	// burst > 1 lets a cold start absorb a batch.
	b, err := NewAdmission("token-bucket", Params{"rate": 0.1, "burst": 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !b.Admit(0, job(i)) {
			t.Fatalf("burst admission %d refused", i)
		}
	}
	if b.Admit(0, job(3)) {
		t.Error("admission past the burst")
	}
}

func TestQuota(t *testing.T) {
	a, err := NewAdmission("quota", Params{"tenants": 2, "jobs": 2, "window_s": 10})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant is ID mod tenants: even IDs are tenant 0, odd tenant 1.
	if !a.Admit(0, job(0)) || !a.Admit(1, job(2)) {
		t.Fatal("tenant 0 first two admissions refused")
	}
	if a.Admit(2, job(4)) {
		t.Error("tenant 0 admitted past its quota")
	}
	if !a.Admit(2, job(1)) {
		t.Error("tenant 1 throttled by tenant 0's quota")
	}
	// A new window resets the count.
	if !a.Admit(11, job(6)) {
		t.Error("tenant 0 still throttled in the next window")
	}
}

func views(loads ...[2]int) []ClusterView {
	out := make([]ClusterView, len(loads))
	for i, l := range loads {
		out[i] = ClusterView{Index: i, Nodes: 8, Capacity: 8, Waiting: l[0], Running: l[1], Allocated: l[1]}
	}
	return out
}

func TestRoundRobin(t *testing.T) {
	r, err := NewRouter("round-robin", nil)
	if err != nil {
		t.Fatal(err)
	}
	v := views([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	for i, want := range []int{0, 1, 2, 0, 1} {
		if got := r.Route(0, job(i), v); got != want {
			t.Errorf("route %d = %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoaded(t *testing.T) {
	r, err := NewRouter("least-loaded", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Route(0, job(0), views([2]int{2, 3}, [2]int{0, 1}, [2]int{4, 0})); got != 1 {
		t.Errorf("least-loaded picked %d, want 1", got)
	}
	// Ties break toward the lowest index.
	if got := r.Route(0, job(0), views([2]int{1, 1}, [2]int{0, 2}, [2]int{2, 0})); got != 0 {
		t.Errorf("tie pick %d, want 0", got)
	}
}

func TestWeighted(t *testing.T) {
	r, err := NewRouter("weighted", Params{"free": 1, "queue": 1})
	if err != nil {
		t.Fatal(err)
	}
	v := []ClusterView{
		{Index: 0, Nodes: 8, Capacity: 8, Allocated: 8, Waiting: 0, Running: 4}, // score -4
		{Index: 1, Nodes: 8, Capacity: 8, Allocated: 2, Waiting: 1, Running: 1}, // score 4
		{Index: 2, Nodes: 8, Capacity: 4, Allocated: 4, Waiting: 0, Running: 2}, // score -2
	}
	if got := r.Route(0, job(0), v); got != 1 {
		t.Errorf("weighted picked %d, want 1", got)
	}
	// A queue-dominant weighting flips the choice.
	rq, err := NewRouter("weighted", Params{"free": 0, "queue": 1})
	if err != nil {
		t.Fatal(err)
	}
	v2 := []ClusterView{
		{Index: 0, Capacity: 8, Allocated: 0, Waiting: 3, Running: 3},
		{Index: 1, Capacity: 2, Allocated: 2, Waiting: 0, Running: 1},
	}
	if got := rq.Route(0, job(0), v2); got != 1 {
		t.Errorf("queue-weighted picked %d, want 1", got)
	}
}
