package federation

import (
	"fmt"
	"strings"
	"testing"

	"dpsim/internal/availability"
	"dpsim/internal/cluster"
	"dpsim/internal/eventq"
	"dpsim/internal/sched"
)

// drivePlain runs jobs through a bare cluster.Sim with the open-arrival
// step loop (the scenario.RunCell drive order: arrivals win ties).
func drivePlain(t *testing.T, sim *cluster.Sim, jobs []*cluster.Job) cluster.Result {
	t.Helper()
	next := 0
	for {
		et, evOK := sim.PeekNextEventTime()
		if next < len(jobs) {
			at := eventq.Time(eventq.DurationOf(jobs[next].Arrival))
			if !evOK || at <= et {
				if err := sim.Inject(jobs[next]); err != nil {
					t.Fatal(err)
				}
				next++
				continue
			}
		}
		if !evOK {
			break
		}
		sim.ProcessNextEvent()
	}
	return sim.Result()
}

// driveFed runs the same jobs through a federation with the identical
// drive order, dispatching each arrival through admission + routing.
func driveFed(t *testing.T, fed *Sim, jobs []*cluster.Job) cluster.Result {
	t.Helper()
	next := 0
	for {
		et, evOK := fed.PeekNextEventTime()
		if next < len(jobs) {
			at := eventq.Time(eventq.DurationOf(jobs[next].Arrival))
			if !evOK || at <= et {
				if _, _, err := fed.Dispatch(jobs[next]); err != nil {
					t.Fatal(err)
				}
				next++
				continue
			}
		}
		if !evOK {
			break
		}
		fed.ProcessNextEvent()
	}
	return fed.Merged()
}

func mustPolicies(t *testing.T, admission, router string) (Admission, Router) {
	t.Helper()
	a, err := NewAdmission(admission, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(router, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a, r
}

// volatileTimeline is the shared capacity schedule for the volatile
// golden: a noticed reclaim, an abrupt drop, and a restoration.
func volatileTimeline(nodes int) []availability.Change {
	return []availability.Change{
		{At: 15, Capacity: nodes / 2, NoticeS: 4},
		{At: 40, Capacity: nodes / 4},
		{At: 70, Capacity: nodes},
	}
}

// TestSingleClusterGolden is the zero-drift pin of the federated tier:
// a 1-cluster federation under always-admit + round-robin must produce
// a Result byte-identical to the plain cluster.Sim path — for every
// registered scheduler, under both fixed and volatile capacity. Merged
// returns the sole member's Result verbatim, so any divergence here
// means the orchestrator perturbed the member's event sequence.
func TestSingleClusterGolden(t *testing.T) {
	const nodes = 12
	for _, volatile := range []bool{false, true} {
		label := "fixed"
		if volatile {
			label = "volatile"
		}
		for _, name := range sched.Names() {
			name, volatile := name, volatile
			t.Run(label+"/"+name, func(t *testing.T) {
				build := func() (*cluster.Sim, []*cluster.Job) {
					policy, err := sched.New(name, nil)
					if err != nil {
						t.Fatal(err)
					}
					sim, err := cluster.NewSim(nodes, policy, nil)
					if err != nil {
						t.Fatal(err)
					}
					if volatile {
						if err := sim.SetCapacityChanges(volatileTimeline(nodes)); err != nil {
							t.Fatal(err)
						}
					}
					// Regenerate the workload for each side: deterministic
					// generation stands in for sharing job pointers.
					return sim, cluster.PoissonWorkload(16, nodes, 4, 42)
				}

				plainSim, plainJobs := build()
				want := fmt.Sprintf("%+v", drivePlain(t, plainSim, plainJobs))

				fedMember, fedJobs := build()
				a, r := mustPolicies(t, "always", "round-robin")
				fed, err := NewSim([]Member{{Name: "c0", Sim: fedMember}}, a, r)
				if err != nil {
					t.Fatal(err)
				}
				got := fmt.Sprintf("%+v", driveFed(t, fed, fedJobs))
				if got != want {
					t.Errorf("1-cluster federation diverged from plain cluster path:\n got %s\nwant %s", got, want)
				}
				if fed.Rejected() != 0 || fed.Admitted() != len(fedJobs) {
					t.Errorf("always-admit counters: admitted %d rejected %d, want %d/0",
						fed.Admitted(), fed.Rejected(), len(fedJobs))
				}
			})
		}
	}
}

// TestMergedConservation drives a heterogeneous 2-cluster federation and
// checks the merged result's structural accounting against the members.
func TestMergedConservation(t *testing.T) {
	p1, err := sched.New("equipartition", nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sched.New("rigid-fcfs", nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := cluster.NewSim(8, p1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cluster.NewSim(16, p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SetCapacityChanges(volatileTimeline(16)); err != nil {
		t.Fatal(err)
	}
	a, r := mustPolicies(t, "always", "least-loaded")
	fed, err := NewSim([]Member{{Name: "a", Sim: s1}, {Name: "b", Sim: s2}}, a, r)
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.PoissonWorkload(24, 8, 3, 7)
	merged := driveFed(t, fed, jobs)

	routed := fed.Routed()
	if routed[0]+routed[1] != len(jobs) {
		t.Fatalf("routed %v, want sum %d", routed, len(jobs))
	}
	if routed[0] == 0 || routed[1] == 0 {
		t.Fatalf("least-loaded sent everything one way: %v", routed)
	}
	results := fed.Results()
	finished, unfinished := 0, 0
	for i, res := range results {
		if len(res.PerJob)+res.Unfinished != routed[i] {
			t.Errorf("member %d: %d finished + %d unfinished != %d routed",
				i, len(res.PerJob), res.Unfinished, routed[i])
		}
		finished += len(res.PerJob)
		unfinished += res.Unfinished
	}
	if len(merged.PerJob) != finished || merged.Unfinished != unfinished {
		t.Errorf("merged accounting: %d finished %d unfinished, members say %d/%d",
			len(merged.PerJob), merged.Unfinished, finished, unfinished)
	}
	for i := 1; i < len(merged.PerJob); i++ {
		if merged.PerJob[i-1].ID >= merged.PerJob[i].ID {
			t.Fatalf("merged PerJob not ID-sorted at %d: %d >= %d", i, merged.PerJob[i-1].ID, merged.PerJob[i].ID)
		}
	}
	if merged.Scheduler != "federated" {
		t.Errorf("merged Scheduler = %q, want federated", merged.Scheduler)
	}
	if merged.Makespan < results[0].Makespan || merged.Makespan < results[1].Makespan {
		t.Errorf("merged makespan %g below member makespans %g/%g",
			merged.Makespan, results[0].Makespan, results[1].Makespan)
	}
	if merged.Utilization <= 0 || merged.Utilization > 1 {
		t.Errorf("merged utilization %g out of (0,1]", merged.Utilization)
	}
}

func TestNewSimValidation(t *testing.T) {
	a, r := mustPolicies(t, "always", "round-robin")
	p, _ := sched.New("equipartition", nil)
	sim, _ := cluster.NewSim(4, p, nil)

	if _, err := NewSim(nil, a, r); err == nil || !strings.Contains(err.Error(), "no members") {
		t.Errorf("empty members: %v", err)
	}
	if _, err := NewSim([]Member{{Name: "x"}}, a, r); err == nil || !strings.Contains(err.Error(), "nil Sim") {
		t.Errorf("nil member sim: %v", err)
	}
	if _, err := NewSim([]Member{{Name: "x", Sim: sim}}, nil, r); err == nil || !strings.Contains(err.Error(), "admission") {
		t.Errorf("nil admission: %v", err)
	}
	if _, err := NewSim([]Member{{Name: "x", Sim: sim}}, a, nil); err == nil || !strings.Contains(err.Error(), "routing") {
		t.Errorf("nil router: %v", err)
	}
}

func TestDispatchErrors(t *testing.T) {
	a, r := mustPolicies(t, "always", "round-robin")
	p, _ := sched.New("equipartition", nil)
	sim, _ := cluster.NewSim(4, p, nil)
	fed, err := NewSim([]Member{{Name: "x", Sim: sim}}, a, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.Offer(nil); err == nil || !strings.Contains(err.Error(), "nil job") {
		t.Errorf("nil job: %v", err)
	}
	j := &cluster.Job{ID: 0, Arrival: 5, Phases: []cluster.Phase{{Work: 1}}, MaxNodes: 2}
	if err := fed.InjectInto(3, j); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range member: %v", err)
	}
	if _, _, err := fed.Dispatch(j); err != nil {
		t.Fatal(err)
	}
	// The shared clock now sits at t=5; injecting an earlier arrival
	// must be refused.
	early := &cluster.Job{ID: 1, Arrival: 1, Phases: []cluster.Phase{{Work: 1}}, MaxNodes: 2}
	if err := fed.InjectInto(0, early); err == nil || !strings.Contains(err.Error(), "regresses") {
		t.Errorf("clock regression: %v", err)
	}
}
