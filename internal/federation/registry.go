// Package federation is the multi-cluster tier over the single-cluster
// simulator (internal/cluster): an orchestrator advances N heterogeneous
// cluster.Sim instances on one shared virtual clock using the step
// primitives (PeekNextEventTime / ProcessNextEvent / Inject), and
// dispatches an open arrival stream through pluggable admission policies
// (may this job enter the federation at all?) and routing policies
// (which member cluster runs it?).
//
// Both policy families live in self-registering, case-insensitive
// registries mirroring internal/sched and internal/appmodel: policies
// are selected by "name" or "name(key=value,...)" specs (ParseSpec /
// FormatSpec), construction rejects unknown names and parameters, and
// every simulation constructs fresh instances because policies may hold
// per-run state.
//
// The shared-clock contract: the orchestrator always processes the
// globally earliest pending event (ties broken by member index), so
// every member's local clock stays at or behind the federation clock,
// injections at the arrival frontier are always legal for the routed
// member, and the whole composition is bit-deterministic — same seed,
// same trajectory, regardless of how many clusters federate. The
// CheckInvariants property harness (invariants.go) certifies exactly
// these guarantees for every registered admission×routing pair.
//
// See docs/federation.md for the scenario schema and policy reference.
package federation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Params carries a policy's construction parameters, as decoded from a
// scenario file's federation block or a CLI "name(key=value,...)" spec.
// All values are float64; factories round where an integer is meant.
type Params map[string]float64

// Float returns the parameter's value, or def when the key is absent.
func (p Params) Float(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// check rejects any key outside the allowed set — a misspelled parameter
// must fail loudly at construction, not silently fall back to a default.
func (p Params) check(policy string, allowed ...string) error {
	for key := range p {
		ok := false
		for _, a := range allowed {
			if key == a {
				ok = true
				break
			}
		}
		if !ok {
			valid := "none"
			if len(allowed) > 0 {
				valid = strings.Join(allowed, ", ")
			}
			return fmt.Errorf("federation: %s: unknown parameter %q (valid: %s)", policy, key, valid)
		}
	}
	return nil
}

// registry is one self-registering policy family; the package holds one
// for admission policies and one for routers.
type registry[T any] struct {
	kind string
	mu   sync.RWMutex
	m    map[string]func(Params) (T, error)
}

func (r *registry[T]) register(name string, f func(Params) (T, error)) {
	if name == "" || f == nil {
		panic("federation: Register" + r.kind + " with empty name or nil factory")
	}
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]func(Params) (T, error))
	}
	if _, dup := r.m[key]; dup {
		panic("federation: duplicate " + strings.ToLower(r.kind) + " policy " + key)
	}
	r.m[key] = f
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (r *registry[T]) new(name string, p Params) (T, error) {
	r.mu.RLock()
	f, ok := r.m[strings.ToLower(name)]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("federation: unknown %s policy %q (valid: %s)",
			strings.ToLower(r.kind), name, strings.Join(r.names(), ", "))
	}
	return f(p)
}

var (
	admissions = &registry[Admission]{kind: "Admission"}
	routers    = &registry[Router]{kind: "Router"}
)

// AdmissionFactory constructs an admission policy from its parameters.
// It must reject unknown or out-of-range parameters.
type AdmissionFactory func(p Params) (Admission, error)

// RouterFactory constructs a routing policy from its parameters.
type RouterFactory func(p Params) (Router, error)

// RegisterAdmission adds an admission-policy factory under its canonical
// (lower-case) name. Built-in policies self-register from init
// functions; registering a duplicate or empty name panics — it is a
// programming error.
func RegisterAdmission(name string, f AdmissionFactory) {
	admissions.register(name, func(p Params) (Admission, error) { return f(p) })
}

// RegisterRouter adds a routing-policy factory under its canonical
// (lower-case) name, with RegisterAdmission's rules.
func RegisterRouter(name string, f RouterFactory) {
	routers.register(name, func(p Params) (Router, error) { return f(p) })
}

// AdmissionNames lists the registered admission policies in canonical
// (alphabetical) order — the valid values for scenario files and CLI
// flags.
func AdmissionNames() []string { return admissions.names() }

// RouterNames lists the registered routing policies in canonical order.
func RouterNames() []string { return routers.names() }

// NewAdmission constructs the named admission policy with the given
// parameters, case-insensitively. Policies may hold per-run state, so
// every simulation should construct its own instance.
func NewAdmission(name string, p Params) (Admission, error) { return admissions.new(name, p) }

// NewRouter constructs the named routing policy, with NewAdmission's
// rules.
func NewRouter(name string, p Params) (Router, error) { return routers.new(name, p) }

// ParseSpec splits a CLI/label policy spec into name and parameters:
// either a bare "name" or "name(key=value,key2=value2)". The grammar is
// shared by both policy families; NewAdmission / NewRouter resolve the
// name. It is the inverse of FormatSpec.
func ParseSpec(spec string) (string, Params, error) {
	spec = strings.TrimSpace(spec)
	open := strings.IndexByte(spec, '(')
	if open < 0 {
		if spec == "" {
			return "", nil, fmt.Errorf("federation: empty policy spec")
		}
		return spec, nil, nil
	}
	if !strings.HasSuffix(spec, ")") {
		return "", nil, fmt.Errorf("federation: policy spec %q: missing ')'", spec)
	}
	name := strings.TrimSpace(spec[:open])
	if name == "" {
		return "", nil, fmt.Errorf("federation: policy spec %q has no name", spec)
	}
	body := spec[open+1 : len(spec)-1]
	params := Params{}
	if strings.TrimSpace(body) == "" {
		return name, params, nil
	}
	for _, kv := range strings.Split(body, ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("federation: policy spec %q: parameter %q is not key=value", spec, kv)
		}
		key := strings.TrimSpace(kv[:eq])
		val, err := strconv.ParseFloat(strings.TrimSpace(kv[eq+1:]), 64)
		// ParseFloat accepts "NaN"/"Inf", and NaN slips through every
		// range check a factory can write (v <= 0 is false) — reject
		// non-finite values at the parse boundary.
		if key == "" || err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			return "", nil, fmt.Errorf("federation: policy spec %q: bad parameter %q", spec, kv)
		}
		params[key] = val
	}
	return name, params, nil
}

// FormatSpec renders a (name, params) pair as the canonical spec string:
// the bare name, or "name(key=value,...)" with keys sorted. %g float
// rendering round-trips exactly through ParseSpec, so a grid label built
// with FormatSpec resolves back to the identical policy.
func FormatSpec(name string, p Params) string {
	if len(p) == 0 {
		return name
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, strconv.FormatFloat(p[k], 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}
