// Package parallel is the real (non-simulated) DPS runtime: DPS execution
// threads are goroutines, data objects move through an in-process channel
// transport or real TCP sockets, and computations actually execute. It
// implements the same flow-graph semantics as the simulation engine —
// split/merge/stream instances, routing functions, closure and
// acknowledgement control messages, credit-window flow control — so a DPS
// application runs unmodified either way, which is the premise of the
// paper's direct-execution methodology (§3: "the real and simulated
// applications may be run identically").
//
// Deployment note: all logical nodes live in one OS process (the TCP
// transport still uses real loopback sockets). Quiescence detection uses a
// shared in-flight counter; a multi-process deployment would replace it
// with a distributed termination protocol.
package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dpsim/internal/dps"
	"dpsim/internal/serial"
	"dpsim/internal/transport"
)

// message kinds on the wire.
const (
	kindData uint8 = iota + 1
	kindClosure
	kindAck
)

// Config assembles a runtime.
type Config struct {
	// Graph is the application flow graph.
	Graph *dps.Graph
	// Nodes is the number of logical compute nodes.
	Nodes int
	// Codec decodes data objects arriving over the transport. Required
	// when UseTCP (and for any cross-node traffic).
	Codec *transport.Codec
	// UseTCP selects real loopback sockets instead of channels.
	UseTCP bool
	// QueueDepth bounds each execution thread's input queue (default
	// 4096).
	QueueDepth int
	// SleepModelled makes Compute sleep for the modeled duration when no
	// kernel function is supplied (useful for demo workloads).
	SleepModelled bool
}

// wireFrame is one instance-stack level on the wire. It carries enough to
// route acknowledgements back to the source node and forwarded objects to
// the instance's aggregation thread.
type wireFrame struct {
	pairID     uint32
	instID     uint64
	srcNode    uint32
	srcThread  uint32
	sinkThread uint32
}

// item is one unit of execution-thread work.
type item struct {
	kind   uint8 // kindData or kindClosure
	op     *dps.Op
	obj    dps.DataObject
	frames []wireFrame
	seq    int
	pair   *dps.Pair // closure
	instID uint64
	total  int
}

type instKey struct {
	pair uint32
	inst uint64
}

// srcInstance is the source-side state of one pair instance: posted count,
// flow-control credits and the deferred posts awaiting credits.
type srcInstance struct {
	mu       sync.Mutex
	posted   int
	inflight int
	pending  []pendingPost
}

func newSrcInstance() *srcInstance { return &srcInstance{} }

// sinkInstance is the sink-side state of one pair instance.
type sinkInstance struct {
	state    dps.MergeState
	absorbed int
	total    int // -1 until the closure arrives
	finished bool
	act      *activation // stream output instances
	parent   []wireFrame
}

// activation tracks the output instances opened by a source activation.
type activation struct {
	parent []wireFrame
	insts  map[*dps.Pair]*openInst
	order  []*openInst
}

type openInst struct {
	pair       *dps.Pair
	id         uint64
	sinkThread int
	src        *srcInstance
}

func newActivation(parent []wireFrame) *activation {
	return &activation{parent: parent, insts: make(map[*dps.Pair]*openInst)}
}

// Runtime executes one DPS application across logical nodes.
type Runtime struct {
	cfg    Config
	graph  *dps.Graph
	tr     transport.Transport
	codec  *transport.Codec
	nodes  []*nodeState
	pairs  map[uint32]*dps.Pair
	nextID atomic.Uint64

	inflight atomic.Int64
	idleMu   sync.Mutex
	idleCond *sync.Cond

	errMu sync.Mutex
	err   error

	phaseMu sync.Mutex
	phases  []Phase
	started time.Time

	closed  chan struct{}
	closeMu sync.Once
}

// Phase is a wall-clock phase mark recorded by operations.
type Phase struct {
	Elapsed time.Duration
	Name    string
}

type nodeState struct {
	rt      *Runtime
	id      int
	threads map[string]*workerThread
	srcMu   sync.Mutex
	srcInst map[instKey]*srcInstance
}

type workerThread struct {
	node  *nodeState
	coll  *dps.Collection
	idx   int
	queue chan item
	store dps.Store
	sinks map[instKey]*sinkInstance
	wg    *sync.WaitGroup
}

func threadName(coll *dps.Collection, idx int) string {
	return fmt.Sprintf("%s/%d", coll.Name(), idx)
}

// New builds and starts a runtime (worker goroutines and transport).
func New(cfg Config) (*Runtime, error) {
	if cfg.Graph == nil {
		return nil, errors.New("parallel: Config.Graph is required")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: invalid graph: %w", err)
	}
	if cfg.Nodes <= 0 {
		return nil, errors.New("parallel: need at least one node")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	rt := &Runtime{
		cfg:     cfg,
		graph:   cfg.Graph,
		codec:   cfg.Codec,
		pairs:   make(map[uint32]*dps.Pair),
		closed:  make(chan struct{}),
		started: time.Now(),
	}
	rt.idleCond = sync.NewCond(&rt.idleMu)
	for _, p := range cfg.Graph.Pairs() {
		rt.pairs[uint32(p.ID())] = p
	}
	rt.nodes = make([]*nodeState, cfg.Nodes)
	var wg sync.WaitGroup
	for i := range rt.nodes {
		rt.nodes[i] = &nodeState{
			rt: rt, id: i,
			threads: make(map[string]*workerThread),
			srcInst: make(map[instKey]*srcInstance),
		}
	}
	// Materialize one execution thread per (collection, index).
	seen := make(map[*dps.Collection]bool)
	for _, op := range cfg.Graph.Ops() {
		coll := op.Collection()
		if seen[coll] {
			continue
		}
		seen[coll] = true
		for idx := 0; idx < coll.Width(); idx++ {
			node := rt.nodes[coll.Node(idx)%cfg.Nodes]
			th := &workerThread{
				node: node, coll: coll, idx: idx,
				queue: make(chan item, cfg.QueueDepth),
				store: make(dps.Store),
				sinks: make(map[instKey]*sinkInstance),
				wg:    &wg,
			}
			node.threads[threadName(coll, idx)] = th
			wg.Add(1)
			go th.run()
		}
	}
	handlers := make([]transport.Handler, cfg.Nodes)
	for i := range handlers {
		node := rt.nodes[i]
		handlers[i] = node.handleMessage
	}
	var err error
	if cfg.UseTCP {
		rt.tr, err = transport.NewTCP(handlers)
	} else {
		rt.tr = transport.NewLocal(handlers)
	}
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// fail records the first runtime error.
func (rt *Runtime) fail(err error) {
	rt.errMu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.errMu.Unlock()
	rt.done() // wake Wait so the error surfaces
}

func (rt *Runtime) addWork() { rt.inflight.Add(1) }

func (rt *Runtime) done() {
	if rt.inflight.Add(-1) <= 0 {
		rt.idleMu.Lock()
		rt.idleCond.Broadcast()
		rt.idleMu.Unlock()
	}
}

// Inject delivers obj to thread t of op's collection (the application
// bootstrap).
func (rt *Runtime) Inject(op *dps.Op, t int, obj dps.DataObject) {
	rt.addWork()
	rt.route(item{kind: kindData, op: op, obj: obj, frames: nil}, t)
}

// Wait blocks until the application quiesces and returns the first error.
func (rt *Runtime) Wait() error {
	rt.idleMu.Lock()
	for rt.inflight.Load() > 0 {
		rt.idleCond.Wait()
	}
	rt.idleMu.Unlock()
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.err
}

// Close stops worker goroutines and the transport.
func (rt *Runtime) Close() {
	rt.closeMu.Do(func() {
		close(rt.closed)
		for _, n := range rt.nodes {
			for _, th := range n.threads {
				close(th.queue)
			}
		}
		rt.tr.Close()
	})
}

// Store returns a thread's local store (seed inputs, read results).
func (rt *Runtime) Store(coll *dps.Collection, idx int) dps.Store {
	node := rt.nodes[coll.Node(idx)%rt.cfg.Nodes]
	return node.threads[threadName(coll, idx)].store
}

// Phases returns the recorded wall-clock phase marks.
func (rt *Runtime) Phases() []Phase {
	rt.phaseMu.Lock()
	defer rt.phaseMu.Unlock()
	return append([]Phase(nil), rt.phases...)
}

// route hands an item to the destination execution thread, crossing the
// transport when the destination lives on another node.
func (rt *Runtime) route(it item, dstThread int) {
	coll := it.op.Collection()
	if dstThread < 0 || dstThread >= coll.Width() {
		rt.fail(fmt.Errorf("parallel: object for %s routed to thread %d outside width %d", it.op, dstThread, coll.Width()))
		return
	}
	dstNode := coll.Node(dstThread) % rt.cfg.Nodes
	node := rt.nodes[dstNode]
	th := node.threads[threadName(coll, dstThread)]
	select {
	case th.queue <- it:
	case <-rt.closed:
		rt.done()
	}
}

// sendData ships a data envelope to the destination thread, serializing
// when it crosses nodes.
func (rt *Runtime) sendData(srcNode int, op *dps.Op, obj dps.DataObject, frames []wireFrame, seq, dstThread int) {
	rt.addWork()
	coll := op.Collection()
	if dstThread < 0 || dstThread >= coll.Width() {
		rt.fail(fmt.Errorf("parallel: %s routed to thread %d outside width %d", op, dstThread, coll.Width()))
		return
	}
	dstNode := coll.Node(dstThread) % rt.cfg.Nodes
	if dstNode == srcNode {
		rt.route(item{kind: kindData, op: op, obj: obj, frames: frames, seq: seq}, dstThread)
		return
	}
	body, err := rt.encodeData(op, obj, frames, seq, dstThread)
	if err != nil {
		rt.fail(err)
		return
	}
	if err := rt.tr.Send(dstNode, transport.Message{From: srcNode, Kind: kindData, Body: body}); err != nil {
		rt.fail(err)
	}
}

// sendClosure informs the sink of an instance's final posted count.
func (rt *Runtime) sendClosure(srcNode int, oi *openInst, total int) {
	rt.addWork()
	sinkColl := oi.pair.Sink().Collection()
	dstNode := sinkColl.Node(oi.sinkThread) % rt.cfg.Nodes
	if dstNode == srcNode {
		rt.route(item{kind: kindClosure, op: oi.pair.Sink(), pair: oi.pair, instID: oi.id, total: total}, oi.sinkThread)
		return
	}
	b := serial.NewBuffer(32)
	b.U32(uint32(oi.pair.ID()))
	b.U64(oi.id)
	b.U32(uint32(total))
	b.U32(uint32(oi.sinkThread))
	if err := rt.tr.Send(dstNode, transport.Message{From: srcNode, Kind: kindClosure, Body: b.BytesOut()}); err != nil {
		rt.fail(err)
	}
}

// sendAck returns a flow-control credit to the posting node. Acks count as
// in-flight work so quiescence cannot be declared while a deferred post is
// still waiting for its credit.
func (rt *Runtime) sendAck(srcNode int, fr wireFrame) {
	rt.addWork()
	dstNode := int(fr.srcNode)
	if dstNode == srcNode {
		rt.nodes[dstNode].handleAck(fr.pairID, fr.instID)
		rt.done()
		return
	}
	b := serial.NewBuffer(16)
	b.U32(fr.pairID)
	b.U64(fr.instID)
	if err := rt.tr.Send(dstNode, transport.Message{From: srcNode, Kind: kindAck, Body: b.BytesOut()}); err != nil {
		rt.fail(err)
		rt.done()
	}
}

// encodeData frames a data envelope for the wire.
func (rt *Runtime) encodeData(op *dps.Op, obj dps.DataObject, frames []wireFrame, seq, dstThread int) ([]byte, error) {
	if rt.codec == nil {
		return nil, errors.New("parallel: cross-node traffic requires a Codec")
	}
	b := serial.NewBuffer(256)
	b.U32(uint32(op.ID()))
	b.U32(uint32(dstThread))
	b.U32(uint32(seq))
	b.U8(uint8(len(frames)))
	for _, f := range frames {
		b.U32(f.pairID)
		b.U64(f.instID)
		b.U32(f.srcNode)
		b.U32(f.srcThread)
		b.U32(f.sinkThread)
	}
	payload, err := rt.codec.Encode(obj)
	if err != nil {
		return nil, err
	}
	b.Bytes(payload)
	return b.BytesOut(), nil
}

// handleMessage decodes transport messages arriving at a node.
func (n *nodeState) handleMessage(msg transport.Message) {
	rt := n.rt
	switch msg.Kind {
	case kindData:
		r := serial.NewReader(msg.Body)
		opID := int(r.U32())
		dstThread := int(r.U32())
		seq := int(r.U32())
		nf := int(r.U8())
		frames := make([]wireFrame, nf)
		for i := range frames {
			frames[i] = wireFrame{
				pairID:     r.U32(),
				instID:     r.U64(),
				srcNode:    r.U32(),
				srcThread:  r.U32(),
				sinkThread: r.U32(),
			}
		}
		payload := r.Bytes()
		if r.Err() != nil {
			rt.fail(fmt.Errorf("parallel: corrupt data frame: %w", r.Err()))
			return
		}
		if opID < 0 || opID >= len(rt.graph.Ops()) {
			rt.fail(fmt.Errorf("parallel: unknown op id %d", opID))
			return
		}
		obj, err := rt.codec.Decode(payload)
		if err != nil {
			rt.fail(err)
			return
		}
		op := rt.graph.Ops()[opID]
		rt.route(item{kind: kindData, op: op, obj: obj, frames: frames, seq: seq}, dstThread)
	case kindClosure:
		r := serial.NewReader(msg.Body)
		pairID := r.U32()
		instID := r.U64()
		total := int(r.U32())
		dstThread := int(r.U32())
		pair := rt.pairs[pairID]
		if pair == nil || r.Err() != nil {
			rt.fail(fmt.Errorf("parallel: corrupt closure frame"))
			return
		}
		rt.route(item{kind: kindClosure, op: pair.Sink(), pair: pair, instID: instID, total: total}, dstThread)
	case kindAck:
		r := serial.NewReader(msg.Body)
		pairID := r.U32()
		instID := r.U64()
		if r.Err() != nil {
			rt.fail(fmt.Errorf("parallel: corrupt ack frame"))
			rt.done()
			return
		}
		n.handleAck(pairID, instID)
		rt.done()
	}
}

// handleAck returns a credit; if a deferred post was waiting, it ships now.
func (n *nodeState) handleAck(pairID uint32, instID uint64) {
	n.srcMu.Lock()
	si := n.srcInst[instKey{pairID, instID}]
	n.srcMu.Unlock()
	if si == nil {
		return
	}
	w := 0
	if pair := n.rt.pairs[pairID]; pair != nil {
		w = pair.Window()
	}
	var pp *pendingPost
	si.mu.Lock()
	si.inflight--
	if len(si.pending) > 0 && (w == 0 || si.inflight < w) {
		p := si.pending[0]
		si.pending = si.pending[1:]
		si.inflight++
		pp = &p
	}
	si.mu.Unlock()
	if pp != nil {
		n.rt.sendData(pp.srcNode, pp.op, pp.obj, pp.frames, pp.seq, pp.dstThread)
	}
}

func (n *nodeState) srcInstance(pairID uint32, instID uint64) *srcInstance {
	n.srcMu.Lock()
	defer n.srcMu.Unlock()
	k := instKey{pairID, instID}
	si := n.srcInst[k]
	if si == nil {
		si = newSrcInstance()
		n.srcInst[k] = si
	}
	return si
}
