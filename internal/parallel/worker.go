package parallel

import (
	"fmt"
	"runtime/debug"
	"time"

	"dpsim/internal/dps"
	"dpsim/internal/eventq"
)

// pendingPost is a flow-control-deferred post: the envelope is fully
// routed and ships as soon as a credit arrives. Unlike the simulated
// engine (which suspends the posting operation, as real DPS does), the
// real runtime lets the posting invocation continue — this keeps execution
// threads deadlock-free regardless of operation placement, at the price of
// slightly different timing semantics (documented in DESIGN.md).
type pendingPost struct {
	op        *dps.Op
	obj       dps.DataObject
	frames    []wireFrame
	seq       int
	dstThread int
	srcNode   int
}

// run is the execution-thread goroutine: it drains the queue, processing
// one item at a time (DPS threads are sequential execution contexts).
func (th *workerThread) run() {
	defer th.wg.Done()
	for it := range th.queue {
		th.process(it)
		th.node.rt.done()
	}
}

func (th *workerThread) process(it item) {
	rt := th.node.rt
	defer func() {
		if r := recover(); r != nil {
			rt.fail(fmt.Errorf("parallel: panic on %s[%d] in %s: %v\n%s",
				th.coll.Name(), th.idx, it.op, r, debug.Stack()))
		}
	}()
	switch it.kind {
	case kindClosure:
		si := th.sink(it.pair, it.instID, nil)
		si.total = it.total
		th.checkComplete(it.pair, it.instID, si)
	case kindData:
		op := it.op
		switch op.Kind() {
		case dps.KindSplit:
			ctx := &pctx{th: th, op: op, act: newActivation(it.frames), inFrames: it.frames, seq: it.seq}
			op.CallSplit(ctx, it.obj)
			th.closeActivation(ctx.act)
		case dps.KindLeaf:
			ctx := &pctx{th: th, op: op, inFrames: it.frames, seq: it.seq}
			op.CallLeaf(ctx, it.obj)
			if ctx.posts != 1 {
				rt.fail(fmt.Errorf("parallel: leaf %s posted %d objects, want exactly 1", op, ctx.posts))
			}
		case dps.KindMerge, dps.KindStream:
			if len(it.frames) == 0 {
				rt.fail(fmt.Errorf("parallel: object at %s carries no instance frame", op))
				return
			}
			top := it.frames[len(it.frames)-1]
			pair := rt.pairs[top.pairID]
			if pair == nil || pair.Sink() != op {
				rt.fail(fmt.Errorf("parallel: object at %s carries mismatched frame", op))
				return
			}
			si := th.sink(pair, top.instID, it.obj)
			if si.state == nil {
				si.state = op.NewState(it.obj)
			}
			si.parent = it.frames[:len(it.frames)-1]
			if op.Kind() == dps.KindStream && si.act == nil {
				si.act = newActivation(si.parent)
			}
			ctx := &pctx{th: th, op: op, inst: si, inFrames: it.frames, seq: it.seq}
			si.state.Absorb(ctx, it.obj)
			si.absorbed++
			if pair.Window() > 0 {
				rt.sendAck(th.node.id, top)
			}
			th.checkComplete(pair, top.instID, si)
		}
	}
}

// sink returns (creating if needed) the sink-side instance state.
func (th *workerThread) sink(pair *dps.Pair, instID uint64, first dps.DataObject) *sinkInstance {
	k := instKey{uint32(pair.ID()), instID}
	si := th.sinks[k]
	if si == nil {
		si = &sinkInstance{total: -1}
		th.sinks[k] = si
	}
	return si
}

// checkComplete runs Finish once the closure arrived and every posted
// object was absorbed.
func (th *workerThread) checkComplete(pair *dps.Pair, instID uint64, si *sinkInstance) {
	if si.finished || si.total < 0 || si.absorbed != si.total {
		return
	}
	si.finished = true
	op := pair.Sink()
	if si.state == nil {
		si.state = op.NewState(nil)
	}
	if op.Kind() == dps.KindStream && si.act == nil {
		si.act = newActivation(si.parent)
	}
	ctx := &pctx{th: th, op: op, inst: si, isFinish: true}
	si.state.Finish(ctx)
	if op.Kind() == dps.KindStream {
		th.closeActivation(si.act)
	}
	delete(th.sinks, instKey{uint32(pair.ID()), instID})
}

// closeActivation emits the closure messages of every opened instance.
func (th *workerThread) closeActivation(act *activation) {
	if act == nil {
		return
	}
	for _, oi := range act.order {
		oi.src.mu.Lock()
		total := oi.src.posted
		oi.src.mu.Unlock()
		th.node.rt.sendClosure(th.node.id, oi, total)
	}
}

// --- Ctx implementation ---

// pctx is the real runtime's operation context.
type pctx struct {
	th       *workerThread
	op       *dps.Op
	act      *activation   // split activations
	inst     *sinkInstance // absorb/finish invocations
	inFrames []wireFrame
	seq      int
	posts    int
	isFinish bool
}

func (c *pctx) activation() *activation {
	if c.act != nil {
		return c.act
	}
	if c.inst != nil {
		return c.inst.act
	}
	return nil
}

func (c *pctx) Post(obj dps.DataObject) { c.PostTo(0, obj) }

func (c *pctx) PostTo(edgeIdx int, obj dps.DataObject) {
	rt := c.th.node.rt
	if obj == nil {
		rt.fail(fmt.Errorf("parallel: %s posted nil", c.op))
		return
	}
	if edgeIdx < 0 || edgeIdx >= c.op.Outs() {
		rt.fail(fmt.Errorf("parallel: %s posted on edge %d of %d", c.op, edgeIdx, c.op.Outs()))
		return
	}
	edge := c.op.Out(edgeIdx)
	c.posts++
	srcNode := c.th.node.id
	if pair := edge.Pair(); pair != nil {
		act := c.activation()
		if act == nil {
			rt.fail(fmt.Errorf("parallel: %s cannot open pair instances here", c.op))
			return
		}
		oi := act.insts[pair]
		if oi == nil {
			id := rt.nextID.Add(1)
			width := pair.Sink().Collection().Width()
			st := pair.RouteInstance(obj, width)
			if st < 0 || st >= width {
				rt.fail(fmt.Errorf("parallel: %s instance routed to %d of %d", pair, st, width))
				return
			}
			oi = &openInst{
				pair: pair, id: id, sinkThread: st,
				src: c.th.node.srcInstance(uint32(pair.ID()), id),
			}
			act.insts[pair] = oi
			act.order = append(act.order, oi)
		}
		frames := append(append([]wireFrame(nil), act.parent...), wireFrame{
			pairID:     uint32(pair.ID()),
			instID:     oi.id,
			srcNode:    uint32(srcNode),
			srcThread:  uint32(c.th.idx),
			sinkThread: uint32(oi.sinkThread),
		})
		src := oi.src
		src.mu.Lock()
		seq := src.posted
		src.posted++
		var dst int
		if edge.To() == pair.Sink() {
			dst = oi.sinkThread
		} else {
			dst = edge.Route()(dps.Routing{Obj: obj, Width: edge.To().Collection().Width(), SrcThread: c.th.idx, Seq: seq})
		}
		if w := pair.Window(); w > 0 && src.inflight >= w {
			// Defer the fully routed post until a credit arrives.
			src.pending = append(src.pending, pendingPost{
				op: edge.To(), obj: obj, frames: frames, seq: seq,
				dstThread: dst, srcNode: srcNode,
			})
			src.mu.Unlock()
			return
		}
		src.inflight++
		src.mu.Unlock()
		rt.sendData(srcNode, edge.To(), obj, frames, seq, dst)
		return
	}
	// Plain edge: leaf pass-through or merge-finish output.
	frames := c.inFrames
	seq := c.seq
	if c.inst != nil {
		frames = c.inst.parent
		seq = 0
	}
	var dst int
	if edge.To().IsSink() {
		if len(frames) == 0 {
			rt.fail(fmt.Errorf("parallel: %s forwards to %s without an instance frame", c.op, edge.To()))
			return
		}
		top := frames[len(frames)-1]
		if rt.pairs[top.pairID].Sink() != edge.To() {
			rt.fail(fmt.Errorf("parallel: %s forwards to %s with mismatched frame", c.op, edge.To()))
			return
		}
		dst = int(top.sinkThread)
	} else {
		dst = edge.Route()(dps.Routing{Obj: obj, Width: edge.To().Collection().Width(), SrcThread: c.th.idx, Seq: seq})
	}
	rt.sendData(srcNode, edge.To(), obj, frames, seq, dst)
}

func (c *pctx) Compute(key string, work eventq.Duration, f func()) {
	if f != nil {
		f()
		return
	}
	if c.th.node.rt.cfg.SleepModelled && work > 0 {
		time.Sleep(time.Duration(work))
	}
}

func (c *pctx) Thread() int { return c.th.idx }
func (c *pctx) Width() int  { return c.op.Collection().Width() }
func (c *pctx) Node() int   { return c.th.node.id }
func (c *pctx) Now() eventq.Time {
	return eventq.Time(time.Since(c.th.node.rt.started).Nanoseconds())
}
func (c *pctx) Mode() dps.ExecMode    { return dps.ModeDirect }
func (c *pctx) NoAlloc() bool         { return false }
func (c *pctx) Store() dps.Store      { return c.th.store }
func (c *pctx) RunComputations() bool { return true }

func (c *pctx) Phase(name string) {
	rt := c.th.node.rt
	rt.phaseMu.Lock()
	rt.phases = append(rt.phases, Phase{Elapsed: time.Since(rt.started), Name: name})
	rt.phaseMu.Unlock()
}
