package parallel

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/linalg"
	"dpsim/internal/lu"
	"dpsim/internal/serial"
	"dpsim/internal/transport"
)

// --- test objects ---

type num struct{ V int64 }

func (n *num) MarshalDPS(w serial.Writer)          { w.I64(n.V) }
func (n *num) UnmarshalDPS(r *serial.Reader) error { n.V = r.I64(); return r.Err() }

func testCodec() *transport.Codec {
	c := transport.NewCodec()
	c.Register(100, func() transport.Decodable { return &num{} })
	return c
}

// sumApp builds split -> leaf(double) -> merge(sum into shared counter).
func sumApp(nodes, width, fan int, total *atomic.Int64) (*dps.Graph, *dps.Op) {
	master := dps.NewCollection("m", 1, nodes)
	workers := dps.NewCollection("w", width, nodes)
	g := dps.NewGraph("sum")
	split := g.Split("split", master, func(ctx dps.Ctx, in dps.DataObject) {
		base := in.(*num).V
		for i := 0; i < fan; i++ {
			ctx.Post(&num{V: base + int64(i)})
		}
	})
	leaf := g.Leaf("double", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&num{V: in.(*num).V * 2})
	})
	merge := g.Merge("sum", master, func(dps.DataObject) dps.MergeState {
		return &sumMerge{total: total}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	return g, split
}

type sumMerge struct {
	total *atomic.Int64
	local int64
}

func (s *sumMerge) Absorb(ctx dps.Ctx, in dps.DataObject) { s.local += in.(*num).V }
func (s *sumMerge) Finish(ctx dps.Ctx)                    { s.total.Store(s.local) }

func TestLocalTransportFanOut(t *testing.T) {
	var total atomic.Int64
	g, split := sumApp(4, 4, 16, &total)
	rt, err := New(Config{Graph: g, Nodes: 4, Codec: testCodec()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{V: 10})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	// sum of 2*(10..25) = 2*(16*10+120) = 560
	if total.Load() != 560 {
		t.Fatalf("sum = %d, want 560", total.Load())
	}
}

func TestTCPTransportFanOut(t *testing.T) {
	var total atomic.Int64
	g, split := sumApp(3, 3, 9, &total)
	rt, err := New(Config{Graph: g, Nodes: 3, Codec: testCodec(), UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{V: 1})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	// sum of 2*(1..9) = 90
	if total.Load() != 90 {
		t.Fatalf("sum = %d, want 90", total.Load())
	}
}

func TestSingleNodeNoCodecNeeded(t *testing.T) {
	var total atomic.Int64
	g, split := sumApp(1, 2, 8, &total)
	rt, err := New(Config{Graph: g, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{V: 0})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 56 { // 2*(0+..+7) = 56
		t.Fatalf("sum = %d", total.Load())
	}
}

func TestFlowControlDelivery(t *testing.T) {
	var total atomic.Int64
	g, split := sumApp(2, 2, 40, &total)
	g.Pairs()[0].SetWindow(3)
	rt, err := New(Config{Graph: g, Nodes: 2, Codec: testCodec()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{V: 0})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 2*(40*39/2) {
		t.Fatalf("windowed sum = %d, want %d", total.Load(), 2*(40*39/2))
	}
}

func TestLeafViolationSurfaces(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("bad")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Post(&num{})
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) {})
	merge := g.Merge("m", master, func(dps.DataObject) dps.MergeState { return &sumMerge{total: &atomic.Int64{}} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	rt, err := New(Config{Graph: g, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{})
	err = rt.Wait()
	if err == nil || !strings.Contains(err.Error(), "exactly 1") {
		t.Fatalf("leaf violation not surfaced: %v", err)
	}
}

func TestUserPanicSurfaces(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("boom")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		panic("bang")
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("m", master, func(dps.DataObject) dps.MergeState { return &sumMerge{total: &atomic.Int64{}} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	rt, err := New(Config{Graph: g, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{})
	err = rt.Wait()
	if err == nil || !strings.Contains(err.Error(), "bang") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

func TestStreamOnRealRuntime(t *testing.T) {
	// split -> stream(relay, posts immediately) -> leaf -> merge.
	var total atomic.Int64
	master := dps.NewCollection("m", 1, 2)
	workers := dps.NewCollection("w", 2, 2)
	g := dps.NewGraph("stream")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 1; i <= 6; i++ {
			ctx.Post(&num{V: int64(i)})
		}
	})
	relay := g.Stream("relay", master, func(dps.DataObject) dps.MergeState { return &relayState{} })
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	sink := g.Merge("sink", master, func(dps.DataObject) dps.MergeState { return &sumMerge{total: &total} })
	g.Connect(split, relay, nil)
	e := g.Connect(relay, leaf, dps.RoundRobin)
	g.Connect(leaf, sink, nil)
	g.PairOps(split, relay, nil)
	g.PairOps(relay, sink, nil, e)
	rt, err := New(Config{Graph: g, Nodes: 2, Codec: testCodec()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 21 {
		t.Fatalf("stream sum = %d, want 21", total.Load())
	}
}

type relayState struct{}

func (relayState) Absorb(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) }
func (relayState) Finish(dps.Ctx)                        {}

// TestRealLUOverTCP runs the full LU application on the real runtime with
// TCP transport and verifies the distributed factors: the paper's claim
// that the real and simulated applications run identically.
func TestRealLUOverTCP(t *testing.T) {
	cfg := lu.Config{N: 24, R: 6, Nodes: 2, Pipelined: true}
	app, err := lu.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	codec := transport.NewCodec()
	lu.RegisterCodec(codec)
	rt, err := New(Config{Graph: app.Graph, Nodes: 2, Codec: codec, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	orig := app.PrepareOn(rt.Store, 42)
	rt.Inject(app.Init, 0, &lu.Seed{})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	got := app.AssembleFrom(rt.Store)
	ref := orig.Clone()
	if _, err := linalg.BlockedLU(ref, cfg.R); err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(ref, 1e-9*float64(cfg.N)) {
		t.Fatalf("real-runtime LU differs from reference by %g", got.MaxAbsDiff(ref))
	}
	if len(rt.Phases()) != cfg.N/cfg.R {
		t.Fatalf("phases = %d, want %d iterations", len(rt.Phases()), cfg.N/cfg.R)
	}
}

func TestRealLUWithFlowControlLocal(t *testing.T) {
	cfg := lu.Config{N: 24, R: 6, Nodes: 3, Pipelined: true, Window: 2}
	app, err := lu.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	codec := transport.NewCodec()
	lu.RegisterCodec(codec)
	rt, err := New(Config{Graph: app.Graph, Nodes: 3, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	orig := app.PrepareOn(rt.Store, 7)
	rt.Inject(app.Init, 0, &lu.Seed{})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	got := app.AssembleFrom(rt.Store)
	ref := orig.Clone()
	if _, err := linalg.BlockedLU(ref, cfg.R); err != nil {
		t.Fatal(err)
	}
	if !got.Equalish(ref, 1e-9*float64(cfg.N)) {
		t.Fatalf("windowed real LU differs by %g", got.MaxAbsDiff(ref))
	}
}

func TestSleepModelled(t *testing.T) {
	master := dps.NewCollection("m", 1, 1)
	g := dps.NewGraph("sleep")
	ran := false
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("w", eventq.Millisecond, nil) // sleeps 1ms
		ran = true
		ctx.Post(&num{})
	})
	leaf := g.Leaf("l", master, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("m", master, func(dps.DataObject) dps.MergeState { return &sumMerge{total: &atomic.Int64{}} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)
	rt, err := New(Config{Graph: g, Nodes: 1, SleepModelled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Inject(split, 0, &num{})
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("split did not run")
	}
}

func TestConcurrentInjections(t *testing.T) {
	// Several root instances running concurrently must not interfere.
	var mu sync.Mutex
	sums := map[int64]int64{}
	master := dps.NewCollection("m", 2, 2)
	workers := dps.NewCollection("w", 4, 2)
	g := dps.NewGraph("multi")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 5; i++ {
			ctx.Post(&num{V: in.(*num).V})
		}
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) { ctx.Post(in) })
	merge := g.Merge("m", master, func(first dps.DataObject) dps.MergeState {
		return &keyedSum{mu: &mu, sums: sums}
	})
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, func(first dps.DataObject, width int) int {
		return int(first.(*num).V) % width
	})
	rt, err := New(Config{Graph: g, Nodes: 2, Codec: testCodec()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for v := int64(1); v <= 6; v++ {
		rt.Inject(split, int(v)%2, &num{V: v})
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for v := int64(1); v <= 6; v++ {
		if sums[v] != 5*v {
			t.Fatalf("instance %d sum = %d, want %d", v, sums[v], 5*v)
		}
	}
}

type keyedSum struct {
	mu   *sync.Mutex
	sums map[int64]int64
	key  int64
	acc  int64
}

func (k *keyedSum) Absorb(ctx dps.Ctx, in dps.DataObject) {
	k.key = in.(*num).V
	k.acc += in.(*num).V
}

func (k *keyedSum) Finish(ctx dps.Ctx) {
	k.mu.Lock()
	k.sums[k.key] = k.acc
	k.mu.Unlock()
}
