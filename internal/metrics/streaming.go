package metrics

// This file holds the streaming (single-pass, O(1)-memory) summary
// statistics for the sweep aggregation path: replications fold into
// these accumulators as they complete instead of pooling per-job slices,
// and the Welford variance yields the confidence intervals the sweep
// exports.

import (
	"encoding/json"
	"math"
)

// Welford accumulates count, mean and variance in one numerically stable
// pass (Welford's online algorithm). The zero value is ready to use.
//
// Note that the streamed Mean is NOT bit-identical to a naive
// sum-then-divide over the same values: callers that must reproduce an
// existing sum-based mean exactly (the sweep's golden columns) keep
// their own running sum and use Welford only for the variance-derived
// statistics.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations folded so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample (n-1) variance, 0 for fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// welfordState is the serialized form of a Welford accumulator. JSON
// float64 encoding is shortest-round-trip, so a marshal/unmarshal cycle
// restores the exact bits — checkpointed sweep aggregates resume
// bit-identical (finite values only, which is all Add can produce from
// finite inputs).
type welfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// MarshalJSON implements json.Marshaler, exposing the accumulator state
// for checkpointing.
func (w Welford) MarshalJSON() ([]byte, error) {
	return json.Marshal(welfordState{N: w.n, Mean: w.mean, M2: w.m2})
}

// UnmarshalJSON implements json.Unmarshaler, restoring a checkpointed
// accumulator bit-exactly.
func (w *Welford) UnmarshalJSON(data []byte) error {
	var st welfordState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*w = Welford{n: st.N, mean: st.Mean, m2: st.M2}
	return nil
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean, 1.96·s/√n — 0 for fewer than two observations.
// (For replication counts below ~30 the true Student-t interval is
// somewhat wider; the normal approximation keeps the column a pure
// function of mean and variance.)
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Stddev() / math.Sqrt(float64(w.n))
}

// MinMax tracks the extremes of a stream. The zero value is ready to
// use; before any observation both extremes report 0.
type MinMax struct {
	n        int
	min, max float64
}

// Add folds one observation.
func (m *MinMax) Add(x float64) {
	if m.n == 0 || x < m.min {
		m.min = x
	}
	if m.n == 0 || x > m.max {
		m.max = x
	}
	m.n++
}

// N returns the number of observations folded so far.
func (m *MinMax) N() int { return m.n }

// Min returns the smallest observation (0 for an empty stream).
func (m *MinMax) Min() float64 { return m.min }

// Max returns the largest observation (0 for an empty stream).
func (m *MinMax) Max() float64 { return m.max }

// minMaxState is the serialized form of a MinMax tracker (see
// welfordState for the exact-restore contract).
type minMaxState struct {
	N   int     `json:"n"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (m MinMax) MarshalJSON() ([]byte, error) {
	return json.Marshal(minMaxState{N: m.n, Min: m.min, Max: m.max})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MinMax) UnmarshalJSON(data []byte) error {
	var st minMaxState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	*m = MinMax{n: st.N, min: st.Min, max: st.Max}
	return nil
}
