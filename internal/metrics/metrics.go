package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dpsim/internal/core"
	"dpsim/internal/eventq"
)

// IterationStat describes one iteration (phase) of a run.
type IterationStat struct {
	// Index is the iteration number (0-based).
	Index int
	// Start and End bound the iteration in virtual time.
	Start, End eventq.Time
	// Elapsed is End-Start.
	Elapsed eventq.Duration
	// Nodes is the number of allocated compute nodes during the
	// iteration (the maximum, if the allocation changed mid-iteration).
	Nodes int
	// SerialWork is the single-node compute time of the iteration's
	// operations (supplied by the application's cost model).
	SerialWork eventq.Duration
	// Efficiency is SerialWork / (Nodes × Elapsed): the fraction of the
	// allocated capacity doing useful work — the paper's dynamic
	// efficiency at this iteration step.
	Efficiency float64
}

// Iterations slices a run into per-iteration statistics from the engine's
// phase marks ("iter:k") and allocation history. serialWork(k) supplies
// the per-iteration serial baseline; end is the total elapsed time.
func Iterations(phases []core.PhaseMark, allocs []core.AllocMark, end eventq.Time, serialWork func(k int) eventq.Duration) []IterationStat {
	var iters []IterationStat
	for i, ph := range phases {
		if !strings.HasPrefix(ph.Name, "iter:") {
			continue
		}
		var idx int
		fmt.Sscanf(ph.Name, "iter:%d", &idx)
		stop := end
		if i+1 < len(phases) {
			stop = phases[i+1].Time
		}
		st := IterationStat{
			Index:      idx,
			Start:      ph.Time,
			End:        stop,
			Elapsed:    eventq.Duration(stop - ph.Time),
			Nodes:      nodesDuring(allocs, ph.Time, stop),
			SerialWork: serialWork(idx),
		}
		if st.Elapsed > 0 && st.Nodes > 0 {
			st.Efficiency = float64(st.SerialWork) / (float64(st.Nodes) * float64(st.Elapsed))
		}
		iters = append(iters, st)
	}
	return iters
}

// nodesDuring returns the maximum allocated-node count over [from, to).
func nodesDuring(allocs []core.AllocMark, from, to eventq.Time) int {
	nodes := 0
	current := 0
	for _, a := range allocs {
		if a.Time <= from {
			current = a.Nodes
			continue
		}
		if a.Time >= to {
			break
		}
		if a.Nodes > current {
			current = a.Nodes
		}
		if current > nodes {
			nodes = current
		}
	}
	if current > nodes {
		nodes = current
	}
	return nodes
}

// MeanEfficiency returns the time-weighted dynamic efficiency over a run.
func MeanEfficiency(iters []IterationStat) float64 {
	var num, den float64
	for _, it := range iters {
		num += float64(it.SerialWork)
		den += float64(it.Nodes) * float64(it.Elapsed)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// --- prediction error statistics (Fig. 13) ---

// ErrorSample is one measured/predicted pair.
type ErrorSample struct {
	Label     string
	Measured  float64
	Predicted float64
}

// Err returns the relative prediction error (predicted-measured)/measured.
func (s ErrorSample) Err() float64 {
	if s.Measured == 0 {
		return 0
	}
	return (s.Predicted - s.Measured) / s.Measured
}

// ErrorStats summarizes a set of prediction errors.
type ErrorStats struct {
	N           int
	MeanAbs     float64
	Max         float64 // largest |error|
	Within4Pct  float64 // fraction within ±4%
	Within6Pct  float64
	Within12Pct float64
}

// Stats computes the paper's accuracy summary (§8: "71.4% of all
// predictions are within ±4% accuracy, 81.6% within ±6%, and more than
// 95% within ±12%").
func Stats(samples []ErrorSample) ErrorStats {
	st := ErrorStats{N: len(samples)}
	if len(samples) == 0 {
		return st
	}
	var w4, w6, w12 int
	for _, s := range samples {
		e := math.Abs(s.Err())
		st.MeanAbs += e
		if e > st.Max {
			st.Max = e
		}
		if e <= 0.04 {
			w4++
		}
		if e <= 0.06 {
			w6++
		}
		if e <= 0.12 {
			w12++
		}
	}
	n := float64(len(samples))
	st.MeanAbs /= n
	st.Within4Pct = float64(w4) / n
	st.Within6Pct = float64(w6) / n
	st.Within12Pct = float64(w12) / n
	return st
}

// Histogram bins prediction errors into 2%-wide buckets centered like the
// paper's Fig. 13 (−16% … +16%).
type Histogram struct {
	// Edges[i] is the lower bound of bucket i; buckets are 2% wide.
	Edges  []float64
	Counts []int
	// Underflow and Overflow count samples outside the edge range.
	Underflow, Overflow int
}

// BuildHistogram bins the samples' relative errors.
func BuildHistogram(samples []ErrorSample) Histogram {
	const lo, hi, width = -0.16, 0.16, 0.02
	n := int((hi - lo) / width)
	h := Histogram{Edges: make([]float64, n), Counts: make([]int, n)}
	for i := range h.Edges {
		h.Edges[i] = lo + float64(i)*width
	}
	for _, s := range samples {
		e := s.Err()
		switch {
		case e < lo:
			h.Underflow++
		case e >= hi:
			h.Overflow++
		default:
			h.Counts[int((e-lo)/width)]++
		}
	}
	return h
}

// Render draws the histogram as rows of hashes, largest-to-zero buckets in
// error order.
func (h Histogram) Render() string {
	var b strings.Builder
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "%+6.0f%% | %-3d %s\n", h.Edges[i]*100, c, strings.Repeat("#", c))
	}
	if h.Underflow > 0 || h.Overflow > 0 {
		fmt.Fprintf(&b, "outside | %d under, %d over\n", h.Underflow, h.Overflow)
	}
	return b.String()
}

// --- small summary statistics helpers ---

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Stddev returns the sample standard deviation of v.
func Stddev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// Median returns the median of v (0 for empty input).
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-quantile of v for p in [0, 1], using linear
// interpolation between order statistics (the common "type 7" estimator).
// It returns 0 for empty input, NaN for NaN p, and clamps p to [0, 1].
// The input is never modified: a copy is sorted. Callers that need
// several quantiles of the same data should sort once themselves and use
// PercentileSorted, which avoids the per-call copy (and therefore sorts
// nothing — its input must already be sorted ascending).
func Percentile(v []float64, p float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile over an already-sorted slice, avoiding
// the per-call copy and sort when several quantiles of the same data are
// needed.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
