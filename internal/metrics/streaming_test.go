package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

// TestWelfordMatchesTwoPass: the streaming mean/stddev must agree with
// the two-pass Mean/Stddev helpers to floating-point accuracy.
func TestWelfordMatchesTwoPass(t *testing.T) {
	cases := [][]float64{
		{},
		{3.5},
		{1, 2, 3, 4, 5},
		{1e9, 1e9 + 1, 1e9 + 2}, // catastrophic for naive sum-of-squares
		{-4, 7, 0.25, 1e-9, 12345.678},
	}
	for _, vs := range cases {
		var w Welford
		for _, x := range vs {
			w.Add(x)
		}
		if w.N() != len(vs) {
			t.Fatalf("N = %d, want %d", w.N(), len(vs))
		}
		if got, want := w.Mean(), Mean(vs); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%v: mean %g, want %g", vs, got, want)
		}
		if got, want := w.Stddev(), Stddev(vs); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("%v: stddev %g, want %g", vs, got, want)
		}
	}
}

// TestWelfordCI95: the half-width is 1.96·s/√n, and degenerate streams
// report 0 instead of NaN.
func TestWelfordCI95(t *testing.T) {
	var w Welford
	if w.CI95() != 0 {
		t.Fatal("empty CI95 != 0")
	}
	w.Add(5)
	if w.CI95() != 0 {
		t.Fatal("single-sample CI95 != 0")
	}
	w.Add(7)
	w.Add(9)
	want := 1.96 * Stddev([]float64{5, 7, 9}) / math.Sqrt(3)
	if got := w.CI95(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %g, want %g", got, want)
	}
}

func TestMinMax(t *testing.T) {
	var m MinMax
	if m.Min() != 0 || m.Max() != 0 || m.N() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{3, -1, 7, 2} {
		m.Add(x)
	}
	if m.Min() != -1 || m.Max() != 7 || m.N() != 4 {
		t.Fatalf("min/max/n = %g/%g/%d", m.Min(), m.Max(), m.N())
	}
	// A stream never crossing zero must not report a phantom 0 extreme.
	var neg MinMax
	neg.Add(-5)
	neg.Add(-2)
	if neg.Min() != -5 || neg.Max() != -2 {
		t.Fatalf("negative stream min/max = %g/%g", neg.Min(), neg.Max())
	}
}

// TestPercentileNonMutating: Percentile must leave its input untouched
// (it sorts a copy), and PercentileSorted documents the sorted-input
// contract instead.
func TestPercentileNonMutating(t *testing.T) {
	v := []float64{9, 1, 5, 3}
	_ = Percentile(v, 0.5)
	if v[0] != 9 || v[1] != 1 || v[2] != 5 || v[3] != 3 {
		t.Fatalf("input mutated: %v", v)
	}
}

// TestPercentileEdges pins the type-7 interpolation at the boundaries.
func TestPercentileEdges(t *testing.T) {
	cases := []struct {
		name string
		v    []float64
		p    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty p=0", []float64{}, 0, 0},
		{"single p=0", []float64{42}, 0, 42},
		{"single p=0.5", []float64{42}, 0.5, 42},
		{"single p=1", []float64{42}, 1, 42},
		{"p=0 is min", []float64{7, 1, 5}, 0, 1},
		{"p=1 is max", []float64{7, 1, 5}, 1, 7},
		{"p<0 clamps to min", []float64{7, 1, 5}, -3, 1},
		{"p>1 clamps to max", []float64{7, 1, 5}, 2, 7},
		{"midpoint interpolates", []float64{10, 20}, 0.5, 15},
		{"type-7 quartile", []float64{1, 2, 3, 4}, 0.25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(c.v, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %g) = %g, want %g", c.name, c.v, c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN p = %g, want NaN", got)
	}
}

// TestWelfordJSONRoundTrip: checkpointed accumulators must restore to
// the exact bit pattern, or a resumed sweep's exports drift from the
// uninterrupted run.
func TestWelfordJSONRoundTrip(t *testing.T) {
	var w Welford
	for _, x := range []float64{3.1, 1.0 / 3.0, -2.5e-17, 41.99999999999999} {
		w.Add(x)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got Welford
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != w.N() ||
		math.Float64bits(got.Mean()) != math.Float64bits(w.Mean()) ||
		math.Float64bits(got.Variance()) != math.Float64bits(w.Variance()) {
		t.Fatalf("round trip lost bits: %+v vs %+v", got, w)
	}
	var zero Welford
	data, err = json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	var back Welford
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 || back.Mean() != 0 {
		t.Fatalf("zero value did not round trip: %+v", back)
	}
}

// TestMinMaxJSONRoundTrip: same exactness contract for the extremes
// tracker, including the empty state that renders as null extremes.
func TestMinMaxJSONRoundTrip(t *testing.T) {
	var m MinMax
	for _, x := range []float64{0.1, -7.25, 1e300} {
		m.Add(x)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got MinMax
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != m.N() ||
		math.Float64bits(got.Min()) != math.Float64bits(m.Min()) ||
		math.Float64bits(got.Max()) != math.Float64bits(m.Max()) {
		t.Fatalf("round trip lost bits: %+v vs %+v", got, m)
	}
	var zero, back MinMax
	data, err = json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 {
		t.Fatalf("zero value did not round trip: %+v", back)
	}
}
