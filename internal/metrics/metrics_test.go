package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dpsim/internal/core"
	"dpsim/internal/eventq"
)

func sec(s float64) eventq.Time { return eventq.Time(eventq.DurationOf(s)) }

func TestIterationsSlicing(t *testing.T) {
	phases := []core.PhaseMark{
		{Time: sec(0), Name: "iter:0"},
		{Time: sec(10), Name: "iter:1"},
		{Time: sec(15), Name: "iter:2"},
	}
	allocs := []core.AllocMark{{Time: 0, Nodes: 4}}
	serial := func(k int) eventq.Duration { return eventq.DurationOf(float64(20 - k*5)) }
	iters := Iterations(phases, allocs, sec(18), serial)
	if len(iters) != 3 {
		t.Fatalf("iterations = %d", len(iters))
	}
	if iters[0].Elapsed != eventq.DurationOf(10) || iters[2].Elapsed != eventq.DurationOf(3) {
		t.Fatalf("elapsed wrong: %+v", iters)
	}
	// iter 0: 20s serial on 4 nodes over 10s → eff 0.5
	if math.Abs(iters[0].Efficiency-0.5) > 1e-9 {
		t.Fatalf("eff = %v, want 0.5", iters[0].Efficiency)
	}
}

func TestIterationsAllocationChange(t *testing.T) {
	phases := []core.PhaseMark{
		{Time: sec(0), Name: "iter:0"},
		{Time: sec(10), Name: "iter:1"},
	}
	allocs := []core.AllocMark{
		{Time: 0, Nodes: 8},
		{Time: sec(10), Nodes: 4},
	}
	serial := func(int) eventq.Duration { return eventq.DurationOf(8) }
	iters := Iterations(phases, allocs, sec(14), serial)
	if iters[0].Nodes != 8 {
		t.Fatalf("iter0 nodes = %d, want 8", iters[0].Nodes)
	}
	if iters[1].Nodes != 4 {
		t.Fatalf("iter1 nodes = %d, want 4", iters[1].Nodes)
	}
	// iter1: 8s serial / (4 nodes × 4s) = 0.5
	if math.Abs(iters[1].Efficiency-0.5) > 1e-9 {
		t.Fatalf("iter1 eff = %v", iters[1].Efficiency)
	}
}

func TestIterationsIgnoresOtherPhases(t *testing.T) {
	phases := []core.PhaseMark{
		{Time: 0, Name: "setup"},
		{Time: sec(1), Name: "iter:0"},
	}
	iters := Iterations(phases, []core.AllocMark{{Nodes: 1}}, sec(2), func(int) eventq.Duration { return eventq.DurationOf(1) })
	if len(iters) != 1 || iters[0].Index != 0 {
		t.Fatalf("iters = %+v", iters)
	}
}

func TestMeanEfficiency(t *testing.T) {
	iters := []IterationStat{
		{SerialWork: eventq.DurationOf(10), Nodes: 2, Elapsed: eventq.DurationOf(10)},
		{SerialWork: eventq.DurationOf(5), Nodes: 2, Elapsed: eventq.DurationOf(5)},
	}
	// (10+5) / (2*10 + 2*5) = 0.5
	if m := MeanEfficiency(iters); math.Abs(m-0.5) > 1e-9 {
		t.Fatalf("mean eff = %v", m)
	}
	if MeanEfficiency(nil) != 0 {
		t.Fatal("empty mean eff not 0")
	}
}

func TestErrorSample(t *testing.T) {
	s := ErrorSample{Measured: 100, Predicted: 104}
	if math.Abs(s.Err()-0.04) > 1e-12 {
		t.Fatalf("err = %v", s.Err())
	}
	if (ErrorSample{Measured: 0, Predicted: 5}).Err() != 0 {
		t.Fatal("zero-measured err not 0")
	}
}

func TestStatsBands(t *testing.T) {
	samples := []ErrorSample{
		{Measured: 100, Predicted: 101}, // 1%
		{Measured: 100, Predicted: 97},  // -3%
		{Measured: 100, Predicted: 105}, // 5%
		{Measured: 100, Predicted: 111}, // 11%
		{Measured: 100, Predicted: 120}, // 20%
	}
	st := Stats(samples)
	if st.N != 5 {
		t.Fatalf("N = %d", st.N)
	}
	if math.Abs(st.Within4Pct-0.4) > 1e-9 {
		t.Fatalf("within4 = %v", st.Within4Pct)
	}
	if math.Abs(st.Within6Pct-0.6) > 1e-9 {
		t.Fatalf("within6 = %v", st.Within6Pct)
	}
	if math.Abs(st.Within12Pct-0.8) > 1e-9 {
		t.Fatalf("within12 = %v", st.Within12Pct)
	}
	if math.Abs(st.Max-0.20) > 1e-9 {
		t.Fatalf("max = %v", st.Max)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.N != 0 || st.MeanAbs != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestHistogramBinning(t *testing.T) {
	samples := []ErrorSample{
		{Measured: 100, Predicted: 100}, // 0% → bucket [0,2)
		{Measured: 100, Predicted: 101}, // 1% → bucket [0,2)
		{Measured: 100, Predicted: 97},  // -3% → bucket [-4,-2)
		{Measured: 100, Predicted: 150}, // 50% → overflow
		{Measured: 100, Predicted: 50},  // -50% → underflow
	}
	h := BuildHistogram(samples)
	if len(h.Counts) != 16 {
		t.Fatalf("buckets = %d", len(h.Counts))
	}
	zeroBucket := 8 // [-16..0) is 8 buckets, so [0,2) is index 8
	if h.Counts[zeroBucket] != 2 {
		t.Fatalf("zero bucket = %d, want 2", h.Counts[zeroBucket])
	}
	if h.Counts[6] != 1 { // [-4,-2)
		t.Fatalf("[-4,-2) bucket = %d", h.Counts[6])
	}
	if h.Overflow != 1 || h.Underflow != 1 {
		t.Fatalf("overflow/underflow = %d/%d", h.Overflow, h.Underflow)
	}
	total := h.Underflow + h.Overflow
	for _, c := range h.Counts {
		total += c
	}
	if total != len(samples) {
		t.Fatalf("histogram loses samples: %d != %d", total, len(samples))
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	prop := func(errsRaw []int8) bool {
		var samples []ErrorSample
		for _, e := range errsRaw {
			samples = append(samples, ErrorSample{Measured: 100, Predicted: 100 + float64(e)})
		}
		h := BuildHistogram(samples)
		total := h.Underflow + h.Overflow
		for _, c := range h.Counts {
			total += c
		}
		return total == len(samples)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := BuildHistogram([]ErrorSample{{Measured: 100, Predicted: 101}})
	out := h.Render()
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
}

func TestSummaryHelpers(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if Mean(v) != 2.5 {
		t.Fatalf("mean = %v", Mean(v))
	}
	if Median(v) != 2.5 {
		t.Fatalf("median = %v", Median(v))
	}
	if Median([]float64{5, 1, 9}) != 5 {
		t.Fatal("odd median wrong")
	}
	if s := Stddev(v); math.Abs(s-1.2909944) > 1e-6 {
		t.Fatalf("stddev = %v", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty helpers not 0")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{4, 1, 3, 2, 5}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(v, 1); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(v, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Linear interpolation between order statistics: p75 of 1..5 is 4.
	if got := Percentile(v, 0.75); got != 4 {
		t.Fatalf("p75 = %v", got)
	}
	if got := Percentile(v, 0.9); math.Abs(got-4.6) > 1e-12 {
		t.Fatalf("p90 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := Percentile(v, -3); got != 1 {
		t.Fatalf("clamped low = %v", got)
	}
	if got := Percentile(v, 7); got != 5 {
		t.Fatalf("clamped high = %v", got)
	}
	if v[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileNaNAndSorted(t *testing.T) {
	v := []float64{4, 1, 3, 2, 5}
	if got := Percentile(v, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("NaN p = %v, want NaN", got)
	}
	sorted := []float64{1, 2, 3, 4, 5}
	if got := PercentileSorted(sorted, 0.75); got != 4 {
		t.Fatalf("sorted p75 = %v", got)
	}
	if got := PercentileSorted(nil, 0.5); got != 0 {
		t.Fatalf("sorted empty = %v", got)
	}
}
