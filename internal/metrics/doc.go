// Package metrics computes the evaluation quantities of the paper and
// of the cluster testbed built on it.
//
// For the paper's figures: dynamic efficiency (§1, §8, Fig. 11),
// per-iteration timings, prediction errors and their histogram
// (Fig. 13).
//
// For the sweep harness (internal/sweep): exact sample percentiles
// (Percentile, PercentileSorted — non-mutating, interpolation-free
// order statistics) and streaming aggregators that fold unbounded
// observation streams in O(1) memory — Welford's online mean/variance
// with a 95% normal-approximation confidence half-width (Welford.CI95)
// and streamed exact extremes (MinMax). The streaming forms exist so a
// sweep can aggregate per-cell statistics as replications complete
// without retaining every per-job sample; only exact percentiles still
// pool values.
package metrics
