package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical first outputs")
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(9).Fork()
	b := New(9).Fork()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("forks of identical parents diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d of 7 values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniform(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) out of range: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestLogNormalUnitMean(t *testing.T) {
	s := New(19)
	for _, cv := range []float64{0.01, 0.05, 0.2} {
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += s.LogNormal(cv)
		}
		mean := sum / n
		if math.Abs(mean-1) > 0.02 {
			t.Fatalf("LogNormal(cv=%v) mean %v too far from 1", cv, mean)
		}
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	s := New(23)
	for i := 0; i < 10; i++ {
		if v := s.LogNormal(0); v != 1 {
			t.Fatalf("LogNormal(0) = %v, want exactly 1", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(29)
	for i := 0; i < 100000; i++ {
		if v := s.LogNormal(0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(31)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp(2.5) mean %v too far from 2.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Property(t *testing.T) {
	// Property: the same seed always yields the same first output, and
	// consecutive outputs are not all identical (stream advances).
	prop := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		x1, x2, x3 := a.Uint64(), a.Uint64(), a.Uint64()
		y1 := b.Uint64()
		return x1 == y1 && !(x1 == x2 && x2 == x3)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkLogNormal(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.LogNormal(0.03)
	}
	_ = sink
}
