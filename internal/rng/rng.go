// Package rng provides a small, fast, deterministic pseudo-random number
// generator and the distributions used by the virtual cluster testbed.
//
// All randomness in the repository flows through this package so that a
// simulation seed fully determines a virtual timeline. The generator is
// splitmix64 (Steele, Lea, Flood 2014): a 64-bit state advanced by a Weyl
// sequence and finalized by a variant of the MurmurHash3 finalizer. It is
// not cryptographically secure; it is statistically solid, allocation-free
// and trivially seedable, which is what a reproducible simulator needs.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers.
// The zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent child stream from the current state without
// disturbing determinism: the child is seeded from the next output mixed
// with a fixed odd constant, so sibling forks are decorrelated.
func (s *Source) Fork() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal deviate (Box–Muller, polar form avoided
// for determinism of consumed stream length: exactly two Uint64 per call).
func (s *Source) Norm() float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a deviate with E[X] = 1 and the given coefficient of
// variation cv (standard deviation / mean). It models multiplicative
// execution-time noise: durations are scaled by a LogNormal sample.
// cv = 0 returns exactly 1.
func (s *Source) LogNormal(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := -sigma2 / 2 // so that E[exp(N(mu, sigma2))] == 1
	return math.Exp(mu + math.Sqrt(sigma2)*s.Norm())
}

// Exp returns an exponential deviate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Weibull returns a Weibull deviate with the given mean and shape k > 0.
// The scale is derived from the mean via λ = mean/Γ(1+1/k), so Weibull and
// Exp with equal means are directly comparable (k = 1 reduces to the
// exponential law). Weibull time-to-failure with k < 1 models infant
// mortality, k > 1 wear-out — the standard reliability laws for compute
// node failure processes.
func (s *Source) Weibull(mean, shape float64) float64 {
	if shape <= 0 {
		panic("rng: Weibull called with shape <= 0")
	}
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	scale := mean / math.Gamma(1+1/shape)
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
