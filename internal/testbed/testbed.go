// Package testbed implements the virtual cluster that stands in for the
// paper's physical testbed: eight Sun UltraSparc II 440 MHz workstations
// connected by switched full-duplex Fast Ethernet (paper §8). Runs on this
// platform produce the "Measurement" series of every figure; the simulator
// platform (internal/core.SimPlatform with calibrated durations) produces
// the "Prediction" series. Prediction error then arises from genuine model
// mismatch, as it does between the paper's simulator and its real cluster.
//
// The testbed is deliberately *more* detailed than the simulator's model:
//
//   - Network: messages are segmented at the MTU; each segment pays a
//     store-and-forward latency and per-segment jitter, and the sharing of
//     port bandwidth is computed per segment rather than fluidly. Small
//     messages pay a fixed per-message protocol overhead.
//   - CPU: per-operation dispatch overhead, multiplicative lognormal noise
//     on every computation, processor sharing, and per-segment send/receive
//     processing costs (receive costlier than send).
//
// None of these effects are visible to the simulator's simple t = l + s/b
// + equal-share model, which is exactly the situation of the paper.
package testbed

import (
	"fmt"

	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/rng"
)

// Params configures the virtual cluster.
type Params struct {
	// Nodes is the number of workstations.
	Nodes int
	// LinkBandwidth is the per-port bandwidth in bytes/second.
	// Fast Ethernet: 12.5e6.
	LinkBandwidth float64
	// WireLatency is the one-way switch+wire latency per segment.
	WireLatency eventq.Duration
	// MsgOverhead is the fixed per-message protocol cost (connection
	// handling, headers) paid before the first byte moves.
	MsgOverhead eventq.Duration
	// MTU is the segment payload size in bytes (Ethernet: 1500).
	MTU int64
	// JitterCV is the coefficient of variation of per-segment service
	// jitter (0 disables).
	JitterCV float64
	// ComputeNoiseCV is the coefficient of variation of per-step compute
	// noise (0 disables).
	ComputeNoiseCV float64
	// NodeSpeedCV is the coefficient of variation of fixed per-node speed
	// differences (real workstations are never perfectly identical; the
	// simulator's averaged calibration cannot see which node is slow).
	NodeSpeedCV float64
	// DispatchOverhead is added to every atomic step (thread wakeup,
	// queue handling) by the duration source.
	DispatchOverhead eventq.Duration
	// RecvSegmentCost and SendSegmentCost are the CPU fractions consumed
	// per active incoming/outgoing transfer (communication processing;
	// receive is costlier).
	RecvSegmentCost float64
	SendSegmentCost float64
	// Seed drives all testbed randomness; equal seeds give equal runs.
	Seed uint64
}

// FastEthernetCluster returns parameters modeling the paper's testbed: the
// given number of single-CPU workstations on switched 100 Mbit/s Ethernet.
func FastEthernetCluster(nodes int, seed uint64) Params {
	return Params{
		Nodes:            nodes,
		LinkBandwidth:    12.5e6,
		WireLatency:      60 * eventq.Microsecond,
		MsgOverhead:      80 * eventq.Microsecond,
		MTU:              1500,
		JitterCV:         0.04,
		ComputeNoiseCV:   0.025,
		NodeSpeedCV:      0.03,
		DispatchOverhead: 35 * eventq.Microsecond,
		RecvSegmentCost:  0.08,
		SendSegmentCost:  0.035,
		Seed:             seed,
	}
}

// Cluster is the high-fidelity platform. It implements core.Platform.
type Cluster struct {
	q    *eventq.Queue
	p    Params
	cpus []*cpumodel.CPU
	rnd  *rng.Source

	ports []*port // per node: in/out segment schedulers

	totalBytes     int64
	totalTransfers uint64
}

// port tracks the segment queues of one node's full-duplex link.
type port struct {
	outBusyUntil eventq.Time
	inBusyUntil  eventq.Time
	activeOut    int
	activeIn     int
}

// New builds a virtual cluster.
func New(p Params) *Cluster {
	if p.Nodes <= 0 {
		panic("testbed: need at least one node")
	}
	if p.MTU <= 0 {
		p.MTU = 1500
	}
	if p.LinkBandwidth <= 0 {
		panic("testbed: link bandwidth must be positive")
	}
	q := eventq.New()
	c := &Cluster{q: q, p: p, rnd: rng.New(p.Seed)}
	c.cpus = make([]*cpumodel.CPU, p.Nodes)
	c.ports = make([]*port, p.Nodes)
	for i := range c.cpus {
		cp := cpumodel.Params{
			Power:        1.0,
			RecvOverhead: p.RecvSegmentCost,
			SendOverhead: p.SendSegmentCost,
			MinAvailable: 0.05,
			Sharing:      true,
			CommOverhead: true,
		}
		if p.NodeSpeedCV > 0 {
			cp.Power = c.rnd.LogNormal(p.NodeSpeedCV)
		}
		c.cpus[i] = cpumodel.New(q, i, cp)
		c.ports[i] = &port{}
	}
	return c
}

// Queue implements core.Platform.
func (c *Cluster) Queue() *eventq.Queue { return c.q }

// Nodes implements core.Platform.
func (c *Cluster) Nodes() int { return c.p.Nodes }

// CPU exposes a node's processor model.
func (c *Cluster) CPU(node int) *cpumodel.CPU { return c.cpus[node] }

// TotalBytes returns cumulative payload bytes moved between nodes.
func (c *Cluster) TotalBytes() int64 { return c.totalBytes }

// TotalTransfers returns the number of completed inter-node messages.
func (c *Cluster) TotalTransfers() uint64 { return c.totalTransfers }

// Params returns the cluster parameters.
func (c *Cluster) Params() Params { return c.p }

// Submit implements core.Platform. Compute noise is applied once, by the
// testbed's DurationSource at charge time, so Submit schedules the work
// as-is under processor sharing and communication overhead.
func (c *Cluster) Submit(node int, work eventq.Duration, done func()) {
	if node < 0 || node >= len(c.cpus) {
		panic(fmt.Sprintf("testbed: node %d outside cluster of %d", node, len(c.cpus)))
	}
	c.cpus[node].Submit(work, done)
}

// Send implements core.Platform: a message is segmented at the MTU; each
// segment is serialized onto the source port, crosses the wire, and is
// deserialized from the destination port. Ports serve segments of
// concurrent messages in arrival order (approximate fair queueing), which
// yields per-segment bandwidth sharing.
func (c *Cluster) Send(src, dst int, size int64, done func()) {
	if src < 0 || src >= len(c.cpus) || dst < 0 || dst >= len(c.cpus) {
		panic(fmt.Sprintf("testbed: transfer %d→%d outside cluster of %d", src, dst, len(c.cpus)))
	}
	if size < 0 {
		size = 0
	}
	if src == dst {
		// Local: pay the message overhead only (memory copy is part of
		// the dispatch overhead of the receiving step).
		c.q.After(c.p.MsgOverhead, done)
		return
	}
	t := &transfer{
		cluster: c,
		src:     src,
		dst:     dst,
		size:    size,
		done:    done,
	}
	c.ports[src].activeOut++
	c.ports[dst].activeIn++
	c.notifyCPU(src)
	c.notifyCPU(dst)
	// Per-message protocol overhead, then segment pipeline.
	c.q.After(c.p.MsgOverhead, t.issueSegment)
}

// notifyCPU mirrors port activity into the CPU communication overhead.
func (c *Cluster) notifyCPU(node int) {
	p := c.ports[node]
	c.cpus[node].SetTransfers(p.activeIn, p.activeOut)
}

type transfer struct {
	cluster  *Cluster
	src, dst int
	size     int64
	issued   int64 // payload bytes whose segments have been scheduled
	arrived  int64 // payload bytes fully deserialized at the destination
	done     func()
}

// issueSegment serializes the next MTU-sized segment onto the source port.
// The following segment is issued as soon as the port is free again, so
// the segments of one message pipeline across serialization, wire and
// deserialization, while concurrent messages on the same port interleave
// segment by segment (approximate fair queueing).
func (t *transfer) issueSegment() {
	c := t.cluster
	seg := t.size - t.issued
	if seg > c.p.MTU {
		seg = c.p.MTU
	}
	t.issued += seg
	wire := seg
	// Zero-byte messages still cross the wire once (header-only frame).
	if wire < 64 {
		wire = 64
	}
	serTime := eventq.DurationOf(float64(wire) / c.p.LinkBandwidth)
	if c.p.JitterCV > 0 {
		serTime = eventq.Duration(float64(serTime) * c.rnd.LogNormal(c.p.JitterCV))
	}
	// Serialize on the source port, cross the wire, deserialize on the
	// destination port; each port is a serial resource shared in FIFO
	// order by all concurrent transfers of that node.
	now := c.q.Now()
	srcPort := c.ports[t.src]
	outStart := maxTime(now, srcPort.outBusyUntil)
	outDone := outStart.Add(serTime)
	srcPort.outBusyUntil = outDone

	wireDone := outDone.Add(c.p.WireLatency)

	dstPort := c.ports[t.dst]
	inStart := maxTime(wireDone, dstPort.inBusyUntil)
	inDone := inStart.Add(serTime)
	dstPort.inBusyUntil = inDone

	if t.issued < t.size {
		// Next segment leaves once the uplink is free.
		c.q.At(outDone, t.issueSegment)
	}
	segSize := seg
	c.q.At(inDone, func() {
		t.arrived += segSize
		if t.arrived >= t.size {
			t.finish()
		}
	})
}

func (t *transfer) finish() {
	c := t.cluster
	c.ports[t.src].activeOut--
	c.ports[t.dst].activeIn--
	c.notifyCPU(t.src)
	c.notifyCPU(t.dst)
	c.totalTransfers++
	c.totalBytes += t.arrived
	if t.done != nil {
		t.done()
	}
}

func maxTime(a, b eventq.Time) eventq.Time {
	if a > b {
		return a
	}
	return b
}

// Reseed replaces the noise stream (used to obtain independent repetition
// runs of the same configuration).
func (c *Cluster) Reseed(seed uint64) { c.rnd = rng.New(seed) }

// DurationSource returns the testbed's duration source for ModeModel runs:
// the analytic estimate plus dispatch overhead, scaled by lognormal noise.
// This is what the application's computations "really" cost on the virtual
// cluster; the simulator only ever sees averaged calibration samples.
func (c *Cluster) DurationSource() interface {
	StepWork(key string, analytic eventq.Duration, idx int) eventq.Duration
} {
	return &noisySource{c: c}
}

type noisySource struct{ c *Cluster }

func (s *noisySource) StepWork(_ string, analytic eventq.Duration, _ int) eventq.Duration {
	d := analytic + s.c.p.DispatchOverhead
	if s.c.p.ComputeNoiseCV > 0 {
		d = eventq.Duration(float64(d) * s.c.rnd.LogNormal(s.c.p.ComputeNoiseCV))
	}
	return d
}
