package testbed

import (
	"testing"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
	"dpsim/internal/serial"
)

// simNetParams/simCPUParams are the simulator-side model parameters used
// when comparing prediction against the testbed.
func simNetParams() netmodel.Params {
	return netmodel.Params{Latency: 200 * eventq.Microsecond, Bandwidth: 12.5e6, Contention: true}
}

func simCPUParams() cpumodel.Params { return cpumodel.Defaults() }

func quietParams(nodes int) Params {
	p := FastEthernetCluster(nodes, 1)
	p.JitterCV = 0
	p.ComputeNoiseCV = 0
	p.NodeSpeedCV = 0
	return p
}

func TestSingleMessageTiming(t *testing.T) {
	p := quietParams(2)
	c := New(p)
	var doneAt eventq.Time
	c.Send(0, 1, 1500, func() { doneAt = c.Queue().Now() })
	c.Queue().Run(0)
	// One segment: overhead + serialize + wire + deserialize.
	ser := eventq.DurationOf(1500 / p.LinkBandwidth)
	want := eventq.Time(p.MsgOverhead + ser + p.WireLatency + ser)
	if doneAt != want {
		t.Fatalf("1500B message arrived at %v, want %v", doneAt, want)
	}
}

func TestSegmentationPipelines(t *testing.T) {
	// A large message's segments pipeline: total ≈ overhead + n·ser +
	// wire + ser, substantially less than n·(2ser+wire).
	p := quietParams(2)
	c := New(p)
	const size = 150_000 // 100 segments
	var doneAt eventq.Time
	c.Send(0, 1, size, func() { doneAt = c.Queue().Now() })
	c.Queue().Run(0)
	ser := eventq.DurationOf(float64(p.MTU) / p.LinkBandwidth)
	pipelined := eventq.Time(p.MsgOverhead + 100*ser + p.WireLatency + ser)
	naive := eventq.Time(p.MsgOverhead + 100*(2*ser+p.WireLatency))
	if doneAt > pipelined+eventq.Time(eventq.Millisecond) {
		t.Fatalf("segmented transfer at %v, want ≈ %v (pipelined)", doneAt, pipelined)
	}
	if doneAt >= naive {
		t.Fatalf("segments did not pipeline: %v >= %v", doneAt, naive)
	}
}

func TestConcurrentTransfersShareUplink(t *testing.T) {
	p := quietParams(3)
	c := New(p)
	var times []eventq.Time
	const size = 750_000 // 0.06s alone
	c.Send(0, 1, size, func() { times = append(times, c.Queue().Now()) })
	c.Send(0, 2, size, func() { times = append(times, c.Queue().Now()) })
	c.Queue().Run(0)
	if len(times) != 2 {
		t.Fatalf("finished %d transfers", len(times))
	}
	alone := eventq.DurationOf(float64(size) / p.LinkBandwidth)
	// Interleaved on the same uplink: both finish near 2x the solo time.
	lo := eventq.Time(alone) * 17 / 10
	hi := eventq.Time(alone)*23/10 + eventq.Time(10*eventq.Millisecond)
	for _, at := range times {
		if at < lo || at > hi {
			t.Fatalf("shared transfer finished at %v, want within [%v, %v]", at, lo, hi)
		}
	}
}

func TestLocalMessageCheap(t *testing.T) {
	p := quietParams(2)
	c := New(p)
	var doneAt eventq.Time
	c.Send(1, 1, 1<<20, func() { doneAt = c.Queue().Now() })
	c.Queue().Run(0)
	if doneAt != eventq.Time(p.MsgOverhead) {
		t.Fatalf("local message at %v, want %v", doneAt, p.MsgOverhead)
	}
}

func TestZeroByteMessageStillCrossesWire(t *testing.T) {
	p := quietParams(2)
	c := New(p)
	var doneAt eventq.Time
	c.Send(0, 1, 0, func() { doneAt = c.Queue().Now() })
	c.Queue().Run(0)
	if doneAt <= eventq.Time(p.MsgOverhead) {
		t.Fatalf("zero-byte message at %v, want > message overhead", doneAt)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func(seed uint64) eventq.Time {
		p := FastEthernetCluster(4, seed)
		c := New(p)
		var last eventq.Time
		for i := 0; i < 50; i++ {
			c.Send(i%4, (i+1)%4, int64(1000*(i+1)), func() { last = c.Queue().Now() })
		}
		c.Queue().Run(0)
		return last
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different timelines")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds produced identical jittered timelines")
	}
}

func TestComputeNoiseThroughDurationSource(t *testing.T) {
	p := FastEthernetCluster(1, 3)
	c := New(p)
	src := c.DurationSource()
	base := 10 * eventq.Millisecond
	var min, max eventq.Duration
	for i := 0; i < 200; i++ {
		d := src.StepWork("k", base, i)
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == max {
		t.Fatal("duration source produced no noise")
	}
	if min < base {
		// Dispatch overhead shifts the mean above base; noise can dip
		// below base+overhead but should stay near it.
		if float64(min) < 0.85*float64(base) {
			t.Fatalf("noise min %v implausibly low", min)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := quietParams(2)
	c := New(p)
	c.Send(0, 1, 5000, nil)
	c.Send(1, 0, 3000, nil)
	c.Queue().Run(0)
	if c.TotalTransfers() != 2 {
		t.Fatalf("transfers = %d", c.TotalTransfers())
	}
	if c.TotalBytes() != 8000 {
		t.Fatalf("bytes = %d", c.TotalBytes())
	}
}

// --- integration: the testbed as a core.Platform ---

type payload struct{ blob int }

func (p *payload) MarshalDPS(w serial.Writer) { w.Skip(p.blob) }

type devNull struct{}

func (devNull) Absorb(dps.Ctx, dps.DataObject) {}
func (devNull) Finish(dps.Ctx)                 {}

func TestRunsDPSApplication(t *testing.T) {
	master := dps.NewCollection("m", 1, 4)
	workers := dps.NewCollection("w", 4, 4)
	g := dps.NewGraph("tb")
	split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
		for i := 0; i < 8; i++ {
			ctx.Post(&payload{blob: 100_000})
		}
	})
	leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("work", 5*eventq.Millisecond, nil)
		ctx.Post(&payload{blob: 10_000})
	})
	merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return devNull{} })
	g.Connect(split, leaf, dps.RoundRobin)
	g.Connect(leaf, merge, nil)
	g.PairOps(split, merge, nil)

	cl := New(FastEthernetCluster(4, 42))
	eng, err := core.New(core.Config{
		Graph:     g,
		Platform:  cl,
		Durations: cl.DurationSource(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Inject(split, 0, &payload{})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Transfers == 0 {
		t.Fatalf("implausible run: %+v", res)
	}
	// 6 of 8 objects leave node 0 (workers 1,2,3 are remote, 2 rounds
	// each): at least 100KB×6 inter-node traffic plus results.
	if cl.TotalBytes() < 600_000 {
		t.Fatalf("testbed moved only %d bytes", cl.TotalBytes())
	}
}

func TestTestbedVsSimulatorDisagreeSlightly(t *testing.T) {
	// The same application on the testbed and on the simulator platform
	// must produce close but not identical times: that gap is the
	// prediction error the paper measures.
	build := func() (*dps.Graph, *dps.Op) {
		master := dps.NewCollection("m", 1, 4)
		workers := dps.NewCollection("w", 4, 4)
		g := dps.NewGraph("cmp")
		split := g.Split("s", master, func(ctx dps.Ctx, in dps.DataObject) {
			for i := 0; i < 16; i++ {
				ctx.Post(&payload{blob: 200_000})
			}
		})
		leaf := g.Leaf("l", workers, func(ctx dps.Ctx, in dps.DataObject) {
			ctx.Compute("work", 20*eventq.Millisecond, nil)
			ctx.Post(&payload{blob: 1000})
		})
		merge := g.Merge("mg", master, func(dps.DataObject) dps.MergeState { return devNull{} })
		g.Connect(split, leaf, dps.RoundRobin)
		g.Connect(leaf, merge, nil)
		g.PairOps(split, merge, nil)
		return g, split
	}

	g1, s1 := build()
	cl := New(FastEthernetCluster(4, 99))
	engTB, err := core.New(core.Config{Graph: g1, Platform: cl, Durations: cl.DurationSource()})
	if err != nil {
		t.Fatal(err)
	}
	engTB.Inject(s1, 0, &payload{})
	resTB, err := engTB.Run()
	if err != nil {
		t.Fatal(err)
	}

	g2, s2 := build()
	engSim, err := core.New(core.Config{
		Graph:    g2,
		Platform: core.NewSimPlatform(4, simNetParams(), simCPUParams()),
	})
	if err != nil {
		t.Fatal(err)
	}
	engSim.Inject(s2, 0, &payload{})
	resSim, err := engSim.Run()
	if err != nil {
		t.Fatal(err)
	}

	ratio := float64(resTB.Elapsed) / float64(resSim.Elapsed)
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("testbed (%v) and simulator (%v) diverge too much: ratio %.2f",
			resTB.Elapsed, resSim.Elapsed, ratio)
	}
	if resTB.Elapsed == resSim.Elapsed {
		t.Fatal("testbed and simulator agree exactly; models are suspiciously identical")
	}
}

func BenchmarkClusterTransferHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New(FastEthernetCluster(8, uint64(i)))
		for j := 0; j < 400; j++ {
			c.Send(j%8, (j+3)%8, 50_000, nil)
		}
		c.Queue().Run(0)
	}
}
