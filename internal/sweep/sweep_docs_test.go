package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSweepDoc pins docs/sweep.md to the code: every JSON key of the
// checkpoint and shard-artifact schemas, every sharding/resume CLI
// flag, and the planning gauge names must appear in the document.
func TestSweepDoc(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "sweep.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)

	jsonKeys := func(v any) []string {
		var keys []string
		rt := reflect.TypeOf(v)
		for i := 0; i < rt.NumField(); i++ {
			tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
			if tag != "" && tag != "-" {
				keys = append(keys, tag)
			}
		}
		return keys
	}
	for _, v := range []any{checkpointFile{}, checkpointCell{}, accumState{}, ShardArtifact{}, ShardCell{}} {
		keys := jsonKeys(v)
		if len(keys) == 0 {
			t.Fatalf("%T has no JSON keys — schema moved?", v)
		}
		for _, key := range keys {
			if !strings.Contains(doc, "`"+key+"`") {
				t.Errorf("%T JSON key `%s` is not documented in docs/sweep.md", v, key)
			}
		}
	}
	for _, flag := range []string{"-checkpoint", "-checkpoint-every", "-no-dedup", "-shard", "-shard-out", "-merge"} {
		if !strings.Contains(doc, "`"+flag+" ") && !strings.Contains(doc, "`"+flag+"`") {
			t.Errorf("flag %s is not documented in docs/sweep.md", flag)
		}
	}
	for _, name := range []string{"dpsim_sweep_cells_deduped", "dpsim_sweep_cells_resumed", "dpsim_sweep_runs_total"} {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %s is not documented in docs/sweep.md", name)
		}
	}
	// The byte-identity contract must keep naming its pinning tests.
	for _, pin := range []string{"TestShardMergeByteIdentical", "TestInterruptResumeByteIdentical"} {
		if !strings.Contains(doc, pin) {
			t.Errorf("docs/sweep.md no longer references %s", pin)
		}
	}
}
