package sweep

import (
	"bytes"
	"strings"
	"testing"

	"dpsim/internal/scenario"
)

// fedSpec parses a small federated scenario: two heterogeneous member
// clusters, two admission policies × two routing policies, poisson
// arrivals over the fleet total of 12 nodes.
func fedSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(`{
		"name": "fedsweep",
		"loads": [0.8, 1.2],
		"seed": 17,
		"jobs": 10,
		"mix": [{"kind": "synthetic", "phases": 2, "work_s": 12, "comm": 0.05}],
		"arrivals": [{"process": "poisson", "mean_interarrival_s": 3}],
		"federation": {
			"clusters": [
				{"name": "small", "nodes": 4, "scheduler": "equipartition"},
				{"name": "big", "nodes": 8, "scheduler": "rigid-fcfs",
				 "availability": {"process": "failures", "mttf_s": 150, "mttr_s": 30, "horizon_s": 1500}}
			],
			"admissions": ["always", "token-bucket(rate=0.2,burst=2)"],
			"routings": ["round-robin", "least-loaded"]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFederatedCellsExpansion(t *testing.T) {
	spec := fedSpec(t)
	cells := Cells(spec)
	// 1 arrival × 1 avail × 1 nodes × 2 loads × 1 sched × 1 model × 2 admissions × 2 routings.
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	c := cells[0]
	if c.Scheduler != "federated" || c.SchedulerIdx != -1 ||
		c.Avail != "federated" || c.AvailIdx != -1 ||
		c.AppModel != "federated" || c.AppModelIdx != -1 {
		t.Fatalf("federated pseudo-axes wrong: %+v", c)
	}
	if c.Nodes != 12 {
		t.Fatalf("nodes = %d, want fleet total 12", c.Nodes)
	}
	if c.Admission != "always" || c.AdmissionIdx != 0 || c.Routing != "round-robin" || c.RoutingIdx != 0 {
		t.Fatalf("first cell policies: %+v", c)
	}
	// Routing is the innermost axis.
	if cells[1].Admission != "always" || cells[1].Routing != "least-loaded" {
		t.Fatalf("second cell policies: %+v", cells[1])
	}
	last := cells[3]
	if last.Admission != "token-bucket(burst=2,rate=0.2)" || last.Routing != "least-loaded" {
		t.Fatalf("fourth cell policies: %+v", last)
	}
}

func TestNonFederatedCellsCarryNonePolicies(t *testing.T) {
	spec := testSpec(t)
	for i, c := range Cells(spec) {
		if c.Admission != "none" || c.AdmissionIdx != -1 || c.Routing != "none" || c.RoutingIdx != -1 {
			t.Fatalf("cell %d policies = %q/%q (%d/%d), want none/none (-1/-1)",
				i, c.Admission, c.Routing, c.AdmissionIdx, c.RoutingIdx)
		}
	}
}

// TestFederatedHashCanonicalization: the hash is the cell's identity —
// cells differing only in a policy hash differently, and editing one
// policy axis never re-seeds cells of the other axis.
func TestFederatedHashCanonicalization(t *testing.T) {
	spec := fedSpec(t)
	cells := Cells(spec)
	hashes := CellHashes(spec, cells)
	seen := map[string]int{}
	for i, h := range hashes {
		if j, dup := seen[h.String()]; dup {
			t.Fatalf("cells %d and %d hash identically: %+v vs %+v", j, i, cells[j], cells[i])
		}
		seen[h.String()] = i
	}

	// Appending a routing policy must keep every existing cell's hash:
	// content identity ignores grid position.
	grown := fedSpec(t)
	grown.Federation.Routings = append(grown.Federation.Routings, scenario.RoutingSpec{Name: "weighted"})
	if err := grown.Validate(); err != nil {
		t.Fatal(err)
	}
	grownCells := Cells(grown)
	grownHashes := CellHashes(grown, grownCells)
	byKey := map[string]CellHash{}
	for i, c := range grownCells {
		byKey[c.Admission+"|"+c.Routing+"|"+formatLoad(c.Load)] = grownHashes[i]
	}
	for i, c := range cells {
		h, ok := byKey[c.Admission+"|"+c.Routing+"|"+formatLoad(c.Load)]
		if !ok {
			t.Fatalf("cell %+v missing from grown grid", c)
		}
		if h != hashes[i] {
			t.Fatalf("cell %+v re-hashed after a routing-axis append", c)
		}
	}
}

func formatLoad(l float64) string {
	if l < 1 {
		return "lo"
	}
	return "hi"
}

// TestFederatedSweepWorkerDeterminism: the federated sweep's CSV and
// JSON exports are byte-identical across worker counts 1..8.
func TestFederatedSweepWorkerDeterminism(t *testing.T) {
	spec := fedSpec(t)
	var want string
	for workers := 1; workers <= 8; workers++ {
		stats, err := Run(spec, Options{Replications: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var csv, js bytes.Buffer
		if err := WriteCSV(&csv, spec.Name, stats); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, spec.Name, stats); err != nil {
			t.Fatal(err)
		}
		got := csv.String() + "\x00" + js.String()
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d export differs from workers=1", workers)
		}
	}
}

// TestFederatedShardMerge: running the federated grid as two shards and
// merging equals the single-process run byte-for-byte.
func TestFederatedShardMerge(t *testing.T) {
	spec := fedSpec(t)
	opt := Options{Replications: 2}
	full, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*gridResult
	for i := 0; i < 2; i++ {
		o := opt
		o.Shard = ShardSel{Index: i, Count: 2}
		g, err := runGrid(spec, o)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		shards = append(shards, g)
	}
	merged := make([]CellStats, len(full))
	for _, g := range shards {
		for i, own := range g.owned {
			if own {
				merged[i] = g.stats[i]
			}
		}
	}
	var a, b bytes.Buffer
	if err := WriteCSV(&a, spec.Name, full); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, spec.Name, merged); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sharded merge differs from full run")
	}
}

// TestFederatedCSVColumns: the federated export carries the policy
// columns and a populated mean_rejected_jobs for the throttling cell.
func TestFederatedCSVColumns(t *testing.T) {
	spec := fedSpec(t)
	stats, err := Run(spec, Options{Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, spec.Name, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	header := strings.SplitN(out, "\n", 2)[0]
	for _, col := range []string{"admission", "routing", "mean_rejected_jobs"} {
		if !strings.Contains(header, col) {
			t.Fatalf("header %q lacks column %q", header, col)
		}
	}
	if !strings.Contains(out, "token-bucket(burst=2,rate=0.2)") {
		t.Fatal("export lacks the token-bucket admission label")
	}
	sawRejection := false
	for _, st := range stats {
		if st.Admission == "always" && st.MeanRejected != 0 {
			t.Fatalf("always admission rejected %g jobs", st.MeanRejected)
		}
		if st.MeanRejected > 0 {
			sawRejection = true
		}
	}
	if !sawRejection {
		t.Fatal("token-bucket cells rejected nothing; throttle the spec harder")
	}
}
