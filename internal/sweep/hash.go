package sweep

// Content-hash cell identity. Every grid cell gets a canonical SHA-256
// over its resolved parameters — the scenario's workload blob plus the
// cell's arrival, availability, scheduler and appmodel specs, the node
// count and the offered load (internal/scenario's canonical
// serialization); federated cells additionally cover the member-cluster
// topology and the cell's admission and routing policy specs. The hash,
// not the cell's position in the grid, is the cell's identity:
//
//   - Replication seeds derive from (hash, replication index), so
//     editing the grid — inserting a load, reordering an axis — never
//     re-seeds the cells that did not change.
//   - Two cells with identical resolved parameters hash identically, so
//     the sweep runs their replications once and fans the results out
//     (content-hash dedup).
//   - Checkpoints and shard artifacts key their entries by hash, which
//     makes resumes survive grid edits and lets independently-run shards
//     merge into one consistent report.
//
// Axis blobs are serialized once per axis entry and reused across the
// whole grid, so hashing a cell is two buffer appends and one SHA-256 —
// cheap enough to run unconditionally.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"dpsim/internal/rng"
	"dpsim/internal/scenario"
)

// CellHash is the canonical content identity of one grid cell.
type CellHash [sha256.Size]byte

// String returns the full lowercase-hex digest — the key format of
// checkpoint files and shard artifacts.
func (h CellHash) String() string { return hex.EncodeToString(h[:]) }

// Seed64 folds the first 8 digest bytes into the seed domain; runSeed
// expands it per replication.
func (h CellHash) Seed64() uint64 { return binary.BigEndian.Uint64(h[:8]) }

// ShardOf maps the cell onto one of n shards. The partition uses digest
// bytes disjoint from Seed64's, so shard membership and seeding stay
// uncorrelated; n <= 1 puts every cell in shard 0.
func (h CellHash) ShardOf(n int) int {
	if n <= 1 {
		return 0
	}
	return int(binary.BigEndian.Uint64(h[8:16]) % uint64(n))
}

// parseHash inverts String.
func parseHash(s string) (CellHash, error) {
	var h CellHash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return h, fmt.Errorf("sweep: invalid cell hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// appendSection length-prefixes and appends one canonical blob, so
// adjacent sections can never alias ("ab"+"c" vs "a"+"bc").
func appendSection(buf, blob []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	return append(buf, blob...)
}

// CellHashes computes every cell's content hash in Cells() order. Axis
// blobs are serialized once and shared, so the per-cell cost is
// appending to a reused buffer and one SHA-256.
func CellHashes(spec *scenario.Spec, cells []Cell) []CellHash {
	workload := spec.CanonicalWorkload()
	arrivals := make([][]byte, len(spec.Arrivals))
	for i := range arrivals {
		arrivals[i] = spec.CanonicalArrival(i)
	}
	avails := map[int][]byte{-1: spec.CanonicalAvailability(-1)}
	for i := range spec.Availability {
		avails[i] = spec.CanonicalAvailability(i)
	}
	// In a federated grid the scheduler axis collapses to the pseudo-entry
	// index -1: the real per-cluster schedulers (and app models and
	// availability) are covered by the federation topology section below,
	// so the sentinel blob only keeps section alignment stable.
	scheds := map[int][]byte{-1: []byte("federated")}
	for i := range spec.Schedulers {
		scheds[i] = spec.CanonicalScheduler(i)
	}
	models := map[int][]byte{-1: spec.CanonicalAppModel(-1)}
	for i := range spec.AppModels {
		models[i] = spec.CanonicalAppModel(i)
	}

	// Federation sections are appended only for federated scenarios, so
	// every legacy cell's hash preimage stays byte-identical: seeds, dedup
	// groups, checkpoints and shard artifacts of existing sweeps survive
	// this axis unchanged. The topology blob is shared by all cells;
	// admission and routing are separate per-axis sections, so editing one
	// policy list never re-seeds cells of the other.
	var fedBlob []byte
	var admBlobs, rtBlobs [][]byte
	if f := spec.Federation; f != nil {
		fedBlob = spec.CanonicalFederation()
		admBlobs = make([][]byte, len(f.Admissions))
		for i := range admBlobs {
			admBlobs[i] = spec.CanonicalAdmission(i)
		}
		rtBlobs = make([][]byte, len(f.Routings))
		for i := range rtBlobs {
			rtBlobs[i] = spec.CanonicalRouting(i)
		}
	}

	hashes := make([]CellHash, len(cells))
	var buf []byte
	for i, c := range cells {
		buf = buf[:0]
		buf = appendSection(buf, workload)
		buf = appendSection(buf, arrivals[c.ArrivalIdx])
		buf = appendSection(buf, avails[c.AvailIdx])
		buf = binary.AppendUvarint(buf, uint64(c.Nodes))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Load))
		buf = appendSection(buf, scheds[c.SchedulerIdx])
		buf = appendSection(buf, models[c.AppModelIdx])
		if spec.Federation != nil {
			buf = appendSection(buf, fedBlob)
			buf = appendSection(buf, admBlobs[c.AdmissionIdx])
			buf = appendSection(buf, rtBlobs[c.RoutingIdx])
		}
		hashes[i] = sha256.Sum256(buf)
	}
	return hashes
}

// runSeed derives the seed of one replication as a pure function of the
// cell's content hash (which already covers the master seed) and the
// replication index: results depend on what a cell *is*, never on where
// it sits in the grid or in which process it runs. Two splitmix rounds
// decorrelate neighboring replications.
func runSeed(h CellHash, rep int) uint64 {
	s := rng.New(h.Seed64() ^ (uint64(rep+1) * 0x9e3779b97f4a7c15)).Uint64()
	return rng.New(s ^ 0xbf58476d1ce4e5b9).Uint64()
}
