package sweep

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"dpsim/internal/scenario"
)

// dupSpec contains a duplicate scheduler entry so the shard/dedup
// interaction is exercised: equal-hash cells land in the same shard and
// fan out there.
func dupSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	return parseSpec(t, `{
		"name": "shardgrid",
		"nodes": [4, 8],
		"loads": [0.5, 1.0],
		"schedulers": ["equipartition", "rigid-fcfs", "equipartition"],
		"seed": 13,
		"jobs": 5,
		"mix": [{"kind": "synthetic", "phases": 2, "work_s": 12, "comm": 0.05, "cv": 0.3}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 4}
	}`)
}

// TestShardMergeByteIdentical is the sharding contract: for any shard
// count, running every shard and merging the artifacts exports CSV and
// JSON byte-identical to a single-process run — with dedup on or off.
func TestShardMergeByteIdentical(t *testing.T) {
	spec := dupSpec(t)
	const reps = 2
	for _, noDedup := range []bool{false, true} {
		single, err := Run(spec, Options{Replications: reps, NoDedup: noDedup})
		if err != nil {
			t.Fatal(err)
		}
		wantCSV, wantJSON := exportBoth(t, spec, single)
		for _, n := range []int{1, 2, 4} {
			name := fmt.Sprintf("n=%d/noDedup=%v", n, noDedup)
			dir := t.TempDir()
			var paths []string
			for i := 0; i < n; i++ {
				art, err := RunShard(spec, Options{
					Replications: reps, NoDedup: noDedup,
					Shard: ShardSel{Index: i, Count: n},
				})
				if err != nil {
					t.Fatalf("%s shard %d: %v", name, i, err)
				}
				p := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
				if err := WriteShard(p, art); err != nil {
					t.Fatal(err)
				}
				paths = append(paths, p)
			}
			merged, uniq, err := MergeShards(spec, paths)
			if err != nil {
				t.Fatalf("%s merge: %v", name, err)
			}
			if uniq <= 0 {
				t.Fatalf("%s: merged %d unique cells", name, uniq)
			}
			gotCSV, gotJSON := exportBoth(t, spec, merged)
			if gotCSV != wantCSV {
				t.Fatalf("%s: merged CSV differs from single-process run\n%s\nvs\n%s", name, gotCSV, wantCSV)
			}
			if gotJSON != wantJSON {
				t.Fatalf("%s: merged JSON differs from single-process run", name)
			}
		}
	}
}

// TestMergeShardsMissingShard: merging an incomplete artifact set must
// fail loudly, not silently export a partial grid.
func TestMergeShardsMissingShard(t *testing.T) {
	spec := dupSpec(t)
	art, err := RunShard(spec, Options{Replications: 1, Shard: ShardSel{Index: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "shard0.json")
	if err := WriteShard(p, art); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeShards(spec, []string{p}); err == nil {
		t.Fatal("merge with a missing shard succeeded")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("unhelpful merge error: %v", err)
	}
}

// TestMergeShardsRepsMismatch: artifacts swept at different replication
// counts cannot be combined.
func TestMergeShardsRepsMismatch(t *testing.T) {
	spec := dupSpec(t)
	dir := t.TempDir()
	var paths []string
	for i, reps := range []int{1, 2} {
		art, err := RunShard(spec, Options{Replications: reps, Shard: ShardSel{Index: i, Count: 2}})
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := WriteShard(p, art); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	if _, _, err := MergeShards(spec, paths); err == nil {
		t.Fatal("merge across replication counts succeeded")
	}
}

// TestMergeShardsRejectsMixedSplits: artifacts must come from one shard
// split — a stale artifact from a different n, or the same shard twice,
// would silently overwrite cells last-wins in the merge.
func TestMergeShardsRejectsMixedSplits(t *testing.T) {
	spec := dupSpec(t)
	dir := t.TempDir()
	write := func(name string, idx, count int) string {
		t.Helper()
		art, err := RunShard(spec, Options{Replications: 1, Shard: ShardSel{Index: idx, Count: count}})
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := WriteShard(p, art); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s0of2 := write("s0of2.json", 0, 2)
	s1of2 := write("s1of2.json", 1, 2)
	s0of3 := write("s0of3.json", 0, 3)

	if _, _, err := MergeShards(spec, []string{s0of2, s1of2}); err != nil {
		t.Fatalf("clean 2-way merge failed: %v", err)
	}
	if _, _, err := MergeShards(spec, []string{s0of2, s1of2, s0of3}); err == nil {
		t.Fatal("artifacts from different shard splits merged silently")
	} else if !strings.Contains(err.Error(), "split") {
		t.Fatalf("unhelpful mixed-split error: %v", err)
	}
	if _, _, err := MergeShards(spec, []string{s0of2, s0of2, s1of2}); err == nil {
		t.Fatal("the same shard index merged twice silently")
	} else if !strings.Contains(err.Error(), "already merged") {
		t.Fatalf("unhelpful duplicate-index error: %v", err)
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ShardSel
	}{
		{"0/4", ShardSel{0, 4}},
		{"3/4", ShardSel{3, 4}},
		{"0/1", ShardSel{0, 1}},
	} {
		got, err := ParseShard(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "4/4", "-1/2", "x/2", "1", "1/0", "1/x", "0/-1", "1/2/3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestRunRejectsMultiShard: Run aggregates a full grid; a multi-shard
// selection must be routed through RunShard instead of silently
// returning a partial result.
func TestRunRejectsMultiShard(t *testing.T) {
	spec := dupSpec(t)
	if _, err := Run(spec, Options{Replications: 1, Shard: ShardSel{Index: 0, Count: 2}}); err == nil {
		t.Fatal("Run accepted a multi-shard selection")
	}
}

// TestRunShardInvalidIndex: out-of-range shard selections are rejected.
func TestRunShardInvalidIndex(t *testing.T) {
	spec := dupSpec(t)
	for _, sel := range []ShardSel{{Index: 2, Count: 2}, {Index: -1, Count: 2}} {
		if _, err := RunShard(spec, Options{Replications: 1, Shard: sel}); err == nil {
			t.Fatalf("RunShard accepted shard %d/%d", sel.Index, sel.Count)
		}
	}
}
