package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dpsim/internal/scenario"
	"dpsim/internal/trace"
)

// ckSpec is a 4-cell grid (2 loads × 2 schedulers) whose loads axis the
// incremental-resweep test widens.
func ckSpec(t *testing.T, loads string) *scenario.Spec {
	t.Helper()
	return parseSpec(t, `{
		"name": "ckgrid",
		"nodes": [4],
		"loads": `+loads+`,
		"schedulers": ["equipartition", "rigid-fcfs"],
		"seed": 11,
		"jobs": 5,
		"mix": [{"kind": "synthetic", "phases": 2, "work_s": 12, "comm": 0.05, "cv": 0.3}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 4}
	}`)
}

// TestInterruptResumeByteIdentical is the crash-resume contract: a sweep
// interrupted mid-run and resumed from its checkpoint exports CSV and
// JSON byte-identical to an uninterrupted run — without re-executing
// the folded replications.
func TestInterruptResumeByteIdentical(t *testing.T) {
	spec := ckSpec(t, "[0.5, 1.0]")
	const reps = 3
	full, err := Run(spec, Options{Replications: reps, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := exportBoth(t, spec, full)

	ck := filepath.Join(t.TempDir(), "ck.json")
	polls := 0
	_, err = Run(spec, Options{
		Replications: reps, Workers: 2, Checkpoint: ck, CheckpointEvery: 1,
		Interrupted: func() bool { polls++; return polls > 4 },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}

	executed := -1
	stats, err := Run(spec, Options{
		Replications: reps, Workers: 2, Checkpoint: ck,
		Progress: func(done, total int) { executed = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(Cells(spec)) * reps
	if executed < 0 || executed >= total {
		t.Fatalf("resume executed %d of %d runs — nothing restored", executed, total)
	}
	gotCSV, gotJSON := exportBoth(t, spec, stats)
	if gotCSV != wantCSV {
		t.Fatalf("resumed CSV differs\n%s\nvs\n%s", gotCSV, wantCSV)
	}
	if gotJSON != wantJSON {
		t.Fatal("resumed JSON differs")
	}
}

// TestIncrementalResweep: after a grid edit, a checkpointed re-sweep
// runs only the cells whose hash is new and still exports byte-identical
// to a fresh full run of the edited scenario.
func TestIncrementalResweep(t *testing.T) {
	const reps = 2
	ck := filepath.Join(t.TempDir(), "ck.json")
	if _, err := Run(ckSpec(t, "[0.5, 1.0]"), Options{Replications: reps, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}

	edited := ckSpec(t, "[0.5, 0.75, 1.0]")
	fresh, err := Run(edited, Options{Replications: reps})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := exportBoth(t, edited, fresh)

	executed := -1
	stats, err := Run(ckSpec(t, "[0.5, 0.75, 1.0]"), Options{
		Replications: reps, Checkpoint: ck,
		Progress: func(done, total int) { executed = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the two load-0.75 cells are new.
	if want := 2 * reps; executed != want {
		t.Fatalf("incremental re-sweep executed %d runs, want %d", executed, want)
	}
	gotCSV, gotJSON := exportBoth(t, edited, stats)
	if gotCSV != wantCSV || gotJSON != wantJSON {
		t.Fatal("incremental re-sweep exports differ from a fresh run")
	}
}

// TestCompletedCheckpointSkipsAllWork: re-running an already-complete
// checkpointed sweep executes nothing and reproduces the exports.
func TestCompletedCheckpointSkipsAllWork(t *testing.T) {
	spec := ckSpec(t, "[0.5, 1.0]")
	ck := filepath.Join(t.TempDir(), "ck.json")
	first, err := Run(spec, Options{Replications: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, _ := exportBoth(t, spec, first)
	calls := 0
	again, err := Run(spec, Options{Replications: 2, Checkpoint: ck,
		Progress: func(done, total int) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fully-checkpointed sweep still executed %d runs", calls)
	}
	gotCSV, _ := exportBoth(t, spec, again)
	if gotCSV != wantCSV {
		t.Fatal("restored exports differ")
	}
}

// TestCheckpointRepsMismatchIgnored: a checkpoint taken at a different
// replication count aggregates a different run set, so it must be
// ignored wholesale rather than merged.
func TestCheckpointRepsMismatchIgnored(t *testing.T) {
	spec := ckSpec(t, "[0.5, 1.0]")
	ck := filepath.Join(t.TempDir(), "ck.json")
	if _, err := Run(spec, Options{Replications: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	executed := -1
	fresh, err := Run(spec, Options{Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(spec, Options{Replications: 3, Checkpoint: ck,
		Progress: func(done, total int) { executed = total }})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Cells(spec)) * 3; executed != want {
		t.Fatalf("executed %d runs, want full %d (mismatched checkpoint must not restore)", executed, want)
	}
	wantCSV, _ := exportBoth(t, spec, fresh)
	gotCSV, _ := exportBoth(t, spec, stats)
	if gotCSV != wantCSV {
		t.Fatal("exports differ")
	}
}

// TestErrorResumeByteIdentical: a replication that fails must not be
// recorded as folded by the final checkpoint, so resuming after a
// transient error (here a missing trace file that appears before the
// retry) re-runs it and still exports byte-identical to a clean run.
func TestErrorResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "jobs.csv")
	// The trace path rides in the cell hash, so the spec identifies the
	// same cells whether or not the file exists yet.
	spec := func() *scenario.Spec {
		return parseSpec(t, `{
			"name": "errgrid",
			"nodes": [4],
			"loads": [0.5, 1.0],
			"schedulers": ["equipartition", "rigid-fcfs"],
			"seed": 17,
			"jobs": 4,
			"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
			"arrivals": [
				{"process": "poisson", "mean_interarrival_s": 4},
				{"process": "trace", "path": "`+tracePath+`"}
			]
		}`)
	}
	const reps = 2
	ck := filepath.Join(dir, "ck.json")

	// With the trace file missing, the four poisson cells (first in grid
	// order) fold and checkpoint, then the first trace-replay cell fails
	// with an I/O error and the sweep fail-fasts.
	_, err := Run(spec(), Options{Replications: reps, Workers: 1, Checkpoint: ck, CheckpointEvery: 1})
	if err == nil {
		t.Fatal("expected a trace I/O error")
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint after the failed sweep: %v", err)
	}

	// The transient error goes away: the trace file appears.
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJobs(f, []trace.JobRecord{
		{ID: 0, Arrival: 0, MaxNodes: 4, Phases: []trace.PhaseRecord{{Work: 10, Comm: 0.1}}},
		{ID: 1, Arrival: 6, Phases: []trace.PhaseRecord{{Work: 8, Comm: 0.05}}},
		{ID: 2, Arrival: 15, Phases: []trace.PhaseRecord{{Work: 5, Comm: 0}}},
	}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fresh, err := Run(spec(), Options{Replications: reps})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := exportBoth(t, spec(), fresh)

	executed := -1
	stats, err := Run(spec(), Options{
		Replications: reps, Checkpoint: ck,
		Progress: func(done, total int) { executed = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The four poisson cells restore; all four trace cells re-run —
	// including the replication that errored. If the failed run had been
	// checkpointed as folded, the resume would skip it and export
	// aggregates silently missing its data.
	if want := 4 * reps; executed != want {
		t.Fatalf("resume executed %d runs, want %d (every trace replication)", executed, want)
	}
	gotCSV, gotJSON := exportBoth(t, spec(), stats)
	if gotCSV != wantCSV {
		t.Fatalf("error-resumed CSV differs\n%s\nvs\n%s", gotCSV, wantCSV)
	}
	if gotJSON != wantJSON {
		t.Fatal("error-resumed JSON differs")
	}
}

// TestRestoreCopiesResponses: dedup restores one decoded checkpoint
// entry into the representative and every duplicate cell, and each
// accumulator appends to and sorts its buffer in place — so restore
// must copy the responses slice, not adopt it.
func TestRestoreCopiesResponses(t *testing.T) {
	st := accumState{Responses: []float64{3, 1, 2}}
	var a, b cellAccum
	a.restore(st)
	b.restore(st)
	a.responses[0] = 99
	if b.responses[0] != 3 || st.Responses[0] != 3 {
		t.Fatalf("restored accumulators alias one responses buffer: %v, %v", b.responses, st.Responses)
	}
}

// TestCheckpointCorruptRejected: an unreadable checkpoint is an error,
// not a silent full re-run.
func TestCheckpointCorruptRejected(t *testing.T) {
	spec := ckSpec(t, "[0.5]")
	ck := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(ck, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Replications: 1, Checkpoint: ck}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if err := os.WriteFile(ck, []byte(`{"version": 99, "cells": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Replications: 1, Checkpoint: ck}); err == nil {
		t.Fatal("foreign checkpoint version accepted")
	}
}
