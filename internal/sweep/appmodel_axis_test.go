package sweep

import (
	"strings"
	"testing"

	"dpsim/internal/scenario"
)

const axisSpecJSON = `{
	"name": "axis",
	"nodes": [8],
	"loads": [1, 2],
	"seed": 7,
	"jobs": 6,
	"mix": [{"kind": "synthetic", "phases": 3, "work_s": 60, "comm": 0.05}],
	"arrivals": {"process": "poisson", "mean_interarrival_s": 5},
	"schedulers": ["equipartition", "rigid-fcfs"],
	"appmodels": ["mix", "roofline(sat=4)", "fixed"]
}`

// TestCellsExpandAppModelAxis: the appmodel axis is the innermost grid
// dimension; a scenario without one gets the single "mix" pseudo-entry
// so legacy grids keep their historical cell order and seeds.
func TestCellsExpandAppModelAxis(t *testing.T) {
	spec, err := scenario.Parse([]byte(axisSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(spec)
	if len(cells) != 2*2*3 { // loads × schedulers × appmodels
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	want := []string{"mix", "roofline(sat=4)", "fixed"}
	for i, c := range cells {
		if c.AppModel != want[i%3] {
			t.Fatalf("cell %d appmodel = %q, want %q", i, c.AppModel, want[i%3])
		}
		if c.AppModelIdx != i%3 {
			t.Fatalf("cell %d appmodel idx = %d", i, c.AppModelIdx)
		}
	}

	bare, err := scenario.Parse([]byte(strings.Replace(axisSpecJSON,
		`"appmodels": ["mix", "roofline(sat=4)", "fixed"]`, `"appmodels": []`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	cells = Cells(bare)
	if len(cells) != 4 {
		t.Fatalf("axis-free cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.AppModel != "mix" || c.AppModelIdx != -1 {
			t.Fatalf("axis-free cell = %+v", c)
		}
	}
}

// TestRunExportsAppModelColumn: the axis flows through Run into the CSV
// and JSON exports, one row per model per cell.
func TestRunExportsAppModelColumn(t *testing.T) {
	spec, err := scenario.Parse([]byte(axisSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(spec, Options{Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, spec.Name, stats); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+12 {
		t.Fatalf("csv rows = %d", len(lines))
	}
	if !strings.Contains(lines[0], ",appmodel,") {
		t.Fatalf("header missing appmodel: %s", lines[0])
	}
	for _, label := range []string{",mix,", ",roofline(sat=4),", ",fixed,"} {
		n := strings.Count(out, label)
		if n != 4 { // loads × schedulers rows per model
			t.Errorf("label %q appears %d times, want 4", label, n)
		}
	}
	// Distinct models must actually change aggregate outcomes for the
	// same seed: fixed (speedup 1) cannot match the native mix.
	var mixResp, fixedResp float64
	for _, st := range stats {
		if st.Load == 1 && st.Scheduler == "equipartition" {
			switch st.AppModel {
			case "mix":
				mixResp = st.MeanResponse
			case "fixed":
				fixedResp = st.MeanResponse
			}
		}
	}
	if mixResp == 0 || fixedResp == 0 || mixResp == fixedResp {
		t.Errorf("mean responses mix=%g fixed=%g: axis had no effect", mixResp, fixedResp)
	}
}
