package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dpsim/internal/obs"
)

// AtomicFile writes a file atomically: content streams into a hidden
// temp file in the destination directory and only a successful Commit
// renames it into place, so a killed or failed export never leaves a
// truncated file behind — a pre-existing file at the destination stays
// intact until the rename. Abort (or a failed Commit) removes the temp
// file. This is the groundwork for resumable sweeps: an output file that
// exists is always complete.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// CreateAtomic opens an atomic writer targeting path.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write streams content into the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit syncs, closes and renames the temp file onto the destination.
// On any error the temp file is removed and the destination is left as
// it was.
func (a *AtomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	err := a.f.Sync()
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(a.f.Name(), a.path)
	}
	if err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return nil
}

// Abort discards the temp file; the destination is untouched. Safe to
// call after Commit (a no-op), so `defer a.Abort()` pairs naturally with
// a final Commit.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// WriteFileAtomic renders write's output into path atomically via
// AtomicFile: the destination appears complete or not at all.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if err := write(a); err != nil {
		return err
	}
	return a.Commit()
}

// csvHeader is the stable column order of WriteCSV.
const csvHeader = "scenario,arrival,availability,nodes,load,scheduler,appmodel,admission,routing," +
	"replications,jobs,unfinished," +
	"mean_response_s,p50_response_s,p95_response_s,p99_response_s,mean_wait_s," +
	"mean_makespan_s,mean_utilization,mean_avail_utilization,mean_slowdown," +
	"mean_reallocations,mean_capacity_events,mean_lost_work_s,mean_redistribution_s," +
	"mean_rejected_jobs,ci95_response_s,ci95_makespan_s,min_response_s,max_response_s"

// CSVColumns returns WriteCSV's column names in order — the authoritative
// list docs/output.md is pinned against (see TestOutputDocColumns).
func CSVColumns() []string { return strings.Split(csvHeader, ",") }

// optG renders an optional float: %g for a value, an empty field for
// nil (an empty cell has no extremes — see docs/output.md).
func optG(v *float64) string {
	if v == nil {
		return ""
	}
	return fmt.Sprintf("%g", *v)
}

// WriteCSV renders the aggregates as CSV, one row per cell in grid order.
// Fields are RFC 4180-quoted when needed (scenario names and trace labels
// may contain commas); floats use %g, so identical aggregates always
// serialize identically. min/max_response_s are empty for cells that
// finished no jobs.
func WriteCSV(w io.Writer, scenarioName string, stats []CellStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(strings.Split(csvHeader, ",")); err != nil {
		return err
	}
	for _, st := range stats {
		row := []string{
			scenarioName, st.Arrival, st.Avail,
			fmt.Sprintf("%d", st.Nodes), fmt.Sprintf("%g", st.Load), st.Scheduler, st.AppModel,
			st.Admission, st.Routing,
			fmt.Sprintf("%d", st.Replications), fmt.Sprintf("%d", st.Jobs),
			fmt.Sprintf("%d", st.Unfinished),
			fmt.Sprintf("%g", st.MeanResponse), fmt.Sprintf("%g", st.P50Response),
			fmt.Sprintf("%g", st.P95Response), fmt.Sprintf("%g", st.P99Response),
			fmt.Sprintf("%g", st.MeanWait),
			fmt.Sprintf("%g", st.MeanMakespan), fmt.Sprintf("%g", st.MeanUtilization),
			fmt.Sprintf("%g", st.MeanAvailUtilization), fmt.Sprintf("%g", st.MeanSlowdown),
			fmt.Sprintf("%g", st.MeanReallocations), fmt.Sprintf("%g", st.MeanCapacityEvents),
			fmt.Sprintf("%g", st.MeanLostWork), fmt.Sprintf("%g", st.MeanRedistribution),
			fmt.Sprintf("%g", st.MeanRejected),
			fmt.Sprintf("%g", st.CI95Response), fmt.Sprintf("%g", st.CI95Makespan),
			optG(st.MinResponse), optG(st.MaxResponse),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report is the JSON export envelope.
type Report struct {
	Scenario     string      `json:"scenario"`
	Replications int         `json:"replications"`
	Cells        []CellStats `json:"cells"`
}

// WriteJSON renders the aggregates as an indented JSON report.
func WriteJSON(w io.Writer, scenarioName string, stats []CellStats) error {
	reps := 0
	if len(stats) > 0 {
		reps = stats[0].Replications
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Scenario: scenarioName, Replications: reps, Cells: stats})
}

// TimeSeriesPrefixColumns returns the grid-identity columns the sweep
// time-series CSV prepends to obs.SampleColumns — one row fully names
// its cell and replication.
func TimeSeriesPrefixColumns() []string {
	return []string{"arrival", "availability", "nodes", "load", "scheduler", "appmodel", "admission", "routing", "rep"}
}

// TimeSeriesSink streams every observed replication's time-series
// samples into one CSV: columns TimeSeriesPrefixColumns +
// obs.SampleColumns. Its OnObserved method is shaped for
// Options.OnObserved, which serializes calls in grid order — the sink
// needs no locking and its output is bit-identical across worker
// counts.
type TimeSeriesSink struct {
	tw  *obs.TimeSeriesWriter
	err error
}

// NewTimeSeriesSink returns a sink writing CSV to w.
func NewTimeSeriesSink(w io.Writer) *TimeSeriesSink {
	return &TimeSeriesSink{tw: obs.NewTimeSeriesWriter(w, TimeSeriesPrefixColumns()...)}
}

// OnObserved appends the replication's samples; probes that are not
// *obs.Recorder are ignored. The first write error sticks and is
// reported by Flush.
func (s *TimeSeriesSink) OnObserved(c Cell, rep int, p obs.Probe) {
	rec, ok := p.(*obs.Recorder)
	if !ok || s.err != nil {
		return
	}
	prefix := []string{
		c.Arrival, c.Avail,
		fmt.Sprintf("%d", c.Nodes), fmt.Sprintf("%g", c.Load),
		c.Scheduler, c.AppModel, c.Admission, c.Routing, fmt.Sprintf("%d", rep),
	}
	s.err = s.tw.WriteAll(prefix, rec.Samples())
}

// Flush flushes the CSV and reports the first error encountered.
func (s *TimeSeriesSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.tw.Flush()
}
