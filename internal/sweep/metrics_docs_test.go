package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpsim/internal/telemetry"
)

func readTelemetryDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "telemetry.md"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTelemetryDocMetricNames: every metric family the sweep + runtime
// schema actually registers must be named in docs/telemetry.md — the doc
// fails CI when the telemetry schema drifts.
func TestTelemetryDocMetricNames(t *testing.T) {
	doc := readTelemetryDoc(t)
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	m := NewMetrics(reg, 2)
	snap := reg.Snapshot()
	if len(snap.Families) < 15 {
		t.Fatalf("suspicious family count %d", len(snap.Families))
	}
	for _, f := range snap.Families {
		if !strings.Contains(doc, "`"+f.Name) {
			t.Errorf("metric family %q is not documented in docs/telemetry.md", f.Name)
		}
	}
	// The deterministic subset is a real subset of the registered schema.
	registered := make(map[string]bool, len(snap.Families))
	for _, f := range snap.Families {
		registered[f.Name] = true
	}
	det := m.DeterministicMetricNames()
	if len(det) < 5 {
		t.Fatalf("suspicious deterministic list: %v", det)
	}
	for _, name := range det {
		if !registered[name] {
			t.Errorf("DeterministicMetricNames lists unregistered family %q", name)
		}
	}
}

// TestTelemetryDocEndpoints: every endpoint the server actually serves
// must be documented.
func TestTelemetryDocEndpoints(t *testing.T) {
	doc := readTelemetryDoc(t)
	eps := telemetry.Endpoints()
	if len(eps) < 4 {
		t.Fatalf("suspicious endpoint list: %v", eps)
	}
	for _, ep := range eps {
		if !strings.Contains(doc, "`"+ep+"`") {
			t.Errorf("endpoint %q is not documented in docs/telemetry.md", ep)
		}
	}
}

// TestTelemetryDocProgressKeys: every JSON key of the /progress payload
// must be documented.
func TestTelemetryDocProgressKeys(t *testing.T) {
	doc := readTelemetryDoc(t)
	for _, typ := range []reflect.Type{
		reflect.TypeOf(telemetry.ProgressInfo{}),
		reflect.TypeOf(telemetry.WorkerProgress{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			key, _, _ := strings.Cut(tag, ",")
			if key == "" || key == "-" {
				continue
			}
			if !strings.Contains(doc, "`"+key+"`") {
				t.Errorf("progress key %q (%s.%s) is not documented in docs/telemetry.md",
					key, typ.Name(), typ.Field(i).Name)
			}
		}
	}
}
