// Satellite regression tests for the sweep-layer bugfixes that shipped
// with the shard/resume/dedup engine: duplicate axis labels on every
// axis, fail-fast dispatch, empty-cell extremes, and the dedup
// invariance + telemetry contracts.
package sweep

import (
	"strings"
	"testing"

	"dpsim/internal/obs"
	"dpsim/internal/telemetry"
)

// TestDuplicateSchedulerAndAppModelLabelsDisambiguated: the
// availability axis already suffixed duplicate labels with #idx; the
// scheduler and appmodel axes silently exported colliding rows.
func TestDuplicateSchedulerAndAppModelLabelsDisambiguated(t *testing.T) {
	spec := parseSpec(t, `{
		"name": "duplabels",
		"nodes": [4],
		"schedulers": ["equipartition", "equipartition", "rigid-fcfs"],
		"appmodels": ["amdahl(f=0.1)", "amdahl(f=0.1)"],
		"seed": 3,
		"jobs": 2,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "closed"}
	}`)
	cells := Cells(spec)
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	scheds := map[string]bool{}
	models := map[string]bool{}
	for _, c := range cells {
		scheds[c.Scheduler] = true
		models[c.AppModel] = true
	}
	for _, want := range []string{"equipartition#0", "equipartition#1", "rigid-fcfs"} {
		if !scheds[want] {
			t.Errorf("scheduler label %q missing; got %v", want, scheds)
		}
	}
	if scheds["equipartition"] {
		t.Error("undecorated duplicate scheduler label survived")
	}
	for _, want := range []string{"amdahl(f=0.1)#0", "amdahl(f=0.1)#1"} {
		if !models[want] {
			t.Errorf("appmodel label %q missing; got %v", want, models)
		}
	}
}

// TestRunFailFast: after the first error, the dispatcher must stop
// handing out runs instead of grinding through the rest of the grid.
func TestRunFailFast(t *testing.T) {
	spec := parseSpec(t, `{
		"name": "failfast",
		"nodes": [4],
		"loads": [0.25, 0.5, 0.75, 1.0],
		"schedulers": ["equipartition", "rigid-fcfs"],
		"seed": 5,
		"jobs": 3,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 3}
	}`)
	// Force every run to fail the same way TestMetricsErroredRuns does.
	// NoDedup keeps all 8 cells executable: with both scheduler entries
	// renamed to the same broken name, dedup would halve the grid.
	spec.Schedulers[0].Name = "no-such-policy"
	spec.Schedulers[1].Name = "no-such-policy"
	executed := 0
	total := 0
	_, err := Run(spec, Options{
		Replications: 4, Workers: 1, NoDedup: true,
		Progress: func(done, t int) { executed = done; total = t },
	})
	if err == nil {
		t.Fatal("expected an error from the broken schedulers")
	}
	if total != 8*4 {
		t.Fatalf("total = %d, want 32", total)
	}
	// With one worker, at most the failing run plus one in-flight run
	// execute before the dispatcher sees the error and stops.
	if executed > 2 {
		t.Fatalf("executed %d runs after the first error; fail-fast broken", executed)
	}
}

// TestEmptyCellExtremes: a cell whose replications complete zero jobs
// has no response-time extremes; they must export as empty CSV fields
// and JSON nulls, not as a fake 0.
func TestEmptyCellExtremes(t *testing.T) {
	a := &cellAccum{}
	st := a.stats(Cell{Scheduler: "equipartition", Arrival: "closed", Avail: "none", AppModel: "mix", Nodes: 4, Load: 1}, 2)
	if st.MinResponse != nil || st.MaxResponse != nil {
		t.Fatalf("empty cell extremes = %v, %v; want nil", st.MinResponse, st.MaxResponse)
	}
	var csvB, jsonB strings.Builder
	if err := WriteCSV(&csvB, "empty", []CellStats{st}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonB, "empty", []CellStats{st}); err != nil {
		t.Fatal(err)
	}
	csvOut, jsonOut := csvB.String(), jsonB.String()
	rows := strings.Split(strings.TrimRight(csvOut, "\n"), "\n")
	if len(rows) != 2 || !strings.HasSuffix(rows[1], ",,") {
		t.Fatalf("empty extremes should render as trailing empty CSV fields: %q", rows[1])
	}
	if !strings.Contains(jsonOut, `"min_response_s": null`) ||
		!strings.Contains(jsonOut, `"max_response_s": null`) {
		t.Fatalf("empty extremes should render as JSON nulls:\n%s", jsonOut)
	}
}

// TestDedupLeavesExportsByteIdentical is the dedup contract: skipping
// identical cells and fanning results out must never change a byte of
// the exported aggregates, only the amount of work executed.
func TestDedupLeavesExportsByteIdentical(t *testing.T) {
	spec := dupSpec(t) // duplicate "equipartition" axis entry
	const reps = 3
	var dedupTotal, fullTotal int
	deduped, err := Run(spec, Options{Replications: reps,
		Progress: func(done, total int) { dedupTotal = total }})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(spec, Options{Replications: reps, NoDedup: true,
		Progress: func(done, total int) { fullTotal = total }})
	if err != nil {
		t.Fatal(err)
	}
	if dedupTotal >= fullTotal {
		t.Fatalf("dedup executed %d runs, NoDedup %d — nothing was deduplicated", dedupTotal, fullTotal)
	}
	// 12 cells, 4 of which duplicate another: 8 unique cells execute.
	if want := 8 * reps; dedupTotal != want {
		t.Fatalf("dedup executed %d runs, want %d", dedupTotal, want)
	}
	dCSV, dJSON := exportBoth(t, spec, deduped)
	fCSV, fJSON := exportBoth(t, spec, full)
	if dCSV != fCSV {
		t.Fatalf("dedup changed the CSV export\n%s\nvs\n%s", dCSV, fCSV)
	}
	if dJSON != fJSON {
		t.Fatal("dedup changed the JSON export")
	}
}

// TestObserveDisablesDedup: per-run observation callbacks see every
// cell, so dedup must quietly stand down when Observe is attached.
func TestObserveDisablesDedup(t *testing.T) {
	spec := dupSpec(t)
	total := 0
	_, err := Run(spec, Options{
		Replications: 1,
		Observe:      func(c Cell, rep int) obs.Probe { return nil },
		Progress:     func(done, t int) { total = t },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Cells(spec)); total != want {
		t.Fatalf("with Observe attached, executed %d runs, want every cell (%d)", total, want)
	}
}

// TestPlanGauges: the dedup/resume planning gauges report the cells
// skipped and restored.
func TestPlanGauges(t *testing.T) {
	spec := dupSpec(t)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, 1)
	if _, err := Run(spec, Options{Replications: 1, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	// 12 cells, 4 duplicates of another entry.
	if got := m.cellsDeduped.Value(); got != 4 {
		t.Errorf("cells_deduped = %g, want 4", got)
	}
	if got := m.cellsResumed.Value(); got != 0 {
		t.Errorf("cells_resumed = %g, want 0", got)
	}
}
