package sweep

import (
	"strings"
	"testing"

	"dpsim/internal/obs"
	"dpsim/internal/scenario"
)

func observeSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(`{
		"name": "sweep-observe",
		"nodes": [8],
		"loads": [1, 2],
		"seed": 11,
		"jobs": 5,
		"schedulers": ["equipartition", "rigid-fcfs"],
		"mix": [{"kind": "synthetic", "phases": 2, "work_s": 30, "comm": 0.05}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 8},
		"observe": {"sample_dt_s": 1, "timeseries": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestObserveLeavesAggregatesByteIdentical pins the sweep-level
// observer-effect-free contract: running the grid with per-replication
// recorders attached must leave the CSV and JSON exports byte-identical
// to the unobserved sweep.
func TestObserveLeavesAggregatesByteIdentical(t *testing.T) {
	spec := observeSpec(t)
	bare, err := Run(spec, Options{Replications: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(spec, Options{
		Replications: 2, Workers: 4,
		Observe: func(c Cell, rep int) obs.Probe {
			return obs.NewRecorder(spec.Observe.RecorderConfig(c.Scheduler))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var csvBare, csvObs, jsonBare, jsonObs strings.Builder
	if err := WriteCSV(&csvBare, spec.Name, bare); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvObs, spec.Name, observed); err != nil {
		t.Fatal(err)
	}
	if csvBare.String() != csvObs.String() {
		t.Error("observation changed the CSV export")
	}
	if err := WriteJSON(&jsonBare, spec.Name, bare); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonObs, spec.Name, observed); err != nil {
		t.Fatal(err)
	}
	if jsonBare.String() != jsonObs.String() {
		t.Error("observation changed the JSON export")
	}
}

// sweepTimeseries runs the observed grid with the given worker count
// and returns the time-series CSV.
func sweepTimeseries(t *testing.T, spec *scenario.Spec, workers int) string {
	t.Helper()
	var b strings.Builder
	sink := NewTimeSeriesSink(&b)
	_, err := Run(spec, Options{
		Replications: 2, Workers: workers,
		Observe: func(c Cell, rep int) obs.Probe {
			return obs.NewRecorder(spec.Observe.RecorderConfig(c.Scheduler))
		},
		OnObserved: sink.OnObserved,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTimeSeriesDeterministicAcrossWorkers: the sampler CSV must come
// out byte-identical no matter how many workers raced through the grid
// — OnObserved fires at the in-order fold frontier.
func TestTimeSeriesDeterministicAcrossWorkers(t *testing.T) {
	spec := observeSpec(t)
	serial := sweepTimeseries(t, spec, 1)
	parallel := sweepTimeseries(t, spec, 8)
	if serial != parallel {
		t.Fatal("time-series CSV differs between 1 and 8 workers")
	}
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	wantHeader := strings.Join(TimeSeriesPrefixColumns(), ",") + "," + strings.Join(obs.SampleColumns(), ",")
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	// 2 loads × 2 schedulers × 2 replications, every run sampled at least
	// at t=0: at least 8 data rows.
	if len(lines) < 9 {
		t.Errorf("only %d time-series rows", len(lines)-1)
	}
	if !strings.Contains(serial, "equipartition") || !strings.Contains(serial, "rigid-fcfs") {
		t.Error("rows missing scheduler identity columns")
	}
}

// TestOnObservedOrder: probes arrive strictly in (cell, replication)
// index order regardless of completion order.
func TestOnObservedOrder(t *testing.T) {
	spec := observeSpec(t)
	var got []int
	reps := 3
	_, err := Run(spec, Options{
		Replications: reps, Workers: 8,
		Observe: func(c Cell, rep int) obs.Probe {
			return obs.NewRecorder(obs.Config{})
		},
		OnObserved: func(c Cell, rep int, p obs.Probe) {
			got = append(got, rep)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := len(Cells(spec))
	if len(got) != cells*reps {
		t.Fatalf("observed %d replications, want %d", len(got), cells*reps)
	}
	for i, rep := range got {
		if rep != i%reps {
			t.Fatalf("replication order broken at %d: got rep %d, want %d", i, rep, i%reps)
		}
	}
}
