package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpsim/internal/scenario"
	"dpsim/internal/trace"
)

// testSpec builds a 4-arrival-process scenario (closed, poisson, bursty,
// trace replay) over a 2×1×2 nodes×load×scheduler grid.
func testSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "jobs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	err = trace.WriteJobs(f, []trace.JobRecord{
		{ID: 0, Arrival: 0, MaxNodes: 4, Phases: []trace.PhaseRecord{{Work: 12, Comm: 0.1}}},
		{ID: 1, Arrival: 3, MaxNodes: 0, Phases: []trace.PhaseRecord{{Work: 8, Comm: 0.05}, {Work: 4, Comm: 0.2}}},
		{ID: 2, Arrival: 9, MaxNodes: 8, Phases: []trace.PhaseRecord{{Work: 20, Comm: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	body := `{
		"name": "sweeptest",
		"nodes": [4, 8],
		"loads": [1.0],
		"schedulers": ["rigid-fcfs", "efficiency-greedy"],
		"seed": 21,
		"jobs": 8,
		"mix": [
			{"kind": "synthetic", "phases": 2, "work_s": 15, "comm": 0.05, "cv": 0.3},
			{"kind": "stencil", "grid_n": 324, "iterations": 3, "weight": 0.5}
		],
		"arrivals": [
			{"process": "closed"},
			{"process": "poisson", "mean_interarrival_s": 4},
			{"process": "bursty", "burst_interarrival_s": 0.5, "calm_interarrival_s": 15,
			 "burst_dwell_s": 3, "calm_dwell_s": 30},
			{"process": "trace", "path": "jobs.csv"}
		]
	}`
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestCellsExpansionOrder(t *testing.T) {
	spec := testSpec(t)
	cells := Cells(spec)
	// 4 arrivals × 2 nodes × 1 load × 2 schedulers.
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	if cells[0].Arrival != "closed" || cells[0].Nodes != 4 || cells[0].Scheduler != "rigid-fcfs" {
		t.Fatalf("first cell = %+v", cells[0])
	}
	if cells[1].Scheduler != "efficiency-greedy" {
		t.Fatalf("second cell = %+v", cells[1])
	}
	last := cells[len(cells)-1]
	if last.Arrival != "trace:jobs.csv" || last.Nodes != 8 {
		t.Fatalf("last cell = %+v", last)
	}
}

func exportBoth(t *testing.T, spec *scenario.Spec, stats []CellStats) (string, string) {
	t.Helper()
	var csvB, jsonB strings.Builder
	if err := WriteCSV(&csvB, spec.Name, stats); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonB, spec.Name, stats); err != nil {
		t.Fatal(err)
	}
	return csvB.String(), jsonB.String()
}

// TestRunDeterministicAcrossWorkerCounts is the core contract: the same
// scenario and seed produce byte-identical CSV and JSON aggregates no
// matter how the runs are sharded.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := testSpec(t)
	var first, firstJSON string
	for _, workers := range []int{1, 3, 16} {
		stats, err := Run(spec, Options{Replications: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		csvOut, jsonOut := exportBoth(t, spec, stats)
		if first == "" {
			first, firstJSON = csvOut, jsonOut
			continue
		}
		if csvOut != first {
			t.Fatalf("workers=%d: CSV differs\n%s\nvs\n%s", workers, csvOut, first)
		}
		if jsonOut != firstJSON {
			t.Fatalf("workers=%d: JSON differs", workers)
		}
	}
}

// availTestSpec is a volatile-capacity grid: poisson arrivals × three
// availability axes (fixed pool, stochastic failures, spot reclaims).
func availTestSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(`{
		"name": "availsweep",
		"nodes": [8],
		"loads": [1.0],
		"schedulers": ["equipartition", "efficiency-greedy"],
		"seed": 33,
		"jobs": 8,
		"mix": [{"kind": "synthetic", "phases": 3, "work_s": 80, "comm": 0.05, "cv": 0.4}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 5},
		"availability": [
			{"process": "none"},
			{"process": "failures", "mttf_s": 30, "mttr_s": 20, "horizon_s": 2000},
			{"process": "spot", "reclaim_mean_s": 40, "reclaim_nodes": 2,
			 "restore_mean_s": 30, "notice_s": 5, "min_capacity": 2, "horizon_s": 2000}
		],
		"reconfig": {"redistribution_s_per_node": 0.2, "lost_work_s": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestAvailabilityDeterministicAcrossWorkerCounts: stochastic
// availability timelines derive from the replication seed alone, so the
// exports must stay byte-identical no matter how the runs are sharded.
func TestAvailabilityDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := availTestSpec(t)
	cells := Cells(spec)
	if len(cells) != 6 { // 1 arrival × 3 availability × 1 node × 1 load × 2 schedulers
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	if cells[0].Avail != "none" || cells[2].Avail != "failures" || cells[4].Avail != "spot" {
		t.Fatalf("availability axis order: %+v", cells)
	}
	var first, firstJSON string
	for _, workers := range []int{1, 4, 16} {
		stats, err := Run(spec, Options{Replications: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		csvOut, jsonOut := exportBoth(t, spec, stats)
		if first == "" {
			first, firstJSON = csvOut, jsonOut
			// Sanity: the volatile axes actually applied capacity events
			// and charged costs somewhere.
			var events, lost float64
			for _, st := range stats {
				if st.Avail == "none" {
					if st.MeanCapacityEvents != 0 {
						t.Fatalf("fixed pool saw capacity events: %+v", st)
					}
					continue
				}
				events += st.MeanCapacityEvents
				lost += st.MeanLostWork
			}
			if events == 0 {
				t.Fatal("volatile axes applied no capacity events")
			}
			if lost == 0 {
				t.Fatal("abrupt reclaims lost no work despite lost_work_s > 0")
			}
			continue
		}
		if csvOut != first {
			t.Fatalf("workers=%d: CSV differs\n%s\nvs\n%s", workers, csvOut, first)
		}
		if jsonOut != firstJSON {
			t.Fatalf("workers=%d: JSON differs", workers)
		}
	}
}

// TestDuplicateAvailabilityLabelsDisambiguated: two axis entries with
// the same process must not collapse to one label in exports.
func TestDuplicateAvailabilityLabelsDisambiguated(t *testing.T) {
	spec, err := scenario.Parse([]byte(`{
		"name": "dup",
		"nodes": [4],
		"schedulers": ["equipartition"],
		"seed": 1,
		"jobs": 2,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "closed"},
		"availability": [
			{"process": "spot", "reclaim_mean_s": 100},
			{"process": "spot", "reclaim_mean_s": 100, "notice_s": 60},
			{"process": "churn", "mean_on_s": 50, "mean_off_s": 10}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(spec)
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	if cells[0].Avail != "spot#0" || cells[1].Avail != "spot#1" || cells[2].Avail != "churn" {
		t.Fatalf("labels = %q, %q, %q", cells[0].Avail, cells[1].Avail, cells[2].Avail)
	}
}

func TestRunAggregates(t *testing.T) {
	spec := testSpec(t)
	stats, err := Run(spec, Options{Replications: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 16 {
		t.Fatalf("stats = %d", len(stats))
	}
	for _, st := range stats {
		if st.Replications != 2 {
			t.Fatalf("replications = %d", st.Replications)
		}
		wantJobs := 2 * 8
		if strings.HasPrefix(st.Arrival, "trace:") {
			wantJobs = 2 * 3
		}
		if st.Jobs != wantJobs {
			t.Fatalf("%s: jobs = %d, want %d", st.Arrival, st.Jobs, wantJobs)
		}
		if st.MeanResponse <= 0 || st.MeanMakespan <= 0 {
			t.Fatalf("%+v", st)
		}
		if st.P50Response > st.P95Response || st.P95Response > st.P99Response {
			t.Fatalf("percentiles out of order: %+v", st)
		}
		if st.MinResponse == nil || st.MaxResponse == nil {
			t.Fatalf("extremes nil with %d pooled jobs: %+v", st.Jobs, st)
		}
		if *st.MinResponse > st.P50Response || st.P99Response > *st.MaxResponse {
			t.Fatalf("streamed extremes disagree with percentiles: %+v", st)
		}
		if st.CI95Response <= 0 {
			t.Fatalf("ci95_response_s = %v with %d pooled jobs", st.CI95Response, st.Jobs)
		}
		if st.MeanUtilization <= 0 || st.MeanUtilization > 1+1e-9 {
			t.Fatalf("utilization = %v", st.MeanUtilization)
		}
		if st.MeanSlowdown < 1-1e-9 {
			t.Fatalf("slowdown = %v", st.MeanSlowdown)
		}
	}
}

func TestRunProgress(t *testing.T) {
	spec := testSpec(t)
	var calls, lastTotal int
	stats, err := Run(spec, Options{Replications: 1, Workers: 1, Progress: func(done, total int) {
		calls++
		lastTotal = total
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(stats) || lastTotal != 16 {
		t.Fatalf("progress calls = %d, total = %d", calls, lastTotal)
	}
}

func TestRunSeedDerivation(t *testing.T) {
	h1 := CellHash{1}
	h2 := CellHash{2}
	if runSeed(h1, 0) == runSeed(h1, 1) || runSeed(h1, 0) == runSeed(h2, 0) {
		t.Fatal("replication seeds collide")
	}
	if runSeed(h1, 3) != runSeed(h1, 3) {
		t.Fatal("seed derivation not deterministic")
	}
}

func TestCSVHeaderStable(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, "x", nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != csvHeader {
		t.Fatalf("header = %q", got)
	}
}

// TestParameterizedSchedulerAxis: two variants of one policy with
// different parameters form distinct grid cells with self-describing
// labels, run to distinct outcomes, and export cleanly.
func TestParameterizedSchedulerAxis(t *testing.T) {
	spec, err := scenario.Parse([]byte(`{
		"name": "paramaxis",
		"nodes": [8],
		"schedulers": [
			{"name": "malleable-hysteresis", "params": {"epoch_s": 0, "min_delta": 1}},
			{"name": "malleable-hysteresis", "params": {"epoch_s": 60, "min_delta": 4}}
		],
		"seed": 5,
		"jobs": 10,
		"mix": [{"kind": "synthetic", "phases": 3, "work_s": 30, "comm": 0.05, "cv": 0.4}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 3}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(spec)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Scheduler != "malleable-hysteresis(epoch_s=0,min_delta=1)" ||
		cells[1].Scheduler != "malleable-hysteresis(epoch_s=60,min_delta=4)" {
		t.Fatalf("labels = %q, %q", cells[0].Scheduler, cells[1].Scheduler)
	}
	stats, err := Run(spec, Options{Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The throttled variant must reallocate less — the parameters
	// demonstrably reached the policy.
	if stats[1].MeanReallocations >= stats[0].MeanReallocations {
		t.Fatalf("throttled variant reallocated %g >= %g",
			stats[1].MeanReallocations, stats[0].MeanReallocations)
	}
	csvOut, _ := exportBoth(t, spec, stats)
	if !strings.Contains(csvOut, `"malleable-hysteresis(epoch_s=60,min_delta=4)"`) {
		t.Fatalf("csv missing parameterized label:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "mean_redistribution_s") {
		t.Fatalf("csv missing redistribution column:\n%s", csvOut)
	}
}
