package sweep

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpsim/internal/telemetry"
)

// Metrics instruments a sweep's worker pool on a telemetry.Registry.
// Attach one via Options.Metrics and serve the registry with
// telemetry.NewServer — Metrics is also the telemetry.ProgressSource
// behind the /progress endpoint.
//
// Cost contract: with Options.Metrics nil (the default), Run executes
// exactly the uninstrumented path — one nil check per run, zero
// allocations, zero atomics. With Metrics attached, each *run* (not each
// simulated event) costs a handful of atomic operations, so the
// per-event hot path pinned by the PR 4 zero-alloc tests is untouched
// either way.
//
// Determinism contract: the families named by DeterministicMetricNames
// reach worker-count-independent final values — byte-identical
// Prometheus text for any Options.Workers — because they count only
// simulation-derived facts folded with commutative atomic adds.
// Wall-clock families (busy time, durations, rates) are excluded.
type Metrics struct {
	reg *telemetry.Registry

	runsStarted    *telemetry.Counter
	runsFinished   *telemetry.Counter
	runsErrored    *telemetry.Counter
	jobsFinished   *telemetry.Counter
	jobsUnfinished *telemetry.Counter

	cellsTotal   *telemetry.Gauge
	cellsDone    *telemetry.Gauge
	cellsDeduped *telemetry.Gauge
	cellsResumed *telemetry.Gauge
	replications *telemetry.Gauge
	runsTotal    *telemetry.Gauge
	workersG     *telemetry.Gauge
	foldFrontier *telemetry.Gauge
	foldLag      *telemetry.Gauge

	runDur *telemetry.Histogram

	startNS atomic.Int64 // wall-clock run start (unix ns); 0 = not begun

	// workerSeq hands each pool goroutine its worker index. Run's workers
	// self-number through it instead of receiving the index as a goroutine
	// argument — passing arguments to a `go` statement heap-allocates the
	// argument record, which would cost the metrics-disabled path an
	// allocation per worker.
	workerSeq atomic.Int64

	mu         sync.Mutex
	workerBusy []*telemetry.Counter // per-worker busy nanoseconds
}

// NewMetrics registers the sweep metric families on reg and returns the
// instrument set. workersHint pre-registers that many per-worker busy
// counters so scrapes taken before Run begins already expose the full
// schema; Run itself registers any workers beyond the hint (<= 0 skips
// pre-registration).
func NewMetrics(reg *telemetry.Registry, workersHint int) *Metrics {
	m := &Metrics{
		reg: reg,
		runsStarted: reg.Counter("dpsim_sweep_runs_started_total",
			"Replications handed to a worker."),
		runsFinished: reg.Counter("dpsim_sweep_runs_finished_total",
			"Replications that completed successfully."),
		runsErrored: reg.Counter("dpsim_sweep_runs_errored_total",
			"Replications that failed with an error."),
		jobsFinished: reg.Counter("dpsim_sweep_jobs_finished_total",
			"Simulated jobs completed, summed over finished runs."),
		jobsUnfinished: reg.Counter("dpsim_sweep_jobs_unfinished_total",
			"Simulated jobs that arrived but never completed, summed over finished runs."),
		cellsTotal: reg.Gauge("dpsim_sweep_cells_total",
			"Grid cells in the sweep."),
		cellsDone: reg.Gauge("dpsim_sweep_cells_done",
			"Grid cells whose every replication has folded into aggregates."),
		cellsDeduped: reg.Gauge("dpsim_sweep_cells_deduped",
			"Grid cells skipped because an identical cell executes for them (content-hash dedup)."),
		cellsResumed: reg.Gauge("dpsim_sweep_cells_resumed",
			"Grid cells restored, fully or partially, from the fold checkpoint."),
		replications: reg.Gauge("dpsim_sweep_replications",
			"Replications per grid cell."),
		runsTotal: reg.Gauge("dpsim_sweep_runs_total",
			"Replications this process executes (after dedup, resume and shard planning)."),
		workersG: reg.Gauge("dpsim_sweep_workers",
			"Workers in the pool."),
		foldFrontier: reg.Gauge("dpsim_sweep_fold_frontier",
			"Runs folded into aggregates, strictly in index order."),
		foldLag: reg.Gauge("dpsim_sweep_fold_lag",
			"Completed runs parked ahead of the fold frontier."),
		runDur: reg.Histogram("dpsim_sweep_run_duration_seconds",
			"Wall-clock duration of one replication."),
	}
	reg.GaugeFunc("dpsim_sweep_runs_per_second",
		"Completed runs per wall-clock second since the sweep began.",
		func() float64 { return m.Progress().RunsPerSecond })
	reg.GaugeFunc("dpsim_sweep_cells_per_second",
		"Fully folded cells per wall-clock second since the sweep began.",
		func() float64 { return m.Progress().CellsPerSecond })
	reg.GaugeFunc("dpsim_sweep_eta_seconds",
		"Estimated wall-clock seconds until the sweep completes.",
		func() float64 { return m.Progress().ETAS })
	m.ensureWorkers(workersHint)
	return m
}

// DeterministicMetricNames lists the families whose final values are
// byte-identical across worker counts (see the Metrics determinism
// contract; pinned by TestMetricsDeterministicAcrossWorkers).
func (m *Metrics) DeterministicMetricNames() []string {
	return []string{
		"dpsim_sweep_runs_started_total",
		"dpsim_sweep_runs_finished_total",
		"dpsim_sweep_runs_errored_total",
		"dpsim_sweep_jobs_finished_total",
		"dpsim_sweep_jobs_unfinished_total",
		"dpsim_sweep_cells_total",
		"dpsim_sweep_cells_done",
		"dpsim_sweep_cells_deduped",
		"dpsim_sweep_cells_resumed",
		"dpsim_sweep_replications",
		"dpsim_sweep_runs_total",
		"dpsim_sweep_fold_frontier",
		"dpsim_sweep_fold_lag",
	}
}

// ensureWorkers registers per-worker busy counters and busy-fraction
// gauges for workers [0, n). Registration is idempotent.
func (m *Metrics) ensureWorkers(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for w := len(m.workerBusy); w < n; w++ {
		label := telemetry.L("worker", strconv.Itoa(w))
		busy := m.reg.Counter("dpsim_sweep_worker_busy_ns_total",
			"Wall-clock nanoseconds worker spent running replications.", label)
		m.workerBusy = append(m.workerBusy, busy)
		m.reg.GaugeFunc("dpsim_sweep_worker_busy_fraction",
			"Fraction of elapsed wall clock the worker spent running replications.",
			func() float64 {
				start := m.startNS.Load()
				if start == 0 {
					return 0
				}
				elapsed := time.Now().UnixNano() - start
				if elapsed <= 0 {
					return 0
				}
				f := float64(busy.Value()) / float64(elapsed)
				if f > 1 {
					f = 1
				}
				return f
			}, label)
	}
}

// begin marks the sweep's start: totals, the worker pool size, and the
// wall clock. Called by Run before any worker starts.
func (m *Metrics) begin(cells, reps, workers, total int) {
	m.cellsTotal.Set(float64(cells))
	m.replications.Set(float64(reps))
	m.runsTotal.Set(float64(total))
	m.workersG.Set(float64(workers))
	m.ensureWorkers(workers)
	m.workerSeq.Store(0)
	m.startNS.Store(time.Now().UnixNano())
}

// notePlan records the sweep plan's dedup and resume outcome: cells
// skipped because an identical cell executes for them, and cells whose
// accumulators restored from the fold checkpoint. Called once by Run
// after begin.
func (m *Metrics) notePlan(deduped, resumed int) {
	m.cellsDeduped.Set(float64(deduped))
	m.cellsResumed.Set(float64(resumed))
}

// claimWorker returns the next free worker index; each pool goroutine
// calls it once when metrics are attached.
func (m *Metrics) claimWorker() int {
	return int(m.workerSeq.Add(1)) - 1
}

// noteRun records one replication's outcome: the worker's busy time, the
// run-duration histogram, and the outcome counters. jobs/unfinished are
// only counted for successful runs. Allocation- and lock-free: begin
// registered every worker's counter before the pool started, and the
// slice is never mutated while a sweep runs (one Metrics must not be
// shared by concurrent Run calls).
func (m *Metrics) noteRun(worker int, elapsed time.Duration, jobs, unfinished int, errored bool) {
	m.workerBusy[worker].Add(int64(elapsed))
	m.runDur.Observe(elapsed)
	if errored {
		m.runsErrored.Inc()
		return
	}
	m.runsFinished.Inc()
	m.jobsFinished.Add(int64(jobs))
	m.jobsUnfinished.Add(int64(unfinished))
}

// noteFold publishes the fold frontier's position. marked counts the
// slots satisfied so far — executed, fanned out to a duplicate, or
// pre-satisfied by shard/checkpoint planning — so the lag never goes
// negative on resumed or sharded sweeps. Called under the sweep's fold
// lock, so reads of marked/foldNext are already ordered.
func (m *Metrics) noteFold(foldNext, marked, reps int) {
	m.foldFrontier.Set(float64(foldNext))
	m.cellsDone.Set(float64(foldNext / reps))
	m.foldLag.Set(float64(marked - foldNext))
}

// Progress implements telemetry.ProgressSource for the /progress
// endpoint. Safe to call concurrently with a running sweep.
func (m *Metrics) Progress() telemetry.ProgressInfo {
	info := telemetry.ProgressInfo{
		CellsTotal:   int(m.cellsTotal.Value()),
		CellsDone:    int(m.cellsDone.Value()),
		Replications: int(m.replications.Value()),
		RunsTotal:    int(m.runsTotal.Value()),
		RunsErrored:  int(m.runsErrored.Value()),
		FoldFrontier: int(m.foldFrontier.Value()),
		FoldLag:      int(m.foldLag.Value()),
	}
	info.RunsDone = int(m.runsFinished.Value() + m.runsErrored.Value())
	start := m.startNS.Load()
	if start == 0 {
		return info
	}
	info.Active = true
	elapsed := float64(time.Now().UnixNano()-start) / 1e9
	if elapsed <= 0 {
		return info
	}
	info.ElapsedS = elapsed
	info.RunsPerSecond = float64(info.RunsDone) / elapsed
	info.CellsPerSecond = float64(info.CellsDone) / elapsed
	if info.RunsPerSecond > 0 {
		info.ETAS = float64(info.RunsTotal-info.RunsDone) / info.RunsPerSecond
	}
	m.mu.Lock()
	workers := make([]*telemetry.Counter, len(m.workerBusy))
	copy(workers, m.workerBusy)
	m.mu.Unlock()
	for w, busy := range workers {
		busyS := float64(busy.Value()) / 1e9
		frac := busyS / elapsed
		if frac > 1 {
			frac = 1
		}
		info.Workers = append(info.Workers, telemetry.WorkerProgress{
			Worker: w, BusySeconds: busyS, BusyFraction: frac,
		})
	}
	return info
}
