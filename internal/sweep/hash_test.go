package sweep

import (
	"fmt"
	"strings"
	"testing"

	"dpsim/internal/scenario"
)

func parseSpec(t *testing.T, body string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// hashSpec builds a small grid with an adjustable loads axis.
func hashSpec(t *testing.T, loads string) *scenario.Spec {
	t.Helper()
	return parseSpec(t, `{
		"name": "hashgrid",
		"nodes": [4],
		"loads": `+loads+`,
		"schedulers": ["equipartition", "rigid-fcfs"],
		"seed": 7,
		"jobs": 4,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 3}
	}`)
}

// TestCellHashSurvivesGridEdits is the positional-identity bugfix:
// inserting a load must not change the identity (and therefore the
// seeds and results) of the cells that did not change.
func TestCellHashSurvivesGridEdits(t *testing.T) {
	byKey := func(spec *scenario.Spec) map[string]CellHash {
		cells := Cells(spec)
		hashes := CellHashes(spec, cells)
		out := make(map[string]CellHash)
		for i, c := range cells {
			out[fmt.Sprintf("%s@%g", c.Scheduler, c.Load)] = hashes[i]
		}
		return out
	}
	before := byKey(hashSpec(t, "[0.5, 1.0]"))
	after := byKey(hashSpec(t, "[0.5, 0.75, 1.0]"))
	if len(before) != 4 || len(after) != 6 {
		t.Fatalf("grids = %d and %d cells", len(before), len(after))
	}
	for key, h := range before {
		if after[key] != h {
			t.Errorf("cell %s re-identified after inserting a load: %s -> %s", key, h, after[key])
		}
	}
}

// TestCellHashIgnoresDisplayOnlyFields: the scenario name is not part of
// a cell's identity, the master seed is.
func TestCellHashIgnoresDisplayOnlyFields(t *testing.T) {
	base := hashSpec(t, "[1.0]")
	renamed := hashSpec(t, "[1.0]")
	renamed.Name = "renamed"
	reseeded := hashSpec(t, "[1.0]")
	reseeded.Seed = 8
	hb := CellHashes(base, Cells(base))
	hr := CellHashes(renamed, Cells(renamed))
	hs := CellHashes(reseeded, Cells(reseeded))
	for i := range hb {
		if hb[i] != hr[i] {
			t.Errorf("cell %d: renaming the scenario changed the hash", i)
		}
		if hb[i] == hs[i] {
			t.Errorf("cell %d: changing the master seed did not change the hash", i)
		}
	}
}

// TestDuplicateCellsHashEqual: label decoration ("#idx") is display
// only — duplicate axis entries still resolve to the same identity, the
// foundation of dedup.
func TestDuplicateCellsHashEqual(t *testing.T) {
	spec := parseSpec(t, `{
		"name": "dupgrid",
		"nodes": [4],
		"schedulers": ["equipartition", "equipartition"],
		"seed": 7,
		"jobs": 4,
		"mix": [{"kind": "synthetic", "phases": 1, "work_s": 10}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 3}
	}`)
	cells := Cells(spec)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Scheduler == cells[1].Scheduler {
		t.Fatalf("duplicate labels not disambiguated: %q", cells[0].Scheduler)
	}
	hashes := CellHashes(spec, cells)
	if hashes[0] != hashes[1] {
		t.Fatalf("duplicate cells hash differently: %s vs %s", hashes[0], hashes[1])
	}
}

func TestCellHashStringRoundTrip(t *testing.T) {
	spec := hashSpec(t, "[1.0]")
	h := CellHashes(spec, Cells(spec))[0]
	got, err := parseHash(h.String())
	if err != nil || got != h {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "zz", strings.Repeat("ab", 31), strings.Repeat("xy", 32)} {
		if _, err := parseHash(bad); err == nil {
			t.Errorf("parseHash(%q) accepted", bad)
		}
	}
}

// TestShardOfPartition: shard assignment is deterministic, in range,
// and splits a real grid across shards rather than collapsing onto one.
func TestShardOfPartition(t *testing.T) {
	spec := testSpec(t)
	hashes := CellHashes(spec, Cells(spec))
	const n = 4
	counts := make([]int, n)
	for _, h := range hashes {
		s := h.ShardOf(n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range", s)
		}
		if h.ShardOf(n) != s {
			t.Fatal("shard assignment not deterministic")
		}
		if h.ShardOf(1) != 0 || h.ShardOf(0) != 0 {
			t.Fatal("trivial shard counts must map to shard 0")
		}
		counts[s]++
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("16 cells collapsed onto %d shard(s): %v", nonEmpty, counts)
	}
}
